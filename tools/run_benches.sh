#!/usr/bin/env bash
#===- run_benches.sh - Run every benchmark, aggregate JSON ---------------===//
#
# Part of the Alphonse reproduction (Hoover, PLDI 1992).
# SPDX-License-Identifier: MIT
#
#===----------------------------------------------------------------------===//
#
# Runs each bench_* binary with --json (the ALPHONSE_BENCH_MAIN harness)
# and aggregates the per-binary documents into one file. By default only
# the parallel-propagation bench runs (it is the one whose numbers the
# docs quote) and the aggregate lands at BENCH_parallel.json in the repo
# root; pass --all to sweep every binary.
#
#   tools/run_benches.sh [--build-dir DIR] [--out FILE] [--all]
#                        [--min-time SECS]
#
# Requires jq for aggregation.
#
#===----------------------------------------------------------------------===//

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
OUT="$REPO_ROOT/BENCH_parallel.json"
MIN_TIME="0.05"
ALL=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out)       OUT="$2"; shift 2 ;;
    --min-time)  MIN_TIME="$2"; shift 2 ;;
    --all)       ALL=1; shift ;;
    *) echo "error: unknown argument '$1'" >&2; exit 1 ;;
  esac
done

BENCH_DIR="$BUILD_DIR/bench"
if [[ ! -d "$BENCH_DIR" ]]; then
  echo "error: no bench directory at $BENCH_DIR (build first)" >&2
  exit 1
fi

if [[ $ALL -eq 1 ]]; then
  BINARIES=("$BENCH_DIR"/bench_*)
else
  BINARIES=("$BENCH_DIR/bench_parallel")
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

DOCS=()
for BIN in "${BINARIES[@]}"; do
  [[ -x "$BIN" ]] || continue
  NAME="$(basename "$BIN")"
  JSON="$TMP_DIR/$NAME.json"
  echo "== $NAME" >&2
  "$BIN" --json "$JSON" --benchmark_min_time="$MIN_TIME" >&2
  DOCS+=("$JSON")
done

if [[ ${#DOCS[@]} -eq 0 ]]; then
  echo "error: no bench binaries found" >&2
  exit 1
fi

# One aggregate document: per-binary results keyed by binary name, with
# the host context hoisted to the top level (identical across runs).
jq -s --arg names "$(printf '%s\n' "${DOCS[@]##*/}" | sed 's/\.json$//' | paste -sd, -)" '
  { host_concurrency: .[0].host_concurrency,
    suites: [ . as $docs
              | ($names | split(","))
              | to_entries[]
              | { name: .value,
                  peak_rss_kb: $docs[.key].peak_rss_kb,
                  benchmarks: $docs[.key].benchmarks } ] }
' "${DOCS[@]}" > "$OUT"

echo "wrote $OUT" >&2
