#!/usr/bin/env bash
#===- run_benches.sh - Run every benchmark, aggregate JSON ---------------===//
#
# Part of the Alphonse reproduction (Hoover, PLDI 1992).
# SPDX-License-Identifier: MIT
#
#===----------------------------------------------------------------------===//
#
# Runs every bench_* binary with --json (the ALPHONSE_BENCH_MAIN harness)
# and aggregates the per-binary documents into one file, BENCH_all.json by
# default. The aggregate also hoists the graph-storage footprint counters
# (bytes_per_edge / bytes_per_node, reported by bench_space's
# BM_E8_ConstantRefSets at its largest size) into a top-level "space"
# object so storage regressions are one jq call away.
#
#   tools/run_benches.sh [--build-dir DIR] [--out FILE] [--only NAME]
#                        [--min-time SECS]
#
#   --only NAME   run a single binary (e.g. --only bench_parallel) instead
#                 of the full sweep.
#
# Requires jq for aggregation.
#
#===----------------------------------------------------------------------===//

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$REPO_ROOT/build"
OUT="$REPO_ROOT/BENCH_all.json"
MIN_TIME="0.05"
ONLY=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out)       OUT="$2"; shift 2 ;;
    --min-time)  MIN_TIME="$2"; shift 2 ;;
    --only)      ONLY="$2"; shift 2 ;;
    --all)       shift ;; # Historical default; the full sweep is standard now.
    *) echo "error: unknown argument '$1'" >&2; exit 1 ;;
  esac
done

BENCH_DIR="$BUILD_DIR/bench"
if [[ ! -d "$BENCH_DIR" ]]; then
  echo "error: no bench directory at $BENCH_DIR (build first)" >&2
  exit 1
fi

# The sweep is defined by bench/CMakeLists.txt, not by what happens to be
# on disk: a registered binary that is missing means a broken build (or a
# bench silently dropped from the sweep) and must fail the run loudly
# rather than quietly shrink the aggregate. The character class includes
# digits: a target like bench_sessions2 must not be silently truncated
# out of the sweep.
mapfile -t EXPECTED < <(sed -n 's/^add_executable(\(bench_[a-z0-9_]*\).*/\1/p' \
  "$REPO_ROOT/bench/CMakeLists.txt" | sort)
if [[ ${#EXPECTED[@]} -eq 0 ]]; then
  echo "error: no bench targets found in bench/CMakeLists.txt" >&2
  exit 1
fi

# Discovery self-check: the parsed target set must exactly match the
# bench_* binaries a finished build leaves on disk. A mismatch either way
# means the sed pattern above rotted or the build is stale — both are
# silent-shrink hazards the sweep exists to prevent.
mapfile -t ONDISK < <(find "$BENCH_DIR" -maxdepth 1 -name 'bench_*' -type f \
  -perm -u+x -printf '%f\n' 2>/dev/null | sort)
if [[ "$(printf '%s\n' "${EXPECTED[@]}")" != "$(printf '%s\n' "${ONDISK[@]}")" ]]; then
  echo "error: bench discovery mismatch" >&2
  echo "  registered in bench/CMakeLists.txt: ${EXPECTED[*]}" >&2
  echo "  executables in $BENCH_DIR: ${ONDISK[*]:-none}" >&2
  echo "  (stale build, or the discovery regex no longer matches a" >&2
  echo "   registered target name — fix before trusting the sweep)" >&2
  exit 1
fi

if [[ -n "$ONLY" ]]; then
  BINARIES=("$BENCH_DIR/$ONLY")
else
  BINARIES=()
  for NAME in "${EXPECTED[@]}"; do
    BINARIES+=("$BENCH_DIR/$NAME")
  done
fi

MISSING=0
for BIN in "${BINARIES[@]}"; do
  if [[ ! -x "$BIN" ]]; then
    echo "error: bench binary missing or not executable: $BIN" >&2
    MISSING=1
  fi
done
if [[ $MISSING -ne 0 ]]; then
  echo "       (every target registered in bench/CMakeLists.txt must be" >&2
  echo "        built; rebuild, or remove the target from the sweep)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

DOCS=()
for BIN in "${BINARIES[@]}"; do
  NAME="$(basename "$BIN")"
  JSON="$TMP_DIR/$NAME.json"
  echo "== $NAME" >&2
  "$BIN" --json "$JSON" --benchmark_min_time="$MIN_TIME" >&2
  DOCS+=("$JSON")
done

if [[ ${#DOCS[@]} -eq 0 ]]; then
  echo "error: no bench binaries found" >&2
  exit 1
fi

# One aggregate document: per-binary results keyed by binary name, the
# host context hoisted to the top level (identical across runs), and the
# storage footprint pulled out of bench_space for quick inspection.
jq -s --arg names "$(printf '%s\n' "${DOCS[@]##*/}" | sed 's/\.json$//' | paste -sd, -)" '
  { host_concurrency: .[0].host_concurrency,
    suites: [ . as $docs
              | ($names | split(","))
              | to_entries[]
              | { name: .value,
                  peak_rss_kb: $docs[.key].peak_rss_kb,
                  benchmarks: $docs[.key].benchmarks } ] }
  | .space = ([ .suites[] | select(.name == "bench_space") | .benchmarks[]
                | select(.counters.bytes_per_edge != null) ]
              | if length == 0 then null else
                  (last
                   | { benchmark: .name,
                       bytes_per_edge: .counters.bytes_per_edge,
                       bytes_per_node: .counters.bytes_per_node })
                end)
' "${DOCS[@]}" > "$OUT"

echo "wrote $OUT" >&2
