//===- alphonsec.cpp - Alphonse-L compiler driver -------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Command-line driver for the Alphonse transformation system:
//
//   alphonsec FILE.alf [options]
//
//   --emit-transformed      print the transformed program (default action)
//   --emit-source           print the unparsed program without transforming
//   --conservative          disable the Section 6.1 check elimination
//   --analyze               report static partitions (Section 6.3) and
//                           static referenced-argument sets (Section 6.2)
//   --run PROC[,ARGS...]    execute PROC with integer arguments
//   --mode alphonse|conventional   execution model for --run (default
//                           alphonse)
//   --transactional         run each --run spec as a transactional batch:
//                           a runtime fault rolls the batch back to the
//                           previous quiescent state instead of leaving
//                           the graph half-propagated
//   --stats                 print runtime statistics after --run (printed
//                           even when the run fails, so fault.* and txn.*
//                           counters of degraded runs are visible)
//   --jobs N                drain independent graph partitions on N worker
//                           threads during propagation (0 = serial,
//                           default). The ALPHONSE_JOBS environment
//                           variable overrides this flag.
//   --no-bytecode           force the tree-walking interpreter for --run
//                           (every language node keeps its serial pin;
//                           ALPHONSE_NO_BYTECODE=1 does the same)
//   --dump-bytecode         disassemble the compiled form of every
//                           procedure, with its side-effect mask and
//                           whether it cleared the parallel-safety check
//   --static-graph          pre-instantiate the static graph shape for
//                           --run (paper 6.2; the default — the flag
//                           exists to override ALPHONSE_NO_STATIC_GRAPH
//                           documentation-style in scripts)
//   --no-static-graph       keep every node on the dynamic lazy path
//                           (ALPHONSE_NO_STATIC_GRAPH=1 does the same,
//                           and wins over --static-graph)
//   --restore PATH          rebuild the interpreter from a checkpoint (and
//                           its delta log) before running --run specs
//   --checkpoint PATH       write a full checkpoint after the --run specs
//   --checkpoint-delta PATH append a delta record to PATH's sidecar log
//                           after the --run specs (PATH must exist)
//   --fault-seed N          deterministically arm one process-kill fault
//                           at a checkpoint I/O injection site derived
//                           from N (crash-recovery drills from scripts)
//   --deadline-ms N         wall-clock budget per propagation wave: a
//                           wave still running after N ms is cancelled
//                           cooperatively at the next evaluation
//                           boundary, unrepaired values go stale, and
//                           the residue stays parked for a later pump
//   --step-budget N         evaluation-step budget per wave (same
//                           degradation semantics)
//   --mem-ceiling BYTES     slab-memory ceiling per wave (same semantics)
//   --overload-policy P     accept | defer | shed: what a budgeted wave
//                           does when parked residue from a previous
//                           degraded wave still exists (accept = run
//                           anyway, the default)
//
// Exit status: 0 on success, 1 on usage or compile errors, 2 on runtime
// errors — including runs that finish with quarantined nodes, so scripts
// can detect degraded executions — and checkpoint save/restore failures.
// Exit 3 marks a run whose answers are complete but *degraded*: a wave
// budget expired and some values are served stale (gov.* statistics are
// printed to stderr so scripts can see how far propagation got).
//
// ALPHONSE_AUDIT=1 in the environment enables the structural graph audit
// after every evaluation (DepGraph::Config::AuditAfterEvaluate).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/bytecode/Bytecode.h"
#include "interp/bytecode/Compiler.h"
#include "lang/Parser.h"
#include "support/CheckpointIO.h"
#include "support/FaultInjector.h"
#include "transform/StaticPartition.h"
#include "transform/StaticRefSets.h"
#include "transform/Transform.h"
#include "transform/Unparser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

namespace {

struct Options {
  std::string InputPath;
  bool EmitTransformed = false;
  bool EmitSource = false;
  bool Conservative = false;
  bool Analyze = false;
  bool Stats = false;
  bool Transactional = false;
  std::string RunSpec;
  std::string RestorePath;
  std::string CheckpointPath;
  std::string DeltaPath;
  uint64_t FaultSeed = 0;
  bool HaveFaultSeed = false;
  ExecMode Mode = ExecMode::Alphonse;
  unsigned Jobs = 0;
  bool NoBytecode = false;
  bool NoStaticGraph = false;
  bool DumpBytecode = false;
  WaveBudget Budget;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: alphonsec FILE.alf [--emit-transformed] [--emit-source]\n"
      "                 [--conservative] [--analyze] [--run PROC[,INT...]]\n"
      "                 [--mode alphonse|conventional] [--transactional]\n"
      "                 [--stats] [--jobs N] [--no-bytecode]\n"
      "                 [--static-graph] [--no-static-graph]\n"
      "                 [--dump-bytecode] [--restore PATH]\n"
      "                 [--checkpoint PATH] [--checkpoint-delta PATH]\n"
      "                 [--fault-seed N] [--deadline-ms N] [--step-budget N]\n"
      "                 [--mem-ceiling BYTES] "
      "[--overload-policy accept|defer|shed]\n");
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--emit-transformed") {
      Opts.EmitTransformed = true;
    } else if (Arg == "--emit-source") {
      Opts.EmitSource = true;
    } else if (Arg == "--conservative") {
      Opts.Conservative = true;
    } else if (Arg == "--analyze") {
      Opts.Analyze = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--transactional") {
      Opts.Transactional = true;
    } else if (Arg == "--no-bytecode") {
      Opts.NoBytecode = true;
    } else if (Arg == "--static-graph") {
      Opts.NoStaticGraph = false;
    } else if (Arg == "--no-static-graph") {
      Opts.NoStaticGraph = true;
    } else if (Arg == "--dump-bytecode") {
      Opts.DumpBytecode = true;
    } else if (Arg == "--run") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --run needs an argument\n");
        return false;
      }
      Opts.RunSpec = Argv[I];
    } else if (Arg == "--mode") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --mode needs an argument\n");
        return false;
      }
      std::string M = Argv[I];
      if (M == "alphonse") {
        Opts.Mode = ExecMode::Alphonse;
      } else if (M == "conventional") {
        Opts.Mode = ExecMode::Conventional;
      } else {
        std::fprintf(stderr, "error: unknown mode '%s'\n", M.c_str());
        return false;
      }
    } else if (Arg == "--jobs") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --jobs needs an argument\n");
        return false;
      }
      char *End = nullptr;
      unsigned long N = std::strtoul(Argv[I], &End, 10);
      if (!End || *End != '\0' || Argv[I][0] == '\0') {
        std::fprintf(stderr, "error: --jobs needs a non-negative integer\n");
        return false;
      }
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (Arg == "--restore") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --restore needs a path\n");
        return false;
      }
      Opts.RestorePath = Argv[I];
    } else if (Arg == "--checkpoint") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --checkpoint needs a path\n");
        return false;
      }
      Opts.CheckpointPath = Argv[I];
    } else if (Arg == "--checkpoint-delta") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --checkpoint-delta needs a path\n");
        return false;
      }
      Opts.DeltaPath = Argv[I];
    } else if (Arg == "--deadline-ms" || Arg == "--step-budget" ||
               Arg == "--mem-ceiling") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", Arg.c_str());
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0' || Argv[I][0] == '\0') {
        std::fprintf(stderr, "error: %s needs a non-negative integer\n",
                     Arg.c_str());
        return false;
      }
      if (Arg == "--deadline-ms")
        Opts.Budget.DeadlineUs = N * 1000;
      else if (Arg == "--step-budget")
        Opts.Budget.StepBudget = N;
      else
        Opts.Budget.MemCeilingBytes = N;
    } else if (Arg == "--overload-policy") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --overload-policy needs an argument\n");
        return false;
      }
      if (!parseOverloadPolicy(Argv[I], Opts.Budget.Policy)) {
        std::fprintf(stderr,
                     "error: unknown overload policy '%s' (accept, defer, "
                     "or shed)\n",
                     Argv[I]);
        return false;
      }
    } else if (Arg == "--fault-seed") {
      if (++I >= Argc) {
        std::fprintf(stderr, "error: --fault-seed needs an argument\n");
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0' || Argv[I][0] == '\0') {
        std::fprintf(stderr,
                     "error: --fault-seed needs a non-negative integer\n");
        return false;
      }
      Opts.FaultSeed = N;
      Opts.HaveFaultSeed = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "error: multiple input files\n");
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    usage();
    return false;
  }
  if (!Opts.EmitSource && !Opts.Analyze && !Opts.DumpBytecode &&
      Opts.RunSpec.empty() && Opts.RestorePath.empty() &&
      Opts.CheckpointPath.empty() && Opts.DeltaPath.empty())
    Opts.EmitTransformed = true; // Default action.
  return true;
}

int runProgram(const Options &Opts, const Module &M, const SemaInfo &Info) {
  // RunSpec: "Proc" or "Proc,1,2,3"; several specs separated by ';'.
  DepGraph::Config Cfg;
  Cfg.Workers = Opts.Jobs; // ALPHONSE_JOBS overrides (Runtime env hook).
  Interp I(M, Info, Opts.Mode, Cfg, /*EnableBytecode=*/!Opts.NoBytecode,
           /*EnableStaticGraph=*/!Opts.NoStaticGraph);
  // The budget flags govern every un-annotated pump the run performs
  // (checkpoint capture still pumps unbounded — it needs true
  // quiescence).
  if (!Opts.Budget.unlimited() ||
      Opts.Budget.Policy != OverloadPolicy::Accept)
    I.runtime().setDefaultBudget(Opts.Budget);
  int Status = 0;
  if (!Opts.RestorePath.empty()) {
    try {
      I.restoreCheckpoint(Opts.RestorePath);
      if (!I.restoreNote().empty())
        std::fprintf(stderr, "note: %s\n", I.restoreNote().c_str());
    } catch (const CheckpointError &E) {
      // Structured refusal: the snapshot (or its delta log) does not
      // describe a loadable state for this program. Nothing was accepted.
      std::fprintf(stderr, "checkpoint restore failed: %s\n", E.what());
      return 2;
    }
  }
  std::stringstream Specs(Opts.RunSpec);
  std::string OneSpec;
  while (std::getline(Specs, OneSpec, ';')) {
    std::stringstream Parts(OneSpec);
    std::string Name;
    std::getline(Parts, Name, ',');
    std::vector<Value> Args;
    std::string ArgText;
    while (std::getline(Parts, ArgText, ','))
      Args.push_back(Value::integer(std::stol(ArgText)));
    if (Opts.Transactional) {
      // Each spec is one mutation batch: a fault anywhere in it (or in
      // the commit propagation) rolls the runtime back to the state after
      // the previous spec instead of leaving it half-propagated.
      Transaction Txn(I.runtime());
      Value Result = I.call(Name, std::move(Args));
      if (I.failed()) {
        Txn.rollback();
        std::fprintf(stderr, "runtime error (batch rolled back): %s\n",
                     I.errorMessage().c_str());
        Status = 2;
        break;
      }
      if (!Txn.commit()) {
        const FaultInfo *FI = I.runtime().graph().abortFault();
        std::fprintf(stderr,
                     "transaction aborted (batch rolled back): %s\n",
                     FI ? FI->Message.c_str() : "unknown fault");
        Status = 2;
        break;
      }
      std::printf("%s => %s\n", Name.c_str(), Result.render().c_str());
    } else {
      Value Result = I.call(Name, std::move(Args));
      if (I.failed()) {
        std::fprintf(stderr, "runtime error: %s\n",
                     I.errorMessage().c_str());
        Status = 2;
        break;
      }
      std::printf("%s => %s\n", Name.c_str(), Result.render().c_str());
    }
  }
  if (!Opts.CheckpointPath.empty()) {
    try {
      I.saveCheckpoint(Opts.CheckpointPath);
    } catch (const CheckpointError &E) {
      std::fprintf(stderr, "checkpoint save failed: %s\n", E.what());
      Status = 2;
    }
  }
  if (!Opts.DeltaPath.empty()) {
    try {
      I.appendDelta(Opts.DeltaPath);
    } catch (const CheckpointError &E) {
      std::fprintf(stderr, "checkpoint delta failed: %s\n", E.what());
      Status = 2;
    }
  }
  if (!I.output().empty())
    std::printf("--- program output ---\n%s", I.output().c_str());
  if (Status == 0 && I.runtime().graph().numQuarantined() > 0) {
    // The calls all answered, but some nodes are degraded (faulted and
    // quarantined during eager propagation); scripts need to see that.
    std::fprintf(stderr,
                 "warning: execution finished with %zu quarantined "
                 "node(s)\n",
                 I.runtime().graph().numQuarantined());
    Status = 2;
  }
  if (Status == 0 && I.runtime().degraded()) {
    // Every call answered, but a wave budget expired mid-propagation:
    // some values are the last-quiescent (stale) ones and parked work
    // remains. Exit 3 is the "complete but degraded" signal (mirroring
    // the exit-2 quarantine convention), and the gov.* counters tell
    // scripts how far propagation got.
    const Statistics &S = I.runtime().stats();
    std::fprintf(stderr,
                 "warning: run ended degraded (%llu stale node(s), %llu "
                 "parked)\n",
                 static_cast<unsigned long long>(S.GovStaleNodes.total()),
                 static_cast<unsigned long long>(S.GovParkedNodes.total()));
    std::ostringstream GS;
    GS << S;
    std::string Txt = GS.str();
    // Print just the gov.* block of the statistics dump.
    for (size_t Pos = 0; (Pos = Txt.find("gov.", Pos)) != std::string::npos;) {
      size_t End = Txt.find('\n', Pos);
      std::fprintf(stderr, "%s\n",
                   Txt.substr(Pos, End - Pos).c_str());
      Pos = End == std::string::npos ? Txt.size() : End + 1;
    }
    Status = 3;
  }
  // Stats print even for failed runs: the fault.* and txn.* counters are
  // exactly what a degraded run needs to report.
  if (Opts.Stats) {
    std::ostringstream OS;
    OS << I.runtime().stats();
    std::printf("--- runtime statistics ---\n%s", OS.str().c_str());
  }
  return Status;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  // --fault-seed: deterministically arm one process kill at a checkpoint
  // I/O injection site. A snapshot pass hits "ckpt.io" 7 times (6 inside
  // the temp-write/fsync/rename protocol, 1 before the delta-log reset)
  // and a delta append hits "ckpt.delta.io" 4 times; the seed picks one
  // of the 11 slots, so sweeping N over 0..10 covers every kill point.
  FaultInjector Injector;
  std::unique_ptr<FaultInjector::Scope> InjectorScope;
  if (Opts.HaveFaultSeed) {
    uint64_t Slot = Opts.FaultSeed % 11;
    if (Slot < 7) {
      Injector.armKill("ckpt.io", Slot + 1);
      std::fprintf(stderr, "fault-seed %llu: kill at ckpt.io hit %llu\n",
                   static_cast<unsigned long long>(Opts.FaultSeed),
                   static_cast<unsigned long long>(Slot + 1));
    } else {
      Injector.armKill("ckpt.delta.io", Slot - 6);
      std::fprintf(stderr,
                   "fault-seed %llu: kill at ckpt.delta.io hit %llu\n",
                   static_cast<unsigned long long>(Opts.FaultSeed),
                   static_cast<unsigned long long>(Slot - 6));
    }
    InjectorScope = std::make_unique<FaultInjector::Scope>(Injector);
  }

  std::ifstream In(Opts.InputPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Opts.InputPath.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  DiagnosticEngine Diags;
  Module M = parseModule(Buffer.str(), Diags);
  SemaInfo Info = analyze(M, Diags);
  if (Diags.hasErrors()) {
    Diags.print(std::cerr);
    return 1;
  }
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Warning)
      std::cerr << D.Loc.str() << ": warning: " << D.Message << '\n';

  if (Opts.EmitSource)
    std::printf("%s", transform::unparse(M).c_str());

  transform::TransformOptions TOpts;
  TOpts.OptimizeLocalAccesses = !Opts.Conservative;
  TOpts.OptimizeCallChecks = !Opts.Conservative;
  transform::TransformStats TS = transform::transform(M, Info, TOpts);

  if (Opts.EmitTransformed) {
    std::printf("%s", transform::unparse(M).c_str());
    std::printf("(* instrumentation: %llu/%llu reads, %llu/%llu writes, "
                "%llu/%llu calls *)\n",
                static_cast<unsigned long long>(TS.ReadsWrapped),
                static_cast<unsigned long long>(TS.ReadsTotal),
                static_cast<unsigned long long>(TS.WritesWrapped),
                static_cast<unsigned long long>(TS.WritesTotal),
                static_cast<unsigned long long>(TS.CallsChecked),
                static_cast<unsigned long long>(TS.CallsTotal));
  }

  if (Opts.DumpBytecode) {
    // Compile the (transformed) module exactly as Interp's constructor
    // would, and show each procedure's lowered form plus the effect mask
    // the parallel-safety analysis derived for it.
    auto BC = interp::bytecode::compileModule(M, Info);
    for (const auto &P : M.Procs) {
      uint8_t Eff = BC->effects(P.get());
      std::printf("; effects: %s — %s\n",
                  interp::bytecode::effectsString(Eff).c_str(),
                  BC->parallelSafe(P.get())
                      ? "joins parallel waves"
                      : "serial-pinned");
      if (const interp::bytecode::Chunk *Ch = BC->chunk(P.get()))
        std::printf("%s\n", interp::bytecode::disassemble(*Ch).c_str());
      else
        std::printf("%s: <not compiled — tree-walker only>\n\n",
                    P->Name.c_str());
    }
  }

  if (Opts.Analyze) {
    transform::StaticPartitionResult SP =
        transform::computeStaticPartitions(M, Info);
    std::printf("static partitions: %d component(s)\n", SP.NumComponents);
    for (const auto &P : M.Procs)
      std::printf("  proc %-16s component %d\n", P->Name.c_str(),
                  SP.ProcComponent.at(P.get()));
    transform::StaticRefSetResult RS =
        transform::analyzeStaticRefSets(M, Info);
    std::printf("referenced-argument sets (Section 6.2):\n");
    for (const auto &P : M.Procs) {
      const transform::RefSetInfo *RI = RS.info(P.get());
      if (RI->IsStatic)
        std::printf("  proc %-16s static, |R(p)| <= %d\n",
                    P->Name.c_str(), RI->Bound);
      else
        std::printf("  proc %-16s dynamic\n", P->Name.c_str());
    }
  }

  if (!Opts.RunSpec.empty() || !Opts.RestorePath.empty() ||
      !Opts.CheckpointPath.empty() || !Opts.DeltaPath.empty())
    return runProgram(Opts, M, Info);
  return 0;
}
