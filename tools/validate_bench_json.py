#!/usr/bin/env python3
"""Validate a BENCH_all.json aggregate against the BenchSupport schema.

The schema is what tools/run_benches.sh emits from the per-binary
documents written by ALPHONSE_BENCH_MAIN's --json flag:

  { "host_concurrency": int >= 1,
    "suites": [ { "name": str,
                  "peak_rss_kb": int >= 0,
                  "benchmarks": [ { "name": str,
                                    "iterations": int >= 1,
                                    "ns_per_op": number >= 0,
                                    "counters"?: {str: number} } ] } ],
    "space"?: { "benchmark": str,
                "bytes_per_edge": number > 0,
                "bytes_per_node": number > 0 } | null }

Exits 0 when the document conforms (and, if present, the space object's
bytes_per_edge stays under the --max-bytes-per-edge bound), 1 otherwise.
Stdlib only — CI runs this right after the bench smoke sweep.
"""

import argparse
import json
import numbers
import sys


def fail(msg):
    print(f"validate_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_benchmark(suite, bench):
    where = f"suite '{suite}'"
    require(isinstance(bench, dict), f"{where}: benchmark entry is not an object")
    name = bench.get("name")
    require(isinstance(name, str) and name, f"{where}: benchmark without a name")
    where = f"{where}, benchmark '{name}'"
    iters = bench.get("iterations")
    require(isinstance(iters, int) and iters >= 1, f"{where}: bad iterations {iters!r}")
    ns = bench.get("ns_per_op")
    require(
        isinstance(ns, numbers.Real) and not isinstance(ns, bool) and ns >= 0,
        f"{where}: bad ns_per_op {ns!r}",
    )
    counters = bench.get("counters", {})
    require(isinstance(counters, dict), f"{where}: counters is not an object")
    for key, value in counters.items():
        require(isinstance(key, str) and key, f"{where}: counter with empty name")
        require(
            isinstance(value, numbers.Real) and not isinstance(value, bool),
            f"{where}: counter '{key}' is not a number",
        )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("path", help="aggregate JSON from tools/run_benches.sh")
    ap.add_argument(
        "--max-bytes-per-edge",
        type=float,
        default=None,
        help="fail when space.bytes_per_edge exceeds this bound",
    )
    ap.add_argument(
        "--require-suite",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a suite with this name is present and non-empty "
        "(repeatable); catches a bench binary silently dropped from the sweep",
    )
    ap.add_argument(
        "--latency-suite",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this suite has at least one benchmark reporting "
        "monotone p50_us <= p99_us <= p999_us latency counters (repeatable); "
        "used for serving-shaped suites like bench_sessions",
    )
    ap.add_argument(
        "--flat-gauge",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless this suite has at least one benchmark whose "
        "pool_high_water_start equals pool_high_water_end (repeatable); "
        "asserts the zero-allocation steady state of bench_static (E16)",
    )
    args = ap.parse_args()

    try:
        with open(args.path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    require(isinstance(doc, dict), "top level is not an object")
    hc = doc.get("host_concurrency")
    require(isinstance(hc, int) and hc >= 1, f"bad host_concurrency {hc!r}")

    suites = doc.get("suites")
    require(isinstance(suites, list) and suites, "suites missing or empty")
    total = 0
    for suite in suites:
        require(isinstance(suite, dict), "suite entry is not an object")
        name = suite.get("name")
        require(isinstance(name, str) and name, "suite without a name")
        rss = suite.get("peak_rss_kb")
        require(
            isinstance(rss, int) and rss >= 0, f"suite '{name}': bad peak_rss_kb {rss!r}"
        )
        benches = suite.get("benchmarks")
        require(isinstance(benches, list), f"suite '{name}': benchmarks is not a list")
        for bench in benches:
            check_benchmark(name, bench)
        total += len(benches)
    require(total > 0, "no benchmark runs recorded in any suite")

    by_name = {s["name"]: s for s in suites}
    for wanted in args.require_suite:
        require(wanted in by_name, f"required suite '{wanted}' is missing")
        require(
            len(by_name[wanted]["benchmarks"]) > 0,
            f"required suite '{wanted}' recorded no benchmark runs",
        )

    quantile_keys = ("p50_us", "p99_us", "p999_us")
    for wanted in args.latency_suite:
        require(wanted in by_name, f"latency suite '{wanted}' is missing")
        found = 0
        for bench in by_name[wanted]["benchmarks"]:
            counters = bench.get("counters", {})
            if not all(k in counters for k in quantile_keys):
                continue
            found += 1
            where = f"latency suite '{wanted}', benchmark '{bench['name']}'"
            p50, p99, p999 = (counters[k] for k in quantile_keys)
            require(p50 >= 0, f"{where}: negative p50_us {p50!r}")
            require(
                p50 <= p99 <= p999,
                f"{where}: quantiles not monotone "
                f"(p50={p50!r}, p99={p99!r}, p999={p999!r})",
            )
        require(
            found > 0,
            f"latency suite '{wanted}' has no benchmark reporting "
            f"{'/'.join(quantile_keys)} counters",
        )

    gauge_keys = ("pool_high_water_start", "pool_high_water_end")
    for wanted in args.flat_gauge:
        require(wanted in by_name, f"flat-gauge suite '{wanted}' is missing")
        found = 0
        for bench in by_name[wanted]["benchmarks"]:
            counters = bench.get("counters", {})
            if not all(k in counters for k in gauge_keys):
                continue
            found += 1
            where = f"flat-gauge suite '{wanted}', benchmark '{bench['name']}'"
            start, end = (counters[k] for k in gauge_keys)
            require(start > 0, f"{where}: pool_high_water_start is {start!r}")
            require(
                start == end,
                f"{where}: pool high-water moved during steady state "
                f"(start={start!r}, end={end!r}) — slab growth after warm-up",
            )
        require(
            found > 0,
            f"flat-gauge suite '{wanted}' has no benchmark reporting "
            f"{'/'.join(gauge_keys)} counters",
        )

    space = doc.get("space")
    if space is not None:
        require(isinstance(space, dict), "space is not an object")
        for key in ("bytes_per_edge", "bytes_per_node"):
            value = space.get(key)
            require(
                isinstance(value, numbers.Real)
                and not isinstance(value, bool)
                and value > 0,
                f"space.{key} is {value!r}",
            )
        if args.max_bytes_per_edge is not None:
            require(
                space["bytes_per_edge"] <= args.max_bytes_per_edge,
                f"space.bytes_per_edge {space['bytes_per_edge']} exceeds the "
                f"bound {args.max_bytes_per_edge}",
            )

    print(
        f"ok: {total} runs across {len(suites)} suites"
        + (f", bytes/edge {space['bytes_per_edge']:.1f}" if space else "")
    )


if __name__ == "__main__":
    main()
