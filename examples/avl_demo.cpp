//===- avl_demo.cpp - Self-balancing trees as a maintained property -------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.3 of the paper: AVL trees where insert/delete are the plain
// unbalanced-BST routines and balancing is a maintained method the runtime
// re-establishes on demand. Shows on-line use, off-line batches, and the
// (*UNCHECKED*) lookup variant of Section 6.4.
//
// Run: build/examples/avl_demo
//
//===----------------------------------------------------------------------===//

#include "trees/AvlTree.h"

#include <cstdio>

using namespace alphonse;
using trees::AvlTree;

int main() {
  std::printf("== Alphonse AVL trees (Algorithm 11) ==\n\n");

  {
    Runtime RT;
    AvlTree T(RT);
    // Worst case input for a plain BST: ascending keys.
    for (int K = 1; K <= 1000; ++K)
      T.insert(K);
    std::printf("inserted 1..1000 ascending (plain BST inserts)\n");
    RT.resetStats();
    T.rebalance(); // One maintained-balance pass fixes everything.
    std::printf("one rebalance: height=%d balanced=%s (%llu procedure "
                "runs)\n",
                T.height(), T.isAvlBalanced() ? "yes" : "NO",
                static_cast<unsigned long long>(
                    RT.stats().ProcExecutions));
    RT.resetStats();
    T.insert(5000);
    T.rebalance();
    std::printf("one more insert + rebalance: height=%d (%llu procedure "
                "runs — local, not global)\n",
                T.height(),
                static_cast<unsigned long long>(
                    RT.stats().ProcExecutions));
    T.erase(500);
    T.erase(501);
    T.rebalance();
    std::printf("after two deletes: balanced=%s contains(500)=%s\n",
                T.isAvlBalanced() ? "yes" : "NO",
                T.contains(500) ? "yes" : "no");
  }

  std::printf("\n-- (*UNCHECKED*) lookups (Section 6.4) --\n");
  {
    Runtime RT1, RT2;
    AvlTree Tracked(RT1, /*UncheckedLookups=*/false);
    AvlTree Unchecked(RT2, /*UncheckedLookups=*/true);
    for (int K = 0; K < 512; ++K) {
      Tracked.insert(K);
      Unchecked.insert(K);
    }
    Tracked.lookup(300);
    Unchecked.lookup(300);
    std::printf("lookup(300) dependency count: tracked=%zu unchecked=%zu\n",
                Tracked.lookupDependencyCount(300),
                Unchecked.lookupDependencyCount(300));
    std::printf("the unchecked lookup depends on the found item only, so "
                "unrelated\ninserts leave it cached; the tracked lookup "
                "depends on the whole\ndescent path.\n");
  }
  return 0;
}
