//===- quickstart.cpp - First steps with the Alphonse runtime -------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's running example (Algorithm 1): a binary tree whose height is
// written as the obvious exhaustive recursion and maintained incrementally
// by the runtime. Build a tree, demand its height, mutate it, and watch
// how little recomputation each step costs.
//
// Run: build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "trees/HeightTree.h"

#include <cstdio>
#include <vector>

using namespace alphonse;
using trees::HeightTree;

int main() {
  Runtime RT;
  HeightTree Tree(RT);

  // Build a perfect tree of 6 levels (63 nodes).
  std::vector<HeightTree::Node *> Nodes;
  for (int I = 0; I < 63; ++I)
    Nodes.push_back(Tree.makeNode());
  for (int I = 0; I < 63; ++I) {
    if (2 * I + 1 < 63)
      Tree.setLeft(Nodes[I], Nodes[2 * I + 1]);
    if (2 * I + 2 < 63)
      Tree.setRight(Nodes[I], Nodes[2 * I + 2]);
  }

  std::printf("== Alphonse quickstart: maintained tree height ==\n\n");

  // First demand: the exhaustive algorithm runs once, O(n).
  int H = Tree.height(Nodes[0]);
  std::printf("height(root) = %d   [first demand: %llu procedure runs]\n",
              H,
              static_cast<unsigned long long>(RT.stats().ProcExecutions));

  // Second demand: everything is cached, O(1).
  RT.resetStats();
  H = Tree.height(Nodes[0]);
  std::printf("height(root) = %d   [again:        %llu procedure runs, "
              "%llu cache hits]\n",
              H,
              static_cast<unsigned long long>(RT.stats().ProcExecutions),
              static_cast<unsigned long long>(RT.stats().CacheHits));

  // Extend below the leftmost leaf: only the leaf-to-root path updates.
  RT.resetStats();
  Tree.setLeft(Nodes[31], Tree.makeNode());
  std::printf("after growing one leaf:\n");
  H = Tree.height(Nodes[0]);
  std::printf("height(root) = %d   [update:       %llu procedure runs]\n",
              H,
              static_cast<unsigned long long>(RT.stats().ProcExecutions));

  // Batch: grow under every leaf, then demand once. The paper's claim:
  // cost is O(|AFFECTED|), not (number of changes) x (path length).
  RT.resetStats();
  for (int I = 31; I < 63; ++I)
    Tree.setRight(Nodes[I], Tree.makeNode());
  std::printf("after growing all 32 leaves (batched):\n");
  H = Tree.height(Nodes[0]);
  std::printf("height(root) = %d   [batched:      %llu procedure runs]\n",
              H,
              static_cast<unsigned long long>(RT.stats().ProcExecutions));

  // A change that does not affect the height is cut off by quiescence.
  RT.resetStats();
  HeightTree::Node *Spare = Tree.makeNode();
  Tree.setLeft(Nodes[62], Spare);   // Attach ...
  Tree.setLeft(Nodes[62], Tree.nil()); // ... and detach again.
  std::printf("after attach+detach (net no-op):\n");
  H = Tree.height(Nodes[0]);
  std::printf("height(root) = %d   [quiescent:    %llu procedure runs, "
              "%llu cutoffs]\n",
              H,
              static_cast<unsigned long long>(RT.stats().ProcExecutions),
              static_cast<unsigned long long>(
                  RT.stats().QuiescenceCutoffs));
  return 0;
}
