//===- spreadsheet_demo.cpp - Incremental spreadsheet session -------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.2 of the paper: a spreadsheet built from attribute-grammar
// expression trees plus a CellExp production referencing other cells. This
// demo builds a small budget sheet with running totals, edits cells, and
// reports how much work each recalculation took.
//
// Run: build/examples/spreadsheet_demo
//
//===----------------------------------------------------------------------===//

#include "spreadsheet/Spreadsheet.h"

#include <cstdio>

using namespace alphonse;
using spreadsheet::Spreadsheet;

static void show(Spreadsheet &S, Runtime &RT, const char *What) {
  RT.resetStats();
  std::printf("%-34s", What);
  std::printf(" | items:");
  for (int R = 0; R < S.rows(); ++R)
    std::printf(" %5d", S.value(R, 0));
  std::printf(" | totals:");
  for (int R = 0; R < S.rows(); ++R)
    std::printf(" %5d", S.value(R, 1));
  std::printf(" | %llu runs\n",
              static_cast<unsigned long long>(RT.stats().ProcExecutions));
}

int main() {
  Runtime RT;
  constexpr int Rows = 6;
  Spreadsheet S(RT, Rows, 2);

  std::printf("== Alphonse spreadsheet: column 0 = items, column 1 = "
              "running totals ==\n\n");

  // Column 0: item amounts; column 1: running totals.
  for (int R = 0; R < Rows; ++R)
    S.setLiteral(R, 0, (R + 1) * 10);
  S.setFormula(0, 1, "cell(0,0)");
  for (int R = 1; R < Rows; ++R)
    S.setFormula(R, 1,
                 "cell(" + std::to_string(R - 1) + ",1) + cell(" +
                     std::to_string(R) + ",0)");

  show(S, RT, "initial evaluation");
  show(S, RT, "re-read (all cached)");

  S.setLiteral(0, 0, 100);
  show(S, RT, "edit row 0 (everything downstream)");

  S.setLiteral(Rows - 1, 0, 1);
  show(S, RT, "edit last row (one total)");

  S.setLiteral(2, 0, 30); // Same value as before: quiescent.
  show(S, RT, "rewrite row 2 with same value");

  // A formula using the let-language of Section 7.1.
  S.setFormula(3, 0, "let x = cell(0,0) in x * 2 + 1 ni");
  show(S, RT, "row 3 becomes a let-formula");

  std::printf("\nexhaustive checksum: %lld (matches incremental: %s)\n",
              S.recomputeAllExhaustive(),
              [&] {
                long long Sum = 0;
                for (int R = 0; R < Rows; ++R)
                  for (int C = 0; C < 2; ++C)
                    Sum += S.value(R, C);
                return Sum == S.recomputeAllExhaustive() ? "yes" : "NO";
              }());
  return 0;
}
