//===- attribute_grammar_demo.cpp - Incremental attribution ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 7.1 of the paper: attribute grammars as Alphonse data types. An
// editing session over a let-expression program: evaluate, then apply
// small edits (literal changes, renames, subtree splices) and watch how
// localized the reattribution is — the behaviour language-based editors
// like the Synthesizer Generator implement with special machinery, here
// falling out of the general transformation.
//
// Run: build/examples/attribute_grammar_demo
//
//===----------------------------------------------------------------------===//

#include "attrgram/ExprTree.h"
#include "attrgram/FormulaParser.h"

#include <cstdio>

using namespace alphonse;
using namespace alphonse::attrgram;

static void evaluate(ExprTree &T, RootExp *Root, const char *What) {
  Runtime &RT = T.runtime();
  RT.resetStats();
  int V = T.value(Root);
  std::printf("%-44s = %6d   (%llu attribute re-evaluations)\n", What, V,
              static_cast<unsigned long long>(RT.stats().ProcExecutions));
}

int main() {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine Diags;

  std::printf("== Alphonse attribute grammars: let-expressions ==\n\n");

  // program: let a = 10 in let b = a + 5 in a * b + BONUS ni ni
  IntExp *Bonus = T.makeInt(7);
  Exp *Product = T.makeMul(T.makeId("a"), T.makeId("b"));
  Exp *Body = T.makePlus(Product, Bonus);
  Exp *InnerBind = T.makePlus(T.makeId("a"), T.makeInt(5));
  LetExp *Inner = T.makeLet("b", InnerBind, Body);
  IntExp *ALit = T.makeInt(10);
  LetExp *Outer = T.makeLet("a", ALit, Inner);
  RootExp *Root = T.makeRoot(Outer);

  std::printf("let a = 10 in let b = a + 5 in a * b + 7 ni ni\n\n");
  evaluate(T, Root, "initial attribution");
  evaluate(T, Root, "re-read (cached)");

  Bonus->Lit.set(100);
  evaluate(T, Root, "edit the bonus literal (7 -> 100)");

  ALit->Lit.set(3);
  evaluate(T, Root, "edit the outer binding (10 -> 3)");

  Inner->Id.set("c"); // The body's 'b' becomes unbound (= 0).
  evaluate(T, Root, "rename inner binder b -> c");

  Inner->Id.set("b");
  evaluate(T, Root, "rename it back");

  // Splice: replace the product with a parsed subtree.
  Exp *New = parseFormula(T, "let s = a + b in s * s ni", Diags);
  if (!New) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  PlusExp *Plus = static_cast<PlusExp *>(Body);
  T.replaceChild(Plus->Lhs, Plus, New);
  evaluate(T, Root, "splice in 'let s = a + b in s*s ni'");

  evaluate(T, Root, "re-read (cached)");
  return 0;
}
