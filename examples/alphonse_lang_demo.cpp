//===- alphonse_lang_demo.cpp - The program transformation system ---------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's core artifact: a source-to-source transformation system.
// This demo compiles the paper's Algorithm 1 written in Alphonse-L,
// prints the *transformed* program (showing where access/modify/call
// landed, like the paper's Algorithm 2), then executes it under both the
// conventional and the Alphonse model, demonstrating Theorem 5.1 (same
// results) and the incremental speedup.
//
// Run: build/examples/alphonse_lang_demo
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/Parser.h"
#include "transform/StaticPartition.h"
#include "transform/Transform.h"
#include "transform/Unparser.h"

#include <cstdio>

using namespace alphonse;
using namespace alphonse::lang;
using namespace alphonse::interp;

static const char *Program = R"(
TYPE Tree = OBJECT
  left, right : Tree;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
END;

TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
END;

VAR
  nil : Tree;
  root : Tree;

PROCEDURE Height(t : Tree) : INTEGER =
BEGIN
  RETURN max(t.left.height(), t.right.height()) + 1;
END Height;

PROCEDURE HeightNil(t : Tree) : INTEGER =
BEGIN
  RETURN 0;
END HeightNil;

PROCEDURE Build(n : INTEGER) =
VAR t, p : Tree; i : INTEGER;
BEGIN
  nil := NEW(TreeNil);
  t := nil;
  FOR i := 1 TO n DO
    p := NEW(Tree);
    p.left := t;
    p.right := nil;
    t := p;
  END;
  root := t;
END Build;

PROCEDURE Grow() =
VAR t, p : Tree;
BEGIN
  t := root;
  WHILE t.right # nil DO
    t := t.right;
  END;
  p := NEW(Tree);
  p.left := nil;
  p.right := nil;
  t.right := p;
END Grow;

PROCEDURE Demand() : INTEGER =
BEGIN
  RETURN root.height();
END Demand;
)";

int main() {
  DiagnosticEngine Diags;
  Module M = parseModule(Program, Diags);
  SemaInfo Info = analyze(M, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  transform::TransformStats TS = transform::transform(M, Info);

  std::printf("== The Alphonse transformation (Section 5) ==\n\n");
  std::printf("input: the paper's Algorithm 1 (maintained tree height), "
              "120 lines of Alphonse-L\n\n");
  std::printf("transformed program (access/modify/call inserted):\n");
  std::printf("----------------------------------------------------------\n");
  std::printf("%s", transform::unparse(M).c_str());
  std::printf("----------------------------------------------------------\n");
  std::printf("instrumentation after the Section 6.1 optimization: "
              "%llu/%llu reads, %llu/%llu writes, %llu/%llu calls wrapped\n\n",
              static_cast<unsigned long long>(TS.ReadsWrapped),
              static_cast<unsigned long long>(TS.ReadsTotal),
              static_cast<unsigned long long>(TS.WritesWrapped),
              static_cast<unsigned long long>(TS.WritesTotal),
              static_cast<unsigned long long>(TS.CallsChecked),
              static_cast<unsigned long long>(TS.CallsTotal));

  transform::StaticPartitionResult SP =
      transform::computeStaticPartitions(M, Info);
  std::printf("static connectivity components (Section 6.3): %d\n\n",
              SP.NumComponents);

  constexpr long N = 200;
  std::printf("== Execution: left chain of %ld nodes, grow a right spine "
              "20 times,\n   re-demanding the height each time ==\n\n", N);

  auto RunScript = [&](Interp &I) {
    I.call("Build", {Value::integer(N)});
    long Sum = I.call("Demand").Int;
    for (int Step = 0; Step < 20; ++Step) {
      I.call("Grow");
      Sum += I.call("Demand").Int;
    }
    return Sum;
  };

  Interp Conv(M, Info, ExecMode::Conventional);
  long ConvSum = RunScript(Conv);
  Interp Alph(M, Info, ExecMode::Alphonse);
  long AlphSum = RunScript(Alph);

  std::printf("conventional execution:  checksum %ld\n", ConvSum);
  std::printf("Alphonse execution:      checksum %ld   (Theorem 5.1: %s)\n",
              AlphSum, ConvSum == AlphSum ? "outputs agree" : "MISMATCH");
  std::printf("Alphonse procedure runs: %llu (vs ~%ld height evaluations "
              "the exhaustive model performs)\n",
              static_cast<unsigned long long>(
                  Alph.runtime().stats().ProcExecutions),
              21 * (N + 10));
  std::printf("cache hits: %llu, edges live: %zu, nodes live: %zu\n",
              static_cast<unsigned long long>(
                  Alph.runtime().stats().CacheHits),
              Alph.runtime().graph().numLiveEdges(),
              Alph.runtime().graph().numLiveNodes());
  return 0;
}
