//===- SpreadsheetTest.cpp - Spreadsheet tests ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Section 7.2 spreadsheet: cell formulas, cross-cell references
/// (Algorithm 10's CellExp), incremental recalculation, dependency chains,
/// cycles, and randomized equivalence with the exhaustive oracle.
///
//===----------------------------------------------------------------------===//

#include "spreadsheet/Spreadsheet.h"
#include "support/CheckpointIO.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>

namespace alphonse::spreadsheet {
namespace {

TEST(SpreadsheetTest, EmptyCellsAreZero) {
  Runtime RT;
  Spreadsheet S(RT, 3, 3);
  EXPECT_EQ(S.value(0, 0), 0);
  EXPECT_EQ(S.value(2, 2), 0);
}

TEST(SpreadsheetTest, LiteralAndArithmetic) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  ASSERT_TRUE(S.setFormula(0, 0, "21 * 2"));
  EXPECT_EQ(S.value(0, 0), 42);
}

TEST(SpreadsheetTest, CrossCellReference) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  ASSERT_TRUE(S.setFormula(0, 0, "7"));
  ASSERT_TRUE(S.setFormula(0, 1, "cell(0,0) * 3"));
  EXPECT_EQ(S.value(0, 1), 21);
}

TEST(SpreadsheetTest, EditPropagatesThroughReferences) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "7");
  S.setFormula(0, 1, "cell(0,0) * 3");
  S.setFormula(1, 0, "cell(0,1) + 1");
  EXPECT_EQ(S.value(1, 0), 22);
  S.setLiteral(0, 0, 10);
  EXPECT_EQ(S.value(1, 0), 31);
  EXPECT_EQ(S.value(0, 1), 30);
}

TEST(SpreadsheetTest, UnrelatedCellsStayCached) {
  Runtime RT;
  Spreadsheet S(RT, 4, 4);
  S.setFormula(0, 0, "1");
  S.setFormula(0, 1, "cell(0,0) + 1");
  S.setFormula(3, 3, "1000");
  S.setFormula(3, 2, "cell(3,3) + 1");
  EXPECT_EQ(S.value(0, 1), 2);
  EXPECT_EQ(S.value(3, 2), 1001);
  RT.resetStats();
  S.setLiteral(0, 0, 5);
  EXPECT_EQ(S.value(3, 2), 1001); // Untouched chain: no re-execution...
  EXPECT_EQ(RT.stats().ProcExecutions, 0u);
  EXPECT_EQ(S.value(0, 1), 6); // ...while the edited chain updates.
  EXPECT_GT(RT.stats().ProcExecutions, 0u);
}

TEST(SpreadsheetTest, FormulaReplacementInvalidates) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "1 + 1");
  EXPECT_EQ(S.value(0, 0), 2);
  S.setFormula(0, 0, "let x = 5 in x * x ni");
  EXPECT_EQ(S.value(0, 0), 25);
}

TEST(SpreadsheetTest, ClearCellInvalidatesDependents) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "9");
  S.setFormula(0, 1, "cell(0,0) + 1");
  EXPECT_EQ(S.value(0, 1), 10);
  S.clearCell(0, 0);
  EXPECT_EQ(S.value(0, 1), 1);
}

TEST(SpreadsheetTest, ParseErrorKeepsOldFormula) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "5");
  EXPECT_FALSE(S.setFormula(0, 0, "5 +"));
  EXPECT_TRUE(S.diagnostics().hasErrors());
  EXPECT_EQ(S.value(0, 0), 5);
}

TEST(SpreadsheetTest, OutOfRangeCellRefIsAnError) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  EXPECT_FALSE(S.setFormula(0, 0, "cell(5,5)"));
  EXPECT_TRUE(S.diagnostics().hasErrors());
}

TEST(SpreadsheetTest, DirectCycleEvaluatesToZeroWithFlag) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "cell(0,0) + 1");
  EXPECT_EQ(S.value(0, 0), 1); // Inner reference sees 0.
  EXPECT_TRUE(S.cycleDetected());
}

TEST(SpreadsheetTest, MutualCycleDetected) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "cell(0,1)");
  S.setFormula(0, 1, "cell(0,0)");
  S.value(0, 0);
  EXPECT_TRUE(S.cycleDetected());
  // Breaking the cycle clears things up.
  S.clearCycleFlag();
  S.setFormula(0, 1, "8");
  EXPECT_EQ(S.value(0, 0), 8);
  EXPECT_FALSE(S.cycleDetected());
}

TEST(SpreadsheetTest, LetFormulasWork) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(1, 1, "6");
  S.setFormula(0, 0, "let x = cell(1,1) in x * x + x ni");
  EXPECT_EQ(S.value(0, 0), 42);
  S.setLiteral(1, 1, 2);
  EXPECT_EQ(S.value(0, 0), 6);
}

TEST(SpreadsheetTest, RunningTotalsColumn) {
  // A classic sheet: column 1 keeps running totals of column 0.
  Runtime RT;
  constexpr int N = 16;
  Spreadsheet S(RT, N, 2);
  S.setFormula(0, 1, "cell(0,0)");
  for (int R = 0; R < N; ++R) {
    S.setLiteral(R, 0, R + 1);
    if (R > 0)
      S.setFormula(R, 1,
                   "cell(" + std::to_string(R - 1) + ",1) + cell(" +
                       std::to_string(R) + ",0)");
  }
  EXPECT_EQ(S.value(N - 1, 1), N * (N + 1) / 2);
  // Editing row 0 ripples through every total.
  S.setLiteral(0, 0, 101);
  EXPECT_EQ(S.value(N - 1, 1), N * (N + 1) / 2 + 100);
  // Editing the last row touches only the last total.
  RT.resetStats();
  S.setLiteral(N - 1, 0, N + 100);
  EXPECT_EQ(S.value(N - 1, 1), N * (N + 1) / 2 + 200);
  EXPECT_LE(RT.stats().ProcExecutions, 6u);
}

TEST(SpreadsheetTest, ExhaustiveBaselineAgrees) {
  Runtime RT;
  Spreadsheet S(RT, 4, 4);
  S.setFormula(0, 0, "2");
  S.setFormula(0, 1, "cell(0,0) * 10");
  S.setFormula(1, 0, "cell(0,1) + cell(0,0)");
  S.setFormula(1, 1, "let s = cell(1,0) in s + s ni");
  long long Exhaustive = S.recomputeAllExhaustive();
  long long Incremental = 0;
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      Incremental += S.value(R, C);
  EXPECT_EQ(Exhaustive, Incremental);
}

TEST(SpreadsheetTest, SetAllCommitsAtomically) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(1, 1, "cell(0,0) + cell(0,1)");
  EXPECT_EQ(S.value(1, 1), 0);
  EXPECT_TRUE(S.setAll({{0, 0, "4"}, {0, 1, "5"}}));
  EXPECT_EQ(S.value(1, 1), 9);
  EXPECT_EQ(RT.stats().TxnCommitted, 1u);
}

TEST(SpreadsheetTest, SetAllRollsBackOnParseError) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "1");
  S.setFormula(0, 1, "cell(0,0) * 10");
  EXPECT_EQ(S.value(0, 1), 10);
  // The first edit parses; the second does not. Neither survives.
  EXPECT_FALSE(S.setAll({{0, 0, "2"}, {0, 1, "cell(0,0) +"}}));
  EXPECT_TRUE(S.diagnostics().hasErrors());
  EXPECT_EQ(S.value(0, 0), 1);
  EXPECT_EQ(S.value(0, 1), 10);
  EXPECT_EQ(RT.stats().TxnRolledBack, 1u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(SpreadsheetTest, SetAllRollsBackOnOutOfRangeTarget) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "1");
  EXPECT_FALSE(S.setAll({{0, 0, "2"}, {5, 5, "3"}}));
  EXPECT_EQ(S.value(0, 0), 1);
  EXPECT_EQ(RT.stats().TxnRolledBack, 1u);
}

TEST(SpreadsheetTest, SetAllRollsBackOnIntroducedCycle) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "3");
  S.setFormula(0, 1, "cell(0,0) * 2");
  EXPECT_EQ(S.value(0, 1), 6);
  // The batch would close a reference cycle (0,0) -> (0,1) -> (0,0):
  // everything reverts, including the cycle flag.
  EXPECT_FALSE(S.setAll({{0, 0, "cell(0,1) + 1"}}));
  EXPECT_FALSE(S.cycleDetected());
  EXPECT_EQ(S.value(0, 0), 3);
  EXPECT_EQ(S.value(0, 1), 6);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // A fault-free batch on the recovered sheet still commits.
  EXPECT_TRUE(S.setAll({{0, 0, "10"}, {1, 0, "cell(0,1) + 1"}}));
  EXPECT_EQ(S.value(1, 0), 21);
}

TEST(SpreadsheetTest, SetAllRollsBackOnInjectedFault) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "2");
  S.setFormula(0, 1, "cell(0,0) + 1");
  EXPECT_EQ(S.value(0, 1), 3);

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("Sheet.value");
  EXPECT_FALSE(S.setAll({{0, 0, "100"}}));
  EXPECT_EQ(S.value(0, 0), 2);
  EXPECT_EQ(S.value(0, 1), 3);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // The injector fired once; the retry goes through.
  EXPECT_TRUE(S.setAll({{0, 0, "100"}}));
  EXPECT_EQ(S.value(0, 1), 101);
}

TEST(SpreadsheetTest, SetAllClearsCellsTransactionally) {
  Runtime RT;
  Spreadsheet S(RT, 2, 2);
  S.setFormula(0, 0, "8");
  S.setFormula(0, 1, "cell(0,0) + 1");
  EXPECT_EQ(S.value(0, 1), 9);
  EXPECT_TRUE(S.setAll({{0, 0, ""}, {1, 1, "5"}}));
  EXPECT_EQ(S.value(0, 0), 0);
  EXPECT_EQ(S.value(0, 1), 1);
  EXPECT_EQ(S.value(1, 1), 5);
}

/// Parameterized random-sheet equivalence: random formulas with
/// back-references (acyclic by construction), random edits, oracle checks.
class SpreadsheetRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SpreadsheetRandomTest, RandomEditsMatchOracle) {
  int Dim = GetParam();
  std::mt19937 Rng(static_cast<unsigned>(Dim * 17));
  Runtime RT;
  Spreadsheet S(RT, Dim, Dim);
  // Fill in raster order; formulas may reference strictly earlier cells,
  // so the sheet is acyclic.
  auto RandomRef = [&](int Upto) {
    int I = static_cast<int>(Rng() % static_cast<unsigned>(Upto));
    return "cell(" + std::to_string(I / Dim) + "," + std::to_string(I % Dim) +
           ")";
  };
  for (int I = 0; I < Dim * Dim; ++I) {
    int R = I / Dim, C = I % Dim;
    if (I == 0 || Rng() % 3 == 0) {
      S.setLiteral(R, C, static_cast<int>(Rng() % 50));
      continue;
    }
    std::string F = RandomRef(I) + " + " + RandomRef(I);
    if (Rng() % 4 == 0)
      F = "let t = " + RandomRef(I) + " in t * 2 + " + F + " ni";
    ASSERT_TRUE(S.setFormula(R, C, F)) << S.diagnostics().str();
  }
  for (int Edit = 0; Edit < 30; ++Edit) {
    int R = static_cast<int>(Rng() % Dim), C = static_cast<int>(Rng() % Dim);
    S.setLiteral(R, C, static_cast<int>(Rng() % 50));
    long long Inc = 0;
    for (int I = 0; I < Dim * Dim; ++I)
      Inc += S.value(I / Dim, I % Dim);
    ASSERT_EQ(Inc, S.recomputeAllExhaustive()) << "edit " << Edit;
  }
  EXPECT_FALSE(S.cycleDetected());
}

INSTANTIATE_TEST_SUITE_P(Dims, SpreadsheetRandomTest,
                         ::testing::Values(2, 4, 8));

/// Temp checkpoint path removed (with its sidecars) on scope exit.
class TempSheetCheckpoint {
public:
  explicit TempSheetCheckpoint(const std::string &Stem) {
    const char *Dir = std::getenv("TMPDIR");
    Path = std::string(Dir ? Dir : "/tmp") + "/" + Stem + "." +
           std::to_string(::getpid()) + ".ckpt";
  }
  ~TempSheetCheckpoint() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
    std::remove(deltaLogPath(Path).c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

TEST(SpreadsheetCheckpointTest, StructuralRoundtrip) {
  TempSheetCheckpoint File("sheet-ckpt");
  Runtime RTA;
  Spreadsheet A(RTA, 3, 3);
  ASSERT_TRUE(A.setFormula(0, 0, "7"));
  ASSERT_TRUE(A.setFormula(0, 1, "cell(0,0) * 3"));
  ASSERT_TRUE(A.setFormula(1, 0, "let x = cell(0,1) in x + 2 ni"));
  A.setLiteral(2, 2, 41);
  A.saveCheckpoint(File.path());

  Runtime RTB;
  Spreadsheet B(RTB, 3, 3);
  B.restoreCheckpoint(File.path());
  EXPECT_EQ(B.value(0, 0), 7);
  EXPECT_EQ(B.value(0, 1), 21);
  EXPECT_EQ(B.value(1, 0), 23);
  EXPECT_EQ(B.value(2, 2), 41);
  EXPECT_FALSE(B.cycleDetected());
  EXPECT_TRUE(RTB.graph().verify().empty());

  // The restored sheet keeps recalculating incrementally.
  B.setLiteral(0, 0, 10);
  EXPECT_EQ(B.value(1, 0), 32);
}

TEST(SpreadsheetCheckpointTest, DimensionMismatchIsRejected) {
  TempSheetCheckpoint File("sheet-ckpt-dims");
  Runtime RTA;
  Spreadsheet A(RTA, 2, 2);
  A.setLiteral(0, 0, 5);
  A.saveCheckpoint(File.path());

  Runtime RTB;
  Spreadsheet B(RTB, 3, 2);
  try {
    B.restoreCheckpoint(File.path());
    FAIL() << "restore into a different extent must throw";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Malformed);
  }
}

TEST(SpreadsheetCheckpointTest, RolledBackBatchIsNotPersisted) {
  TempSheetCheckpoint File("sheet-ckpt-rollback");
  Runtime RTA;
  Spreadsheet A(RTA, 2, 2);
  ASSERT_TRUE(A.setFormula(0, 0, "9"));
  ASSERT_TRUE(A.setFormula(0, 1, "cell(0,0) + 1"));

  // The batch fails on a parse error; its formula sources must not leak
  // into a later checkpoint (they are journaled alongside the values).
  EXPECT_FALSE(A.setAll({{0, 0, "100"}, {0, 1, "syntax ((("}}));
  A.saveCheckpoint(File.path());

  Runtime RTB;
  Spreadsheet B(RTB, 2, 2);
  B.restoreCheckpoint(File.path());
  EXPECT_EQ(B.value(0, 0), 9);
  EXPECT_EQ(B.value(0, 1), 10);
}

TEST(SpreadsheetTest, BudgetedRecalcServesStaleValuesThenCatchesUp) {
  Runtime RT;
  Spreadsheet S(RT, 1, 6);
  // A reference chain: each cell is its left neighbor plus one.
  ASSERT_TRUE(S.setFormula(0, 0, "1"));
  for (int C = 1; C < 6; ++C)
    ASSERT_TRUE(
        S.setFormula(0, C, "cell(0," + std::to_string(C - 1) + ") + 1"));
  EXPECT_EQ(S.value(0, 5), 6);
  S.recalc();
  EXPECT_FALSE(S.valueIsStale(0, 5));

  // Edit the head, then recalc under a one-step budget: the wave cancels
  // long before the invalidation reaches the chain's tail, and the
  // unreached cone is flagged stale (its cached values are the old ones).
  S.setLiteral(0, 0, 100);
  EXPECT_EQ(S.recalc(WaveBudget::steps(1)), WaveOutcome::DegradedSteps);
  EXPECT_TRUE(S.valueIsStale(0, 5))
      << "the tail has not seen the edit yet; reads there are degraded";

  // An unbudgeted recalc finishes the parked wave exactly.
  EXPECT_EQ(S.recalc(WaveBudget()), WaveOutcome::Completed);
  EXPECT_FALSE(S.valueIsStale(0, 5));
  EXPECT_EQ(S.value(0, 5), 105);
  EXPECT_EQ(S.recomputeAllExhaustive(),
            100 + 101 + 102 + 103 + 104 + 105);
}

} // namespace
} // namespace alphonse::spreadsheet
