//===- StaticRefSetsTest.cpp - Section 6.2 analysis tests -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/StaticRefSets.h"

#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

namespace alphonse::transform {
namespace {

using testing::compile;

TEST(StaticRefSetsTest, HeightHasTheStaticSetOfThePaper) {
  // R(t.height()) = {t.left, t.left.height(), t.right, t.right.height()}:
  // the paper's Section 3.4 example of a static four-element set.
  auto C = compile(testing::heightTreeProgram(), /*DoTransform=*/false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Height = R.info(C->M.findProc("Height"));
  ASSERT_NE(Height, nullptr);
  EXPECT_TRUE(Height->IsStatic);
  EXPECT_EQ(Height->Bound, 4);
  const RefSetInfo *HeightNil = R.info(C->M.findProc("HeightNil"));
  ASSERT_NE(HeightNil, nullptr);
  EXPECT_TRUE(HeightNil->IsStatic);
  EXPECT_EQ(HeightNil->Bound, 0); // R(n.height()) = {} for the nil object.
}

TEST(StaticRefSetsTest, LoopsAreUnbounded) {
  auto C = compile(R"(
TYPE T = OBJECT next : T; v : INTEGER;
METHODS (*MAINTAINED*) sum() : INTEGER := Sum; END;
PROCEDURE Sum(o : T) : INTEGER =
VAR p : T; s : INTEGER;
BEGIN
  p := o;
  WHILE p # NIL DO
    s := s + p.v;
    p := p.next;
  END;
  RETURN s;
END Sum;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_FALSE(R.info(C->M.findProc("Sum"))->IsStatic);
}

TEST(StaticRefSetsTest, RecursionIsUnbounded) {
  auto C = compile(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
)",
                   false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  // Fib's own refs are the two cached callee instances... but the callee
  // is Fib itself and cached, so each call is one edge: actually static!
  // The cached pragma bounds the recursion at the call edge.
  const RefSetInfo *Fib = R.info(C->M.findProc("Fib"));
  ASSERT_NE(Fib, nullptr);
  EXPECT_TRUE(Fib->IsStatic);
  EXPECT_EQ(Fib->Bound, 2);
}

TEST(StaticRefSetsTest, ConventionalRecursionIsUnbounded) {
  auto C = compile(R"(
PROCEDURE Walk(n : INTEGER) : INTEGER =
BEGIN
  IF n <= 0 THEN RETURN 0; END;
  RETURN Walk(n - 1) + 1;
END Walk;
)",
                   false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_FALSE(R.info(C->M.findProc("Walk"))->IsStatic);
}

TEST(StaticRefSetsTest, ConventionalHelpersInline) {
  auto C = compile(R"(
VAR g1, g2 : INTEGER;
TYPE T = OBJECT METHODS (*MAINTAINED*) m() : INTEGER := M; END;
PROCEDURE Helper() : INTEGER = BEGIN RETURN g1 + g2; END Helper;
PROCEDURE M(o : T) : INTEGER = BEGIN RETURN Helper() + g1; END M;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *MInfo = R.info(C->M.findProc("M"));
  ASSERT_NE(MInfo, nullptr);
  EXPECT_TRUE(MInfo->IsStatic);
  // Helper's two globals inline, plus M's own read of g1.
  EXPECT_EQ(MInfo->Bound, 3);
}

TEST(StaticRefSetsTest, UncheckedReferencesCostNothing) {
  auto C = compile(R"(
VAR a, b : INTEGER;
TYPE T = OBJECT METHODS (*MAINTAINED*) m() : INTEGER := M; END;
PROCEDURE M(o : T) : INTEGER =
BEGIN
  RETURN a + (*UNCHECKED*) b;
END M;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_EQ(R.info(C->M.findProc("M"))->Bound, 1); // Only 'a'.
}

TEST(StaticRefSetsTest, AvlBalanceIsStatic) {
  // Balance touches a fixed set of fields and incremental methods per
  // node; the rotations write fields (each write counts its location).
  auto C = compile(testing::avlProgram(), /*DoTransform=*/false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Balance = R.info(C->M.findProc("Balance"));
  ASSERT_NE(Balance, nullptr);
  EXPECT_TRUE(Balance->IsStatic);
  EXPECT_GT(Balance->Bound, 4);
  // Contains walks the tree with a loop: unbounded.
  EXPECT_FALSE(R.info(C->M.findProc("Contains"))->IsStatic);
}

} // namespace
} // namespace alphonse::transform
