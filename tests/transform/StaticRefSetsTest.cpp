//===- StaticRefSetsTest.cpp - Section 6.2 analysis tests -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/StaticRefSets.h"

#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

namespace alphonse::transform {
namespace {

using testing::compile;

TEST(StaticRefSetsTest, HeightHasTheStaticSetOfThePaper) {
  // R(t.height()) = {t.left, t.left.height(), t.right, t.right.height()}:
  // the paper's Section 3.4 example of a static four-element set.
  auto C = compile(testing::heightTreeProgram(), /*DoTransform=*/false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Height = R.info(C->M.findProc("Height"));
  ASSERT_NE(Height, nullptr);
  EXPECT_TRUE(Height->IsStatic);
  EXPECT_EQ(Height->Bound, 4);
  const RefSetInfo *HeightNil = R.info(C->M.findProc("HeightNil"));
  ASSERT_NE(HeightNil, nullptr);
  EXPECT_TRUE(HeightNil->IsStatic);
  EXPECT_EQ(HeightNil->Bound, 0); // R(n.height()) = {} for the nil object.
}

TEST(StaticRefSetsTest, LoopsAreUnbounded) {
  auto C = compile(R"(
TYPE T = OBJECT next : T; v : INTEGER;
METHODS (*MAINTAINED*) sum() : INTEGER := Sum; END;
PROCEDURE Sum(o : T) : INTEGER =
VAR p : T; s : INTEGER;
BEGIN
  p := o;
  WHILE p # NIL DO
    s := s + p.v;
    p := p.next;
  END;
  RETURN s;
END Sum;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_FALSE(R.info(C->M.findProc("Sum"))->IsStatic);
}

TEST(StaticRefSetsTest, RecursionIsUnbounded) {
  auto C = compile(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
)",
                   false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  // Fib's own refs are the two cached callee instances... but the callee
  // is Fib itself and cached, so each call is one edge: actually static!
  // The cached pragma bounds the recursion at the call edge.
  const RefSetInfo *Fib = R.info(C->M.findProc("Fib"));
  ASSERT_NE(Fib, nullptr);
  EXPECT_TRUE(Fib->IsStatic);
  EXPECT_EQ(Fib->Bound, 2);
}

TEST(StaticRefSetsTest, ConventionalRecursionIsUnbounded) {
  auto C = compile(R"(
PROCEDURE Walk(n : INTEGER) : INTEGER =
BEGIN
  IF n <= 0 THEN RETURN 0; END;
  RETURN Walk(n - 1) + 1;
END Walk;
)",
                   false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_FALSE(R.info(C->M.findProc("Walk"))->IsStatic);
}

TEST(StaticRefSetsTest, ConventionalHelpersInline) {
  auto C = compile(R"(
VAR g1, g2 : INTEGER;
TYPE T = OBJECT METHODS (*MAINTAINED*) m() : INTEGER := M; END;
PROCEDURE Helper() : INTEGER = BEGIN RETURN g1 + g2; END Helper;
PROCEDURE M(o : T) : INTEGER = BEGIN RETURN Helper() + g1; END M;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *MInfo = R.info(C->M.findProc("M"));
  ASSERT_NE(MInfo, nullptr);
  EXPECT_TRUE(MInfo->IsStatic);
  // Helper's two globals inline, plus M's own read of g1.
  EXPECT_EQ(MInfo->Bound, 3);
}

TEST(StaticRefSetsTest, UncheckedReferencesCostNothing) {
  auto C = compile(R"(
VAR a, b : INTEGER;
TYPE T = OBJECT METHODS (*MAINTAINED*) m() : INTEGER := M; END;
PROCEDURE M(o : T) : INTEGER =
BEGIN
  RETURN a + (*UNCHECKED*) b;
END M;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  EXPECT_EQ(R.info(C->M.findProc("M"))->Bound, 1); // Only 'a'.
}

TEST(StaticRefSetsTest, RecursionWidensWithReason) {
  // The fixpoint must *widen* on recursion — explicitly degrade to
  // Bounded = false with the cause recorded, never loop or under-report.
  auto C = compile(R"(
PROCEDURE Walk(n : INTEGER) : INTEGER =
BEGIN
  IF n <= 0 THEN RETURN 0; END;
  RETURN Walk(n - 1) + 1;
END Walk;
)",
                   false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Walk = R.info(C->M.findProc("Walk"));
  ASSERT_NE(Walk, nullptr);
  EXPECT_FALSE(Walk->IsStatic);
  EXPECT_EQ(Walk->Widened, WidenReason::Recursion);
  EXPECT_STREQ(widenReasonName(Walk->Widened), "recursion");
}

TEST(StaticRefSetsTest, MutualRecursionWidensBothDirections) {
  // A <-> B: whichever side the fixpoint enters first, both must come out
  // unbounded with the recursion cause — the memoized Unbounded result
  // propagates its reason into every caller.
  auto C = compile(R"(
PROCEDURE Even(n : INTEGER) : BOOLEAN =
BEGIN
  IF n = 0 THEN RETURN TRUE; END;
  RETURN Odd(n - 1);
END Even;
PROCEDURE Odd(n : INTEGER) : BOOLEAN =
BEGIN
  IF n = 0 THEN RETURN FALSE; END;
  RETURN Even(n - 1);
END Odd;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  for (const char *Name : {"Even", "Odd"}) {
    SCOPED_TRACE(Name);
    const RefSetInfo *RI = R.info(C->M.findProc(Name));
    ASSERT_NE(RI, nullptr);
    EXPECT_FALSE(RI->IsStatic);
    EXPECT_EQ(RI->Widened, WidenReason::Recursion);
  }
}

TEST(StaticRefSetsTest, LoopWidensWithReason) {
  auto C = compile(R"(
VAR g : INTEGER;
PROCEDURE Spin(n : INTEGER) : INTEGER =
VAR s : INTEGER;
BEGIN
  WHILE n > 0 DO
    s := s + g;
    n := n - 1;
  END;
  RETURN s;
END Spin;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Spin = R.info(C->M.findProc("Spin"));
  ASSERT_NE(Spin, nullptr);
  EXPECT_FALSE(Spin->IsStatic);
  EXPECT_EQ(Spin->Widened, WidenReason::Loop);
}

TEST(StaticRefSetsTest, OpenVtableOverrideWidensDispatch) {
  // The vtable is open: a subtype may rebind a method to a conventional
  // implementation whose refs are unbounded. Every dispatch site on that
  // name must then degrade to the dynamic path, with the inlinee's cause
  // propagated through the dispatch — never silently stay "static".
  auto C = compile(R"(
TYPE T = OBJECT
  next : T; v : INTEGER;
METHODS
  (*MAINTAINED*) cost() : INTEGER := Cost;
END;
TYPE U = T OBJECT
OVERRIDES
  cost := CostAll;
END;
VAR head : T;
PROCEDURE Cost(o : T) : INTEGER =
BEGIN
  RETURN o.v;
END Cost;
PROCEDURE CostAll(o : T) : INTEGER =
VAR p : T; s : INTEGER;
BEGIN
  p := o;
  WHILE p # NIL DO
    s := s + p.v;
    p := p.next;
  END;
  RETURN s;
END CostAll;
(*CACHED*) PROCEDURE HeadCost() : INTEGER =
BEGIN
  RETURN head.cost();
END HeadCost;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  // The unbounded conventional override itself.
  const RefSetInfo *All = R.info(C->M.findProc("CostAll"));
  ASSERT_NE(All, nullptr);
  EXPECT_FALSE(All->IsStatic);
  EXPECT_EQ(All->Widened, WidenReason::Loop);
  // The dispatch site inherits the widening (and its cause) even though
  // the base binding alone would have been a one-edge maintained call.
  const RefSetInfo *Head = R.info(C->M.findProc("HeadCost"));
  ASSERT_NE(Head, nullptr);
  EXPECT_FALSE(Head->IsStatic);
  EXPECT_EQ(Head->Widened, WidenReason::Loop);
}

TEST(StaticRefSetsTest, WidenReasonNamesAreStable) {
  EXPECT_STREQ(widenReasonName(WidenReason::None), "none");
  EXPECT_STREQ(widenReasonName(WidenReason::Recursion), "recursion");
  EXPECT_STREQ(widenReasonName(WidenReason::Loop), "loop");
  EXPECT_STREQ(widenReasonName(WidenReason::OpenDispatch), "open-dispatch");
  EXPECT_STREQ(widenReasonName(WidenReason::UnresolvedCall),
               "unresolved-call");
}

TEST(StaticRefSetsTest, AvlBalanceIsStatic) {
  // Balance touches a fixed set of fields and incremental methods per
  // node; the rotations write fields (each write counts its location).
  auto C = compile(testing::avlProgram(), /*DoTransform=*/false);
  ASSERT_TRUE(C->ok());
  StaticRefSetResult R = analyzeStaticRefSets(C->M, C->Info);
  const RefSetInfo *Balance = R.info(C->M.findProc("Balance"));
  ASSERT_NE(Balance, nullptr);
  EXPECT_TRUE(Balance->IsStatic);
  EXPECT_GT(Balance->Bound, 4);
  // Contains walks the tree with a loop: unbounded.
  EXPECT_FALSE(R.info(C->M.findProc("Contains"))->IsStatic);
}

} // namespace
} // namespace alphonse::transform
