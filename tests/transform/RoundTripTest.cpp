//===- RoundTripTest.cpp - Unparser round-trip tests ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's implementation is a source-to-source translator
/// (Section 8). For *untransformed* modules our unparser emits valid
/// Alphonse-L, so unparse -> parse -> analyze -> execute must reproduce
/// the original program's behaviour exactly; and unparsing is a fixpoint
/// (unparse(parse(unparse(M))) == unparse(M)).
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"
#include "transform/Unparser.h"

#include <gtest/gtest.h>

namespace alphonse::transform {
namespace {

using interp::ExecMode;
using interp::Interp;
using interp::Value;
using testing::compile;

static void checkRoundTrip(const char *Source) {
  auto C1 = compile(Source, /*DoTransform=*/false);
  ASSERT_TRUE(C1->ok()) << C1->Diags.str();
  std::string Emitted = unparse(C1->M);
  auto C2 = compile(Emitted, /*DoTransform=*/false);
  ASSERT_TRUE(C2->ok()) << "re-parse failed:\n"
                        << C2->Diags.str() << "\nsource was:\n"
                        << Emitted;
  // Unparsing must be a fixpoint after one round.
  EXPECT_EQ(unparse(C2->M), Emitted);
}

TEST(RoundTripTest, HeightTreeProgram) {
  checkRoundTrip(testing::heightTreeProgram());
}

TEST(RoundTripTest, AvlProgram) { checkRoundTrip(testing::avlProgram()); }

TEST(RoundTripTest, AllStatementAndExpressionForms) {
  checkRoundTrip(R"(
TYPE Base = OBJECT
  v : INTEGER;
  t : TEXT;
  flag : BOOLEAN;
METHODS
  (*MAINTAINED*) m(x : INTEGER) : INTEGER := MImpl;
  (*MAINTAINED EAGER*) e() : INTEGER := EImpl;
END;
TYPE Sub = Base OBJECT
  link : Base;
OVERRIDES
  m := MSub;
END;
VAR g : Base; count : INTEGER := 3 * (2 + 1);
PROCEDURE MImpl(o : Base; x : INTEGER) : INTEGER =
BEGIN
  RETURN o.v + x;
END MImpl;
PROCEDURE EImpl(o : Base) : INTEGER =
BEGIN
  RETURN (*UNCHECKED*) o.v;
END EImpl;
PROCEDURE MSub(o : Base; x : INTEGER) : INTEGER =
BEGIN
  RETURN o.v - x;
END MSub;
(*CACHED*) PROCEDURE Tri(n : INTEGER) : INTEGER =
BEGIN
  IF n <= 0 THEN
    RETURN 0;
  END;
  RETURN n + Tri(n - 1);
END Tri;
PROCEDURE Drive(n : INTEGER) : INTEGER =
VAR s, i : INTEGER; o : Base;
BEGIN
  o := NEW(Sub);
  o.v := 5;
  o.t := "hi" & "!";
  o.flag := TRUE AND NOT FALSE OR 1 < 2;
  g := o;
  s := 0;
  FOR i := 1 TO n DO
    s := s + o.m(i) * 2;
  END;
  WHILE s > 100 DO
    s := s DIV 2;
  END;
  IF s MOD 2 = 0 THEN
    s := s + Tri(n);
  ELSIF s # 7 THEN
    s := -s;
  ELSE
    s := abs(s);
  END;
  print(fmt(s));
  RETURN s + max(count, min(0, 5));
END Drive;
)");
}

TEST(RoundTripTest, RoundTrippedProgramBehavesIdentically) {
  const char *Source = testing::avlProgram();
  auto C1 = compile(Source, /*DoTransform=*/false);
  ASSERT_TRUE(C1->ok());
  std::string Emitted = unparse(C1->M);
  // Run the original and the round-tripped module (both transformed) in
  // Alphonse mode with the same script; results must agree.
  auto A = compile(Source, /*DoTransform=*/true);
  auto B = compile(Emitted, /*DoTransform=*/true);
  ASSERT_TRUE(A->ok());
  ASSERT_TRUE(B->ok()) << B->Diags.str();
  Interp IA(A->M, A->Info, ExecMode::Alphonse);
  Interp IB(B->M, B->Info, ExecMode::Alphonse);
  IA.call("InitTree");
  IB.call("InitTree");
  for (long K : {9, 3, 14, 1, 5, 2, 11, 8, 20, 17}) {
    IA.call("Insert", {Value::integer(K)});
    IB.call("Insert", {Value::integer(K)});
  }
  for (long K = 0; K <= 21; ++K) {
    Value VA = IA.call("Contains", {Value::integer(K)});
    Value VB = IB.call("Contains", {Value::integer(K)});
    EXPECT_TRUE(VA == VB) << "key " << K;
  }
  EXPECT_EQ(IA.call("TreeHeight").Int, IB.call("TreeHeight").Int);
  EXPECT_TRUE(IA.call("IsBalanced").Bool);
  EXPECT_TRUE(IB.call("IsBalanced").Bool);
  EXPECT_FALSE(IA.failed());
  EXPECT_FALSE(IB.failed());
}

TEST(RoundTripTest, TransformedOutputShowsOperations) {
  auto C = compile(testing::heightTreeProgram(), /*DoTransform=*/true);
  ASSERT_TRUE(C->ok());
  std::string Out = unparse(C->M);
  EXPECT_NE(Out.find("access("), std::string::npos);
  EXPECT_NE(Out.find("modify("), std::string::npos);
  EXPECT_NE(Out.find("call("), std::string::npos);
}

} // namespace
} // namespace alphonse::transform
