//===- TransformTest.cpp - Section 5 transformation tests -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Section 5 transformation rules and the Section 6.1 static
/// check elimination, using both the AST flags and the unparsed output
/// (which should show access/modify/call exactly like Algorithm 2).
///
//===----------------------------------------------------------------------===//

#include "lang/CompileTestHelper.h"
#include "transform/StaticPartition.h"
#include "transform/Unparser.h"

#include <gtest/gtest.h>

namespace alphonse::transform {
namespace {

using lang::AssignStmt;
using lang::ExprKind;
using lang::NameRefExpr;
using lang::ReturnStmt;
using testing::compile;

/// Algorithm 2's shape: a procedure mixing a local, a global, and a
/// parameter in calls and assignments.
static const char *algorithm2Program() {
  return R"(
VAR b : INTEGER; p : INTEGER; y : INTEGER;
(*CACHED*) PROCEDURE p2(x : INTEGER; z : INTEGER) : INTEGER =
BEGIN
  RETURN x + z;
END p2;
PROCEDURE p1(c : INTEGER) : INTEGER =
VAR a : INTEGER;
BEGIN
  FOR a := 1 TO 10 DO
    p := p2(a + b + c, y);
  END;
  RETURN p;
END p1;
)";
}

TEST(TransformTest, GlobalReadsAreWrappedLocalsAreNot) {
  auto C = compile(algorithm2Program());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const lang::ProcDecl *P1 = C->M.findProc("p1");
  // Inside the FOR body: p := p2(a + b + c, y)
  const auto &For = static_cast<const lang::ForStmt &>(*P1->Body[0]);
  const auto &Assign = static_cast<const AssignStmt &>(*For.Body[0]);
  EXPECT_TRUE(Assign.TrackedModify); // p is top-level.
  const auto &Call = static_cast<const lang::CallExpr &>(*Assign.Value);
  EXPECT_TRUE(Call.CheckedCall); // p2 is cached.
  const auto &Sum = static_cast<const lang::BinaryExpr &>(*Call.Args[0]);
  const auto &Inner = static_cast<const lang::BinaryExpr &>(*Sum.Lhs);
  const auto &ARef = static_cast<const NameRefExpr &>(*Inner.Lhs);
  const auto &BRef = static_cast<const NameRefExpr &>(*Inner.Rhs);
  const auto &CRef = static_cast<const NameRefExpr &>(*Sum.Rhs);
  EXPECT_FALSE(ARef.TrackedAccess); // a: local.
  EXPECT_TRUE(BRef.TrackedAccess);  // b: top-level.
  EXPECT_FALSE(CRef.TrackedAccess); // c: parameter.
  const auto &YRef = static_cast<const NameRefExpr &>(*Call.Args[1]);
  EXPECT_TRUE(YRef.TrackedAccess);
}

TEST(TransformTest, UnparseShowsAlgorithm2Operations) {
  auto C = compile(algorithm2Program());
  ASSERT_TRUE(C->ok());
  std::string Out = unparse(C->M);
  // modify(p, call(p2, ((a + access(b)) + c), access(y)))
  EXPECT_NE(Out.find("modify(p, call(p2, ((a + access(b)) + c), access(y)))"),
            std::string::npos)
      << Out;
  // The trailing RETURN reads the global p.
  EXPECT_NE(Out.find("RETURN access(p);"), std::string::npos) << Out;
}

TEST(TransformTest, FieldAccessesAlwaysWrapped) {
  auto C = compile(R"(
TYPE T = OBJECT v : INTEGER; next : T; END;
PROCEDURE P(t : T) : INTEGER =
BEGIN
  RETURN t.next.v;
END P;
)");
  ASSERT_TRUE(C->ok());
  std::string Out = unparse(C->M);
  // Both the pointer field and the data field are accessed: "pointers must
  // be accessed twice, once for the pointer, once for the location".
  EXPECT_NE(Out.find("access(access(t.next).v)"), std::string::npos) << Out;
}

TEST(TransformTest, FieldWriteBaseIsReadTargetIsModified) {
  auto C = compile(R"(
TYPE T = OBJECT v : INTEGER; END;
VAR g : T;
PROCEDURE P() = BEGIN g.v := 3; END P;
)");
  ASSERT_TRUE(C->ok());
  std::string Out = unparse(C->M);
  EXPECT_NE(Out.find("modify(access(g).v, 3)"), std::string::npos) << Out;
}

TEST(TransformTest, StatsCountWrappedOperations) {
  auto C = compile(algorithm2Program());
  ASSERT_TRUE(C->ok());
  // Reads: p2 body (x, z: locals, unwrapped), p1: a, b, c, y, p — of which
  // b, y, p are wrapped.
  EXPECT_EQ(C->TStats.ReadsWrapped, 3u);
  EXPECT_GT(C->TStats.ReadsTotal, C->TStats.ReadsWrapped);
  EXPECT_EQ(C->TStats.WritesWrapped, 1u); // p := ...
  EXPECT_EQ(C->TStats.CallsChecked, 1u);  // p2 (cached).
}

TEST(TransformTest, ConservativeModeWrapsEverything) {
  transform::TransformOptions Opts;
  Opts.OptimizeLocalAccesses = false;
  Opts.OptimizeCallChecks = false;
  auto C = compile(algorithm2Program(), /*DoTransform=*/true, Opts);
  ASSERT_TRUE(C->ok());
  EXPECT_EQ(C->TStats.ReadsWrapped, C->TStats.ReadsTotal);
  EXPECT_EQ(C->TStats.WritesWrapped, C->TStats.WritesTotal);
  EXPECT_EQ(C->TStats.CallsChecked, C->TStats.CallsTotal);
}

TEST(TransformTest, CallsToPlainProceduresAreNotChecked) {
  auto C = compile(R"(
PROCEDURE Helper(x : INTEGER) : INTEGER = BEGIN RETURN x; END Helper;
PROCEDURE P() : INTEGER = BEGIN RETURN Helper(1); END P;
)");
  ASSERT_TRUE(C->ok());
  EXPECT_EQ(C->TStats.CallsChecked, 0u);
}

TEST(TransformTest, MethodCallsCheckedWhenAnyMaintainedBindingExists) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  std::string Out = unparse(C->M);
  EXPECT_NE(Out.find("call(access(t.left).height)"), std::string::npos)
      << Out;
}

TEST(TransformTest, MethodCallsUncheckedWhenNoMaintainedBindings) {
  auto C = compile(R"(
TYPE T = OBJECT METHODS m() : INTEGER := P; END;
PROCEDURE P(o : T) : INTEGER = BEGIN RETURN 1; END P;
PROCEDURE Q(o : T) : INTEGER = BEGIN RETURN o.m(); END Q;
)");
  ASSERT_TRUE(C->ok());
  EXPECT_EQ(C->TStats.CallsChecked, 0u);
}

TEST(TransformTest, PaperProgramsTransformCleanly) {
  auto C1 = compile(testing::heightTreeProgram());
  EXPECT_TRUE(C1->ok()) << C1->Diags.str();
  auto C2 = compile(testing::avlProgram());
  EXPECT_TRUE(C2->ok()) << C2->Diags.str();
  EXPECT_GT(C2->TStats.ReadsWrapped, 0u);
  EXPECT_GT(C2->TStats.WritesWrapped, 0u);
  EXPECT_GT(C2->TStats.CallsChecked, 0u);
}

//===----------------------------------------------------------------------===//
// Static partitioning (Section 6.3)
//===----------------------------------------------------------------------===//

TEST(StaticPartitionTest, DisjointClustersSeparate) {
  auto C = compile(R"(
TYPE TreeA = OBJECT left : TreeA; END;
TYPE TreeB = OBJECT next : TreeB; END;
VAR rootA : TreeA; rootB : TreeB;
PROCEDURE PA() : TreeA = BEGIN RETURN rootA; END PA;
PROCEDURE PB() : TreeB = BEGIN RETURN rootB; END PB;
)");
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  EXPECT_GE(R.NumComponents, 2);
  EXPECT_FALSE(R.sameComponent(C->M.findProc("PA"), C->M.findProc("PB")));
  EXPECT_NE(R.TypeComponent.at(C->Info.lookupType("TreeA")),
            R.TypeComponent.at(C->Info.lookupType("TreeB")));
}

TEST(StaticPartitionTest, FieldPointersConnectTypes) {
  auto C = compile(R"(
TYPE A = OBJECT b : B; END;
TYPE B = OBJECT END;
)");
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  EXPECT_EQ(R.TypeComponent.at(C->Info.lookupType("A")),
            R.TypeComponent.at(C->Info.lookupType("B")));
}

TEST(StaticPartitionTest, InheritanceConnectsTypes) {
  auto C = compile(R"(
TYPE Base = OBJECT END;
TYPE Sub = Base OBJECT END;
)");
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  EXPECT_EQ(R.TypeComponent.at(C->Info.lookupType("Base")),
            R.TypeComponent.at(C->Info.lookupType("Sub")));
}

TEST(StaticPartitionTest, CallsConnectProcedures) {
  auto C = compile(R"(
PROCEDURE Callee() : INTEGER = BEGIN RETURN 1; END Callee;
PROCEDURE Caller() : INTEGER = BEGIN RETURN Callee(); END Caller;
PROCEDURE Loner() : INTEGER = BEGIN RETURN 0; END Loner;
)");
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  EXPECT_TRUE(R.sameComponent(C->M.findProc("Caller"),
                              C->M.findProc("Callee")));
  EXPECT_FALSE(R.sameComponent(C->M.findProc("Caller"),
                               C->M.findProc("Loner")));
}

TEST(StaticPartitionTest, GlobalsConnectReferencingProcedures) {
  auto C = compile(R"(
VAR shared : INTEGER;
PROCEDURE PA() : INTEGER = BEGIN RETURN shared; END PA;
PROCEDURE PB() = BEGIN shared := 3; END PB;
)");
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  EXPECT_TRUE(R.sameComponent(C->M.findProc("PA"), C->M.findProc("PB")));
}

TEST(StaticPartitionTest, WholePaperProgramIsOneComponent) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  StaticPartitionResult R = computeStaticPartitions(C->M, C->Info);
  // Every type/proc/global in Algorithm 11 touches the tree.
  EXPECT_EQ(R.NumComponents, 1);
}

} // namespace
} // namespace alphonse::transform
