//===- CellTest.cpp - Tracked storage tests -------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the access/modify transformations embodied by Cell<T>
/// (Algorithms 3 and 4): lazy node creation, the untracked fast path,
/// write quiescence, and snapshot semantics.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"

#include <gtest/gtest.h>

#include <string>

namespace alphonse {
namespace {

TEST(CellTest, UntrackedUntilReadInsideIncrementalCall) {
  Runtime RT;
  Cell<int> C(RT, 1);
  C.set(2);
  C.set(3);
  EXPECT_FALSE(C.isTracked());
  EXPECT_EQ(RT.stats().NodesCreated, 0u);
  EXPECT_EQ(RT.stats().TrackedWrites, 0u);
  EXPECT_EQ(C.get(), 3); // Mutator-side read: still untracked.
  EXPECT_FALSE(C.isTracked());
}

TEST(CellTest, ReadInsideMaintainedProcedureCreatesNodeAndEdge) {
  Runtime RT;
  Cell<int> C(RT, 7);
  Maintained<int()> F(RT, [&C] { return C.get() * 2; });
  EXPECT_EQ(F(), 14);
  EXPECT_TRUE(C.isTracked());
  ASSERT_NE(C.node(), nullptr);
  EXPECT_EQ(C.node()->numSuccessors(), 1u);
}

TEST(CellTest, WriteToTrackedCellInvalidatesReader) {
  Runtime RT;
  Cell<int> C(RT, 7);
  Maintained<int()> F(RT, [&C] { return C.get() * 2; });
  EXPECT_EQ(F(), 14);
  C.set(10);
  EXPECT_EQ(F(), 20);
  EXPECT_EQ(RT.stats().ProcExecutions, 2u);
}

TEST(CellTest, RepeatedCallsHitTheCache) {
  Runtime RT;
  Cell<int> C(RT, 7);
  Maintained<int()> F(RT, [&C] { return C.get() * 2; });
  F();
  F();
  F();
  EXPECT_EQ(RT.stats().ProcExecutions, 1u);
  EXPECT_EQ(RT.stats().CacheHits, 2u);
}

TEST(CellTest, WritingTheSameValueIsQuiescent) {
  Runtime RT;
  Cell<int> C(RT, 7);
  Maintained<int()> F(RT, [&C] { return C.get() * 2; });
  F();
  C.set(7); // Same value: Algorithm 4's comparison suppresses the change.
  EXPECT_EQ(RT.stats().QuiescentWrites, 1u);
  F();
  EXPECT_EQ(RT.stats().ProcExecutions, 1u);
}

TEST(CellTest, WriteAndWriteBackTriggersNoRecomputation) {
  // Experiment E11: x -> y -> x between evaluations is a net no-change.
  Runtime RT;
  Cell<int> C(RT, 1);
  Maintained<int()> F(RT, [&C] { return C.get() + 100; });
  EXPECT_EQ(F(), 101);
  C.set(2);
  C.set(1); // Back to the snapshot value before any evaluation ran.
  EXPECT_EQ(F(), 101);
  EXPECT_EQ(RT.stats().ProcExecutions, 1u);
  EXPECT_GE(RT.stats().QuiescenceCutoffs, 1u);
}

TEST(CellTest, DistinctWritesBatchIntoOneRecomputation) {
  Runtime RT;
  Cell<int> C(RT, 1);
  Maintained<int()> F(RT, [&C] { return C.get() + 100; });
  F();
  C.set(2);
  C.set(3);
  C.set(4);
  EXPECT_EQ(F(), 104);
  EXPECT_EQ(RT.stats().ProcExecutions, 2u); // One initial + one update.
}

TEST(CellTest, PeekNeverTracks) {
  Runtime RT;
  Cell<int> C(RT, 5);
  Maintained<int()> F(RT, [&C] { return C.peek(); });
  EXPECT_EQ(F(), 5);
  EXPECT_FALSE(C.isTracked());
  C.set(6);
  EXPECT_EQ(F(), 5); // Stale by design: peek() recorded no dependence.
}

TEST(CellTest, AssignmentOperatorWrites) {
  Runtime RT;
  Cell<std::string> C(RT, "a");
  Maintained<int()> F(RT, [&C] { return static_cast<int>(C.get().size()); });
  EXPECT_EQ(F(), 1);
  C = std::string("abc");
  EXPECT_EQ(F(), 3);
}

TEST(CellTest, PointerCellsTrackIdentity) {
  Runtime RT;
  int A = 1, B = 2;
  Cell<int *> P(RT, &A);
  Maintained<int()> F(RT, [&P] { return *P.get(); });
  EXPECT_EQ(F(), 1);
  P.set(&B);
  EXPECT_EQ(F(), 2);
  P.set(&B); // Same pointer: quiescent.
  EXPECT_EQ(RT.stats().QuiescentWrites, 1u);
}

TEST(CellTest, UncheckedScopeSuppressesDependencies) {
  Runtime RT;
  Cell<int> Checked(RT, 1);
  Cell<int> Unchecked(RT, 10);
  Maintained<int()> F(RT, [&] {
    int Sum = Checked.get();
    {
      UncheckedScope Scope(RT);
      Sum += Unchecked.get();
    }
    return Sum;
  });
  EXPECT_EQ(F(), 11);
  EXPECT_FALSE(Unchecked.isTracked()); // The read recorded nothing.
  Unchecked.set(99);
  EXPECT_EQ(F(), 11); // Stale: the programmer asserted independence.
  Checked.set(2);
  EXPECT_EQ(F(), 101); // Re-execution reads the new unchecked value too.
}

TEST(CellTest, WriterDependsOnWrittenStorage) {
  // Algorithm 4 begins with access(l): a procedure that writes a location
  // must re-run if someone else overwrites it, to "set it back".
  Runtime RT;
  Cell<int> In(RT, 1);
  Cell<int> Out(RT, 0);
  Maintained<int()> F(RT, [&] {
    Out.set(In.get() * 10);
    return Out.get();
  });
  EXPECT_EQ(F(), 10);
  // The mutator clobbers Out; F depends on Out and must be invalidated.
  Out.set(0);
  EXPECT_EQ(F(), 10); // Re-established the property.
  EXPECT_EQ(Out.peek(), 10);
  EXPECT_GE(RT.stats().ProcExecutions, 2u);
}

TEST(CellTest, SelfWriteConvergesWithoutLooping) {
  Runtime RT;
  Cell<int> In(RT, 1);
  Cell<int> Out(RT, 0);
  Maintained<int()> F(RT, [&] {
    Out.set(In.get() * 10);
    return Out.get();
  });
  F();
  F();
  F();
  // Writing Out inside F marks F's own dependence; on re-demand F re-runs
  // once, writes the same value (quiescent), and settles.
  EXPECT_LE(RT.stats().ProcExecutions, 3u);
  EXPECT_EQ(Out.peek(), 10);
}

} // namespace
} // namespace alphonse
