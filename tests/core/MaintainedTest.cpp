//===- MaintainedTest.cpp - Incremental procedure tests -------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the call transformation (Algorithm 5): argument tables,
/// function caching over global state (Section 4.2), demand vs eager
/// strategies, quiescence cutoffs, capacity/eviction, and chains.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"

#include <gtest/gtest.h>

namespace alphonse {
namespace {

TEST(MaintainedTest, DistinctArgumentsGetDistinctInstances) {
  Runtime RT;
  int Runs = 0;
  Maintained<int(int)> Square(RT, [&Runs](int X) {
    ++Runs;
    return X * X;
  });
  EXPECT_EQ(Square(3), 9);
  EXPECT_EQ(Square(4), 16);
  EXPECT_EQ(Square(3), 9);
  EXPECT_EQ(Square(4), 16);
  EXPECT_EQ(Runs, 2);
  EXPECT_EQ(Square.numInstances(), 2u);
}

TEST(MaintainedTest, RecursiveCallsMemoize) {
  Runtime RT;
  int Runs = 0;
  Maintained<long(int)> *FibPtr = nullptr;
  Maintained<long(int)> Fib(RT, [&](int N) -> long {
    ++Runs;
    if (N < 2)
      return N;
    return (*FibPtr)(N - 1) + (*FibPtr)(N - 2);
  });
  FibPtr = &Fib;
  EXPECT_EQ(Fib(20), 6765);
  EXPECT_EQ(Runs, 21); // Linear, not exponential.
}

TEST(MaintainedTest, CachedProcedureMayReadGlobalState) {
  // The paper's second contribution (Section 4.2): cached procedures need
  // not be combinators; changes to referenced global storage update the
  // cache.
  Runtime RT;
  Cell<int> Scale(RT, 2);
  int Runs = 0;
  Cached<int(int)> Times(RT, [&](int X) {
    ++Runs;
    return X * Scale.get();
  });
  EXPECT_EQ(Times(10), 20);
  EXPECT_EQ(Times(10), 20);
  EXPECT_EQ(Runs, 1);
  Scale.set(3);
  EXPECT_EQ(Times(10), 30);
  EXPECT_EQ(Runs, 2);
}

TEST(MaintainedTest, ChangeInvalidatesOnlyAffectedInstances) {
  Runtime RT;
  Cell<int> A(RT, 1);
  Cell<int> B(RT, 2);
  int Runs = 0;
  Maintained<int(int)> F(RT, [&](int Which) {
    ++Runs;
    return Which == 0 ? A.get() : B.get();
  });
  F(0);
  F(1);
  EXPECT_EQ(Runs, 2);
  A.set(5);
  EXPECT_EQ(F(0), 5);
  EXPECT_EQ(F(1), 2);
  EXPECT_EQ(Runs, 3); // Only the instance reading A re-ran.
}

TEST(MaintainedTest, ProcedureChainsPropagate) {
  Runtime RT;
  Cell<int> Base(RT, 1);
  int GRuns = 0, FRuns = 0;
  Maintained<int()> G(RT, [&] {
    ++GRuns;
    return Base.get() + 1;
  });
  Maintained<int()> F(RT, [&] {
    ++FRuns;
    return G() * 10;
  });
  EXPECT_EQ(F(), 20);
  Base.set(4);
  EXPECT_EQ(F(), 50);
  EXPECT_EQ(GRuns, 2);
  EXPECT_EQ(FRuns, 2);
}

TEST(MaintainedTest, EagerCutoffShieldsDownstream) {
  // sign() collapses many inputs to one value; with an EAGER middle stage
  // the change 1 -> 2 dies at the cutoff and F never re-runs.
  Runtime RT;
  Cell<int> X(RT, 1);
  int SignRuns = 0, FRuns = 0;
  Maintained<int()> Sign(
      RT,
      [&] {
        ++SignRuns;
        return X.get() > 0 ? 1 : -1;
      },
      EvalStrategy::Eager);
  Maintained<int()> F(RT, [&] {
    ++FRuns;
    return Sign() * 100;
  });
  EXPECT_EQ(F(), 100);
  X.set(2); // Sign unchanged.
  RT.pump();
  EXPECT_EQ(SignRuns, 2);
  EXPECT_EQ(F(), 100);
  EXPECT_EQ(FRuns, 1); // Shielded by the quiescence cutoff.
  X.set(-5);
  RT.pump();
  EXPECT_EQ(F(), -100);
  EXPECT_EQ(FRuns, 2);
}

TEST(MaintainedTest, EagerUpdatesRunAtThePump) {
  Runtime RT;
  Cell<int> X(RT, 1);
  int Runs = 0;
  Maintained<int()> F(
      RT,
      [&] {
        ++Runs;
        return X.get();
      },
      EvalStrategy::Eager);
  F();
  X.set(2);
  EXPECT_EQ(Runs, 1);
  RT.pump(); // "Cycles available": the eager update happens here.
  EXPECT_EQ(Runs, 2);
  EXPECT_EQ(F(), 2); // Already up to date: a pure cache hit.
  EXPECT_EQ(Runs, 2);
}

TEST(MaintainedTest, DemandUpdatesWaitForTheCall) {
  Runtime RT;
  Cell<int> X(RT, 1);
  int Runs = 0;
  Maintained<int()> F(RT, [&] {
    ++Runs;
    return X.get();
  });
  F();
  X.set(2);
  X.set(3);
  EXPECT_EQ(Runs, 1); // Nothing recomputed yet.
  EXPECT_EQ(F(), 3);
  EXPECT_EQ(Runs, 2);
}

TEST(MaintainedTest, MultiArgumentKeysAreDistinguished) {
  Runtime RT;
  int Runs = 0;
  Maintained<int(int, int)> Add(RT, [&Runs](int A, int B) {
    ++Runs;
    return A + B;
  });
  EXPECT_EQ(Add(1, 2), 3);
  EXPECT_EQ(Add(2, 1), 3);
  EXPECT_EQ(Runs, 2); // (1,2) and (2,1) are different argument vectors.
  Add(1, 2);
  EXPECT_EQ(Runs, 2);
}

TEST(MaintainedTest, EraseDropsAnInstance) {
  Runtime RT;
  int Runs = 0;
  Maintained<int(int)> F(RT, [&Runs](int X) {
    ++Runs;
    return X;
  });
  F(1);
  F(2);
  EXPECT_EQ(F.numInstances(), 2u);
  F.erase(1);
  EXPECT_EQ(F.numInstances(), 1u);
  F(1); // Recomputed from scratch.
  EXPECT_EQ(Runs, 3);
}

TEST(MaintainedTest, CapacityEvictsColdUnreferencedInstances) {
  Runtime RT;
  int Runs = 0;
  Cached<int(int)> F(RT, [&Runs](int X) {
    ++Runs;
    return X;
  });
  F.setCapacity(2);
  F(1);
  F(2);
  F(3); // Evicts the coldest (1).
  EXPECT_EQ(F.numInstances(), 2u);
  F(3);
  F(2);
  EXPECT_EQ(Runs, 3); // 2 and 3 still cached.
  F(1);
  EXPECT_EQ(Runs, 4); // 1 was evicted and recomputes.
}

TEST(MaintainedTest, CapacityNeverEvictsDependedUponInstances) {
  Runtime RT;
  Cached<int(int)> G(RT, [](int X) { return X * 2; });
  Maintained<int()> F(RT, [&G] { return G(7); });
  F(); // F depends on G(7).
  G.setCapacity(1);
  G(1);
  G(2);
  G(3);
  // G(7) is pinned by F's dependence; the eviction scan skips it.
  EXPECT_TRUE(G.hasCachedValue(7));
}

TEST(MaintainedTest, InstanceNodeIntrospection) {
  Runtime RT;
  Cell<int> A(RT, 1);
  Maintained<int(int)> F(RT, [&A](int X) { return X + A.get(); });
  EXPECT_EQ(F.instanceNode(5), nullptr);
  F(5);
  const DepNode *N = F.instanceNode(5);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->numPredecessors(), 1u); // Just the cell A.
  EXPECT_TRUE(N->isConsistent());
}

TEST(MaintainedTest, StringArgumentsAndResults) {
  Runtime RT;
  Cell<std::string> Suffix(RT, "!");
  int Runs = 0;
  Maintained<std::string(std::string)> Shout(RT, [&](std::string S) {
    ++Runs;
    return S + Suffix.get();
  });
  EXPECT_EQ(Shout("hi"), "hi!");
  EXPECT_EQ(Shout("hi"), "hi!");
  EXPECT_EQ(Runs, 1);
  Suffix.set("?");
  EXPECT_EQ(Shout("hi"), "hi?");
  EXPECT_EQ(Runs, 2);
}

TEST(MaintainedTest, ReentrantCallRunsConventionally) {
  // A procedure that (indirectly) calls itself with the same arguments
  // mid-execution — the shape Algorithm 11's balance() produces. The
  // re-entrant call must compute a fresh value, not return garbage.
  Runtime RT;
  Cell<int> Depth(RT, 1);
  Maintained<int()> *FPtr = nullptr;
  Maintained<int()> F(RT, [&]() -> int {
    int D = Depth.get();
    if (D <= 0)
      return 0;
    Depth.set(D - 1);       // Shrink the problem...
    int Inner = (*FPtr)();  // ...then re-enter ourselves.
    Depth.set(D);           // Restore (DET: net effect is deterministic).
    return Inner + 1;
  });
  FPtr = &F;
  EXPECT_EQ(F(), 1);
}

} // namespace
} // namespace alphonse
