//===- PropagationTest.cpp - Change propagation shape tests ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Propagation through characteristic dependency shapes: diamonds (no
/// duplicate re-execution), deep chains, fan-out/fan-in, mixed
/// eager/demand pipelines, and a randomized DAG stress test against a
/// from-scratch oracle.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

namespace alphonse {
namespace {

TEST(PropagationTest, EagerDiamondExecutesEachNodeOnce) {
  // x -> g, x -> h, {g,h} -> f. One change to x must run g, h, f once
  // each (level-ordered processing), not f twice.
  Runtime RT;
  Cell<int> X(RT, 1);
  int GRuns = 0, HRuns = 0, FRuns = 0;
  Maintained<int()> G(
      RT,
      [&] {
        ++GRuns;
        return X.get() + 1;
      },
      EvalStrategy::Eager);
  Maintained<int()> H(
      RT,
      [&] {
        ++HRuns;
        return X.get() * 2;
      },
      EvalStrategy::Eager);
  Maintained<int()> F(
      RT,
      [&] {
        ++FRuns;
        return G() + H();
      },
      EvalStrategy::Eager);
  EXPECT_EQ(F(), 4);
  X.set(10);
  RT.pump();
  EXPECT_EQ(GRuns, 2);
  EXPECT_EQ(HRuns, 2);
  EXPECT_EQ(FRuns, 2); // Exactly one re-execution despite two paths.
  EXPECT_EQ(F(), 31);
  EXPECT_EQ(FRuns, 2); // The demand was a cache hit.
}

TEST(PropagationTest, DemandDiamondExecutesEachNodeOnce) {
  Runtime RT;
  Cell<int> X(RT, 1);
  int Runs = 0;
  Maintained<int(int)> Mid(RT, [&](int Which) {
    ++Runs;
    return X.get() + Which;
  });
  Maintained<int()> F(RT, [&] {
    ++Runs;
    return Mid(0) + Mid(100);
  });
  EXPECT_EQ(F(), 102);
  EXPECT_EQ(Runs, 3);
  X.set(5);
  EXPECT_EQ(F(), 110);
  EXPECT_EQ(Runs, 6); // Each of the three instances exactly once more.
}

TEST(PropagationTest, DeepChainPropagatesFully) {
  constexpr int Depth = 200;
  Runtime RT;
  Cell<int> Base(RT, 0);
  std::vector<std::unique_ptr<Maintained<int()>>> Chain;
  for (int I = 0; I < Depth; ++I) {
    Maintained<int()> *Prev = I ? Chain.back().get() : nullptr;
    Cell<int> *B = &Base;
    Chain.push_back(std::make_unique<Maintained<int()>>(
        RT, [Prev, B] { return (Prev ? (*Prev)() : B->get()) + 1; }));
  }
  EXPECT_EQ((*Chain.back())(), Depth);
  Base.set(1000);
  EXPECT_EQ((*Chain.back())(), 1000 + Depth);
  Base.set(-5);
  EXPECT_EQ((*Chain.back())(), Depth - 5);
}

TEST(PropagationTest, FanOutInvalidatesAllReaders) {
  constexpr int Readers = 50;
  Runtime RT;
  Cell<int> X(RT, 7);
  int Runs = 0;
  Maintained<int(int)> R(RT, [&](int I) {
    ++Runs;
    return X.get() + I;
  });
  for (int I = 0; I < Readers; ++I)
    EXPECT_EQ(R(I), 7 + I);
  EXPECT_EQ(Runs, Readers);
  X.set(100);
  for (int I = 0; I < Readers; ++I)
    EXPECT_EQ(R(I), 100 + I);
  EXPECT_EQ(Runs, 2 * Readers);
}

TEST(PropagationTest, FanInReexecutesOnceForBatchedChanges) {
  constexpr int Inputs = 20;
  Runtime RT;
  std::vector<std::unique_ptr<Cell<int>>> Cells;
  for (int I = 0; I < Inputs; ++I)
    Cells.push_back(std::make_unique<Cell<int>>(RT, 1));
  int Runs = 0;
  Maintained<int()> Sum(RT, [&] {
    ++Runs;
    int S = 0;
    for (auto &C : Cells)
      S += C->get();
    return S;
  });
  EXPECT_EQ(Sum(), Inputs);
  // Change every input, then demand once: one re-execution.
  for (auto &C : Cells)
    C->set(2);
  EXPECT_EQ(Sum(), 2 * Inputs);
  EXPECT_EQ(Runs, 2);
}

TEST(PropagationTest, MixedStrategiesPipeline) {
  // demand -> eager -> demand chain: the eager stage updates at the pump;
  // the demand tail stays lazy until called.
  Runtime RT;
  Cell<int> X(RT, 1);
  int DemRuns = 0, EagRuns = 0, TailRuns = 0;
  Maintained<int()> Dem(RT, [&] {
    ++DemRuns;
    return X.get() + 1;
  });
  Maintained<int()> Eag(
      RT,
      [&] {
        ++EagRuns;
        return Dem() * 10;
      },
      EvalStrategy::Eager);
  Maintained<int()> Tail(RT, [&] {
    ++TailRuns;
    return Eag() + 3;
  });
  EXPECT_EQ(Tail(), 23);
  X.set(2);
  RT.pump();
  // The eager stage pulled the demand stage with it.
  EXPECT_EQ(DemRuns, 2);
  EXPECT_EQ(EagRuns, 2);
  EXPECT_EQ(TailRuns, 1); // Not yet demanded.
  EXPECT_EQ(Tail(), 33);
  EXPECT_EQ(TailRuns, 2);
}

TEST(PropagationTest, NodesReleaseCleanly) {
  Runtime RT;
  {
    Cell<int> X(RT, 1);
    Maintained<int(int)> F(RT, [&](int K) { return X.get() + K; });
    for (int I = 0; I < 32; ++I)
      F(I);
    EXPECT_EQ(RT.graph().numLiveNodes(), 33u);
    EXPECT_EQ(RT.graph().numLiveEdges(), 32u);
  }
  EXPECT_EQ(RT.graph().numLiveNodes(), 0u);
  EXPECT_EQ(RT.graph().numLiveEdges(), 0u);
  EXPECT_EQ(RT.graph().numPending(), 0u);
}

/// Randomized DAG: K cells feed a layered web of maintained instances;
/// after every batch of random writes the top values must equal a
/// from-scratch functional oracle.
class PropagationStressTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PropagationStressTest, RandomWriteBatchesMatchOracle) {
  std::mt19937 Rng(GetParam());
  constexpr int NumCells = 8;
  constexpr int NumLayers = 4;
  constexpr int PerLayer = 6;
  Runtime RT;
  std::vector<std::unique_ptr<Cell<int>>> Cells;
  for (int I = 0; I < NumCells; ++I)
    Cells.push_back(std::make_unique<Cell<int>>(RT, I));

  // Wiring: each node picks two inputs from the previous layer (or cells)
  // and an operation. The same wiring drives both the incremental web and
  // the oracle.
  struct Wire {
    int A, B;
    int Op; // 0: +, 1: -, 2: min, 3: *mod
  };
  std::vector<std::vector<Wire>> Wiring(NumLayers,
                                        std::vector<Wire>(PerLayer));
  for (int L = 0; L < NumLayers; ++L)
    for (int N = 0; N < PerLayer; ++N) {
      int Fan = (L == 0) ? NumCells : PerLayer;
      Wiring[L][N] = {static_cast<int>(Rng() % Fan),
                      static_cast<int>(Rng() % Fan),
                      static_cast<int>(Rng() % 4)};
    }
  auto Combine = [](int Op, int A, int B) {
    switch (Op) {
    case 0:
      return A + B;
    case 1:
      return A - B;
    case 2:
      return std::min(A, B);
    default:
      return (A * B) % 1000;
    }
  };

  // The incremental web, one Maintained per layer keyed by index.
  std::vector<std::unique_ptr<Maintained<int(int)>>> Layers;
  for (int L = 0; L < NumLayers; ++L) {
    Maintained<int(int)> *Prev = L ? Layers.back().get() : nullptr;
    auto Body = [&, L, Prev](int N) {
      const Wire &W = Wiring[L][N];
      int A = Prev ? (*Prev)(W.A) : Cells[W.A]->get();
      int B = Prev ? (*Prev)(W.B) : Cells[W.B]->get();
      return Combine(W.Op, A, B);
    };
    Layers.push_back(
        std::make_unique<Maintained<int(int)>>(RT, Body));
  }

  // Oracle: same wiring, recomputed from scratch.
  auto Oracle = [&](int N) {
    std::vector<int> Cur(NumCells);
    for (int I = 0; I < NumCells; ++I)
      Cur[I] = Cells[I]->peek();
    for (int L = 0; L < NumLayers; ++L) {
      std::vector<int> Next(PerLayer);
      for (int J = 0; J < PerLayer; ++J) {
        const Wire &W = Wiring[L][J];
        Next[J] = Combine(W.Op, Cur[W.A], Cur[W.B]);
      }
      Cur = std::move(Next);
    }
    return Cur[N];
  };

  for (int Round = 0; Round < 60; ++Round) {
    int Writes = 1 + static_cast<int>(Rng() % 4);
    for (int W = 0; W < Writes; ++W)
      Cells[Rng() % NumCells]->set(static_cast<int>(Rng() % 50));
    for (int N = 0; N < PerLayer; ++N)
      ASSERT_EQ((*Layers.back())(N), Oracle(N))
          << "round " << Round << " output " << N;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace alphonse
