//===- LangPropertyTest.cpp - Randomized Alphonse-L properties ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style suites over the Alphonse-L pipeline: the Algorithm 11
/// program against a std::set oracle under long randomized operation
/// streams (parameterized by seed), invariants of the dependency graph
/// across a session, and the conservative-transformation / partitioning
/// ablations producing identical observable behaviour.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace alphonse::interp {
namespace {

using testing::compile;

static Value IV(long X) { return Value::integer(X); }

class AvlLangPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AvlLangPropertyTest, MatchesStdSetOracle) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("InitTree");
  std::mt19937 Rng(GetParam());
  std::set<long> Oracle;
  for (int Step = 0; Step < 400; ++Step) {
    long K = static_cast<long>(Rng() % 300);
    if (Rng() % 2 == 0) {
      I.call("Insert", {IV(K)});
      Oracle.insert(K);
    } else {
      bool Got = I.call("Contains", {IV(K)}).Bool;
      ASSERT_EQ(Got, Oracle.count(K) != 0)
          << "step " << Step << " key " << K;
    }
    ASSERT_FALSE(I.failed()) << I.errorMessage();
  }
  // The property holds *after* a balancing demand (Contains rebalances
  // from the root first) — the structure is self-balancing on demand,
  // not eagerly.
  I.call("Contains", {IV(0)});
  EXPECT_TRUE(I.call("IsBalanced").Bool);
  // Sweep: every key answers correctly at the end.
  for (long K = 0; K < 300; ++K)
    ASSERT_EQ(I.call("Contains", {IV(K)}).Bool, Oracle.count(K) != 0) << K;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlLangPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(LangGraphInvariantTest, CountersStayCoherentAcrossSession) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("InitTree");
  std::mt19937 Rng(7);
  for (int Step = 0; Step < 200; ++Step) {
    if (Rng() % 3 != 0)
      I.call("Insert", {IV(static_cast<long>(Rng() % 500))});
    else
      I.call("Contains", {IV(static_cast<long>(Rng() % 500))});
    ASSERT_FALSE(I.failed());
  }
  const Statistics &S = I.runtime().stats();
  DepGraph &G = I.runtime().graph();
  EXPECT_EQ(S.NodesCreated - S.NodesDestroyed, G.numLiveNodes());
  EXPECT_EQ(S.EdgesCreated - S.EdgesRemoved, G.numLiveEdges());
  // Quiescent state after a final settle: no pending work remains.
  I.call("Contains", {IV(0)});
  I.call("Contains", {IV(0)});
  EXPECT_EQ(G.numPending(), 0u);
}

/// The ablations must never change observable results — only costs.
class AblationEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(AblationEquivalenceTest, SameAnswersUnderAllConfigurations) {
  auto [Conservative, Partitioning, VariableCutoff] = GetParam();
  transform::TransformOptions TOpts;
  TOpts.OptimizeLocalAccesses = !Conservative;
  TOpts.OptimizeCallChecks = !Conservative;
  auto C = compile(testing::avlProgram(), /*DoTransform=*/true, TOpts);
  ASSERT_TRUE(C->ok());
  DepGraph::Config Cfg;
  Cfg.Partitioning = Partitioning;
  Cfg.VariableCutoff = VariableCutoff;
  Interp I(C->M, C->Info, ExecMode::Alphonse, Cfg);
  I.call("InitTree");
  std::mt19937 Rng(99);
  std::set<long> Oracle;
  for (int Step = 0; Step < 150; ++Step) {
    long K = static_cast<long>(Rng() % 100);
    if (Rng() % 2 == 0) {
      I.call("Insert", {IV(K)});
      Oracle.insert(K);
    } else {
      ASSERT_EQ(I.call("Contains", {IV(K)}).Bool, Oracle.count(K) != 0);
    }
    ASSERT_FALSE(I.failed()) << I.errorMessage();
  }
  I.call("Contains", {IV(0)}); // Rebalance before checking the invariant.
  EXPECT_TRUE(I.call("IsBalanced").Bool);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AblationEquivalenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()));

TEST(LangEagerPropertyTest, EagerHeightStaysFreshAcrossPumps) {
  // Height maintained EAGERly: after each mutation + pump, the cached
  // heights must already be correct (zero executions at demand time).
  auto C = compile(R"(
TYPE Tree = OBJECT
  left, right : Tree;
METHODS
  (*MAINTAINED EAGER*) height() : INTEGER := Height;
END;
TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED EAGER*) height := HeightNil;
END;
VAR nil : Tree; root : Tree;
PROCEDURE Height(t : Tree) : INTEGER =
BEGIN
  RETURN max(t.left.height(), t.right.height()) + 1;
END Height;
PROCEDURE HeightNil(t : Tree) : INTEGER = BEGIN RETURN 0; END HeightNil;
PROCEDURE Init() = BEGIN nil := NEW(TreeNil); root := NEW(Tree);
  root.left := nil; root.right := nil; END Init;
PROCEDURE Grow() =
VAR t, p : Tree;
BEGIN
  t := root;
  WHILE t.left # nil DO t := t.left; END;
  p := NEW(Tree);
  p.left := nil;
  p.right := nil;
  t.left := p;
END Grow;
PROCEDURE Demand() : INTEGER = BEGIN RETURN root.height(); END Demand;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("Init");
  EXPECT_EQ(I.call("Demand").Int, 1);
  for (int Step = 2; Step <= 12; ++Step) {
    I.call("Grow");
    I.pump(); // Eager update happens here.
    uint64_t Before = I.runtime().stats().ProcExecutions;
    EXPECT_EQ(I.call("Demand").Int, Step);
    EXPECT_EQ(I.runtime().stats().ProcExecutions, Before)
        << "demand after pump should be a pure cache hit at step " << Step;
  }
}

} // namespace
} // namespace alphonse::interp
