//===- StaticGraphDiffTest.cpp - static vs dynamic graph differential -----===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static graph construction (DESIGN.md §14) must be observationally
/// identical to dynamic find-or-emplace: same return values, same print
/// output, same fault and quarantine outcomes, same checkpoint round-trips
/// — at Workers = 0 and 4, under both the tree-walker and the bytecode
/// engine. The corpus centers on nullary cached procedures over globals
/// (the plan-eligible shape) plus the canonical AVL module (plan with
/// global slots only), with fixed-seed randomized interleavings that mix
/// reads, writes, never-read writes, and injected division faults.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"
#include "support/CheckpointIO.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

namespace alphonse::interp {
namespace {

using testing::compile;
using testing::Compiled;

static Value IV(long X) { return Value::integer(X); }

/// Nullary cached procedures over globals: the exact shape the plan proves
/// bounded and instantiates statically. 'unread' is written but never read
/// by any incremental procedure — its pre-built slot node must not leak
/// pending work.
static const char *gaugeProgram() {
  return R"(
VAR
  a, b, scale, unread : INTEGER;

(*CACHED*) PROCEDURE Sum() : INTEGER =
BEGIN
  RETURN a + b;
END Sum;

(*CACHED*) PROCEDURE Scaled() : INTEGER =
BEGIN
  RETURN Sum() * scale;
END Scaled;

(*CACHED*) PROCEDURE Ratio() : INTEGER =
BEGIN
  RETURN Sum() DIV scale;
END Ratio;

PROCEDURE SetA(v : INTEGER) = BEGIN a := v; END SetA;
PROCEDURE SetB(v : INTEGER) = BEGIN b := v; END SetB;
PROCEDURE SetScale(v : INTEGER) = BEGIN scale := v; END SetScale;
PROCEDURE Touch(v : INTEGER) = BEGIN unread := v; END Touch;
)";
}

struct Step {
  std::string Proc;
  std::vector<long> Args;
};

struct RunResult {
  std::vector<std::string> Rendered;
  std::string Output;
  bool Failed = false;
  std::string Error;
  size_t Quarantined = 0;
  size_t Pending = 0;
  uint64_t StaticCalls = 0;
};

static RunResult runScript(const Compiled &C, const std::vector<Step> &Script,
                           bool Static, unsigned Workers,
                           bool Bytecode = true) {
  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  Interp I(C.M, C.Info, ExecMode::Alphonse, Cfg, Bytecode, Static);
  RunResult R;
  for (const Step &S : Script) {
    std::vector<Value> Args;
    for (long A : S.Args)
      Args.push_back(IV(A));
    Value V = I.call(S.Proc, std::move(Args));
    if (I.failed()) {
      R.Failed = true;
      R.Error = I.errorMessage();
      R.Rendered.push_back("!");
      break;
    }
    R.Rendered.push_back(V.K == Value::Kind::Object ? "<obj>" : V.render());
  }
  R.Output = I.output();
  R.Quarantined = I.runtime().graph().numQuarantined();
  R.Pending = I.runtime().graph().numPending();
  R.StaticCalls = I.runtime().stats().StaticCalls.total();
  return R;
}

/// The differential check: dynamic construction (serial tree-walk) is the
/// reference; the static path must match under every engine/worker mix.
/// \p ExpectStaticHits additionally requires that the static fast path
/// actually fired (the corpus would otherwise silently test nothing).
static void checkDifferential(const Compiled &C,
                              const std::vector<Step> &Script,
                              bool ExpectStaticHits) {
  RunResult Ref = runScript(C, Script, /*Static=*/false, /*Workers=*/0,
                            /*Bytecode=*/false);
  EXPECT_EQ(Ref.StaticCalls, 0u);
  for (bool Bytecode : {false, true}) {
    for (unsigned Workers : {0u, 4u}) {
      SCOPED_TRACE(std::string(Bytecode ? "bytecode" : "treewalk") +
                   " workers=" + std::to_string(Workers));
      RunResult St = runScript(C, Script, /*Static=*/true, Workers, Bytecode);
      ASSERT_EQ(Ref.Rendered, St.Rendered);
      EXPECT_EQ(Ref.Output, St.Output);
      EXPECT_EQ(Ref.Failed, St.Failed);
      EXPECT_EQ(Ref.Error, St.Error);
      EXPECT_EQ(Ref.Quarantined, St.Quarantined);
      EXPECT_EQ(Ref.Pending, St.Pending);
      if (ExpectStaticHits && !std::getenv("ALPHONSE_NO_STATIC_GRAPH"))
        EXPECT_GT(St.StaticCalls, 0u);
    }
  }
}

TEST(StaticGraphDiffTest, PlanCoversNullaryCachedProcs) {
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  if (std::getenv("ALPHONSE_NO_STATIC_GRAPH"))
    GTEST_SKIP() << "static graph disabled by environment";
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  ASSERT_NE(I.graphPlan(), nullptr);
  EXPECT_EQ(I.graphPlan()->GlobalSlots, 4u);
  EXPECT_EQ(I.graphPlan()->Instances.size(), 3u);
  // The shape is live before the first call: globals plus one instance
  // per plan slot, all served out of one bulk reservation.
  EXPECT_GE(I.runtime().graph().numLiveNodes(), 7u);
  EXPECT_EQ(I.runtime().stats().StaticInstances.total(), 3u);
}

TEST(StaticGraphDiffTest, ValuesAgree) {
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkDifferential(*C,
                    {
                        {"SetA", {3}},
                        {"SetB", {4}},
                        {"SetScale", {2}},
                        {"Sum", {}},
                        {"Scaled", {}},
                        {"Ratio", {}},
                        {"SetA", {10}},
                        {"Sum", {}},
                        {"Scaled", {}},
                        {"Touch", {99}},
                        {"Sum", {}},
                    },
                    /*ExpectStaticHits=*/true);
}

TEST(StaticGraphDiffTest, FaultsAgree) {
  // scale starts at 0: the first Ratio call divides by zero. Both paths
  // must fail at the same step with the same message and quarantine the
  // same instance count.
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkDifferential(*C,
                    {
                        {"SetA", {6}},
                        {"SetB", {2}},
                        {"Sum", {}},
                        {"Ratio", {}}, // division by zero
                    },
                    /*ExpectStaticHits=*/true);
}

TEST(StaticGraphDiffTest, AvlModuleUnaffected) {
  // The AVL module has no nullary cached procedures: its plan carries
  // global slots only. The static machinery must be a pure no-op for it.
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  std::vector<Step> Script = {{"InitTree", {}}};
  for (long K : {50, 20, 70, 10, 30, 60, 80})
    Script.push_back({"Insert", {K}});
  Script.push_back({"Rebalance", {}});
  Script.push_back({"IsBalanced", {}});
  Script.push_back({"TreeHeight", {}});
  for (long K : {5, 60, 100})
    Script.push_back({"Contains", {K}});
  checkDifferential(*C, Script, /*ExpectStaticHits=*/false);
}

TEST(StaticGraphDiffTest, RandomizedInterleavings) {
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  for (unsigned Seed = 41; Seed <= 45; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    std::mt19937 Rng(Seed);
    std::vector<Step> Script = {{"SetScale", {1 + long(Rng() % 5)}}};
    for (int I = 0; I < 60; ++I) {
      switch (Rng() % 8) {
      case 0:
        Script.push_back({"SetA", {long(Rng() % 100)}});
        break;
      case 1:
        Script.push_back({"SetB", {long(Rng() % 100)}});
        break;
      case 2:
        // Occasionally zero: later Ratio calls fault, and both paths
        // must agree on exactly when.
        Script.push_back({"SetScale", {long(Rng() % 4)}});
        break;
      case 3:
        Script.push_back({"Touch", {long(Rng() % 100)}});
        break;
      case 4:
        Script.push_back({"Sum", {}});
        break;
      case 5:
        Script.push_back({"Scaled", {}});
        break;
      default:
        Script.push_back({"Ratio", {}});
        break;
      }
    }
    checkDifferential(*C, Script, /*ExpectStaticHits=*/true);
  }
}

TEST(StaticGraphDiffTest, CheckpointRoundTripAcrossModes) {
  // The shape table is derived state: a snapshot saved under static
  // construction restores into a dynamic interpreter (and vice versa)
  // with identical answers, and the restored static interpreter rebuilds
  // its shape around the snapshot's nodes.
  const std::string Path = std::string(std::getenv("TMPDIR")
                                           ? std::getenv("TMPDIR")
                                           : "/tmp") +
                           "/static-graph-diff." + std::to_string(::getpid()) +
                           ".ckpt";
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();

  DepGraph::Config Par;
  Par.Workers = 4;
  Interp A(C->M, C->Info, ExecMode::Alphonse, Par, /*EnableBytecode=*/true,
           /*EnableStaticGraph=*/true);
  A.call("SetA", {IV(7)});
  A.call("SetB", {IV(5)});
  A.call("SetScale", {IV(3)});
  Value SumA = A.call("Sum");
  Value ScaledA = A.call("Scaled");
  ASSERT_FALSE(A.failed()) << A.errorMessage();
  A.saveCheckpoint(Path);

  for (bool Static : {true, false}) {
    for (unsigned Workers : {0u, 4u}) {
      SCOPED_TRACE(std::string(Static ? "restore-static" : "restore-dynamic") +
                   " workers=" + std::to_string(Workers));
      DepGraph::Config Cfg;
      Cfg.Workers = Workers;
      Interp B(C->M, C->Info, ExecMode::Alphonse, Cfg, /*EnableBytecode=*/true,
               Static);
      B.restoreCheckpoint(Path);
      EXPECT_TRUE(SumA == B.call("Sum"));
      EXPECT_TRUE(ScaledA == B.call("Scaled"));
      ASSERT_FALSE(B.failed()) << B.errorMessage();
      // Continue past the snapshot: incremental repair must agree too.
      B.call("SetA", {IV(9)});
      Value Sum2 = B.call("Sum");
      ASSERT_FALSE(B.failed()) << B.errorMessage();
      EXPECT_EQ(Sum2.Int, 14);
      EXPECT_EQ(B.runtime().graph().numPending(), 0u);
    }
  }
  std::remove(Path.c_str());
  std::remove(deltaLogPath(Path).c_str());
}

TEST(StaticGraphDiffTest, NoStaticGraphEnvWins) {
  auto C = compile(gaugeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const char *Prior = std::getenv("ALPHONSE_NO_STATIC_GRAPH");
  ::setenv("ALPHONSE_NO_STATIC_GRAPH", "1", 1);
  Interp I(C->M, C->Info, ExecMode::Alphonse, DepGraph::Config(),
           /*EnableBytecode=*/true, /*EnableStaticGraph=*/true);
  if (Prior)
    ::setenv("ALPHONSE_NO_STATIC_GRAPH", Prior, 1);
  else
    ::unsetenv("ALPHONSE_NO_STATIC_GRAPH");
  EXPECT_EQ(I.graphPlan(), nullptr);
  I.call("SetA", {IV(2)});
  I.call("SetB", {IV(3)});
  Value V = I.call("Sum");
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  EXPECT_EQ(V.Int, 5);
  EXPECT_EQ(I.runtime().stats().StaticCalls.total(), 0u);
}

} // namespace
} // namespace alphonse::interp
