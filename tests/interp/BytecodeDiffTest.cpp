//===- BytecodeDiffTest.cpp - tree-walker vs bytecode differential --------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode tier must be observationally identical to the tree-walking
/// interpreter: same return values, same print output, same fault and
/// quarantine outcomes, same checkpoint round-trips — at Workers = 0 and
/// with parallel wave drains. Every Alphonse-L test program (the canonical
/// height-tree and AVL modules plus the inline corpus below) runs through
/// both engines with identical driver scripts, including fixed-seed
/// randomized interleavings, and the new vm.* fault-injection sites are
/// exercised for quarantine/recovery behavior.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/bytecode/Compiler.h"
#include "lang/CompileTestHelper.h"
#include "support/CheckpointIO.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

namespace alphonse::interp {
namespace {

using testing::compile;
using testing::Compiled;

static Value IV(long X) { return Value::integer(X); }

struct Step {
  std::string Proc;
  std::vector<long> Args;
};

/// Everything one engine observably produced for a script.
struct RunResult {
  std::vector<std::string> Rendered; ///< Per-step results ("!" = failed).
  std::string Output;
  bool Failed = false;
  std::string Error;
  size_t Quarantined = 0;
};

/// Runs \p Script on a fresh interpreter. \p Bytecode selects the engine,
/// \p Workers the wave pool size. A failing step records the error and
/// stops (both engines must fail at the same step with the same message).
static RunResult runScript(const Compiled &C, const std::vector<Step> &Script,
                           bool Bytecode, unsigned Workers) {
  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  Interp I(C.M, C.Info, ExecMode::Alphonse, Cfg, Bytecode);
  RunResult R;
  for (const Step &S : Script) {
    std::vector<Value> Args;
    for (long A : S.Args)
      Args.push_back(IV(A));
    Value V = I.call(S.Proc, std::move(Args));
    if (I.failed()) {
      R.Failed = true;
      R.Error = I.errorMessage();
      R.Rendered.push_back("!");
      break;
    }
    // Object identities differ across interpreters; render the kind only.
    R.Rendered.push_back(V.K == Value::Kind::Object ? "<obj>" : V.render());
  }
  R.Output = I.output();
  R.Quarantined = I.runtime().graph().numQuarantined();
  return R;
}

/// The differential check: tree-walker (serial) is the reference; the
/// bytecode engine must match it at Workers = 0 and Workers = 4.
static void checkDifferential(const Compiled &C,
                              const std::vector<Step> &Script) {
  RunResult Ref = runScript(C, Script, /*Bytecode=*/false, /*Workers=*/0);
  for (unsigned Workers : {0u, 4u}) {
    RunResult BC = runScript(C, Script, /*Bytecode=*/true, Workers);
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    ASSERT_EQ(Ref.Rendered, BC.Rendered);
    EXPECT_EQ(Ref.Output, BC.Output);
    EXPECT_EQ(Ref.Failed, BC.Failed);
    EXPECT_EQ(Ref.Error, BC.Error);
    EXPECT_EQ(Ref.Quarantined, BC.Quarantined);
  }
  // The tree-walker itself must be Workers-insensitive too (its nodes
  // stay serial-pinned, so the pool must simply leave them to the mop-up).
  RunResult TW4 = runScript(C, Script, /*Bytecode=*/false, /*Workers=*/4);
  ASSERT_EQ(Ref.Rendered, TW4.Rendered);
  EXPECT_EQ(Ref.Output, TW4.Output);
}

TEST(BytecodeDiffTest, HeightTreeScript) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkDifferential(*C, {
                            {"BuildChain", {12}},
                            {"RootHeight", {}},
                            {"GrowLeft", {3}},
                            {"RootHeight", {}},
                            {"GrowLeft", {1}},
                            {"RootHeight", {}},
                        });
}

TEST(BytecodeDiffTest, AvlScriptedInserts) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  std::vector<Step> Script = {{"InitTree", {}}};
  for (long K : {50, 20, 70, 10, 30, 60, 80, 5, 15, 25, 35})
    Script.push_back({"Insert", {K}});
  Script.push_back({"Rebalance", {}});
  Script.push_back({"IsBalanced", {}});
  Script.push_back({"TreeHeight", {}});
  for (long K : {5, 15, 42, 80, 100})
    Script.push_back({"Contains", {K}});
  checkDifferential(*C, Script);
}

TEST(BytecodeDiffTest, RandomizedAvlInterleavings) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  for (unsigned Seed = 21; Seed <= 24; ++Seed) {
    std::mt19937 Rng(Seed);
    std::vector<Step> Script = {{"InitTree", {}}};
    for (int I = 0; I < 80; ++I) {
      long K = static_cast<long>(Rng() % 150);
      switch (Rng() % 4) {
      case 0:
      case 1:
        Script.push_back({"Insert", {K}});
        break;
      case 2:
        Script.push_back({"Contains", {K}});
        break;
      default:
        Script.push_back({"Rebalance", {}});
        break;
      }
    }
    Script.push_back({"IsBalanced", {}});
    Script.push_back({"TreeHeight", {}});
    checkDifferential(*C, Script);
  }
}

TEST(BytecodeDiffTest, RandomizedHeightTreeGrowth) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  for (unsigned Seed = 31; Seed <= 33; ++Seed) {
    std::mt19937 Rng(Seed);
    std::vector<Step> Script = {{"BuildChain", {long(1 + Rng() % 8)}}};
    for (int I = 0; I < 30; ++I) {
      if (Rng() % 2 == 0)
        Script.push_back({"GrowLeft", {long(1 + Rng() % 3)}});
      else
        Script.push_back({"RootHeight", {}});
    }
    checkDifferential(*C, Script);
  }
}

TEST(BytecodeDiffTest, CachedFibWithPrints) {
  auto C = compile(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN
    RETURN n;
  END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
PROCEDURE Show(n : INTEGER) =
BEGIN
  print(Fib(n));
END Show;
)");
  ASSERT_TRUE(C->ok());
  checkDifferential(*C, {{"Show", {10}}, {"Show", {15}}, {"Show", {10}}});
}

TEST(BytecodeDiffTest, OperatorsAndControlFlow) {
  // Every operator, AND/OR short-circuit, FOR with body writes to the
  // index variable, WHILE, nested IF/ELSIF, text concat, unary ops.
  auto C = compile(R"(
VAR log : TEXT := "";
PROCEDURE Arith(a, b : INTEGER) : INTEGER =
BEGIN
  RETURN (a + b) * (a - b) - a DIV b + a MOD b;
END Arith;
PROCEDURE Logic(a, b : INTEGER) : BOOLEAN =
BEGIN
  RETURN (a < b OR a >= b * 2) AND NOT (a = b) AND a # b - 100;
END Logic;
PROCEDURE Loops(n : INTEGER) : INTEGER =
VAR s, i, j : INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    s := s + i;
    i := 0;          (* must not perturb iteration *)
  END;
  j := n;
  WHILE j > 0 DO
    s := s + 1;
    j := j - 1;
  END;
  RETURN s + (-n);
END Loops;
PROCEDURE Classify(x : INTEGER) : TEXT =
BEGIN
  IF x < 0 THEN
    RETURN "neg";
  ELSIF x = 0 THEN
    RETURN "zero";
  ELSIF x < 10 THEN
    RETURN "small";
  END;
  RETURN "big";
END Classify;
PROCEDURE Tag(x : INTEGER) =
BEGIN
  log := log & Classify(x) & ";";
  print(log);
END Tag;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkDifferential(*C, {
                            {"Arith", {17, 5}},
                            {"Arith", {-9, 4}},
                            {"Logic", {3, 8}},
                            {"Logic", {8, 8}},
                            {"Loops", {7}},
                            {"Loops", {0}},
                            {"Tag", {-3}},
                            {"Tag", {0}},
                            {"Tag", {7}},
                            {"Tag", {99}},
                        });
}

TEST(BytecodeDiffTest, RuntimeFaultsAgree) {
  // Both engines must fail at the same step, with the same message (same
  // source location), and quarantine the same number of instances.
  auto C = compile(R"(
VAR d : INTEGER := 1;
(*CACHED*) PROCEDURE Ratio(x : INTEGER) : INTEGER =
BEGIN
  RETURN x DIV d;
END Ratio;
PROCEDURE SetD(v : INTEGER) = BEGIN d := v; END SetD;
)");
  ASSERT_TRUE(C->ok());
  checkDifferential(*C, {
                            {"Ratio", {10}},
                            {"SetD", {0}},
                            {"Ratio", {10}}, // division by zero
                        });
}

TEST(BytecodeDiffTest, NilDereferenceAgrees) {
  auto C = compile(R"(
TYPE Box = OBJECT
  v : INTEGER;
METHODS
  get() : INTEGER := Get;
END;
VAR b : Box;
PROCEDURE Get(o : Box) : INTEGER = BEGIN RETURN o.v; END Get;
PROCEDURE ReadField() : INTEGER = BEGIN RETURN b.v; END ReadField;
PROCEDURE CallIt() : INTEGER = BEGIN RETURN b.get(); END CallIt;
PROCEDURE WriteField(x : INTEGER) = BEGIN b.v := x; END WriteField;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkDifferential(*C, {{"ReadField", {}}});
  checkDifferential(*C, {{"CallIt", {}}});
  checkDifferential(*C, {{"WriteField", {7}}});
}

TEST(BytecodeDiffTest, RecursionDepthLimitAgrees) {
  // The VM's per-thread depth counter must trip with the tree-walker's
  // exact limit and message.
  auto C = compile(R"(
PROCEDURE Down(n : INTEGER) : INTEGER =
BEGIN
  RETURN Down(n + 1);
END Down;
)");
  ASSERT_TRUE(C->ok());
  checkDifferential(*C, {{"Down", {0}}});
}

TEST(BytecodeDiffTest, InjectedVmFaultQuarantinesAndRecovers) {
  // The vm.* injection sites fire on chunk entry; a throw there must
  // quarantine the executing instance exactly like a body fault, and the
  // standard reset path must recover it.
  auto C = compile(R"(
VAR x : INTEGER := 3;
(*CACHED*) PROCEDURE Twice(k : INTEGER) : INTEGER =
BEGIN
  RETURN 2 * (x + k);
END Twice;
PROCEDURE SetX(v : INTEGER) = BEGIN x := v; END SetX;
)");
  ASSERT_TRUE(C->ok());
  if (std::getenv("ALPHONSE_NO_BYTECODE"))
    GTEST_SKIP() << "vm.* sites only exist in the bytecode engine";
  DepGraph::Config Cfg;
  Interp I(C->M, C->Info, ExecMode::Alphonse, Cfg, /*EnableBytecode=*/true);
  ASSERT_NE(I.bytecodeModule(), nullptr);

  FaultInjector Injector;
  Injector.armThrow("vm.Twice");
  {
    FaultInjector::Scope Scope(Injector);
    I.call("Twice", {IV(1)});
    ASSERT_TRUE(I.failed());
    EXPECT_NE(I.errorMessage().find("vm.Twice"), std::string::npos)
        << I.errorMessage();
    EXPECT_EQ(I.runtime().graph().numQuarantined(), 1u);
  }
  I.clearError();
  I.runtime().graph().resetAllQuarantined();
  Value V = I.call("Twice", {IV(1)});
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  EXPECT_EQ(V.Int, 8);
}

TEST(BytecodeDiffTest, CheckpointRoundTripAcrossEngines) {
  // A checkpoint is engine-agnostic: compiled chunks are derived state,
  // so a snapshot saved under parallel bytecode execution restores into
  // a tree-walking interpreter (and vice versa) with identical answers.
  const std::string Path = std::string(std::getenv("TMPDIR")
                                           ? std::getenv("TMPDIR")
                                           : "/tmp") +
                           "/bytecode-diff." + std::to_string(::getpid()) +
                           ".ckpt";
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());

  DepGraph::Config Par;
  Par.Workers = 4;
  Interp A(C->M, C->Info, ExecMode::Alphonse, Par, /*EnableBytecode=*/true);
  A.call("BuildChain", {IV(9)});
  Value HA = A.call("RootHeight");
  ASSERT_FALSE(A.failed()) << A.errorMessage();
  A.saveCheckpoint(Path);

  for (bool Bytecode : {true, false}) {
    SCOPED_TRACE(Bytecode ? "restore-into-bytecode" : "restore-into-treewalk");
    Interp B(C->M, C->Info, ExecMode::Alphonse, DepGraph::Config(), Bytecode);
    B.restoreCheckpoint(Path);
    Value HB = B.call("RootHeight");
    ASSERT_FALSE(B.failed()) << B.errorMessage();
    EXPECT_TRUE(HA == HB);
    B.call("GrowLeft", {IV(2)});
    Value HG = B.call("RootHeight");
    ASSERT_FALSE(B.failed());
    EXPECT_EQ(HG.Int, HA.Int + 2);
  }
  std::remove(Path.c_str());
  std::remove(deltaLogPath(Path).c_str());
}

TEST(BytecodeDiffTest, EffectAnalysisClearsPureMethods) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  auto BC = bytecode::compileModule(C->M, C->Info);
  const lang::ProcDecl *Height = C->M.findProc("Height");
  const lang::ProcDecl *HeightNil = C->M.findProc("HeightNil");
  const lang::ProcDecl *BuildChain = C->M.findProc("BuildChain");
  ASSERT_TRUE(Height && HeightNil && BuildChain);
  EXPECT_TRUE(BC->parallelSafe(Height));
  EXPECT_TRUE(BC->parallelSafe(HeightNil));
  // BuildChain allocates and writes globals/fields: pinned.
  EXPECT_FALSE(BC->parallelSafe(BuildChain));
  EXPECT_NE(BC->chunk(Height), nullptr);
}

TEST(BytecodeDiffTest, NoBytecodeEnvWins) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  const char *Prior = std::getenv("ALPHONSE_NO_BYTECODE");
  ::setenv("ALPHONSE_NO_BYTECODE", "1", 1);
  Interp I(C->M, C->Info, ExecMode::Alphonse, DepGraph::Config(),
           /*EnableBytecode=*/true);
  if (Prior)
    ::setenv("ALPHONSE_NO_BYTECODE", Prior, 1);
  else
    ::unsetenv("ALPHONSE_NO_BYTECODE");
  EXPECT_EQ(I.bytecodeModule(), nullptr);
  I.call("BuildChain", {IV(5)});
  Value H = I.call("RootHeight");
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  EXPECT_EQ(H.Int, 5);
}

} // namespace
} // namespace alphonse::interp
