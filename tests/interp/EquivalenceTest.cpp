//===- EquivalenceTest.cpp - Theorem 5.1 equivalence tests ----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 5.1: "Given an Alphonse program P, Alphonse execution of P will
/// produce the same output as a conventional execution of P." These tests
/// run one module through both execution modes with identical driver
/// scripts and compare every observable: return values, print output, and
/// final global state. A randomized driver sweeps many interleavings of
/// mutation and demand.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

#include <random>

namespace alphonse::interp {
namespace {

using testing::compile;
using testing::Compiled;

static Value IV(long X) { return Value::integer(X); }

/// A driver step: call a procedure with integer arguments.
struct Step {
  std::string Proc;
  std::vector<long> Args;
};

/// Runs the same step sequence through both modes and compares every
/// return value and the final output.
static void checkEquivalence(const Compiled &C, const std::vector<Step> &Script) {
  Interp Conv(C.M, C.Info, ExecMode::Conventional);
  Interp Alph(C.M, C.Info, ExecMode::Alphonse);
  for (size_t I = 0; I < Script.size(); ++I) {
    std::vector<Value> Args;
    for (long A : Script[I].Args)
      Args.push_back(IV(A));
    Value VC = Conv.call(Script[I].Proc, Args);
    Value VA = Alph.call(Script[I].Proc, Args);
    ASSERT_FALSE(Conv.failed()) << Conv.errorMessage();
    ASSERT_FALSE(Alph.failed()) << Alph.errorMessage();
    // Object references are per-interpreter identities; compare only
    // scalar results (kind equality still applies to objects).
    ASSERT_EQ(VC.K, VA.K) << "step " << I << " (" << Script[I].Proc << ")";
    if (VC.K != Value::Kind::Object) {
      ASSERT_TRUE(VC == VA) << "step " << I << " (" << Script[I].Proc
                            << "): conventional=" << VC.render()
                            << " alphonse=" << VA.render();
    }
  }
  EXPECT_EQ(Conv.output(), Alph.output());
}

TEST(EquivalenceTest, HeightTreeScript) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkEquivalence(*C, {
                           {"BuildChain", {15}},
                           {"RootHeight", {}},
                           {"RootHeight", {}},
                           {"GrowLeft", {4}},
                           {"RootHeight", {}},
                           {"GrowLeft", {1}},
                           {"GrowLeft", {2}},
                           {"RootHeight", {}},
                       });
}

TEST(EquivalenceTest, AvlScriptedInserts) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  std::vector<Step> Script = {{"InitTree", {}}};
  for (long K : {50, 20, 70, 10, 30, 60, 80, 5, 15, 25, 35})
    Script.push_back({"Insert", {K}});
  Script.push_back({"Rebalance", {}});
  Script.push_back({"IsBalanced", {}});
  Script.push_back({"TreeHeight", {}});
  for (long K : {5, 15, 42, 80, 100})
    Script.push_back({"Contains", {K}});
  checkEquivalence(*C, Script);
}

TEST(EquivalenceTest, AvlRandomizedInterleavings) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  for (unsigned Seed = 1; Seed <= 5; ++Seed) {
    std::mt19937 Rng(Seed);
    std::vector<Step> Script = {{"InitTree", {}}};
    for (int I = 0; I < 120; ++I) {
      long K = static_cast<long>(Rng() % 200);
      switch (Rng() % 4) {
      case 0:
      case 1:
        Script.push_back({"Insert", {K}});
        break;
      case 2:
        Script.push_back({"Contains", {K}});
        break;
      default:
        Script.push_back({"Rebalance", {}});
        break;
      }
    }
    Script.push_back({"IsBalanced", {}});
    Script.push_back({"TreeHeight", {}});
    checkEquivalence(*C, Script);
  }
}

TEST(EquivalenceTest, CachedFibWithPrints) {
  auto C = compile(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN
    RETURN n;
  END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
PROCEDURE Show(n : INTEGER) =
BEGIN
  print(Fib(n));
END Show;
)");
  ASSERT_TRUE(C->ok());
  checkEquivalence(*C, {
                           {"Show", {10}},
                           {"Show", {15}},
                           {"Show", {10}},
                           {"Show", {20}},
                       });
}

TEST(EquivalenceTest, GlobalMutationScript) {
  auto C = compile(R"(
VAR acc : INTEGER := 0; factor : INTEGER := 1;
(*CACHED*) PROCEDURE Scaled(x : INTEGER) : INTEGER =
BEGIN
  RETURN x * factor;
END Scaled;
PROCEDURE SetFactor(f : INTEGER) = BEGIN factor := f; END SetFactor;
PROCEDURE Accumulate(x : INTEGER) : INTEGER =
BEGIN
  acc := acc + Scaled(x);
  RETURN acc;
END Accumulate;
)");
  ASSERT_TRUE(C->ok());
  checkEquivalence(*C, {
                           {"Accumulate", {3}},
                           {"Accumulate", {3}},
                           {"SetFactor", {10}},
                           {"Accumulate", {3}},
                           {"SetFactor", {10}}, // Quiescent write.
                           {"Accumulate", {4}},
                           {"SetFactor", {1}},
                           {"Accumulate", {5}},
                       });
}

TEST(EquivalenceTest, MaintainedWithSideEffectRepair) {
  // A maintained method that writes storage it also reads (the AVL
  // rotation pattern in miniature): the OBS argument says spurious
  // re-execution is unobservable, and outputs must agree.
  auto C = compile(R"(
TYPE Pair = OBJECT
  a, b : INTEGER;
METHODS
  (*MAINTAINED*) sorted() : INTEGER := Sorted;
END;
VAR p : Pair;
PROCEDURE Sorted(o : Pair) : INTEGER =
VAR t : INTEGER;
BEGIN
  IF o.a > o.b THEN
    t := o.a;
    o.a := o.b;
    o.b := t;
  END;
  RETURN o.b - o.a;
END Sorted;
PROCEDURE Init() = BEGIN p := NEW(Pair); END Init;
PROCEDURE SetPair(x, y : INTEGER) : INTEGER =
BEGIN
  p.a := x;
  p.b := y;
  RETURN p.sorted();
END SetPair;
PROCEDURE Low() : INTEGER = BEGIN RETURN p.a; END Low;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  checkEquivalence(*C, {
                           {"Init", {}},
                           {"SetPair", {5, 2}},
                           {"Low", {}},
                           {"SetPair", {1, 9}},
                           {"Low", {}},
                           {"SetPair", {7, 7}},
                           {"Low", {}},
                       });
}

TEST(EquivalenceTest, RandomHeightTreeGrowth) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  for (unsigned Seed = 11; Seed <= 13; ++Seed) {
    std::mt19937 Rng(Seed);
    std::vector<Step> Script = {{"BuildChain", {long(1 + Rng() % 10)}}};
    for (int I = 0; I < 40; ++I) {
      if (Rng() % 2 == 0)
        Script.push_back({"GrowLeft", {long(1 + Rng() % 3)}});
      else
        Script.push_back({"RootHeight", {}});
    }
    checkEquivalence(*C, Script);
  }
}

} // namespace
} // namespace alphonse::interp
