//===- InterpCheckpointTest.cpp - Interpreter checkpoint tests ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint save/restore at the interpreter tier: globals, heap objects
/// (including object-to-object references), cached-procedure argument
/// tables, consistency bits, and print() output all survive a roundtrip
/// into a fresh interpreter over the same compiled module. Checkpoints
/// from a different module or execution mode are refused with a
/// structured error, as is restoring into an interpreter that has
/// already run.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"
#include "support/CheckpointIO.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace alphonse::interp {
namespace {

using testing::compile;

static Value IV(long X) { return Value::integer(X); }

/// A unique temp path per test, removed (with its sidecars) on exit.
class TempCheckpoint {
public:
  explicit TempCheckpoint(const std::string &Stem) {
    const char *Dir = std::getenv("TMPDIR");
    Path = std::string(Dir ? Dir : "/tmp") + "/" + Stem + "." +
           std::to_string(::getpid()) + ".ckpt";
  }
  ~TempCheckpoint() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
    std::remove(deltaLogPath(Path).c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

// Globals, a two-object heap reachable from a global, a cached procedure
// over both, and plain mutators.
const char *LedgerProgram = R"(
TYPE Node = OBJECT
  val : INTEGER;
  next : Node;
END;

VAR x : INTEGER := 1;
VAR root : Node;

(*CACHED*) PROCEDURE Total(k : INTEGER) : INTEGER =
BEGIN
  RETURN x + root.val + root.next.val + k;
END Total;

PROCEDURE Init() =
VAR n : Node;
BEGIN
  root := NEW(Node);
  root.val := 10;
  n := NEW(Node);
  n.val := 20;
  root.next := n;
END Init;

PROCEDURE SetX(v : INTEGER) = BEGIN x := v; END SetX;
PROCEDURE SetVal(v : INTEGER) = BEGIN root.val := v; END SetVal;
PROCEDURE Hello() = BEGIN print("hello"); END Hello;
)";

TEST(InterpCheckpointTest, RoundtripPreservesGlobalsHeapCachesAndOutput) {
  TempCheckpoint File("interp-ckpt-roundtrip");
  auto C = compile(LedgerProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();

  Interp A(C->M, C->Info, ExecMode::Alphonse);
  A.call("Init");
  A.call("Hello");
  EXPECT_EQ(A.call("Total", {IV(5)}).Int, 1 + 10 + 20 + 5);
  EXPECT_EQ(A.call("Total", {IV(7)}).Int, 1 + 10 + 20 + 7);
  A.call("SetX", {IV(100)}); // Both cached instances go stale.
  A.saveCheckpoint(File.path());

  Interp B(C->M, C->Info, ExecMode::Alphonse);
  B.restoreCheckpoint(File.path());
  EXPECT_TRUE(B.restoreNote().empty());
  EXPECT_TRUE(B.runtime().graph().verify().empty());
  EXPECT_EQ(B.global("x").Int, 100);
  EXPECT_EQ(B.field(B.global("root"), "val").Int, 10);
  EXPECT_EQ(B.field(B.field(B.global("root"), "next"), "val").Int, 20);
  EXPECT_EQ(B.output(), "hello\n");
  EXPECT_EQ(B.call("Total", {IV(5)}).Int, 100 + 10 + 20 + 5);

  // The restored interpreter keeps working incrementally.
  B.call("SetVal", {IV(-3)});
  EXPECT_EQ(B.call("Total", {IV(5)}).Int, 100 - 3 + 20 + 5);
  EXPECT_FALSE(B.failed());
}

TEST(InterpCheckpointTest, DeltaRoundtrip) {
  TempCheckpoint File("interp-ckpt-delta");
  auto C = compile(LedgerProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();

  Interp A(C->M, C->Info, ExecMode::Alphonse);
  A.call("Init");
  EXPECT_EQ(A.call("Total", {IV(0)}).Int, 31);
  A.saveCheckpoint(File.path());

  A.call("SetX", {IV(50)});
  A.appendDelta(File.path());
  A.call("SetVal", {IV(11)});
  A.call("SetX", {IV(60)});
  A.appendDelta(File.path());
  long Want = A.call("Total", {IV(2)}).Int;
  EXPECT_EQ(Want, 60 + 11 + 20 + 2);

  Interp B(C->M, C->Info, ExecMode::Alphonse);
  B.restoreCheckpoint(File.path());
  EXPECT_TRUE(B.restoreNote().empty());
  EXPECT_TRUE(B.runtime().graph().verify().empty());
  EXPECT_EQ(B.global("x").Int, 60);
  EXPECT_EQ(B.call("Total", {IV(2)}).Int, Want);
}

// Maintained *methods* table their implementing procedure, whose own
// pragma is not incremental (the binding's is) — the restore path must
// accept those tables and rebuild the nodes with the captured strategy.
TEST(InterpCheckpointTest, MaintainedMethodTablesRoundtrip) {
  TempCheckpoint File("interp-ckpt-methods");
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();

  Interp A(C->M, C->Info, ExecMode::Alphonse);
  A.call("BuildChain", {IV(8)});
  EXPECT_EQ(A.call("RootHeight").Int, 8);
  A.call("GrowLeft", {IV(3)});
  A.saveCheckpoint(File.path());
  EXPECT_EQ(A.call("RootHeight").Int, 11);

  Interp B(C->M, C->Info, ExecMode::Alphonse);
  B.restoreCheckpoint(File.path());
  EXPECT_TRUE(B.runtime().graph().verify().empty());
  EXPECT_EQ(B.call("RootHeight").Int, 11);
  B.call("GrowLeft", {IV(2)});
  EXPECT_EQ(B.call("RootHeight").Int, 13);
  EXPECT_FALSE(B.failed());
}

TEST(InterpCheckpointTest, WrongModuleIsRejected) {
  TempCheckpoint File("interp-ckpt-wrong-module");
  auto C = compile(LedgerProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  {
    Interp A(C->M, C->Info, ExecMode::Alphonse);
    A.call("Init");
    A.saveCheckpoint(File.path());
  }

  auto Other = compile(testing::heightTreeProgram());
  ASSERT_TRUE(Other->ok()) << Other->Diags.str();
  Interp B(Other->M, Other->Info, ExecMode::Alphonse);
  try {
    B.restoreCheckpoint(File.path());
    FAIL() << "a checkpoint from a different module must be refused";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Malformed);
  }
}

TEST(InterpCheckpointTest, ModeMismatchIsRejected) {
  TempCheckpoint File("interp-ckpt-mode");
  auto C = compile(LedgerProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  {
    Interp A(C->M, C->Info, ExecMode::Alphonse);
    A.call("Init");
    A.saveCheckpoint(File.path());
  }

  Interp B(C->M, C->Info, ExecMode::Conventional);
  try {
    B.restoreCheckpoint(File.path());
    FAIL() << "an Alphonse-mode checkpoint must not load conventionally";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Malformed);
  }
}

TEST(InterpCheckpointTest, RestoreIntoUsedInterpreterIsBusy) {
  TempCheckpoint File("interp-ckpt-busy");
  auto C = compile(LedgerProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  {
    Interp A(C->M, C->Info, ExecMode::Alphonse);
    A.call("Init");
    A.call("Total", {IV(1)});
    A.saveCheckpoint(File.path());
  }

  Interp B(C->M, C->Info, ExecMode::Alphonse);
  B.call("Init"); // Tracked state exists now; restore must refuse.
  B.call("Total", {IV(1)});
  try {
    B.restoreCheckpoint(File.path());
    FAIL() << "restore into a used interpreter must be refused";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Busy);
  }
}

} // namespace
} // namespace alphonse::interp
