//===- InterpTxnTest.cpp - Interpreter transactional batch tests ----------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactional mutation batches over the Alphonse-L interpreter: a
/// Transaction wrapped around interpreter calls rolls global storage,
/// instance caches, and the dependency graph back to the pre-batch
/// quiescent state when a call faults, and a fault-free retry commits.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

namespace alphonse::interp {
namespace {

using testing::compile;

static Value IV(long X) { return Value::integer(X); }

const char *CounterProgram = R"(
VAR x : INTEGER := 1;
(*CACHED*) PROCEDURE F(k : INTEGER) : INTEGER = BEGIN RETURN x + k; END F;
PROCEDURE SetX(v : INTEGER) = BEGIN x := v; END SetX;
)";

TEST(InterpTxnTest, CommittedBatchAppliesGlobalWrites) {
  auto C = compile(CounterProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 2);

  Transaction Txn(I.runtime());
  I.call("SetX", {IV(10)});
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 11);
  ASSERT_TRUE(Txn.commit());
  EXPECT_EQ(I.global("x").Int, 10);
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 11);
  EXPECT_FALSE(I.failed());
}

TEST(InterpTxnTest, FaultedBatchRollsBackGlobalsAndCaches) {
  auto C = compile(CounterProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 2);
  uint64_t Epoch0 = I.runtime().epoch();

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("F"); // Instance nodes carry the procedure's name.

  {
    Transaction Txn(I.runtime());
    I.call("SetX", {IV(10)});
    I.call("F", {IV(1)}); // The re-execution faults inside the batch.
    EXPECT_TRUE(I.failed());
    EXPECT_FALSE(Txn.commit());
  }

  // Every interpreter observable is back to the pre-batch state.
  EXPECT_EQ(I.global("x").Int, 1);
  EXPECT_EQ(I.runtime().graph().numQuarantined(), 0u);
  EXPECT_EQ(I.runtime().epoch(), Epoch0 + 1);
  EXPECT_TRUE(I.runtime().graph().verify().empty());
  I.clearError();
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 2); // Restored cache, restored value.

  // The same batch without the fault commits (the injector is spent).
  {
    Transaction Txn(I.runtime());
    I.call("SetX", {IV(10)});
    EXPECT_EQ(I.call("F", {IV(1)}).Int, 11);
    EXPECT_TRUE(Txn.commit());
  }
  EXPECT_EQ(I.global("x").Int, 10);
  EXPECT_FALSE(I.failed());
}

TEST(InterpTxnTest, GlobalSlotFaultSiteIsNamed) {
  auto C = compile(CounterProgram);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("F", {IV(2)}).Int, 3);

  // Global storage slots register fault sites as "G.<name>": the snapshot
  // refresh of x can be targeted directly.
  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("G.x");
  I.call("SetX", {IV(5)});
  I.pump(); // The refresh faults and quarantines the slot node.
  EXPECT_EQ(I.runtime().graph().numQuarantined(), 1u);
  EXPECT_EQ(I.runtime().graph().resetAllQuarantined(), 1u);
  I.pump();
  EXPECT_EQ(I.call("F", {IV(2)}).Int, 7);
}

TEST(InterpTxnTest, RollbackDropsInstancesCreatedInBatch) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("BuildChain", {IV(6)});
  EXPECT_EQ(I.call("RootHeight").Int, 6);
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  size_t Nodes0 = I.runtime().graph().numLiveNodes();
  size_t Edges0 = I.runtime().graph().numLiveEdges();

  // Growing the chain creates fresh heap objects, slots and height
  // instances; rolling back must destroy the batch's graph nodes and
  // restore the old heights.
  {
    Transaction Txn(I.runtime());
    I.call("GrowLeft", {IV(4)});
    EXPECT_EQ(I.call("RootHeight").Int, 10);
    ASSERT_FALSE(I.failed()) << I.errorMessage();
    Txn.rollback();
  }
  EXPECT_EQ(I.runtime().graph().numLiveNodes(), Nodes0);
  EXPECT_EQ(I.runtime().graph().numLiveEdges(), Edges0);
  EXPECT_TRUE(I.runtime().graph().verify().empty());
  EXPECT_EQ(I.call("RootHeight").Int, 6);
  ASSERT_FALSE(I.failed()) << I.errorMessage();

  // The tree is still fully functional afterwards.
  I.call("GrowLeft", {IV(2)});
  EXPECT_EQ(I.call("RootHeight").Int, 8);
}

} // namespace
} // namespace alphonse::interp
