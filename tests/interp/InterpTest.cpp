//===- InterpTest.cpp - Alphonse-L interpreter tests ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conventional-mode execution semantics, Alphonse-mode incremental
/// behaviour (caching, invalidation, batching, eager/demand, unchecked),
/// and error handling.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

namespace alphonse::interp {
namespace {

using testing::compile;
using testing::Compiled;

static Value IV(long X) { return Value::integer(X); }

//===----------------------------------------------------------------------===//
// Conventional semantics
//===----------------------------------------------------------------------===//

TEST(InterpConventionalTest, ArithmeticAndControlFlow) {
  auto C = compile(R"(
PROCEDURE SumTo(n : INTEGER) : INTEGER =
VAR s, i : INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    s := s + i;
  END;
  RETURN s;
END SumTo;

PROCEDURE Collatz(n : INTEGER) : INTEGER =
VAR steps : INTEGER;
BEGIN
  steps := 0;
  WHILE n # 1 DO
    IF n MOD 2 = 0 THEN
      n := n DIV 2;
    ELSE
      n := 3 * n + 1;
    END;
    steps := steps + 1;
  END;
  RETURN steps;
END Collatz;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Conventional);
  EXPECT_EQ(I.call("SumTo", {IV(100)}).Int, 5050);
  EXPECT_EQ(I.call("Collatz", {IV(27)}).Int, 111);
  EXPECT_FALSE(I.failed());
}

TEST(InterpConventionalTest, RecursionAndBuiltins) {
  auto C = compile(R"(
PROCEDURE Fact(n : INTEGER) : INTEGER =
BEGIN
  IF n <= 1 THEN
    RETURN 1;
  END;
  RETURN n * Fact(n - 1);
END Fact;

PROCEDURE Clamp(x : INTEGER) : INTEGER =
BEGIN
  RETURN max(0, min(x, 10));
END Clamp;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  EXPECT_EQ(I.call("Fact", {IV(10)}).Int, 3628800);
  EXPECT_EQ(I.call("Clamp", {IV(-5)}).Int, 0);
  EXPECT_EQ(I.call("Clamp", {IV(50)}).Int, 10);
  EXPECT_EQ(I.call("Clamp", {IV(7)}).Int, 7);
}

TEST(InterpConventionalTest, TextAndPrint) {
  auto C = compile(R"(
PROCEDURE Greet(name : TEXT) =
BEGIN
  print("hello, " & name & "!");
  print(40 + 2);
  print(TRUE);
END Greet;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  I.call("Greet", {Value::text("world")});
  EXPECT_EQ(I.output(), "hello, world!\n42\nTRUE\n");
}

TEST(InterpConventionalTest, ObjectsFieldsAndDispatch) {
  auto C = compile(R"(
TYPE Shape = OBJECT
  scale : INTEGER;
METHODS
  area() : INTEGER := ShapeArea;
END;
TYPE Square = Shape OBJECT
  side : INTEGER;
OVERRIDES
  area := SquareArea;
END;
PROCEDURE ShapeArea(s : Shape) : INTEGER = BEGIN RETURN 0; END ShapeArea;
PROCEDURE SquareArea(s : Shape) : INTEGER =
BEGIN
  RETURN s.scale;
END SquareArea;
VAR shapes : Shape;
PROCEDURE Run() : INTEGER =
VAR a : Shape; b : Shape;
BEGIN
  a := NEW(Shape);
  a.scale := 7;
  b := NEW(Square);
  b.scale := 9;
  RETURN a.area() + b.area();
END Run;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Conventional);
  EXPECT_EQ(I.call("Run").Int, 9); // 0 (base) + 9 (override reads scale).
}

TEST(InterpConventionalTest, GlobalInitializersRunInOrder) {
  auto C = compile(R"(
VAR a : INTEGER := 5; b : INTEGER := a * 2; t : TEXT := "x";
PROCEDURE Get() : INTEGER = BEGIN RETURN b; END Get;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  EXPECT_EQ(I.call("Get").Int, 10);
  EXPECT_EQ(I.global("t").Text, "x");
}

TEST(InterpConventionalTest, NilDereferenceFails) {
  auto C = compile(R"(
TYPE T = OBJECT v : INTEGER; END;
VAR t : T;
PROCEDURE Boom() : INTEGER = BEGIN RETURN t.v; END Boom;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  I.call("Boom");
  EXPECT_TRUE(I.failed());
  EXPECT_NE(I.errorMessage().find("NIL dereference"), std::string::npos);
}

TEST(InterpConventionalTest, DivisionByZeroFails) {
  auto C = compile(R"(
PROCEDURE Boom(n : INTEGER) : INTEGER = BEGIN RETURN 1 DIV n; END Boom;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  I.call("Boom", {IV(0)});
  EXPECT_TRUE(I.failed());
}

TEST(InterpConventionalTest, RunawayRecursionFails) {
  auto C = compile(R"(
PROCEDURE Loop(n : INTEGER) : INTEGER = BEGIN RETURN Loop(n); END Loop;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  I.call("Loop", {IV(1)});
  EXPECT_TRUE(I.failed());
  EXPECT_NE(I.errorMessage().find("call depth"), std::string::npos);
}

TEST(InterpConventionalTest, ClearErrorResumesExecution) {
  auto C = compile(R"(
PROCEDURE Boom(n : INTEGER) : INTEGER = BEGIN RETURN 1 DIV n; END Boom;
PROCEDURE Ok() : INTEGER = BEGIN RETURN 42; END Ok;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  I.call("Boom", {IV(0)});
  EXPECT_TRUE(I.failed());
  // While failed, execution is a no-op; the first error is preserved.
  EXPECT_EQ(I.call("Ok").K, Value::Kind::Nil);
  EXPECT_NE(I.errorMessage().find("division by zero"), std::string::npos);
  I.clearError();
  EXPECT_FALSE(I.failed());
  EXPECT_EQ(I.call("Ok").Int, 42);
}

TEST(InterpAlphonseTest, RuntimeErrorQuarantinesInstanceAndRecovers) {
  auto C = compile(R"(
VAR d : INTEGER := 1;
(*CACHED*) PROCEDURE Inv(n : INTEGER) : INTEGER =
BEGIN
  RETURN n DIV d;
END Inv;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("Inv", {IV(10)}).Int, 10);

  // The failing recompute unwinds through the incremental call protocol:
  // the instance is quarantined, the call stack is balanced, and the
  // driver sees the flag-based error.
  I.setGlobal("d", IV(0));
  I.call("Inv", {IV(10)});
  EXPECT_TRUE(I.failed());
  EXPECT_NE(I.errorMessage().find("division by zero"), std::string::npos);
  EXPECT_EQ(I.runtime().callDepth(), 0u);
  EXPECT_EQ(I.runtime().graph().numQuarantined(), 1u);
  EXPECT_TRUE(I.runtime().graph().verify().empty());

  // Recovery: fix the data, clear the error, reset the quarantined
  // instance, and the cache works again.
  I.clearError();
  I.setGlobal("d", IV(2));
  I.runtime().graph().resetAllQuarantined();
  EXPECT_EQ(I.call("Inv", {IV(10)}).Int, 5);
  EXPECT_FALSE(I.failed());
}

TEST(InterpConventionalTest, ShortCircuitEvaluation) {
  auto C = compile(R"(
TYPE T = OBJECT v : INTEGER; END;
PROCEDURE Safe(t : T) : BOOLEAN =
BEGIN
  RETURN t # NIL AND t.v > 0;
END Safe;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Conventional);
  EXPECT_FALSE(I.call("Safe", {Value::nil()}).Bool);
  EXPECT_FALSE(I.failed()) << I.errorMessage(); // t.v never evaluated.
}

//===----------------------------------------------------------------------===//
// Alphonse-mode incremental behaviour
//===----------------------------------------------------------------------===//

TEST(InterpAlphonseTest, CachedProcedureMemoizes) {
  auto C = compile(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  IF n < 2 THEN
    RETURN n;
  END;
  RETURN Fib(n - 1) + Fib(n - 2);
END Fib;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("Fib", {IV(25)}).Int, 75025);
  // Linear executions, not exponential.
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 26u);
  EXPECT_EQ(I.call("Fib", {IV(25)}).Int, 75025);
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 26u);
}

TEST(InterpAlphonseTest, CachedProcedureTracksGlobalState) {
  // Section 4.2's contribution: cached procedures are not combinators.
  auto C = compile(R"(
VAR scale : INTEGER := 2;
(*CACHED*) PROCEDURE Times(x : INTEGER) : INTEGER =
BEGIN
  RETURN x * scale;
END Times;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("Times", {IV(10)}).Int, 20);
  EXPECT_EQ(I.call("Times", {IV(10)}).Int, 20);
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 1u);
  I.setGlobal("scale", IV(3));
  EXPECT_EQ(I.call("Times", {IV(10)}).Int, 30);
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 2u);
}

TEST(InterpAlphonseTest, MaintainedHeightCachesAndUpdates) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("BuildChain", {IV(20)});
  EXPECT_EQ(I.call("RootHeight").Int, 20);
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  uint64_t FirstRun = I.runtime().stats().ProcExecutions;
  EXPECT_GE(FirstRun, 21u);
  // Second demand: pure cache hit.
  EXPECT_EQ(I.call("RootHeight").Int, 20);
  EXPECT_EQ(I.runtime().stats().ProcExecutions, FirstRun);
  // Grow under the deepest leaf: only the path re-executes.
  I.call("GrowLeft", {IV(1)});
  EXPECT_EQ(I.call("RootHeight").Int, 21);
  uint64_t AfterGrow = I.runtime().stats().ProcExecutions;
  EXPECT_LE(AfterGrow - FirstRun, 23u); // Path + new node, not 2^n.
}

TEST(InterpAlphonseTest, BatchedGrowthIsShared) {
  auto C = compile(testing::heightTreeProgram());
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("BuildChain", {IV(10)});
  EXPECT_EQ(I.call("RootHeight").Int, 10);
  I.runtime().resetStats();
  // Ten single growth steps, one re-demand: the changes batch.
  I.call("GrowLeft", {IV(10)});
  EXPECT_EQ(I.call("RootHeight").Int, 20);
  EXPECT_FALSE(I.failed()) << I.errorMessage();
}

TEST(InterpAlphonseTest, AvlSelfBalances) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("InitTree");
  for (int K = 1; K <= 64; ++K)
    I.call("Insert", {IV(K)});
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  I.call("Rebalance");
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  EXPECT_TRUE(I.call("IsBalanced").Bool);
  EXPECT_EQ(I.call("TreeHeight").Int, 7);
  for (int K = 1; K <= 64; ++K)
    EXPECT_TRUE(I.call("Contains", {IV(K)}).Bool) << K;
  EXPECT_FALSE(I.call("Contains", {IV(0)}).Bool);
  EXPECT_FALSE(I.call("Contains", {IV(100)}).Bool);
}

TEST(InterpAlphonseTest, AvlIncrementalRebalanceIsLocal) {
  auto C = compile(testing::avlProgram());
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("InitTree");
  for (int K = 0; K < 128; ++K)
    I.call("Insert", {IV(K * 10)});
  I.call("Rebalance");
  I.call("Rebalance"); // Settle self-invalidated instances.
  I.call("Rebalance");
  I.runtime().resetStats();
  I.call("Insert", {IV(5555)});
  I.call("Rebalance");
  ASSERT_FALSE(I.failed()) << I.errorMessage();
  EXPECT_TRUE(I.call("IsBalanced").Bool);
  // One insert must not re-run balance for all ~128 subtrees.
  EXPECT_LT(I.runtime().stats().ProcExecutions, 150u);
}

TEST(InterpAlphonseTest, EagerMethodUpdatesAtPump) {
  auto C = compile(R"(
TYPE Counter = OBJECT
  n : INTEGER;
METHODS
  (*MAINTAINED EAGER*) doubled() : INTEGER := Doubled;
END;
VAR c : Counter;
PROCEDURE Doubled(o : Counter) : INTEGER = BEGIN RETURN o.n * 2; END Doubled;
PROCEDURE Init() = BEGIN c := NEW(Counter); c.n := 1; END Init;
PROCEDURE Get() : INTEGER = BEGIN RETURN c.doubled(); END Get;
PROCEDURE Set(v : INTEGER) = BEGIN c.n := v; END Set;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("Init");
  EXPECT_EQ(I.call("Get").Int, 2);
  uint64_t Before = I.runtime().stats().ProcExecutions;
  I.call("Set", {IV(5)});
  EXPECT_EQ(I.runtime().stats().ProcExecutions, Before);
  I.pump(); // Eager update happens at the pump.
  EXPECT_EQ(I.runtime().stats().ProcExecutions, Before + 1);
  EXPECT_EQ(I.call("Get").Int, 10); // Cache hit.
  EXPECT_EQ(I.runtime().stats().ProcExecutions, Before + 1);
}

TEST(InterpAlphonseTest, UncheckedSuppressesDependence) {
  auto C = compile(R"(
VAR a : INTEGER := 1; b : INTEGER := 10;
TYPE D = OBJECT
METHODS
  (*MAINTAINED*) calc() : INTEGER := Calc;
END;
VAR d : D;
PROCEDURE Calc(o : D) : INTEGER =
BEGIN
  RETURN a + (*UNCHECKED*) b;
END Calc;
PROCEDURE Init() = BEGIN d := NEW(D); END Init;
PROCEDURE Get() : INTEGER = BEGIN RETURN d.calc(); END Get;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("Init");
  EXPECT_EQ(I.call("Get").Int, 11);
  I.setGlobal("b", IV(100));
  EXPECT_EQ(I.call("Get").Int, 11); // Stale by programmer's assertion.
  I.setGlobal("a", IV(2));
  EXPECT_EQ(I.call("Get").Int, 102); // Re-execution sees the new b too.
}

TEST(InterpAlphonseTest, QuiescentWriteTriggersNothing) {
  auto C = compile(R"(
VAR x : INTEGER := 5;
(*CACHED*) PROCEDURE F(k : INTEGER) : INTEGER = BEGIN RETURN x + k; END F;
)");
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 6);
  I.setGlobal("x", IV(7));
  I.setGlobal("x", IV(5)); // Written back before any demand.
  EXPECT_EQ(I.call("F", {IV(1)}).Int, 6);
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 1u);
}

TEST(InterpAlphonseTest, MaintainedMethodPerReceiverInstances) {
  auto C = compile(R"(
TYPE Box = OBJECT
  v : INTEGER;
METHODS
  (*MAINTAINED*) squared() : INTEGER := Squared;
END;
VAR b1, b2 : Box;
PROCEDURE Squared(o : Box) : INTEGER = BEGIN RETURN o.v * o.v; END Squared;
PROCEDURE Init() =
BEGIN
  b1 := NEW(Box);
  b1.v := 3;
  b2 := NEW(Box);
  b2.v := 4;
END Init;
PROCEDURE Sum() : INTEGER = BEGIN RETURN b1.squared() + b2.squared(); END Sum;
PROCEDURE Bump1() = BEGIN b1.v := b1.v + 1; END Bump1;
)");
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("Init");
  EXPECT_EQ(I.call("Sum").Int, 25);
  I.runtime().resetStats();
  I.call("Bump1");
  EXPECT_EQ(I.call("Sum").Int, 32); // 16 + 16.
  // Only b1's instance re-ran; b2.squared() was a cache hit.
  EXPECT_EQ(I.runtime().stats().ProcExecutions, 1u);
  EXPECT_GE(I.runtime().stats().CacheHits, 1u);
}

TEST(InterpAlphonseTest, ConservativeTransformStillCorrect) {
  transform::TransformOptions Opts;
  Opts.OptimizeLocalAccesses = false;
  Opts.OptimizeCallChecks = false;
  auto C = compile(testing::heightTreeProgram(), true, Opts);
  ASSERT_TRUE(C->ok());
  Interp I(C->M, C->Info, ExecMode::Alphonse);
  I.call("BuildChain", {IV(12)});
  EXPECT_EQ(I.call("RootHeight").Int, 12);
  I.call("GrowLeft", {IV(3)});
  EXPECT_EQ(I.call("RootHeight").Int, 15);
  EXPECT_FALSE(I.failed()) << I.errorMessage();
}

} // namespace
} // namespace alphonse::interp
