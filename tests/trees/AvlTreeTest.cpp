//===- AvlTreeTest.cpp - Alphonse AVL tree tests --------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Algorithm 11: self-balancing through a maintained balance method,
/// on-line and off-line (batched) operation, BST delete, maintained
/// lookups, the (*UNCHECKED*) lookup variant (Section 6.4), and randomized
/// equivalence with std::set plus the hand-written ClassicAvl.
///
//===----------------------------------------------------------------------===//

#include "trees/AvlTree.h"
#include "trees/ClassicAvl.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace alphonse::trees {
namespace {

TEST(AvlTreeTest, EmptyTree) {
  Runtime RT;
  AvlTree T(RT);
  EXPECT_EQ(T.height(), 0);
  EXPECT_FALSE(T.contains(42));
  EXPECT_TRUE(T.isAvlBalanced());
}

TEST(AvlTreeTest, AscendingInsertsStayBalanced) {
  Runtime RT;
  AvlTree T(RT);
  for (int I = 1; I <= 64; ++I) {
    T.insert(I);
    T.rebalance();
    EXPECT_TRUE(T.isAvlBalanced()) << "after insert " << I;
    EXPECT_TRUE(T.isBst());
  }
  for (int I = 1; I <= 64; ++I)
    EXPECT_TRUE(T.contains(I));
  EXPECT_FALSE(T.contains(0));
  EXPECT_FALSE(T.contains(65));
  EXPECT_EQ(T.height(), 7); // 64 keys: AVL height 7.
}

TEST(AvlTreeTest, OfflineBatchRebalance) {
  // The paper stresses that balance works off-line: arbitrary batches of
  // mutations between rebalances.
  Runtime RT;
  AvlTree T(RT);
  for (int I = 1; I <= 200; ++I)
    T.insert(I); // A pure right spine: height 200 before balancing.
  EXPECT_FALSE(T.isAvlBalanced());
  T.rebalance();
  EXPECT_TRUE(T.isAvlBalanced());
  EXPECT_TRUE(T.isBst());
  EXPECT_EQ(T.reachableSize(), 200u);
}

TEST(AvlTreeTest, DuplicateInsertsAreIgnored) {
  Runtime RT;
  AvlTree T(RT);
  T.insert(5);
  T.insert(5);
  T.insert(5);
  EXPECT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(5));
}

TEST(AvlTreeTest, EraseLeafAndInternal) {
  Runtime RT;
  AvlTree T(RT);
  for (int K : {50, 30, 70, 20, 40, 60, 80})
    T.insert(K);
  T.rebalance();
  EXPECT_TRUE(T.erase(20)); // Leaf.
  EXPECT_FALSE(T.contains(20));
  EXPECT_TRUE(T.erase(30)); // One child remains.
  EXPECT_FALSE(T.contains(30));
  EXPECT_TRUE(T.erase(50)); // Two children (root).
  EXPECT_FALSE(T.contains(50));
  EXPECT_FALSE(T.erase(50)); // Already gone.
  T.rebalance();
  EXPECT_TRUE(T.isAvlBalanced());
  EXPECT_TRUE(T.isBst());
  for (int K : {40, 60, 70, 80})
    EXPECT_TRUE(T.contains(K));
  EXPECT_EQ(T.size(), 4u);
}

TEST(AvlTreeTest, RebalanceAfterNoChangeIsCheap) {
  Runtime RT;
  AvlTree T(RT);
  for (int I = 0; I < 32; ++I)
    T.insert(I);
  // Balance writes cells it also reads (rotations), so instances that
  // self-invalidated settle on the next demand; after that, rebalancing a
  // balanced tree is a pure cache hit.
  T.rebalance();
  T.rebalance();
  RT.resetStats();
  T.rebalance();
  EXPECT_EQ(RT.stats().ProcExecutions, 0u);
}

TEST(AvlTreeTest, LocalInsertReusesDistantSubtrees) {
  Runtime RT;
  AvlTree T(RT);
  for (int I = 0; I < 256; ++I)
    T.insert(I * 10);
  T.rebalance();
  RT.resetStats();
  T.insert(1234567); // Far right.
  T.rebalance();
  uint64_t Execs = RT.stats().ProcExecutions;
  // Re-balancing after one insert must not revisit all ~256 subtrees.
  EXPECT_LT(Execs, 120u);
  EXPECT_TRUE(T.isAvlBalanced());
}

TEST(AvlTreeTest, MaintainedLookupCaches) {
  Runtime RT;
  AvlTree T(RT);
  for (int I = 0; I < 64; ++I)
    T.insert(I);
  EXPECT_TRUE(T.lookup(10));
  EXPECT_TRUE(T.lookup(10)); // Settle self-invalidated balance instances.
  RT.resetStats();
  EXPECT_TRUE(T.lookup(10));
  EXPECT_EQ(RT.stats().ProcExecutions, 0u); // Cached.
  EXPECT_FALSE(T.lookup(1000));
  T.insert(1000);
  EXPECT_TRUE(T.lookup(1000)); // Insert invalidated the absence answer.
}

TEST(AvlTreeTest, UncheckedLookupHasConstantDependencies) {
  Runtime RT1;
  AvlTree Tracked(RT1, /*UncheckedLookups=*/false);
  Runtime RT2;
  AvlTree Unchecked(RT2, /*UncheckedLookups=*/true);
  for (int I = 0; I < 128; ++I) {
    Tracked.insert(I);
    Unchecked.insert(I);
  }
  EXPECT_TRUE(Tracked.lookup(77));
  EXPECT_TRUE(Unchecked.lookup(77));
  size_t TrackedDeps = Tracked.lookupDependencyCount(77);
  size_t UncheckedDeps = Unchecked.lookupDependencyCount(77);
  // Section 6.4: the tracked walk records O(log n) locations; the
  // unchecked walk depends on the found item (and the probe's few reads).
  EXPECT_GE(TrackedDeps, 6u);
  EXPECT_LE(UncheckedDeps, 2u);
}

TEST(AvlTreeTest, UncheckedLookupSurvivesUnrelatedChanges) {
  Runtime RT;
  AvlTree T(RT, /*UncheckedLookups=*/true);
  for (int I = 0; I < 64; ++I)
    T.insert(I);
  EXPECT_TRUE(T.lookup(5));
  RT.resetStats();
  // Mutate far away from key 5; the unchecked lookup stays cached even
  // though the descent path may have been rearranged.
  T.insert(1000);
  EXPECT_TRUE(T.lookup(5));
  EXPECT_TRUE(T.lookup(5));
}

TEST(AvlTreeTest, RandomOperationsMatchStdSetAndClassic) {
  std::mt19937 Rng(4242);
  Runtime RT;
  AvlTree T(RT);
  ClassicAvl Classic;
  std::set<int> Oracle;
  for (int Step = 0; Step < 2000; ++Step) {
    int Key = static_cast<int>(Rng() % 500);
    int Op = static_cast<int>(Rng() % 3);
    if (Op == 0) {
      T.insert(Key);
      Classic.insert(Key);
      Oracle.insert(Key);
    } else if (Op == 1) {
      bool A = T.erase(Key);
      bool B = Classic.erase(Key);
      bool C = Oracle.erase(Key) != 0;
      EXPECT_EQ(A, C);
      EXPECT_EQ(B, C);
    } else {
      bool A = T.contains(Key);
      bool B = Classic.contains(Key);
      bool C = Oracle.count(Key) != 0;
      EXPECT_EQ(A, C);
      EXPECT_EQ(B, C);
    }
    if (Step % 100 == 99) {
      T.rebalance();
      ASSERT_TRUE(T.isAvlBalanced()) << "step " << Step;
      ASSERT_TRUE(T.isBst()) << "step " << Step;
      ASSERT_TRUE(Classic.isAvlBalanced());
      ASSERT_EQ(T.reachableSize(), Oracle.size());
    }
  }
}

/// Parameterized batch-size sweep: insert a batch, rebalance once, verify
/// the invariant — the off-line claim at several scales.
class AvlBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(AvlBatchTest, BatchedInsertsBalanceInOnePass) {
  int N = GetParam();
  std::mt19937 Rng(static_cast<unsigned>(N));
  Runtime RT;
  AvlTree T(RT);
  for (int I = 0; I < N; ++I)
    T.insert(static_cast<int>(Rng() % (N * 4)));
  T.rebalance();
  EXPECT_TRUE(T.isAvlBalanced());
  EXPECT_TRUE(T.isBst());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AvlBatchTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 256, 1000));

} // namespace
} // namespace alphonse::trees
