//===- HeightTreeTest.cpp - Maintained-height tree tests ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests Algorithm 1's cost/behaviour claims (Section 3.4): O(n) first
/// demand, O(1) repeats, O(path) updates, batching of multiple changes,
/// plus a randomized property check against the exhaustive oracle.
///
//===----------------------------------------------------------------------===//

#include "trees/HeightTree.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace alphonse::trees {
namespace {

/// Builds a perfect binary tree of \p Levels levels and returns the root
/// plus every node in \p Nodes (level order).
static HeightTree::Node *
buildPerfect(HeightTree &T, int Levels,
             std::vector<HeightTree::Node *> *Nodes = nullptr) {
  size_t Count = (size_t{1} << Levels) - 1;
  std::vector<HeightTree::Node *> All;
  All.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    All.push_back(T.makeNode());
  for (size_t I = 0; I < Count; ++I) {
    size_t L = 2 * I + 1, R = 2 * I + 2;
    if (L < Count)
      T.setLeft(All[I], All[L]);
    if (R < Count)
      T.setRight(All[I], All[R]);
  }
  if (Nodes)
    *Nodes = All;
  return All[0];
}

TEST(HeightTreeTest, NilHasHeightZero) {
  Runtime RT;
  HeightTree T(RT);
  EXPECT_EQ(T.height(T.nil()), 0);
}

TEST(HeightTreeTest, SingleNodeHasHeightOne) {
  Runtime RT;
  HeightTree T(RT);
  EXPECT_EQ(T.height(T.makeNode()), 1);
}

TEST(HeightTreeTest, PerfectTreeHeights) {
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 4, &Nodes);
  EXPECT_EQ(T.height(Root), 4);
  // Every subtree height is now cached; check a few.
  EXPECT_EQ(T.height(Nodes[1]), 3);
  EXPECT_EQ(T.height(Nodes[3]), 2);
  EXPECT_EQ(T.height(Nodes[7]), 1);
}

TEST(HeightTreeTest, FirstDemandIsLinearRepeatIsConstant) {
  Runtime RT;
  HeightTree T(RT);
  HeightTree::Node *Root = buildPerfect(T, 6); // 63 nodes.
  RT.resetStats();
  T.height(Root);
  // One execution per node plus the shared nil instance.
  EXPECT_EQ(RT.stats().ProcExecutions, 64u);
  RT.resetStats();
  T.height(Root);
  EXPECT_EQ(RT.stats().ProcExecutions, 0u);
  EXPECT_EQ(RT.stats().CacheHits, 1u);
}

TEST(HeightTreeTest, DescendantQueriesHitTheCache) {
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 5, &Nodes);
  T.height(Root);
  RT.resetStats();
  for (HeightTree::Node *N : Nodes)
    T.height(N);
  EXPECT_EQ(RT.stats().ProcExecutions, 0u);
}

TEST(HeightTreeTest, PointerChangeUpdatesAlongRootPath) {
  // Section 3.4: a child-pointer change costs O(height) height updates.
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 6, &Nodes);
  EXPECT_EQ(T.height(Root), 6);
  // Extend under the leftmost leaf (node index 31 is the first leaf of a
  // 6-level perfect tree... leaves start at 2^5 - 1 = 31).
  HeightTree::Node *Leaf = Nodes[31];
  RT.resetStats();
  T.setLeft(Leaf, T.makeNode());
  EXPECT_EQ(T.height(Root), 7);
  // The change re-executes the leaf-to-root path (6 nodes) and the new
  // node; allow the new node's nil reads too, but it must stay far below
  // the 63-node full recomputation.
  EXPECT_LE(RT.stats().ProcExecutions, 10u);
  EXPECT_GE(RT.stats().ProcExecutions, 6u);
}

TEST(HeightTreeTest, QuiescentRelinkStopsEarly) {
  // Swapping a subtree for one of equal height changes heights nowhere
  // above the relink point.
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 6, &Nodes);
  EXPECT_EQ(T.height(Root), 6);
  // Detach the left child of node 1 (a 4-level subtree) and replace it by
  // a fresh perfect 4-level subtree.
  HeightTree::Node *Fresh = buildPerfect(T, 4);
  RT.resetStats();
  T.setLeft(Nodes[1], Fresh);
  EXPECT_EQ(T.height(Root), 6);
  // Node 1's height re-runs (new subtree pointer), finds the same value;
  // the fresh subtree computes its own heights (15 + nil reuse). The root
  // need not re-run, but a conservative bound still excludes full
  // recomputation of the original 63 nodes.
  EXPECT_LE(RT.stats().ProcExecutions, 20u);
}

TEST(HeightTreeTest, BatchedChangesAreSharedAtCommonAncestors) {
  // Section 3.4: many changes cost O(|AFFECTED|), not sum of path lengths.
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 7, &Nodes); // 127 nodes.
  EXPECT_EQ(T.height(Root), 7);
  // Grow a new level under every leaf (64 leaves), then demand once.
  size_t FirstLeaf = 63;
  RT.resetStats();
  for (size_t I = FirstLeaf; I < Nodes.size(); ++I)
    T.setLeft(Nodes[I], T.makeNode());
  EXPECT_EQ(T.height(Root), 8);
  uint64_t Batched = RT.stats().ProcExecutions;
  // AFFECTED = all 127 original nodes (every height changed) + 64 new
  // nodes = 191. Without batching it would be 64 paths * 7 = 448 stale
  // ancestor updates plus the new nodes.
  EXPECT_LE(Batched, 200u);
}

TEST(HeightTreeTest, DiscardInvalidatesAncestors) {
  Runtime RT;
  HeightTree T(RT);
  HeightTree::Node *Root = T.makeNode();
  HeightTree::Node *Child = T.makeNode();
  HeightTree::Node *Grand = T.makeNode();
  T.setLeft(Root, Child);
  T.setLeft(Child, Grand);
  EXPECT_EQ(T.height(Root), 3);
  T.setLeft(Child, T.nil());
  T.discard(Grand);
  EXPECT_EQ(T.height(Root), 2);
}

TEST(HeightTreeTest, MatchesExhaustiveOracleUnderRandomMutation) {
  std::mt19937 Rng(99);
  Runtime RT;
  HeightTree T(RT);
  // Maintain a forest: Slots[i] is a detached subtree root. We randomly
  // attach detached roots under random leaves-of-attachment and re-check
  // against the oracle.
  std::vector<HeightTree::Node *> All;
  for (int I = 0; I < 80; ++I)
    All.push_back(T.makeNode());
  std::vector<HeightTree::Node *> Detached(All);
  HeightTree::Node *Root = Detached.back();
  Detached.pop_back();

  auto RandomDescend = [&](HeightTree::Node *From) {
    // Walk to a random node with a free slot.
    while (true) {
      bool LeftFree = From->Left.peek() == T.nil();
      bool RightFree = From->Right.peek() == T.nil();
      if ((LeftFree || RightFree) && (Rng() % 2 == 0))
        return From;
      HeightTree::Node *Next =
          (Rng() % 2 == 0) ? From->Left.peek() : From->Right.peek();
      if (Next == T.nil())
        return From;
      From = Next;
    }
  };

  while (!Detached.empty()) {
    HeightTree::Node *Sub = Detached.back();
    Detached.pop_back();
    HeightTree::Node *At = RandomDescend(Root);
    if (At->Left.peek() == T.nil())
      T.setLeft(At, Sub);
    else if (At->Right.peek() == T.nil())
      T.setRight(At, Sub);
    else
      continue; // No slot; drop this subtree (keep it detached forever).
    EXPECT_EQ(T.height(Root), HeightTree::exhaustiveHeight(Root, T.nil()));
  }
}

TEST(HeightTreeTest, SubtreeMoveMatchesOracle) {
  Runtime RT;
  HeightTree T(RT);
  std::vector<HeightTree::Node *> Nodes;
  HeightTree::Node *Root = buildPerfect(T, 5, &Nodes);
  T.height(Root);
  // Move node 3's subtree under node 14 (a leaf-ish node on the other
  // side): detach, then reattach.
  T.setLeft(Nodes[1], T.nil());
  EXPECT_EQ(T.height(Root), HeightTree::exhaustiveHeight(Root, T.nil()));
  T.setLeft(Nodes[14], Nodes[3]);
  EXPECT_EQ(T.height(Root), HeightTree::exhaustiveHeight(Root, T.nil()));
}

} // namespace
} // namespace alphonse::trees
