//===- UnionFindTest.cpp - Disjoint-set forest tests ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

namespace alphonse {
namespace {

TEST(UnionFindTest, SingletonsAreDistinct) {
  UnionFind UF;
  UnionFind::Id A = UF.makeSet();
  UnionFind::Id B = UF.makeSet();
  EXPECT_NE(A, B);
  EXPECT_EQ(UF.find(A), A);
  EXPECT_EQ(UF.find(B), B);
  EXPECT_FALSE(UF.connected(A, B));
  EXPECT_EQ(UF.numSets(), 2u);
}

TEST(UnionFindTest, UniteMergesSets) {
  UnionFind UF;
  UnionFind::Id A = UF.makeSet();
  UnionFind::Id B = UF.makeSet();
  UnionFind::Id C = UF.makeSet();
  UF.unite(A, B);
  EXPECT_TRUE(UF.connected(A, B));
  EXPECT_FALSE(UF.connected(A, C));
  EXPECT_EQ(UF.numSets(), 2u);
  UF.unite(B, C);
  EXPECT_TRUE(UF.connected(A, C));
  EXPECT_EQ(UF.numSets(), 1u);
}

TEST(UnionFindTest, UniteIsIdempotent) {
  UnionFind UF;
  UnionFind::Id A = UF.makeSet();
  UnionFind::Id B = UF.makeSet();
  UnionFind::Id R1 = UF.unite(A, B);
  UnionFind::Id R2 = UF.unite(A, B);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(UF.numSets(), 1u);
}

TEST(UnionFindTest, UniteReturnsRepresentative) {
  UnionFind UF;
  UnionFind::Id A = UF.makeSet();
  UnionFind::Id B = UF.makeSet();
  UnionFind::Id Root = UF.unite(A, B);
  EXPECT_EQ(UF.find(A), Root);
  EXPECT_EQ(UF.find(B), Root);
}

TEST(UnionFindTest, ChainUnionKeepsOneRepresentative) {
  UnionFind UF;
  std::vector<UnionFind::Id> Ids;
  for (int I = 0; I < 100; ++I)
    Ids.push_back(UF.makeSet());
  for (int I = 1; I < 100; ++I)
    UF.unite(Ids[I - 1], Ids[I]);
  UnionFind::Id Root = UF.find(Ids[0]);
  for (UnionFind::Id Id : Ids)
    EXPECT_EQ(UF.find(Id), Root);
  EXPECT_EQ(UF.numSets(), 1u);
}

/// Property check against a brute-force connectivity oracle.
TEST(UnionFindTest, MatchesBruteForceOracle) {
  std::mt19937 Rng(12345);
  constexpr int N = 64;
  UnionFind UF;
  std::vector<UnionFind::Id> Ids;
  for (int I = 0; I < N; ++I)
    Ids.push_back(UF.makeSet());
  // Oracle: component labels, merged by relabeling.
  std::vector<int> Label(N);
  std::iota(Label.begin(), Label.end(), 0);
  for (int Step = 0; Step < 200; ++Step) {
    int A = static_cast<int>(Rng() % N);
    int B = static_cast<int>(Rng() % N);
    UF.unite(Ids[A], Ids[B]);
    int From = Label[B], To = Label[A];
    for (int &L : Label)
      if (L == From)
        L = To;
    // Spot-check a few pairs.
    for (int Check = 0; Check < 8; ++Check) {
      int X = static_cast<int>(Rng() % N);
      int Y = static_cast<int>(Rng() % N);
      EXPECT_EQ(UF.connected(Ids[X], Ids[Y]), Label[X] == Label[Y]);
    }
  }
}

} // namespace
} // namespace alphonse
