//===- ThreadPoolTest.cpp - Worker pool shutdown hardening ----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shutdown-path regression tests for the propagation worker pool: a task
/// that throws while the pool is stopping must not deadlock a join or
/// escape into the destructor, a task queued after stop() must still run
/// (inline, with its exception reaching the caller), stop() must rethrow
/// errors no wait() consumed yet stay idempotent, and no combination may
/// leave wait() stranded.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace alphonse {
namespace {

TEST(ThreadPoolTest, WaitRethrowsFirstTaskError) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.run([&] { ++Ran; });
  Pool.run([&] {
    ++Ran;
    throw std::runtime_error("task boom");
  });
  Pool.run([&] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 3) << "non-throwing siblings must still run";
  // The error was consumed by the rethrow; the pool stays usable.
  Pool.run([&] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 4);
}

TEST(ThreadPoolTest, ThrowingBacklogDrainsThroughStopWithoutTerminate) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    // Queue more throwing tasks than workers so some are still in the
    // backlog when stop() (via the destructor) begins joining. If a
    // worker's exception crossed a join, std::terminate would kill the
    // test run here.
    for (int I = 0; I < 16; ++I)
      Pool.run([&] {
        ++Ran;
        throw std::runtime_error("shutdown boom");
      });
  } // Destructor: stop() + joins; exceptions captured, never propagated.
  EXPECT_EQ(Ran.load(), 16) << "stop() must drain the backlog, not drop it";
}

TEST(ThreadPoolTest, RunAfterStopExecutesInline) {
  ThreadPool Pool(2);
  Pool.stop();
  EXPECT_EQ(Pool.size(), 0u) << "stop() joins and clears every worker";
  std::thread::id TaskThread;
  Pool.run([&] { TaskThread = std::this_thread::get_id(); });
  EXPECT_EQ(TaskThread, std::this_thread::get_id())
      << "after stop() tasks run on the caller, never silently dropped";
  // wait() must not strand on a queue no worker will drain.
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, RunAfterStopThrowsInline) {
  // Regression: an inline post-stop task used to stash its exception in
  // the pool's deferred-error slot, which only a *later* wait() would
  // surface — a caller done with the pool (it just stopped it!) almost
  // never waits again, so the failure was silently swallowed. Inline
  // execution has a live caller on the stack; throw straight at it.
  ThreadPool Pool(1);
  Pool.stop();
  EXPECT_THROW(Pool.run([] { throw std::runtime_error("inline boom"); }),
               std::runtime_error);
  // Nothing may linger for the next wait()/stop()/destructor.
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_NO_THROW(Pool.stop());
}

TEST(ThreadPoolTest, StopRethrowsPendingTaskError) {
  // Regression: a worker-task exception that no wait() consumed used to
  // be dropped on the floor by stop() (and the destructor). stop() now
  // rethrows the first pending error after the drain.
  ThreadPool Pool(1);
  std::atomic<int> Ran{0};
  Pool.run([&] {
    ++Ran;
    throw std::runtime_error("unconsumed boom");
  });
  Pool.run([&] { ++Ran; });
  EXPECT_THROW(Pool.stop(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 2) << "stop() drains the backlog before rethrowing";
  // The rethrow consumed the error; stop() stays idempotent.
  EXPECT_NO_THROW(Pool.stop());
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, StopIsIdempotent) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 8; ++I)
    Pool.run([&] { ++Ran; });
  Pool.stop();
  EXPECT_EQ(Ran.load(), 8);
  EXPECT_NO_THROW(Pool.stop()); // Second stop: no double-join, no hang.
  EXPECT_NO_THROW(Pool.wait());
  // And the destructor makes a third call.
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsEverythingInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 0u);
  // With no workers the queue would never drain; run() must execute on
  // the caller immediately instead of queueing into a dead pool, and
  // wait() must return without stranding.
  std::atomic<int> Ran{0};
  Pool.run([&] { ++Ran; });
  EXPECT_EQ(Ran.load(), 1) << "zero-worker run() completes before returning";
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_NO_THROW(Pool.stop());
}

TEST(ThreadPoolTest, SlowTasksFinishBeforeJoin) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 4; ++I)
      Pool.run([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ++Ran;
      });
    // Destroy immediately: stop() must wait for the in-flight and queued
    // tasks, not abandon them.
  }
  EXPECT_EQ(Ran.load(), 4);
}

} // namespace
} // namespace alphonse
