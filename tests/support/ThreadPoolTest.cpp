//===- ThreadPoolTest.cpp - Worker pool shutdown hardening ----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shutdown-path regression tests for the propagation worker pool: a task
/// that throws while the pool is stopping must not deadlock a join or
/// escape into the destructor, a task queued after stop() must still run
/// (inline), stop() must be idempotent, and no combination may leave
/// wait() stranded.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace alphonse {
namespace {

TEST(ThreadPoolTest, WaitRethrowsFirstTaskError) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  Pool.run([&] { ++Ran; });
  Pool.run([&] {
    ++Ran;
    throw std::runtime_error("task boom");
  });
  Pool.run([&] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 3) << "non-throwing siblings must still run";
  // The error was consumed by the rethrow; the pool stays usable.
  Pool.run([&] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 4);
}

TEST(ThreadPoolTest, ThrowingBacklogDrainsThroughStopWithoutTerminate) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    // Queue more throwing tasks than workers so some are still in the
    // backlog when stop() (via the destructor) begins joining. If a
    // worker's exception crossed a join, std::terminate would kill the
    // test run here.
    for (int I = 0; I < 16; ++I)
      Pool.run([&] {
        ++Ran;
        throw std::runtime_error("shutdown boom");
      });
  } // Destructor: stop() + joins; exceptions captured, never propagated.
  EXPECT_EQ(Ran.load(), 16) << "stop() must drain the backlog, not drop it";
}

TEST(ThreadPoolTest, RunAfterStopExecutesInline) {
  ThreadPool Pool(2);
  Pool.stop();
  EXPECT_EQ(Pool.size(), 0u) << "stop() joins and clears every worker";
  std::thread::id TaskThread;
  Pool.run([&] { TaskThread = std::this_thread::get_id(); });
  EXPECT_EQ(TaskThread, std::this_thread::get_id())
      << "after stop() tasks run on the caller, never silently dropped";
  // wait() must not strand on a queue no worker will drain.
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, RunAfterStopCapturesErrorsForWait) {
  ThreadPool Pool(1);
  Pool.stop();
  Pool.run([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, StopIsIdempotent) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 8; ++I)
    Pool.run([&] { ++Ran; });
  Pool.stop();
  EXPECT_EQ(Ran.load(), 8);
  EXPECT_NO_THROW(Pool.stop()); // Second stop: no double-join, no hang.
  EXPECT_NO_THROW(Pool.wait());
  // And the destructor makes a third call.
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsEverythingInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 0u);
  // With no workers the queue would never drain; tasks must not be
  // accepted into a dead queue. stop() flushes whatever got in, and
  // wait() must return.
  std::atomic<int> Ran{0};
  Pool.run([&] { ++Ran; });
  Pool.stop();
  EXPECT_EQ(Ran.load(), 1);
  EXPECT_NO_THROW(Pool.wait());
}

TEST(ThreadPoolTest, SlowTasksFinishBeforeJoin) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 4; ++I)
      Pool.run([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ++Ran;
      });
    // Destroy immediately: stop() must wait for the in-flight and queued
    // tasks, not abandon them.
  }
  EXPECT_EQ(Ran.load(), 4);
}

} // namespace
} // namespace alphonse
