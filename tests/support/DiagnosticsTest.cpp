//===- DiagnosticsTest.cpp - Diagnostics engine tests ---------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

namespace alphonse {
namespace {

TEST(DiagnosticsTest, StartsClean) {
  DiagnosticEngine DE;
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 0u);
  EXPECT_TRUE(DE.str().empty());
}

TEST(DiagnosticsTest, ErrorsAreCounted) {
  DiagnosticEngine DE;
  DE.error(SourceLocation(1, 2), "unexpected token");
  DE.warning(SourceLocation(3, 4), "unused variable");
  DE.error(SourceLocation(5, 6), "type mismatch");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 2u);
  EXPECT_EQ(DE.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, WarningsDoNotSetErrorFlag) {
  DiagnosticEngine DE;
  DE.warning(SourceLocation(1, 1), "something mild");
  EXPECT_FALSE(DE.hasErrors());
}

TEST(DiagnosticsTest, RendersLocationsAndKinds) {
  DiagnosticEngine DE;
  DE.error(SourceLocation(7, 3), "expected ';'");
  DE.note(SourceLocation(6, 1), "to match this BEGIN");
  std::string Out = DE.str();
  EXPECT_NE(Out.find("7:3: error: expected ';'"), std::string::npos);
  EXPECT_NE(Out.find("6:1: note: to match this BEGIN"), std::string::npos);
}

TEST(DiagnosticsTest, InvalidLocationRendersUnknown) {
  DiagnosticEngine DE;
  DE.error(SourceLocation(), "no position");
  EXPECT_NE(DE.str().find("<unknown>: error"), std::string::npos);
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine DE;
  DE.error(SourceLocation(1, 1), "boom");
  DE.clear();
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_TRUE(DE.diagnostics().empty());
}

} // namespace
} // namespace alphonse
