//===- StatisticsTest.cpp - Sharded counter soundness ---------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for the sharded statistics counters. The load-bearing
/// one is SlotZeroFetchAddIsExactAcrossThreads: slot 0 of StatCounter used
/// to be a plain load/store pair like the worker slots, so whenever more
/// threads than shards bumped a counter (guaranteed once the session
/// service multiplies pools and pins session drains to shard 0) the slot
/// had multiple writers and lost increments. Slot 0 is now fetch_add; the
/// test fails deterministically against the old implementation. The
/// two-pool tests cover the companion fix: shard ids are pool-scoped, so
/// concurrent pools no longer starve each other out of a process-global
/// shard budget.
///
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace alphonse {
namespace {

TEST(StatisticsTest, SlotZeroFetchAddIsExactAcrossThreads) {
  // Plain threads carry no shard: every bump lands in slot 0. With the
  // pre-fix load/store slot this loses increments under contention; with
  // fetch_add the count is exact.
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 1 << 16;
  StatCounter C;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        ++C;
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.total(), Threads * PerThread)
      << "slot 0 has concurrent writers and must not lose increments";
}

TEST(StatisticsTest, ConcurrentPoolsGetFullShardComplements) {
  // Pool-scoped shard numbering: a second (and third) live pool gets the
  // same full worker complement as the first, instead of draining a
  // process-global shard budget dry.
  ThreadPool A(8);
  ThreadPool B(8);
  ThreadPool C(kStatShards); // Over-asking still caps per pool, not globally.
  EXPECT_EQ(A.size(), 8u);
  EXPECT_EQ(B.size(), 8u);
  EXPECT_EQ(C.size(), kStatShards - 1);
}

TEST(StatisticsTest, TwoPoolStressCountsExactlyPerPool) {
  // The shard-ownership rule under real concurrency: each pool drives its
  // own Statistics block (as each session drain drives its session's),
  // both pools run flat out at the same time, and every per-pool count
  // must come out exact. Pre-fix this configuration exhausted the global
  // shard budget, dumped the second pool's workers onto the lossy shared
  // slot 0, and undercounted.
  constexpr int Tasks = 64;
  constexpr uint64_t PerTask = 1 << 12;
  Statistics SA, SB;
  {
    ThreadPool A(8);
    ThreadPool B(8);
    for (int T = 0; T < Tasks; ++T) {
      A.run([&SA] {
        for (uint64_t I = 0; I < PerTask; ++I)
          ++SA.EvalSteps;
      });
      B.run([&SB] {
        for (uint64_t I = 0; I < PerTask; ++I)
          ++SB.EvalSteps;
      });
    }
    A.wait();
    B.wait();
  }
  EXPECT_EQ(SA.EvalSteps.total(), Tasks * PerTask);
  EXPECT_EQ(SB.EvalSteps.total(), Tasks * PerTask);
}

TEST(StatisticsTest, StatShardScopeOverridesAndRestores) {
  ASSERT_EQ(statShardId(), 0u) << "test body runs unsharded";
  {
    StatShardScope Pin(5);
    EXPECT_EQ(statShardId(), 5u);
    {
      StatShardScope Inner(0); // Session drains re-pin workers to slot 0.
      EXPECT_EQ(statShardId(), 0u);
    }
    EXPECT_EQ(statShardId(), 5u);
  }
  EXPECT_EQ(statShardId(), 0u);
}

TEST(StatisticsTest, WorkerSlotBumpsMergeIntoTotal) {
  StatCounter C;
  ++C; // Slot 0.
  {
    StatShardScope Pin(3);
    C += 10; // Lazily allocates the worker block, lands in slot 3.
  }
  {
    StatShardScope Pin(kStatShards - 1);
    C += 100; // Highest legal shard.
  }
  EXPECT_EQ(C.total(), 111u);
}

TEST(StatisticsTest, ResetZeroesEverySlot) {
  Statistics S;
  ++S.EvalSteps;
  {
    StatShardScope Pin(2);
    S.EvalSteps += 7;
  }
  ASSERT_EQ(S.EvalSteps.total(), 8u);
  S.reset();
  EXPECT_EQ(S.EvalSteps.total(), 0u)
      << "reset() must clear worker slots, not just slot 0";
  // The counter stays usable from both shard classes after a reset.
  ++S.EvalSteps;
  {
    StatShardScope Pin(2);
    ++S.EvalSteps;
  }
  EXPECT_EQ(S.EvalSteps.total(), 2u);
}

TEST(StatisticsTest, CopyMergesShardsIntoSlotZero) {
  StatCounter Src;
  {
    StatShardScope Pin(4);
    Src += 41;
  }
  ++Src;
  StatCounter Dst;
  {
    StatShardScope Pin(9);
    Dst += 1000; // Dead worker-slot residue the copy must clear.
  }
  Dst = Src;
  EXPECT_EQ(Dst.total(), 42u);
  EXPECT_EQ(Src.total(), 42u);
}

} // namespace
} // namespace alphonse
