//===- ParserTest.cpp - Alphonse-L parser tests ---------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <gtest/gtest.h>

namespace alphonse::lang {
namespace {

static Module parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  Module M = parseModule(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

static void parseBad(const std::string &Src) {
  DiagnosticEngine Diags;
  parseModule(Src, Diags);
  EXPECT_TRUE(Diags.hasErrors()) << "expected a parse error for: " << Src;
}

TEST(ParserTest, ObjectTypeWithFieldsAndMethods) {
  Module M = parseOk(R"(
TYPE Tree = OBJECT
  left, right : Tree;
  key : INTEGER;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
  find(k : INTEGER) : BOOLEAN := Find;
END;
)");
  ASSERT_EQ(M.Types.size(), 1u);
  const TypeDecl &T = M.Types[0];
  EXPECT_EQ(T.Name, "Tree");
  EXPECT_TRUE(T.SuperName.empty());
  ASSERT_EQ(T.Fields.size(), 3u);
  EXPECT_EQ(T.Fields[0].Name, "left");
  EXPECT_EQ(T.Fields[1].Name, "right");
  EXPECT_EQ(T.Fields[1].Type.Name, "Tree");
  EXPECT_EQ(T.Fields[2].Type.Name, "INTEGER");
  ASSERT_EQ(T.Methods.size(), 2u);
  EXPECT_EQ(T.Methods[0].Pragma.Kind, ProcPragma::Maintained);
  EXPECT_EQ(T.Methods[0].ImplName, "Height");
  EXPECT_EQ(T.Methods[1].Pragma.Kind, ProcPragma::None);
  EXPECT_EQ(T.Methods[1].Params.size(), 1u);
}

TEST(ParserTest, SubtypeWithOverrides) {
  Module M = parseOk(R"(
TYPE Base = OBJECT METHODS m() : INTEGER := MBase; END;
TYPE Sub = Base OBJECT
OVERRIDES
  (*MAINTAINED EAGER*) m := MSub;
END;
)");
  ASSERT_EQ(M.Types.size(), 2u);
  EXPECT_EQ(M.Types[1].SuperName, "Base");
  ASSERT_EQ(M.Types[1].Overrides.size(), 1u);
  EXPECT_EQ(M.Types[1].Overrides[0].Pragma.Kind, ProcPragma::Maintained);
  EXPECT_EQ(M.Types[1].Overrides[0].Pragma.Strategy, EvalStrategy::Eager);
}

TEST(ParserTest, GlobalsWithInitializers) {
  Module M = parseOk("VAR a, b : INTEGER; c : INTEGER := 5;\n");
  ASSERT_EQ(M.Globals.size(), 3u);
  EXPECT_EQ(M.Globals[0].Name, "a");
  EXPECT_EQ(M.Globals[2].Name, "c");
  EXPECT_NE(M.Globals[2].Init, nullptr);
}

TEST(ParserTest, CachedProcedurePragma) {
  Module M = parseOk(R"(
(*CACHED*) PROCEDURE Fib(n : INTEGER) : INTEGER =
BEGIN
  RETURN n;
END Fib;
)");
  ASSERT_EQ(M.Procs.size(), 1u);
  EXPECT_EQ(M.Procs[0]->Pragma.Kind, ProcPragma::Cached);
  EXPECT_EQ(M.Procs[0]->Params.size(), 1u);
}

TEST(ParserTest, StatementForms) {
  Module M = parseOk(R"(
PROCEDURE P(n : INTEGER) : INTEGER =
VAR s, i : INTEGER;
BEGIN
  s := 0;
  FOR i := 1 TO n DO
    s := s + i;
  END;
  WHILE s > 100 DO
    s := s - 100;
  END;
  IF s = 0 THEN
    RETURN 1;
  ELSIF s < 10 THEN
    RETURN 2;
  ELSE
    RETURN s;
  END;
END P;
)");
  ASSERT_EQ(M.Procs.size(), 1u);
  const ProcDecl &P = *M.Procs[0];
  ASSERT_EQ(P.Body.size(), 4u);
  EXPECT_EQ(P.Body[0]->Kind, StmtKind::Assign);
  EXPECT_EQ(P.Body[1]->Kind, StmtKind::For);
  EXPECT_EQ(P.Body[2]->Kind, StmtKind::While);
  EXPECT_EQ(P.Body[3]->Kind, StmtKind::If);
  const auto &If = static_cast<const IfStmt &>(*P.Body[3]);
  EXPECT_EQ(If.Arms.size(), 2u);
  EXPECT_EQ(If.ElseBody.size(), 1u);
}

TEST(ParserTest, MethodCallsAndFieldChains) {
  Module M = parseOk(R"(
PROCEDURE P(t : T) : INTEGER =
BEGIN
  RETURN max(t.left.height(), t.right.height()) + 1;
END P;
)");
  const auto &Ret = static_cast<const ReturnStmt &>(*M.Procs[0]->Body[0]);
  const auto &Add = static_cast<const BinaryExpr &>(*Ret.Value);
  EXPECT_EQ(Add.Op, BinaryOp::Add);
  const auto &Max = static_cast<const CallExpr &>(*Add.Lhs);
  EXPECT_EQ(Max.Callee, "max");
  ASSERT_EQ(Max.Args.size(), 2u);
  EXPECT_EQ(Max.Args[0]->Kind, ExprKind::MethodCall);
  const auto &MC = static_cast<const MethodCallExpr &>(*Max.Args[0]);
  EXPECT_EQ(MC.Method, "height");
  EXPECT_EQ(MC.Base->Kind, ExprKind::FieldAccess);
}

TEST(ParserTest, UncheckedExpression) {
  Module M = parseOk(R"(
PROCEDURE P() : INTEGER =
BEGIN
  RETURN (*UNCHECKED*) 1 + 2;
END P;
)");
  const auto &Ret = static_cast<const ReturnStmt &>(*M.Procs[0]->Body[0]);
  // (*UNCHECKED*) binds like a unary operator: (unchecked 1) + 2.
  const auto &Add = static_cast<const BinaryExpr &>(*Ret.Value);
  EXPECT_EQ(Add.Lhs->Kind, ExprKind::Unchecked);
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  Module M = parseOk(R"(
PROCEDURE P() : BOOLEAN =
BEGIN
  RETURN 1 + 2 * 3 < 10 AND TRUE OR FALSE;
END P;
)");
  const auto &Ret = static_cast<const ReturnStmt &>(*M.Procs[0]->Body[0]);
  const auto &Or = static_cast<const BinaryExpr &>(*Ret.Value);
  EXPECT_EQ(Or.Op, BinaryOp::Or);
  const auto &And = static_cast<const BinaryExpr &>(*Or.Lhs);
  EXPECT_EQ(And.Op, BinaryOp::And);
  const auto &Lt = static_cast<const BinaryExpr &>(*And.Lhs);
  EXPECT_EQ(Lt.Op, BinaryOp::Lt);
}

TEST(ParserTest, NewExpression) {
  Module M = parseOk(R"(
PROCEDURE P() : T =
BEGIN
  RETURN NEW(T);
END P;
)");
  const auto &Ret = static_cast<const ReturnStmt &>(*M.Procs[0]->Body[0]);
  EXPECT_EQ(Ret.Value->Kind, ExprKind::New);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  parseBad("VAR a : INTEGER\nPROCEDURE P() = BEGIN END P;");
}

TEST(ParserTest, ErrorBadAssignTarget) {
  parseBad("PROCEDURE P() = BEGIN 1 + 2 := 3; END P;");
}

TEST(ParserTest, ErrorUnknownPragma) {
  DiagnosticEngine Diags;
  Lexer L("(*MAINTAINED SOMETIMES*) PROCEDURE P() = BEGIN END P;", Diags);
  Parser Par(L.run(), Diags);
  Par.run();
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ErrorDanglingPragma) {
  parseBad("(*CACHED*) VAR a : INTEGER;");
}

TEST(ParserTest, WarnsOnMismatchedEndName) {
  DiagnosticEngine Diags;
  parseModule("PROCEDURE P() = BEGIN END Q;", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Kind, DiagKind::Warning);
}

TEST(ParserTest, RecoversAndReportsMultipleErrors) {
  DiagnosticEngine Diags;
  parseModule(R"(
TYPE = OBJECT END;
PROCEDURE P() = BEGIN RETURN; END P;
TYPE Q = OBJECT
)",
              Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

} // namespace
} // namespace alphonse::lang
