//===- LexerTest.cpp - Alphonse-L lexer tests -----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

namespace alphonse::lang {
namespace {

static std::vector<Token> lex(const std::string &Src,
                              DiagnosticEngine *DiagsOut = nullptr) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Tokens = L.run();
  if (DiagsOut)
    *DiagsOut = Diags;
  else
    EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::End));
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Tokens = lex("TYPE Tree OBJECT height Height END");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwType));
  EXPECT_TRUE(Tokens[1].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[1].Text, "Tree");
  EXPECT_TRUE(Tokens[2].is(TokenKind::KwObject));
  EXPECT_TRUE(Tokens[3].is(TokenKind::Identifier)); // lowercase 'height'
  EXPECT_TRUE(Tokens[5].is(TokenKind::KwEnd));
}

TEST(LexerTest, NumbersAndOperators) {
  auto Tokens = lex("x := 42 + 7 * 3 DIV 2 MOD 5;");
  EXPECT_TRUE(Tokens[1].is(TokenKind::Assign));
  EXPECT_TRUE(Tokens[2].is(TokenKind::IntLiteral));
  EXPECT_EQ(Tokens[2].IntValue, 42);
  EXPECT_TRUE(Tokens[3].is(TokenKind::Plus));
  EXPECT_TRUE(Tokens[5].is(TokenKind::Star));
  EXPECT_TRUE(Tokens[7].is(TokenKind::KwDiv));
  EXPECT_TRUE(Tokens[9].is(TokenKind::KwMod));
}

TEST(LexerTest, ComparisonOperators) {
  auto Tokens = lex("= # < <= > >= :=");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Equal));
  EXPECT_TRUE(Tokens[1].is(TokenKind::NotEqual));
  EXPECT_TRUE(Tokens[2].is(TokenKind::Less));
  EXPECT_TRUE(Tokens[3].is(TokenKind::LessEq));
  EXPECT_TRUE(Tokens[4].is(TokenKind::Greater));
  EXPECT_TRUE(Tokens[5].is(TokenKind::GreaterEq));
  EXPECT_TRUE(Tokens[6].is(TokenKind::Assign));
}

TEST(LexerTest, TextLiterals) {
  auto Tokens = lex("\"hello world\" & \"!\"");
  EXPECT_TRUE(Tokens[0].is(TokenKind::TextLiteral));
  EXPECT_EQ(Tokens[0].Text, "hello world");
  EXPECT_TRUE(Tokens[1].is(TokenKind::Ampersand));
  EXPECT_EQ(Tokens[2].Text, "!");
}

TEST(LexerTest, UnterminatedTextIsAnError) {
  DiagnosticEngine Diags;
  lex("\"oops", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PragmasBecomeTokens) {
  auto Tokens = lex("(*MAINTAINED*) height (*CACHED EAGER*) (*UNCHECKED*)");
  ASSERT_GE(Tokens.size(), 4u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Pragma));
  EXPECT_EQ(Tokens[0].Text, "MAINTAINED");
  EXPECT_TRUE(Tokens[2].is(TokenKind::Pragma));
  EXPECT_EQ(Tokens[2].Text, "CACHED EAGER");
  EXPECT_TRUE(Tokens[3].is(TokenKind::Pragma));
  EXPECT_EQ(Tokens[3].Text, "UNCHECKED");
}

TEST(LexerTest, OrdinaryCommentsAreSkipped) {
  auto Tokens = lex("a (* just a note *) b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, NestedCommentsAreSkipped) {
  auto Tokens = lex("a (* outer (* inner *) still outer *) b");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST(LexerTest, UnterminatedCommentIsAnError) {
  DiagnosticEngine Diags;
  lex("a (* never closed", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Tokens = lex("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LexerTest, UnexpectedCharacterIsAnError) {
  DiagnosticEngine Diags;
  lex("a @ b", &Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
} // namespace alphonse::lang
