//===- CompileTestHelper.h - Shared test utilities --------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test helper running the full Alphonse-L pipeline (lex, parse, analyze,
/// transform) and owning all of its artifacts, plus the canonical test
/// programs: the paper's Algorithm 1 (maintained-height tree) and
/// Algorithm 11 (self-balancing AVL tree) written in Alphonse-L.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TESTS_COMPILETESTHELPER_H
#define ALPHONSE_TESTS_COMPILETESTHELPER_H

#include "lang/Parser.h"
#include "lang/Sema.h"
#include "transform/Transform.h"

#include <memory>
#include <string>

namespace alphonse::testing {

/// Owns one compiled module and everything that points into it.
struct Compiled {
  lang::Module M;
  lang::SemaInfo Info;
  DiagnosticEngine Diags;
  transform::TransformStats TStats;

  bool ok() const { return !Diags.hasErrors(); }
};

/// Lex + parse + analyze (+ transform) one source buffer.
inline std::unique_ptr<Compiled>
compile(const std::string &Source, bool DoTransform = true,
        transform::TransformOptions Opts = transform::TransformOptions()) {
  auto C = std::make_unique<Compiled>();
  C->M = lang::parseModule(Source, C->Diags);
  if (C->Diags.hasErrors())
    return C;
  C->Info = lang::analyze(C->M, C->Diags);
  if (C->Diags.hasErrors())
    return C;
  if (DoTransform)
    C->TStats = transform::transform(C->M, C->Info, Opts);
  return C;
}

/// The paper's Algorithm 1: a binary tree with a maintained height method,
/// plus driver procedures for building and growing chains.
inline const char *heightTreeProgram() {
  return R"(
TYPE Tree = OBJECT
  left, right : Tree;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
END;

TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
END;

VAR
  nil : Tree;
  root : Tree;

PROCEDURE Height(t : Tree) : INTEGER =
BEGIN
  RETURN max(t.left.height(), t.right.height()) + 1;
END Height;

PROCEDURE HeightNil(t : Tree) : INTEGER =
BEGIN
  RETURN 0;
END HeightNil;

PROCEDURE MakeNode() : Tree =
VAR t : Tree;
BEGIN
  t := NEW(Tree);
  t.left := nil;
  t.right := nil;
  RETURN t;
END MakeNode;

PROCEDURE BuildChain(n : INTEGER) : Tree =
VAR t, p : Tree; i : INTEGER;
BEGIN
  nil := NEW(TreeNil);
  t := nil;
  FOR i := 1 TO n DO
    p := MakeNode();
    p.left := t;
    t := p;
  END;
  root := t;
  RETURN t;
END BuildChain;

PROCEDURE GrowLeft(n : INTEGER) =
VAR t, p : Tree; i : INTEGER;
BEGIN
  t := root;
  WHILE t.left # nil DO
    t := t.left;
  END;
  FOR i := 1 TO n DO
    p := MakeNode();
    t.left := p;
    t := p;
  END;
END GrowLeft;

PROCEDURE RootHeight() : INTEGER =
BEGIN
  RETURN root.height();
END RootHeight;
)";
}

/// The paper's Algorithm 11: AVL trees whose balancing is a maintained
/// method; insert/contains are plain unbalanced-BST mutator code.
inline const char *avlProgram() {
  return R"(
TYPE Tree = OBJECT
  left, right : Tree;
  key : INTEGER;
METHODS
  (*MAINTAINED*) height() : INTEGER := Height;
  (*MAINTAINED*) balance() : Tree := Balance;
END;

TYPE TreeNil = Tree OBJECT
OVERRIDES
  (*MAINTAINED*) height := HeightNil;
  (*MAINTAINED*) balance := BalanceNil;
END;

VAR
  nil : Tree;
  root : Tree;

PROCEDURE Height(t : Tree) : INTEGER =
BEGIN
  RETURN max(t.left.height(), t.right.height()) + 1;
END Height;

PROCEDURE HeightNil(t : Tree) : INTEGER =
BEGIN
  RETURN 0;
END HeightNil;

PROCEDURE Diff(t : Tree) : INTEGER =
BEGIN
  RETURN t.left.height() - t.right.height();
END Diff;

PROCEDURE RotateRight(t : Tree) : Tree =
VAR s, b : Tree;
BEGIN
  s := t.left;
  b := s.right;
  s.right := t;
  t.left := b;
  RETURN s;
END RotateRight;

PROCEDURE RotateLeft(t : Tree) : Tree =
VAR s, b : Tree;
BEGIN
  s := t.right;
  b := s.left;
  s.left := t;
  t.right := b;
  RETURN s;
END RotateLeft;

PROCEDURE Balance(t : Tree) : Tree =
VAR u : Tree;
BEGIN
  t.left := t.left.balance();
  t.right := t.right.balance();
  u := t;
  IF Diff(u) > 1 THEN
    IF Diff(u.left) < 0 THEN
      u.left := RotateLeft(u.left);
    END;
    u := RotateRight(u);
    RETURN u.balance();
  ELSIF Diff(u) < -1 THEN
    IF Diff(u.right) > 0 THEN
      u.right := RotateRight(u.right);
    END;
    u := RotateLeft(u);
    RETURN u.balance();
  END;
  RETURN u;
END Balance;

PROCEDURE BalanceNil(t : Tree) : Tree =
BEGIN
  RETURN t;
END BalanceNil;

PROCEDURE InitTree() =
BEGIN
  nil := NEW(TreeNil);
  root := nil;
END InitTree;

PROCEDURE Insert(k : INTEGER) =
VAR t, p : Tree;
BEGIN
  p := NEW(Tree);
  p.key := k;
  p.left := nil;
  p.right := nil;
  IF root = nil THEN
    root := p;
    RETURN;
  END;
  t := root;
  WHILE TRUE DO
    IF k = t.key THEN
      RETURN;
    END;
    IF k < t.key THEN
      IF t.left = nil THEN
        t.left := p;
        RETURN;
      END;
      t := t.left;
    ELSE
      IF t.right = nil THEN
        t.right := p;
        RETURN;
      END;
      t := t.right;
    END;
  END;
END Insert;

PROCEDURE Rebalance() =
BEGIN
  root := root.balance();
END Rebalance;

PROCEDURE Contains(k : INTEGER) : BOOLEAN =
VAR t : Tree;
BEGIN
  root := root.balance();
  t := root;
  WHILE t # nil DO
    IF k = t.key THEN
      RETURN TRUE;
    END;
    IF k < t.key THEN
      t := t.left;
    ELSE
      t := t.right;
    END;
  END;
  RETURN FALSE;
END Contains;

PROCEDURE CheckBalanced(t : Tree) : BOOLEAN =
BEGIN
  IF t = nil THEN
    RETURN TRUE;
  END;
  IF Diff(t) > 1 OR Diff(t) < -1 THEN
    RETURN FALSE;
  END;
  RETURN CheckBalanced(t.left) AND CheckBalanced(t.right);
END CheckBalanced;

PROCEDURE IsBalanced() : BOOLEAN =
BEGIN
  RETURN CheckBalanced(root);
END IsBalanced;

PROCEDURE TreeHeight() : INTEGER =
BEGIN
  RETURN root.height();
END TreeHeight;
)";
}

} // namespace alphonse::testing

#endif // ALPHONSE_TESTS_COMPILETESTHELPER_H
