//===- SemaTest.cpp - Alphonse-L semantic analysis tests ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/CompileTestHelper.h"

#include <gtest/gtest.h>

namespace alphonse::lang {
namespace {

using testing::compile;

static void semaOk(const std::string &Src) {
  auto C = compile(Src, /*DoTransform=*/false);
  EXPECT_FALSE(C->Diags.hasErrors()) << C->Diags.str();
}

static void semaBad(const std::string &Src, const std::string &Needle = "") {
  auto C = compile(Src, /*DoTransform=*/false);
  EXPECT_TRUE(C->Diags.hasErrors()) << "expected a sema error for: " << Src;
  if (!Needle.empty()) {
    EXPECT_NE(C->Diags.str().find(Needle), std::string::npos)
        << C->Diags.str();
  }
}

TEST(SemaTest, PaperProgramsAnalyzeCleanly) {
  semaOk(testing::heightTreeProgram());
  semaOk(testing::avlProgram());
}

TEST(SemaTest, FieldLayoutIncludesInheritedFields) {
  auto C = compile(R"(
TYPE Base = OBJECT a : INTEGER; END;
TYPE Sub = Base OBJECT b : INTEGER; END;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const ObjectTypeInfo *Sub = C->Info.lookupType("Sub");
  ASSERT_NE(Sub, nullptr);
  ASSERT_EQ(Sub->Fields.size(), 2u);
  EXPECT_EQ(Sub->Fields[0].Name, "a");
  EXPECT_EQ(Sub->Fields[0].Index, 0);
  EXPECT_EQ(Sub->Fields[1].Name, "b");
  EXPECT_EQ(Sub->Fields[1].Index, 1);
  EXPECT_TRUE(Sub->derivesFrom(C->Info.lookupType("Base")));
}

TEST(SemaTest, VTableSlotsAndOverrides) {
  auto C = compile(R"(
TYPE Base = OBJECT
METHODS
  m() : INTEGER := MBase;
END;
TYPE Sub = Base OBJECT
OVERRIDES
  m := MSub;
END;
PROCEDURE MBase(o : Base) : INTEGER = BEGIN RETURN 1; END MBase;
PROCEDURE MSub(o : Base) : INTEGER = BEGIN RETURN 2; END MSub;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const ObjectTypeInfo *Base = C->Info.lookupType("Base");
  const ObjectTypeInfo *Sub = C->Info.lookupType("Sub");
  ASSERT_EQ(Base->VTable.size(), 1u);
  ASSERT_EQ(Sub->VTable.size(), 1u);
  EXPECT_EQ(Base->VTable[0].Impl->Name, "MBase");
  EXPECT_EQ(Sub->VTable[0].Impl->Name, "MSub");
  EXPECT_EQ(Base->VTable[0].Sig, Sub->VTable[0].Sig); // Shared signature.
}

TEST(SemaTest, NameResolutionKinds) {
  auto C = compile(R"(
VAR g : INTEGER;
PROCEDURE P(p : INTEGER) : INTEGER =
VAR l : INTEGER;
BEGIN
  l := p + g;
  RETURN l;
END P;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const ProcDecl *P = C->M.findProc("P");
  const auto &Assign = static_cast<const AssignStmt &>(*P->Body[0]);
  const auto &Sum = static_cast<const BinaryExpr &>(*Assign.Value);
  const auto &PRef = static_cast<const NameRefExpr &>(*Sum.Lhs);
  const auto &GRef = static_cast<const NameRefExpr &>(*Sum.Rhs);
  EXPECT_EQ(PRef.Binding, NameBinding::Param);
  EXPECT_EQ(PRef.Index, 0);
  EXPECT_EQ(GRef.Binding, NameBinding::Global);
  const auto &LRef = static_cast<const NameRefExpr &>(*Assign.Target);
  EXPECT_EQ(LRef.Binding, NameBinding::Local);
  EXPECT_EQ(LRef.Index, 1);
  const ProcInfo *PI = C->Info.procInfo(P);
  ASSERT_NE(PI, nullptr);
  EXPECT_EQ(PI->FrameSize, 2);
}

TEST(SemaTest, ForVariableGetsItsOwnSlot) {
  auto C = compile(R"(
PROCEDURE P() : INTEGER =
VAR s : INTEGER;
BEGIN
  FOR i := 1 TO 3 DO
    s := s + i;
  END;
  RETURN s;
END P;
)",
                   false);
  ASSERT_TRUE(C->ok()) << C->Diags.str();
  const ProcInfo *PI = C->Info.procInfo(C->M.findProc("P"));
  EXPECT_EQ(PI->FrameSize, 2); // s + i.
}

TEST(SemaTest, ErrorUnknownVariable) {
  semaBad("PROCEDURE P() = BEGIN x := 1; END P;", "unknown variable");
}

TEST(SemaTest, ErrorUnknownType) {
  semaBad("VAR a : Banana;", "unknown type");
}

TEST(SemaTest, ErrorDuplicateField) {
  semaBad("TYPE T = OBJECT a : INTEGER; a : INTEGER; END;",
          "duplicate field");
}

TEST(SemaTest, ErrorInheritedFieldClash) {
  semaBad(R"(
TYPE Base = OBJECT a : INTEGER; END;
TYPE Sub = Base OBJECT a : INTEGER; END;
)",
          "duplicate field");
}

TEST(SemaTest, ErrorOverrideOfUnknownMethod) {
  semaBad(R"(
TYPE T = OBJECT OVERRIDES nope := P; END;
PROCEDURE P(o : T) : INTEGER = BEGIN RETURN 1; END P;
)",
          "override of unknown method");
}

TEST(SemaTest, ErrorMethodImplArity) {
  semaBad(R"(
TYPE T = OBJECT METHODS m(x : INTEGER) : INTEGER := P; END;
PROCEDURE P(o : T) : INTEGER = BEGIN RETURN 1; END P;
)",
          "receiver plus");
}

TEST(SemaTest, ErrorMethodImplReceiverType) {
  semaBad(R"(
TYPE A = OBJECT END;
TYPE T = OBJECT METHODS m() : INTEGER := P; END;
PROCEDURE P(o : A) : INTEGER = BEGIN RETURN 1; END P;
)",
          "receiver parameter");
}

TEST(SemaTest, ErrorMethodImplReturnType) {
  semaBad(R"(
TYPE T = OBJECT METHODS m() : INTEGER := P; END;
PROCEDURE P(o : T) : BOOLEAN = BEGIN RETURN TRUE; END P;
)",
          "return type");
}

TEST(SemaTest, ErrorMaintainedMethodMustReturn) {
  semaBad(R"(
TYPE T = OBJECT METHODS (*MAINTAINED*) m() := P; END;
PROCEDURE P(o : T) = BEGIN END P;
)",
          "must return a value");
}

TEST(SemaTest, ErrorCachedProcedureMustReturn) {
  semaBad("(*CACHED*) PROCEDURE P() = BEGIN END P;", "must return a value");
}

TEST(SemaTest, ErrorMaintainedOnPlainProcedure) {
  semaBad("(*MAINTAINED*) PROCEDURE P() : INTEGER = BEGIN RETURN 1; END P;",
          "belongs on method bindings");
}

TEST(SemaTest, ErrorAssignTypeMismatch) {
  semaBad(R"(
VAR a : INTEGER;
PROCEDURE P() = BEGIN a := TRUE; END P;
)",
          "cannot assign");
}

TEST(SemaTest, ErrorConditionMustBeBoolean) {
  semaBad("PROCEDURE P() = BEGIN IF 1 THEN END; END P;", "must be BOOLEAN");
}

TEST(SemaTest, ErrorArithmeticOnBooleans) {
  semaBad("PROCEDURE P() : INTEGER = BEGIN RETURN TRUE + 1; END P;");
}

TEST(SemaTest, ErrorCompareObjectWithInteger) {
  semaBad(R"(
TYPE T = OBJECT END;
PROCEDURE P(t : T) : BOOLEAN = BEGIN RETURN t = 1; END P;
)",
          "cannot compare");
}

TEST(SemaTest, NilComparesWithObjects) {
  semaOk(R"(
TYPE T = OBJECT END;
PROCEDURE P(t : T) : BOOLEAN = BEGIN RETURN t = NIL; END P;
)");
}

TEST(SemaTest, SubtypeAssignsToSupertypeSlot) {
  semaOk(R"(
TYPE Base = OBJECT END;
TYPE Sub = Base OBJECT END;
VAR b : Base;
PROCEDURE P() = BEGIN b := NEW(Sub); END P;
)");
}

TEST(SemaTest, ErrorSupertypeIntoSubtypeSlot) {
  semaBad(R"(
TYPE Base = OBJECT END;
TYPE Sub = Base OBJECT END;
VAR s : Sub;
PROCEDURE P() = BEGIN s := NEW(Base); END P;
)",
          "cannot assign");
}

TEST(SemaTest, ErrorCallArity) {
  semaBad(R"(
PROCEDURE Q(a : INTEGER) : INTEGER = BEGIN RETURN a; END Q;
PROCEDURE P() : INTEGER = BEGIN RETURN Q(1, 2); END P;
)",
          "takes 1 arguments");
}

TEST(SemaTest, ErrorReturnFromVoidProcedure) {
  semaBad("PROCEDURE P() = BEGIN RETURN 5; END P;",
          "does not return a value");
}

TEST(SemaTest, ErrorInheritanceCycle) {
  semaBad(R"(
TYPE A = B OBJECT END;
TYPE B = A OBJECT END;
)",
          "inheritance cycle");
}

TEST(SemaTest, ErrorUnknownMethodCall) {
  semaBad(R"(
TYPE T = OBJECT END;
PROCEDURE P(t : T) : INTEGER = BEGIN RETURN t.nope(); END P;
)",
          "no method");
}

TEST(SemaTest, TextConcatenationChecks) {
  semaOk(R"(
PROCEDURE P() : TEXT = BEGIN RETURN "a" & fmt(1) & "b"; END P;
)");
  semaBad("PROCEDURE P() : TEXT = BEGIN RETURN \"a\" & 1; END P;");
}

} // namespace
} // namespace alphonse::lang
