//===- SessionServiceTest.cpp - Multi-session service tests ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the session service (DESIGN.md "Session service"). The
/// load-bearing one is the randomized isolation sweep: N sessions with
/// session-salted spreadsheet formulas mutate concurrently under small
/// budgets with fault injection armed, across worker counts {0, 2, 8},
/// and every session must end exactly at its own per-session model —
/// any cross-session leak (a value, a stat, a call-stack frame) shows up
/// as a wrong salted value or a verify() finding in some session.
///
//===----------------------------------------------------------------------===//

#include "service/LatencyHistogram.h"
#include "service/SessionManager.h"
#include "spreadsheet/Spreadsheet.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace alphonse {
namespace {

using spreadsheet::Spreadsheet;

/// Session-salted 2x2 sheet: (0,0) and (1,0) are literals, (0,1) and
/// (1,1) derive from them with a per-session salt, so a session that ever
/// observed a sibling's cells would land off its own model by a
/// salt-sized margin.
int saltOf(size_t I) { return static_cast<int>(1000 * (I + 1)); }

void buildSheet(Session &S, size_t I) {
  Spreadsheet &Sheet = S.emplaceProgram<Spreadsheet>(S.runtime(), 2, 2);
  Sheet.setLiteral(0, 0, static_cast<int>(I));
  Sheet.setLiteral(1, 0, static_cast<int>(I) + 1);
  ASSERT_TRUE(
      Sheet.setFormula(0, 1, "cell(0,0) * 2 + " + std::to_string(saltOf(I))));
  ASSERT_TRUE(Sheet.setFormula(1, 1, "cell(0,1) + cell(1,0)"));
  // Materialize the maintained cell values (they bind their dependency
  // cones on first call); later literal edits then have real incremental
  // propagation for the service to drain.
  Sheet.value(0, 1);
  Sheet.value(1, 1);
}

/// One randomized service run; returns every session's derived values so
/// callers can compare across worker counts.
std::vector<std::array<int, 2>> runRandomizedScenario(unsigned Workers,
                                                      uint64_t Seed,
                                                      bool WithFaults) {
  ServiceConfig C;
  C.Workers = Workers;
  C.SessionBudget = WaveBudget::steps(64); // Small: waves degrade and resume.
  SessionManager M(C);

  constexpr size_t N = 12;
  std::vector<Session::Id> Ids;
  std::vector<std::array<int, 2>> Model(N);
  for (size_t I = 0; I < N; ++I) {
    Session &S = M.open();
    Ids.push_back(S.id());
    buildSheet(S, I);
    Model[I] = {static_cast<int>(I), static_cast<int>(I) + 1};
    M.markDirty(S);
  }

  FaultInjector Inj;
  std::unique_ptr<FaultInjector::Scope> Active;
  if (WithFaults) {
    Active = std::make_unique<FaultInjector::Scope>(Inj);
    // Every 7th cell recompute throws, three times total: some sessions
    // quarantine mid-run and must be repaired without disturbing others.
    Inj.armThrow("Sheet.value", 7, 3);
  }

  std::mt19937_64 Rng(Seed);
  for (int Round = 0; Round < 24; ++Round) {
    int Edits = 1 + static_cast<int>(Rng() % 6);
    for (int E = 0; E < Edits; ++E) {
      size_t I = Rng() % N;
      int Row = static_cast<int>(Rng() % 2);
      int V = static_cast<int>(Rng() % 100);
      EXPECT_TRUE(M.mutate(Ids[I], [&](Session &S) {
        S.program<Spreadsheet>()->setLiteral(Row, 0, V);
      }));
      Model[I][Row] = V;
    }
    M.drainCycle();
  }

  // Repair and catch up: disarm the injector, return quarantined cells to
  // service, then drain everything unbounded.
  if (WithFaults) {
    Inj.disarm("Sheet.value");
    for (Session::Id Id : Ids) {
      Session *S = M.find(Id);
      if (S->runtime().graph().resetAllQuarantined() > 0)
        M.markDirty(*S);
    }
  }
  M.drainAll();

  std::vector<std::array<int, 2>> Got(N);
  for (size_t I = 0; I < N; ++I) {
    Session *S = M.find(Ids[I]);
    Spreadsheet *Sheet = S->program<Spreadsheet>();
    EXPECT_TRUE(S->runtime().graph().verify().empty())
        << "session " << I << " failed its graph audit";
    EXPECT_FALSE(S->runtime().degraded())
        << "session " << I << " still degraded after drainAll";
    EXPECT_FALSE(S->dirty());
    int V01 = Sheet->value(0, 1);
    int V11 = Sheet->value(1, 1);
    EXPECT_EQ(V01, 2 * Model[I][0] + saltOf(I)) << "session " << I;
    EXPECT_EQ(V11, V01 + Model[I][1]) << "session " << I;
    Got[I] = {V01, V11};
  }
  EXPECT_EQ(M.stats().openSessions(), N);
  EXPECT_GE(M.stats().WavesAdmitted.total(), N);
  return Got;
}

TEST(SessionServiceTest, RandomizedIsolationAcrossWorkerCounts) {
  for (uint64_t Seed : {7ull, 1234ull}) {
    std::vector<std::array<int, 2>> Serial =
        runRandomizedScenario(0, Seed, /*WithFaults=*/false);
    for (unsigned Workers : {2u, 8u}) {
      std::vector<std::array<int, 2>> Par =
          runRandomizedScenario(Workers, Seed, /*WithFaults=*/false);
      EXPECT_EQ(Par, Serial) << "Workers=" << Workers << " Seed=" << Seed;
    }
  }
}

TEST(SessionServiceTest, RandomizedIsolationUnderFaultInjection) {
  for (unsigned Workers : {0u, 4u}) {
    std::vector<std::array<int, 2>> Got =
        runRandomizedScenario(Workers, 99, /*WithFaults=*/true);
    (void)Got; // Per-session assertions live inside the scenario.
  }
}

TEST(SessionServiceTest, SessionLifecycle) {
  SessionManager M;
  Session &A = M.open();
  Session &B = M.open();
  EXPECT_NE(A.id(), B.id());
  EXPECT_EQ(M.openSessions(), 2u);
  EXPECT_EQ(M.find(A.id()), &A);
  EXPECT_EQ(M.find(12345), nullptr);

  // Closing a queued session removes it from the dirty queue too. The
  // id must be captured first: close() destroys the Session object.
  Session::Id Bid = B.id();
  M.markDirty(B);
  EXPECT_EQ(M.queueDepth(), 1u);
  EXPECT_TRUE(M.close(Bid));
  EXPECT_EQ(M.queueDepth(), 0u);
  EXPECT_FALSE(M.close(Bid));
  EXPECT_EQ(M.openSessions(), 1u);
  EXPECT_EQ(M.stats().openSessions(), 1u);
}

TEST(SessionServiceTest, DeferPolicyParksThenDrainAllCatchesUp) {
  ServiceConfig C;
  C.Workers = 2;
  C.SessionBudget = WaveBudget::steps(1);
  C.SessionBudget.Policy = OverloadPolicy::Defer;
  SessionManager M(C);

  constexpr size_t N = 3;
  std::vector<Session::Id> Ids;
  for (size_t I = 0; I < N; ++I) {
    Session &S = M.open();
    Ids.push_back(S.id());
    buildSheet(S, I);
  }
  // Edit the root literal of each sheet: (0,0) feeds (0,1) feeds (1,1),
  // several propagation steps against a one-step budget.
  for (size_t I = 0; I < N; ++I)
    M.mutate(Ids[I], [&](Session &S) {
      S.program<Spreadsheet>()->setLiteral(0, 0, 100 + static_cast<int>(I));
    });

  // First cycle: no parked backlog yet, so the waves run — and the
  // one-step budget cancels them. Degraded sessions re-queue.
  EXPECT_EQ(M.drainCycle(), 0u);
  EXPECT_GE(M.stats().WavesDegraded.total(), N);
  EXPECT_EQ(M.queueDepth(), N);

  // Second cycle: every session now starts against its own parked
  // residue, and Defer skips the wave. Deferred sessions are parked
  // dirty, not re-queued (a budgeted cycle can never clear them).
  EXPECT_EQ(M.drainCycle(), 0u);
  EXPECT_GE(M.stats().WavesDeferred.total(), N);
  EXPECT_EQ(M.queueDepth(), 0u);
  for (Session::Id Id : Ids)
    EXPECT_TRUE(M.find(Id)->dirty());

  // Catch-up drains unbounded and clears the degradation.
  EXPECT_EQ(M.drainAll(), N);
  for (size_t I = 0; I < N; ++I) {
    Session *S = M.find(Ids[I]);
    EXPECT_FALSE(S->dirty());
    EXPECT_FALSE(S->runtime().degraded());
    EXPECT_EQ(S->program<Spreadsheet>()->value(0, 1),
              2 * (100 + static_cast<int>(I)) + saltOf(I));
  }
}

TEST(SessionServiceTest, QueueDepthCapSheds) {
  ServiceConfig C;
  C.Workers = 0;
  C.MaxQueueDepth = 2;
  SessionManager M(C);

  constexpr size_t N = 5;
  std::vector<Session::Id> Ids;
  for (size_t I = 0; I < N; ++I) {
    Session &S = M.open();
    Ids.push_back(S.id());
    buildSheet(S, I);
    M.markDirty(S);
  }
  EXPECT_EQ(M.queueDepth(), 2u);
  EXPECT_EQ(M.stats().WavesShed.total(), N - 2);
  EXPECT_EQ(M.stats().QueuePeak.total(), 2u);

  // The shed sessions stay dirty; drainAll ignores the cap and catches
  // everyone up.
  EXPECT_EQ(M.drainAll(), N);
  for (size_t I = 0; I < N; ++I) {
    Session *S = M.find(Ids[I]);
    EXPECT_FALSE(S->dirty());
    EXPECT_EQ(S->program<Spreadsheet>()->value(0, 1),
              2 * static_cast<int>(I) + saltOf(I));
  }
}

TEST(SessionServiceTest, TwoManagersCoexist) {
  // Pool-scoped shard ownership: two live services with full-width pools,
  // each draining its own sessions, interleaved.
  ServiceConfig C;
  C.Workers = 4;
  SessionManager M1(C);
  SessionManager M2(C);

  std::vector<Session::Id> Ids1, Ids2;
  for (size_t I = 0; I < 6; ++I) {
    Session &S1 = M1.open();
    Ids1.push_back(S1.id());
    buildSheet(S1, I);
    M1.markDirty(S1);
    Session &S2 = M2.open();
    Ids2.push_back(S2.id());
    buildSheet(S2, I + 100);
    M2.markDirty(S2);
  }
  M1.drainCycle();
  M2.drainCycle();
  for (size_t I = 0; I < 6; ++I) {
    EXPECT_EQ(M1.find(Ids1[I])->program<Spreadsheet>()->value(0, 1),
              2 * static_cast<int>(I) + saltOf(I));
    EXPECT_EQ(M2.find(Ids2[I])->program<Spreadsheet>()->value(0, 1),
              2 * (static_cast<int>(I) + 100) + saltOf(I + 100));
  }
  EXPECT_EQ(M1.stats().WavesAdmitted.total(), 6u);
  EXPECT_EQ(M2.stats().WavesAdmitted.total(), 6u);
}

TEST(SessionServiceTest, ServiceStatsPrintAndLatency) {
  ServiceConfig C;
  C.Workers = 2;
  SessionManager M(C);
  for (size_t I = 0; I < 4; ++I) {
    Session &S = M.open();
    buildSheet(S, I);
    M.markDirty(S);
  }
  EXPECT_EQ(M.drainCycle(), 4u);
  EXPECT_EQ(M.stats().WaveLatency.count(), 4u);
  EXPECT_LE(M.stats().WaveLatency.quantileUs(0.5),
            M.stats().WaveLatency.quantileUs(0.99));

  std::ostringstream OS;
  OS << M.stats();
  EXPECT_NE(OS.str().find("svc.waves_admitted   4"), std::string::npos);
  EXPECT_NE(OS.str().find("svc.wave_p99_us"), std::string::npos);
}

TEST(LatencyHistogramTest, QuantilesBoundedByBucketError) {
  LatencyHistogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 1000u);
  EXPECT_EQ(H.maxUs(), 1000u);
  // Log-linear buckets: quantiles are bucket upper bounds, within ~6.25%
  // above the exact rank value.
  uint64_t P50 = H.quantileUs(0.50);
  uint64_t P99 = H.quantileUs(0.99);
  uint64_t P999 = H.quantileUs(0.999);
  EXPECT_GE(P50, 500u);
  EXPECT_LE(P50, 532u);
  EXPECT_GE(P99, 990u);
  EXPECT_LE(P99, 1055u);
  EXPECT_GE(P999, P99);
  EXPECT_LE(H.quantileUs(1.0), 1088u);
  // Tiny values get exact unit buckets.
  LatencyHistogram Small;
  Small.record(3);
  EXPECT_EQ(Small.quantileUs(0.5), 3u);
}

} // namespace
} // namespace alphonse
