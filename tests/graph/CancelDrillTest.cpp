//===- CancelDrillTest.cpp - Cancel-at-every-step drills ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive cooperative-cancellation drills: build a seeded random DAG,
/// mutate it, then cancel the repair wave after every possible number of
/// evaluation steps k = 1 .. total-1. At every cut point the graph must
/// audit clean (DepGraph::verify()), every value that diverges from the
/// serial reference fixpoint must be stamped stale, and a follow-up
/// unbudgeted wave must land on exactly the reference fixpoint. Untracked
/// reads go through Maintained::peekCached so observing a half-repaired
/// graph never perturbs it.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alphonse {
namespace {

/// Deterministic 64-bit LCG (MMIX constants) so every Runtime built from
/// the same seed is bit-identical.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
};

/// A seeded random DAG: NumSrcs source cells feeding NumNodes eager
/// maintained nodes, each depending on two earlier nodes (cells or
/// maintained). Values stay below 1000003 so the weighted sums never
/// overflow int.
struct DrillGraph {
  static constexpr int NumSrcs = 4;
  static constexpr int NumNodes = 20;
  static constexpr int Mod = 1000003;

  DrillGraph(Runtime &RT, uint64_t Seed) {
    Lcg Rng(Seed);
    for (int I = 0; I < NumSrcs; ++I)
      Srcs.push_back(std::make_unique<Cell<int>>(
          RT, static_cast<int>(Rng.next() % 100), "src" + std::to_string(I)));
    for (int I = 0; I < NumNodes; ++I) {
      size_t Avail = NumSrcs + Nodes.size();
      size_t A = Rng.next() % Avail;
      size_t B = Rng.next() % Avail;
      int W = static_cast<int>(Rng.next() % 7) + 1;
      Nodes.push_back(std::make_unique<Maintained<int()>>(
          RT,
          [this, A, B, W] {
            return (readDep(A) * W + readDep(B) + 1) % Mod;
          },
          EvalStrategy::Eager, "n" + std::to_string(I)));
      (*Nodes.back())(); // Wire the dependencies now.
    }
  }

  /// Tracked read of dependency \p J (called from inside evaluations).
  int readDep(size_t J) {
    if (J < static_cast<size_t>(NumSrcs))
      return Srcs[J]->get();
    return (*Nodes[J - NumSrcs])();
  }

  /// Deterministic mutation round: every source moves to a value disjoint
  /// from the initial range, so every source genuinely changes.
  void mutate(int Round) {
    for (int I = 0; I < NumSrcs; ++I)
      Srcs[I]->set(1000 + Round * 97 + I * 13);
  }

  /// Untracked snapshot of every maintained node's cached value.
  std::vector<int> snapshot() const {
    std::vector<int> Out;
    for (const auto &N : Nodes) {
      const int *P = N->peekCached();
      EXPECT_NE(P, nullptr) << "every node was wired at build time";
      Out.push_back(P ? *P : 0);
    }
    return Out;
  }

  std::vector<std::unique_ptr<Cell<int>>> Srcs;
  std::vector<std::unique_ptr<Maintained<int()>>> Nodes;
};

/// The serial reference for one (Seed, Round): fixpoint values and the
/// exact number of evaluation steps the ungoverned repair wave takes.
struct Reference {
  std::vector<int> Values;
  uint64_t TotalSteps;
};

Reference computeReference(uint64_t Seed, int Round) {
  Runtime RT;
  DrillGraph G(RT, Seed);
  RT.pumpUnbounded();
  G.mutate(Round);
  uint64_t Before = RT.stats().EvalSteps.total();
  EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
  Reference Ref;
  Ref.TotalSteps = RT.stats().EvalSteps.total() - Before;
  Ref.Values = G.snapshot();
  EXPECT_TRUE(RT.graph().verify().empty());
  return Ref;
}

void runSerialDrill(uint64_t Seed) {
  const int Round = 1;
  Reference Ref = computeReference(Seed, Round);
  ASSERT_GT(Ref.TotalSteps, 1u);

  for (uint64_t K = 1; K < Ref.TotalSteps; ++K) {
    SCOPED_TRACE("seed=" + std::to_string(Seed) + " cancel after " +
                 std::to_string(K) + "/" + std::to_string(Ref.TotalSteps) +
                 " steps");
    Runtime RT;
    DrillGraph G(RT, Seed);
    RT.pumpUnbounded();
    std::vector<int> Quiescent = G.snapshot();
    G.mutate(Round);

    ASSERT_EQ(RT.pump(WaveBudget::steps(K)), WaveOutcome::DegradedSteps);
    // Invariant 1: a cancelled wave leaves no torn state — the audit that
    // checks edge symmetry, level ordering, and pending-set membership
    // passes at every cut point.
    EXPECT_TRUE(RT.graph().verify().empty());
    EXPECT_GT(RT.graph().numPending(), 0u);

    // Invariant 2: any value that has not reached its fixpoint is
    // visibly stale (it may only be the last-quiescent or an
    // intermediate consistent value, never garbage).
    std::vector<int> Cut = G.snapshot();
    for (int J = 0; J < DrillGraph::NumNodes; ++J)
      if (Cut[J] != Ref.Values[J])
        EXPECT_TRUE(G.Nodes[J]->isStale())
            << "node " << J << " diverges from the fixpoint (" << Cut[J]
            << " != " << Ref.Values[J] << ") but is not marked stale";
    (void)Quiescent;

    // Invariant 3: recovery is exact — the follow-up unbudgeted wave
    // reaches precisely the serial reference fixpoint.
    EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
    EXPECT_EQ(RT.graph().numPending(), 0u);
    EXPECT_EQ(RT.graph().governor().staleCount(), 0u);
    EXPECT_TRUE(RT.graph().verify().empty());
    EXPECT_EQ(G.snapshot(), Ref.Values);
  }

  // Above the total the wave completes within budget.
  Runtime RT;
  DrillGraph G(RT, Seed);
  RT.pumpUnbounded();
  G.mutate(Round);
  EXPECT_EQ(RT.pump(WaveBudget::steps(Ref.TotalSteps + 8)),
            WaveOutcome::Completed);
  EXPECT_EQ(G.snapshot(), Ref.Values);
}

TEST(CancelDrillTest, SerialCancelAtEveryStepSeedA) { runSerialDrill(17); }
TEST(CancelDrillTest, SerialCancelAtEveryStepSeedB) { runSerialDrill(9001); }
TEST(CancelDrillTest, SerialCancelAtEveryStepSeedC) { runSerialDrill(424242); }

/// Parallel variant: four independent 10-stage chains across four
/// workers, budgets cutting waves at arbitrary points. Parallel step
/// interleaving is nondeterministic, so the drill asserts invariants
/// (audit-clean, exact recovery) rather than exact cut positions.
TEST(CancelDrillTest, ParallelCancelDrillRecoversExactly) {
  DepGraph::Config Cfg;
  Cfg.Workers = 4;
  Runtime RT(Cfg);

  constexpr int Chains = 4, Stages = 10;
  std::vector<std::unique_ptr<Cell<int>>> Srcs;
  std::vector<std::unique_ptr<Maintained<int()>>> Nodes;
  for (int C = 0; C < Chains; ++C) {
    Srcs.push_back(std::make_unique<Cell<int>>(RT, 0, "p.src"));
    for (int S = 0; S < Stages; ++S) {
      Cell<int> *Src = Srcs.back().get();
      Maintained<int()> *Prev = S == 0 ? nullptr : Nodes.back().get();
      Nodes.push_back(std::make_unique<Maintained<int()>>(
          RT, [Src, Prev] { return (Prev ? (*Prev)() : Src->get()) + 1; },
          EvalStrategy::Eager, "p.n"));
      (*Nodes.back())();
    }
  }
  RT.pumpUnbounded();

  Lcg Rng(7);
  for (int Round = 1; Round <= 12; ++Round) {
    for (int C = 0; C < Chains; ++C)
      Srcs[C]->set(Round * 100 + C);
    uint64_t K = Rng.next() % (Chains * Stages + 4) + 1;
    WaveOutcome O = RT.pump(WaveBudget::steps(K));
    EXPECT_TRUE(O == WaveOutcome::DegradedSteps || O == WaveOutcome::Completed)
        << "round " << Round << " budget " << K;
    EXPECT_TRUE(RT.graph().verify().empty())
        << "cancelled parallel wave left torn state (round " << Round << ")";

    EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
    EXPECT_TRUE(RT.graph().verify().empty());
    EXPECT_EQ(RT.graph().numPending(), 0u);
    EXPECT_FALSE(RT.degraded());
    for (int C = 0; C < Chains; ++C) {
      const int *Tail = Nodes[C * Stages + Stages - 1]->peekCached();
      ASSERT_NE(Tail, nullptr);
      EXPECT_EQ(*Tail, Round * 100 + C + Stages)
          << "chain " << C << " missed its fixpoint after recovery";
    }
  }
}

} // namespace
} // namespace alphonse
