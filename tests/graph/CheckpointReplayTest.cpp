//===- CheckpointReplayTest.cpp - Randomized delta/undo interleaving ------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomized (fixed-seed) interaction of the undo journal with the delta
// log: a live host interleaves committed batches, rolled-back batches,
// plain writes, delta appends, and occasional full snapshots. At every
// point where the disk state advances, a fresh host restored from disk
// must be equivalent to the live host — rolled-back batches must leave no
// trace in what gets persisted, and replay order must not matter.
//
//===----------------------------------------------------------------------===//

#include "CheckpointTestHost.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <random>
#include <string>

using namespace alphonse;
using namespace alphonse::ckpttest;

namespace {

constexpr size_t kCells = 6;
constexpr int kIterations = 40;

class TempPath {
public:
  explicit TempPath(const std::string &Stem) {
    const char *Dir = std::getenv("TMPDIR");
    Path = std::string(Dir ? Dir : "/tmp") + "/" + Stem + "." +
           std::to_string(::getpid()) + ".ckpt";
  }
  ~TempPath() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
    std::remove(deltaLogPath(Path).c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

TEST(CheckpointReplayTest, RandomizedBatchAndDeltaInterleaving) {
  TempPath File("ckpt-replay");
  std::mt19937 Rng(0xC0FFEE); // Fixed seed: failures must reproduce.
  std::uniform_int_distribution<int> CellDist(0, kCells - 1);
  std::uniform_int_distribution<int> ValueDist(-1000, 1000);
  std::uniform_int_distribution<int> OpDist(0, 9);

  CheckpointHost Live(kCells);
  Live.touchAll();
  Live.save(File.path());

  int DiskChecks = 0;
  for (int It = 0; It < kIterations; ++It) {
    switch (OpDist(Rng)) {
    case 0:
    case 1:
    case 2: { // Committed batch of random writes.
      Transaction Txn(Live.RT);
      for (int W = 0; W < 3; ++W)
        *Live.Cells[static_cast<size_t>(CellDist(Rng))] = ValueDist(Rng);
      ASSERT_TRUE(Txn.commit());
      break;
    }
    case 3:
    case 4: { // Rolled-back batch: must leave no trace anywhere.
      Transaction Txn(Live.RT);
      for (int W = 0; W < 3; ++W)
        *Live.Cells[static_cast<size_t>(CellDist(Rng))] = ValueDist(Rng);
      Txn.rollback();
      break;
    }
    case 5:
    case 6: { // Plain writes outside any batch.
      *Live.Cells[static_cast<size_t>(CellDist(Rng))] = ValueDist(Rng);
      Live.RT.pump();
      break;
    }
    case 7:
    case 8: // Delta append: the disk state catches up.
      Live.appendDelta(File.path());
      break;
    default: // Occasional full snapshot resets the delta log.
      Live.save(File.path());
      break;
    }

    // After every op that advanced the disk, a restored host must agree
    // with the live one (the delta log always ends at a quiescent cut).
    if (OpDist(Rng) < 3) {
      Live.appendDelta(File.path());
      CheckpointHost Restored(kCells);
      Restored.restore(File.path());
      ASSERT_TRUE(Restored.RT.graph().verify().empty())
          << "iteration " << It;
      ASSERT_EQ(Live.fingerprint(), Restored.fingerprint())
          << "iteration " << It;
      ++DiskChecks;
    }
  }

  // Final catch-up and end-to-end comparison.
  Live.appendDelta(File.path());
  CheckpointHost Final(kCells);
  Final.restore(File.path());
  EXPECT_TRUE(Final.RT.graph().verify().empty());
  EXPECT_EQ(Live.fingerprint(), Final.fingerprint());
  // The interleaving must actually have exercised mid-run restores.
  EXPECT_GT(DiskChecks, 3);
}

// Rollback immediately followed by a delta append persists the pre-batch
// state, byte for byte.
TEST(CheckpointReplayTest, RollbackNeverReachesTheLog) {
  TempPath File("ckpt-rollback");
  CheckpointHost Live(kCells);
  Live.touchAll();
  *Live.Cells[0] = 17;
  Live.save(File.path());
  std::string Before = Live.fingerprint();

  {
    Transaction Txn(Live.RT);
    *Live.Cells[0] = 999999;
    *Live.Cells[5] = -999999;
    Txn.rollback();
  }
  Live.appendDelta(File.path());

  CheckpointHost Restored(kCells);
  Restored.restore(File.path());
  EXPECT_EQ(Before, Restored.fingerprint());
  EXPECT_EQ(Restored.Cells[0]->peek(), 17);
}

} // namespace
