//===- InconsistentSetTest.cpp - Pending-set unit tests -------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct tests of the InconsistentSet min-heap, focused on mergeFrom —
/// the operation the parallel scheduler leans on when union-find
/// partitions merge mid-wave: the survivor set absorbs the loser's
/// entries and popping must still come out in non-decreasing level order.
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"
#include "graph/InconsistentSet.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace alphonse {
namespace {

struct StubStorage final : DepNode {
  explicit StubStorage(DepGraph &G) : DepNode(G, NodeKind::Storage) {}
  bool refreshStorage() override { return true; }
};

struct StubProc final : DepNode {
  explicit StubProc(DepGraph &G) : DepNode(G, NodeKind::Procedure) {}
  bool reexecute() override { return true; }
};

/// Builds a linear chain rooted at a storage node so the procs get
/// levels 1, 2, ..., Len (level = 1 + max predecessor level).
struct Chain {
  Chain(DepGraph &G, int Len) : Base(std::make_unique<StubStorage>(G)) {
    DepNode *Prev = Base.get();
    for (int I = 0; I < Len; ++I) {
      Procs.push_back(std::make_unique<StubProc>(G));
      DepNode &P = *Procs.back();
      G.beginExecution(P);
      G.addDependency(P, *Prev);
      G.endExecution(P);
      Prev = &P;
    }
  }
  std::unique_ptr<StubStorage> Base;
  std::vector<std::unique_ptr<StubProc>> Procs;
};

/// Pops everything, asserting non-decreasing levels; returns the count.
size_t drainInOrder(DepGraph &G, InconsistentSet &Set) {
  size_t Count = 0;
  uint32_t LastLevel = 0;
  while (!Set.empty()) {
    DepNode &N = Set.pop(G);
    EXPECT_GE(N.level(), LastLevel) << "heap order violated after mergeFrom";
    LastLevel = N.level();
    ++Count;
  }
  return Count;
}

TEST(InconsistentSetTest, MergeFromPreservesPopOrder) {
  Statistics Stats;
  DepGraph G(Stats);
  Chain A(G, 6), B(G, 6);
  G.evaluateAll(); // Settle the construction-time pending work.

  // Interleave pushes across two sets so the merge has to re-establish
  // the heap property over a genuinely mixed level population.
  InconsistentSet Lhs, Rhs;
  Lhs.push(G, *A.Procs[5]); // level 6
  Lhs.push(G, *A.Procs[0]); // level 1
  Lhs.push(G, *B.Base);     // level 0
  Rhs.push(G, *B.Procs[3]); // level 4
  Rhs.push(G, *B.Procs[1]); // level 2
  Rhs.push(G, *A.Procs[2]); // level 3
  Rhs.push(G, *A.Base);     // level 0

  Lhs.mergeFrom(G, Rhs);
  EXPECT_TRUE(Rhs.empty());
  EXPECT_EQ(Lhs.size(), 7u);
  EXPECT_EQ(drainInOrder(G, Lhs), 7u);
}

TEST(InconsistentSetTest, MergeFromSkipsNothingAndKeepsMembershipUnique) {
  Statistics Stats;
  DepGraph G(Stats);
  Chain A(G, 4);
  G.evaluateAll();

  InconsistentSet Lhs, Rhs;
  EXPECT_TRUE(Lhs.push(G, *A.Procs[1]));
  // A node already queued (anywhere) refuses a second push: membership is
  // the node's InQueue flag, global across sets.
  EXPECT_FALSE(Rhs.push(G, *A.Procs[1]));
  EXPECT_TRUE(Rhs.push(G, *A.Procs[3]));
  EXPECT_TRUE(Rhs.push(G, *A.Base));

  Lhs.mergeFrom(G, Rhs);
  EXPECT_EQ(Lhs.size(), 3u);
  EXPECT_EQ(drainInOrder(G, Lhs), 3u);

  // Once popped, the nodes are pushable again (InQueue was cleared).
  EXPECT_TRUE(Lhs.push(G, *A.Procs[1]));
  EXPECT_EQ(&Lhs.pop(G), A.Procs[1].get());
}

TEST(InconsistentSetTest, MergeFromEmptySides) {
  Statistics Stats;
  DepGraph G(Stats);
  Chain A(G, 2);
  G.evaluateAll();

  InconsistentSet Lhs, Rhs;
  Lhs.mergeFrom(G, Rhs); // empty <- empty
  EXPECT_TRUE(Lhs.empty());

  Rhs.push(G, *A.Base);
  Rhs.push(G, *A.Procs[0]);
  Lhs.mergeFrom(G, Rhs); // empty <- populated
  EXPECT_EQ(Lhs.size(), 2u);

  InconsistentSet Rhs2;
  Lhs.mergeFrom(G, Rhs2); // populated <- empty
  EXPECT_EQ(Lhs.size(), 2u);
  EXPECT_EQ(drainInOrder(G, Lhs), 2u);
}

} // namespace
} // namespace alphonse
