//===- ReserveShapeTest.cpp - Static-shape slab reservation tests ---------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the bulk-reservation API behind static graph construction
/// (DESIGN.md §14): GraphStore::reserveShape() at slab-chunk boundaries,
/// generation checking on nodes allocated from reserved slots, the bulk
/// predecessor relink, and the re-publishable / resettable memory gauges
/// the steady-state bench asserts flatness over.
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"
#include "graph/Handle.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace alphonse {
namespace {

struct StubStorage final : DepNode {
  explicit StubStorage(DepGraph &G) : DepNode(G, NodeKind::Storage) {}
  bool refreshStorage() override { return true; }
};

struct StubProc final : DepNode {
  explicit StubProc(DepGraph &G) : DepNode(G, NodeKind::Procedure) {}
  bool reexecute() override { return true; }
};

/// One slab chunk holds 256 slots; reservation sizes straddling that
/// boundary (0, 1, 256, 257) cover the empty, single-chunk-partial,
/// exactly-one-chunk, and chunk-spill geometries.
constexpr size_t ChunkSlots = 256;

TEST(ReserveShapeTest, ChunkEdgeReservations) {
  for (size_t N : {size_t(0), size_t(1), ChunkSlots, ChunkSlots + 1}) {
    SCOPED_TRACE("reserve " + std::to_string(N));
    Statistics Stats;
    DepGraph G(Stats);
    G.reserveShape(N, N);
    EXPECT_EQ(G.nodeSlotsFree(), N);
    EXPECT_EQ(G.edgeSlotsFree(), N);
    EXPECT_EQ(G.numLiveNodes(), 0u);
    EXPECT_EQ(G.numLiveEdges(), 0u);
    EXPECT_EQ(Stats.ShapeNodesReserved.total(), N);
    EXPECT_EQ(Stats.ShapeEdgesReserved.total(), N);
    // reserveShape must publish the gauges immediately, not wait for the
    // next allocation to notice the slabs grew.
    EXPECT_EQ(Stats.GraphNodeBytes.total(), G.nodeSlabBytes());
    EXPECT_EQ(Stats.GraphEdgeBytes.total(), G.edgeSlabBytes());
    EXPECT_TRUE(G.verify().empty());

    // Instantiation into the reserved slots consumes the free list
    // without growing the slabs: that is the zero-allocation guarantee
    // the steady state relies on.
    size_t NodeBytes = G.nodeSlabBytes();
    std::vector<std::unique_ptr<StubStorage>> Nodes;
    for (size_t I = 0; I < N; ++I)
      Nodes.push_back(std::make_unique<StubStorage>(G));
    EXPECT_EQ(G.nodeSlotsFree(), 0u);
    EXPECT_EQ(G.nodeSlabBytes(), NodeBytes);
    EXPECT_EQ(G.numLiveNodes(), N);
    EXPECT_TRUE(G.verify().empty());
  }
}

TEST(ReserveShapeTest, ReservedEdgeSlotsServeLinkage) {
  Statistics Stats;
  DepGraph G(Stats);
  const size_t N = ChunkSlots + 1;
  std::vector<std::unique_ptr<StubStorage>> Sources;
  StubProc Sink(G);
  for (size_t I = 0; I < N; ++I)
    Sources.push_back(std::make_unique<StubStorage>(G));

  G.reserveShape(0, N);
  ASSERT_EQ(G.edgeSlotsFree(), N);
  size_t EdgeBytes = G.edgeSlabBytes();

  G.beginExecution(Sink);
  for (auto &S : Sources)
    G.addDependency(Sink, *S);
  G.endExecution(Sink);
  EXPECT_EQ(Sink.numPredecessors(), N);
  EXPECT_EQ(G.edgeSlotsFree(), 0u);
  EXPECT_EQ(G.edgeSlabBytes(), EdgeBytes);
  // Reserved slots are handed out through the free list, so the reuse
  // counter sees them (the steady-state bench counts on this).
  EXPECT_GE(Stats.EdgeReuse.total(), N);
  G.evaluateAll();
  EXPECT_TRUE(G.verify().empty());
}

TEST(ReserveShapeTest, GenerationChecksOnStaticNodes) {
  Statistics Stats;
  DepGraph G(Stats);
  G.reserveShape(2, 0);

  // A node allocated from a reserved slot carries a live, first-generation
  // handle that resolves like any dynamically grown one.
  auto A = std::make_unique<StubStorage>(G);
  NodeId Old = A->id();
  ASSERT_TRUE(Old);
  EXPECT_EQ(Old.gen(), NodeId::FirstGen);
  EXPECT_TRUE(G.isLiveNode(Old));
  EXPECT_EQ(G.tryNode(Old), A.get());

  // Destruction bumps the generation exactly as for dynamic slots: the
  // old handle goes permanently stale even once the slot is reoccupied.
  A.reset();
  EXPECT_FALSE(G.isLiveNode(Old));
  auto B = std::make_unique<StubStorage>(G);
  EXPECT_EQ(B->id().index(), Old.index());
  EXPECT_NE(B->id().gen(), Old.gen());
  EXPECT_EQ(G.tryNode(Old), nullptr);
  EXPECT_EQ(G.tryNode(B->id()), B.get());
}

TEST(ReserveShapeTest, BulkRelinkMatchesPerEdgeOrder) {
  // relinkPredecessors must reproduce the predecessor-list order the
  // per-edge path builds (push-front linkage, so it walks sources in
  // reverse). Checkpoint restore depends on the orders agreeing.
  Statistics StatsA, StatsB;
  DepGraph A(StatsA), B(StatsB);

  StubProc SinkA(A);
  StubStorage A1(A), A2(A), A3(A);
  A.beginExecution(SinkA);
  A.addDependency(SinkA, A1);
  A.addDependency(SinkA, A2);
  A.addDependency(SinkA, A3);
  A.endExecution(SinkA);

  StubProc SinkB(B);
  StubStorage B1(B), B2(B), B3(B);
  B.relinkPredecessors(SinkB, {&B1, &B2, &B3});

  ASSERT_EQ(SinkA.numPredecessors(), 3u);
  ASSERT_EQ(SinkB.numPredecessors(), 3u);
  EXPECT_EQ(B.numLiveEdges(), 3u);
  A.evaluateAll();
  EXPECT_TRUE(A.verify().empty());
  EXPECT_TRUE(B.verify().empty());
}

TEST(ReserveShapeTest, HighWaterResetsAndGaugesRepublish) {
  Statistics Stats;
  DepGraph G(Stats);
  std::vector<std::unique_ptr<StubStorage>> Nodes;
  for (size_t I = 0; I < 2 * ChunkSlots; ++I)
    Nodes.push_back(std::make_unique<StubStorage>(G));

  // republish keeps the gauges pinned to the tables' actual footprint
  // even when nothing grew since the last publication.
  G.republishMemoryGauges();
  EXPECT_EQ(Stats.GraphNodeBytes.total(), G.nodeSlabBytes());
  EXPECT_EQ(Stats.GraphEdgeBytes.total(), G.edgeSlabBytes());

  // Resetting re-bases the high-water mark at the current footprint; churn
  // that stays inside the existing slabs must then leave it flat (this is
  // the invariant bench_static's steady-state assertion rides on). One
  // warm-up round first: the very first free grows the free-list vector,
  // which counts toward the footprint.
  Nodes.pop_back();
  Nodes.push_back(std::make_unique<StubStorage>(G));
  G.resetHighWater();
  size_t Base = Stats.PoolHighWater.total();
  EXPECT_EQ(Base, G.nodeSlabBytes() + G.edgeSlabBytes());
  for (int Round = 0; Round < 10; ++Round) {
    Nodes.pop_back();
    Nodes.push_back(std::make_unique<StubStorage>(G));
  }
  EXPECT_EQ(Stats.PoolHighWater.total(), Base);

  // Growth past the reservation raises it again.
  for (size_t I = 0; I < 2 * ChunkSlots; ++I)
    Nodes.push_back(std::make_unique<StubStorage>(G));
  EXPECT_GT(Stats.PoolHighWater.total(), Base);
  G.evaluateAll();
}

} // namespace
} // namespace alphonse
