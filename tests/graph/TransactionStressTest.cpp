//===- TransactionStressTest.cpp - Randomized batch/rollback stress -------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized stress test for transactional batches: random interleavings
/// of tree mutations, mid-batch demands, injected faults, rollbacks and
/// commits on a HeightTree, checked against the hand-maintained
/// ManualHeightTree oracle after every quiescent point. Only committed
/// batches are mirrored into the oracle; rolled-back batches must leave
/// the incremental tree indistinguishable from never having run.
///
/// The seed is fixed: a failure reproduces deterministically.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/FaultInjector.h"
#include "trees/HeightTree.h"
#include "trees/ManualHeightTree.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace alphonse {
namespace {

using trees::HeightTree;
using trees::ManualHeightTree;

/// One edit: parent index, which child slot, new child index (-1 = nil).
struct Edit {
  int Parent;
  bool LeftSlot;
  int Child;
};

/// The forest's shape as the test tracks it: per node, the child indices
/// (-1 = nil) and whether the node currently has a parent. Acyclicity is
/// guaranteed structurally — a node only ever links to higher-index
/// children — and each node has at most one parent.
struct Shape {
  std::vector<int> L, R;
  std::vector<char> HasParent;

  explicit Shape(int N) : L(N, -1), R(N, -1), HasParent(N, 0) {}

  int &slot(const Edit &E) { return E.LeftSlot ? L[E.Parent] : R[E.Parent]; }

  void apply(const Edit &E) {
    int &S = slot(E);
    if (S >= 0)
      HasParent[S] = 0;
    S = E.Child;
    if (E.Child >= 0)
      HasParent[E.Child] = 1;
  }
};

class Fixture {
public:
  static constexpr int NumNodes = 24;

  Fixture() : Tree(RT), Current(NumNodes) {
    for (int I = 0; I < NumNodes; ++I) {
      Inc.push_back(Tree.makeNode());
      Man.push_back(Manual.makeNode());
    }
  }

  /// Picks a random legal edit: parent P, slot, and a child with a higher
  /// index that is not already linked elsewhere — or a clear (-1).
  Edit randomEdit(std::mt19937 &Rng) {
    std::uniform_int_distribution<int> PickParent(0, NumNodes - 2);
    Edit E;
    E.Parent = PickParent(Rng);
    E.LeftSlot = (Rng() & 1) != 0;
    std::vector<int> Candidates{-1}; // Clearing the slot is always legal.
    for (int C = E.Parent + 1; C < NumNodes; ++C)
      if (!Current.HasParent[C])
        Candidates.push_back(C);
    int Occupant = E.LeftSlot ? Current.L[E.Parent] : Current.R[E.Parent];
    if (Occupant >= 0)
      Candidates.push_back(Occupant); // Re-linking in place: a no-op write.
    E.Child = Candidates[Rng() % Candidates.size()];
    return E;
  }

  void applyIncremental(const Edit &E) {
    HeightTree::Node *Child = E.Child < 0 ? Tree.nil() : Inc[E.Child];
    if (E.LeftSlot)
      Tree.setLeft(Inc[E.Parent], Child);
    else
      Tree.setRight(Inc[E.Parent], Child);
  }

  void applyManual(const Edit &E) {
    ManualHeightTree::Node *Child = E.Child < 0 ? nullptr : Man[E.Child];
    if (E.LeftSlot)
      Manual.setLeft(Man[E.Parent], Child);
    else
      Manual.setRight(Man[E.Parent], Child);
  }

  /// Full oracle comparison at a quiescent point: every node's maintained
  /// height equals both the hand-maintained field and the exhaustive
  /// recursion, and the graph audits clean.
  void checkAll() {
    for (int I = 0; I < NumNodes; ++I) {
      int Incremental = Tree.height(Inc[I]);
      ASSERT_EQ(Incremental, ManualHeightTree::height(Man[I]))
          << "node " << I << " disagrees with the manual oracle";
      ASSERT_EQ(Incremental,
                HeightTree::exhaustiveHeight(Inc[I], Tree.nil()))
          << "node " << I << " disagrees with the exhaustive recursion";
    }
    std::vector<std::string> Audit = RT.graph().verify();
    ASSERT_TRUE(Audit.empty()) << Audit.front();
    ASSERT_EQ(RT.graph().numQuarantined(), 0u);
  }

  Runtime RT;
  HeightTree Tree;
  ManualHeightTree Manual;
  std::vector<HeightTree::Node *> Inc;
  std::vector<ManualHeightTree::Node *> Man;
  Shape Current;
};

TEST(TransactionStressTest, RandomBatchesAgainstManualOracle) {
  Fixture F;
  std::mt19937 Rng(0xA1F0A15E); // Fixed seed: deterministic replay.

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);

  constexpr int NumBatches = 120;
  int Committed = 0, RolledBack = 0, Faulted = 0;

  for (int Batch = 0; Batch < NumBatches; ++Batch) {
    uint64_t Epoch0 = F.RT.epoch();
    Shape Before = F.Current; // Snapshot for rollback restoration.
    std::vector<Edit> Edits;

    // A quarter of the batches get a fault armed somewhere in the height
    // recomputes their demands will trigger.
    bool Armed = (Rng() % 4) == 0;
    if (Armed)
      Inj.armThrow("Tree.height", /*AtNthHit=*/1 + Rng() % 4);

    bool Doomed = false;
    {
      Transaction Txn(F.RT);
      int NumEdits = 1 + static_cast<int>(Rng() % 5);
      for (int I = 0; I < NumEdits; ++I) {
        Edit E = F.randomEdit(Rng);
        F.applyIncremental(E);
        F.Current.apply(E);
        Edits.push_back(E);
      }
      // Demand a few random heights inside the batch; with a fault armed
      // these may quarantine nodes, poisoning the batch.
      int NumDemands = static_cast<int>(Rng() % 4);
      for (int I = 0; I < NumDemands; ++I) {
        try {
          F.Tree.height(F.Inc[Rng() % Fixture::NumNodes]);
        } catch (const IncrementalFault &) {
          Doomed = true;
        } catch (const InjectedFault &) {
          Doomed = true;
        }
      }

      bool WantCommit = (Rng() % 3) != 0; // 2/3 commit, 1/3 rollback.
      if (!WantCommit) {
        Txn.rollback();
        Doomed = true; // Same restoration path as a fault.
        ++RolledBack;
      } else if (Doomed) {
        ASSERT_FALSE(Txn.commit()); // A poisoned batch must not commit.
        ++Faulted;
      } else {
        ASSERT_TRUE(Txn.commit());
        ++Committed;
      }
    }
    if (Armed)
      Inj.disarm("Tree.height");

    ASSERT_EQ(F.RT.epoch(), Epoch0 + 1); // Every outcome advances the epoch.
    if (Doomed) {
      F.Current = Before; // The incremental tree rolled back; so do we.
    } else {
      for (const Edit &E : Edits)
        F.applyManual(E); // Mirror only committed batches into the oracle.
    }
    F.checkAll();
  }

  // The schedule must actually exercise all three outcomes.
  EXPECT_GT(Committed, 10);
  EXPECT_GT(RolledBack, 10);
  EXPECT_GT(Faulted, 0);
  EXPECT_EQ(F.RT.stats().TxnBegun,
            static_cast<uint64_t>(NumBatches));
  EXPECT_EQ(F.RT.stats().TxnCommitted, static_cast<uint64_t>(Committed));
}

} // namespace
} // namespace alphonse
