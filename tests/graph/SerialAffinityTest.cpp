//===- SerialAffinityTest.cpp - serial-pin lifecycle tests ----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serial-affinity pins are reference counts per partition, not sticky
/// tags: a partition that loses its last serial-pinned node becomes
/// eligible for parallel wave drains again. Historically the tag was a
/// boolean that survived node destruction, so one short-lived pinned node
/// permanently demoted its whole (merged) partition to the serial mop-up
/// — these tests pin the corrected lifecycle.
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <memory>

namespace alphonse {
namespace {

/// Procedure-kind node (addDependency sinks must be procedures) that can
/// be born pinned, like the interpreter's serial-affine nodes.
struct PlainNode final : DepNode {
  explicit PlainNode(DepGraph &G, bool Pin = false)
      : DepNode(G, NodeKind::Procedure) {
    if (Pin)
      requireSerialEval();
  }
};

class SerialAffinityTest : public ::testing::Test {
protected:
  Statistics Stats;
};

TEST_F(SerialAffinityTest, PinIsReleasedWhenLastSerialNodeDies) {
  DepGraph G(Stats);
  PlainNode Free(G);
  {
    PlainNode Pinned(G, /*Pin=*/true);
    EXPECT_TRUE(Pinned.isSerialPinned());
    G.addDependency(Pinned, Free); // Merge the two partitions.
    EXPECT_TRUE(G.serialEvalRequired(Free));
  }
  // The pinned node is gone; the surviving partition must be drainable
  // by wave workers again.
  EXPECT_FALSE(G.serialEvalRequired(Free));
}

TEST_F(SerialAffinityTest, TwoPinsNeedTwoReleases) {
  DepGraph G(Stats);
  PlainNode Free(G);
  auto A = std::make_unique<PlainNode>(G, /*Pin=*/true);
  auto B = std::make_unique<PlainNode>(G, /*Pin=*/true);
  G.addDependency(*A, Free);
  G.addDependency(*B, Free);
  EXPECT_TRUE(G.serialEvalRequired(Free));
  A.reset();
  // One pinned node remains in the merged partition.
  EXPECT_TRUE(G.serialEvalRequired(Free));
  B.reset();
  EXPECT_FALSE(G.serialEvalRequired(Free));
}

TEST_F(SerialAffinityTest, MergeSumsPinCountsAcrossRoots) {
  DepGraph G(Stats);
  // Two separately pinned partitions merge: the union carries both pins,
  // and releasing only one keeps the merged partition serial.
  auto A = std::make_unique<PlainNode>(G, /*Pin=*/true);
  auto B = std::make_unique<PlainNode>(G, /*Pin=*/true);
  PlainNode Bridge(G);
  G.addDependency(*A, Bridge);
  G.addDependency(*B, Bridge);
  EXPECT_TRUE(G.serialEvalRequired(Bridge));
  B.reset();
  EXPECT_TRUE(G.serialEvalRequired(Bridge));
  A.reset();
  EXPECT_FALSE(G.serialEvalRequired(Bridge));
}

TEST_F(SerialAffinityTest, RequireSerialEvalIsIdempotentPerNode) {
  DepGraph G(Stats);
  PlainNode Free(G);
  {
    PlainNode Pinned(G, /*Pin=*/true);
    // A second pin request on the same node must not double-count — the
    // node's destruction still releases the partition.
    Pinned.requireSerialEval();
    Pinned.requireSerialEval();
    EXPECT_TRUE(Pinned.isSerialPinned());
    G.addDependency(Pinned, Free);
    EXPECT_TRUE(G.serialEvalRequired(Free));
  }
  EXPECT_FALSE(G.serialEvalRequired(Free));
}

TEST_F(SerialAffinityTest, UnpinnedNodesNeverTagTheirPartition) {
  DepGraph G(Stats);
  PlainNode A(G);
  PlainNode B(G);
  G.addDependency(A, B);
  EXPECT_FALSE(A.isSerialPinned());
  EXPECT_FALSE(G.serialEvalRequired(A));
  EXPECT_FALSE(G.serialEvalRequired(B));
}

} // namespace
} // namespace alphonse
