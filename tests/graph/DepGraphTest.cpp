//===- DepGraphTest.cpp - Dependency graph unit tests ---------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the graph layer directly with stub nodes: propagation per
/// Section 4.5, quiescence cutoffs, partitioning (Section 6.3), edge
/// dedup, and node-destruction invalidation.
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"

#include <gtest/gtest.h>

#include <memory>

namespace alphonse {
namespace {

/// Storage stub whose "live vs snapshot" answer is scripted.
struct FakeStorage final : DepNode {
  explicit FakeStorage(DepGraph &G) : DepNode(G, NodeKind::Storage) {}
  bool refreshStorage() override {
    ++Refreshes;
    return NextChanged;
  }
  bool NextChanged = true;
  int Refreshes = 0;
};

/// Procedure stub that runs a minimal execution protocol when the
/// evaluator re-executes it (eager mode).
struct FakeProc final : DepNode {
  explicit FakeProc(DepGraph &G, EvalStrategy S = EvalStrategy::Demand)
      : DepNode(G, NodeKind::Procedure, S) {}
  bool reexecute() override {
    ++Reexecutions;
    graph().removePredEdges(*this);
    graph().beginExecution(*this);
    graph().endExecution(*this);
    return NextChanged;
  }
  bool NextChanged = true;
  int Reexecutions = 0;
};

class DepGraphTest : public ::testing::Test {
protected:
  Statistics Stats;
};

/// Simulates "Proc executed and read Src": records the dependency inside a
/// proper execution window.
static void recordRead(DepGraph &G, DepNode &Proc, DepNode &Src) {
  G.beginExecution(Proc);
  G.addDependency(Proc, Src);
  G.endExecution(Proc);
}

TEST_F(DepGraphTest, StorageChangeInvalidatesDemandDependent) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G);
    recordRead(G, P, S);
    EXPECT_TRUE(P.isConsistent());
    G.markInconsistent(S);
    EXPECT_EQ(G.numPending(), 1u);
    G.evaluateAll();
    EXPECT_FALSE(P.isConsistent());
    EXPECT_EQ(S.Refreshes, 1);
    EXPECT_EQ(G.numPending(), 0u);
  }
}

TEST_F(DepGraphTest, QuiescentStorageDoesNotPropagate) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G);
    recordRead(G, P, S);
    S.NextChanged = false; // Live value equals snapshot at refresh time.
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_TRUE(P.isConsistent());
    EXPECT_EQ(Stats.QuiescenceCutoffs, 1u);
  }
}

TEST_F(DepGraphTest, VariableCutoffAblationAlwaysPropagates) {
  DepGraph::Config Cfg;
  Cfg.VariableCutoff = false;
  DepGraph G(Stats, Cfg);
  {
    FakeStorage S(G);
    FakeProc P(G);
    recordRead(G, P, S);
    S.NextChanged = false;
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_FALSE(P.isConsistent()); // No cutoff: invalidated anyway.
  }
}

TEST_F(DepGraphTest, InvalidationIsTransitive) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P1(G), P2(G), P3(G);
    recordRead(G, P1, S);
    recordRead(G, P2, P1);
    recordRead(G, P3, P2);
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_FALSE(P1.isConsistent());
    EXPECT_FALSE(P2.isConsistent());
    EXPECT_FALSE(P3.isConsistent());
  }
}

TEST_F(DepGraphTest, EagerNodeReexecutesDuringEvaluation) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G, EvalStrategy::Eager);
    recordRead(G, P, S);
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_EQ(P.Reexecutions, 1);
    EXPECT_TRUE(P.isConsistent());
  }
}

TEST_F(DepGraphTest, EagerCutoffStopsPropagation) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc Mid(G, EvalStrategy::Eager);
    FakeProc Top(G, EvalStrategy::Eager);
    recordRead(G, Mid, S);
    recordRead(G, Top, Mid);
    Mid.NextChanged = false; // Mid recomputes to the same value.
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_EQ(Mid.Reexecutions, 1);
    EXPECT_EQ(Top.Reexecutions, 0); // Quiescence: change never reached Top.
    EXPECT_TRUE(Top.isConsistent());
  }
}

TEST_F(DepGraphTest, LevelsOrderEagerReexecution) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc Low(G, EvalStrategy::Eager);
    FakeProc High(G, EvalStrategy::Eager);
    // High depends on both S and Low; Low depends on S. Processing in
    // level order re-executes Low before High.
    recordRead(G, Low, S);
    G.beginExecution(High);
    G.addDependency(High, S);
    G.addDependency(High, Low);
    G.endExecution(High);
    EXPECT_GT(High.level(), Low.level());
    G.markInconsistent(S);
    G.evaluateAll();
    EXPECT_EQ(Low.Reexecutions, 1);
    EXPECT_EQ(High.Reexecutions, 1);
  }
}

TEST_F(DepGraphTest, RemovePredEdgesDetachesBothSides) {
  DepGraph G(Stats);
  {
    FakeStorage S1(G), S2(G);
    FakeProc P(G);
    G.beginExecution(P);
    G.addDependency(P, S1);
    G.addDependency(P, S2);
    G.endExecution(P);
    EXPECT_EQ(P.numPredecessors(), 2u);
    EXPECT_EQ(S1.numSuccessors(), 1u);
    G.removePredEdges(P);
    EXPECT_EQ(P.numPredecessors(), 0u);
    EXPECT_EQ(S1.numSuccessors(), 0u);
    EXPECT_EQ(S2.numSuccessors(), 0u);
    EXPECT_EQ(G.numLiveEdges(), 0u);
  }
}

TEST_F(DepGraphTest, DuplicateReadsWithinOneExecutionMakeOneEdge) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G);
    G.beginExecution(P);
    G.addDependency(P, S);
    G.addDependency(P, S);
    G.addDependency(P, S);
    G.endExecution(P);
    EXPECT_EQ(P.numPredecessors(), 1u);
    EXPECT_EQ(Stats.EdgesDeduped, 2u);
  }
}

TEST_F(DepGraphTest, DedupResetsAcrossExecutions) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G);
    recordRead(G, P, S);
    G.removePredEdges(P);
    recordRead(G, P, S); // New execution: a fresh edge must be created.
    EXPECT_EQ(P.numPredecessors(), 1u);
    EXPECT_EQ(Stats.EdgesCreated, 2u);
  }
}

TEST_F(DepGraphTest, DisconnectedPartitionsEvaluateIndependently) {
  DepGraph G(Stats);
  {
    FakeStorage SA(G), SB(G);
    FakeProc PA(G), PB(G);
    recordRead(G, PA, SA);
    recordRead(G, PB, SB);
    EXPECT_FALSE(G.samePartition(PA, PB));
    G.markInconsistent(SA);
    // Only A's partition has pending work.
    EXPECT_TRUE(G.hasPendingFor(PA));
    EXPECT_FALSE(G.hasPendingFor(PB));
    G.evaluateFor(PB); // No-op.
    EXPECT_TRUE(PA.isConsistent());
    EXPECT_EQ(G.numPending(), 1u);
    G.evaluateFor(PA);
    EXPECT_FALSE(PA.isConsistent());
    EXPECT_TRUE(PB.isConsistent());
  }
}

TEST_F(DepGraphTest, AddingEdgeMergesPartitions) {
  DepGraph G(Stats);
  {
    FakeStorage SA(G), SB(G);
    FakeProc P(G);
    G.beginExecution(P);
    G.addDependency(P, SA);
    G.addDependency(P, SB);
    G.endExecution(P);
    EXPECT_TRUE(G.samePartition(SA, SB));
    EXPECT_GE(Stats.PartitionUnions, 2u);
  }
}

TEST_F(DepGraphTest, MergeCarriesPendingWork) {
  DepGraph G(Stats);
  {
    FakeStorage SA(G), SB(G);
    FakeProc PB(G);
    recordRead(G, PB, SB);
    G.markInconsistent(SA); // Pending in A's (separate) partition.
    // Now connect: PB also reads SA.
    G.beginExecution(PB);
    G.addDependency(PB, SB);
    G.addDependency(PB, SA);
    G.endExecution(PB);
    EXPECT_TRUE(G.hasPendingFor(PB));
    G.evaluateFor(PB);
    EXPECT_FALSE(PB.isConsistent());
    EXPECT_EQ(G.numPending(), 0u);
  }
}

TEST_F(DepGraphTest, PartitioningDisabledUsesOneGlobalSet) {
  DepGraph::Config Cfg;
  Cfg.Partitioning = false;
  DepGraph G(Stats, Cfg);
  {
    FakeStorage SA(G), SB(G);
    FakeProc PA(G), PB(G);
    recordRead(G, PA, SA);
    recordRead(G, PB, SB);
    G.markInconsistent(SA);
    // With one global set, B's "partition" also reports pending work.
    EXPECT_TRUE(G.hasPendingFor(PB));
    G.evaluateFor(PB); // Drains everything.
    EXPECT_FALSE(PA.isConsistent());
  }
}

TEST_F(DepGraphTest, NodeDestructionInvalidatesDependents) {
  DepGraph G(Stats);
  {
    FakeProc P(G);
    {
      FakeStorage S(G);
      recordRead(G, P, S);
      EXPECT_TRUE(P.isConsistent());
    } // S dies here.
    G.evaluateAll();
    EXPECT_FALSE(P.isConsistent());
    EXPECT_EQ(P.numPredecessors(), 0u);
  }
}

TEST_F(DepGraphTest, QueuedNodeCanBeDestroyedSafely) {
  DepGraph G(Stats);
  {
    FakeProc P(G);
    {
      FakeStorage S(G);
      recordRead(G, P, S);
      G.markInconsistent(S);
      EXPECT_EQ(G.numPending(), 1u);
    } // S dies while queued.
    // S's own entry is gone; P was queued by the destruction cascade.
    G.evaluateAll();
    EXPECT_FALSE(P.isConsistent());
  }
}

TEST_F(DepGraphTest, MarkingIsIdempotent) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    G.markInconsistent(S);
    G.markInconsistent(S);
    G.markInconsistent(S);
    EXPECT_EQ(G.numPending(), 1u);
    G.evaluateAll();
  }
}

TEST_F(DepGraphTest, StatsTrackLiveCounts) {
  DepGraph G(Stats);
  {
    FakeStorage S(G);
    FakeProc P(G);
    recordRead(G, P, S);
    EXPECT_EQ(G.numLiveNodes(), 2u);
    EXPECT_EQ(G.numLiveEdges(), 1u);
  }
  EXPECT_EQ(G.numLiveNodes(), 0u);
  EXPECT_EQ(G.numLiveEdges(), 0u);
  EXPECT_EQ(Stats.NodesCreated, 2u);
  EXPECT_EQ(Stats.NodesDestroyed, 2u);
}

} // namespace
} // namespace alphonse
