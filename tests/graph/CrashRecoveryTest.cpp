//===- CrashRecoveryTest.cpp - Fork-kill-restore crash drills -------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The durability contract, exercised literally: a forked child is killed
// (std::_Exit inside an armed injection site — no destructors, no
// flushing) at every step of the snapshot write protocol and of the delta
// append protocol. The parent then restores from whatever the dead child
// left on disk. At every kill point the restore must either produce one
// of the states the child durably reached (pre- or post-checkpoint;
// verify() clean, all quiescent values matching) or refuse with a
// structured CheckpointError — never crash, never accept a torn file.
//
// Kill points ("ckpt.io" hits 1-7): before temp-file create, before the
// first half-write, between the halves (torn temp), before fsync, before
// the rename, before the directory fsync, before the delta-log reset.
// ("ckpt.delta.io" hits 1-4): before open, before the header write,
// between header and payload (torn record), before fsync.
//
//===----------------------------------------------------------------------===//

#include "CheckpointTestHost.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace alphonse;
using namespace alphonse::ckpttest;

namespace {

constexpr size_t kCells = 6;

class CrashRecoveryTest : public ::testing::Test {
protected:
  void SetUp() override {
    // The child forks from the test process; parallel evaluation threads
    // must not leak across fork(). The host runtimes here are serial by
    // construction, but the env override could silently re-enable them.
    ::unsetenv("ALPHONSE_JOBS");
    const char *Dir = std::getenv("TMPDIR");
    Path = std::string(Dir ? Dir : "/tmp") + "/crash-recovery." +
           std::to_string(::getpid()) + ".ckpt";
    cleanup();
  }
  void TearDown() override {
    // A failing drill leaves its files behind — CI uploads whatever the
    // dead child wrote as a post-mortem artifact. Passing runs clean up.
    if (!HasFailure())
      cleanup();
  }

  void cleanup() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
    std::remove(deltaLogPath(Path).c_str());
  }

  static void buildStateA(CheckpointHost &H) {
    H.touchAll();
    for (size_t I = 0; I < kCells; ++I)
      *H.Cells[I] = static_cast<int>(I + 1);
    H.RT.pump();
  }

  static void mutateToStateB(CheckpointHost &H) {
    for (size_t I = 0; I < kCells; I += 2)
      *H.Cells[I] = static_cast<int>(100 + I);
    H.RT.pump();
  }

  static void mutateToStateC(CheckpointHost &H) {
    *H.Cells[1] = -7;
    *H.Cells[5] = 5000;
    H.RT.pump();
  }

  /// Runs \p Child in a forked process; returns its wait status.
  template <typename Fn> int inChild(Fn Child) {
    ::fflush(nullptr); // Don't let the child replay buffered output.
    pid_t Pid = ::fork();
    if (Pid == 0) {
      Child();
      std::_Exit(0);
    }
    EXPECT_GT(Pid, 0) << "fork failed";
    int Status = 0;
    EXPECT_EQ(::waitpid(Pid, &Status, 0), Pid);
    return Status;
  }

  std::string Path;
};

// Killed at every step of a *second* snapshot: the restore must see
// either the first checkpoint (state A) or the finished second one
// (state B) — the rename is the only visible transition.
TEST_F(CrashRecoveryTest, KilledMidSnapshotRestoresOldOrNew) {
  std::string FpA, FpB;
  {
    CheckpointHost Ref(kCells);
    buildStateA(Ref);
    FpA = Ref.fingerprint();
    mutateToStateB(Ref);
    FpB = Ref.fingerprint();
  }

  for (uint64_t Kill = 1; Kill <= 7; ++Kill) {
    cleanup();
    int Status = inChild([&] {
      CheckpointHost H(kCells);
      buildStateA(H);
      H.save(Path); // Clean first checkpoint.
      mutateToStateB(H);
      FaultInjector FI;
      FI.armKill("ckpt.io", Kill);
      FaultInjector::Scope Scope(FI);
      H.save(Path); // Dies at the armed step.
    });
    ASSERT_TRUE(WIFEXITED(Status));
    ASSERT_EQ(WEXITSTATUS(Status), 137)
        << "kill point " << Kill << " did not fire";

    CheckpointHost R(kCells);
    try {
      R.restore(Path);
    } catch (const CheckpointError &E) {
      FAIL() << "kill point " << Kill
             << ": a completed first checkpoint must stay loadable, got: "
             << E.what();
    }
    EXPECT_TRUE(R.RT.graph().verify().empty()) << "kill point " << Kill;
    std::string Got = R.fingerprint();
    EXPECT_TRUE(Got == FpA || Got == FpB)
        << "kill point " << Kill << " restored a state that is neither "
        << "pre- nor post-checkpoint";
  }
}

// Killed mid-*first* snapshot: there is no previous good file, so the
// restore must refuse with a structured error (Io for a missing file,
// Truncated/CrcMismatch for a torn one) — and must never accept the
// leftover temp file as a checkpoint.
TEST_F(CrashRecoveryTest, KilledMidFirstSnapshotRefusesCleanly) {
  for (uint64_t Kill = 1; Kill <= 5; ++Kill) { // 6+ are post-rename.
    cleanup();
    int Status = inChild([&] {
      CheckpointHost H(kCells);
      buildStateA(H);
      FaultInjector FI;
      FI.armKill("ckpt.io", Kill);
      FaultInjector::Scope Scope(FI);
      H.save(Path);
    });
    ASSERT_TRUE(WIFEXITED(Status));
    ASSERT_EQ(WEXITSTATUS(Status), 137);

    CheckpointHost R(kCells);
    EXPECT_THROW(R.restore(Path), CheckpointError)
        << "kill point " << Kill;
  }
}

// Killed at every step of a delta append, with one complete delta already
// durable: the restore must land on base+delta1 (the torn second record
// is discarded) or on base+delta1+delta2 (the append reached the data
// before the kill).
TEST_F(CrashRecoveryTest, KilledMidDeltaAppendRestoresPrefix) {
  std::string FpB, FpC;
  {
    CheckpointHost Ref(kCells);
    buildStateA(Ref);
    mutateToStateB(Ref);
    FpB = Ref.fingerprint();
    mutateToStateC(Ref);
    FpC = Ref.fingerprint();
  }

  for (uint64_t Kill = 1; Kill <= 4; ++Kill) {
    cleanup();
    int Status = inChild([&] {
      CheckpointHost H(kCells);
      buildStateA(H);
      H.save(Path);
      mutateToStateB(H);
      H.appendDelta(Path); // Durable first delta.
      mutateToStateC(H);
      FaultInjector FI;
      FI.armKill("ckpt.delta.io", Kill);
      FaultInjector::Scope Scope(FI);
      H.appendDelta(Path); // Dies at the armed step.
    });
    ASSERT_TRUE(WIFEXITED(Status));
    ASSERT_EQ(WEXITSTATUS(Status), 137)
        << "kill point " << Kill << " did not fire";

    CheckpointHost R(kCells);
    try {
      R.restore(Path);
    } catch (const CheckpointError &E) {
      FAIL() << "kill point " << Kill
             << ": the base snapshot and intact delta prefix must stay "
             << "loadable, got: " << E.what();
    }
    EXPECT_TRUE(R.RT.graph().verify().empty()) << "kill point " << Kill;
    std::string Got = R.fingerprint();
    EXPECT_TRUE(Got == FpB || Got == FpC)
        << "kill point " << Kill
        << " restored a state that is not an intact delta prefix";
  }
}

// A crash mid-append followed by a healthy process appending again: the
// torn tail must be repaired (truncated), the new record must survive,
// and nothing from the torn write may resurface.
TEST_F(CrashRecoveryTest, AppendAfterTornTailRepairsTheLog) {
  std::string FpD;
  {
    CheckpointHost Ref(kCells);
    buildStateA(Ref);
    mutateToStateB(Ref);
    mutateToStateC(Ref);
    *Ref.Cells[2] = 42; // State D: what the recovering process writes.
    Ref.RT.pump();
    FpD = Ref.fingerprint();
  }

  int Status = inChild([&] {
    CheckpointHost H(kCells);
    buildStateA(H);
    H.save(Path);
    mutateToStateB(H);
    H.appendDelta(Path);
    mutateToStateC(H);
    FaultInjector FI;
    FI.armKill("ckpt.delta.io", 3); // Torn: header written, payload not.
    FaultInjector::Scope Scope(FI);
    H.appendDelta(Path);
  });
  ASSERT_TRUE(WIFEXITED(Status));
  ASSERT_EQ(WEXITSTATUS(Status), 137);

  // The "recovering" process: restore what survived, keep mutating,
  // append — exactly what a restarted service does.
  CheckpointHost R(kCells);
  R.restore(Path);
  mutateToStateC(R);
  *R.Cells[2] = 42;
  R.RT.pump();
  R.appendDelta(Path);

  CheckpointHost Verify(kCells);
  Verify.restore(Path);
  EXPECT_TRUE(Verify.RT.graph().verify().empty());
  EXPECT_EQ(FpD, Verify.fingerprint());
}

} // namespace
