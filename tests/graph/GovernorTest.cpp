//===- GovernorTest.cpp - Resource-governed propagation tests -------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor (DESIGN.md Section 11): budgeted waves degrade
/// instead of failing. A cancelled wave must leave the graph verifiably
/// intact, park its residue resumably, stamp the unrepaired cone stale,
/// and a later unbudgeted pump must reach the exact state an ungoverned
/// run would have. Deadlines are tested on the virtual clock (a Tick
/// fault on "gov.tick" advances time at evaluation boundaries), so no
/// test sleeps or races the wall clock.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace alphonse {
namespace {

/// A linear chain: Src -> S0 -> S1 -> ... -> S(N-1), each eager stage
/// adding 1, so the final value is Src + N and a full propagation takes a
/// step per node. The whole chain is one partition.
struct Chain {
  Chain(Runtime &RT, int Stages) : Src(RT, 0, "src") {
    for (int I = 0; I < Stages; ++I) {
      Cell<int> *S = &Src;
      Maintained<int()> *Prev =
          Stage.empty() ? nullptr : Stage.back().get();
      Stage.push_back(std::make_unique<Maintained<int()>>(
          RT,
          [S, Prev] { return (Prev ? (*Prev)() : S->get()) + 1; },
          EvalStrategy::Eager, "s" + std::to_string(I)));
      (*Stage.back())(); // Wire the dependency now.
    }
  }

  int last() { return (*Stage.back())(); }
  const int *peekLast() const { return Stage.back()->peekCached(); }

  Cell<int> Src;
  std::vector<std::unique_ptr<Maintained<int()>>> Stage;
};

TEST(GovernorTest, UnlimitedBudgetIsCompletedAndNeverDegrades) {
  Runtime RT;
  Chain C(RT, 8);
  C.Src.set(5);
  EXPECT_EQ(RT.pump(WaveBudget()), WaveOutcome::Completed);
  EXPECT_FALSE(RT.degraded());
  EXPECT_EQ(C.last(), 5 + 8);
  EXPECT_EQ(RT.stats().GovWavesDegraded.total(), 0u);
}

TEST(GovernorTest, StepBudgetParksResidueStampsStaleAndRecovers) {
  Runtime RT;
  Chain C(RT, 16);
  RT.pumpUnbounded();
  ASSERT_EQ(C.last(), 16);

  C.Src.set(100);
  WaveOutcome O = RT.pump(WaveBudget::steps(3));
  EXPECT_EQ(O, WaveOutcome::DegradedSteps);
  EXPECT_TRUE(waveDegraded(O));
  EXPECT_TRUE(RT.degraded());
  EXPECT_GT(RT.graph().numPending(), 0u) << "residue must stay parked";
  EXPECT_GE(RT.stats().GovStepBudgetHits.total(), 1u);

  // A cancelled wave is cooperative: it stopped at an evaluation
  // boundary, so the graph audits clean.
  EXPECT_TRUE(RT.graph().verify().empty());

  // The unrepaired cone is stamped stale; its cached values are the
  // last-quiescent ones.
  EXPECT_GT(RT.graph().governor().staleCount(), 0u);
  EXPECT_TRUE(C.Stage.back()->isStale());
  ASSERT_NE(C.peekLast(), nullptr);
  EXPECT_EQ(*C.peekLast(), 16) << "stale read serves the last-quiescent value";

  // Any later unbudgeted pump finishes the parked work exactly.
  EXPECT_EQ(RT.pumpUnbounded(), RT.pump(WaveBudget())); // Both Completed.
  EXPECT_FALSE(RT.degraded());
  EXPECT_EQ(RT.graph().numPending(), 0u);
  EXPECT_EQ(RT.graph().governor().staleCount(), 0u);
  EXPECT_FALSE(C.Stage.back()->isStale());
  EXPECT_EQ(C.last(), 100 + 16);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(GovernorTest, DeadlineOnVirtualClockCancelsAtExactBoundary) {
  GovClock::VirtualScope Virtual;
  FaultInjector Inj;
  // Every evaluation boundary advances virtual time by 100us.
  Inj.armTick("gov.tick", 100);
  FaultInjector::Scope Armed(Inj);

  Runtime RT;
  Chain C(RT, 32);
  RT.pumpUnbounded();

  C.Src.set(7);
  uint64_t StepsBefore = RT.stats().EvalSteps.total();
  // Deadline 350us: boundaries see t=100, 200, 300 (ok) then t=400
  // (expired). Exactly 3 nodes may be processed — the deadline is
  // honored within one evaluation-step granularity. Under parallel
  // evaluation (ALPHONSE_JOBS) every worker's boundary checks advance
  // the shared virtual clock, so only the upper bound is deterministic.
  WaveOutcome O = RT.pump(WaveBudget::deadline(350));
  EXPECT_EQ(O, WaveOutcome::DegradedDeadline);
  uint64_t Steps = RT.stats().EvalSteps.total() - StepsBefore;
  if (RT.graph().config().Workers == 0)
    EXPECT_EQ(Steps, 3u);
  else
    EXPECT_LE(Steps, 3u);
  EXPECT_GE(RT.stats().GovDeadlineExpired.total(), 1u);
  EXPECT_TRUE(RT.graph().verify().empty());
  EXPECT_TRUE(RT.degraded());

  // Recovery is exact.
  EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
  EXPECT_EQ(C.last(), 7 + 32);
  EXPECT_FALSE(RT.degraded());
}

TEST(GovernorTest, MemoryCeilingCancelsBeforeAnyStep) {
  Runtime RT;
  Chain C(RT, 8);
  RT.pumpUnbounded();
  C.Src.set(9);
  WaveBudget B;
  B.MemCeilingBytes = 1; // Any real graph exceeds one byte of slab.
  uint64_t StepsBefore = RT.stats().EvalSteps.total();
  EXPECT_EQ(RT.pump(B), WaveOutcome::DegradedMemory);
  EXPECT_EQ(RT.stats().EvalSteps.total(), StepsBefore)
      << "the ceiling was already exceeded; no step may run";
  EXPECT_GE(RT.stats().GovMemCeilingHits.total(), 1u);
  EXPECT_TRUE(RT.graph().verify().empty());
  RT.pumpUnbounded();
  EXPECT_EQ(C.last(), 9 + 8);
}

TEST(GovernorTest, OverloadPolicyDefersOrShedsOverParkedResidue) {
  Runtime RT;
  Chain C(RT, 16);
  RT.pumpUnbounded();
  C.Src.set(3);
  ASSERT_EQ(RT.pump(WaveBudget::steps(2)), WaveOutcome::DegradedSteps);
  size_t Parked = RT.graph().numPending();
  ASSERT_GT(Parked, 0u);

  // Defer: the wave is skipped entirely while residue is parked.
  WaveBudget Defer = WaveBudget::steps(2);
  Defer.Policy = OverloadPolicy::Defer;
  EXPECT_EQ(RT.pump(Defer), WaveOutcome::Deferred);
  EXPECT_EQ(RT.graph().numPending(), Parked) << "a deferred wave runs nothing";
  EXPECT_EQ(RT.stats().GovWavesDeferred.total(), 1u);

  WaveBudget Shed = WaveBudget::steps(2);
  Shed.Policy = OverloadPolicy::Shed;
  EXPECT_EQ(RT.pump(Shed), WaveOutcome::Shed);
  EXPECT_EQ(RT.stats().GovWavesShed.total(), 1u);

  // Accept (the default) always runs; an unbudgeted pump always drains —
  // that is the guaranteed path out of overload.
  EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
  EXPECT_EQ(C.last(), 3 + 16);

  // With no parked residue, Defer admits normally.
  C.Src.set(4);
  WaveBudget BigDefer = WaveBudget::steps(1000);
  BigDefer.Policy = OverloadPolicy::Defer;
  EXPECT_EQ(RT.pump(BigDefer), WaveOutcome::Completed);
  EXPECT_EQ(C.last(), 4 + 16);
}

TEST(GovernorTest, WatchdogQuarantinesRepeatDeadlineBlower) {
  GovClock::VirtualScope Virtual;
  FaultInjector Inj;
  // Each execution of "slow" consumes 1000us of virtual time — twice the
  // wave deadline by itself.
  Inj.armTick("slow", 1000, /*AtNthHit=*/1, /*Times=*/UINT64_MAX);
  FaultInjector::Scope Armed(Inj);

  DepGraph::Config Cfg;
  Cfg.WatchdogTrips = 2;
  Runtime RT(Cfg);
  Cell<int> Src(RT, 0, "src");
  Maintained<int()> Slow(
      RT, [&] { return Src.get() * 2; }, EvalStrategy::Eager, "slow");
  Slow(); // Wire (direct call: the watchdog only times wave evaluations).

  // The slow node is the wave's final work item, so the wave itself may
  // still complete — the watchdog records the per-node blow regardless.
  Src.set(1);
  RT.pump(WaveBudget::deadline(500));
  EXPECT_EQ(RT.stats().GovDeadlineBlows.total(), 1u);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u) << "one strike is not enough";

  Src.set(2);
  RT.pump(WaveBudget::deadline(500));
  EXPECT_EQ(RT.stats().GovDeadlineBlows.total(), 2u);
  ASSERT_EQ(RT.graph().numQuarantined(), 1u);
  EXPECT_EQ(RT.stats().GovWatchdogQuarantines.total(), 1u);
  DepNode *N = Slow.instanceNode();
  ASSERT_NE(N, nullptr);
  ASSERT_TRUE(N->isQuarantined());
  const FaultInfo *FI = RT.graph().fault(*N);
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Deadline);
  EXPECT_TRUE(RT.graph().verify().empty());

  // Quarantine is recoverable as usual.
  EXPECT_TRUE(RT.graph().resetQuarantined(*N));
  Inj.disarm("slow");
  RT.pumpUnbounded();
  EXPECT_EQ(Slow(), 4);
}

TEST(GovernorTest, BudgetExhaustionInsideCommitAbortsAndRollsBack) {
  Runtime RT;
  Chain C(RT, 16);
  RT.pumpUnbounded();
  ASSERT_EQ(C.last(), 16);

  // Every un-annotated pump — including the commit propagation — runs
  // under the default budget from here on.
  RT.setDefaultBudget(WaveBudget::steps(3));

  RT.beginBatch(); // Pre-pump is unbounded by contract.
  C.Src.set(50);
  EXPECT_FALSE(RT.commitBatch())
      << "a budget exhausted mid-commit must abort the batch";
  const FaultInfo *FI = RT.graph().abortFault();
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Deadline);

  // Rolled back to the pre-batch quiescent state: no stale values, no
  // parked residue, the old value everywhere.
  EXPECT_FALSE(RT.degraded());
  EXPECT_EQ(RT.graph().numPending(), 0u);
  EXPECT_EQ(C.Src.peek(), 0);
  EXPECT_TRUE(RT.graph().verify().empty());

  // With the budget lifted the same batch commits.
  RT.setDefaultBudget(WaveBudget());
  RT.beginBatch();
  C.Src.set(50);
  EXPECT_TRUE(RT.commitBatch());
  EXPECT_EQ(C.last(), 50 + 16);
}

TEST(GovernorTest, CellIsStaleTracksTheUnrepairedCone) {
  Runtime RT;
  Chain C(RT, 8);
  RT.pumpUnbounded();

  C.Src.set(11);
  // One step: the source cell refreshes, the first stage stays parked.
  ASSERT_EQ(RT.pump(WaveBudget::steps(1)), WaveOutcome::DegradedSteps);
  EXPECT_FALSE(C.Src.isStale())
      << "the refreshed source itself was repaired before cancellation";
  EXPECT_TRUE(C.Stage.front()->isStale());
  EXPECT_TRUE(C.Stage.back()->isStale()) << "staleness covers the whole cone";

  RT.pumpUnbounded();
  EXPECT_FALSE(C.Stage.front()->isStale());
  EXPECT_FALSE(C.Stage.back()->isStale());
  EXPECT_EQ(C.last(), 11 + 8);
}

TEST(GovernorTest, GovernedParallelWaveParksAndRecovers) {
  DepGraph::Config Cfg;
  Cfg.Workers = 4;
  Runtime RT(Cfg);
  // Four independent chains: four partitions, so the pump actually runs
  // parallel waves whose workers poll the shared cancel latch.
  std::vector<std::unique_ptr<Chain>> Chains;
  for (int I = 0; I < 4; ++I)
    Chains.push_back(std::make_unique<Chain>(RT, 12));
  RT.pumpUnbounded();

  for (int Round = 0; Round < 6; ++Round) {
    for (auto &C : Chains)
      C->Src.set(Round * 10);
    WaveOutcome O = RT.pump(WaveBudget::steps(5));
    EXPECT_TRUE(O == WaveOutcome::DegradedSteps ||
                O == WaveOutcome::Completed);
    EXPECT_TRUE(RT.graph().verify().empty())
        << "a cancelled parallel wave must leave no torn state";
    EXPECT_EQ(RT.pumpUnbounded(), WaveOutcome::Completed);
    EXPECT_TRUE(RT.graph().verify().empty());
    for (auto &C : Chains)
      EXPECT_EQ(C->last(), Round * 10 + 12);
    EXPECT_FALSE(RT.degraded());
  }
}

} // namespace
} // namespace alphonse
