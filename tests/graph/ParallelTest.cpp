//===- ParallelTest.cpp - Parallel propagation tests ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel quiescence scheduler must be observationally identical to
/// the serial evaluator: same values, same quiescent state, clean audits.
/// A fixed-seed randomized workload runs the same mutation script at
/// worker counts {0, 1, 2, 8} against the exhaustive oracle, and a
/// fault-injection test checks that a fault on a worker thread degrades
/// to a quarantine — not a crash, not a corrupted graph.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/FaultInjector.h"
#include "trees/HeightTree.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

namespace alphonse {
namespace {

using trees::HeightTree;

/// Runs the fixed-seed mutation script on NumTrees independent trees
/// (each its own partition) with \p Workers drain threads and returns
/// every observed root height, verifying each against the exhaustive
/// oracle along the way.
std::vector<int> runRandomizedScenario(unsigned Workers, unsigned Seed) {
  constexpr int NumTrees = 4;
  constexpr size_t NodesPerTree = 31; // Perfect tree, 5 levels.
  constexpr int Rounds = 40;
  constexpr int MutationsPerRound = 6;

  DepGraph::Config Cfg;
  Cfg.Workers = Workers;
  Runtime RT(Cfg);

  std::vector<std::unique_ptr<HeightTree>> Trees;
  std::vector<std::vector<HeightTree::Node *>> Nodes(NumTrees);
  for (int T = 0; T < NumTrees; ++T) {
    Trees.push_back(std::make_unique<HeightTree>(RT));
    HeightTree &Tree = *Trees.back();
    auto &Ns = Nodes[T];
    for (size_t I = 0; I < NodesPerTree; ++I)
      Ns.push_back(Tree.makeNode());
    for (size_t I = 0; I < NodesPerTree; ++I) {
      Tree.setLeft(Ns[I], 2 * I + 1 < NodesPerTree ? Ns[2 * I + 1]
                                                   : Tree.nil());
      Tree.setRight(Ns[I], 2 * I + 2 < NodesPerTree ? Ns[2 * I + 2]
                                                    : Tree.nil());
    }
  }

  // Eager mirrors force the height recomputation to happen during the
  // pump (on the worker threads), not at the later serial demand.
  std::vector<std::unique_ptr<Maintained<int()>>> Mirrors;
  for (int T = 0; T < NumTrees; ++T) {
    HeightTree *Tree = Trees[T].get();
    HeightTree::Node *Root = Nodes[T][0];
    Mirrors.push_back(std::make_unique<Maintained<int()>>(
        RT, [Tree, Root] { return Tree->height(Root); }, EvalStrategy::Eager,
        "mirror" + std::to_string(T)));
    (*Mirrors.back())();
  }

  std::mt19937 Rng(Seed);
  std::vector<int> Observed;
  for (int Round = 0; Round < Rounds; ++Round) {
    for (int M = 0; M < MutationsPerRound; ++M) {
      int T = static_cast<int>(Rng() % NumTrees);
      HeightTree &Tree = *Trees[T];
      auto &Ns = Nodes[T];
      // Re-point an interior node's child at a strictly later node (or
      // nil): indices only grow along edges, so the shape stays acyclic
      // (sharing — a DAG — is fine, the oracle recurses through it).
      size_t Src = Rng() % (NodesPerTree / 2);
      size_t Dst = Src + 1 + Rng() % (NodesPerTree - Src);
      HeightTree::Node *Child =
          Dst < NodesPerTree ? Ns[Dst] : Tree.nil();
      if (Rng() % 2)
        Tree.setLeft(Ns[Src], Child);
      else
        Tree.setRight(Ns[Src], Child);
    }
    RT.pump();
    for (int T = 0; T < NumTrees; ++T) {
      int Incremental = (*Mirrors[T])();
      int Oracle =
          HeightTree::exhaustiveHeight(Nodes[T][0], Trees[T]->nil());
      EXPECT_EQ(Incremental, Oracle)
          << "workers=" << Workers << " round=" << Round << " tree=" << T;
      Observed.push_back(Incremental);
    }
    EXPECT_TRUE(RT.graph().verify().empty())
        << "workers=" << Workers << " round=" << Round;
  }
  EXPECT_EQ(RT.graph().numPending(), 0u);
  return Observed;
}

TEST(ParallelTest, RandomizedSerialParallelEquivalence) {
  const unsigned Seed = 0xA1F0;
  std::vector<int> Serial = runRandomizedScenario(0, Seed);
  for (unsigned Workers : {1u, 2u, 8u}) {
    std::vector<int> Parallel = runRandomizedScenario(Workers, Seed);
    EXPECT_EQ(Serial, Parallel) << "workers=" << Workers;
  }
}

/// An independent eager chain over a base cell (one partition).
struct EagerChain {
  EagerChain(Runtime &RT, int Len, const std::string &Name)
      : Base(std::make_unique<Cell<int>>(RT, 0, Name + ".base")) {
    for (int I = 0; I < Len; ++I) {
      Cell<int> *B = Base.get();
      Maintained<int()> *Prev = Stages.empty() ? nullptr : Stages.back().get();
      Stages.push_back(std::make_unique<Maintained<int()>>(
          RT, [B, Prev] { return (Prev ? (*Prev)() : B->get()) + 1; },
          EvalStrategy::Eager, Name));
    }
  }
  int demand() { return (*Stages.back())(); }

  std::unique_ptr<Cell<int>> Base;
  std::vector<std::unique_ptr<Maintained<int()>>> Stages;
};

TEST(ParallelTest, WorkerThreadFaultQuarantinesNode) {
  constexpr int NumChains = 4;
  constexpr int Len = 3;
  DepGraph::Config Cfg;
  Cfg.Workers = 2;
  Runtime RT(Cfg);
  std::vector<std::unique_ptr<EagerChain>> Chains;
  for (int I = 0; I < NumChains; ++I)
    Chains.push_back(
        std::make_unique<EagerChain>(RT, Len, "c" + std::to_string(I)));
  for (auto &C : Chains)
    EXPECT_EQ(C->demand(), Len);

  // Arm while quiescent, then mutate everything and pump: the injected
  // fault fires during the (possibly parallel) wave.
  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("c0");
  for (auto &C : Chains)
    C->Base->set(10);
  RT.pump();

  // The faulted instance is quarantined (its eager dependents may have
  // cascaded into quarantine with it); the graph is structurally sound
  // and every other partition reached quiescence with correct values.
  EXPECT_GE(RT.graph().numQuarantined(), 1u);
  EXPECT_LE(RT.graph().numQuarantined(), static_cast<size_t>(Len));
  EXPECT_TRUE(RT.graph().verify().empty());
  EXPECT_GE(Inj.firedCount(), 1u);
  for (int I = 1; I < NumChains; ++I)
    EXPECT_EQ(Chains[I]->demand(), 10 + Len) << "chain " << I;
}

} // namespace
} // namespace alphonse
