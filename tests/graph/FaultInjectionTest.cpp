//===- FaultInjectionTest.cpp - Fail-safe evaluator tests -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the failure model: exception-safe propagation (a throwing
/// recompute quarantines its node and the rest of the graph keeps
/// working), divergence and cycle quarantine, the EvalStepLimit backstop,
/// quarantine reset, DepGraph::verify() auditing, and the deterministic
/// FaultInjector harness that drives it all.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace alphonse {
namespace {

TEST(FaultInjectionTest, InjectedThrowOnDemandCallQuarantinesInstance) {
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> F(
      RT, [&](int X) { return C.get() + X; }, EvalStrategy::Demand, "f");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("f"); // First execution of any "f" instance throws.

  EXPECT_THROW(F(10), InjectedFault);
  // The protocol frames unwound: nothing left on the incremental call
  // stack, the evaluator is idle, and the instance is quarantined with
  // the captured exception.
  EXPECT_EQ(RT.callDepth(), 0u);
  EXPECT_FALSE(RT.graph().isEvaluating());
  DepNode *N = F.instanceNode(10);
  ASSERT_NE(N, nullptr);
  EXPECT_TRUE(N->isQuarantined());
  EXPECT_EQ(RT.graph().numQuarantined(), 1u);
  const FaultInfo *FI = RT.graph().fault(*N);
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Exception);
  EXPECT_NE(FI->Message.find("injected fault"), std::string::npos);
  ASSERT_TRUE(FI->Nested);
  EXPECT_THROW(std::rethrow_exception(FI->Nested), InjectedFault);
  EXPECT_TRUE(RT.graph().verify().empty());

  // Calling again surfaces the original fault instead of stale data.
  EXPECT_THROW(F(10), QuarantinedError);

  // Explicit reset returns the instance to service (the injector only
  // fires once by default).
  EXPECT_TRUE(RT.graph().resetQuarantined(*N));
  EXPECT_EQ(F(10), 11);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_EQ(RT.stats().NodesQuarantined, 1u);
  EXPECT_EQ(RT.stats().QuarantineResets, 1u);
}

TEST(FaultInjectionTest, ThrowDuringPumpLeavesOtherPartitionsWorking) {
  Runtime RT;
  Cell<int> X(RT, 1, "x");
  Cell<int> Y(RT, 1, "y");
  Maintained<int(int)> FX(
      RT, [&](int) { return X.get(); }, EvalStrategy::Eager, "fx");
  Maintained<int(int)> FY(
      RT, [&](int) { return Y.get(); }, EvalStrategy::Eager, "fy");
  EXPECT_EQ(FX(0), 1);
  EXPECT_EQ(FY(0), 1);

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("fx", /*AtNthHit=*/1);

  X.set(2);
  Y.set(2);
  RT.pump(); // fx's recompute throws mid-drain.

  // fx is quarantined, but the unrelated partition converged in the same
  // pump and the graph's invariants held up through the unwind.
  EXPECT_TRUE(FX.instanceNode(0)->isQuarantined());
  EXPECT_EQ(FY(0), 2);
  EXPECT_TRUE(FY.hasCachedValue(0));
  EXPECT_EQ(RT.graph().numQuarantined(), 1u);
  EXPECT_TRUE(RT.graph().verify().empty());
  EXPECT_TRUE(RT.graph().diagnostics().hasErrors());

  // Subsequent mutations still converge for healthy nodes.
  Y.set(3);
  RT.pump();
  EXPECT_EQ(FY(0), 3);

  // Recovery: reset, then the next pump re-executes fx against live state.
  Inj.disarm("fx");
  EXPECT_EQ(RT.graph().resetAllQuarantined(), 1u);
  RT.pump();
  EXPECT_EQ(FX(0), 2);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(FaultInjectionTest, StorageRefreshFaultQuarantinesAndRecovers) {
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> F(
      RT, [&](int) { return C.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 1);

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("c"); // The snapshot refresh throws.

  C.set(2);
  RT.pump();
  ASSERT_NE(C.node(), nullptr);
  EXPECT_TRUE(C.node()->isQuarantined());
  // The dependent was queued at quarantine time and recomputed against
  // the live value, so it did not silently keep the stale result.
  EXPECT_EQ(F(0), 2);
  EXPECT_TRUE(RT.graph().verify().empty());

  // While quarantined, the location no longer participates in propagation.
  C.set(3);
  RT.pump();
  EXPECT_EQ(F(0), 2);

  EXPECT_TRUE(RT.graph().resetQuarantined(*C.node()));
  RT.pump();
  EXPECT_EQ(F(0), 3);
}

TEST(FaultInjectionTest, PoisonCascadesToDependentsOnDemand) {
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> A(
      RT, [&](int) { return C.get(); }, EvalStrategy::Demand, "a");
  Maintained<int(int)> B(
      RT, [&](int X) { return A(X) + 1; }, EvalStrategy::Demand, "b");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("a");
  EXPECT_THROW(A(0), InjectedFault); // Quarantine a first...

  EXPECT_THROW(B(0), QuarantinedError); // ...then b trips over it.
  const FaultInfo *FB = RT.graph().fault(*B.instanceNode(0));
  ASSERT_NE(FB, nullptr);
  EXPECT_EQ(FB->Kind, FaultKind::Poisoned);
  EXPECT_EQ(RT.graph().numQuarantined(), 2u);
  EXPECT_EQ(RT.graph().quarantined().size(), 2u);

  // Resetting both brings the whole chain back.
  EXPECT_EQ(RT.graph().resetAllQuarantined(), 2u);
  EXPECT_EQ(B(0), 2);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
}

TEST(FaultInjectionTest, DivergenceIsQuarantinedWithDiagnostic) {
  DepGraph::Config Cfg;
  Cfg.MaxReexecutions = 3;
  Runtime RT(Cfg);
  Cell<int> C(RT, 0, "c");
  Maintained<int(int)> F(
      RT, [&](int) { return C.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 0);

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armDiverge("f"); // Every recompute self-invalidates.

  C.set(1);
  RT.pump(); // Terminates: the fourth re-execution trips the limit.

  DepNode *N = F.instanceNode(0);
  ASSERT_NE(N, nullptr);
  EXPECT_TRUE(N->isQuarantined());
  const FaultInfo *FI = RT.graph().fault(*N);
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Divergence);
  EXPECT_NE(FI->Message.find("DET"), std::string::npos);
  EXPECT_EQ(RT.stats().DivergenceTrips, 1u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // Recovery once the fault is fixed (injector disarmed).
  Inj.disarm("f");
  EXPECT_TRUE(RT.graph().resetQuarantined(*N));
  RT.pump();
  EXPECT_EQ(F(0), 1);
}

TEST(FaultInjectionTest, ReentrantCycleThrowsCycleErrorAndQuarantines) {
  DepGraph::Config Cfg;
  Cfg.MaxReentrantDepth = 8;
  Runtime RT(Cfg);
  Maintained<int(int)> *Self = nullptr;
  Maintained<int(int)> F(
      RT,
      [&](int X) -> int {
        if (X == 0)
          return (*Self)(0); // Same arguments: demands its own value.
        return X;
      },
      EvalStrategy::Demand, "f");
  Self = &F;

  EXPECT_THROW(F(0), CycleError);
  EXPECT_EQ(RT.callDepth(), 0u); // Every re-entrant frame unwound.
  DepNode *N = F.instanceNode(0);
  ASSERT_NE(N, nullptr);
  EXPECT_TRUE(N->isQuarantined());
  EXPECT_EQ(N->reentrantDepth(), 0u);
  EXPECT_EQ(RT.graph().fault(*N)->Kind, FaultKind::Cycle);
  EXPECT_EQ(RT.stats().CycleFaults, 1u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // A non-cyclic instance of the same procedure still works.
  EXPECT_EQ(F(7), 7);
}

TEST(FaultInjectionTest, StepLimitTripProducesStructuredDiagnostic) {
  DepGraph::Config Cfg;
  Cfg.EvalStepLimit = 20;
  Cfg.MaxReexecutions = 0; // Isolate the global backstop.
  Runtime RT(Cfg);
  Cell<int> C(RT, 0, "c");
  bool Stop = false;
  Maintained<int(int)> F(
      RT,
      [&](int) {
        int V = C.get();
        if (!Stop)
          C.set(V + 1); // Writes what it reads: never converges.
        return V;
      },
      EvalStrategy::Eager, "f");
  F(0);
  RT.pump(); // Would loop forever without the limit.

  EXPECT_EQ(RT.stats().StepLimitTrips, 1u);
  EXPECT_EQ(RT.graph().numQuarantined(), 1u);
  // The abort is reported as a structured diagnostic naming the limit.
  ASSERT_TRUE(RT.graph().diagnostics().hasErrors());
  EXPECT_NE(RT.graph().diagnostics().str().find("EvalStepLimit"),
            std::string::npos);
  EXPECT_TRUE(RT.graph().verify().empty());

  // Fix the program, reset, and the next pump converges.
  Stop = true;
  RT.graph().resetAllQuarantined();
  RT.pump();
  EXPECT_EQ(RT.graph().numPending(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(FaultInjectionTest, AuditAfterEvaluateStaysClean) {
  DepGraph::Config Cfg;
  Cfg.AuditAfterEvaluate = true;
  Runtime RT(Cfg);
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> F(
      RT, [&](int X) { return C.get() * X; }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(2), 2);
  C.set(5);
  RT.pump();
  EXPECT_EQ(F(2), 10);

  // Fault storm, then audit again: the invariants must have survived.
  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("f");
  C.set(7);
  RT.pump();
  Inj.disarm("f");
  RT.graph().resetAllQuarantined();
  RT.pump();
  EXPECT_EQ(F(2), 14);

  // Quarantine reports are expected in the log; audit findings are not.
  EXPECT_EQ(RT.graph().diagnostics().str().find("audit:"), std::string::npos);
}

TEST(FaultInjectionTest, UncheckedScopeUnwindsBalanced) {
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  bool Throw = true;
  Maintained<int(int)> F(
      RT,
      [&](int X) {
        UncheckedScope Unchecked(RT);
        if (Throw)
          throw std::runtime_error("body failure inside unchecked region");
        return C.get() + X;
      },
      EvalStrategy::Demand, "f");

  EXPECT_EQ(RT.callDepth(), 0u);
  EXPECT_THROW(F(1), std::runtime_error);
  // Both the unchecked frame and the instance frame popped during
  // unwinding; the fault was still captured.
  EXPECT_EQ(RT.callDepth(), 0u);
  EXPECT_TRUE(F.instanceNode(1)->isQuarantined());
  EXPECT_EQ(RT.graph().fault(*F.instanceNode(1))->Kind,
            FaultKind::Exception);

  Throw = false;
  RT.graph().resetAllQuarantined();
  EXPECT_EQ(F(1), 2);
  EXPECT_EQ(RT.callDepth(), 0u);
}

TEST(FaultInjectionTest, DestroyingQuarantinedNodeCleansUp) {
  Runtime RT;
  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  {
    Maintained<int(int)> F(
        RT, [&](int X) { return X; }, EvalStrategy::Demand, "f");
    Inj.armThrow("f");
    EXPECT_THROW(F(0), InjectedFault);
    EXPECT_EQ(RT.graph().numQuarantined(), 1u);
  }
  // The instance died with its Maintained; no dangling fault records.
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_EQ(RT.graph().numLiveNodes(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(FaultInjectionTest, InjectorCountsHitsDeterministically) {
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> F(
      RT, [&](int) { return C.get(); }, EvalStrategy::Eager, "f");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("f", /*AtNthHit=*/3); // Survive two recomputes, fail the 3rd.

  EXPECT_EQ(F(0), 1); // Hit 1.
  C.set(2);
  RT.pump(); // Hit 2.
  EXPECT_EQ(F(0), 2);
  C.set(3);
  RT.pump(); // Hit 3: throws inside the drain, quarantined.
  EXPECT_EQ(Inj.hitCount("f"), 3u);
  EXPECT_EQ(Inj.firedCount(), 1u);
  EXPECT_TRUE(F.instanceNode(0)->isQuarantined());
}

TEST(FaultInjectionTest, QuarantineRecoveryUnderRepeatedFaults) {
  // A node that faults, is reset, faults again on the retry, is reset
  // again, and only then succeeds: every round must leave coherent
  // FaultInfo, statistics, and dependent values.
  Runtime RT;
  Cell<int> C(RT, 1, "c");
  Maintained<int(int)> F(
      RT, [&](int X) { return C.get() + X; }, EvalStrategy::Demand, "f");
  Maintained<int(int)> G(
      RT, [&](int X) { return F(X) * 10; }, EvalStrategy::Demand, "g");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("f", /*AtNthHit=*/1, /*Times=*/2); // Two consecutive faults.

  // Round 1: the first execution faults; the exception cascades through
  // the in-flight dependent, quarantining both frames as it unwinds.
  EXPECT_THROW(G(5), InjectedFault);
  DepNode *NF = F.instanceNode(5);
  ASSERT_NE(NF, nullptr);
  EXPECT_TRUE(NF->isQuarantined());
  EXPECT_EQ(RT.graph().fault(*NF)->Kind, FaultKind::Exception);
  EXPECT_EQ(RT.graph().numQuarantined(), 2u);
  EXPECT_EQ(RT.stats().NodesQuarantined, 2u);
  EXPECT_TRUE(RT.graph().verify().empty());
  // Re-calling while quarantined surfaces the recorded fault instead.
  EXPECT_THROW(G(5), QuarantinedError);

  // Round 2: reset everything; the retry faults again (Times = 2). The
  // fresh FaultInfo replaces the old one and the counters keep moving.
  EXPECT_EQ(RT.graph().resetAllQuarantined(), 2u);
  EXPECT_EQ(RT.stats().QuarantineResets, 2u);
  EXPECT_THROW(G(5), InjectedFault);
  EXPECT_TRUE(NF->isQuarantined());
  EXPECT_EQ(RT.graph().fault(*NF)->Kind, FaultKind::Exception);
  EXPECT_EQ(RT.graph().numQuarantined(), 2u);
  EXPECT_EQ(RT.stats().NodesQuarantined, 4u);
  EXPECT_EQ(Inj.hitCount("f"), 2u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // Round 3: reset again; the injector is exhausted, so this one sticks.
  EXPECT_EQ(RT.graph().resetAllQuarantined(), 2u);
  EXPECT_EQ(G(5), 60);
  EXPECT_EQ(F(5), 6);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_EQ(RT.stats().QuarantineResets, 4u);
  EXPECT_TRUE(RT.graph().verify().empty());

  // The recovered values track later mutations like any healthy node.
  C.set(2);
  EXPECT_EQ(G(5), 70);
}

TEST(RuntimeDeathTest, PopCallUnderflowIsFatalInReleaseBuilds) {
  Runtime RT;
  EXPECT_DEATH(RT.popCall(), "underflow");
}

} // namespace
} // namespace alphonse
