//===- TransactionTest.cpp - Transactional mutation batch tests -----------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for transactional mutation batches (DESIGN.md "Transactions and
/// recovery"): commit applies a batch atomically, any fault during the
/// batch or its commit propagation rolls every observable back to the
/// pre-batch quiescent state (verified by DepGraph::verify()), versions
/// and epochs track batch outcomes, and a fault-free retry of the same
/// batch commits.
///
//===----------------------------------------------------------------------===//

#include "core/Alphonse.h"
#include "support/FaultInjector.h"
#include "trees/HeightTree.h"

#include <gtest/gtest.h>

namespace alphonse {
namespace {

TEST(TransactionTest, CommitAppliesBatchAtomically) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Cell<int> B(RT, 2, "b");
  Maintained<int(int)> F(
      RT, [&](int) { return A.get() + B.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 3);
  RT.pump();
  uint64_t E0 = RT.epoch();

  RT.beginBatch();
  EXPECT_TRUE(RT.inBatch());
  A.set(10);
  B.set(20);
  EXPECT_TRUE(RT.commitBatch());
  EXPECT_FALSE(RT.inBatch());

  EXPECT_EQ(F(0), 30);
  EXPECT_EQ(RT.epoch(), E0 + 1);
  EXPECT_EQ(RT.stats().TxnBegun, 1u);
  EXPECT_EQ(RT.stats().TxnCommitted, 1u);
  EXPECT_EQ(RT.stats().TxnRolledBack, 0u);
  EXPECT_GT(RT.stats().TxnUndoEntries, 0u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, ExplicitRollbackRestoresValues) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> F(
      RT, [&](int X) { return A.get() * X; }, EvalStrategy::Demand, "f");
  EXPECT_EQ(F(3), 3);
  uint64_t E0 = RT.epoch();

  RT.beginBatch();
  A.set(7);
  EXPECT_EQ(F(3), 21); // The batch observes its own writes.
  RT.rollbackBatch();

  EXPECT_EQ(A.peek(), 1);
  EXPECT_EQ(F(3), 3);
  EXPECT_EQ(RT.epoch(), E0 + 1);
  EXPECT_EQ(RT.stats().TxnRolledBack, 1u);
  EXPECT_EQ(RT.graph().numPending(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, TransactionGuardRollsBackOnUnwind) {
  Runtime RT;
  Cell<int> A(RT, 5, "a");
  {
    Transaction Txn(RT);
    A.set(99);
    EXPECT_EQ(A.peek(), 99);
    // No commit: the guard's destructor must roll back (as it would if an
    // exception unwound through this scope).
  }
  EXPECT_EQ(A.peek(), 5);
  EXPECT_FALSE(RT.inBatch());
  EXPECT_EQ(RT.stats().TxnRolledBack, 1u);
}

TEST(TransactionTest, FaultDuringCommitRollsBackAndRetryCommits) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Cell<int> B(RT, 2, "b");
  Maintained<int(int)> F(
      RT, [&](int) { return A.get() + B.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 3);
  RT.pump();
  uint64_t E0 = RT.epoch();
  uint64_t Steps0 = RT.stats().ProcExecutions;

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("f"); // The eager re-execution during commit throws.

  {
    Transaction Txn(RT);
    A.set(10);
    B.set(20);
    EXPECT_FALSE(Txn.commit());
  }

  // Every observable is exactly as before the batch.
  EXPECT_EQ(A.peek(), 1);
  EXPECT_EQ(B.peek(), 2);
  EXPECT_EQ(F(0), 3); // Served from the restored cache.
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_EQ(RT.graph().numPending(), 0u);
  EXPECT_TRUE(RT.graph().verify().empty());
  EXPECT_EQ(RT.epoch(), E0 + 1);
  EXPECT_EQ(RT.stats().TxnRolledBack, 1u);
  const FaultInfo *FI = RT.graph().abortFault();
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Exception);
  EXPECT_EQ(FI->NodeName, "f");
  // The restored cache still answers without re-executing.
  EXPECT_EQ(RT.stats().ProcExecutions, Steps0 + 1); // Only the faulted run.

  // Retry of the same batch without the fault (the injector fires once).
  {
    Transaction Txn(RT);
    A.set(10);
    B.set(20);
    EXPECT_TRUE(Txn.commit());
  }
  EXPECT_EQ(F(0), 30);
  EXPECT_EQ(RT.stats().TxnCommitted, 1u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, MidBatchDemandFaultRollsBack) {
  Runtime RT;
  Cell<int> C(RT, 4, "c");
  Maintained<int(int)> G(
      RT, [&](int X) { return C.get() + X; }, EvalStrategy::Demand, "g");
  EXPECT_EQ(G(1), 5);
  uint64_t V0 = G.instanceNode(1)->version();

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("g");

  Transaction Txn(RT);
  C.set(40);
  EXPECT_THROW(G(1), InjectedFault); // Demand inside the batch faults.
  EXPECT_FALSE(Txn.commit());        // The fault poisons the batch.

  EXPECT_EQ(C.peek(), 4);
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  ASSERT_NE(G.instanceNode(1), nullptr);
  EXPECT_EQ(G.instanceNode(1)->version(), V0); // Version rolled back too.
  EXPECT_EQ(G(1), 5);
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, RollbackDestroysNodesCreatedInBatch) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> F(
      RT, [&](int X) { return A.get() + X; }, EvalStrategy::Demand, "f");
  EXPECT_EQ(F(0), 1); // Pre-batch: node for key 0 plus a's storage node.
  size_t Nodes0 = RT.graph().numLiveNodes();
  size_t Edges0 = RT.graph().numLiveEdges();

  RT.beginBatch();
  EXPECT_EQ(F(7), 8); // Creates the key-7 instance node inside the batch.
  EXPECT_EQ(F.numInstances(), 2u);
  RT.rollbackBatch();

  EXPECT_EQ(F.numInstances(), 1u); // The in-batch instance is gone.
  EXPECT_EQ(RT.graph().numLiveNodes(), Nodes0);
  EXPECT_EQ(RT.graph().numLiveEdges(), Edges0);
  EXPECT_EQ(F.instanceNode(7), nullptr);
  EXPECT_TRUE(RT.graph().verify().empty());
  EXPECT_EQ(F(0), 1);
}

TEST(TransactionTest, CommitSiteFaultInjectionAbortsBatch) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> F(
      RT, [&](int) { return A.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 1);
  RT.pump();

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("txn.commit"); // Fault at the commit boundary itself.

  Transaction Txn(RT);
  A.set(2);
  EXPECT_FALSE(Txn.commit());
  EXPECT_EQ(A.peek(), 1);
  EXPECT_EQ(F(0), 1);
  const FaultInfo *FI = RT.graph().abortFault();
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->NodeName, "txn.commit");
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, PreexistingQuarantineSurvivesRollback) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Cell<int> B(RT, 2, "b");
  Maintained<int(int)> Bad(
      RT, [&](int) { return A.get(); }, EvalStrategy::Demand, "bad");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("bad");
  EXPECT_THROW(Bad(0), InjectedFault); // Quarantined before any batch.
  ASSERT_EQ(RT.graph().numQuarantined(), 1u);

  // A rolled-back batch must not disturb the pre-existing quarantine.
  Transaction Txn(RT);
  B.set(20);
  Txn.rollback();
  EXPECT_EQ(RT.graph().numQuarantined(), 1u);
  const FaultInfo *FI = RT.graph().fault(*Bad.instanceNode(0));
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->NodeName, "bad");
  EXPECT_TRUE(RT.graph().verify().empty());
}

TEST(TransactionTest, QuarantineResetInsideBatchIsReimposedOnRollback) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> Bad(
      RT, [&](int) { return A.get(); }, EvalStrategy::Demand, "bad");

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  Inj.armThrow("bad");
  EXPECT_THROW(Bad(0), InjectedFault);
  DepNode *N = Bad.instanceNode(0);
  ASSERT_NE(N, nullptr);

  // The batch resets the quarantine (recovery work), then rolls back: the
  // quarantine must be re-imposed with the original fault preserved.
  RT.beginBatch();
  EXPECT_TRUE(RT.graph().resetQuarantined(*N));
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  RT.rollbackBatch();

  EXPECT_TRUE(N->isQuarantined());
  ASSERT_EQ(RT.graph().numQuarantined(), 1u);
  const FaultInfo *FI = RT.graph().fault(*N);
  ASSERT_NE(FI, nullptr);
  EXPECT_EQ(FI->Kind, FaultKind::Exception);
  EXPECT_EQ(FI->NodeName, "bad");
  EXPECT_TRUE(RT.graph().verify().empty());

  // And the standard recovery path still works after the rollback.
  EXPECT_TRUE(RT.graph().resetQuarantined(*N));
  EXPECT_EQ(Bad(0), 1);
}

TEST(TransactionTest, VersionAndEpochTrackBatchOutcomes) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> F(
      RT, [&](int) { return A.get(); }, EvalStrategy::Eager, "f");
  EXPECT_EQ(F(0), 1);
  RT.pump();
  DepNode *N = F.instanceNode(0);
  ASSERT_NE(N, nullptr);
  uint64_t V0 = N->version();
  uint64_t E0 = RT.epoch();

  // Rolled-back batch: the version stamp returns to its pre-batch value,
  // the epoch still advances (so epoch-keyed caches know something ran).
  RT.beginBatch();
  A.set(2);
  RT.graph().evaluateAll();
  EXPECT_NE(N->version(), V0);
  RT.rollbackBatch();
  EXPECT_EQ(N->version(), V0);
  EXPECT_EQ(RT.epoch(), E0 + 1);

  // Committed batch: the version moves forward for good.
  RT.beginBatch();
  A.set(3);
  EXPECT_TRUE(RT.commitBatch());
  EXPECT_NE(N->version(), V0);
  EXPECT_EQ(RT.epoch(), E0 + 2);
  EXPECT_EQ(F(0), 3);
}

TEST(TransactionTest, HeightTreeBatchFaultLeavesHeightsIntact) {
  Runtime RT;
  trees::HeightTree T(RT);
  // A small left spine: h(Root) = 3.
  auto *Root = T.makeNode();
  auto *Mid = T.makeNode();
  auto *Leaf = T.makeNode();
  T.setLeft(Root, Mid);
  T.setLeft(Mid, Leaf);
  EXPECT_EQ(T.height(Root), 3);
  RT.pump();

  FaultInjector Inj;
  FaultInjector::Scope Active(Inj);
  // Third height recompute demanded inside the batch throws.
  Inj.armThrow("Tree.height", /*AtNthHit=*/3);

  {
    Transaction Txn(RT);
    auto *NewLeaf = T.makeNode();
    T.setRight(Mid, NewLeaf);
    T.setRight(Root, T.makeNode());
    EXPECT_THROW(T.height(Root), InjectedFault);
    EXPECT_FALSE(Txn.commit());
    // The new nodes' cells survive (the tree pool owns them) but all
    // tracked pointers and cached heights are pre-batch again.
  }
  EXPECT_EQ(Mid->Right.peek(), T.nil());
  EXPECT_EQ(Root->Right.peek(), T.nil());
  EXPECT_EQ(RT.graph().numQuarantined(), 0u);
  EXPECT_EQ(T.height(Root), 3);
  EXPECT_EQ(T.height(Root),
            trees::HeightTree::exhaustiveHeight(Root, T.nil()));
  EXPECT_TRUE(RT.graph().verify().empty());

  // Fault-free retry commits and the heights update.
  {
    Transaction Txn(RT);
    auto *NewLeaf = T.makeNode();
    auto *Deep = T.makeNode();
    T.setLeft(Leaf, NewLeaf);
    T.setLeft(NewLeaf, Deep);
    EXPECT_TRUE(Txn.commit());
  }
  EXPECT_EQ(T.height(Root), 5);
  EXPECT_EQ(T.height(Root),
            trees::HeightTree::exhaustiveHeight(Root, T.nil()));
}

TEST(TransactionTest, LruEvictionIsDeferredDuringBatch) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Maintained<int(int)> F(
      RT, [&](int X) { return A.get() + X; }, EvalStrategy::Demand, "f");
  F.setCapacity(2);
  EXPECT_EQ(F(1), 2);
  EXPECT_EQ(F(2), 3);

  RT.beginBatch();
  EXPECT_EQ(F(3), 4);
  EXPECT_EQ(F(4), 5);
  // Over capacity, but eviction would destroy nodes the journal
  // references; it must wait for the batch to resolve.
  EXPECT_GT(F.numInstances(), 2u);
  RT.rollbackBatch();
  EXPECT_EQ(F.numInstances(), 2u); // In-batch instances rolled away.

  // Post-batch calls trim the table again.
  EXPECT_EQ(F(5), 6);
  EXPECT_LE(F.numInstances(), 3u);
  EXPECT_TRUE(RT.graph().verify().empty());
}

} // namespace
} // namespace alphonse
