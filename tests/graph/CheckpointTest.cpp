//===- CheckpointTest.cpp - Checkpoint roundtrip and corruption tests -----===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Roundtrip fidelity of the checkpoint subsystem plus the corruption
// property: a checkpoint file that has been truncated at any length,
// bit-flipped at any offset, or stamped with a wrong format version is
// either rejected with a structured CheckpointError or (when the damage
// missed all meaningful bytes, e.g. alignment padding) restores to an
// equivalent state. It never crashes and never yields a torn graph.
//
//===----------------------------------------------------------------------===//

#include "CheckpointTestHost.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

using namespace alphonse;
using namespace alphonse::ckpttest;

namespace {

/// A unique temp path per test, removed (with its delta sidecar) on exit.
class TempCheckpoint {
public:
  explicit TempCheckpoint(const std::string &Stem) {
    const char *Dir = std::getenv("TMPDIR");
    Path = std::string(Dir ? Dir : "/tmp") + "/" + Stem + "." +
           std::to_string(::getpid()) + ".ckpt";
  }
  ~TempCheckpoint() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
    std::remove(deltaLogPath(Path).c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

std::vector<uint8_t> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good());
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

TEST(CheckpointTest, RoundtripPreservesValuesAndGraph) {
  TempCheckpoint File("ckpt-roundtrip");
  CheckpointHost A(8);
  A.touchAll();
  for (size_t I = 0; I < 8; ++I)
    *A.Cells[I] = static_cast<int>(10 * I + 1);
  A.RT.pump();
  std::string Before = A.fingerprint();
  A.save(File.path());

  CheckpointHost B(8);
  B.restore(File.path());
  EXPECT_TRUE(B.RestoreNote.empty());
  EXPECT_TRUE(B.RT.graph().verify().empty());
  EXPECT_EQ(Before, B.fingerprint());

  // The restored graph keeps working incrementally: one write, cheap
  // re-demand, correct values.
  *B.Cells[3] = 1000;
  EXPECT_EQ(B.Sum(7), 7 + 1 + 11 + 21 + 1000 + 41 + 51 + 61 + 71);
}

TEST(CheckpointTest, RoundtripPreservesConsistencyBits) {
  TempCheckpoint File("ckpt-consistency");
  CheckpointHost A(4);
  A.touchAll();
  *A.Cells[2] = 99; // Sums 2 and 3 go stale; 0 and 1 stay consistent.
  A.save(File.path());

  CheckpointHost B(4);
  B.restore(File.path());
  EXPECT_TRUE(B.Sum.hasCachedValue(0));
  EXPECT_TRUE(B.Sum.hasCachedValue(1));
  EXPECT_FALSE(B.Sum.hasCachedValue(2));
  EXPECT_FALSE(B.Sum.hasCachedValue(3));
  EXPECT_EQ(B.Sum(3), 3 + 0 + 0 + 99 + 0);
}

TEST(CheckpointTest, RoundtripPreservesQuarantine) {
  TempCheckpoint File("ckpt-quarantine");
  CheckpointHost A(3, EvalStrategy::Eager);
  A.touchAll();
  {
    FaultInjector FI;
    FI.armThrow("sum", 1);
    FaultInjector::Scope Scope(FI);
    *A.Cells[0] = 5; // Eager propagation re-runs a sum; it throws.
    A.RT.pump();     // The faulting instance is quarantined mid-drain.
  }
  A.RT.pump();
  ASSERT_GT(A.RT.graph().numQuarantined(), 0u);
  size_t NumQuarantined = A.RT.graph().numQuarantined();
  A.save(File.path());

  CheckpointHost B(3, EvalStrategy::Eager);
  B.restore(File.path());
  EXPECT_EQ(B.RT.graph().numQuarantined(), NumQuarantined);
  EXPECT_TRUE(B.RT.graph().verify().empty());
}

TEST(CheckpointTest, DeltaRoundtrip) {
  TempCheckpoint File("ckpt-delta");
  CheckpointHost A(6);
  A.touchAll();
  A.save(File.path());
  for (int Round = 0; Round < 3; ++Round) {
    *A.Cells[static_cast<size_t>(Round)] = 100 + Round;
    A.appendDelta(File.path());
  }
  std::string Want = A.fingerprint();

  CheckpointHost B(6);
  B.restore(File.path());
  EXPECT_TRUE(B.RestoreNote.empty());
  EXPECT_EQ(Want, B.fingerprint());
}

TEST(CheckpointTest, RestoreRejectsWrongExtent) {
  TempCheckpoint File("ckpt-extent");
  CheckpointHost A(4);
  A.touchAll();
  A.save(File.path());
  CheckpointHost B(5);
  try {
    B.restore(File.path());
    FAIL() << "restore into a different extent must throw";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Malformed);
  }
}

TEST(CheckpointTest, MissingFileIsStructuredError) {
  try {
    CheckpointHost B(2);
    B.restore("/nonexistent/path/to/checkpoint.ckpt");
    FAIL() << "missing file must throw";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::Io);
  }
}

TEST(CheckpointTest, WrongVersionIsRejectedAsBadVersion) {
  TempCheckpoint File("ckpt-version");
  {
    CheckpointHost A(3);
    A.touchAll();
    A.save(File.path());
  }
  std::vector<uint8_t> Bytes = slurp(File.path());
  ASSERT_GT(Bytes.size(), 12u);
  Bytes[8] += 1; // Format version field (little-endian u32 at offset 8).
  spit(File.path(), Bytes);
  try {
    CheckpointHost B(3);
    B.restore(File.path());
    FAIL() << "future-version file must be refused";
  } catch (const CheckpointError &E) {
    EXPECT_EQ(E.code(), CkptError::BadVersion);
  }
}

TEST(CheckpointTest, GarbageFileIsRejected) {
  TempCheckpoint File("ckpt-garbage");
  spit(File.path(), {'n', 'o', 't', ' ', 'a', ' ', 'c', 'k', 'p', 't'});
  try {
    CheckpointHost B(3);
    B.restore(File.path());
    FAIL() << "garbage must be refused";
  } catch (const CheckpointError &E) {
    EXPECT_TRUE(E.code() == CkptError::BadMagic ||
                E.code() == CkptError::Truncated);
  }
}

// The corruption property: every truncation length rejects cleanly.
TEST(CheckpointTest, TruncationAtAnyLengthIsRejected) {
  TempCheckpoint File("ckpt-truncate");
  {
    CheckpointHost A(6);
    A.touchAll();
    for (size_t I = 0; I < 6; ++I)
      *A.Cells[I] = static_cast<int>(I + 7);
    A.save(File.path());
  }
  std::vector<uint8_t> Good = slurp(File.path());
  ASSERT_GT(Good.size(), 64u);

  // Every length below the header, then a sweep above it.
  std::vector<size_t> Lengths;
  for (size_t L = 0; L < 40; ++L)
    Lengths.push_back(L);
  for (size_t L = 40; L < Good.size(); L += 13)
    Lengths.push_back(L);
  for (size_t L : Lengths) {
    spit(File.path(),
         std::vector<uint8_t>(Good.begin(),
                              Good.begin() + static_cast<long>(L)));
    CheckpointHost B(6);
    EXPECT_THROW(B.restore(File.path()), CheckpointError)
        << "truncation to " << L << " bytes must be rejected";
  }
}

// Every single-byte flip either rejects cleanly or restores to the same
// state (the flip landed in bytes no consumer reads, e.g. alignment
// padding). Never a crash, never a different accepted state.
TEST(CheckpointTest, BitFlipAtAnyOffsetRejectsOrRestoresEquivalently) {
  TempCheckpoint File("ckpt-bitflip");
  std::string Want;
  {
    CheckpointHost A(5);
    A.touchAll();
    for (size_t I = 0; I < 5; ++I)
      *A.Cells[I] = static_cast<int>(3 * I + 2);
    Want = A.fingerprint();
    A.save(File.path());
  }
  std::vector<uint8_t> Good = slurp(File.path());

  for (size_t Off = 0; Off < Good.size(); Off += 3) {
    std::vector<uint8_t> Bad = Good;
    Bad[Off] ^= 0x20;
    spit(File.path(), Bad);
    CheckpointHost B(5);
    try {
      B.restore(File.path());
      // Accepted: the flip must have been meaningless. Same state, clean
      // audit — anything else is a torn load.
      EXPECT_TRUE(B.RT.graph().verify().empty())
          << "flip at " << Off << " accepted an inconsistent graph";
      EXPECT_EQ(Want, B.fingerprint())
          << "flip at " << Off << " accepted a different state";
    } catch (const CheckpointError &) {
      // Structured rejection: the expected outcome.
    }
  }
}

// A torn delta tail (simulated truncation) degrades to the intact prefix
// with a note, never an error.
TEST(CheckpointTest, TornDeltaTailDegradesWithNote) {
  TempCheckpoint File("ckpt-torn-delta");
  CheckpointHost A(4);
  A.touchAll();
  A.save(File.path());
  *A.Cells[0] = 11;
  A.appendDelta(File.path());
  std::string AfterFirst = A.fingerprint();
  *A.Cells[1] = 22;
  A.appendDelta(File.path());

  std::vector<uint8_t> Log = slurp(deltaLogPath(File.path()));
  spit(deltaLogPath(File.path()),
       std::vector<uint8_t>(Log.begin(),
                            Log.begin() + static_cast<long>(Log.size() - 5)));

  CheckpointHost B(4);
  B.restore(File.path());
  EXPECT_FALSE(B.RestoreNote.empty());
  EXPECT_EQ(AfterFirst, B.fingerprint());
}

} // namespace
