//===- DebugDumpTest.cpp - Provenance dump tests --------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "graph/DebugDump.h"

#include "core/Alphonse.h"

#include <gtest/gtest.h>

#include <sstream>

namespace alphonse {
namespace {

TEST(DebugDumpTest, DescribesKindsAndState) {
  Runtime RT;
  Cell<int> C(RT, 1, "theCell");
  Maintained<int()> F(
      RT, [&C] { return C.get(); }, EvalStrategy::Demand, "theProc");
  F();
  ASSERT_NE(C.node(), nullptr);
  std::string CellDesc = describeNode(*C.node());
  EXPECT_NE(CellDesc.find("theCell"), std::string::npos);
  EXPECT_NE(CellDesc.find("[storage"), std::string::npos);
  std::string ProcDesc = describeNode(*F.instanceNode());
  EXPECT_NE(ProcDesc.find("theProc"), std::string::npos);
  EXPECT_NE(ProcDesc.find("demand"), std::string::npos);
  EXPECT_NE(ProcDesc.find("consistent"), std::string::npos);
  C.set(2);
  RT.pump();
  EXPECT_NE(describeNode(*F.instanceNode()).find("INCONSISTENT"),
            std::string::npos);
}

TEST(DebugDumpTest, ShowsProvenanceTree) {
  Runtime RT;
  Cell<int> A(RT, 1, "a");
  Cell<int> B(RT, 2, "b");
  Maintained<int()> Mid(
      RT, [&] { return A.get() + B.get(); }, EvalStrategy::Demand, "mid");
  Maintained<int()> Top(
      RT, [&] { return Mid() * 10; }, EvalStrategy::Demand, "top");
  Top();
  std::ostringstream OS;
  dumpDependencies(OS, *Top.instanceNode());
  std::string Out = OS.str();
  EXPECT_NE(Out.find("top"), std::string::npos);
  EXPECT_NE(Out.find("mid"), std::string::npos);
  EXPECT_NE(Out.find("a [storage"), std::string::npos);
  EXPECT_NE(Out.find("b [storage"), std::string::npos);
  // Indentation: "mid" is one level down, "a" two.
  EXPECT_NE(Out.find("\n  mid"), std::string::npos);
  EXPECT_NE(Out.find("\n    a"), std::string::npos);
}

TEST(DebugDumpTest, SharedNodesRenderedOnce) {
  Runtime RT;
  Cell<int> X(RT, 1, "x");
  Maintained<int()> G(
      RT, [&] { return X.get(); }, EvalStrategy::Demand, "g");
  Maintained<int()> H(
      RT, [&] { return X.get(); }, EvalStrategy::Demand, "h");
  Maintained<int()> F(
      RT, [&] { return G() + H(); }, EvalStrategy::Demand, "f");
  F();
  std::ostringstream OS;
  dumpDependencies(OS, *F.instanceNode());
  std::string Out = OS.str();
  // x appears under g, then under h as a back-reference.
  EXPECT_NE(Out.find("(shown above)"), std::string::npos);
}

TEST(DebugDumpTest, DepthAndFanInLimits) {
  Runtime RT;
  std::vector<std::unique_ptr<Cell<int>>> Cells;
  for (int I = 0; I < 30; ++I)
    Cells.push_back(std::make_unique<Cell<int>>(RT, I, "c"));
  Maintained<int()> Wide(
      RT,
      [&] {
        int S = 0;
        for (auto &C : Cells)
          S += C->get();
        return S;
      },
      EvalStrategy::Demand, "wide");
  Wide();
  DumpOptions Opts;
  Opts.MaxFanIn = 5;
  std::ostringstream OS;
  dumpDependencies(OS, *Wide.instanceNode(), Opts);
  EXPECT_NE(OS.str().find("more dependencies"), std::string::npos);
}

} // namespace
} // namespace alphonse
