//===- CheckpointTestHost.h - Shared checkpoint test fixture ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small typed-layer program used by the checkpoint, crash-recovery, and
/// replay tests: N integer Cells plus one Maintained prefix-sum procedure.
/// It implements the full save/restore protocol the way any embedding
/// client would — capture the graph with GraphCheckpoint, serialize its
/// own typed state alongside it, and on restore recreate the cells and
/// instances, bind them to their captured ids, and let GraphRestorer
/// re-apply the engine state behind verify().
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TESTS_GRAPH_CHECKPOINTTESTHOST_H
#define ALPHONSE_TESTS_GRAPH_CHECKPOINTTESTHOST_H

#include "core/Alphonse.h"
#include "graph/Checkpoint.h"
#include "support/CheckpointIO.h"

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace alphonse::ckpttest {

constexpr uint32_t TagGraph = sectionTag('G', 'R', 'P', 'H');
constexpr uint32_t TagCells = sectionTag('C', 'E', 'L', 'L');
constexpr uint32_t TagMant = sectionTag('M', 'A', 'N', 'T');

/// N cells and Sum(k) = k + sum of cells 0..k.
class CheckpointHost {
public:
  explicit CheckpointHost(size_t NumCells,
                          EvalStrategy Strategy = EvalStrategy::Demand,
                          DepGraph::Config Cfg = DepGraph::Config())
      : RT(Cfg), Sum(
                     RT,
                     [this](int K) {
                       int S = K;
                       for (int I = 0; I <= K &&
                                       I < static_cast<int>(Cells.size());
                            ++I)
                         S += Cells[static_cast<size_t>(I)]->get();
                       return S;
                     },
                     Strategy, "sum") {
    Cells.reserve(NumCells);
    for (size_t I = 0; I < NumCells; ++I)
      Cells.push_back(std::make_unique<Cell<int>>(
          RT, 0, "c" + std::to_string(I)));
  }

  Runtime RT;
  std::vector<std::unique_ptr<Cell<int>>> Cells;
  Maintained<int(int)> Sum;

  /// Demands every prefix sum, building the full dependency graph.
  void touchAll() {
    for (size_t K = 0; K < Cells.size(); ++K)
      Sum(static_cast<int>(K));
  }

  /// Full snapshot: GRPH (engine state) + CELL / MANT (typed state).
  void save(const std::string &Path) {
    RT.pump();
    GraphSnapshot GS = GraphCheckpoint::capture(RT.graph());
    CheckpointWriter W;
    {
      ByteWriter B;
      GS.encode(B);
      W.addSection(TagGraph, B.take());
    }
    {
      ByteWriter B;
      B.u32(static_cast<uint32_t>(Cells.size()));
      for (const auto &C : Cells) {
        DepNode *N = C->node();
        B.u8(N ? 1 : 0);
        if (N)
          B.u32(N->id().bits());
        B.i64(C->peek());
      }
      W.addSection(TagCells, B.take());
    }
    {
      ByteWriter B;
      B.u32(static_cast<uint32_t>(Sum.numInstances()));
      Sum.forEachInstance([&B](const std::tuple<int> &Key,
                               const std::optional<int> &Cached,
                               const DepNode &N) {
        B.u32(N.id().bits());
        B.i64(std::get<0>(Key));
        B.u8(Cached ? 1 : 0);
        if (Cached)
          B.i64(*Cached);
      });
      W.addSection(TagMant, B.take());
    }
    W.writeFile(Path);
    removeDeltaLog(deltaLogPath(Path));
  }

  /// Appends the current cell values to the snapshot's sidecar log.
  void appendDelta(const std::string &Path) {
    RT.pump();
    CheckpointReader Base(Path);
    uint64_t Have = repairDeltaLog(deltaLogPath(Path), Base.snapshotId());
    ByteWriter B;
    B.u32(static_cast<uint32_t>(Cells.size()));
    for (const auto &C : Cells)
      B.i64(C->peek());
    DeltaAppender A(deltaLogPath(Path), Base.snapshotId(), Have + 1);
    A.append(B.take());
  }

  /// Rebuilds this (freshly constructed, same-extent) host from \p Path
  /// plus any surviving deltas. Throws CheckpointError on anything that
  /// does not describe a loadable state; the host must then be discarded.
  void restore(const std::string &Path) {
    CheckpointReader R(Path);

    GraphSnapshot GS;
    {
      ByteReader B = R.section(TagGraph);
      GS = GraphSnapshot::decode(B);
      if (!B.atEnd())
        throw CheckpointError(CkptError::Malformed,
                              "trailing bytes in GRPH section");
    }
    struct StagedCell {
      bool HasNode = false;
      uint32_t NodeBits = 0;
      int64_t Live = 0;
    };
    std::vector<StagedCell> SC;
    {
      ByteReader B = R.section(TagCells);
      uint32_t Count = B.u32();
      if (Count != Cells.size())
        throw CheckpointError(CkptError::Malformed, "cell count mismatch");
      for (uint32_t I = 0; I < Count; ++I) {
        StagedCell S;
        uint8_t Has = B.u8();
        if (Has > 1)
          throw CheckpointError(CkptError::Malformed, "bad node flag");
        S.HasNode = Has != 0;
        if (S.HasNode)
          S.NodeBits = B.u32();
        S.Live = B.i64();
        SC.push_back(S);
      }
      if (!B.atEnd())
        throw CheckpointError(CkptError::Malformed,
                              "trailing bytes in CELL section");
    }
    struct StagedInstance {
      uint32_t NodeBits = 0;
      int64_t Key = 0;
      std::optional<int64_t> Cached;
    };
    std::vector<StagedInstance> SI;
    {
      ByteReader B = R.section(TagMant);
      uint32_t Count = B.u32();
      for (uint32_t I = 0; I < Count; ++I) {
        StagedInstance S;
        S.NodeBits = B.u32();
        S.Key = B.i64();
        uint8_t Has = B.u8();
        if (Has > 1)
          throw CheckpointError(CkptError::Malformed, "bad cache flag");
        if (Has)
          S.Cached = B.i64();
        SI.push_back(S);
      }
      if (!B.atEnd())
        throw CheckpointError(CkptError::Malformed,
                              "trailing bytes in MANT section");
    }

    std::vector<DeltaRecord> Deltas =
        readDeltaLog(deltaLogPath(Path), R.snapshotId(), &RestoreNote);
    // Stage delta payloads before mutating anything.
    std::vector<std::vector<int64_t>> DeltaValues;
    for (const DeltaRecord &Rec : Deltas) {
      ByteReader B(Rec.Payload.data(), Rec.Payload.size());
      uint32_t Count = B.u32();
      if (Count != Cells.size())
        throw CheckpointError(CkptError::Malformed,
                              "delta cell count mismatch");
      std::vector<int64_t> V;
      for (uint32_t I = 0; I < Count; ++I)
        V.push_back(B.i64());
      if (!B.atEnd())
        throw CheckpointError(CkptError::Malformed,
                              "trailing bytes in delta record");
      DeltaValues.push_back(std::move(V));
    }

    GraphRestorer Restorer(std::move(GS));
    for (size_t I = 0; I < Cells.size(); ++I) {
      // Value first, node second: StorageNode's constructor snapshots
      // the live value, so this order restores Snapshot == Live (true at
      // any quiescent capture of an unquarantined cell).
      Cells[I]->set(static_cast<int>(SC[I].Live));
      if (SC[I].HasNode)
        Restorer.bind(SC[I].NodeBits, Cells[I]->ensureTracked());
    }
    for (const StagedInstance &S : SI) {
      std::optional<int> Cached;
      if (S.Cached)
        Cached = static_cast<int>(*S.Cached);
      DepNode &N = Sum.restoreInstance(
          std::tuple<int>(static_cast<int>(S.Key)), Cached);
      Restorer.bind(S.NodeBits, N);
    }
    Restorer.finish(RT.graph());

    for (const std::vector<int64_t> &V : DeltaValues)
      for (size_t I = 0; I < Cells.size(); ++I)
        Cells[I]->set(static_cast<int>(V[I]));
    RT.pump();
    std::vector<std::string> Problems = RT.graph().verify();
    if (!Problems.empty())
      throw CheckpointError(CkptError::VerifyFailed,
                            "post-delta verify failed: " + Problems.front());
  }

  /// Demands every prefix sum and lists it with the cell values; two
  /// hosts in equivalent states produce equal fingerprints (restore =
  /// "every future computation agrees").
  std::string fingerprint() {
    std::ostringstream OS;
    for (const auto &C : Cells)
      OS << C->peek() << ',';
    OS << '|';
    for (size_t K = 0; K < Cells.size(); ++K)
      OS << Sum(static_cast<int>(K)) << ',';
    return OS.str();
  }

  std::string RestoreNote;
};

} // namespace alphonse::ckpttest

#endif // ALPHONSE_TESTS_GRAPH_CHECKPOINTTESTHOST_H
