//===- HandleTest.cpp - Generation-checked handle / slab tests ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the handle-based graph core (DESIGN.md "Engine layering and
/// handle-based storage"): NodeId/EdgeId generation arithmetic, slot
/// recycling through the node and edge tables, stale-handle detection, and
/// a randomized create/link/destroy churn audited by DepGraph::verify().
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"
#include "graph/Handle.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

namespace alphonse {
namespace {

struct StubStorage final : DepNode {
  explicit StubStorage(DepGraph &G) : DepNode(G, NodeKind::Storage) {}
  bool refreshStorage() override { return true; }
};

struct StubProc final : DepNode {
  explicit StubProc(DepGraph &G) : DepNode(G, NodeKind::Procedure) {}
  bool reexecute() override { return true; }
};

TEST(HandleTest, NullAndGenerationArithmetic) {
  NodeId Null;
  EXPECT_FALSE(Null);
  EXPECT_EQ(Null.bits(), 0u);

  NodeId Id = NodeId::make(7, NodeId::FirstGen);
  EXPECT_TRUE(Id);
  EXPECT_EQ(Id.index(), 7u);
  EXPECT_EQ(Id.gen(), NodeId::FirstGen);

  // Generations cycle through 1..MaxGen and never touch 0, so a recycled
  // slot's handle can never collide with the null handle.
  uint8_t G = NodeId::FirstGen;
  for (unsigned I = 0; I < 2 * NodeId::MaxGen; ++I) {
    G = NodeId::nextGen(G);
    EXPECT_NE(G, 0u);
  }
  EXPECT_EQ(NodeId::nextGen(NodeId::MaxGen), NodeId::FirstGen);

  // NodeId and EdgeId are distinct types; equal bit patterns still
  // compare equal only within one handle type.
  EXPECT_EQ(NodeId::make(3, 2), NodeId::make(3, 2));
  EXPECT_NE(NodeId::make(3, 2), NodeId::make(3, 3));
}

TEST(HandleTest, EdgeStaysPacked) {
  // Acceptance bound of the slab refactor: six packed 32-bit handles.
  EXPECT_LE(sizeof(Edge), 24u);
}

TEST(HandleTest, NodeSlotRecyclingBumpsGeneration) {
  Statistics Stats;
  DepGraph G(Stats);

  auto A = std::make_unique<StubStorage>(G);
  NodeId Old = A->id();
  ASSERT_TRUE(Old);
  EXPECT_TRUE(G.isLiveNode(Old));
  EXPECT_EQ(G.tryNode(Old), A.get());

  A.reset(); // Frees the slot; the generation advances.
  EXPECT_FALSE(G.isLiveNode(Old));
  EXPECT_EQ(G.tryNode(Old), nullptr);

  // The next allocation reuses the freed slot (LIFO free list) under a
  // fresh generation: same index, different handle.
  auto B = std::make_unique<StubStorage>(G);
  NodeId New = B->id();
  EXPECT_EQ(New.index(), Old.index());
  EXPECT_NE(New.gen(), Old.gen());
  EXPECT_NE(New, Old);

  // The stale handle still resolves to nothing even though the slot is
  // occupied again.
  EXPECT_FALSE(G.isLiveNode(Old));
  EXPECT_EQ(G.tryNode(Old), nullptr);
  EXPECT_TRUE(G.isLiveNode(New));
  EXPECT_EQ(G.tryNode(New), B.get());
}

TEST(HandleTest, EdgeSlotsAreRecycled) {
  Statistics Stats;
  DepGraph G(Stats);

  StubStorage Src(G);
  StubProc Sink(G);

  // Record, retract, re-record the same dependency: the second edge must
  // come from the free list, not fresh slab growth.
  G.beginExecution(Sink);
  G.addDependency(Sink, Src);
  G.endExecution(Sink);

  G.removePredEdges(Sink);
  EXPECT_EQ(Sink.numPredecessors(), 0u);
  // Snapshot after the retraction so the free list's own capacity (part
  // of bytesReserved) is already counted.
  size_t Reserved = G.edgeSlabBytes();

  G.beginExecution(Sink);
  G.addDependency(Sink, Src);
  G.endExecution(Sink);
  EXPECT_EQ(Sink.numPredecessors(), 1u);
  EXPECT_GE(Stats.EdgeReuse.total(), 1u);
  EXPECT_EQ(G.edgeSlabBytes(), Reserved);
  G.evaluateAll();
}

TEST(HandleTest, MemoryGaugesTrackSlabs) {
  Statistics Stats;
  DepGraph G(Stats);
  std::vector<std::unique_ptr<StubStorage>> Nodes;
  for (int I = 0; I < 64; ++I)
    Nodes.push_back(std::make_unique<StubStorage>(G));
  EXPECT_EQ(Stats.GraphNodeBytes.total(), G.nodeSlabBytes());
  EXPECT_GT(Stats.GraphNodeBytes.total(), 0u);
  EXPECT_GE(Stats.PoolHighWater.total(),
            Stats.GraphNodeBytes.total() + Stats.GraphEdgeBytes.total());
  G.evaluateAll();
}

/// Randomized churn: create and destroy nodes while recording random
/// dependencies, pumping, and auditing. Slot recycling, journal-free edge
/// teardown, pending-set erasure, and partition merges all interleave;
/// verify() must stay clean throughout.
TEST(HandleTest, RandomizedChurnKeepsVerifyClean) {
  Statistics Stats;
  DepGraph G(Stats);
  std::mt19937 Rng(20260806);

  std::vector<std::unique_ptr<StubStorage>> Storage;
  std::vector<std::unique_ptr<StubProc>> Procs;
  std::vector<NodeId> Dead;

  for (int Step = 0; Step < 600; ++Step) {
    switch (Rng() % 5) {
    case 0:
      Storage.push_back(std::make_unique<StubStorage>(G));
      break;
    case 1:
      Procs.push_back(std::make_unique<StubProc>(G));
      break;
    case 2: { // Record a random dependency.
      if (Procs.empty() || Storage.empty())
        break;
      DepNode &Sink = *Procs[Rng() % Procs.size()];
      DepNode &Src = *Storage[Rng() % Storage.size()];
      G.beginExecution(Sink);
      G.addDependency(Sink, Src);
      G.endExecution(Sink);
      break;
    }
    case 3: { // Destroy a random node (recycles its slot).
      if (Rng() % 2 == 0 && !Storage.empty()) {
        size_t I = Rng() % Storage.size();
        Dead.push_back(Storage[I]->id());
        Storage.erase(Storage.begin() + I);
      } else if (!Procs.empty()) {
        size_t I = Rng() % Procs.size();
        Dead.push_back(Procs[I]->id());
        Procs.erase(Procs.begin() + I);
      }
      break;
    }
    case 4:
      G.evaluateAll();
      break;
    }

    if (Step % 97 == 0) {
      G.evaluateAll();
      std::vector<std::string> Bad = G.verify();
      ASSERT_TRUE(Bad.empty()) << "audit after step " << Step << ": "
                               << Bad.front();
    }
  }

  G.evaluateAll();
  EXPECT_TRUE(G.verify().empty());

  // Every handle of a destroyed node is permanently stale, regardless of
  // how many times its slot was recycled since.
  for (NodeId Id : Dead) {
    EXPECT_FALSE(G.isLiveNode(Id));
    EXPECT_EQ(G.tryNode(Id), nullptr);
  }
}

} // namespace
} // namespace alphonse
