//===- ExprTreeTest.cpp - Attribute grammar tests -------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the Section 7.1 attribute-grammar encoding: synthesized and
/// inherited attributes as maintained methods, incremental reattribution
/// after edits, environment semantics (shadowing), and oracle equivalence
/// under random edits.
///
//===----------------------------------------------------------------------===//

#include "attrgram/ExprTree.h"
#include "attrgram/FormulaParser.h"

#include <gtest/gtest.h>

#include <random>

namespace alphonse::attrgram {
namespace {

TEST(EnvTest, EmptyLookupFails) {
  Env E;
  EXPECT_TRUE(E.empty());
  EXPECT_FALSE(E.lookup("x").has_value());
}

TEST(EnvTest, UpdateShadowsOuterBinding) {
  Env E = Env().update("x", 1).update("y", 2).update("x", 3);
  EXPECT_EQ(E.lookup("x"), 3);
  EXPECT_EQ(E.lookup("y"), 2);
  EXPECT_EQ(E.size(), 3u);
}

TEST(EnvTest, StructuralEquality) {
  Env A = Env().update("x", 1).update("y", 2);
  Env B = Env().update("x", 1).update("y", 2);
  Env C = Env().update("x", 1).update("y", 3);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  EXPECT_TRUE(Env() == Env());
  EXPECT_FALSE(A == Env());
}

TEST(EnvTest, SharedTailFastPath) {
  Env Base = Env().update("a", 1);
  Env X = Base.update("b", 2);
  Env Y = Base.update("b", 2);
  EXPECT_TRUE(X == Y); // Distinct heads, shared tail.
}

TEST(ExprTreeTest, LiteralValue) {
  Runtime RT;
  ExprTree T(RT);
  Exp *E = T.makeInt(42);
  EXPECT_EQ(T.value(E), 42);
}

TEST(ExprTreeTest, SumAndProduct) {
  Runtime RT;
  ExprTree T(RT);
  Exp *E = T.makePlus(T.makeInt(2), T.makeMul(T.makeInt(3), T.makeInt(4)));
  EXPECT_EQ(T.value(E), 14);
}

TEST(ExprTreeTest, LetBindingAndLookup) {
  // let x = 5 in x + x ni == 10
  Runtime RT;
  ExprTree T(RT);
  Exp *Body = T.makePlus(T.makeId("x"), T.makeId("x"));
  Exp *Let = T.makeLet("x", T.makeInt(5), Body);
  RootExp *Root = T.makeRoot(Let);
  EXPECT_EQ(T.value(Root), 10);
}

TEST(ExprTreeTest, NestedLetsShadow) {
  // let x = 1 in (let x = 2 in x ni) + x ni == 3
  Runtime RT;
  ExprTree T(RT);
  Exp *Inner = T.makeLet("x", T.makeInt(2), T.makeId("x"));
  Exp *Sum = T.makePlus(Inner, T.makeId("x"));
  Exp *Outer = T.makeLet("x", T.makeInt(1), Sum);
  EXPECT_EQ(T.value(T.makeRoot(Outer)), 3);
}

TEST(ExprTreeTest, UnboundIdentifierIsZero) {
  Runtime RT;
  ExprTree T(RT);
  EXPECT_EQ(T.value(T.makeRoot(T.makeId("ghost"))), 0);
}

TEST(ExprTreeTest, BindingExpressionSeesOuterScope) {
  // let x = 1 in let x = x + 10 in x ni ni == 11: the inner binding's RHS
  // inherits the *outer* environment (LetEnv's case analysis).
  Runtime RT;
  ExprTree T(RT);
  Exp *InnerBind = T.makePlus(T.makeId("x"), T.makeInt(10));
  Exp *Inner = T.makeLet("x", InnerBind, T.makeId("x"));
  Exp *Outer = T.makeLet("x", T.makeInt(1), Inner);
  EXPECT_EQ(T.value(T.makeRoot(Outer)), 11);
}

TEST(ExprTreeTest, LiteralEditReattributesIncrementally) {
  Runtime RT;
  ExprTree T(RT);
  IntExp *Leaf = T.makeInt(5);
  Exp *E = T.makePlus(Leaf, T.makeInt(7));
  RootExp *Root = T.makeRoot(E);
  EXPECT_EQ(T.value(Root), 12);
  RT.resetStats();
  Leaf->Lit.set(6);
  EXPECT_EQ(T.value(Root), 13);
  // Only the leaf, the plus, and the root re-run.
  EXPECT_LE(RT.stats().ProcExecutions, 3u);
}

TEST(ExprTreeTest, EditOutsideLetBodyDoesNotReattributeBody) {
  // In (let y = B in big-body ni), editing a literal inside the *body*
  // leaves the binding's value() cached, and vice versa.
  Runtime RT;
  ExprTree T(RT);
  IntExp *BindLit = T.makeInt(3);
  IntExp *BodyLit = T.makeInt(100);
  Exp *Body = T.makePlus(T.makeId("y"), BodyLit);
  Exp *Let = T.makeLet("y", BindLit, Body);
  RootExp *Root = T.makeRoot(Let);
  EXPECT_EQ(T.value(Root), 103);
  RT.resetStats();
  BodyLit->Lit.set(200);
  EXPECT_EQ(T.value(Root), 203);
  // The binding literal's value instance must not have re-run.
  uint64_t AfterBodyEdit = RT.stats().ProcExecutions;
  EXPECT_LE(AfterBodyEdit, 4u);
}

TEST(ExprTreeTest, RenamingTheBinderReattributesUses) {
  Runtime RT;
  ExprTree T(RT);
  Exp *Body = T.makePlus(T.makeId("x"), T.makeId("z"));
  LetExp *Let = T.makeLet("x", T.makeInt(9), Body);
  RootExp *Root = T.makeRoot(Let);
  EXPECT_EQ(T.value(Root), 9); // x=9, z unbound=0.
  Let->Id.set("z");
  EXPECT_EQ(T.value(Root), 9); // Now z=9, x unbound.
  Let->Id.set("w");
  EXPECT_EQ(T.value(Root), 0); // Neither bound.
}

TEST(ExprTreeTest, SubtreeSpliceReattributes) {
  Runtime RT;
  ExprTree T(RT);
  PlusExp *Sum = T.makePlus(T.makeInt(1), T.makeInt(2));
  RootExp *Root = T.makeRoot(Sum);
  EXPECT_EQ(T.value(Root), 3);
  // Replace the RHS with (let k = 4 in k * k ni).
  Exp *NewRhs =
      T.makeLet("k", T.makeInt(4), T.makeMul(T.makeId("k"), T.makeId("k")));
  T.replaceChild(Sum->Rhs, Sum, NewRhs);
  EXPECT_EQ(T.value(Root), 17);
}

TEST(ExprTreeTest, EnvAttributeIsCachedPerChild) {
  Runtime RT;
  ExprTree T(RT);
  Exp *Body = T.makePlus(T.makeId("x"), T.makeId("x"));
  LetExp *Let = T.makeLet("x", T.makeInt(5), Body);
  RootExp *Root = T.makeRoot(Let);
  T.value(Root);
  // Demanding the env of the body again is a cache hit.
  RT.resetStats();
  Env E = T.env(Let, Let->Body.peek());
  EXPECT_EQ(E.lookup("x"), 5);
  EXPECT_EQ(RT.stats().ProcExecutions, 0u);
}

TEST(ExprTreeTest, DeepLetChainIncrementalEdit) {
  // let v0 = 1 in let v1 = v0+1 in ... vN ni: editing the innermost
  // literal must not reattribute the whole chain of envs.
  Runtime RT;
  ExprTree T(RT);
  constexpr int Depth = 40;
  IntExp *Base = T.makeInt(1);
  Exp *Cur = T.makeId("v" + std::to_string(Depth - 1));
  std::vector<LetExp *> Lets;
  for (int I = Depth - 1; I >= 0; --I) {
    Exp *Bind = (I == 0)
                    ? static_cast<Exp *>(Base)
                    : T.makePlus(T.makeId("v" + std::to_string(I - 1)),
                                 T.makeInt(1));
    Cur = T.makeLet("v" + std::to_string(I), Bind, Cur);
  }
  RootExp *Root = T.makeRoot(Cur);
  EXPECT_EQ(T.value(Root), Depth);
  Base->Lit.set(11);
  EXPECT_EQ(T.value(Root), Depth + 10);
}

TEST(FormulaParserTest, ParsesArithmetic) {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine D;
  Exp *E = parseFormula(T, "1 + 2 * (3 + 4)", D);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(T.value(E), 15);
}

TEST(FormulaParserTest, ParsesLet) {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine D;
  Exp *E = parseFormula(T, "let x = 2 + 3 in x * x ni", D);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(T.value(T.makeRoot(E)), 25);
}

TEST(FormulaParserTest, NegativeLiterals) {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine D;
  Exp *E = parseFormula(T, "-3 + 10", D);
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(T.value(E), 7);
}

TEST(FormulaParserTest, ReportsErrors) {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine D;
  EXPECT_EQ(parseFormula(T, "1 + ", D), nullptr);
  EXPECT_TRUE(D.hasErrors());
  D.clear();
  EXPECT_EQ(parseFormula(T, "let = 3 in x ni", D), nullptr);
  EXPECT_TRUE(D.hasErrors());
  D.clear();
  EXPECT_EQ(parseFormula(T, "(1 + 2", D), nullptr);
  EXPECT_TRUE(D.hasErrors());
  D.clear();
  EXPECT_EQ(parseFormula(T, "1 2", D), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

TEST(FormulaParserTest, CellRefsNeedAFactory) {
  Runtime RT;
  ExprTree T(RT);
  DiagnosticEngine D;
  EXPECT_EQ(parseFormula(T, "cell(1,2)", D), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

/// Randomized oracle equivalence: build a random expression, evaluate
/// incrementally, then mutate random literals and re-check against the
/// exhaustive oracle after each edit.
TEST(ExprTreeTest, RandomEditsMatchOracle) {
  std::mt19937 Rng(777);
  Runtime RT;
  ExprTree T(RT);
  std::vector<IntExp *> Leaves;
  std::vector<std::string> Names = {"a", "b", "c"};

  // Random expression generator of bounded depth.
  std::function<Exp *(int)> Gen = [&](int Depth) -> Exp * {
    int Pick = static_cast<int>(Rng() % (Depth <= 0 ? 2 : 5));
    switch (Pick) {
    case 0: {
      IntExp *L = T.makeInt(static_cast<int>(Rng() % 100));
      Leaves.push_back(L);
      return L;
    }
    case 1:
      return T.makeId(Names[Rng() % Names.size()]);
    case 2:
      return T.makePlus(Gen(Depth - 1), Gen(Depth - 1));
    case 3:
      return T.makeMul(Gen(Depth - 1), Gen(Depth - 1));
    default:
      return T.makeLet(Names[Rng() % Names.size()], Gen(Depth - 1),
                       Gen(Depth - 1));
    }
  };

  RootExp *Root = T.makeRoot(Gen(6));
  EXPECT_EQ(T.value(Root), T.oracleValue(Root));
  for (int Edit = 0; Edit < 100 && !Leaves.empty(); ++Edit) {
    IntExp *L = Leaves[Rng() % Leaves.size()];
    L->Lit.set(static_cast<int>(Rng() % 100));
    ASSERT_EQ(T.value(Root), T.oracleValue(Root)) << "edit " << Edit;
  }
}

} // namespace
} // namespace alphonse::attrgram
