file(REMOVE_RECURSE
  "libalphonse_interp.a"
)
