file(REMOVE_RECURSE
  "CMakeFiles/alphonse_interp.dir/Interp.cpp.o"
  "CMakeFiles/alphonse_interp.dir/Interp.cpp.o.d"
  "libalphonse_interp.a"
  "libalphonse_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
