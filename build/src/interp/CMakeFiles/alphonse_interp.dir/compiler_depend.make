# Empty compiler generated dependencies file for alphonse_interp.
# This may be replaced when dependencies are built.
