file(REMOVE_RECURSE
  "CMakeFiles/alphonse_trees.dir/AvlTree.cpp.o"
  "CMakeFiles/alphonse_trees.dir/AvlTree.cpp.o.d"
  "CMakeFiles/alphonse_trees.dir/ClassicAvl.cpp.o"
  "CMakeFiles/alphonse_trees.dir/ClassicAvl.cpp.o.d"
  "CMakeFiles/alphonse_trees.dir/HeightTree.cpp.o"
  "CMakeFiles/alphonse_trees.dir/HeightTree.cpp.o.d"
  "CMakeFiles/alphonse_trees.dir/ManualHeightTree.cpp.o"
  "CMakeFiles/alphonse_trees.dir/ManualHeightTree.cpp.o.d"
  "libalphonse_trees.a"
  "libalphonse_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
