
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/AvlTree.cpp" "src/trees/CMakeFiles/alphonse_trees.dir/AvlTree.cpp.o" "gcc" "src/trees/CMakeFiles/alphonse_trees.dir/AvlTree.cpp.o.d"
  "/root/repo/src/trees/ClassicAvl.cpp" "src/trees/CMakeFiles/alphonse_trees.dir/ClassicAvl.cpp.o" "gcc" "src/trees/CMakeFiles/alphonse_trees.dir/ClassicAvl.cpp.o.d"
  "/root/repo/src/trees/HeightTree.cpp" "src/trees/CMakeFiles/alphonse_trees.dir/HeightTree.cpp.o" "gcc" "src/trees/CMakeFiles/alphonse_trees.dir/HeightTree.cpp.o.d"
  "/root/repo/src/trees/ManualHeightTree.cpp" "src/trees/CMakeFiles/alphonse_trees.dir/ManualHeightTree.cpp.o" "gcc" "src/trees/CMakeFiles/alphonse_trees.dir/ManualHeightTree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/alphonse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alphonse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
