# Empty compiler generated dependencies file for alphonse_trees.
# This may be replaced when dependencies are built.
