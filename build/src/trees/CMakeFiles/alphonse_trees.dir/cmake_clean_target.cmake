file(REMOVE_RECURSE
  "libalphonse_trees.a"
)
