# Empty dependencies file for alphonse_support.
# This may be replaced when dependencies are built.
