file(REMOVE_RECURSE
  "CMakeFiles/alphonse_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/alphonse_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/alphonse_support.dir/Statistics.cpp.o"
  "CMakeFiles/alphonse_support.dir/Statistics.cpp.o.d"
  "libalphonse_support.a"
  "libalphonse_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
