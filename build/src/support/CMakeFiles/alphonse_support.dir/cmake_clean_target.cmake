file(REMOVE_RECURSE
  "libalphonse_support.a"
)
