file(REMOVE_RECURSE
  "CMakeFiles/alphonse_lang.dir/AST.cpp.o"
  "CMakeFiles/alphonse_lang.dir/AST.cpp.o.d"
  "CMakeFiles/alphonse_lang.dir/Lexer.cpp.o"
  "CMakeFiles/alphonse_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/alphonse_lang.dir/Parser.cpp.o"
  "CMakeFiles/alphonse_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/alphonse_lang.dir/Sema.cpp.o"
  "CMakeFiles/alphonse_lang.dir/Sema.cpp.o.d"
  "libalphonse_lang.a"
  "libalphonse_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
