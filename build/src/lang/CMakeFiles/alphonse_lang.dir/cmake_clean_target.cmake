file(REMOVE_RECURSE
  "libalphonse_lang.a"
)
