# Empty compiler generated dependencies file for alphonse_lang.
# This may be replaced when dependencies are built.
