file(REMOVE_RECURSE
  "CMakeFiles/alphonse_transform.dir/StaticPartition.cpp.o"
  "CMakeFiles/alphonse_transform.dir/StaticPartition.cpp.o.d"
  "CMakeFiles/alphonse_transform.dir/StaticRefSets.cpp.o"
  "CMakeFiles/alphonse_transform.dir/StaticRefSets.cpp.o.d"
  "CMakeFiles/alphonse_transform.dir/Transform.cpp.o"
  "CMakeFiles/alphonse_transform.dir/Transform.cpp.o.d"
  "CMakeFiles/alphonse_transform.dir/Unparser.cpp.o"
  "CMakeFiles/alphonse_transform.dir/Unparser.cpp.o.d"
  "libalphonse_transform.a"
  "libalphonse_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
