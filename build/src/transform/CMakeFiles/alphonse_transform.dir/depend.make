# Empty dependencies file for alphonse_transform.
# This may be replaced when dependencies are built.
