file(REMOVE_RECURSE
  "libalphonse_transform.a"
)
