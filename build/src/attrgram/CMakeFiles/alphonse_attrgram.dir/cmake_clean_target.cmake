file(REMOVE_RECURSE
  "libalphonse_attrgram.a"
)
