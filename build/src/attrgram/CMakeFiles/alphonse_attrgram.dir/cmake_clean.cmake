file(REMOVE_RECURSE
  "CMakeFiles/alphonse_attrgram.dir/ExprTree.cpp.o"
  "CMakeFiles/alphonse_attrgram.dir/ExprTree.cpp.o.d"
  "CMakeFiles/alphonse_attrgram.dir/FormulaParser.cpp.o"
  "CMakeFiles/alphonse_attrgram.dir/FormulaParser.cpp.o.d"
  "libalphonse_attrgram.a"
  "libalphonse_attrgram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_attrgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
