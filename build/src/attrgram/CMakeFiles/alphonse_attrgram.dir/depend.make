# Empty dependencies file for alphonse_attrgram.
# This may be replaced when dependencies are built.
