file(REMOVE_RECURSE
  "libalphonse_graph.a"
)
