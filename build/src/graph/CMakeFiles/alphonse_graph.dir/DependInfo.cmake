
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/DebugDump.cpp" "src/graph/CMakeFiles/alphonse_graph.dir/DebugDump.cpp.o" "gcc" "src/graph/CMakeFiles/alphonse_graph.dir/DebugDump.cpp.o.d"
  "/root/repo/src/graph/DepGraph.cpp" "src/graph/CMakeFiles/alphonse_graph.dir/DepGraph.cpp.o" "gcc" "src/graph/CMakeFiles/alphonse_graph.dir/DepGraph.cpp.o.d"
  "/root/repo/src/graph/InconsistentSet.cpp" "src/graph/CMakeFiles/alphonse_graph.dir/InconsistentSet.cpp.o" "gcc" "src/graph/CMakeFiles/alphonse_graph.dir/InconsistentSet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alphonse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
