file(REMOVE_RECURSE
  "CMakeFiles/alphonse_graph.dir/DebugDump.cpp.o"
  "CMakeFiles/alphonse_graph.dir/DebugDump.cpp.o.d"
  "CMakeFiles/alphonse_graph.dir/DepGraph.cpp.o"
  "CMakeFiles/alphonse_graph.dir/DepGraph.cpp.o.d"
  "CMakeFiles/alphonse_graph.dir/InconsistentSet.cpp.o"
  "CMakeFiles/alphonse_graph.dir/InconsistentSet.cpp.o.d"
  "libalphonse_graph.a"
  "libalphonse_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
