# Empty compiler generated dependencies file for alphonse_graph.
# This may be replaced when dependencies are built.
