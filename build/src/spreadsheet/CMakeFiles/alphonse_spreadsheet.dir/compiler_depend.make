# Empty compiler generated dependencies file for alphonse_spreadsheet.
# This may be replaced when dependencies are built.
