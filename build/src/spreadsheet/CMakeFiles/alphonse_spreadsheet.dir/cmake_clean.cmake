file(REMOVE_RECURSE
  "CMakeFiles/alphonse_spreadsheet.dir/Spreadsheet.cpp.o"
  "CMakeFiles/alphonse_spreadsheet.dir/Spreadsheet.cpp.o.d"
  "libalphonse_spreadsheet.a"
  "libalphonse_spreadsheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_spreadsheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
