file(REMOVE_RECURSE
  "libalphonse_spreadsheet.a"
)
