file(REMOVE_RECURSE
  "CMakeFiles/alphonse_app_tests.dir/attrgram/ExprTreeTest.cpp.o"
  "CMakeFiles/alphonse_app_tests.dir/attrgram/ExprTreeTest.cpp.o.d"
  "CMakeFiles/alphonse_app_tests.dir/spreadsheet/SpreadsheetTest.cpp.o"
  "CMakeFiles/alphonse_app_tests.dir/spreadsheet/SpreadsheetTest.cpp.o.d"
  "alphonse_app_tests"
  "alphonse_app_tests.pdb"
  "alphonse_app_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_app_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
