# Empty dependencies file for alphonse_app_tests.
# This may be replaced when dependencies are built.
