file(REMOVE_RECURSE
  "CMakeFiles/alphonse_lang_tests.dir/interp/EquivalenceTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/interp/EquivalenceTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/interp/InterpTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/interp/InterpTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/interp/LangPropertyTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/interp/LangPropertyTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/lang/LexerTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/lang/LexerTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/lang/ParserTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/lang/ParserTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/lang/SemaTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/lang/SemaTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/transform/RoundTripTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/transform/RoundTripTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/transform/StaticRefSetsTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/transform/StaticRefSetsTest.cpp.o.d"
  "CMakeFiles/alphonse_lang_tests.dir/transform/TransformTest.cpp.o"
  "CMakeFiles/alphonse_lang_tests.dir/transform/TransformTest.cpp.o.d"
  "alphonse_lang_tests"
  "alphonse_lang_tests.pdb"
  "alphonse_lang_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_lang_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
