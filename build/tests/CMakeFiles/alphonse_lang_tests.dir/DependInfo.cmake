
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interp/EquivalenceTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/EquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/EquivalenceTest.cpp.o.d"
  "/root/repo/tests/interp/InterpTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/InterpTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/InterpTest.cpp.o.d"
  "/root/repo/tests/interp/LangPropertyTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/LangPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/interp/LangPropertyTest.cpp.o.d"
  "/root/repo/tests/lang/LexerTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/LexerTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/LexerTest.cpp.o.d"
  "/root/repo/tests/lang/ParserTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/ParserTest.cpp.o.d"
  "/root/repo/tests/lang/SemaTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/lang/SemaTest.cpp.o.d"
  "/root/repo/tests/transform/RoundTripTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/RoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/RoundTripTest.cpp.o.d"
  "/root/repo/tests/transform/StaticRefSetsTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/StaticRefSetsTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/StaticRefSetsTest.cpp.o.d"
  "/root/repo/tests/transform/TransformTest.cpp" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/TransformTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_lang_tests.dir/transform/TransformTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/alphonse_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/alphonse_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/alphonse_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/alphonse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alphonse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
