# Empty dependencies file for alphonse_lang_tests.
# This may be replaced when dependencies are built.
