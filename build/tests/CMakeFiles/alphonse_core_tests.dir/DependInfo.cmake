
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/CellTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/core/CellTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/core/CellTest.cpp.o.d"
  "/root/repo/tests/core/MaintainedTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/core/MaintainedTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/core/MaintainedTest.cpp.o.d"
  "/root/repo/tests/core/PropagationTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/core/PropagationTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/core/PropagationTest.cpp.o.d"
  "/root/repo/tests/graph/DebugDumpTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/graph/DebugDumpTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/graph/DebugDumpTest.cpp.o.d"
  "/root/repo/tests/graph/DepGraphTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/graph/DepGraphTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/graph/DepGraphTest.cpp.o.d"
  "/root/repo/tests/support/DiagnosticsTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/support/DiagnosticsTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "/root/repo/tests/support/UnionFindTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/support/UnionFindTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/support/UnionFindTest.cpp.o.d"
  "/root/repo/tests/trees/AvlTreeTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/trees/AvlTreeTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/trees/AvlTreeTest.cpp.o.d"
  "/root/repo/tests/trees/HeightTreeTest.cpp" "tests/CMakeFiles/alphonse_core_tests.dir/trees/HeightTreeTest.cpp.o" "gcc" "tests/CMakeFiles/alphonse_core_tests.dir/trees/HeightTreeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trees/CMakeFiles/alphonse_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/alphonse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alphonse_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
