# Empty compiler generated dependencies file for alphonse_core_tests.
# This may be replaced when dependencies are built.
