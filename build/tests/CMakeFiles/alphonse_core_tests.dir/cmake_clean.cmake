file(REMOVE_RECURSE
  "CMakeFiles/alphonse_core_tests.dir/core/CellTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/core/CellTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/core/MaintainedTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/core/MaintainedTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/core/PropagationTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/core/PropagationTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/graph/DebugDumpTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/graph/DebugDumpTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/graph/DepGraphTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/graph/DepGraphTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/support/DiagnosticsTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/support/UnionFindTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/support/UnionFindTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/trees/AvlTreeTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/trees/AvlTreeTest.cpp.o.d"
  "CMakeFiles/alphonse_core_tests.dir/trees/HeightTreeTest.cpp.o"
  "CMakeFiles/alphonse_core_tests.dir/trees/HeightTreeTest.cpp.o.d"
  "alphonse_core_tests"
  "alphonse_core_tests.pdb"
  "alphonse_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
