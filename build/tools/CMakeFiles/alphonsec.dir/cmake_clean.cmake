file(REMOVE_RECURSE
  "CMakeFiles/alphonsec.dir/alphonsec.cpp.o"
  "CMakeFiles/alphonsec.dir/alphonsec.cpp.o.d"
  "alphonsec"
  "alphonsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
