# Empty compiler generated dependencies file for alphonsec.
# This may be replaced when dependencies are built.
