# Empty dependencies file for bench_avl.
# This may be replaced when dependencies are built.
