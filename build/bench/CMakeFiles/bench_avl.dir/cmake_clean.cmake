file(REMOVE_RECURSE
  "CMakeFiles/bench_avl.dir/bench_avl.cpp.o"
  "CMakeFiles/bench_avl.dir/bench_avl.cpp.o.d"
  "bench_avl"
  "bench_avl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_avl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
