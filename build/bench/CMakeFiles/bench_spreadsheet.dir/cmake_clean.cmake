file(REMOVE_RECURSE
  "CMakeFiles/bench_spreadsheet.dir/bench_spreadsheet.cpp.o"
  "CMakeFiles/bench_spreadsheet.dir/bench_spreadsheet.cpp.o.d"
  "bench_spreadsheet"
  "bench_spreadsheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spreadsheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
