# Empty compiler generated dependencies file for bench_spreadsheet.
# This may be replaced when dependencies are built.
