file(REMOVE_RECURSE
  "CMakeFiles/bench_attrgram.dir/bench_attrgram.cpp.o"
  "CMakeFiles/bench_attrgram.dir/bench_attrgram.cpp.o.d"
  "bench_attrgram"
  "bench_attrgram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attrgram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
