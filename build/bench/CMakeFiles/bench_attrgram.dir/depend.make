# Empty dependencies file for bench_attrgram.
# This may be replaced when dependencies are built.
