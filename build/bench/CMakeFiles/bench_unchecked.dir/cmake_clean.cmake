file(REMOVE_RECURSE
  "CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o"
  "CMakeFiles/bench_unchecked.dir/bench_unchecked.cpp.o.d"
  "bench_unchecked"
  "bench_unchecked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unchecked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
