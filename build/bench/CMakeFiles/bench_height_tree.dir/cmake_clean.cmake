file(REMOVE_RECURSE
  "CMakeFiles/bench_height_tree.dir/bench_height_tree.cpp.o"
  "CMakeFiles/bench_height_tree.dir/bench_height_tree.cpp.o.d"
  "bench_height_tree"
  "bench_height_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_height_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
