# Empty compiler generated dependencies file for bench_height_tree.
# This may be replaced when dependencies are built.
