# Empty compiler generated dependencies file for alphonse_lang_demo.
# This may be replaced when dependencies are built.
