file(REMOVE_RECURSE
  "CMakeFiles/alphonse_lang_demo.dir/alphonse_lang_demo.cpp.o"
  "CMakeFiles/alphonse_lang_demo.dir/alphonse_lang_demo.cpp.o.d"
  "alphonse_lang_demo"
  "alphonse_lang_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alphonse_lang_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
