file(REMOVE_RECURSE
  "CMakeFiles/spreadsheet_demo.dir/spreadsheet_demo.cpp.o"
  "CMakeFiles/spreadsheet_demo.dir/spreadsheet_demo.cpp.o.d"
  "spreadsheet_demo"
  "spreadsheet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreadsheet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
