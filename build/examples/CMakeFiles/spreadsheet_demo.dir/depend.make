# Empty dependencies file for spreadsheet_demo.
# This may be replaced when dependencies are built.
