file(REMOVE_RECURSE
  "CMakeFiles/attribute_grammar_demo.dir/attribute_grammar_demo.cpp.o"
  "CMakeFiles/attribute_grammar_demo.dir/attribute_grammar_demo.cpp.o.d"
  "attribute_grammar_demo"
  "attribute_grammar_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_grammar_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
