# Empty compiler generated dependencies file for attribute_grammar_demo.
# This may be replaced when dependencies are built.
