file(REMOVE_RECURSE
  "CMakeFiles/avl_demo.dir/avl_demo.cpp.o"
  "CMakeFiles/avl_demo.dir/avl_demo.cpp.o.d"
  "avl_demo"
  "avl_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avl_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
