# Empty compiler generated dependencies file for avl_demo.
# This may be replaced when dependencies are built.
