//===- FormulaParser.h - Text front end for expression trees ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny recursive-descent parser producing attrgram production objects
/// from text, so examples and the spreadsheet can write formulas as
/// strings. Grammar (paper's Algorithm 6 plus '*', parentheses, and cell
/// references):
///
///   expr    := term ('+' term)*
///   term    := factor ('*' factor)*
///   factor  := INT | ID | '(' expr ')'
///            | 'let' ID '=' expr 'in' expr 'ni'
///            | 'cell' '(' INT ',' INT ')'        (with a CellRefFactory)
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_ATTRGRAM_FORMULAPARSER_H
#define ALPHONSE_ATTRGRAM_FORMULAPARSER_H

#include "attrgram/ExprTree.h"
#include "support/Diagnostics.h"

#include <functional>
#include <string>

namespace alphonse::attrgram {

/// Builds an Exp node standing for a reference to spreadsheet cell
/// (Row, Col); supplied by the spreadsheet layer.
using CellRefFactory = std::function<Exp *(int Row, int Col)>;

/// Parses \p Source into production objects owned by \p Tree.
///
/// \returns the expression root (not wrapped in a RootExp), or nullptr on
/// error; diagnostics describe what went wrong. Without \p MakeCellRef,
/// `cell(r,c)` is a parse error.
Exp *parseFormula(ExprTree &Tree, const std::string &Source,
                  DiagnosticEngine &Diags,
                  CellRefFactory MakeCellRef = nullptr);

} // namespace alphonse::attrgram

#endif // ALPHONSE_ATTRGRAM_FORMULAPARSER_H
