//===- ExprTree.cpp - Attribute grammars as Alphonse objects --------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Method implementations mirroring Algorithm 9 of the paper (ExpVal,
/// NullEnv, SumVal, PassEnv, Exp2Val, LetEnv, IdVal, IntVal).
///
//===----------------------------------------------------------------------===//

#include "attrgram/ExprTree.h"

namespace alphonse::attrgram {

Exp::~Exp() = default;

Env Exp::computeEnv(ExprTree &, Exp *) {
  assert(false && "env() requested from a production without nonterminal "
                  "children");
  return Env();
}

//===----------------------------------------------------------------------===//
// RootExp: ROOT ::= EXP
//===----------------------------------------------------------------------===//

// ExpVal: o.exp.value().
int RootExp::computeValue(ExprTree &Tree) { return Tree.value(Child.get()); }

// NullEnv: EmptyEnv().
Env RootExp::computeEnv(ExprTree &, Exp *) { return Env(); }

int RootExp::oracleValue(const Env &E) const {
  return Child.peek()->oracleValue(E);
}

//===----------------------------------------------------------------------===//
// PlusExp: EXP0 ::= EXP1 + EXP2
//===----------------------------------------------------------------------===//

// SumVal: o.expl.value() + o.exp2.value().
int PlusExp::computeValue(ExprTree &Tree) {
  return Tree.value(Lhs.get()) + Tree.value(Rhs.get());
}

// PassEnv: o.parent.env(o).
Env PlusExp::computeEnv(ExprTree &Tree, Exp *) { return Tree.envOf(this); }

int PlusExp::oracleValue(const Env &E) const {
  return Lhs.peek()->oracleValue(E) + Rhs.peek()->oracleValue(E);
}

//===----------------------------------------------------------------------===//
// MulExp: EXP0 ::= EXP1 * EXP2 (extension)
//===----------------------------------------------------------------------===//

int MulExp::computeValue(ExprTree &Tree) {
  return Tree.value(Lhs.get()) * Tree.value(Rhs.get());
}

Env MulExp::computeEnv(ExprTree &Tree, Exp *) { return Tree.envOf(this); }

int MulExp::oracleValue(const Env &E) const {
  return Lhs.peek()->oracleValue(E) * Rhs.peek()->oracleValue(E);
}

//===----------------------------------------------------------------------===//
// LetExp: EXP0 ::= let ID = EXP1 in EXP2 ni
//===----------------------------------------------------------------------===//

// Exp2Val: o.exp2.value().
int LetExp::computeValue(ExprTree &Tree) { return Tree.value(Body.get()); }

// LetEnv: the nonterminal-context case analysis of Algorithm 9 — the
// binding expression inherits the outer environment, the body inherits the
// outer environment extended with the new binding.
Env LetExp::computeEnv(ExprTree &Tree, Exp *Child) {
  if (Child == Bind.get())
    return Tree.envOf(this);
  return Tree.envOf(this).update(Id.get(), Tree.value(Bind.get()));
}

int LetExp::oracleValue(const Env &E) const {
  Env Inner = E.update(Id.peek(), Bind.peek()->oracleValue(E));
  return Body.peek()->oracleValue(Inner);
}

//===----------------------------------------------------------------------===//
// IdExp: EXP ::= ID
//===----------------------------------------------------------------------===//

// IdVal: LookupEnv(o.parent.env(o), id). Unbound names evaluate to 0.
int IdExp::computeValue(ExprTree &Tree) {
  return Tree.envOf(this).lookup(Id.get()).value_or(0);
}

int IdExp::oracleValue(const Env &E) const {
  return E.lookup(Id.peek()).value_or(0);
}

//===----------------------------------------------------------------------===//
// IntExp: EXP ::= INT
//===----------------------------------------------------------------------===//

// IntVal: o.int.
int IntExp::computeValue(ExprTree &) { return Lit.get(); }

int IntExp::oracleValue(const Env &) const { return Lit.peek(); }

//===----------------------------------------------------------------------===//
// ExprTree
//===----------------------------------------------------------------------===//

ExprTree::ExprTree(Runtime &RT)
    : RT(RT),
      Value(
          RT, [this](Exp *N) { return N->computeValue(*this); },
          EvalStrategy::Demand, "Exp.value"),
      EnvAttr(
          RT, [this](Exp *P, Exp *C) { return P->computeEnv(*this, C); },
          EvalStrategy::Demand, "Exp.env") {}

ExprTree::~ExprTree() = default;

Exp *ExprTree::adopt(std::unique_ptr<Exp> Node) {
  Exp *Raw = Node.get();
  Pool.push_back(std::move(Node));
  return Raw;
}

RootExp *ExprTree::makeRoot(Exp *Child) {
  auto *N = new RootExp(RT, Child);
  Pool.emplace_back(N);
  if (Child)
    Child->Parent.set(N);
  return N;
}

PlusExp *ExprTree::makePlus(Exp *L, Exp *R) {
  auto *N = new PlusExp(RT, L, R);
  Pool.emplace_back(N);
  L->Parent.set(N);
  R->Parent.set(N);
  return N;
}

MulExp *ExprTree::makeMul(Exp *L, Exp *R) {
  auto *N = new MulExp(RT, L, R);
  Pool.emplace_back(N);
  L->Parent.set(N);
  R->Parent.set(N);
  return N;
}

LetExp *ExprTree::makeLet(std::string Id, Exp *Bind, Exp *Body) {
  auto *N = new LetExp(RT, std::move(Id), Bind, Body);
  Pool.emplace_back(N);
  Bind->Parent.set(N);
  Body->Parent.set(N);
  return N;
}

IdExp *ExprTree::makeId(std::string Id) {
  auto *N = new IdExp(RT, std::move(Id));
  Pool.emplace_back(N);
  return N;
}

IntExp *ExprTree::makeInt(int Value) {
  auto *N = new IntExp(RT, Value);
  Pool.emplace_back(N);
  return N;
}

Env ExprTree::envOf(Exp *N) {
  Exp *P = N->Parent.get();
  if (!P)
    return Env(); // Parentless productions live in the empty environment.
  return env(P, N);
}

void ExprTree::replaceChild(Cell<Exp *> &Slot, Exp *Parent, Exp *NewChild) {
  Exp *Old = Slot.peek();
  if (Old == NewChild)
    return;
  Slot.set(NewChild);
  if (NewChild)
    NewChild->Parent.set(Parent);
  if (Old)
    Old->Parent.set(nullptr);
}

} // namespace alphonse::attrgram
