//===- FormulaParser.cpp - Text front end for expression trees ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "attrgram/FormulaParser.h"

#include <cctype>

namespace alphonse::attrgram {

namespace {

/// Character-level recursive-descent parser over one formula string.
class Parser {
public:
  Parser(ExprTree &Tree, const std::string &Source, DiagnosticEngine &Diags,
         CellRefFactory MakeCellRef)
      : Tree(Tree), Source(Source), Diags(Diags),
        MakeCellRef(std::move(MakeCellRef)) {}

  Exp *run() {
    Exp *E = parseExpr();
    if (!E)
      return nullptr;
    skipSpace();
    if (Pos != Source.size()) {
      error("unexpected trailing input");
      return nullptr;
    }
    return E;
  }

private:
  SourceLocation here() const {
    return SourceLocation(1, static_cast<uint32_t>(Pos + 1));
  }

  void error(const std::string &Message) {
    if (!Failed)
      Diags.error(here(), Message);
    Failed = true;
  }

  void skipSpace() {
    while (Pos < Source.size() && std::isspace(
                                      static_cast<unsigned char>(Source[Pos])))
      ++Pos;
  }

  bool peekChar(char C) {
    skipSpace();
    return Pos < Source.size() && Source[Pos] == C;
  }

  bool eatChar(char C) {
    if (!peekChar(C))
      return false;
    ++Pos;
    return true;
  }

  /// Reads an identifier or keyword; empty if none present.
  std::string readWord() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
            Source[Pos] == '_')) {
      if (Pos == Start && std::isdigit(static_cast<unsigned char>(Source[Pos])))
        break; // Identifiers cannot start with a digit.
      ++Pos;
    }
    return Source.substr(Start, Pos - Start);
  }

  /// Peeks the next word without consuming it.
  std::string peekWord() {
    size_t Save = Pos;
    std::string W = readWord();
    Pos = Save;
    return W;
  }

  bool parseInt(int &Out) {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Source.size() && Source[Pos] == '-')
      ++Pos;
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(Source[Pos])))
      ++Pos;
    if (Pos == Start || (Source[Start] == '-' && Pos == Start + 1)) {
      Pos = Start;
      return false;
    }
    Out = std::stoi(Source.substr(Start, Pos - Start));
    return true;
  }

  Exp *parseExpr() {
    Exp *L = parseTerm();
    if (!L)
      return nullptr;
    while (eatChar('+')) {
      Exp *R = parseTerm();
      if (!R)
        return nullptr;
      L = Tree.makePlus(L, R);
    }
    return L;
  }

  Exp *parseTerm() {
    Exp *L = parseFactor();
    if (!L)
      return nullptr;
    while (eatChar('*')) {
      Exp *R = parseFactor();
      if (!R)
        return nullptr;
      L = Tree.makeMul(L, R);
    }
    return L;
  }

  Exp *parseFactor() {
    skipSpace();
    if (Pos >= Source.size()) {
      error("expected an expression");
      return nullptr;
    }
    if (eatChar('(')) {
      Exp *E = parseExpr();
      if (!E)
        return nullptr;
      if (!eatChar(')')) {
        error("expected ')'");
        return nullptr;
      }
      return E;
    }
    int Lit = 0;
    char C = Source[Pos];
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-') {
      if (!parseInt(Lit)) {
        error("malformed integer literal");
        return nullptr;
      }
      return Tree.makeInt(Lit);
    }
    std::string Word = peekWord();
    if (Word == "let")
      return parseLet();
    if (Word == "cell")
      return parseCellRef();
    if (!Word.empty()) {
      readWord();
      return Tree.makeId(Word);
    }
    error("expected an expression");
    return nullptr;
  }

  Exp *parseLet() {
    readWord(); // 'let'
    std::string Id = readWord();
    if (Id.empty()) {
      error("expected identifier after 'let'");
      return nullptr;
    }
    if (!eatChar('=')) {
      error("expected '=' in let binding");
      return nullptr;
    }
    Exp *Bind = parseExpr();
    if (!Bind)
      return nullptr;
    if (readWord() != "in") {
      error("expected 'in' after let binding");
      return nullptr;
    }
    Exp *Body = parseExpr();
    if (!Body)
      return nullptr;
    if (readWord() != "ni") {
      error("expected 'ni' to close let expression");
      return nullptr;
    }
    return Tree.makeLet(std::move(Id), Bind, Body);
  }

  Exp *parseCellRef() {
    readWord(); // 'cell'
    if (!MakeCellRef) {
      error("cell references are not available in this context");
      return nullptr;
    }
    int Row = 0, Col = 0;
    if (!eatChar('(') || !parseInt(Row) || !eatChar(',') || !parseInt(Col) ||
        !eatChar(')')) {
      error("expected cell(row, col)");
      return nullptr;
    }
    Exp *Ref = MakeCellRef(Row, Col);
    if (!Ref)
      error("cell reference out of range");
    return Ref;
  }

  ExprTree &Tree;
  const std::string &Source;
  DiagnosticEngine &Diags;
  CellRefFactory MakeCellRef;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

Exp *parseFormula(ExprTree &Tree, const std::string &Source,
                  DiagnosticEngine &Diags, CellRefFactory MakeCellRef) {
  Parser P(Tree, Source, Diags, std::move(MakeCellRef));
  return P.run();
}

} // namespace alphonse::attrgram
