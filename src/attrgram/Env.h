//===- Env.h - Immutable environments for attribute grammars ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment abstraction the paper's attribute-grammar example
/// assumes (Section 7.1: "EmptyEnv, UpdateEnv and LookupEnv operations...
/// a keyed set of (identifier, value) pairs"). Implemented as an immutable
/// shared-structure list so that environment attribute values are cheap to
/// copy and to compare — equality is what the quiescence machinery cuts
/// off on.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_ATTRGRAM_ENV_H
#define ALPHONSE_ATTRGRAM_ENV_H

#include <memory>
#include <optional>
#include <string>

namespace alphonse::attrgram {

/// An immutable environment mapping identifiers to integer values.
///
/// update() shadows earlier bindings; lookup() returns the innermost one.
/// Equality is structural (with a shared-spine fast path), so two
/// environments built the same way compare equal even if allocated
/// separately.
class Env {
public:
  /// The empty environment (EmptyEnv()).
  Env() = default;

  /// UpdateEnv(this, Name, Value): a new environment with one more binding.
  Env update(std::string Name, int Value) const {
    return Env(std::make_shared<const Binding>(
        Binding{std::move(Name), Value, Head}));
  }

  /// LookupEnv(this, Name): the innermost binding, or nullopt if unbound.
  std::optional<int> lookup(const std::string &Name) const {
    for (const Binding *B = Head.get(); B; B = B->Next.get())
      if (B->Name == Name)
        return B->Value;
    return std::nullopt;
  }

  /// Number of bindings (shadowed ones included).
  size_t size() const {
    size_t N = 0;
    for (const Binding *B = Head.get(); B; B = B->Next.get())
      ++N;
    return N;
  }

  bool empty() const { return Head == nullptr; }

  /// Structural equality with a shared-tail shortcut.
  friend bool operator==(const Env &A, const Env &B) {
    const Binding *X = A.Head.get();
    const Binding *Y = B.Head.get();
    while (X != Y) { // Pointer equality covers shared tails and both-null.
      if (!X || !Y)
        return false;
      if (X->Name != Y->Name || X->Value != Y->Value)
        return false;
      X = X->Next.get();
      Y = Y->Next.get();
    }
    return true;
  }

private:
  struct Binding {
    std::string Name;
    int Value;
    std::shared_ptr<const Binding> Next;
  };

  explicit Env(std::shared_ptr<const Binding> Head) : Head(std::move(Head)) {}

  std::shared_ptr<const Binding> Head;
};

} // namespace alphonse::attrgram

#endif // ALPHONSE_ATTRGRAM_ENV_H
