//===- ExprTree.h - Attribute grammars as Alphonse objects ------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.1 of the paper: every attribute grammar can be represented as
/// Alphonse data types. Each production is an object type; synthesized
/// attributes become maintained methods with no arguments; inherited
/// attributes become maintained methods taking the inheriting child, with
/// a case analysis over the child's context. This file implements the
/// paper's let-expression grammar (Algorithm 6) with the exact types of
/// Algorithms 7 and 8:
///
///   ROOT ::= EXP                 ROOT.value = EXP.value
///                                EXP.env    = EmptyEnv()
///   EXP0 ::= EXP1 + EXP2         EXP0.value = EXP1.value + EXP2.value
///                                EXPi.env   = EXP0.env
///   EXP0 ::= let ID = EXP1 in EXP2 ni
///                                EXP0.value = EXP2.value
///                                EXP1.env   = EXP0.env
///                                EXP2.env   = UpdateEnv(EXP0.env, id,
///                                                       EXP1.value)
///   EXP  ::= ID                  EXP.value  = LookupEnv(EXP.env, id)
///   EXP  ::= INT                 EXP.value  = INT
///
/// A multiplication production is added beyond the paper (it exercises the
/// same machinery and makes the spreadsheet example richer).
///
/// The tree is fully editable: parent/child pointers, identifiers, and
/// literals are tracked Cells, so any edit triggers exactly the
/// reattribution the dependencies dictate — the "incremental attribute
/// evaluation" the grammar systems of Section 10 implement, subsumed here.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_ATTRGRAM_EXPRTREE_H
#define ALPHONSE_ATTRGRAM_EXPRTREE_H

#include "attrgram/Env.h"
#include "core/Alphonse.h"

#include <memory>
#include <string>
#include <vector>

namespace alphonse::attrgram {

class ExprTree;

/// Base production object: TYPE Exp = Prod OBJECT with maintained methods
/// value() and env(c) (Algorithm 7). The parent pointer is tracked.
class Exp {
public:
  explicit Exp(Runtime &RT) : Parent(RT, nullptr, "exp.parent") {}
  virtual ~Exp();

  Cell<Exp *> Parent;

  /// LLVM-style checked downcast without RTTI: non-null iff this is an
  /// IntExp (used for in-place literal edits).
  virtual class IntExp *asIntExp() { return nullptr; }

  /// Exhaustive (non-incremental) attribute evaluation, for oracles and
  /// the E5 baseline. Reads untracked state only.
  virtual int oracleValue(const Env &E) const = 0;

protected:
  friend class ExprTree;

  /// The synthesized attribute equation for this production.
  virtual int computeValue(ExprTree &Tree) = 0;

  /// The inherited attribute equation: the environment this node passes to
  /// \p Child. Only productions with nonterminal children override it.
  virtual Env computeEnv(ExprTree &Tree, Exp *Child);
};

/// ROOT ::= EXP (Algorithm 8's RootExp).
class RootExp final : public Exp {
public:
  RootExp(Runtime &RT, Exp *Child) : Exp(RT), Child(RT, Child, "root.exp") {}
  Cell<Exp *> Child;

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  Env computeEnv(ExprTree &Tree, Exp *Child) override;
  int oracleValue(const Env &E) const override;
};

/// EXP0 ::= EXP1 + EXP2 (PlusExp).
class PlusExp final : public Exp {
public:
  PlusExp(Runtime &RT, Exp *L, Exp *R)
      : Exp(RT), Lhs(RT, L, "plus.lhs"), Rhs(RT, R, "plus.rhs") {}
  Cell<Exp *> Lhs;
  Cell<Exp *> Rhs;

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  Env computeEnv(ExprTree &Tree, Exp *Child) override;
  int oracleValue(const Env &E) const override;
};

/// EXP0 ::= EXP1 * EXP2 (beyond-paper extension; same machinery).
class MulExp final : public Exp {
public:
  MulExp(Runtime &RT, Exp *L, Exp *R)
      : Exp(RT), Lhs(RT, L, "mul.lhs"), Rhs(RT, R, "mul.rhs") {}
  Cell<Exp *> Lhs;
  Cell<Exp *> Rhs;

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  Env computeEnv(ExprTree &Tree, Exp *Child) override;
  int oracleValue(const Env &E) const override;
};

/// EXP0 ::= let ID = EXP1 in EXP2 ni (LetExp). Algorithm 9's LetEnv shows
/// the inherited-attribute case analysis this class reproduces.
class LetExp final : public Exp {
public:
  LetExp(Runtime &RT, std::string Id, Exp *Bind, Exp *Body)
      : Exp(RT), Id(RT, std::move(Id), "let.id"), Bind(RT, Bind, "let.exp1"),
        Body(RT, Body, "let.exp2") {}
  Cell<std::string> Id;
  Cell<Exp *> Bind;
  Cell<Exp *> Body;

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  Env computeEnv(ExprTree &Tree, Exp *Child) override;
  int oracleValue(const Env &E) const override;
};

/// EXP ::= ID (IdExp). Unbound identifiers evaluate to 0.
class IdExp final : public Exp {
public:
  IdExp(Runtime &RT, std::string Id)
      : Exp(RT), Id(RT, std::move(Id), "id.name") {}
  Cell<std::string> Id;

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  int oracleValue(const Env &E) const override;
};

/// EXP ::= INT (IntExp).
class IntExp final : public Exp {
public:
  IntExp(Runtime &RT, int Value) : Exp(RT), Lit(RT, Value, "int.lit") {}
  Cell<int> Lit;

  IntExp *asIntExp() override { return this; }

protected:
  friend class ExprTree;
  int computeValue(ExprTree &Tree) override;
  int oracleValue(const Env &E) const override;
};

/// Owns a forest of production objects and the two maintained attribute
/// methods (value and env) shared by all of them.
class ExprTree {
public:
  explicit ExprTree(Runtime &RT);
  ~ExprTree();

  /// Node factories; the tree owns every node and wires parent pointers.
  RootExp *makeRoot(Exp *Child);
  PlusExp *makePlus(Exp *L, Exp *R);
  MulExp *makeMul(Exp *L, Exp *R);
  LetExp *makeLet(std::string Id, Exp *Bind, Exp *Body);
  IdExp *makeId(std::string Id);
  IntExp *makeInt(int Value);

  /// Adopts an externally constructed production (e.g. the spreadsheet's
  /// CellRefExp) into this tree's ownership.
  Exp *adopt(std::unique_ptr<Exp> Node);

  /// The maintained synthesized attribute: N.value().
  int value(Exp *N) { return Value(N); }

  /// The maintained inherited attribute: Parent.env(Child) — the
  /// environment \p Parent provides to \p Child.
  Env env(Exp *Parent, Exp *Child) { return EnvAttr(Parent, Child); }

  /// The environment of \p N itself (what its parent provides; empty when
  /// parentless). This is the "EXPi.env" of the equations.
  Env envOf(Exp *N);

  /// Structure edits that keep parent pointers coherent.
  void replaceChild(Cell<Exp *> &Slot, Exp *Parent, Exp *NewChild);

  /// Exhaustive evaluation of \p Root's attributes — the baseline
  /// attribution pass of experiment E5. Untracked.
  int oracleValue(const Exp *Root) const { return Root->oracleValue(Env()); }

  Runtime &runtime() { return RT; }
  size_t size() const { return Pool.size(); }

private:
  Runtime &RT;
  Maintained<int(Exp *)> Value;
  Maintained<Env(Exp *, Exp *)> EnvAttr;
  std::vector<std::unique_ptr<Exp>> Pool;
};

} // namespace alphonse::attrgram

#endif // ALPHONSE_ATTRGRAM_EXPRTREE_H
