//===- CheckpointIO.h - Durable checkpoint container ------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk container for durable graph checkpoints (DESIGN.md §10):
/// a versioned, sectioned binary file with per-section CRC32, written
/// crash-atomically (temp file + fsync + rename + directory fsync), plus
/// the sidecar delta log appended between full snapshots.
///
/// Layout of a snapshot file:
///
///   offset 0   magic "ALFCKPT\0"                        (8 bytes)
///   offset 8   format version (u32, currently 1)
///   offset 12  section count (u32)
///   offset 16  snapshot id (u64, unique per written snapshot)
///   offset 24  CRC32 of the section table (u32) + u32 padding
///   offset 32  section table: N x { tag u32, pad u32, offset u64,
///                                   size u64, crc u32, pad u32 }
///   ...        section payloads, each 8-byte aligned
///
/// The delta log lives at `<snapshot path>.delta` and holds framed
/// records: { magic u32, seq u64, base snapshot id u64, payload size u64,
/// payload crc u32, pad u32 } + payload. Readers accept the longest
/// intact prefix whose base id matches the snapshot (WAL semantics: a
/// torn or corrupt tail is discarded, a stale base id — left over from a
/// crash between snapshot rename and log reset — discards the whole log).
///
/// Every durable I/O step passes a FaultInjector site first ("ckpt.io"
/// for snapshot writes, "ckpt.delta.io" for appends), so the crash
/// harness can kill the process deterministically between any two steps.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_CHECKPOINTIO_H
#define ALPHONSE_SUPPORT_CHECKPOINTIO_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace alphonse {

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

/// Why a checkpoint operation was refused. Every failure of the save or
/// restore path carries one of these codes so drivers can report a
/// structured diagnostic instead of a stack trace.
enum class CkptError : uint8_t {
  Io,           ///< open/read/write/fsync/rename failed (see message).
  BadMagic,     ///< The file is not a checkpoint at all.
  BadVersion,   ///< Written by an incompatible format version.
  Truncated,    ///< Shorter than its own header/section table claims.
  CrcMismatch,  ///< A section (or the table) failed its CRC32.
  Malformed,    ///< Structurally valid container, nonsensical contents.
  StaleDelta,   ///< Delta record does not belong to this snapshot.
  VerifyFailed, ///< Restored graph failed DepGraph::verify().
  Busy,         ///< Live state not quiescent (pending work or open batch).
};

/// Stable lowercase name for \p E ("crc_mismatch", ...), for diagnostics
/// and scripts.
const char *ckptErrorName(CkptError E);

/// Thrown by every checkpoint save/restore failure path.
class CheckpointError : public std::runtime_error {
public:
  CheckpointError(CkptError Code, const std::string &Message)
      : std::runtime_error(std::string("checkpoint error [") +
                           ckptErrorName(Code) + "]: " + Message),
        Code(Code) {}

  CkptError code() const { return Code; }

private:
  CkptError Code;
};

//===----------------------------------------------------------------------===//
// CRC32 and byte streams
//===----------------------------------------------------------------------===//

/// CRC-32 (IEEE 802.3 polynomial, the zlib one). \p Seed chains calls.
uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0);

/// Little-endian append-only byte sink for section payloads.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// Length-prefixed (u32) byte string.
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader over a section payload. Every
/// overrun throws CheckpointError(Truncated) — a corrupt length field can
/// never read out of bounds or allocate unbounded memory.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}

  uint8_t u8() {
    need(1);
    return *P++;
  }
  uint32_t u32() {
    need(4);
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(*P++) << (8 * I);
    return V;
  }
  uint64_t u64() {
    need(8);
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(*P++) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    need(N);
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

private:
  void need(size_t N) {
    if (remaining() < N)
      throw CheckpointError(CkptError::Truncated,
                            "section payload ends mid-field");
  }

  const uint8_t *P;
  const uint8_t *End;
};

//===----------------------------------------------------------------------===//
// Snapshot container
//===----------------------------------------------------------------------===//

/// Builds a four-character section tag ('GRPH', 'GLBL', ...).
constexpr uint32_t sectionTag(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

/// Assembles sections and writes them crash-atomically: the target path
/// either keeps its previous contents or names the complete new snapshot;
/// a kill at any injected point never leaves a torn file under the final
/// name.
class CheckpointWriter {
public:
  CheckpointWriter();

  /// Unique id of the snapshot being assembled; delta records reference it.
  uint64_t snapshotId() const { return SnapshotId; }

  void addSection(uint32_t Tag, std::vector<uint8_t> Payload);
  size_t numSections() const { return Sections.size(); }

  /// Writes `<Path>.tmp`, fsyncs, renames onto \p Path, fsyncs the parent
  /// directory. \returns total bytes written. Throws CheckpointError(Io).
  uint64_t writeFile(const std::string &Path) const;

private:
  struct Section {
    uint32_t Tag;
    std::vector<uint8_t> Payload;
  };

  uint64_t SnapshotId;
  std::vector<Section> Sections;
};

/// Opens and fully validates a snapshot file: magic, version, header
/// bounds, table CRC, per-section CRC and bounds. Construction either
/// yields a reader whose every section is intact, or throws a coded
/// CheckpointError — a torn or tampered file can never be half-loaded.
class CheckpointReader {
public:
  explicit CheckpointReader(const std::string &Path);

  uint64_t snapshotId() const { return SnapshotId; }
  bool hasSection(uint32_t Tag) const;

  /// Reader over the payload of \p Tag; throws Malformed if absent.
  ByteReader section(uint32_t Tag) const;

private:
  struct Section {
    uint32_t Tag;
    size_t Offset;
    size_t Size;
  };

  uint64_t SnapshotId = 0;
  std::vector<uint8_t> Contents;
  std::vector<Section> Sections;
};

//===----------------------------------------------------------------------===//
// Delta log
//===----------------------------------------------------------------------===//

/// One intact delta record recovered from the log.
struct DeltaRecord {
  uint64_t Seq;
  std::vector<uint8_t> Payload;
};

/// Appends framed records to `<snapshot>.delta`. Each append is one
/// header+payload write followed by fsync; a kill mid-append leaves a
/// torn tail that readDeltaLog discards.
class DeltaAppender {
public:
  /// \p BaseSnapshotId ties records to the snapshot they extend; \p
  /// FirstSeq continues an existing log (use readDeltaLog().size() + 1).
  DeltaAppender(std::string Path, uint64_t BaseSnapshotId,
                uint64_t FirstSeq = 1)
      : Path(std::move(Path)), BaseSnapshotId(BaseSnapshotId),
        NextSeq(FirstSeq) {}

  /// \returns bytes appended (header + payload). Throws CheckpointError(Io).
  uint64_t append(const std::vector<uint8_t> &Payload);

  uint64_t nextSeq() const { return NextSeq; }

private:
  std::string Path;
  uint64_t BaseSnapshotId;
  uint64_t NextSeq;
};

/// Reads the longest intact prefix of `\p Path` whose records extend the
/// snapshot \p BaseSnapshotId, in sequence order starting at 1. A missing
/// log is an empty prefix. A torn/corrupt tail is discarded; a first
/// record with a foreign base id discards the whole log (it predates the
/// current snapshot). When \p Note is non-null it receives a one-line
/// description of anything discarded (empty when the log was clean).
std::vector<DeltaRecord> readDeltaLog(const std::string &Path,
                                      uint64_t BaseSnapshotId,
                                      std::string *Note = nullptr);

/// Like readDeltaLog, but also truncates any torn/foreign tail in place
/// so the next append lands on an intact record boundary (a record
/// appended after garbage would be lost to the reader's tail-discard).
/// \returns the number of surviving records — the next append's sequence
/// number is that + 1. Missing log: 0.
uint64_t repairDeltaLog(const std::string &Path, uint64_t BaseSnapshotId,
                        std::string *Note = nullptr);

/// Removes the delta log at \p Path if present (called right after a new
/// full snapshot lands, through a "ckpt.io" injection site). Throws
/// CheckpointError(Io) on a failure other than the file being absent.
void removeDeltaLog(const std::string &Path);

/// The conventional delta-log path for a snapshot at \p SnapshotPath.
inline std::string deltaLogPath(const std::string &SnapshotPath) {
  return SnapshotPath + ".delta";
}

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_CHECKPOINTIO_H
