//===- Statistics.cpp - Runtime counters ----------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

namespace alphonse {

std::ostream &operator<<(std::ostream &OS, const Statistics &S) {
  OS << "nodes.created        " << S.NodesCreated << '\n'
     << "nodes.destroyed      " << S.NodesDestroyed << '\n'
     << "edges.created        " << S.EdgesCreated << '\n'
     << "edges.removed        " << S.EdgesRemoved << '\n'
     << "edges.deduped        " << S.EdgesDeduped << '\n'
     << "proc.executions      " << S.ProcExecutions << '\n'
     << "proc.cacheHits       " << S.CacheHits << '\n'
     << "writes.tracked       " << S.TrackedWrites << '\n'
     << "writes.quiescent     " << S.QuiescentWrites << '\n'
     << "eval.steps           " << S.EvalSteps << '\n'
     << "eval.cutoffs         " << S.QuiescenceCutoffs << '\n'
     << "partition.unions     " << S.PartitionUnions << '\n'
     << "partition.scopedEval " << S.PartitionScopedEvals << '\n'
     << "fault.quarantined    " << S.NodesQuarantined << '\n'
     << "fault.resets         " << S.QuarantineResets << '\n'
     << "fault.divergence     " << S.DivergenceTrips << '\n'
     << "fault.cycles         " << S.CycleFaults << '\n'
     << "fault.stepLimit      " << S.StepLimitTrips << '\n'
     << "txn.begun            " << S.TxnBegun << '\n'
     << "txn.committed        " << S.TxnCommitted << '\n'
     << "txn.rolledBack       " << S.TxnRolledBack << '\n'
     << "txn.undoEntries      " << S.TxnUndoEntries << '\n';
  return OS;
}

} // namespace alphonse
