//===- Statistics.cpp - Runtime counters ----------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

namespace alphonse {

std::ostream &operator<<(std::ostream &OS, const Statistics &S) {
  OS << "nodes.created        " << S.NodesCreated.total() << '\n'
     << "nodes.destroyed      " << S.NodesDestroyed.total() << '\n'
     << "edges.created        " << S.EdgesCreated.total() << '\n'
     << "edges.removed        " << S.EdgesRemoved.total() << '\n'
     << "edges.deduped        " << S.EdgesDeduped.total() << '\n'
     << "proc.executions      " << S.ProcExecutions.total() << '\n'
     << "proc.cacheHits       " << S.CacheHits.total() << '\n'
     << "writes.tracked       " << S.TrackedWrites.total() << '\n'
     << "writes.quiescent     " << S.QuiescentWrites.total() << '\n'
     << "eval.steps           " << S.EvalSteps.total() << '\n'
     << "eval.cutoffs         " << S.QuiescenceCutoffs.total() << '\n'
     << "partition.unions     " << S.PartitionUnions.total() << '\n'
     << "partition.scopedEval " << S.PartitionScopedEvals.total() << '\n'
     << "fault.quarantined    " << S.NodesQuarantined.total() << '\n'
     << "fault.resets         " << S.QuarantineResets.total() << '\n'
     << "fault.divergence     " << S.DivergenceTrips.total() << '\n'
     << "fault.cycles         " << S.CycleFaults.total() << '\n'
     << "fault.stepLimit      " << S.StepLimitTrips.total() << '\n'
     << "txn.begun            " << S.TxnBegun.total() << '\n'
     << "txn.committed        " << S.TxnCommitted.total() << '\n'
     << "txn.rolledBack       " << S.TxnRolledBack.total() << '\n'
     << "txn.undoEntries      " << S.TxnUndoEntries.total() << '\n'
     << "prop.workers         " << S.PropWorkers.total() << '\n'
     << "prop.partitions_drained " << S.PropPartitionsDrained.total() << '\n'
     << "prop.conflicts       " << S.PropConflicts.total() << '\n'
     << "pool.edge_reuse      " << S.EdgeReuse.total() << '\n'
     << "graph.node_bytes     " << S.GraphNodeBytes.total() << '\n'
     << "graph.edge_bytes     " << S.GraphEdgeBytes.total() << '\n'
     << "pool.high_water      " << S.PoolHighWater.total() << '\n'
     << "shape.nodes_reserved " << S.ShapeNodesReserved.total() << '\n'
     << "shape.edges_reserved " << S.ShapeEdgesReserved.total() << '\n'
     << "static.calls         " << S.StaticCalls.total() << '\n'
     << "static.instances     " << S.StaticInstances.total() << '\n'
     << "ckpt.snapshots       " << S.CkptSnapshots.total() << '\n'
     << "ckpt.deltas          " << S.CkptDeltas.total() << '\n'
     << "ckpt.sections        " << S.CkptSections.total() << '\n'
     << "ckpt.bytes_written   " << S.CkptBytesWritten.total() << '\n'
     << "ckpt.restores        " << S.CkptRestores.total() << '\n'
     << "ckpt.restored_nodes  " << S.CkptRestoredNodes.total() << '\n'
     << "ckpt.restore_micros  " << S.CkptRestoreMicros.total() << '\n'
     << "gov.waves            " << S.GovWaves.total() << '\n'
     << "gov.waves_degraded   " << S.GovWavesDegraded.total() << '\n'
     << "gov.waves_deferred   " << S.GovWavesDeferred.total() << '\n'
     << "gov.waves_shed       " << S.GovWavesShed.total() << '\n'
     << "gov.deadline_expired " << S.GovDeadlineExpired.total() << '\n'
     << "gov.step_budget_hits " << S.GovStepBudgetHits.total() << '\n'
     << "gov.mem_ceiling_hits " << S.GovMemCeilingHits.total() << '\n'
     << "gov.parked           " << S.GovParkedNodes.total() << '\n'
     << "gov.stale_nodes      " << S.GovStaleNodes.total() << '\n'
     << "gov.nodes_stamped    " << S.GovNodesStamped.total() << '\n'
     << "gov.deadline_blows   " << S.GovDeadlineBlows.total() << '\n'
     << "gov.watchdog_quarantined " << S.GovWatchdogQuarantines.total() << '\n'
     << "gov.backoff_waits    " << S.GovBackoffWaits.total() << '\n';
  return OS;
}

} // namespace alphonse
