//===- Diagnostics.h - Error reporting for Alphonse-L -----------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine shared by the Alphonse-L lexer, parser,
/// semantic analyzer, transformer, and interpreter. The library never
/// throws; callers accumulate diagnostics here and inspect hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_DIAGNOSTICS_H
#define ALPHONSE_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLocation.h"

#include <ostream>
#include <string>
#include <vector>

namespace alphonse {

/// Reports an unrecoverable runtime-invariant violation to stderr and
/// aborts. Used where continuing would be undefined behaviour (e.g. a call
/// stack underflow) so that release builds fail loudly instead of
/// corrupting state silently.
[[noreturn]] void fatalError(const char *Message);

/// Severity of one diagnostic.
enum class DiagKind : uint8_t {
  Error,
  Warning,
  Note,
};

/// One reported problem: severity, position, and message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLocation Loc;
  std::string Message;
};

/// Accumulates diagnostics for one compilation.
///
/// Messages follow the LLVM style: start lowercase, no trailing period.
class DiagnosticEngine {
public:
  /// Reports an error at \p Loc.
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  /// Reports a warning at \p Loc.
  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  /// Attaches an explanatory note to the preceding diagnostic.
  void note(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  size_t errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Drops all accumulated diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Prints every diagnostic as "<line:col>: <kind>: <message>".
  void print(std::ostream &OS) const;

  /// Returns the rendered diagnostics as one string (test convenience).
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_DIAGNOSTICS_H
