//===- FaultInfo.h - Failure descriptors for the evaluator ------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure model of the incremental runtime. Hoover's correctness
/// theorem (Section 5) only covers programs obeying the DET/TOP/OBS
/// restrictions; behaviour outside them is undefined in the paper. This
/// header defines what *this* implementation does instead: a failing node
/// is quarantined with a FaultInfo describing what went wrong, and the
/// rest of the graph keeps working. See the "Failure model" section of
/// DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_FAULTINFO_H
#define ALPHONSE_SUPPORT_FAULTINFO_H

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

namespace alphonse {

/// Why a dependency-graph node was quarantined.
enum class FaultKind : uint8_t {
  /// The node's recompute threw an exception (user body, allocator, ...).
  Exception,
  /// The node re-executed more than Config::MaxReexecutions times within
  /// one propagation: the procedure likely violates the DET restriction
  /// (Section 3.5) and would never converge.
  Divergence,
  /// A re-entrant call chain on the node exceeded
  /// Config::MaxReentrantDepth: an in-flight dependency cycle.
  Cycle,
  /// The evaluator hit Config::EvalStepLimit while this node was being
  /// processed; propagation was aborted with work left pending.
  StepLimit,
  /// The node's recompute called another node that was already
  /// quarantined; the fault cascaded.
  Poisoned,
  /// A single evaluation of the node repeatedly consumed an entire wave
  /// deadline by itself; the governor's watchdog quarantined it so one
  /// pathological node cannot starve every governed wave (DESIGN.md §11).
  Deadline,
};

/// Short stable name for a FaultKind ("exception", "divergence", ...).
inline const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Exception:
    return "exception";
  case FaultKind::Divergence:
    return "divergence";
  case FaultKind::Cycle:
    return "cycle";
  case FaultKind::StepLimit:
    return "step-limit";
  case FaultKind::Poisoned:
    return "poisoned";
  case FaultKind::Deadline:
    return "deadline";
  }
  return "unknown";
}

/// Everything the runtime captured about one quarantined node.
struct FaultInfo {
  FaultKind Kind = FaultKind::Exception;
  /// Debug name of the faulting node at quarantine time.
  std::string NodeName;
  /// Human-readable description of the failure.
  std::string Message;
  /// The original exception, when the fault was a throw (null otherwise).
  /// Rethrowable with std::rethrow_exception for callers that want the
  /// concrete type back.
  std::exception_ptr Nested;
};

/// Base class of the exceptions the incremental runtime itself throws.
class IncrementalFault : public std::runtime_error {
public:
  explicit IncrementalFault(const std::string &Msg)
      : std::runtime_error(Msg) {}
};

/// Thrown when a re-entrant call chain exceeds Config::MaxReentrantDepth:
/// the demanded value (transitively) depends on its own in-flight
/// computation. Unwinds through every in-flight frame on the cycle,
/// quarantining each one.
class CycleError : public IncrementalFault {
public:
  explicit CycleError(const std::string &Msg) : IncrementalFault(Msg) {}
};

/// Thrown when a call demands the value of a quarantined node. Carries the
/// original fault so callers can diagnose (or rethrow) the root cause.
class QuarantinedError : public IncrementalFault {
public:
  QuarantinedError(const FaultInfo &FI)
      : IncrementalFault("call to quarantined node '" + FI.NodeName +
                         "' (" + faultKindName(FI.Kind) + ": " + FI.Message +
                         ")"),
        OriginalKind(FI.Kind), Nested(FI.Nested) {}

  FaultKind originalKind() const { return OriginalKind; }
  std::exception_ptr nested() const { return Nested; }

private:
  FaultKind OriginalKind;
  std::exception_ptr Nested;
};

/// Builds a FaultInfo for the in-flight exception. Must be called from
/// inside a catch block; classifies runtime-internal exception types into
/// the corresponding FaultKind.
inline FaultInfo captureCurrentFault(std::string NodeName) {
  FaultInfo FI;
  FI.NodeName = std::move(NodeName);
  FI.Nested = std::current_exception();
  try {
    throw;
  } catch (const CycleError &E) {
    FI.Kind = FaultKind::Cycle;
    FI.Message = E.what();
  } catch (const QuarantinedError &E) {
    FI.Kind = FaultKind::Poisoned;
    FI.Message = E.what();
  } catch (const std::exception &E) {
    FI.Kind = FaultKind::Exception;
    FI.Message = E.what();
  } catch (...) {
    FI.Kind = FaultKind::Exception;
    FI.Message = "non-std::exception thrown";
  }
  return FI;
}

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_FAULTINFO_H
