//===- SourceLocation.h - Positions in Alphonse-L source --------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions used by the Alphonse-L lexer, parser, and
/// diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_SOURCELOCATION_H
#define ALPHONSE_SUPPORT_SOURCELOCATION_H

#include <cstdint>
#include <string>

namespace alphonse {

/// A 1-based (line, column) position. Line 0 denotes "no location".
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLocation() = default;
  constexpr SourceLocation(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLocation &RHS) const = default;

  /// Renders as "line:column", or "<unknown>" when invalid.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_SOURCELOCATION_H
