//===- Pool.h - Bump arena and free-list object pool ------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation fast path for the dependency graph's hot bookkeeping
/// (DESIGN.md "Parallel propagation", allocation section). Edge churn
/// dominates beginExecution/endExecution — every re-execution retracts and
/// re-records the instance's referenced-argument set — so Edge objects come
/// from Pool<Edge>: a type-local free list layered over BumpArena chunks.
/// Allocation is a pointer bump or a free-list pop; deallocation is a
/// free-list push; nothing is returned to the system until the pool dies.
///
/// BumpArena is also usable on its own for per-node bookkeeping whose
/// lifetime matches the graph's.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_POOL_H
#define ALPHONSE_SUPPORT_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace alphonse {

/// Chunked bump allocator: allocate-only, everything freed at destruction.
class BumpArena {
public:
  explicit BumpArena(size_t ChunkBytes = 64 * 1024)
      : ChunkBytes(ChunkBytes) {}

  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  /// Returns \p Size bytes aligned to \p Align (never null; grows a new
  /// chunk when the current one is exhausted).
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    if (P + Size > End) {
      size_t Want = Size + Align > ChunkBytes ? Size + Align : ChunkBytes;
      Chunks.push_back(std::make_unique<std::byte[]>(Want));
      TotalBytes += Want;
      Cur = reinterpret_cast<uintptr_t>(Chunks.back().get());
      End = Cur + Want;
      P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    }
    Cur = P + Size;
    return reinterpret_cast<void *>(P);
  }

  /// Typed allocation + construction.
  template <typename T, typename... Args> T *create(Args &&...A) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(A)...);
  }

  size_t bytesReserved() const { return TotalBytes; }
  size_t numChunks() const { return Chunks.size(); }

private:
  size_t ChunkBytes;
  std::vector<std::unique_ptr<std::byte[]>> Chunks;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t TotalBytes = 0;
};

/// Free-list object pool over a BumpArena. T must be trivially
/// destructible (slots are recycled without running destructors) and at
/// least pointer-sized (the free list lives inside dead slots).
template <typename T> class Pool {
  static_assert(sizeof(T) >= sizeof(void *),
                "pooled objects must fit a free-list link");
  static_assert(std::is_trivially_destructible_v<T>,
                "pooled objects are recycled without destruction");

public:
  Pool() = default;

  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  /// True when the next create() will be served from the free list.
  bool hasFree() const { return FreeList != nullptr; }

  /// Allocates and value-initializes one T.
  T *create() {
    if (FreeList) {
      void *Slot = FreeList;
      FreeList = *static_cast<void **>(Slot);
      ++NumReused;
      return new (Slot) T();
    }
    ++NumCreated;
    return new (Arena.allocate(sizeof(T), alignof(T))) T();
  }

  /// Returns \p P's slot to the free list.
  void destroy(T *P) {
    *reinterpret_cast<void **>(P) = FreeList;
    FreeList = P;
  }

  /// Slots ever bump-allocated from the arena.
  uint64_t numCreated() const { return NumCreated; }
  /// Allocations served by recycling a freed slot.
  uint64_t numReused() const { return NumReused; }

  const BumpArena &arena() const { return Arena; }

private:
  BumpArena Arena;
  void *FreeList = nullptr;
  uint64_t NumCreated = 0;
  uint64_t NumReused = 0;
};

/// Chunked, index-addressable slab: the storage behind the graph's dense
/// NodeId/EdgeId tables (DESIGN.md "Engine layering and handle-based
/// storage"). Slots are addressed by dense 32-bit indices, live in
/// fixed-size chunks whose addresses never move (unlike std::vector, a
/// reference taken before a push() stays valid afterwards), and the chunk
/// directory is an array of atomic pointers, so readers may resolve
/// indices lock-free while one externally serialized writer grows the
/// slab. Slots are value-initialized; recycling is the owner's job (the
/// tables keep explicit free lists with generation counters).
template <typename T> class Slab {
public:
  static constexpr uint32_t ChunkSlotsLog2 = 8;
  static constexpr uint32_t ChunkSlots = 1u << ChunkSlotsLog2;
  /// Geometry covers the full 24-bit handle index space.
  static constexpr uint32_t MaxChunks = 1u << (24 - ChunkSlotsLog2);
  /// Directory entries allocated up front (covers the first 4096 slots —
  /// enough for every single-session workload measured in EXPERIMENTS.md
  /// without a single grow).
  static constexpr uint32_t InitialDirChunks = 16;

  Slab() { Dir.store(newDir(InitialDirChunks), std::memory_order_relaxed); }

  ~Slab() {
    std::atomic<T *> *D = Dir.load(std::memory_order_relaxed);
    for (uint32_t I = 0; I < DirCap; ++I)
      delete[] D[I].load(std::memory_order_relaxed);
    delete[] D;
    for (std::atomic<T *> *Old : Retired)
      delete[] Old;
  }

  Slab(const Slab &) = delete;
  Slab &operator=(const Slab &) = delete;

  /// Slots ever appended (free slots included; never shrinks).
  uint32_t size() const { return Count.load(std::memory_order_acquire); }

  T &operator[](uint32_t Index) {
    return Dir.load(std::memory_order_acquire)[Index >> ChunkSlotsLog2]
        .load(std::memory_order_acquire)[Index & (ChunkSlots - 1)];
  }
  const T &operator[](uint32_t Index) const {
    return Dir.load(std::memory_order_acquire)[Index >> ChunkSlotsLog2]
        .load(std::memory_order_acquire)[Index & (ChunkSlots - 1)];
  }

  /// Appends one value-initialized slot and returns its index. Writer-side
  /// only: calls must be externally serialized (the graph's state lock).
  uint32_t push() {
    uint32_t Index = Count.load(std::memory_order_relaxed);
    uint32_t Chunk = Index >> ChunkSlotsLog2;
    if ((Index & (ChunkSlots - 1)) == 0) {
      if (Chunk == DirCap)
        growDir();
      Dir.load(std::memory_order_relaxed)[Chunk].store(
          new T[ChunkSlots](), std::memory_order_release);
      ++NumChunks;
    }
    Count.store(Index + 1, std::memory_order_release);
    return Index;
  }

  /// Bytes reserved by the allocated chunks (slab payload only).
  size_t bytesReserved() const {
    return static_cast<size_t>(NumChunks) * ChunkSlots * sizeof(T);
  }

private:
  static std::atomic<T *> *newDir(uint32_t Cap) {
    std::atomic<T *> *D = new std::atomic<T *>[Cap];
    for (uint32_t I = 0; I < Cap; ++I)
      D[I].store(nullptr, std::memory_order_relaxed);
    return D;
  }

  /// Doubles the chunk directory. The old directory is retired, not
  /// freed: a concurrent reader that loaded Dir just before the swap may
  /// still be indexing into it, and every index it can legally hold
  /// (published before the grow) resolves identically through either
  /// directory — chunks never move. Retired directories are reclaimed at
  /// destruction. Readers needing an index minted after the grow
  /// observed its publication, which happened after the release store of
  /// the new directory, so their acquire load of Dir sees the new one.
  void growDir() {
    uint32_t NewCap = DirCap * 2 < MaxChunks ? DirCap * 2 : MaxChunks;
    std::atomic<T *> *New = newDir(NewCap);
    std::atomic<T *> *Old = Dir.load(std::memory_order_relaxed);
    for (uint32_t I = 0; I < DirCap; ++I)
      New[I].store(Old[I].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    Retired.push_back(Old);
    Dir.store(New, std::memory_order_release);
    DirCap = NewCap;
  }

  /// The chunk directory is heap-allocated and grown on demand (doubling
  /// from InitialDirChunks) rather than sized for the full 24-bit index
  /// space up front: a graph's baseline footprint is what bounds how many
  /// embedded engines one process can hold (DESIGN.md "Session service"),
  /// and an embedded full-space directory would cost 512 KB per slab at
  /// this chunk granularity. Resolution pays one extra dependent load
  /// over an embedded array; measured against bench_space/bench_overhead
  /// this is inside run-to-run noise.
  std::atomic<std::atomic<T *> *> Dir;
  std::atomic<uint32_t> Count{0};
  uint32_t DirCap = InitialDirChunks;
  uint32_t NumChunks = 0;
  std::vector<std::atomic<T *> *> Retired;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_POOL_H
