//===- Pool.h - Bump arena and free-list object pool ------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation fast path for the dependency graph's hot bookkeeping
/// (DESIGN.md "Parallel propagation", allocation section). Edge churn
/// dominates beginExecution/endExecution — every re-execution retracts and
/// re-records the instance's referenced-argument set — so Edge objects come
/// from Pool<Edge>: a type-local free list layered over BumpArena chunks.
/// Allocation is a pointer bump or a free-list pop; deallocation is a
/// free-list push; nothing is returned to the system until the pool dies.
///
/// BumpArena is also usable on its own for per-node bookkeeping whose
/// lifetime matches the graph's.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_POOL_H
#define ALPHONSE_SUPPORT_POOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace alphonse {

/// Chunked bump allocator: allocate-only, everything freed at destruction.
class BumpArena {
public:
  explicit BumpArena(size_t ChunkBytes = 64 * 1024)
      : ChunkBytes(ChunkBytes) {}

  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  /// Returns \p Size bytes aligned to \p Align (never null; grows a new
  /// chunk when the current one is exhausted).
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    if (P + Size > End) {
      size_t Want = Size + Align > ChunkBytes ? Size + Align : ChunkBytes;
      Chunks.push_back(std::make_unique<std::byte[]>(Want));
      TotalBytes += Want;
      Cur = reinterpret_cast<uintptr_t>(Chunks.back().get());
      End = Cur + Want;
      P = (Cur + (Align - 1)) & ~static_cast<uintptr_t>(Align - 1);
    }
    Cur = P + Size;
    return reinterpret_cast<void *>(P);
  }

  /// Typed allocation + construction.
  template <typename T, typename... Args> T *create(Args &&...A) {
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(A)...);
  }

  size_t bytesReserved() const { return TotalBytes; }
  size_t numChunks() const { return Chunks.size(); }

private:
  size_t ChunkBytes;
  std::vector<std::unique_ptr<std::byte[]>> Chunks;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t TotalBytes = 0;
};

/// Free-list object pool over a BumpArena. T must be trivially
/// destructible (slots are recycled without running destructors) and at
/// least pointer-sized (the free list lives inside dead slots).
template <typename T> class Pool {
  static_assert(sizeof(T) >= sizeof(void *),
                "pooled objects must fit a free-list link");
  static_assert(std::is_trivially_destructible_v<T>,
                "pooled objects are recycled without destruction");

public:
  Pool() = default;

  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  /// True when the next create() will be served from the free list.
  bool hasFree() const { return FreeList != nullptr; }

  /// Allocates and value-initializes one T.
  T *create() {
    if (FreeList) {
      void *Slot = FreeList;
      FreeList = *static_cast<void **>(Slot);
      ++NumReused;
      return new (Slot) T();
    }
    ++NumCreated;
    return new (Arena.allocate(sizeof(T), alignof(T))) T();
  }

  /// Returns \p P's slot to the free list.
  void destroy(T *P) {
    *reinterpret_cast<void **>(P) = FreeList;
    FreeList = P;
  }

  /// Slots ever bump-allocated from the arena.
  uint64_t numCreated() const { return NumCreated; }
  /// Allocations served by recycling a freed slot.
  uint64_t numReused() const { return NumReused; }

  const BumpArena &arena() const { return Arena; }

private:
  BumpArena Arena;
  void *FreeList = nullptr;
  uint64_t NumCreated = 0;
  uint64_t NumReused = 0;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_POOL_H
