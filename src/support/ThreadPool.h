//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool for the parallel propagation scheduler
/// and the session service (DESIGN.md "Parallel propagation", "Session
/// service"). Threads are created once, pull tasks from a shared queue,
/// and are joined at destruction. Shard ownership is pool-scoped: worker I
/// of any pool runs with statistics shard id I+1 (Statistics.h), so the
/// StatCounter slots and Runtime's per-shard call stacks are
/// owner-exclusive for any Statistics block driven by one pool at a time,
/// and any number of pools can coexist without starving each other of
/// shards. kStatShards-1 caps the per-pool worker count.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_THREADPOOL_H
#define ALPHONSE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alphonse {

/// Fixed pool of worker threads draining a shared task queue.
class ThreadPool {
public:
  /// Creates up to \p Requested workers (bounded by the per-pool shard
  /// budget kStatShards - 1; size() reports how many actually exist).
  explicit ThreadPool(unsigned Requested);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of live worker threads (may be less than requested).
  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Task for execution on some worker. On a pool with no
  /// workers — constructed with 0, or already stop()ped — the task runs
  /// inline on the calling thread instead: it is never silently dropped,
  /// it cannot strand wait() on a queue no worker will ever drain, and an
  /// exception it throws propagates directly to the caller (there is no
  /// later wait() guaranteed to surface it).
  void run(std::function<void()> Task);

  /// Blocks until every enqueued task has finished. If any task escaped
  /// with an exception, the first one is rethrown here (on the caller's
  /// thread) after the queue drains.
  void wait();

  /// Shuts the pool down: workers finish the queued backlog (including
  /// tasks that throw — their exceptions are captured, never propagated
  /// into the joins) and are joined. If any task escaped with an
  /// exception that no wait() consumed, the first one is rethrown here
  /// after the drain — a caller that stops without waiting does not
  /// silently swallow task failures. Idempotent; the destructor performs
  /// the same shutdown but swallows the pending error (destructors must
  /// not throw). After stop() the pool has no threads and run() executes
  /// inline.
  void stop();

private:
  void workerMain(unsigned Shard);
  /// Joins the workers and drains any queued backlog inline. Returns the
  /// pending first error (cleared from the pool), which stop() rethrows
  /// and the destructor discards.
  std::exception_ptr shutdown() noexcept;
  /// Runs \p Task on the calling thread under the pool's error contract
  /// (first escaped exception lands in FirstError for the next wait()).
  void runInline(std::function<void()> &Task);

  std::vector<std::thread> Threads;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< Signals workers: task or shutdown.
  std::condition_variable IdleCv;  ///< Signals wait(): everything drained.
  size_t Active = 0;               ///< Tasks currently executing.
  bool Stop = false;
  std::exception_ptr FirstError;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_THREADPOOL_H
