//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fixed-size worker pool for the parallel propagation scheduler
/// (DESIGN.md "Parallel propagation"). Threads are created once, pull tasks
/// from a shared queue, and are joined at destruction. Each worker thread
/// acquires one global statistics shard id (Statistics.h) at startup, so
/// the StatCounter slots and Runtime's per-shard call stacks are
/// owner-exclusive for the pool's lifetime; the process-wide shard budget
/// caps how many workers can exist at once, and a pool simply comes up
/// smaller when the budget is short.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_THREADPOOL_H
#define ALPHONSE_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alphonse {

/// Fixed pool of worker threads draining a shared task queue.
class ThreadPool {
public:
  /// Creates up to \p Requested workers (bounded by the global statistics
  /// shard budget; size() reports how many actually exist).
  explicit ThreadPool(unsigned Requested);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of live worker threads (may be less than requested).
  unsigned size() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Task for execution on some worker. After stop() the task
  /// runs inline on the calling thread instead — it is never silently
  /// dropped, and it cannot strand wait() on a queue no worker will ever
  /// drain.
  void run(std::function<void()> Task);

  /// Blocks until every enqueued task has finished. If any task escaped
  /// with an exception, the first one is rethrown here (on the caller's
  /// thread) after the queue drains.
  void wait();

  /// Shuts the pool down: workers finish the queued backlog (including
  /// tasks that throw — their exceptions are captured, never propagated
  /// into the joins) and are joined. Idempotent; the destructor calls it.
  /// After stop() the pool has no threads and run() executes inline.
  void stop();

private:
  void workerMain(unsigned Shard);
  /// Runs \p Task on the calling thread under the pool's error contract
  /// (first escaped exception lands in FirstError for the next wait()).
  void runInline(std::function<void()> &Task);

  std::vector<std::thread> Threads;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< Signals workers: task or shutdown.
  std::condition_variable IdleCv;  ///< Signals wait(): everything drained.
  size_t Active = 0;               ///< Tasks currently executing.
  bool Stop = false;
  std::exception_ptr FirstError;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_THREADPOOL_H
