//===- Diagnostics.cpp - Error reporting for Alphonse-L -------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

namespace alphonse {

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.Loc.str() << ": " << kindName(D.Kind) << ": " << D.Message
       << '\n';
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

} // namespace alphonse
