//===- Diagnostics.cpp - Error reporting for Alphonse-L -------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace alphonse {

void fatalError(const char *Message) {
  std::fprintf(stderr, "alphonse fatal error: %s\n", Message);
  std::fflush(stderr);
  std::abort();
}

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags)
    OS << D.Loc.str() << ": " << kindName(D.Kind) << ": " << D.Message
       << '\n';
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

} // namespace alphonse
