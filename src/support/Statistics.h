//===- Statistics.h - Runtime counters --------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the incremental runtime. The paper's Section 9 analysis is
/// phrased in terms of nodes, edges, and (re-)executions; tests and
/// benchmarks read these counters to check the claimed asymptotic shapes
/// (experiments E7, E8, E11 in DESIGN.md).
///
/// Counters are sharded per worker thread (DESIGN.md "Parallel
/// propagation"): each thread owns one cache-line-padded slot it updates
/// with plain load/store pairs (no contended read-modify-write), and reads
/// merge the slots. On the serial path every update lands in slot 0, so
/// Workers = 0 behaves exactly like the plain integers it replaced.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_STATISTICS_H
#define ALPHONSE_SUPPORT_STATISTICS_H

#include <atomic>
#include <cstdint>
#include <ostream>

namespace alphonse {

/// Shard budget: slot 0 is the main thread (and every untracked thread);
/// slots 1..kStatShards-1 are handed to propagation worker threads by
/// ThreadPool, bounding the process-wide concurrent worker count.
inline constexpr unsigned kStatShards = 17;

namespace detail {
/// The calling thread's counter slot. 0 outside worker threads.
inline thread_local unsigned StatShard = 0;
/// Worker-slot allocator (ThreadPool.cpp). acquire returns 0 when the
/// budget is exhausted — the pool then simply creates fewer threads.
unsigned acquireStatShard();
void releaseStatShard(unsigned Shard);
} // namespace detail

/// The calling thread's statistics/evaluator shard id.
inline unsigned statShardId() { return detail::StatShard; }

/// One sharded event counter. Converts implicitly to uint64_t (the merged
/// total), so call sites read and compare it like the plain integer it
/// used to be; ++/+= update only the calling thread's slot.
class StatCounter {
public:
  StatCounter() = default;

  StatCounter(uint64_t V) { Slots[0].V.store(V, std::memory_order_relaxed); }

  StatCounter(const StatCounter &O) {
    Slots[0].V.store(O.total(), std::memory_order_relaxed);
  }

  /// Copy-assignment merges the source into slot 0 (and zeroes the rest),
  /// so Statistics::reset() — a whole-struct assignment from a fresh
  /// Statistics — still zeroes everything.
  StatCounter &operator=(const StatCounter &O) {
    uint64_t T = O.total();
    for (Slot &S : Slots)
      S.V.store(0, std::memory_order_relaxed);
    Slots[0].V.store(T, std::memory_order_relaxed);
    return *this;
  }

  StatCounter &operator=(uint64_t V) {
    for (Slot &S : Slots)
      S.V.store(0, std::memory_order_relaxed);
    Slots[0].V.store(V, std::memory_order_relaxed);
    return *this;
  }

  StatCounter &operator++() {
    bump(1);
    return *this;
  }
  void operator++(int) { bump(1); }
  StatCounter &operator+=(uint64_t N) {
    bump(N);
    return *this;
  }

  /// Merged value across all shards.
  uint64_t total() const {
    uint64_t Sum = 0;
    for (const Slot &S : Slots)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  operator uint64_t() const { return total(); }

private:
  void bump(uint64_t N) {
    // Owner-exclusive slot: a plain load/store pair, not a fetch_add —
    // there is never a second writer to this slot.
    std::atomic<uint64_t> &S = Slots[statShardId()].V;
    S.store(S.load(std::memory_order_relaxed) + N,
            std::memory_order_relaxed);
  }

  struct alignas(64) Slot {
    std::atomic<uint64_t> V{0};
  };
  Slot Slots[kStatShards];
};

/// Aggregate event counters maintained by one Runtime instance.
struct Statistics {
  /// Dependency-graph nodes ever created (storage + procedure instances).
  StatCounter NodesCreated;
  /// Dependency-graph nodes destroyed.
  StatCounter NodesDestroyed;
  /// Dependency edges created.
  StatCounter EdgesCreated;
  /// Dependency edges removed (retraction before re-execution, or node
  /// destruction).
  StatCounter EdgesRemoved;
  /// Edge creations skipped because an identical edge was already recorded
  /// during the current execution of the dependent procedure.
  StatCounter EdgesDeduped;
  /// Executions of incremental procedure instances (first runs and re-runs).
  StatCounter ProcExecutions;
  /// Calls answered from the cache without executing the procedure body.
  StatCounter CacheHits;
  /// Storage writes that were tracked (the modify() transformation ran on a
  /// location with a dependency-graph node).
  StatCounter TrackedWrites;
  /// Tracked writes suppressed because the new value equaled the cached one
  /// (variable-level quiescence, Algorithm 4).
  StatCounter QuiescentWrites;
  /// Nodes popped from inconsistent sets by the evaluator.
  StatCounter EvalSteps;
  /// Propagations that stopped because a recomputed value matched the cached
  /// value (quiescence cutoff, Section 2).
  StatCounter QuiescenceCutoffs;
  /// Union-find unions performed by the partition manager.
  StatCounter PartitionUnions;
  /// Evaluations that were scoped to a single partition (Section 6.3).
  StatCounter PartitionScopedEvals;
  /// Nodes moved to the quarantine set (threw, diverged, or cycled).
  StatCounter NodesQuarantined;
  /// Quarantined nodes explicitly returned to service.
  StatCounter QuarantineResets;
  /// Nodes that tripped Config::MaxReexecutions in one propagation.
  StatCounter DivergenceTrips;
  /// Re-entrant call chains that tripped Config::MaxReentrantDepth.
  StatCounter CycleFaults;
  /// Propagations aborted by Config::EvalStepLimit.
  StatCounter StepLimitTrips;
  /// Transactional batches opened (DepGraph::beginBatch).
  StatCounter TxnBegun;
  /// Batches whose commit succeeded (quiescence reached, no new faults).
  StatCounter TxnCommitted;
  /// Batches rolled back — explicitly or by an aborted commit.
  StatCounter TxnRolledBack;
  /// Undo-journal entries recorded across all batches.
  StatCounter TxnUndoEntries;
  /// Worker threads of the propagation scheduler's pool (0 = serial).
  StatCounter PropWorkers;
  /// Partitions drained to quiescence by parallel wave workers.
  StatCounter PropPartitionsDrained;
  /// Executions abandoned because they touched a partition owned by a
  /// sibling worker (the partitions merge and the work is retried).
  StatCounter PropConflicts;
  /// Edge allocations served from the free-list pool instead of the arena.
  StatCounter EdgeReuse;
  /// Bytes reserved by the node table's slabs (back-pointers + generations;
  /// gauge, updated when the slabs grow).
  StatCounter GraphNodeBytes;
  /// Bytes reserved by the edge table's slabs (24-byte packed edges +
  /// generations; gauge, updated when the slabs grow).
  StatCounter GraphEdgeBytes;
  /// High-water mark of total graph slab bytes (nodes + edges; gauge).
  StatCounter PoolHighWater;
  /// Full checkpoint snapshots written (DESIGN.md §10).
  StatCounter CkptSnapshots;
  /// Delta records appended to checkpoint logs.
  StatCounter CkptDeltas;
  /// Sections written across all snapshots.
  StatCounter CkptSections;
  /// Bytes written durably (snapshots + delta records).
  StatCounter CkptBytesWritten;
  /// Checkpoint restores completed (snapshot load + delta replay + verify).
  StatCounter CkptRestores;
  /// Nodes rebuilt by restores.
  StatCounter CkptRestoredNodes;
  /// Microseconds spent in completed restores.
  StatCounter CkptRestoreMicros;
  /// Governed propagation waves opened (budgeted or not; DESIGN.md §11).
  StatCounter GovWaves;
  /// Waves cancelled by their budget (deadline, steps, or memory).
  StatCounter GovWavesDegraded;
  /// Waves skipped by OverloadPolicy::Defer over a parked backlog.
  StatCounter GovWavesDeferred;
  /// Waves skipped by OverloadPolicy::Shed over a parked backlog.
  StatCounter GovWavesShed;
  /// Boundary checks that saw the wall-clock deadline expired.
  StatCounter GovDeadlineExpired;
  /// Boundary checks that saw the evaluation-step budget exhausted.
  StatCounter GovStepBudgetHits;
  /// Boundary checks that saw the slab-memory ceiling crossed.
  StatCounter GovMemCeilingHits;
  /// Nodes parked in inconsistent sets when the last wave closed (gauge).
  StatCounter GovParkedNodes;
  /// Nodes currently stamped stale — their cached values predate the last
  /// quiescent state (gauge).
  StatCounter GovStaleNodes;
  /// Total stale stamps applied across all cancelled waves (a node
  /// re-stamped by a later wave counts again).
  StatCounter GovNodesStamped;
  /// Single evaluations that consumed an entire wave deadline by
  /// themselves (watchdog accounting).
  StatCounter GovDeadlineBlows;
  /// Nodes quarantined by the watchdog for blowing the deadline
  /// Config::WatchdogTrips times.
  StatCounter GovWatchdogQuarantines;
  /// Capped-exponential backoff waits taken between conflicted retry
  /// waves.
  StatCounter GovBackoffWaits;

  /// Resets every counter to zero.
  void reset() { *this = Statistics(); }

  /// Live node count.
  uint64_t liveNodes() const { return NodesCreated - NodesDestroyed; }

  /// Live edge count.
  uint64_t liveEdges() const { return EdgesCreated - EdgesRemoved; }
};

/// Prints all counters (merged across shards), one per line, for debugging
/// and bench reports.
std::ostream &operator<<(std::ostream &OS, const Statistics &S);

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_STATISTICS_H
