//===- Statistics.h - Runtime counters --------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the incremental runtime. The paper's Section 9 analysis is
/// phrased in terms of nodes, edges, and (re-)executions; tests and
/// benchmarks read these counters to check the claimed asymptotic shapes
/// (experiments E7, E8, E11 in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_STATISTICS_H
#define ALPHONSE_SUPPORT_STATISTICS_H

#include <cstdint>
#include <ostream>

namespace alphonse {

/// Aggregate event counters maintained by one Runtime instance.
struct Statistics {
  /// Dependency-graph nodes ever created (storage + procedure instances).
  uint64_t NodesCreated = 0;
  /// Dependency-graph nodes destroyed.
  uint64_t NodesDestroyed = 0;
  /// Dependency edges created.
  uint64_t EdgesCreated = 0;
  /// Dependency edges removed (retraction before re-execution, or node
  /// destruction).
  uint64_t EdgesRemoved = 0;
  /// Edge creations skipped because an identical edge was already recorded
  /// during the current execution of the dependent procedure.
  uint64_t EdgesDeduped = 0;
  /// Executions of incremental procedure instances (first runs and re-runs).
  uint64_t ProcExecutions = 0;
  /// Calls answered from the cache without executing the procedure body.
  uint64_t CacheHits = 0;
  /// Storage writes that were tracked (the modify() transformation ran on a
  /// location with a dependency-graph node).
  uint64_t TrackedWrites = 0;
  /// Tracked writes suppressed because the new value equaled the cached one
  /// (variable-level quiescence, Algorithm 4).
  uint64_t QuiescentWrites = 0;
  /// Nodes popped from inconsistent sets by the evaluator.
  uint64_t EvalSteps = 0;
  /// Propagations that stopped because a recomputed value matched the cached
  /// value (quiescence cutoff, Section 2).
  uint64_t QuiescenceCutoffs = 0;
  /// Union-find unions performed by the partition manager.
  uint64_t PartitionUnions = 0;
  /// Evaluations that were scoped to a single partition (Section 6.3).
  uint64_t PartitionScopedEvals = 0;
  /// Nodes moved to the quarantine set (threw, diverged, or cycled).
  uint64_t NodesQuarantined = 0;
  /// Quarantined nodes explicitly returned to service.
  uint64_t QuarantineResets = 0;
  /// Nodes that tripped Config::MaxReexecutions in one propagation.
  uint64_t DivergenceTrips = 0;
  /// Re-entrant call chains that tripped Config::MaxReentrantDepth.
  uint64_t CycleFaults = 0;
  /// Propagations aborted by Config::EvalStepLimit.
  uint64_t StepLimitTrips = 0;
  /// Transactional batches opened (DepGraph::beginBatch).
  uint64_t TxnBegun = 0;
  /// Batches whose commit succeeded (quiescence reached, no new faults).
  uint64_t TxnCommitted = 0;
  /// Batches rolled back — explicitly or by an aborted commit.
  uint64_t TxnRolledBack = 0;
  /// Undo-journal entries recorded across all batches.
  uint64_t TxnUndoEntries = 0;

  /// Resets every counter to zero.
  void reset() { *this = Statistics(); }

  /// Live node count.
  uint64_t liveNodes() const { return NodesCreated - NodesDestroyed; }

  /// Live edge count.
  uint64_t liveEdges() const { return EdgesCreated - EdgesRemoved; }
};

/// Prints all counters, one per line, for debugging and bench reports.
std::ostream &operator<<(std::ostream &OS, const Statistics &S);

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_STATISTICS_H
