//===- Statistics.h - Runtime counters --------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters for the incremental runtime. The paper's Section 9 analysis is
/// phrased in terms of nodes, edges, and (re-)executions; tests and
/// benchmarks read these counters to check the claimed asymptotic shapes
/// (experiments E7, E8, E11 in DESIGN.md).
///
/// Counters are sharded per worker thread (DESIGN.md "Parallel
/// propagation"): each pool worker owns one cache-line-padded slot it
/// updates with plain load/store pairs (no contended read-modify-write),
/// and reads merge the slots. Shard ids are pool-scoped — every ThreadPool
/// numbers its own workers 1..kStatShards-1 — so any number of pools can
/// coexist without starving each other of shards. The ownership rule that
/// makes the load/store slots sound: at most one pool's workers may update
/// a given Statistics block at a time (each pool drains its own graphs).
/// Slot 0 is different: it is shared by the main thread and every thread
/// without a shard, so it is updated with fetch_add — concurrent shard-0
/// writers (e.g. session drains running as tasks on a shared pool) never
/// lose increments.
///
/// Memory: the worker slots are allocated lazily per counter, the first
/// time a worker-shard thread bumps it. A counter only ever touched from
/// shard 0 — every counter of a serially-drained session runtime — costs
/// 16 bytes instead of a kStatShards-sized padded array, which is what
/// makes tens of thousands of per-session Statistics blocks affordable
/// (DESIGN.md "Session service").
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_STATISTICS_H
#define ALPHONSE_SUPPORT_STATISTICS_H

#include <atomic>
#include <cstdint>
#include <ostream>

namespace alphonse {

/// Shard budget: slot 0 is the main thread (and every thread without a
/// shard); slots 1..kStatShards-1 are handed to a pool's worker threads by
/// ThreadPool, bounding the per-pool concurrent worker count.
inline constexpr unsigned kStatShards = 17;

namespace detail {
/// The calling thread's counter slot. 0 outside worker threads.
inline thread_local unsigned StatShard = 0;
} // namespace detail

/// The calling thread's statistics/evaluator shard id.
inline unsigned statShardId() { return detail::StatShard; }

/// RAII override of the calling thread's shard id. The session service
/// uses StatShardScope(0) around a per-session serial drain running on a
/// pool worker: the session's counters then land in the (fetch_add,
/// multi-writer-safe) slot 0 instead of lazily allocating worker-slot
/// blocks in every session's Statistics.
class StatShardScope {
public:
  explicit StatShardScope(unsigned Shard) : Saved(detail::StatShard) {
    detail::StatShard = Shard;
  }
  ~StatShardScope() { detail::StatShard = Saved; }

  StatShardScope(const StatShardScope &) = delete;
  StatShardScope &operator=(const StatShardScope &) = delete;

private:
  unsigned Saved;
};

/// One sharded event counter. Converts implicitly to uint64_t (the merged
/// total), so call sites read and compare it like the plain integer it
/// used to be; ++/+= update only the calling thread's slot.
class StatCounter {
public:
  StatCounter() = default;

  StatCounter(uint64_t V) { Main.store(V, std::memory_order_relaxed); }

  StatCounter(const StatCounter &O) {
    Main.store(O.total(), std::memory_order_relaxed);
  }

  ~StatCounter() { delete Workers.load(std::memory_order_relaxed); }

  /// Copy-assignment merges the source into slot 0 (and zeroes the worker
  /// slots), so Statistics::reset() — a whole-struct assignment from a
  /// fresh Statistics — still zeroes everything.
  StatCounter &operator=(const StatCounter &O) {
    uint64_t T = O.total();
    zeroWorkerSlots();
    Main.store(T, std::memory_order_relaxed);
    return *this;
  }

  StatCounter &operator=(uint64_t V) {
    zeroWorkerSlots();
    Main.store(V, std::memory_order_relaxed);
    return *this;
  }

  StatCounter &operator++() {
    bump(1);
    return *this;
  }
  void operator++(int) { bump(1); }
  StatCounter &operator+=(uint64_t N) {
    bump(N);
    return *this;
  }

  /// Merged value across all shards.
  uint64_t total() const {
    uint64_t Sum = Main.load(std::memory_order_relaxed);
    if (const ShardBlock *B = Workers.load(std::memory_order_acquire))
      for (const Slot &S : B->Slots)
        Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

  operator uint64_t() const { return total(); }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> V{0};
  };
  /// Padded slots for shards 1..kStatShards-1, allocated on the first
  /// bump from a worker-shard thread.
  struct ShardBlock {
    Slot Slots[kStatShards - 1];
  };

  void bump(uint64_t N) {
    unsigned Shard = statShardId();
    if (Shard == 0) {
      // Slot 0 has any number of writers (the main thread, overflow
      // threads, session drains pinned to shard 0): a read-modify-write
      // load/store pair here loses increments, so it must be fetch_add.
      Main.fetch_add(N, std::memory_order_relaxed);
      return;
    }
    // Owner-exclusive worker slot: a plain load/store pair, not a
    // fetch_add — within the one pool allowed to drive this Statistics
    // block, no second thread ever writes this slot.
    std::atomic<uint64_t> &S = workerSlots().Slots[Shard - 1].V;
    S.store(S.load(std::memory_order_relaxed) + N, std::memory_order_relaxed);
  }

  /// The worker-slot block, allocated on first use (CAS-installed: racing
  /// workers agree on one block, losers free theirs).
  ShardBlock &workerSlots() {
    ShardBlock *B = Workers.load(std::memory_order_acquire);
    if (B)
      return *B;
    ShardBlock *Fresh = new ShardBlock();
    if (Workers.compare_exchange_strong(B, Fresh, std::memory_order_acq_rel))
      return *Fresh;
    delete Fresh; // Lost the race; B now holds the winner.
    return *B;
  }

  void zeroWorkerSlots() {
    if (ShardBlock *B = Workers.load(std::memory_order_relaxed))
      for (Slot &S : B->Slots)
        S.V.store(0, std::memory_order_relaxed);
  }

  /// Slot 0: the main thread and every unsharded thread (fetch_add).
  std::atomic<uint64_t> Main{0};
  std::atomic<ShardBlock *> Workers{nullptr};
};

/// Aggregate event counters maintained by one Runtime instance.
struct Statistics {
  /// Dependency-graph nodes ever created (storage + procedure instances).
  StatCounter NodesCreated;
  /// Dependency-graph nodes destroyed.
  StatCounter NodesDestroyed;
  /// Dependency edges created.
  StatCounter EdgesCreated;
  /// Dependency edges removed (retraction before re-execution, or node
  /// destruction).
  StatCounter EdgesRemoved;
  /// Edge creations skipped because an identical edge was already recorded
  /// during the current execution of the dependent procedure.
  StatCounter EdgesDeduped;
  /// Executions of incremental procedure instances (first runs and re-runs).
  StatCounter ProcExecutions;
  /// Calls answered from the cache without executing the procedure body.
  StatCounter CacheHits;
  /// Storage writes that were tracked (the modify() transformation ran on a
  /// location with a dependency-graph node).
  StatCounter TrackedWrites;
  /// Tracked writes suppressed because the new value equaled the cached one
  /// (variable-level quiescence, Algorithm 4).
  StatCounter QuiescentWrites;
  /// Nodes popped from inconsistent sets by the evaluator.
  StatCounter EvalSteps;
  /// Propagations that stopped because a recomputed value matched the cached
  /// value (quiescence cutoff, Section 2).
  StatCounter QuiescenceCutoffs;
  /// Union-find unions performed by the partition manager.
  StatCounter PartitionUnions;
  /// Evaluations that were scoped to a single partition (Section 6.3).
  StatCounter PartitionScopedEvals;
  /// Nodes moved to the quarantine set (threw, diverged, or cycled).
  StatCounter NodesQuarantined;
  /// Quarantined nodes explicitly returned to service.
  StatCounter QuarantineResets;
  /// Nodes that tripped Config::MaxReexecutions in one propagation.
  StatCounter DivergenceTrips;
  /// Re-entrant call chains that tripped Config::MaxReentrantDepth.
  StatCounter CycleFaults;
  /// Propagations aborted by Config::EvalStepLimit.
  StatCounter StepLimitTrips;
  /// Transactional batches opened (DepGraph::beginBatch).
  StatCounter TxnBegun;
  /// Batches whose commit succeeded (quiescence reached, no new faults).
  StatCounter TxnCommitted;
  /// Batches rolled back — explicitly or by an aborted commit.
  StatCounter TxnRolledBack;
  /// Undo-journal entries recorded across all batches.
  StatCounter TxnUndoEntries;
  /// Worker threads of the propagation scheduler's pool (0 = serial).
  StatCounter PropWorkers;
  /// Partitions drained to quiescence by parallel wave workers.
  StatCounter PropPartitionsDrained;
  /// Executions abandoned because they touched a partition owned by a
  /// sibling worker (the partitions merge and the work is retried).
  StatCounter PropConflicts;
  /// Edge allocations served from the free-list pool instead of the arena.
  StatCounter EdgeReuse;
  /// Bytes reserved by the node table's slabs (back-pointers + generations;
  /// gauge, updated when the slabs grow).
  StatCounter GraphNodeBytes;
  /// Bytes reserved by the edge table's slabs (24-byte packed edges +
  /// generations; gauge, updated when the slabs grow).
  StatCounter GraphEdgeBytes;
  /// High-water mark of total graph slab bytes (nodes + edges; gauge).
  /// Resettable per Runtime (resetPoolHighWater) so a bench can scope the
  /// mark to a churn phase.
  StatCounter PoolHighWater;
  /// Node slots pre-reserved by GraphStore::reserveShape (static graph
  /// construction, DESIGN.md §14).
  StatCounter ShapeNodesReserved;
  /// Edge slots pre-reserved by GraphStore::reserveShape.
  StatCounter ShapeEdgesReserved;
  /// Incremental calls served by the static instance table (O(1) indexed
  /// lookup; no StateGuard find-or-emplace).
  StatCounter StaticCalls;
  /// Procedure instances pre-instantiated from the static graph plan.
  StatCounter StaticInstances;
  /// Full checkpoint snapshots written (DESIGN.md §10).
  StatCounter CkptSnapshots;
  /// Delta records appended to checkpoint logs.
  StatCounter CkptDeltas;
  /// Sections written across all snapshots.
  StatCounter CkptSections;
  /// Bytes written durably (snapshots + delta records).
  StatCounter CkptBytesWritten;
  /// Checkpoint restores completed (snapshot load + delta replay + verify).
  StatCounter CkptRestores;
  /// Nodes rebuilt by restores.
  StatCounter CkptRestoredNodes;
  /// Microseconds spent in completed restores.
  StatCounter CkptRestoreMicros;
  /// Governed propagation waves opened (budgeted or not; DESIGN.md §11).
  StatCounter GovWaves;
  /// Waves cancelled by their budget (deadline, steps, or memory).
  StatCounter GovWavesDegraded;
  /// Waves skipped by OverloadPolicy::Defer over a parked backlog.
  StatCounter GovWavesDeferred;
  /// Waves skipped by OverloadPolicy::Shed over a parked backlog.
  StatCounter GovWavesShed;
  /// Boundary checks that saw the wall-clock deadline expired.
  StatCounter GovDeadlineExpired;
  /// Boundary checks that saw the evaluation-step budget exhausted.
  StatCounter GovStepBudgetHits;
  /// Boundary checks that saw the slab-memory ceiling crossed.
  StatCounter GovMemCeilingHits;
  /// Nodes parked in inconsistent sets when the last wave closed (gauge).
  StatCounter GovParkedNodes;
  /// Nodes currently stamped stale — their cached values predate the last
  /// quiescent state (gauge).
  StatCounter GovStaleNodes;
  /// Total stale stamps applied across all cancelled waves (a node
  /// re-stamped by a later wave counts again).
  StatCounter GovNodesStamped;
  /// Single evaluations that consumed an entire wave deadline by
  /// themselves (watchdog accounting).
  StatCounter GovDeadlineBlows;
  /// Nodes quarantined by the watchdog for blowing the deadline
  /// Config::WatchdogTrips times.
  StatCounter GovWatchdogQuarantines;
  /// Capped-exponential backoff waits taken between conflicted retry
  /// waves.
  StatCounter GovBackoffWaits;

  /// Resets every counter to zero.
  void reset() { *this = Statistics(); }

  /// Live node count.
  uint64_t liveNodes() const { return NodesCreated - NodesDestroyed; }

  /// Live edge count.
  uint64_t liveEdges() const { return EdgesCreated - EdgesRemoved; }
};

/// Prints all counters (merged across shards), one per line, for debugging
/// and bench reports.
std::ostream &operator<<(std::ostream &OS, const Statistics &S);

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_STATISTICS_H
