//===- ThreadPool.cpp - Fixed-size worker pool ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Statistics.h"

namespace alphonse {

ThreadPool::ThreadPool(unsigned Requested) {
  // Pool-scoped shard assignment: worker I owns shard I+1 of this pool.
  // No process-global allocator — concurrent pools number their workers
  // independently (the ownership rule in Statistics.h keeps the slots
  // sound: one pool drives a given Statistics block at a time).
  unsigned N = Requested < kStatShards - 1 ? Requested : kStatShards - 1;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    unsigned Shard = I + 1;
    Threads.emplace_back([this, Shard] { workerMain(Shard); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown(); // Pending error (if any) discarded: destructors cannot throw.
}

std::exception_ptr ThreadPool::shutdown() noexcept {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  // Workers drain the remaining backlog before exiting; a task that
  // throws has its exception captured in FirstError by workerMain, so no
  // exception can cross a join. join() only on joinable threads makes
  // shutdown idempotent (a second call sees an empty thread vector).
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
  // A pool that never had workers may still hold queued tasks; run them
  // inline so nothing is leaked or left to deadlock a later wait().
  for (;;) {
    std::function<void()> Task;
    {
      std::lock_guard<std::mutex> L(Mu);
      if (Queue.empty())
        break;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    runInline(Task);
  }
  std::lock_guard<std::mutex> L(Mu);
  std::exception_ptr E = FirstError;
  FirstError = nullptr;
  return E;
}

void ThreadPool::stop() {
  // Rethrow the first unconsumed task error after the drain: a caller
  // that stops the pool without a final wait() must still see failures.
  if (std::exception_ptr E = shutdown())
    std::rethrow_exception(E);
}

void ThreadPool::run(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (!Stop && !Threads.empty()) {
      Queue.push_back(std::move(Task));
      WorkCv.notify_one();
      return;
    }
  }
  // No worker will ever look at the queue (stopped, or a zero-worker
  // pool): execute on the caller, and let an exception propagate to the
  // caller directly — there is no later wait() guaranteed to surface it.
  Task();
}

void ThreadPool::runInline(std::function<void()> &Task) {
  try {
    Task();
  } catch (...) {
    std::lock_guard<std::mutex> L(Mu);
    if (!FirstError)
      FirstError = std::current_exception();
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(Mu);
  IdleCv.wait(L, [this] { return Queue.empty() && Active == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

void ThreadPool::workerMain(unsigned Shard) {
  detail::StatShard = Shard;
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stop)
          break;
        continue;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> L(Mu);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> L(Mu);
      --Active;
      if (Queue.empty() && Active == 0)
        IdleCv.notify_all();
    }
  }
}

} // namespace alphonse
