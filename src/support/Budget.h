//===- Budget.h - Wave budgets and the governance clock ---------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource budgets for quiescence-propagation waves (DESIGN.md Section 11
/// "Resource governance and graceful degradation"). The paper assumes
/// every propagation runs to quiescence; a serving system cannot. A
/// WaveBudget bounds one wave by wall-clock deadline, evaluation-step
/// count, and graph slab memory; the engine checks it at evaluation
/// boundaries and, when any bound is exceeded, cancels the wave
/// cooperatively — parking the residual inconsistent set and stamping the
/// unreached dependents stale instead of failing.
///
/// GovClock is the clock every deadline check reads. It is the real
/// steady clock by default; tests flip it to a virtual clock
/// (GovClock::VirtualScope) that only moves when explicitly advanced —
/// the FaultInjector's Tick action advances it from instrumented sites,
/// so deadline expiry is deterministic without real sleeps.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_BUDGET_H
#define ALPHONSE_SUPPORT_BUDGET_H

#include <atomic>
#include <cstdint>
#include <string_view>

namespace alphonse {

/// What a governed wave does when it starts while the engine is already
/// overloaded (a previous budgeted wave parked residual work it never
/// finished).
enum class OverloadPolicy : uint8_t {
  /// Run anyway (the default): the new wave also drains the backlog.
  Accept,
  /// Skip the wave: the backlog stays parked, stale values keep being
  /// served, and a later wave (or an unbudgeted pump) catches up.
  Defer,
  /// Skip the wave and report Shed, telling admission control upstream to
  /// refuse the work that triggered it rather than queue more.
  Shed,
};

/// Stable lowercase name ("accept", "defer", "shed").
const char *overloadPolicyName(OverloadPolicy P);

/// Parses an overload-policy name; \returns false on an unknown name.
bool parseOverloadPolicy(std::string_view Name, OverloadPolicy &Out);

/// Resource bounds for one quiescence-propagation wave. A zero field means
/// that resource is unbounded; a default-constructed budget is unlimited
/// and governs nothing (the classic run-to-quiescence behavior).
struct WaveBudget {
  /// Wall-clock (GovClock) bound on the wave, in microseconds.
  uint64_t DeadlineUs = 0;
  /// Bound on evaluator steps (nodes popped from inconsistent sets).
  uint64_t StepBudget = 0;
  /// Ceiling on graph slab bytes (node + edge tables). Checked at
  /// evaluation boundaries against the engine's memory gauges.
  uint64_t MemCeilingBytes = 0;
  /// What to do when the wave starts against an already-parked backlog.
  OverloadPolicy Policy = OverloadPolicy::Accept;

  bool unlimited() const {
    return DeadlineUs == 0 && StepBudget == 0 && MemCeilingBytes == 0;
  }

  static WaveBudget deadline(uint64_t Us) {
    WaveBudget B;
    B.DeadlineUs = Us;
    return B;
  }
  static WaveBudget steps(uint64_t N) {
    WaveBudget B;
    B.StepBudget = N;
    return B;
  }
};

/// How a governed wave ended.
enum class WaveOutcome : uint8_t {
  /// Ran to quiescence (or to the classic step-limit backstop) within its
  /// budget.
  Completed,
  /// Cancelled: the wall-clock deadline expired.
  DegradedDeadline,
  /// Cancelled: the evaluation-step budget ran out.
  DegradedSteps,
  /// Cancelled: the graph slab reservation crossed the memory ceiling.
  DegradedMemory,
  /// Never ran: OverloadPolicy::Defer skipped it over a parked backlog.
  Deferred,
  /// Never ran: OverloadPolicy::Shed skipped it over a parked backlog.
  Shed,
};

/// Stable lowercase name ("completed", "degraded-deadline", ...).
const char *waveOutcomeName(WaveOutcome O);

/// True when the wave left (or kept) parked work behind: any outcome but
/// Completed.
inline bool waveDegraded(WaveOutcome O) { return O != WaveOutcome::Completed; }

/// The clock governed deadlines read: the real monotonic clock, or — while
/// a VirtualScope is alive — a virtual microsecond counter that only moves
/// when advance() is called (deterministic deadline tests, no sleeps).
class GovClock {
public:
  /// Microseconds on the governance clock (monotonic; origin arbitrary).
  static uint64_t nowUs();

  /// True while a VirtualScope is installed.
  static bool virtualEnabled() {
    return Virtual.load(std::memory_order_acquire);
  }

  /// Advances the virtual clock by \p Us. No-op on the real clock, so
  /// instrumented tick sites are harmless outside virtual-clock tests.
  static void advance(uint64_t Us) {
    if (virtualEnabled())
      VirtualNowUs.fetch_add(Us, std::memory_order_acq_rel);
  }

  /// Switches the process to the virtual clock for the scope's lifetime,
  /// starting at zero. Tests only; scopes do not nest (the clock is
  /// process-global, like the fault injector it pairs with).
  class VirtualScope {
  public:
    VirtualScope() {
      VirtualNowUs.store(0, std::memory_order_relaxed);
      Virtual.store(true, std::memory_order_release);
    }
    ~VirtualScope() { Virtual.store(false, std::memory_order_release); }

    VirtualScope(const VirtualScope &) = delete;
    VirtualScope &operator=(const VirtualScope &) = delete;
  };

private:
  static std::atomic<bool> Virtual;
  static std::atomic<uint64_t> VirtualNowUs;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_BUDGET_H
