//===- FaultInjector.cpp - Deterministic fault injection ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

namespace alphonse {

FaultInjector *FaultInjector::Active = nullptr;

} // namespace alphonse
