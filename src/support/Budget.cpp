//===- Budget.cpp - Wave budgets and the governance clock -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <chrono>

namespace alphonse {

std::atomic<bool> GovClock::Virtual{false};
std::atomic<uint64_t> GovClock::VirtualNowUs{0};

uint64_t GovClock::nowUs() {
  if (virtualEnabled())
    return VirtualNowUs.load(std::memory_order_acquire);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *overloadPolicyName(OverloadPolicy P) {
  switch (P) {
  case OverloadPolicy::Accept:
    return "accept";
  case OverloadPolicy::Defer:
    return "defer";
  case OverloadPolicy::Shed:
    return "shed";
  }
  return "unknown";
}

bool parseOverloadPolicy(std::string_view Name, OverloadPolicy &Out) {
  if (Name == "accept")
    Out = OverloadPolicy::Accept;
  else if (Name == "defer")
    Out = OverloadPolicy::Defer;
  else if (Name == "shed")
    Out = OverloadPolicy::Shed;
  else
    return false;
  return true;
}

const char *waveOutcomeName(WaveOutcome O) {
  switch (O) {
  case WaveOutcome::Completed:
    return "completed";
  case WaveOutcome::DegradedDeadline:
    return "degraded-deadline";
  case WaveOutcome::DegradedSteps:
    return "degraded-steps";
  case WaveOutcome::DegradedMemory:
    return "degraded-memory";
  case WaveOutcome::Deferred:
    return "deferred";
  case WaveOutcome::Shed:
    return "shed";
  }
  return "unknown";
}

} // namespace alphonse
