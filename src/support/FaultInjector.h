//===- FaultInjector.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for testing the runtime's
/// failure paths. Instrumented sites (Cell snapshot refreshes,
/// Maintained/Cached executions, interpreter procedure instances) call
/// faultInjectionPoint(site) at each recompute; an installed injector can
/// force a throw or a divergence (self-invalidation, as if the body wrote
/// storage it reads) at the Nth hit of a named site.
///
/// No injector is installed by default; the per-site cost is then a single
/// global pointer load. Install one for the current scope with
/// FaultInjector::Scope (tests only). Hit accounting is internally
/// locked, so instrumented sites may fire from parallel-propagation
/// worker threads; arming/disarming must still happen while the graph is
/// quiescent (install the Scope before dispatching work).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_FAULTINJECTOR_H
#define ALPHONSE_SUPPORT_FAULTINJECTOR_H

#include "support/Budget.h"

#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

namespace alphonse {

/// Thrown by an instrumented site when the active injector forces a throw.
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &Site)
      : std::runtime_error("injected fault at site '" + Site + "'"),
        Site(Site) {}

  const std::string &site() const { return Site; }

private:
  std::string Site;
};

/// Per-site deterministic fault schedule.
class FaultInjector {
public:
  /// What an armed site does when its trigger count is reached.
  enum class Action : uint8_t {
    None,    ///< Site not armed (or trigger not yet reached).
    Throw,   ///< Throw InjectedFault from the site.
    Diverge, ///< Self-invalidate the executing node after its body runs.
    Kill,    ///< Terminate the process immediately (crash simulation).
    Tick,    ///< Advance the virtual governance clock by the site payload.
  };

  /// Arms \p Site to throw at its \p AtNthHit-th hit (1-based, counted
  /// from arming), for \p Times consecutive hits.
  void armThrow(std::string Site, uint64_t AtNthHit = 1, uint64_t Times = 1) {
    std::lock_guard<std::mutex> L(Mu);
    Sites[std::move(Site)] = {Action::Throw, AtNthHit, Times, 0};
  }

  /// Arms \p Site to diverge (re-execute forever until a limit trips)
  /// starting at its \p AtNthHit-th hit.
  void armDiverge(std::string Site, uint64_t AtNthHit = 1,
                  uint64_t Times = UINT64_MAX) {
    std::lock_guard<std::mutex> L(Mu);
    Sites[std::move(Site)] = {Action::Diverge, AtNthHit, Times, 0};
  }

  /// Arms \p Site to kill the process (std::_Exit, no cleanup — a
  /// faithful crash as far as the filesystem is concerned) at its
  /// \p AtNthHit-th hit. The crash-recovery harness arms this in a forked
  /// child to die between two durable-write steps.
  void armKill(std::string Site, uint64_t AtNthHit = 1) {
    std::lock_guard<std::mutex> L(Mu);
    Sites[std::move(Site)] = {Action::Kill, AtNthHit, 1, 0};
  }

  /// Arms \p Site to advance the virtual governance clock (GovClock) by
  /// \p AdvanceUs microseconds at each triggering hit, starting at the
  /// \p AtNthHit-th. The engine's budget checks hit the "gov.tick" site
  /// once per evaluation boundary while a deadline is armed, and every
  /// recompute site can tick too — so tests make a specific evaluation
  /// "take" an exact amount of virtual time, and deadline expiry becomes
  /// deterministic without a single real sleep. Meaningful only under a
  /// GovClock::VirtualScope (advance() is a no-op on the real clock).
  void armTick(std::string Site, uint64_t AdvanceUs, uint64_t AtNthHit = 1,
               uint64_t Times = UINT64_MAX) {
    std::lock_guard<std::mutex> L(Mu);
    Sites[std::move(Site)] = {Action::Tick, AtNthHit, Times, 0, AdvanceUs};
  }

  /// Disarms \p Site (its hit count is discarded).
  void disarm(const std::string &Site) {
    std::lock_guard<std::mutex> L(Mu);
    Sites.erase(Site);
  }

  /// Times \p Site was hit since it was armed.
  uint64_t hitCount(const std::string &Site) const {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sites.find(Site);
    return It == Sites.end() ? 0 : It->second.Hits;
  }

  /// Records a hit of \p Site and returns the action to take. Never
  /// throws; the instrumented site performs the action itself. Safe to
  /// call from parallel wave workers.
  Action hit(std::string_view Site) {
    uint64_t PayloadUs = 0;
    return hit(Site, PayloadUs);
  }

  /// As hit(), also returning the site's payload (the Tick advance) for
  /// actions that carry one.
  Action hit(std::string_view Site, uint64_t &PayloadUs) {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sites.find(std::string(Site));
    if (It == Sites.end())
      return Action::None;
    State &S = It->second;
    ++S.Hits;
    // Subtraction form avoids overflow when Times is UINT64_MAX (the
    // armDiverge default, "diverge forever").
    if (S.Hits < S.TriggerAt || S.Hits - S.TriggerAt >= S.Times)
      return Action::None;
    ++Fired;
    PayloadUs = S.PayloadUs;
    return S.Act;
  }

  /// Total actions fired across all sites.
  uint64_t firedCount() const {
    std::lock_guard<std::mutex> L(Mu);
    return Fired;
  }

  /// The injector consulted by faultInjectionPoint(), or nullptr.
  static FaultInjector *active() { return Active; }

  /// Installs an injector for the lifetime of the scope (RAII; scopes may
  /// nest, the innermost wins).
  class Scope {
  public:
    explicit Scope(FaultInjector &FI) : Prev(Active) { Active = &FI; }
    ~Scope() { Active = Prev; }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    FaultInjector *Prev;
  };

private:
  struct State {
    Action Act;
    uint64_t TriggerAt;
    uint64_t Times;
    uint64_t Hits;
    uint64_t PayloadUs = 0; ///< Tick: virtual-clock advance per firing.
  };

  static FaultInjector *Active;

  mutable std::mutex Mu;
  std::unordered_map<std::string, State> Sites;
  uint64_t Fired = 0;
};

/// The checkpoint instrumented sites call once per recompute. Throws
/// InjectedFault when the active injector forces a throw; returns
/// Action::Diverge when the site should self-invalidate after running;
/// returns Action::None otherwise (including when no injector is active).
inline FaultInjector::Action faultInjectionPoint(std::string_view Site) {
  FaultInjector *FI = FaultInjector::active();
  if (!FI)
    return FaultInjector::Action::None;
  uint64_t PayloadUs = 0;
  FaultInjector::Action A = FI->hit(Site, PayloadUs);
  if (A == FaultInjector::Action::Throw)
    throw InjectedFault(std::string(Site));
  if (A == FaultInjector::Action::Kill)
    std::_Exit(137); // No destructors, no atexit, no flushing: a crash.
  if (A == FaultInjector::Action::Tick) {
    // Virtual time passes at this site; the site itself takes no action.
    GovClock::advance(PayloadUs);
    return FaultInjector::Action::None;
  }
  return A;
}

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_FAULTINJECTOR_H
