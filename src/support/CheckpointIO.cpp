//===- CheckpointIO.cpp - Durable checkpoint container --------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/CheckpointIO.h"

#include "support/FaultInjector.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <random>

namespace alphonse {

namespace {

constexpr char kMagic[8] = {'A', 'L', 'F', 'C', 'K', 'P', 'T', '\0'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 32;   // magic + version + count + id + crc+pad
constexpr size_t kTableEntryBytes = 32;
constexpr uint32_t kMaxSections = 1024;
constexpr uint32_t kDeltaMagic = sectionTag('A', 'L', 'F', 'D');
constexpr size_t kDeltaHeaderBytes = 40;

[[noreturn]] void ioError(const std::string &What, const std::string &Path) {
  throw CheckpointError(CkptError::Io,
                        What + " '" + Path + "': " + std::strerror(errno));
}

/// A close-on-destruction fd.
struct Fd {
  int Raw = -1;
  ~Fd() {
    if (Raw >= 0)
      ::close(Raw);
  }
  explicit operator bool() const { return Raw >= 0; }
};

void writeAll(int Fd, const uint8_t *Data, size_t Size,
              const std::string &Path) {
  while (Size > 0) {
    ssize_t N = ::write(Fd, Data, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ioError("cannot write", Path);
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
}

void fsyncFd(int Fd, const std::string &Path) {
  if (::fsync(Fd) != 0)
    ioError("cannot fsync", Path);
}

/// fsyncs the directory containing \p Path so the rename itself is
/// durable.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  Fd D{::open(Dir.c_str(), O_RDONLY | O_DIRECTORY)};
  if (!D)
    ioError("cannot open directory", Dir);
  fsyncFd(D.Raw, Dir);
}

std::vector<uint8_t> readWholeFile(const std::string &Path, bool &Missing) {
  Missing = false;
  Fd F{::open(Path.c_str(), O_RDONLY)};
  if (!F) {
    if (errno == ENOENT) {
      Missing = true;
      return {};
    }
    ioError("cannot open", Path);
  }
  std::vector<uint8_t> Buf;
  uint8_t Chunk[1 << 16];
  for (;;) {
    ssize_t N = ::read(F.Raw, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ioError("cannot read", Path);
    }
    if (N == 0)
      break;
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  }
  return Buf;
}

uint64_t freshSnapshotId() {
  // Uniqueness is all that matters (a stale delta log must not match a
  // new snapshot by accident); no cryptographic strength needed.
  static std::mt19937_64 Rng{std::random_device{}()};
  uint64_t Id = Rng();
  return Id ? Id : 1;
}

void putU32(std::vector<uint8_t> &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

} // namespace

const char *ckptErrorName(CkptError E) {
  switch (E) {
  case CkptError::Io:
    return "io";
  case CkptError::BadMagic:
    return "bad_magic";
  case CkptError::BadVersion:
    return "bad_version";
  case CkptError::Truncated:
    return "truncated";
  case CkptError::CrcMismatch:
    return "crc_mismatch";
  case CkptError::Malformed:
    return "malformed";
  case CkptError::StaleDelta:
    return "stale_delta";
  case CkptError::VerifyFailed:
    return "verify_failed";
  case CkptError::Busy:
    return "busy";
  }
  return "unknown";
}

uint32_t crc32(const void *Data, size_t Size, uint32_t Seed) {
  static uint32_t Table[256];
  static bool Ready = [] {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Table[I] = C;
    }
    return true;
  }();
  (void)Ready;
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Size; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// CheckpointWriter
//===----------------------------------------------------------------------===//

CheckpointWriter::CheckpointWriter() : SnapshotId(freshSnapshotId()) {}

void CheckpointWriter::addSection(uint32_t Tag,
                                  std::vector<uint8_t> Payload) {
  Sections.push_back({Tag, std::move(Payload)});
}

uint64_t CheckpointWriter::writeFile(const std::string &Path) const {
  // Assemble the complete image in memory first: header, table, aligned
  // payloads. Nothing touches the disk until the image is final.
  std::vector<uint8_t> Image(kMagic, kMagic + 8);
  putU32(Image, kFormatVersion);
  putU32(Image, static_cast<uint32_t>(Sections.size()));
  putU64(Image, SnapshotId);

  std::vector<uint8_t> Table;
  size_t Offset = kHeaderBytes + Sections.size() * kTableEntryBytes;
  for (const Section &S : Sections) {
    Offset = (Offset + 7) & ~size_t{7};
    putU32(Table, S.Tag);
    putU32(Table, 0);
    putU64(Table, Offset);
    putU64(Table, S.Payload.size());
    putU32(Table, crc32(S.Payload.data(), S.Payload.size()));
    putU32(Table, 0);
    Offset += S.Payload.size();
  }
  putU32(Image, crc32(Table.data(), Table.size()));
  putU32(Image, 0);
  Image.insert(Image.end(), Table.begin(), Table.end());
  for (const Section &S : Sections) {
    Image.resize((Image.size() + 7) & ~size_t{7}, 0);
    Image.insert(Image.end(), S.Payload.begin(), S.Payload.end());
  }

  // Durable write protocol. Each step is preceded by an injection site so
  // the crash harness can kill between any two steps; correctness does
  // not depend on reaching any particular step — the rename is the only
  // visible transition.
  std::string Tmp = Path + ".tmp";
  faultInjectionPoint("ckpt.io"); // 1: before creating the temp file
  Fd F{::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
  if (!F)
    ioError("cannot create", Tmp);
  // Two half-writes so a kill can leave a genuinely torn temp file.
  size_t Half = Image.size() / 2;
  faultInjectionPoint("ckpt.io"); // 2: before the first half
  writeAll(F.Raw, Image.data(), Half, Tmp);
  faultInjectionPoint("ckpt.io"); // 3: between the halves (torn temp)
  writeAll(F.Raw, Image.data() + Half, Image.size() - Half, Tmp);
  faultInjectionPoint("ckpt.io"); // 4: before fsync
  fsyncFd(F.Raw, Tmp);
  faultInjectionPoint("ckpt.io"); // 5: before the atomic rename
  if (::rename(Tmp.c_str(), Path.c_str()) != 0)
    ioError("cannot rename into place", Path);
  faultInjectionPoint("ckpt.io"); // 6: before the directory fsync
  fsyncParentDir(Path);
  return Image.size();
}

//===----------------------------------------------------------------------===//
// CheckpointReader
//===----------------------------------------------------------------------===//

CheckpointReader::CheckpointReader(const std::string &Path) {
  bool Missing = false;
  Contents = readWholeFile(Path, Missing);
  if (Missing)
    ioError("cannot open", Path);

  if (Contents.size() < kHeaderBytes)
    throw CheckpointError(CkptError::Truncated,
                          "'" + Path + "' is shorter than a header");
  if (std::memcmp(Contents.data(), kMagic, 8) != 0)
    throw CheckpointError(CkptError::BadMagic,
                          "'" + Path + "' is not a checkpoint file");
  uint32_t Version = getU32(Contents.data() + 8);
  if (Version != kFormatVersion)
    throw CheckpointError(CkptError::BadVersion,
                          "'" + Path + "' has format version " +
                              std::to_string(Version) + ", expected " +
                              std::to_string(kFormatVersion));
  uint32_t NumSections = getU32(Contents.data() + 12);
  if (NumSections > kMaxSections)
    throw CheckpointError(CkptError::Malformed,
                          "implausible section count " +
                              std::to_string(NumSections));
  SnapshotId = getU64(Contents.data() + 16);
  uint32_t TableCrc = getU32(Contents.data() + 24);

  size_t TableBytes = size_t{NumSections} * kTableEntryBytes;
  if (Contents.size() < kHeaderBytes + TableBytes)
    throw CheckpointError(CkptError::Truncated,
                          "'" + Path + "' ends inside its section table");
  const uint8_t *Table = Contents.data() + kHeaderBytes;
  if (crc32(Table, TableBytes) != TableCrc)
    throw CheckpointError(CkptError::CrcMismatch,
                          "section table CRC mismatch in '" + Path + "'");

  for (uint32_t I = 0; I < NumSections; ++I) {
    const uint8_t *E = Table + size_t{I} * kTableEntryBytes;
    Section S;
    S.Tag = getU32(E);
    uint64_t Off = getU64(E + 8);
    uint64_t Size = getU64(E + 16);
    uint32_t Crc = getU32(E + 24);
    if (Off > Contents.size() || Size > Contents.size() - Off)
      throw CheckpointError(CkptError::Truncated,
                            "section payload extends past end of '" + Path +
                                "'");
    if (crc32(Contents.data() + Off, Size) != Crc)
      throw CheckpointError(CkptError::CrcMismatch,
                            "section payload CRC mismatch in '" + Path +
                                "'");
    S.Offset = Off;
    S.Size = Size;
    Sections.push_back(S);
  }
}

bool CheckpointReader::hasSection(uint32_t Tag) const {
  for (const Section &S : Sections)
    if (S.Tag == Tag)
      return true;
  return false;
}

ByteReader CheckpointReader::section(uint32_t Tag) const {
  for (const Section &S : Sections)
    if (S.Tag == Tag)
      return ByteReader(Contents.data() + S.Offset, S.Size);
  throw CheckpointError(CkptError::Malformed,
                        "missing required checkpoint section");
}

//===----------------------------------------------------------------------===//
// Delta log
//===----------------------------------------------------------------------===//

uint64_t DeltaAppender::append(const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Header;
  putU32(Header, kDeltaMagic);
  putU32(Header, 0);
  putU64(Header, NextSeq);
  putU64(Header, BaseSnapshotId);
  putU64(Header, Payload.size());
  putU32(Header, crc32(Payload.data(), Payload.size()));
  putU32(Header, 0);

  faultInjectionPoint("ckpt.delta.io"); // 1: before opening the log
  Fd F{::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644)};
  if (!F)
    ioError("cannot open delta log", Path);
  faultInjectionPoint("ckpt.delta.io"); // 2: before the header write
  writeAll(F.Raw, Header.data(), Header.size(), Path);
  faultInjectionPoint("ckpt.delta.io"); // 3: header on disk, payload not
  writeAll(F.Raw, Payload.data(), Payload.size(), Path);
  faultInjectionPoint("ckpt.delta.io"); // 4: before fsync
  fsyncFd(F.Raw, Path);
  ++NextSeq;
  return Header.size() + Payload.size();
}

namespace {

/// The shared scan behind readDeltaLog and repairDeltaLog. \p IntactEnd
/// receives the byte offset just past the last intact record (0 when the
/// whole log is foreign or unreadable).
std::vector<DeltaRecord> parseDeltaLog(const std::vector<uint8_t> &Buf,
                                       const std::string &Path,
                                       uint64_t BaseSnapshotId,
                                       std::string *Note, size_t &IntactEnd) {
  IntactEnd = 0;
  std::vector<DeltaRecord> Records;
  size_t Pos = 0;
  uint64_t ExpectSeq = 1;
  auto discardTail = [&](const char *Why) {
    if (Note)
      *Note = std::string("delta log '") + Path + "': " + Why +
              " at byte " + std::to_string(Pos) + "; keeping " +
              std::to_string(Records.size()) + " intact record(s)";
  };

  while (Pos < Buf.size()) {
    if (Buf.size() - Pos < kDeltaHeaderBytes) {
      discardTail("torn record header");
      break;
    }
    const uint8_t *H = Buf.data() + Pos;
    if (getU32(H) != kDeltaMagic) {
      discardTail("bad record magic");
      break;
    }
    uint64_t Seq = getU64(H + 8);
    uint64_t BaseId = getU64(H + 16);
    uint64_t Size = getU64(H + 24);
    uint32_t Crc = getU32(H + 32);
    if (Size > Buf.size() - Pos - kDeltaHeaderBytes) {
      discardTail("torn record payload");
      break;
    }
    const uint8_t *Payload = H + kDeltaHeaderBytes;
    if (crc32(Payload, Size) != Crc) {
      discardTail("record payload CRC mismatch");
      break;
    }
    if (BaseId != BaseSnapshotId) {
      // A stale log predating the current snapshot (crash between the
      // snapshot rename and the log reset). None of it applies.
      if (Records.empty()) {
        if (Note)
          *Note = std::string("delta log '") + Path +
                  "' belongs to a previous snapshot; ignoring it entirely";
        return {};
      }
      discardTail("record from a foreign snapshot");
      break;
    }
    if (Seq != ExpectSeq) {
      discardTail("sequence discontinuity");
      break;
    }
    Records.push_back(
        {Seq, std::vector<uint8_t>(Payload, Payload + Size)});
    ++ExpectSeq;
    Pos += kDeltaHeaderBytes + Size;
    IntactEnd = Pos;
  }
  return Records;
}

} // namespace

std::vector<DeltaRecord> readDeltaLog(const std::string &Path,
                                      uint64_t BaseSnapshotId,
                                      std::string *Note) {
  if (Note)
    Note->clear();
  bool Missing = false;
  std::vector<uint8_t> Buf = readWholeFile(Path, Missing);
  if (Missing)
    return {};
  size_t IntactEnd = 0;
  return parseDeltaLog(Buf, Path, BaseSnapshotId, Note, IntactEnd);
}

uint64_t repairDeltaLog(const std::string &Path, uint64_t BaseSnapshotId,
                        std::string *Note) {
  if (Note)
    Note->clear();
  bool Missing = false;
  std::vector<uint8_t> Buf = readWholeFile(Path, Missing);
  if (Missing)
    return 0;
  size_t IntactEnd = 0;
  std::vector<DeltaRecord> Records =
      parseDeltaLog(Buf, Path, BaseSnapshotId, Note, IntactEnd);
  if (IntactEnd < Buf.size()) {
    // Appending after a torn record would hide the new record behind
    // garbage (the reader discards everything from the first bad byte),
    // so cut the log back to the last intact boundary first.
    Fd F{::open(Path.c_str(), O_WRONLY)};
    if (!F)
      ioError("cannot open delta log", Path);
    if (::ftruncate(F.Raw, static_cast<off_t>(IntactEnd)) != 0)
      ioError("cannot truncate delta log", Path);
    fsyncFd(F.Raw, Path);
  }
  return Records.size();
}

void removeDeltaLog(const std::string &Path) {
  faultInjectionPoint("ckpt.io"); // 7: before resetting the delta log
  if (::unlink(Path.c_str()) != 0 && errno != ENOENT)
    ioError("cannot remove delta log", Path);
  fsyncParentDir(Path);
}

} // namespace alphonse
