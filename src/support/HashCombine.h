//===- HashCombine.h - Hashing utilities ------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash combining for argument vectors. The paper's argument tables
/// (Section 4.2) are "indexed by this vector" of call arguments; we key
/// hash tables on std::tuple of the arguments, which requires a tuple hash.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_HASHCOMBINE_H
#define ALPHONSE_SUPPORT_HASHCOMBINE_H

#include <cstddef>
#include <functional>
#include <tuple>

namespace alphonse {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with the 64-bit golden-ratio constant).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// Hashes every element of a tuple into one value.
template <typename... Ts> struct TupleHash {
  size_t operator()(const std::tuple<Ts...> &Tup) const {
    size_t Seed = 0;
    std::apply(
        [&Seed](const Ts &...Elems) {
          (hashCombine(Seed, std::hash<std::decay_t<Ts>>{}(Elems)), ...);
        },
        Tup);
    return Seed;
  }
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_HASHCOMBINE_H
