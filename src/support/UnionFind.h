//===- UnionFind.h - Disjoint-set forest ------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disjoint-set forest with union by rank and path compression, used by the
/// dynamic dependency-graph partitioning refinement of Section 6.3 of the
/// paper ("we keep disjoint sets of unconnected nodes using the union/find
/// algorithm [AHU74]").
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SUPPORT_UNIONFIND_H
#define ALPHONSE_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace alphonse {

/// Growable disjoint-set forest over dense 32-bit element ids.
///
/// Elements are created with makeSet() and merged with unite(). find() uses
/// path halving, so a sequence of m operations over n elements costs
/// O(m * alpha(n)) — the inverse-Ackermann bound the paper cites in its
/// Section 9.2 time analysis.
class UnionFind {
public:
  using Id = uint32_t;

  /// Creates a fresh singleton set and returns its id.
  Id makeSet() {
    Id NewId = static_cast<Id>(Parent.size());
    Parent.push_back(NewId);
    Rank.push_back(0);
    ++NumSets;
    return NewId;
  }

  /// Returns the canonical representative of \p X's set.
  Id find(Id X) {
    assert(X < Parent.size() && "find() of unknown element");
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]]; // Path halving.
      X = Parent[X];
    }
    return X;
  }

  /// Merges the sets containing \p A and \p B.
  ///
  /// \returns the representative of the merged set. If the two elements were
  /// already in the same set, this is simply that set's representative.
  Id unite(Id A, Id B) {
    Id RootA = find(A);
    Id RootB = find(B);
    if (RootA == RootB)
      return RootA;
    if (Rank[RootA] < Rank[RootB])
      std::swap(RootA, RootB);
    Parent[RootB] = RootA;
    if (Rank[RootA] == Rank[RootB])
      ++Rank[RootA];
    --NumSets;
    return RootA;
  }

  /// Returns true if \p A and \p B are currently in the same set.
  bool connected(Id A, Id B) { return find(A) == find(B); }

  /// Number of elements ever created.
  size_t size() const { return Parent.size(); }

  /// Number of distinct sets currently alive.
  size_t numSets() const { return NumSets; }

private:
  std::vector<Id> Parent;
  std::vector<uint8_t> Rank;
  size_t NumSets = 0;
};

} // namespace alphonse

#endif // ALPHONSE_SUPPORT_UNIONFIND_H
