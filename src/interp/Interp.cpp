//===- Interp.cpp - Alphonse-L interpreter ----------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "graph/Checkpoint.h"
#include "interp/bytecode/Compiler.h"
#include "interp/bytecode/VM.h"
#include "lang/Types.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace alphonse::lang;

namespace alphonse::interp {

//===----------------------------------------------------------------------===//
// Storage slots (the interpreter's Cell<T>)
//===----------------------------------------------------------------------===//

class SlotNode;

/// One storage location: a live value plus a lazily created dependency
/// node (Algorithm 3 creates nodes at the first access under a non-empty
/// call stack).
class StorageSlot {
public:
  StorageSlot() = default;
  ~StorageSlot();
  StorageSlot(const StorageSlot &) = delete;
  StorageSlot &operator=(const StorageSlot &) = delete;

  Value Live;
  std::unique_ptr<SlotNode> Node;
  /// Debug label for the slot's node ("G.<name>" for globals, empty for
  /// fields); doubles as the slot's fault-injection site.
  std::string DebugName;
};

/// The dependency-graph node of a storage slot; Snapshot is the value
/// dependents last observed (compared by Algorithm 4 and at refresh).
class SlotNode final : public DepNode {
public:
  SlotNode(DepGraph &G, StorageSlot &Owner, bool SerialPin)
      : DepNode(G, NodeKind::Storage), Owner(&Owner), Snapshot(Owner.Live) {
    // Tree-walking recomputes share one output stream, heap, and
    // conventional call depth, so without the bytecode tier every
    // language node pins its partition serial. With compiled bodies the
    // per-thread VM state makes refresh safe on wave workers; only the
    // nodes of procedures the effect analysis could not clear stay
    // pinned (see InterpProcNode).
    if (SerialPin)
      requireSerialEval();
  }

  bool refreshStorage() override {
    faultInjectionPoint(name());
    bool Changed = !(Owner->Live == Snapshot);
    Snapshot = Owner->Live;
    return Changed;
  }

  StorageSlot *Owner;
  Value Snapshot;
};

StorageSlot::~StorageSlot() = default;

//===----------------------------------------------------------------------===//
// Procedure instance nodes (the interpreter's argument-table entries)
//===----------------------------------------------------------------------===//

/// One (procedure, argument vector) incremental instance.
class InterpProcNode final : public DepNode {
public:
  InterpProcNode(DepGraph &G, Interp &Owner, const ProcDecl *Proc,
                 EvalStrategy Strategy)
      : DepNode(G, NodeKind::Procedure, Strategy), Owner(&Owner),
        Proc(Proc) {
    // A compiled, side-effect-free body executes in per-thread VM state
    // and may re-run on parallel wave workers; anything the effect
    // analysis could not clear (prints, NEW, global or field writes,
    // uncompiled bodies) keeps the serial pin.
    if (!Owner.BC || !Owner.BC->parallelSafe(Proc))
      requireSerialEval();
  }

  bool reexecute() override { return Owner->reexecuteInstance(*this); }

  Interp *Owner;
  const ProcDecl *Proc;
  std::vector<Value> Key;
  std::optional<Value> Cached;
};

//===----------------------------------------------------------------------===//
// Heap objects
//===----------------------------------------------------------------------===//

HeapObject::HeapObject(const ObjectTypeInfo *Ty, size_t NumFields) : Ty(Ty) {
  Slots.reserve(NumFields);
  for (size_t I = 0; I < NumFields; ++I)
    Slots.push_back(std::make_unique<StorageSlot>());
}

HeapObject::~HeapObject() = default;

StorageSlot &HeapObject::slot(size_t I) {
  assert(I < Slots.size() && "field index out of range");
  return *Slots[I];
}

std::string Value::render() const {
  switch (K) {
  case Kind::Nil:
    return "NIL";
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Bool:
    return Bool ? "TRUE" : "FALSE";
  case Kind::Text:
    return Text;
  case Kind::Object:
    return "<" + Obj->type()->Name + ">";
  }
  return "<?>";
}

//===----------------------------------------------------------------------===//
// Interp: construction
//===----------------------------------------------------------------------===//

struct Interp::Frame {
  std::vector<Value> Slots;
  bool Returning = false;
  Value RetVal;
};

Interp::Interp(const Module &M, const SemaInfo &Info, ExecMode Mode,
               DepGraph::Config Cfg, bool EnableBytecode,
               bool EnableStaticGraph)
    : M(M), Info(Info), Mode(Mode), RT(Cfg) {
  // Compile before any language node exists: InterpProcNode consults BC
  // to decide whether its partition needs the serial pin. Compiled chunks
  // are derived state — never checkpointed, rebuilt from the module here
  // on every construction (including the fresh interpreter a restore
  // requires).
  if (const char *E = std::getenv("ALPHONSE_NO_BYTECODE"))
    if (E[0] && !(E[0] == '0' && !E[1]))
      EnableBytecode = false;
  if (const char *E = std::getenv("ALPHONSE_NO_STATIC_GRAPH"))
    if (E[0] && !(E[0] == '0' && !E[1]))
      EnableStaticGraph = false;
  // The shape plan must exist before compilation so call sites get their
  // static-instance slots baked into the chunk procedure pools. Derived
  // state, like the bytecode module; only Alphonse mode builds graphs.
  if (EnableStaticGraph && Mode == ExecMode::Alphonse)
    Plan = std::make_unique<transform::GraphPlan>(
        transform::buildGraphPlan(M, Info));
  if (EnableBytecode) {
    BC = bytecode::compileModule(M, Info, Plan.get());
    BCState = std::make_unique<bytecode::ExecArena>();
  }
  for (const Type &Ty : Info.GlobalTypes) {
    auto Slot = std::make_unique<StorageSlot>();
    Slot->Live = defaultValue(Ty);
    Globals.push_back(std::move(Slot));
  }
  for (const GlobalDecl &G : M.Globals)
    if (G.Index >= 0) {
      GlobalIndex[G.Name] = G.Index;
      Globals[static_cast<size_t>(G.Index)]->DebugName = "G." + G.Name;
    }
  // Run initializers in declaration order. They execute as mutator code
  // (empty call stack), so no dependencies are recorded.
  guarded([&] {
    Frame F;
    for (const GlobalDecl &G : M.Globals) {
      if (!G.Init || G.Index < 0)
        continue;
      Globals[static_cast<size_t>(G.Index)]->Live =
          evalExpr(G.Init.get(), F);
    }
    return Value();
  });
  // Instantiate the static shape only now: a SlotNode snapshots the live
  // value at construction, so building the globals' nodes before their
  // initializers ran would plant stale snapshots and make the variable
  // cutoff wrongly suppress the first real write.
  instantiateStaticShape();
}

void Interp::instantiateStaticShape() {
  if (!Plan)
    return;
  DepGraph &G = RT.graph();
  // Top up the slab free lists to the plan's capacity in one bulk step.
  // Instantiation below — and the steady-state churn after it — is then
  // served entirely by free-list pops: zero slab growth, which the
  // bench_static suite asserts via a flat pool.high_water gauge.
  size_t NeedNodes = Plan->nodeCount();
  size_t NeedEdges = Plan->edgeCount();
  size_t FreeNodes = G.nodeSlotsFree();
  size_t FreeEdges = G.edgeSlotsFree();
  G.reserveShape(NeedNodes > FreeNodes ? NeedNodes - FreeNodes : 0,
                 NeedEdges > FreeEdges ? NeedEdges - FreeEdges : 0);
  // Globals' storage nodes, find-or-create (a restore or an initializer
  // that called an incremental procedure may have materialized some).
  for (auto &SlotPtr : Globals) {
    StorageSlot &S = *SlotPtr;
    if (S.Node)
      continue;
    S.Node = std::make_unique<SlotNode>(G, S, /*SerialPin=*/BC == nullptr);
    S.Node->setName(S.DebugName.empty() ? "slot" : S.DebugName);
  }
  // Planned procedure instances: the nullary cached procedures whose
  // single argument-table entry (the empty vector) is known at transform
  // time. Created inconsistent with no cached value — the first call runs
  // the body exactly like the dynamic path's first call.
  StaticInstances.assign(Plan->Instances.size(), nullptr);
  for (const transform::PlanInstance &PI : Plan->Instances) {
    ArgTable &Table = Tables[PI.Proc];
    std::vector<Value> Key;
    auto It = Table.find(Key);
    InterpProcNode *N;
    if (It != Table.end()) {
      N = It->second.get();
    } else {
      auto Owned = std::make_unique<InterpProcNode>(G, *this, PI.Proc,
                                                    PI.Proc->Pragma.Strategy);
      N = Owned.get();
      N->setName(PI.Proc->Name);
      Table.emplace(std::move(Key), std::move(Owned));
      ++RT.stats().StaticInstances;
    }
    StaticInstances[static_cast<size_t>(PI.Slot)] = N;
  }
}

void Interp::demolishStaticShape() {
  if (!Plan || (StaticInstances.empty() && Plan->GlobalSlots == 0))
    return;
  DepGraph &G = RT.graph();
  // Refuse unless every shape-built node is still pristine: a used
  // interpreter must fail restore's freshness gate exactly like the
  // dynamic path, not get silently wiped.
  for (InterpProcNode *N : StaticInstances) {
    if (!N)
      return;
    if (N->isConsistent() || N->Cached || N->isQuarantined() ||
        G.numPredecessors(*N) != 0 || G.numSuccessors(*N) != 0)
      return;
  }
  for (auto &SlotPtr : Globals) {
    StorageSlot &S = *SlotPtr;
    if (!S.Node)
      return; // Shape incomplete: not the ctor-built state.
    if (S.Node->isQuarantined() || !(S.Node->Snapshot == S.Live) ||
        G.numPredecessors(*S.Node) != 0 || G.numSuccessors(*S.Node) != 0)
      return;
  }
  for (const transform::PlanInstance &PI : Plan->Instances) {
    auto TI = Tables.find(PI.Proc);
    if (TI == Tables.end())
      continue;
    TI->second.erase(std::vector<Value>());
    if (TI->second.empty())
      Tables.erase(TI);
  }
  StaticInstances.clear();
  for (auto &SlotPtr : Globals)
    SlotPtr->Node.reset();
}

Interp::~Interp() = default;

Value Interp::defaultValue(const Type &Ty) const {
  switch (Ty.Kind) {
  case TypeKind::Integer:
    return Value::integer(0);
  case TypeKind::Boolean:
    return Value::boolean(false);
  case TypeKind::Text:
    return Value::text("");
  default:
    return Value::nil();
  }
}

HeapObject *Interp::allocate(const ObjectTypeInfo *Ty) {
  auto Obj = std::make_unique<HeapObject>(Ty, Ty->Fields.size());
  for (const FieldInfo &FI : Ty->Fields)
    Obj->slot(static_cast<size_t>(FI.Index)).Live = defaultValue(FI.Ty);
  Heap.push_back(std::move(Obj));
  return Heap.back().get();
}

void Interp::fail(SourceLocation Loc, const std::string &Message) {
  // Thrown, not flagged: the error unwinds through the incremental call
  // protocol (quarantining any in-flight instances) and is converted back
  // to the failed()/errorMessage() state at the public API boundary.
  throw RuntimeError(Loc, Message);
}

void Interp::noteFailure() {
  try {
    throw;
  } catch (const std::exception &E) {
    if (!Failed) { // The first failure wins, as with the old flag.
      Failed = true;
      ErrorMessage = E.what();
    }
  } catch (...) {
    if (!Failed) {
      Failed = true;
      ErrorMessage = "unknown runtime failure";
    }
  }
}

std::string Interp::renderForPrint(const Value &V) const { return V.render(); }

//===----------------------------------------------------------------------===//
// Storage protocol
//===----------------------------------------------------------------------===//

Value Interp::trackedRead(StorageSlot &S, bool Tracked) {
  if (Mode != ExecMode::Alphonse || !Tracked || !RT.inIncrementalCall())
    return S.Live;
  if (!S.Node) {
    // Double-checked under the graph's state guard: with compiled bodies
    // on wave workers, two refreshes can race to materialize the same
    // slot's node (same pattern as Cell::ensureNode).
    DepGraph::StateGuard Guard(RT.graph());
    if (!S.Node) {
      S.Node =
          std::make_unique<SlotNode>(RT.graph(), S, /*SerialPin=*/BC == nullptr);
      S.Node->setName(S.DebugName.empty() ? "slot" : S.DebugName);
      // Slot nodes created inside a batch are destroyed again on rollback.
      if (RT.inBatch())
        RT.graph().logUndo([&S]() { S.Node.reset(); });
    }
  }
  RT.recordAccess(*S.Node);
  return S.Live;
}

void Interp::trackedWrite(StorageSlot &S, Value V, bool Tracked) {
  // Journal every storage write inside a batch — untracked ones too,
  // since the slot may gain a node later in the batch and rollback must
  // restore the value written before it.
  if (Mode == ExecMode::Alphonse && RT.inBatch())
    RT.graph().logUndo([&S, Old = S.Live]() {
      S.Live = Old;
      if (S.Node)
        S.Node->Snapshot = Old;
    });
  if (Mode != ExecMode::Alphonse || !Tracked || !S.Node) {
    S.Live = std::move(V);
    return;
  }
  Statistics &Stats = RT.stats();
  ++Stats.TrackedWrites;
  // Algorithm 4 begins with access(l): the writer depends on the location.
  if (RT.inIncrementalCall())
    RT.recordAccess(*S.Node);
  bool Quiescent = (V == S.Node->Snapshot);
  S.Live = std::move(V);
  if (Quiescent && RT.graph().config().VariableCutoff) {
    ++Stats.QuiescentWrites;
    return;
  }
  // A node with no dependents (nothing ever incrementally read this slot)
  // folds the change into its snapshot in place: queueing it would only
  // park a refresh that propagates to no one. Matters for pre-built
  // static slot nodes (DESIGN.md §14), which exist before any reader.
  if (RT.graph().settleUnobservedWrite(*S.Node))
    return;
  RT.graph().markInconsistent(*S.Node);
}

//===----------------------------------------------------------------------===//
// Call protocol
//===----------------------------------------------------------------------===//

Value Interp::dispatch(const ProcDecl *P, const PragmaInfo &Pragma,
                       bool Checked, std::vector<Value> Args,
                       int StaticSlot) {
  // The call(p, ...) operation: with no table pointer (conventional mode,
  // unchecked site, or non-incremental callee) execute directly; reads
  // inside then attribute to the calling incremental instance, which is
  // exactly the transitive R(p) of Section 3.3.
  if (Mode == ExecMode::Alphonse && Checked && Pragma.isIncremental())
    return incrementalCall(P, Pragma, std::move(Args), StaticSlot);
  return runBody(P, Args);
}

Value Interp::incrementalCall(const ProcDecl *P, const PragmaInfo &Pragma,
                              std::vector<Value> Args, int StaticSlot) {
  InterpProcNode *N;
  bool Existing = false;
  // Static fast path (paper §6.2): a planned nullary procedure resolves
  // to its pre-built instance with one indexed load — no StateGuard, no
  // argument-vector hashing, no allocation. Compiled sites carry the slot
  // in the chunk's procedure pool; tree-walked and driver-API sites
  // consult the plan's index (one pointer hash, still allocation-free).
  if (StaticSlot < 0 && Plan && Args.empty())
    StaticSlot = Plan->slotOf(P);
  if (StaticSlot >= 0 &&
      static_cast<size_t>(StaticSlot) < StaticInstances.size() &&
      StaticInstances[static_cast<size_t>(StaticSlot)]) {
    N = StaticInstances[static_cast<size_t>(StaticSlot)];
    Existing = true;
    ++RT.stats().StaticCalls;
  } else {
    // Table lookup/insert under the graph's state guard: compiled callers
    // on different wave workers can reach the same instance concurrently
    // (mirrors Maintained::operator()). unordered_map reference stability
    // keeps &Table valid for the undo closure.
    DepGraph::StateGuard Guard(RT.graph());
    ArgTable &Table = Tables[P];
    auto It = Table.find(Args);
    if (It == Table.end()) {
      auto Owned = std::make_unique<InterpProcNode>(RT.graph(), *this, P,
                                                    Pragma.Strategy);
      N = Owned.get();
      N->setName(P->Name);
      N->Key = Args;
      Table.emplace(std::move(Args), std::move(Owned));
      // Argument-table entries inserted inside a batch are dropped again on
      // rollback (references to the node were journaled later, so they are
      // undone first).
      if (RT.inBatch())
        RT.graph().logUndo(
            [&Table, DeadKey = N->Key]() { Table.erase(DeadKey); });
    } else {
      N = It->second.get();
      Existing = true;
    }
  }
  // Partition-ownership handshake before touching the instance's state:
  // claim an unowned partition for this worker, or throw RetryConflict to
  // defer behind the current owner (the scheduler re-runs the accessor).
  RT.graph().ensureWorkerAccess(*N, RT.currentProcedure());
  // Algorithm 5: before reusing an existing instance, apply any batched
  // changes that could affect it. Outside the guard — this can evaluate.
  if (Existing)
    RT.ensureEvaluatedFor(*N);
  if (RT.inIncrementalCall())
    RT.recordAccess(*N);
  if (N->isQuarantined()) {
    // The last recompute failed; resurface the original fault instead of
    // serving a stale or missing cache entry.
    throw QuarantinedError(*RT.graph().fault(*N));
  }
  if (N->isExecuting()) {
    // Re-entrant call to an in-flight instance: run conventionally,
    // attributing reads to the instance (sound over-approximation).
    // ReentrantScope bounds the nesting; past Config::MaxReentrantDepth
    // this is a dependency cycle and its constructor throws CycleError.
    ReentrantScope Reentrant(RT.graph(), *N);
    Runtime::CallScope Call(RT, N);
    return runBody(P, N->Key);
  }
  if (N->isConsistent()) {
    assert(N->Cached && "consistent instance with no cached value");
    ++RT.stats().CacheHits;
    return *N->Cached;
  }
  return executeInstance(*N);
}

Value Interp::executeInstance(InterpProcNode &N) {
  DepGraph &G = RT.graph();
  // The graph journals the structural half of a re-execution; the cached
  // value lives here in the interpreter, so restore it via an Action.
  if (G.inBatch())
    G.logUndo([&N, Old = N.Cached]() { N.Cached = Old; });
  G.removePredEdges(N);
  // RAII protocol frames: a throwing body (runtime error, poisoned callee,
  // injected fault) unwinds with the graph and call stack coherent; the
  // instance is quarantined and the exception continues to the caller.
  ExecutionScope Exec(G, N);
  Runtime::CallScope Call(RT, &N);
  try {
    auto Inject = faultInjectionPoint(N.name());
    Value Ret = runBody(N.Proc, N.Key);
    if (Inject == FaultInjector::Action::Diverge)
      G.selfInvalidate(N);
    N.Cached = Ret;
    return Ret;
  } catch (const RetryConflict &) {
    // A wave conflict is a scheduling event, not a fault: leave the
    // instance inconsistent for the scheduler's retry instead of
    // quarantining it.
    G.selfInvalidate(N);
    throw;
  } catch (...) {
    G.quarantine(N, captureCurrentFault(N.name()));
    throw;
  }
}

bool Interp::reexecuteInstance(InterpProcNode &N) {
  std::optional<Value> Old = N.Cached;
  Value New = executeInstance(N);
  return !Old || !(*Old == New);
}

//===----------------------------------------------------------------------===//
// Public driver API
//===----------------------------------------------------------------------===//

Value Interp::call(const std::string &ProcName, std::vector<Value> Args) {
  if (Failed)
    return Value(); // Execution stays a no-op until clearError().
  return guarded([&] {
    const ProcDecl *P = M.findProc(ProcName);
    if (!P)
      fail(SourceLocation(), "unknown procedure '" + ProcName + "'");
    return dispatch(P, P->Pragma, /*Checked=*/true, std::move(Args));
  });
}

Value Interp::callMethod(Value Receiver, const std::string &Method,
                         std::vector<Value> Args) {
  if (Failed)
    return Value();
  return guarded([&] {
    if (Receiver.K != Value::Kind::Object)
      fail(SourceLocation(), "method call on a non-object value");
    const ObjectTypeInfo *Ty = Receiver.Obj->type();
    const MethodSig *Sig = Ty->findMethod(Method);
    if (!Sig)
      fail(SourceLocation(),
           "type '" + Ty->Name + "' has no method '" + Method + "'");
    const MethodImpl &MI = Ty->VTable[static_cast<size_t>(Sig->Slot)];
    if (!MI.Impl)
      fail(SourceLocation(), "method '" + Method + "' has no implementation");
    std::vector<Value> Full;
    Full.reserve(Args.size() + 1);
    Full.push_back(Receiver);
    for (Value &A : Args)
      Full.push_back(std::move(A));
    return dispatch(MI.Impl, MI.Pragma, /*Checked=*/true, std::move(Full));
  });
}

Value Interp::makeObject(const std::string &TypeName) {
  return guarded([&] {
    const ObjectTypeInfo *Ty = Info.lookupType(TypeName);
    if (!Ty)
      fail(SourceLocation(), "unknown type '" + TypeName + "'");
    return Value::object(allocate(Ty));
  });
}

Value Interp::global(const std::string &Name) {
  return guarded([&] {
    auto It = GlobalIndex.find(Name);
    if (It == GlobalIndex.end())
      fail(SourceLocation(), "unknown top-level variable '" + Name + "'");
    return Globals[static_cast<size_t>(It->second)]->Live;
  });
}

void Interp::setGlobal(const std::string &Name, Value V) {
  guarded([&] {
    auto It = GlobalIndex.find(Name);
    if (It == GlobalIndex.end())
      fail(SourceLocation(), "unknown top-level variable '" + Name + "'");
    trackedWrite(*Globals[static_cast<size_t>(It->second)], std::move(V),
                 /*Tracked=*/true);
    return Value();
  });
}

Value Interp::field(Value Receiver, const std::string &Field) {
  return guarded([&] {
    if (Receiver.K != Value::Kind::Object)
      fail(SourceLocation(), "field access on a non-object value");
    const FieldInfo *FI = Receiver.Obj->type()->findField(Field);
    if (!FI)
      fail(SourceLocation(), "no field '" + Field + "'");
    return Receiver.Obj->slot(static_cast<size_t>(FI->Index)).Live;
  });
}

void Interp::setField(Value Receiver, const std::string &Field, Value V) {
  guarded([&] {
    if (Receiver.K != Value::Kind::Object)
      fail(SourceLocation(), "field write on a non-object value");
    const FieldInfo *FI = Receiver.Obj->type()->findField(Field);
    if (!FI)
      fail(SourceLocation(), "no field '" + Field + "'");
    trackedWrite(Receiver.Obj->slot(static_cast<size_t>(FI->Index)),
                 std::move(V), /*Tracked=*/true);
    return Value();
  });
}

//===----------------------------------------------------------------------===//
// Execution engine
//===----------------------------------------------------------------------===//

namespace {
/// RAII depth counter: balanced even when a statement throws (a manual
/// decrement would leak frames across exception unwinding and make the
/// depth limit trip spuriously later).
class DepthGuard {
public:
  explicit DepthGuard(int &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }

  DepthGuard(const DepthGuard &) = delete;
  DepthGuard &operator=(const DepthGuard &) = delete;

private:
  int &Depth;
};
} // namespace

Value Interp::runBody(const ProcDecl *P, const std::vector<Value> &Args) {
  // Compiled bodies run in the VM with per-thread frames and depth —
  // CallDepth is shared interpreter state and must stay untouched here,
  // or parallel drains would race on it.
  if (BC)
    if (const bytecode::Chunk *Ch = BC->chunk(P))
      return runChunk(*Ch, Args);
  if (CallDepth >= MaxCallDepth)
    fail(P->Loc, "call depth exceeded in '" + P->Name +
                     "' (runaway recursion?)");
  DepthGuard Depth(CallDepth);
  const ProcInfo *PI = Info.procInfo(P);
  assert(PI && "procedure was not analyzed");
  Frame F;
  F.Slots.resize(static_cast<size_t>(PI->FrameSize));
  assert(Args.size() == PI->ParamTypes.size() && "arity mismatch");
  for (size_t I = 0; I < Args.size(); ++I)
    F.Slots[I] = Args[I];
  // Default-initialize locals by type, then run their initializers.
  for (size_t I = 0; I < PI->LocalTypes.size(); ++I)
    F.Slots[Args.size() + I] = defaultValue(PI->LocalTypes[I]);
  for (size_t I = 0; I < P->Locals.size(); ++I) {
    if (!P->Locals[I].Init)
      continue;
    F.Slots[Args.size() + I] = evalExpr(P->Locals[I].Init.get(), F);
  }
  execStmts(P->Body, F);
  if (F.Returning)
    return F.RetVal;
  return defaultValue(PI->RetType);
}

void Interp::execStmts(const std::vector<StmtPtr> &Stmts, Frame &F) {
  for (const StmtPtr &S : Stmts) {
    if (F.Returning)
      return;
    execStmt(S.get(), F);
  }
}

void Interp::execStmt(const Stmt *S, Frame &F) {
  switch (S->Kind) {
  case StmtKind::Assign: {
    const auto *A = static_cast<const AssignStmt *>(S);
    Value V = evalExpr(A->Value.get(), F);
    if (A->Target->Kind == ExprKind::NameRef) {
      const auto *N = static_cast<const NameRefExpr *>(A->Target.get());
      if (N->Binding == NameBinding::Global) {
        trackedWrite(*Globals[static_cast<size_t>(N->Index)], std::move(V),
                     A->TrackedModify);
      } else {
        F.Slots[static_cast<size_t>(N->Index)] = std::move(V);
      }
      return;
    }
    const auto *FA = static_cast<const FieldAccessExpr *>(A->Target.get());
    Value Base = evalExpr(FA->Base.get(), F);
    if (Base.K != Value::Kind::Object)
      fail(FA->Loc, "NIL dereference writing field '" + FA->Field + "'");
    trackedWrite(Base.Obj->slot(static_cast<size_t>(FA->FieldIndex)),
                 std::move(V), A->TrackedModify);
    return;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    for (const IfStmt::Arm &Arm : I->Arms) {
      Value C = evalExpr(Arm.Cond.get(), F);
      if (C.Bool) {
        execStmts(Arm.Body, F);
        return;
      }
    }
    execStmts(I->ElseBody, F);
    return;
  }
  case StmtKind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    while (!F.Returning) {
      Value C = evalExpr(W->Cond.get(), F);
      if (!C.Bool)
        return;
      execStmts(W->Body, F);
    }
    return;
  }
  case StmtKind::For: {
    const auto *For = static_cast<const ForStmt *>(S);
    Value From = evalExpr(For->From.get(), F);
    Value To = evalExpr(For->To.get(), F);
    for (long I = From.Int; I <= To.Int && !F.Returning; ++I) {
      F.Slots[static_cast<size_t>(For->VarIndex)] = Value::integer(I);
      execStmts(For->Body, F);
    }
    return;
  }
  case StmtKind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    if (R->Value)
      F.RetVal = evalExpr(R->Value.get(), F);
    F.Returning = true;
    return;
  }
  case StmtKind::Expr:
    evalExpr(static_cast<const ExprStmt *>(S)->E.get(), F);
    return;
  }
}

Value Interp::evalExpr(const Expr *E, Frame &F) {
  switch (E->Kind) {
  case ExprKind::IntLit:
    return Value::integer(static_cast<const IntLitExpr *>(E)->Value);
  case ExprKind::BoolLit:
    return Value::boolean(static_cast<const BoolLitExpr *>(E)->Value);
  case ExprKind::TextLit:
    return Value::text(static_cast<const TextLitExpr *>(E)->Value);
  case ExprKind::NilLit:
    return Value::nil();
  case ExprKind::NameRef: {
    const auto *N = static_cast<const NameRefExpr *>(E);
    if (N->Binding == NameBinding::Global)
      return trackedRead(*Globals[static_cast<size_t>(N->Index)],
                         N->TrackedAccess);
    assert(N->Index >= 0 && "unresolved name survived Sema");
    return F.Slots[static_cast<size_t>(N->Index)];
  }
  case ExprKind::FieldAccess: {
    const auto *FA = static_cast<const FieldAccessExpr *>(E);
    Value Base = evalExpr(FA->Base.get(), F);
    if (Base.K != Value::Kind::Object)
      fail(FA->Loc, "NIL dereference reading field '" + FA->Field + "'");
    return trackedRead(Base.Obj->slot(static_cast<size_t>(FA->FieldIndex)),
                       FA->TrackedAccess);
  }
  case ExprKind::Call:
    return evalCall(static_cast<const CallExpr *>(E), F);
  case ExprKind::MethodCall:
    return evalMethodCall(static_cast<const MethodCallExpr *>(E), F);
  case ExprKind::New: {
    const auto *N = static_cast<const NewExpr *>(E);
    assert(N->Resolved && "unresolved NEW survived Sema");
    return Value::object(allocate(N->Resolved));
  }
  case ExprKind::Binary:
    return evalBinary(static_cast<const BinaryExpr *>(E), F);
  case ExprKind::Unary: {
    const auto *U = static_cast<const UnaryExpr *>(E);
    Value V = evalExpr(U->Sub.get(), F);
    if (U->Op == UnaryOp::Neg)
      return Value::integer(-V.Int);
    return Value::boolean(!V.Bool);
  }
  case ExprKind::Unchecked: {
    const auto *U = static_cast<const UncheckedExpr *>(E);
    if (Mode != ExecMode::Alphonse)
      return evalExpr(U->Sub.get(), F);
    // RAII null frame: accesses record nothing; the frame pops even when
    // the subexpression throws.
    UncheckedScope Scope(RT);
    return evalExpr(U->Sub.get(), F);
  }
  }
  return Value();
}

Value Interp::evalCall(const CallExpr *C, Frame &F) {
  if (C->BuiltinIndex >= 0) {
    switch (static_cast<Builtin>(C->BuiltinIndex)) {
    case Builtin::Print: {
      Value V = evalExpr(C->Args[0].get(), F);
      Output += renderForPrint(V) + "\n";
      return Value();
    }
    case Builtin::Fmt: {
      Value V = evalExpr(C->Args[0].get(), F);
      return Value::text(renderForPrint(V));
    }
    case Builtin::Max:
    case Builtin::Min: {
      Value A = evalExpr(C->Args[0].get(), F);
      Value B = evalExpr(C->Args[1].get(), F);
      bool IsMax = C->BuiltinIndex == static_cast<int>(Builtin::Max);
      return Value::integer(IsMax ? std::max(A.Int, B.Int)
                                  : std::min(A.Int, B.Int));
    }
    case Builtin::Abs: {
      Value A = evalExpr(C->Args[0].get(), F);
      return Value::integer(A.Int < 0 ? -A.Int : A.Int);
    }
    case Builtin::Pause: {
      Value A = evalExpr(C->Args[0].get(), F);
      // Simulated blocking external work: sleeps this thread only, touches
      // no interpreter state (so bodies using it stay parallel-clearable).
      if (A.Int > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(A.Int));
      return Value();
    }
    case Builtin::NumBuiltins:
      break;
    }
    fail(C->Loc, "bad builtin index");
  }
  assert(C->Resolved && "unresolved call survived Sema");
  std::vector<Value> Args;
  Args.reserve(C->Args.size());
  for (const ExprPtr &A : C->Args)
    Args.push_back(evalExpr(A.get(), F));
  return dispatch(C->Resolved, C->Resolved->Pragma, C->CheckedCall,
                  std::move(Args));
}

Value Interp::evalMethodCall(const MethodCallExpr *C, Frame &F) {
  Value Base = evalExpr(C->Base.get(), F);
  if (Base.K != Value::Kind::Object)
    fail(C->Loc, "NIL dereference calling method '" + C->Method + "'");
  const auto &VTable = Base.Obj->type()->VTable;
  assert(C->MethodSlot >= 0 &&
         static_cast<size_t>(C->MethodSlot) < VTable.size() &&
         "bad method slot");
  const MethodImpl &MI = VTable[static_cast<size_t>(C->MethodSlot)];
  if (!MI.Impl)
    fail(C->Loc, "method '" + C->Method + "' has no implementation");
  std::vector<Value> Args;
  Args.reserve(C->Args.size() + 1);
  Args.push_back(Base);
  for (const ExprPtr &A : C->Args)
    Args.push_back(evalExpr(A.get(), F));
  return dispatch(MI.Impl, MI.Pragma, C->CheckedCall, std::move(Args));
}

Value Interp::evalBinary(const BinaryExpr *B, Frame &F) {
  // AND / OR are short-circuit, like Modula-3.
  if (B->Op == BinaryOp::And || B->Op == BinaryOp::Or) {
    Value L = evalExpr(B->Lhs.get(), F);
    if (B->Op == BinaryOp::And && !L.Bool)
      return Value::boolean(false);
    if (B->Op == BinaryOp::Or && L.Bool)
      return Value::boolean(true);
    Value R = evalExpr(B->Rhs.get(), F);
    return Value::boolean(R.Bool);
  }
  Value L = evalExpr(B->Lhs.get(), F);
  Value R = evalExpr(B->Rhs.get(), F);
  switch (B->Op) {
  case BinaryOp::Add:
    return Value::integer(L.Int + R.Int);
  case BinaryOp::Sub:
    return Value::integer(L.Int - R.Int);
  case BinaryOp::Mul:
    return Value::integer(L.Int * R.Int);
  case BinaryOp::Div:
    if (R.Int == 0)
      fail(B->Loc, "division by zero");
    return Value::integer(L.Int / R.Int);
  case BinaryOp::Mod:
    if (R.Int == 0)
      fail(B->Loc, "modulo by zero");
    return Value::integer(L.Int % R.Int);
  case BinaryOp::Concat:
    return Value::text(L.Text + R.Text);
  case BinaryOp::Eq:
    return Value::boolean(L == R);
  case BinaryOp::Ne:
    return Value::boolean(!(L == R));
  case BinaryOp::Lt:
    return Value::boolean(L.Int < R.Int);
  case BinaryOp::Le:
    return Value::boolean(L.Int <= R.Int);
  case BinaryOp::Gt:
    return Value::boolean(L.Int > R.Int);
  case BinaryOp::Ge:
    return Value::boolean(L.Int >= R.Int);
  case BinaryOp::And:
  case BinaryOp::Or:
    break; // Handled above.
  }
  fail(B->Loc, "bad binary operator");
}

//===----------------------------------------------------------------------===//
// Durable checkpoints (DESIGN.md Section 10)
//===----------------------------------------------------------------------===//
//
// Section layout of an interpreter checkpoint (inside the CheckpointIO
// container):
//
//   META  module fingerprint (u64) + execution mode (u8)
//   GRPH  GraphSnapshot (engine-side node/edge/partition state)
//   GLBL  one slot per global: live value, plus node id + snapshot value
//         when the slot is tracked
//   HEAP  object count, then each object's type name, then each object's
//         field slots (same encoding as GLBL); object-valued Values are
//         stored as u32 indices into this heap
//   TABL  per incremental procedure: name + argument-table entries
//         (node id, argument vector, cached value)
//   OUTP  output stream + failed flag + error message
//
// A delta record is just current storage: the heap's type names (new
// objects appear as a longer list), every field value, every global
// value. Restore applies the values through trackedWrite and pumps;
// derived values are recomputed, not replayed.

namespace {

constexpr uint32_t TagMeta = sectionTag('M', 'E', 'T', 'A');
constexpr uint32_t TagGraph = sectionTag('G', 'R', 'P', 'H');
constexpr uint32_t TagGlobals = sectionTag('G', 'L', 'B', 'L');
constexpr uint32_t TagHeap = sectionTag('H', 'E', 'A', 'P');
constexpr uint32_t TagTables = sectionTag('T', 'A', 'B', 'L');
constexpr uint32_t TagOutput = sectionTag('O', 'U', 'T', 'P');

[[noreturn]] void ckptMalformed(const std::string &Msg) {
  throw CheckpointError(CkptError::Malformed, Msg);
}

using HeapIndexMap = std::unordered_map<const HeapObject *, uint32_t>;

void encodeValue(ByteWriter &W, const Value &V, const HeapIndexMap &Idx) {
  W.u8(static_cast<uint8_t>(V.K));
  switch (V.K) {
  case Value::Kind::Nil:
    break;
  case Value::Kind::Int:
    W.i64(V.Int);
    break;
  case Value::Kind::Bool:
    W.u8(V.Bool ? 1 : 0);
    break;
  case Value::Kind::Text:
    W.str(V.Text);
    break;
  case Value::Kind::Object: {
    auto It = Idx.find(V.Obj);
    assert(It != Idx.end() && "object value not on the interpreter heap");
    W.u32(It->second);
    break;
  }
  }
}

/// A decoded Value whose Object payload is still a heap index; resolved
/// to a pointer only after the heap has been rebuilt.
struct StagedValue {
  uint8_t Kind = 0;
  int64_t Int = 0;
  bool Bool = false;
  std::string Text;
  uint32_t Obj = 0;
};

StagedValue decodeValue(ByteReader &R, size_t HeapLimit) {
  StagedValue V;
  V.Kind = R.u8();
  switch (static_cast<Value::Kind>(V.Kind)) {
  case Value::Kind::Nil:
    break;
  case Value::Kind::Int:
    V.Int = R.i64();
    break;
  case Value::Kind::Bool: {
    uint8_t B = R.u8();
    if (B > 1)
      ckptMalformed("boolean payload out of range");
    V.Bool = B != 0;
    break;
  }
  case Value::Kind::Text:
    V.Text = R.str();
    break;
  case Value::Kind::Object:
    V.Obj = R.u32();
    if (V.Obj >= HeapLimit)
      ckptMalformed("object value references a heap index out of range");
    break;
  default:
    ckptMalformed("unknown value kind " + std::to_string(V.Kind));
  }
  return V;
}

/// One captured StorageSlot: live value plus (when tracked) the node id
/// and the snapshot dependents last observed.
struct StagedSlot {
  bool HasNode = false;
  uint32_t NodeBits = 0;
  StagedValue Snapshot;
  StagedValue Live;
};

void encodeSlot(ByteWriter &W, const StorageSlot &S, const HeapIndexMap &Idx) {
  W.u8(S.Node ? 1 : 0);
  if (S.Node) {
    W.u32(S.Node->id().bits());
    encodeValue(W, S.Node->Snapshot, Idx);
  }
  encodeValue(W, S.Live, Idx);
}

StagedSlot decodeSlot(ByteReader &R, size_t HeapLimit) {
  StagedSlot S;
  uint8_t Has = R.u8();
  if (Has > 1)
    ckptMalformed("slot node flag out of range");
  S.HasNode = Has != 0;
  if (S.HasNode) {
    S.NodeBits = R.u32();
    S.Snapshot = decodeValue(R, HeapLimit);
  }
  S.Live = decodeValue(R, HeapLimit);
  return S;
}

/// One staged delta record: the complete storage image at one quiescent
/// point after the base snapshot.
struct StagedDelta {
  std::vector<std::string> Types; ///< All heap objects, base ones first.
  std::vector<std::vector<StagedValue>> Fields; ///< Per object.
  std::vector<StagedValue> Globals;
};

} // namespace

uint64_t Interp::moduleFingerprint() const {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<uint8_t>(C);
      H *= 1099511628211ull;
    }
    H ^= 0xFFu; // separator, so {"ab","c"} != {"a","bc"}
    H *= 1099511628211ull;
  };
  for (const GlobalDecl &G : M.Globals)
    Mix(G.Name);
  for (const auto &P : M.Procs)
    Mix(P->Name);
  for (const auto &T : Info.Types)
    Mix(T->Name);
  H ^= static_cast<uint8_t>(Mode);
  H *= 1099511628211ull;
  return H;
}

void Interp::saveCheckpoint(const std::string &Path) {
  RT.pumpUnbounded(); // Capture needs true quiescence, whatever the default budget.
  // Capture enforces quiescence (throws Busy on pending work, an open
  // batch, or mid-evaluation) — everything below sees one consistent cut.
  GraphSnapshot GS = GraphCheckpoint::capture(RT.graph());

  HeapIndexMap HeapIdx;
  HeapIdx.reserve(Heap.size());
  for (size_t I = 0; I < Heap.size(); ++I)
    HeapIdx.emplace(Heap[I].get(), static_cast<uint32_t>(I));

  CheckpointWriter W;
  {
    ByteWriter B;
    B.u64(moduleFingerprint());
    B.u8(static_cast<uint8_t>(Mode));
    W.addSection(TagMeta, B.take());
  }
  {
    ByteWriter B;
    GS.encode(B);
    W.addSection(TagGraph, B.take());
  }
  {
    ByteWriter B;
    B.u32(static_cast<uint32_t>(Globals.size()));
    for (const auto &S : Globals)
      encodeSlot(B, *S, HeapIdx);
    W.addSection(TagGlobals, B.take());
  }
  {
    ByteWriter B;
    B.u32(static_cast<uint32_t>(Heap.size()));
    for (const auto &Obj : Heap)
      B.str(Obj->type()->Name);
    for (const auto &Obj : Heap) {
      uint32_t NumFields = static_cast<uint32_t>(Obj->type()->Fields.size());
      B.u32(NumFields);
      for (uint32_t I = 0; I < NumFields; ++I)
        encodeSlot(B, Obj->slot(I), HeapIdx);
    }
    W.addSection(TagHeap, B.take());
  }
  {
    ByteWriter B;
    B.u32(static_cast<uint32_t>(Tables.size()));
    for (const auto &TE : Tables) {
      B.str(TE.first->Name);
      B.u32(static_cast<uint32_t>(TE.second.size()));
      for (const auto &E : TE.second) {
        const InterpProcNode &N = *E.second;
        B.u32(N.id().bits());
        B.u8(static_cast<uint8_t>(N.strategy()));
        B.u32(static_cast<uint32_t>(N.Key.size()));
        for (const Value &A : N.Key)
          encodeValue(B, A, HeapIdx);
        B.u8(N.Cached ? 1 : 0);
        if (N.Cached)
          encodeValue(B, *N.Cached, HeapIdx);
      }
    }
    W.addSection(TagTables, B.take());
  }
  {
    ByteWriter B;
    B.str(Output);
    B.u8(Failed ? 1 : 0);
    B.str(ErrorMessage);
    W.addSection(TagOutput, B.take());
  }

  uint64_t Bytes = W.writeFile(Path);
  // The snapshot now covers everything the old delta log recorded.
  removeDeltaLog(deltaLogPath(Path));

  Statistics &S = RT.stats();
  ++S.CkptSnapshots;
  S.CkptSections += W.numSections();
  S.CkptBytesWritten += Bytes;
}

void Interp::appendDelta(const std::string &Path) {
  RT.pumpUnbounded();
  if (RT.graph().inBatch())
    throw CheckpointError(CkptError::Busy,
                          "cannot append a delta inside an open batch");
  CheckpointReader Base(Path);
  {
    ByteReader MR = Base.section(TagMeta);
    if (MR.u64() != moduleFingerprint() ||
        MR.u8() != static_cast<uint8_t>(Mode))
      ckptMalformed(
          "snapshot was captured from a different module or mode");
  }
  // Continue the existing log, cutting back any tail a previous killed
  // append left torn.
  uint64_t Have = repairDeltaLog(deltaLogPath(Path), Base.snapshotId());

  HeapIndexMap HeapIdx;
  HeapIdx.reserve(Heap.size());
  for (size_t I = 0; I < Heap.size(); ++I)
    HeapIdx.emplace(Heap[I].get(), static_cast<uint32_t>(I));

  ByteWriter B;
  B.u32(static_cast<uint32_t>(Heap.size()));
  for (const auto &Obj : Heap)
    B.str(Obj->type()->Name);
  for (const auto &Obj : Heap) {
    uint32_t NumFields = static_cast<uint32_t>(Obj->type()->Fields.size());
    B.u32(NumFields);
    for (uint32_t I = 0; I < NumFields; ++I)
      encodeValue(B, Obj->slot(I).Live, HeapIdx);
  }
  B.u32(static_cast<uint32_t>(Globals.size()));
  for (const auto &S : Globals)
    encodeValue(B, S->Live, HeapIdx);

  DeltaAppender A(deltaLogPath(Path), Base.snapshotId(), Have + 1);
  uint64_t Bytes = A.append(B.take());

  Statistics &S = RT.stats();
  ++S.CkptDeltas;
  S.CkptBytesWritten += Bytes;
}

void Interp::restoreCheckpoint(const std::string &Path) {
  auto Start = std::chrono::steady_clock::now();
  DepGraph &G = RT.graph();
  // A static-graph interpreter is born with the shape pre-instantiated;
  // tear a still-pristine shape down so the freshness gate below sees the
  // same empty graph a dynamic-path interpreter starts with. The shape is
  // derived state — never part of the checkpoint — and is rebuilt from
  // the plan after the snapshot's nodes are back (a used interpreter
  // fails the pristine check, keeps its shape, and is rejected here
  // exactly like the dynamic path).
  demolishStaticShape();
  if (G.inBatch() || G.numLiveNodes() != 0 || !Tables.empty())
    throw CheckpointError(
        CkptError::Busy,
        "restore requires a freshly constructed interpreter");

  //===--- Phase 1: decode and validate everything; mutate nothing. ------===//

  CheckpointReader R(Path);
  {
    ByteReader MR = R.section(TagMeta);
    if (MR.u64() != moduleFingerprint())
      ckptMalformed("checkpoint was captured from a different module");
    if (MR.u8() != static_cast<uint8_t>(Mode))
      ckptMalformed("checkpoint was captured under a different mode");
    if (!MR.atEnd())
      ckptMalformed("trailing bytes in META section");
  }

  GraphSnapshot GS;
  {
    ByteReader GR = R.section(TagGraph);
    GS = GraphSnapshot::decode(GR);
    if (!GR.atEnd())
      ckptMalformed("trailing bytes in GRPH section");
  }

  // HEAP first: GLBL/TABL values may reference heap indices, so the heap
  // size bounds every decode.
  std::vector<const ObjectTypeInfo *> HeapTypes;
  std::vector<std::vector<StagedSlot>> HeapSlots;
  {
    ByteReader HR = R.section(TagHeap);
    uint32_t Count = HR.u32();
    HeapTypes.reserve(std::min<uint32_t>(Count, 4096));
    for (uint32_t I = 0; I < Count; ++I) {
      std::string Name = HR.str();
      const ObjectTypeInfo *Ty = Info.lookupType(Name);
      if (!Ty)
        ckptMalformed("heap object of unknown type '" + Name + "'");
      HeapTypes.push_back(Ty);
    }
    HeapSlots.reserve(HeapTypes.size());
    for (uint32_t I = 0; I < Count; ++I) {
      uint32_t NumFields = HR.u32();
      if (NumFields != HeapTypes[I]->Fields.size())
        ckptMalformed("field count mismatch for type '" +
                      HeapTypes[I]->Name + "'");
      std::vector<StagedSlot> Slots;
      Slots.reserve(NumFields);
      for (uint32_t F = 0; F < NumFields; ++F)
        Slots.push_back(decodeSlot(HR, Count));
      HeapSlots.push_back(std::move(Slots));
    }
    if (!HR.atEnd())
      ckptMalformed("trailing bytes in HEAP section");
  }

  std::vector<StagedSlot> GlobalSlots;
  {
    ByteReader GR = R.section(TagGlobals);
    uint32_t Count = GR.u32();
    if (Count != Globals.size())
      ckptMalformed("global count mismatch (checkpoint has " +
                    std::to_string(Count) + ", module has " +
                    std::to_string(Globals.size()) + ")");
    GlobalSlots.reserve(Count);
    for (uint32_t I = 0; I < Count; ++I)
      GlobalSlots.push_back(decodeSlot(GR, HeapTypes.size()));
    if (!GR.atEnd())
      ckptMalformed("trailing bytes in GLBL section");
  }

  struct StagedEntry {
    uint32_t NodeBits = 0;
    EvalStrategy Strategy = EvalStrategy::Demand;
    std::vector<StagedValue> Args;
    bool HasCached = false;
    StagedValue Cached;
  };
  struct StagedTable {
    const ProcDecl *Proc = nullptr;
    std::vector<StagedEntry> Entries;
  };
  std::vector<StagedTable> StagedTables;
  {
    ByteReader TR = R.section(TagTables);
    uint32_t NumTables = TR.u32();
    for (uint32_t T = 0; T < NumTables; ++T) {
      StagedTable Tab;
      std::string Name = TR.str();
      Tab.Proc = M.findProc(Name);
      // A table belongs to a procedure reachable through the incremental
      // call protocol: either its own pragma is CACHED/MAINTAINED, or it
      // implements a maintained method (dispatch() keys the table by the
      // implementing ProcDecl but takes the pragma from the binding).
      bool Incremental = Tab.Proc && Tab.Proc->Pragma.isIncremental();
      if (Tab.Proc && !Incremental)
        for (const auto &Ty : Info.Types) {
          for (const lang::MethodImpl &MI : Ty->VTable)
            if (MI.Impl == Tab.Proc && MI.Pragma.isIncremental()) {
              Incremental = true;
              break;
            }
          if (Incremental)
            break;
        }
      if (!Tab.Proc || !Incremental)
        ckptMalformed("argument table for unknown or non-incremental "
                      "procedure '" +
                      Name + "'");
      for (const StagedTable &Prev : StagedTables)
        if (Prev.Proc == Tab.Proc)
          ckptMalformed("duplicate argument table for '" + Name + "'");
      uint32_t NumEntries = TR.u32();
      for (uint32_t E = 0; E < NumEntries; ++E) {
        StagedEntry En;
        En.NodeBits = TR.u32();
        uint8_t Strat = TR.u8();
        if (Strat > static_cast<uint8_t>(EvalStrategy::Eager))
          ckptMalformed("evaluation strategy out of range");
        En.Strategy = static_cast<EvalStrategy>(Strat);
        uint32_t NumArgs = TR.u32();
        for (uint32_t A = 0; A < NumArgs; ++A)
          En.Args.push_back(decodeValue(TR, HeapTypes.size()));
        uint8_t Has = TR.u8();
        if (Has > 1)
          ckptMalformed("cached-value flag out of range");
        En.HasCached = Has != 0;
        if (En.HasCached)
          En.Cached = decodeValue(TR, HeapTypes.size());
        Tab.Entries.push_back(std::move(En));
      }
      StagedTables.push_back(std::move(Tab));
    }
    if (!TR.atEnd())
      ckptMalformed("trailing bytes in TABL section");
  }

  std::string StagedOutput, StagedErrorMessage;
  bool StagedFailed = false;
  {
    ByteReader OR = R.section(TagOutput);
    StagedOutput = OR.str();
    uint8_t F = OR.u8();
    if (F > 1)
      ckptMalformed("failed flag out of range");
    StagedFailed = F != 0;
    StagedErrorMessage = OR.str();
    if (!OR.atEnd())
      ckptMalformed("trailing bytes in OUTP section");
  }

  // Cross-check: a consistent procedure node must have a cached value to
  // serve (Maintained's invariant), or the first post-restore call would
  // assert instead of failing the load.
  GraphRestorer Restorer(std::move(GS));
  for (const StagedTable &Tab : StagedTables)
    for (const StagedEntry &En : Tab.Entries) {
      const CkptNode *Rec = Restorer.findNode(En.NodeBits);
      if (Rec && Rec->Consistent && !En.HasCached)
        ckptMalformed("consistent instance of '" + Tab.Proc->Name +
                      "' has no cached value");
    }

  // Stage the delta log: decode every surviving record before touching
  // live state. Heap growth must be monotone and type-stable.
  std::vector<StagedDelta> Deltas;
  {
    std::vector<DeltaRecord> Raw =
        readDeltaLog(deltaLogPath(Path), R.snapshotId(), &RestoreNote);
    size_t RunningHeap = HeapTypes.size();
    std::vector<std::string> RunningTypes;
    RunningTypes.reserve(RunningHeap);
    for (const ObjectTypeInfo *Ty : HeapTypes)
      RunningTypes.push_back(Ty->Name);
    for (const DeltaRecord &Rec : Raw) {
      ByteReader DR(Rec.Payload.data(), Rec.Payload.size());
      StagedDelta D;
      uint32_t HeapCount = DR.u32();
      if (HeapCount < RunningHeap)
        ckptMalformed("delta record " + std::to_string(Rec.Seq) +
                      " shrinks the heap");
      for (uint32_t I = 0; I < HeapCount; ++I) {
        std::string Name = DR.str();
        if (I < RunningTypes.size()) {
          if (Name != RunningTypes[I])
            ckptMalformed("delta record " + std::to_string(Rec.Seq) +
                          " retypes heap object " + std::to_string(I));
        } else if (!Info.lookupType(Name)) {
          ckptMalformed("delta record " + std::to_string(Rec.Seq) +
                        " allocates unknown type '" + Name + "'");
        }
        D.Types.push_back(std::move(Name));
      }
      for (uint32_t I = 0; I < HeapCount; ++I) {
        const ObjectTypeInfo *Ty = Info.lookupType(D.Types[I]);
        uint32_t NumFields = DR.u32();
        if (NumFields != Ty->Fields.size())
          ckptMalformed("delta record " + std::to_string(Rec.Seq) +
                        " field count mismatch for '" + Ty->Name + "'");
        std::vector<StagedValue> FV;
        FV.reserve(NumFields);
        for (uint32_t F = 0; F < NumFields; ++F)
          FV.push_back(decodeValue(DR, HeapCount));
        D.Fields.push_back(std::move(FV));
      }
      uint32_t NumGlobals = DR.u32();
      if (NumGlobals != Globals.size())
        ckptMalformed("delta record " + std::to_string(Rec.Seq) +
                      " global count mismatch");
      for (uint32_t I = 0; I < NumGlobals; ++I)
        D.Globals.push_back(decodeValue(DR, HeapCount));
      if (!DR.atEnd())
        ckptMalformed("trailing bytes in delta record " +
                      std::to_string(Rec.Seq));
      RunningHeap = HeapCount;
      RunningTypes = D.Types;
      Deltas.push_back(std::move(D));
    }
  }

  //===--- Phase 2: rebuild. Failures below still throw, but the caller  --===//
  //===--- was told to discard the interpreter on any restore error.     --===//

  // Discard whatever the global initializers allocated; the checkpoint's
  // heap replaces it wholesale. No nodes exist yet, so this is plain
  // memory release.
  Heap.clear();
  for (const ObjectTypeInfo *Ty : HeapTypes)
    allocate(Ty);

  auto Resolve = [this](const StagedValue &V) -> Value {
    switch (static_cast<Value::Kind>(V.Kind)) {
    case Value::Kind::Nil:
      return Value::nil();
    case Value::Kind::Int:
      return Value::integer(V.Int);
    case Value::Kind::Bool:
      return Value::boolean(V.Bool);
    case Value::Kind::Text:
      return Value::text(V.Text);
    case Value::Kind::Object:
      return Value::object(Heap[V.Obj].get());
    }
    return Value::nil(); // Unreachable: phase 1 validated the kind.
  };

  auto RestoreSlot = [&](StorageSlot &S, const StagedSlot &St) {
    S.Live = Resolve(St.Live);
    if (!St.HasNode)
      return;
    S.Node = std::make_unique<SlotNode>(G, S, /*SerialPin=*/BC == nullptr);
    S.Node->setName(S.DebugName.empty() ? "slot" : S.DebugName);
    // The constructor snapshots Live; dependents may have observed an
    // older value (quarantined writer), so re-apply the captured one.
    S.Node->Snapshot = Resolve(St.Snapshot);
    Restorer.bind(St.NodeBits, *S.Node);
  };

  for (size_t I = 0; I < HeapSlots.size(); ++I)
    for (size_t F = 0; F < HeapSlots[I].size(); ++F)
      RestoreSlot(Heap[I]->slot(F), HeapSlots[I][F]);
  for (size_t I = 0; I < GlobalSlots.size(); ++I)
    RestoreSlot(*Globals[I], GlobalSlots[I]);

  for (const StagedTable &Tab : StagedTables) {
    ArgTable &Table = Tables[Tab.Proc];
    for (const StagedEntry &En : Tab.Entries) {
      auto Owned = std::make_unique<InterpProcNode>(G, *this, Tab.Proc,
                                                    En.Strategy);
      InterpProcNode *N = Owned.get();
      N->setName(Tab.Proc->Name);
      N->Key.reserve(En.Args.size());
      for (const StagedValue &A : En.Args)
        N->Key.push_back(Resolve(A));
      if (En.HasCached)
        N->Cached = Resolve(En.Cached);
      if (!Table.emplace(N->Key, std::move(Owned)).second)
        ckptMalformed("duplicate argument vector in table for '" +
                      Tab.Proc->Name + "'");
      Restorer.bind(En.NodeBits, *N);
    }
  }

  // Engine state: metadata, edges, partitions, quarantine — gated behind
  // DepGraph::verify().
  Restorer.finish(G);

  // Replay the surviving deltas as ordinary storage writes, then let
  // propagation recompute everything derived. Procedure instances
  // created after the base snapshot are not in the log; they rebuild on
  // first demand, which is the normal lazy path.
  if (!Deltas.empty()) {
    for (const StagedDelta &D : Deltas) {
      for (size_t I = Heap.size(); I < D.Types.size(); ++I)
        allocate(Info.lookupType(D.Types[I]));
      for (size_t I = 0; I < D.Fields.size(); ++I)
        for (size_t F = 0; F < D.Fields[I].size(); ++F)
          trackedWrite(Heap[I]->slot(F), Resolve(D.Fields[I][F]), true);
      for (size_t I = 0; I < D.Globals.size(); ++I)
        trackedWrite(*Globals[I], Resolve(D.Globals[I]), true);
    }
    RT.pumpUnbounded();
    std::vector<std::string> Problems = G.verify();
    if (!Problems.empty())
      throw CheckpointError(CkptError::VerifyFailed,
                            "post-delta verify failed: " + Problems.front());
  }

  // Rebuild the static shape around the restored state: the snapshot
  // brought back any instances and slot nodes it captured; this re-binds
  // them into the slot-indexed table and find-or-creates the rest (all
  // served from the slabs reserveShape pre-grew).
  instantiateStaticShape();

  Output = std::move(StagedOutput);
  Failed = StagedFailed;
  ErrorMessage = std::move(StagedErrorMessage);

  Statistics &S = RT.stats();
  ++S.CkptRestores;
  S.CkptRestoreMicros += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace alphonse::interp
