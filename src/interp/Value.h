//===- Value.h - Alphonse-L runtime values ----------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic values of the Alphonse-L interpreter. Equality is the identity
/// the incremental runtime cuts off on: structural for scalars, pointer
/// identity for objects (the paper's pointers are "well behaved", so
/// identity is the only observable pointer property).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_INTERP_VALUE_H
#define ALPHONSE_INTERP_VALUE_H

#include "support/HashCombine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alphonse::lang {
class ObjectTypeInfo;
}

namespace alphonse::interp {

class HeapObject;

/// A dynamically typed Alphonse-L value.
struct Value {
  enum class Kind : uint8_t { Nil, Int, Bool, Text, Object };

  Kind K = Kind::Nil;
  long Int = 0;
  bool Bool = false;
  std::string Text;
  HeapObject *Obj = nullptr;

  Value() = default;
  static Value nil() { return Value(); }
  static Value integer(long V) {
    Value R;
    R.K = Kind::Int;
    R.Int = V;
    return R;
  }
  static Value boolean(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.Bool = V;
    return R;
  }
  static Value text(std::string V) {
    Value R;
    R.K = Kind::Text;
    R.Text = std::move(V);
    return R;
  }
  static Value object(HeapObject *O) {
    Value R;
    R.K = O ? Kind::Object : Kind::Nil;
    R.Obj = O;
    return R;
  }

  bool isNil() const { return K == Kind::Nil; }

  friend bool operator==(const Value &A, const Value &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Nil:
      return true;
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Bool:
      return A.Bool == B.Bool;
    case Kind::Text:
      return A.Text == B.Text;
    case Kind::Object:
      return A.Obj == B.Obj;
    }
    return false;
  }

  size_t hash() const {
    size_t Seed = static_cast<size_t>(K);
    switch (K) {
    case Kind::Nil:
      break;
    case Kind::Int:
      hashCombine(Seed, std::hash<long>{}(Int));
      break;
    case Kind::Bool:
      hashCombine(Seed, Bool ? 1u : 0u);
      break;
    case Kind::Text:
      hashCombine(Seed, std::hash<std::string>{}(Text));
      break;
    case Kind::Object:
      hashCombine(Seed, std::hash<const void *>{}(Obj));
      break;
    }
    return Seed;
  }

  /// Renders the value the way print/fmt show it.
  std::string render() const;
};

/// Hash for argument vectors (the paper's argument-table index).
struct ValueVecHash {
  size_t operator()(const std::vector<Value> &Vec) const {
    size_t Seed = Vec.size();
    for (const Value &V : Vec)
      hashCombine(Seed, V.hash());
    return Seed;
  }
};

} // namespace alphonse::interp

#endif // ALPHONSE_INTERP_VALUE_H
