//===- VM.h - per-thread bytecode execution state ---------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reentrant VM's mutable execution state, one instance per evaluator
/// thread. The tree-walking engine allocates a Frame per call but shares
/// one call-depth counter (and its C++ stack) across the whole
/// interpreter, which is why language nodes historically pinned their
/// partitions serial. Here every worker gets its own register stack,
/// frame top, and depth counter, keyed by the same statistics shard id
/// the runtime already hands each thread — so concurrent wave drains
/// never share mutable interpreter state, and the only cross-thread
/// traffic is the tracked-read/-write protocol the graph mediates.
///
/// The dispatch loop itself is Interp::runChunk (VM.cpp): it needs the
/// interpreter's storage protocol and call machinery, so it lives as a
/// member of Interp rather than a free-standing class.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_INTERP_BYTECODE_VM_H
#define ALPHONSE_INTERP_BYTECODE_VM_H

#include "interp/Value.h"
#include "support/Statistics.h"

#include <array>
#include <vector>

namespace alphonse::interp::bytecode {

/// One thread's VM state: a register stack that frames carve contiguous
/// windows out of, plus the thread's VM call depth (the per-thread
/// equivalent of Interp::CallDepth).
struct ExecState {
  std::vector<Value> Regs;
  size_t Top = 0; ///< First free register — the next frame's base.
  int Depth = 0;  ///< VM frames in flight on this thread.
};

/// The per-worker arena: slot 0 is the main thread, slots 1 and up are a
/// pool's workers — the same numbering Statistics uses, so lookup is the
/// thread-local shard id and no locking is ever involved. A thread only
/// ever touches its own ExecState.
class ExecArena {
public:
  ExecState &current() { return States[statShardId()]; }

private:
  std::array<ExecState, kStatShards> States;
};

} // namespace alphonse::interp::bytecode

#endif // ALPHONSE_INTERP_BYTECODE_VM_H
