//===- Bytecode.cpp - opcode names, effect strings, disassembler ----------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "interp/bytecode/Bytecode.h"

#include "lang/AST.h"
#include "lang/Types.h"

#include <cstdarg>
#include <cstdio>

namespace alphonse::interp::bytecode {

const char *opcodeName(OpCode Op) {
  switch (Op) {
#define ALPHONSE_BYTECODE_OP(Name)                                             \
  case OpCode::Name:                                                           \
    return #Name;
    ALPHONSE_BYTECODE_OPCODES(ALPHONSE_BYTECODE_OP)
#undef ALPHONSE_BYTECODE_OP
  }
  return "<bad-op>";
}

std::string effectsString(uint8_t Effects) {
  if (Effects == EffNone)
    return "pure";
  std::string Out;
  auto Bit = [&](uint8_t Mask, const char *Name) {
    if (!(Effects & Mask))
      return;
    if (!Out.empty())
      Out += "|";
    Out += Name;
  };
  Bit(EffPrint, "print");
  Bit(EffAlloc, "alloc");
  Bit(EffGlobalWrite, "global-write");
  Bit(EffFieldWrite, "field-write");
  return Out;
}

namespace {

const char *builtinName(int32_t Index) {
  switch (Index) {
  case 0:
    return "print";
  case 1:
    return "max";
  case 2:
    return "min";
  case 3:
    return "abs";
  case 4:
    return "fmt";
  case 5:
    return "pause";
  default:
    return "<bad-builtin>";
  }
}

std::string fmt(const char *Format, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Format);
  vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

} // namespace

std::string disassemble(const Chunk &C) {
  std::string Out = C.Name + ": " + std::to_string(C.Code.size()) +
                    " instrs, params " + std::to_string(C.NumParams) +
                    ", frame " + std::to_string(C.FrameSize) + ", regs " +
                    std::to_string(C.NumRegs) + "\n";
  for (size_t I = 0; I < C.Code.size(); ++I) {
    const Instr &In = C.Code[I];
    Out += fmt("  %4zu  %-14s", I, opcodeName(In.Op));
    switch (In.Op) {
    case OpCode::LoadConst:
      Out += fmt("r%u <- %s", In.A,
                 C.Consts[static_cast<size_t>(In.Imm)].render().c_str());
      break;
    case OpCode::LoadInt:
      Out += fmt("r%u <- %d", In.A, In.Imm);
      break;
    case OpCode::LoadNil:
      Out += fmt("r%u <- NIL", In.A);
      break;
    case OpCode::LoadBool:
      Out += fmt("r%u <- %s", In.A, In.B ? "TRUE" : "FALSE");
      break;
    case OpCode::Move:
    case OpCode::CastBool:
    case OpCode::Neg:
    case OpCode::Not:
      Out += fmt("r%u <- r%u", In.A, In.B);
      break;
    case OpCode::LoadGlobal:
      Out += fmt("r%u <- g%u", In.A, In.B);
      break;
    case OpCode::StoreGlobal:
      Out += fmt("g%u <- r%u", In.A, In.B);
      break;
    case OpCode::LoadField:
      Out += fmt("r%u <- r%u.%s", In.A, In.B,
                 C.Names[static_cast<size_t>(In.Imm)].c_str());
      break;
    case OpCode::StoreField:
      Out += fmt("r%u.%s <- r%u", In.A,
                 C.Names[static_cast<size_t>(In.Imm)].c_str(), In.B);
      break;
    case OpCode::NewObj:
      Out += fmt("r%u <- NEW %s", In.A,
                 C.Types[static_cast<size_t>(In.Imm)]->Name.c_str());
      break;
    case OpCode::CheckRecv:
      Out += fmt("r%u ('%s')", In.A,
                 C.Names[static_cast<size_t>(In.Imm)].c_str());
      break;
    case OpCode::CallProc:
      Out += fmt("r%u <- %s(r%u..r%u)", In.A,
                 C.Procs[static_cast<size_t>(In.Imm)].P->Name.c_str(), In.B,
                 In.B + In.C);
      break;
    case OpCode::CallMethod:
      Out += fmt("r%u <- r%u.%s(r%u..r%u) [slot %d]", In.A, In.B,
                 C.Methods[static_cast<size_t>(In.Imm)].Name.c_str(), In.B + 1,
                 In.B + In.C, C.Methods[static_cast<size_t>(In.Imm)].Slot);
      break;
    case OpCode::CallBuiltin:
      Out += fmt("r%u <- %s(r%u..r%u)", In.A, builtinName(In.Imm), In.B,
                 In.B + In.C);
      break;
    case OpCode::Add:
    case OpCode::Sub:
    case OpCode::Mul:
    case OpCode::Div:
    case OpCode::Mod:
    case OpCode::Concat:
    case OpCode::CmpEq:
    case OpCode::CmpNe:
    case OpCode::CmpLt:
    case OpCode::CmpLe:
    case OpCode::CmpGt:
    case OpCode::CmpGe:
      Out += fmt("r%u <- r%u, r%u", In.A, In.B, In.C);
      break;
    case OpCode::Jump:
      Out += fmt("-> %d", In.Imm);
      break;
    case OpCode::JumpIfFalse:
      Out += fmt("if !r%u -> %d", In.A, In.Imm);
      break;
    case OpCode::JumpIfTrue:
      Out += fmt("if r%u -> %d", In.A, In.Imm);
      break;
    case OpCode::ForPrep:
      Out += fmt("ctr r%u, lim r%u", In.A, In.B);
      break;
    case OpCode::ForTest:
      Out += fmt("if r%u > r%u -> %d", In.A, In.B, In.Imm);
      break;
    case OpCode::ForStep:
      Out += fmt("r%u++ -> %d", In.A, In.Imm);
      break;
    case OpCode::EnterUnchecked:
    case OpCode::LeaveUnchecked:
    case OpCode::RetNil:
    case OpCode::RetDefault:
      break;
    case OpCode::Ret:
      Out += fmt("r%u", In.A);
      break;
    }
    if (In.Flags & FlagTracked)
      Out += "  [tracked]";
    Out += "\n";
  }
  return Out;
}

} // namespace alphonse::interp::bytecode
