//===- Compiler.h - Alphonse-L AST to bytecode lowering ---------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers Sema-checked (and usually transformed) Alphonse-L procedure
/// bodies to the register bytecode in Bytecode.h, and computes the
/// transitive side-effect mask the interpreter uses to decide which
/// procedure nodes may drop their serial pin and join parallel waves
/// (DESIGN.md "Bytecode compilation and per-thread execution").
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_INTERP_BYTECODE_COMPILER_H
#define ALPHONSE_INTERP_BYTECODE_COMPILER_H

#include "interp/bytecode/Bytecode.h"
#include "lang/Sema.h"

#include <memory>
#include <unordered_map>

namespace alphonse::transform {
struct GraphPlan;
} // namespace alphonse::transform

namespace alphonse::interp::bytecode {

/// The compiled module: one chunk per procedure plus the per-procedure
/// transitive effect masks. Derived state — rebuilt from (Module,
/// SemaInfo) whenever an interpreter is constructed; never checkpointed.
class BytecodeModule {
public:
  /// The compiled body of \p P, or nullptr if it was not compiled.
  const Chunk *chunk(const lang::ProcDecl *P) const {
    auto It = Chunks.find(P);
    return It == Chunks.end() ? nullptr : &It->second;
  }

  /// Transitive ProcEffect mask of \p P (EffNone for unknown procedures).
  uint8_t effects(const lang::ProcDecl *P) const {
    auto It = Effects.find(P);
    return It == Effects.end() ? uint8_t(EffNone) : It->second;
  }

  /// True when instances of \p P are side-effect-free and may re-execute
  /// on parallel wave workers (serial-pin relaxation criterion).
  bool parallelSafe(const lang::ProcDecl *P) const {
    return effects(P) == EffNone;
  }

  std::unordered_map<const lang::ProcDecl *, Chunk> Chunks;
  std::unordered_map<const lang::ProcDecl *, uint8_t> Effects;
};

/// Compiles every procedure of \p M. \p M and \p Info must outlive the
/// result (chunks hold ProcDecl / ObjectTypeInfo pointers into them).
/// With a \p Plan, call sites whose callee the plan covers get the
/// static-instance slot baked into the chunk's procedure pool
/// (ProcRef::StaticSlot), making hot-path node resolution an indexed
/// load; without one, every site keeps the dynamic path.
std::unique_ptr<BytecodeModule>
compileModule(const lang::Module &M, const lang::SemaInfo &Info,
              const transform::GraphPlan *Plan = nullptr);

} // namespace alphonse::interp::bytecode

#endif // ALPHONSE_INTERP_BYTECODE_COMPILER_H
