//===- Compiler.cpp - Alphonse-L AST to bytecode lowering -----------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Two passes over every procedure of a Sema-checked module:
//
//  1. Lowering: each body becomes a register Chunk. Frame registers
//     0..FrameSize-1 reuse Sema's slot numbering (parameters, locals, FOR
//     variables), so no remapping table is needed at run time; expression
//     temporaries are allocated monotonically above the frame and released
//     at statement boundaries. All name resolution (globals, fields,
//     callees, vtable slots) is burned into operands here. The evaluation
//     order and error behavior of every construct replicates the
//     tree-walker exactly — the differential suite holds the two engines
//     to bit-identical observable behavior.
//
//  2. Effect analysis: the transitive side-effect mask that decides which
//     procedure instances may execute on parallel wave workers. Direct
//     effects (print, NEW, global writes, field writes) are unioned over
//     the call graph to a fixpoint; method call sites conservatively union
//     every implementation bound to the method name anywhere in the module
//     (dynamic dispatch could reach any of them). A body whose mask comes
//     out empty touches only its own frame and tracked reads, which the
//     graph's ownership protocol already mediates — its node drops the
//     serial pin.
//
//===----------------------------------------------------------------------===//

#include "interp/bytecode/Compiler.h"

#include "lang/AST.h"
#include "lang/Types.h"
#include "transform/GraphPlan.h"

#include <cassert>
#include <cstdint>

using namespace alphonse::lang;

namespace alphonse::interp::bytecode {

namespace {

/// Mirror of Interp::defaultValue — the zero value of a declared type.
Value defaultValueFor(const Type &Ty) {
  switch (Ty.Kind) {
  case TypeKind::Integer:
    return Value::integer(0);
  case TypeKind::Boolean:
    return Value::boolean(false);
  case TypeKind::Text:
    return Value::text("");
  default:
    return Value::nil();
  }
}

constexpr uint8_t EffAll =
    EffPrint | EffAlloc | EffGlobalWrite | EffFieldWrite;
constexpr int MaxRegs = 0xFFFF;

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class ProcCompiler {
public:
  ProcCompiler(const ProcDecl &P, const ProcInfo &PI, Chunk &Ch,
               const transform::GraphPlan *Plan)
      : P(P), PI(PI), Ch(Ch), Plan(Plan), Next(PI.FrameSize),
        High(PI.FrameSize) {}

  bool run() {
    // Prologue: local initializers in declaration order (the VM seeds the
    // frame from SlotDefaults first, exactly like the tree-walker's
    // default-init-then-initialize sequence).
    for (size_t I = 0; I < P.Locals.size(); ++I) {
      if (!P.Locals[I].Init)
        continue;
      int M = mark();
      exprInto(static_cast<int>(P.Params.size() + I), P.Locals[I].Init.get());
      release(M);
    }
    stmts(P.Body);
    emit(OpCode::RetDefault, P.Loc);
    Ch.NumRegs = static_cast<uint16_t>(High);
    return !Failed;
  }

private:
  //===--- Emission -------------------------------------------------------===//

  size_t emit(OpCode Op, SourceLocation Loc, int A = 0, int B = 0, int C = 0,
              int32_t Imm = 0, uint8_t Flags = 0) {
    Instr In;
    In.Op = Op;
    In.A = static_cast<uint16_t>(A);
    In.B = static_cast<uint16_t>(B);
    In.C = static_cast<uint16_t>(C);
    In.Imm = Imm;
    In.Flags = Flags;
    Ch.Code.push_back(In);
    Ch.Locs.push_back(Loc);
    return Ch.Code.size() - 1;
  }

  /// Points the forward jump at \p At to the next instruction emitted.
  void patch(size_t At) {
    Ch.Code[At].Imm = static_cast<int32_t>(Ch.Code.size());
  }

  //===--- Register allocation --------------------------------------------===//

  int temp() {
    if (Next >= MaxRegs) { // Pathological body; fall back to the walker.
      Failed = true;
      return 0;
    }
    int R = Next++;
    if (Next > High)
      High = Next;
    return R;
  }
  int mark() const { return Next; }
  void release(int M) { Next = M; }

  //===--- Pools ----------------------------------------------------------===//

  int32_t constIdx(Value V) {
    for (size_t I = 0; I < Ch.Consts.size(); ++I)
      if (Ch.Consts[I].K == V.K && Ch.Consts[I] == V)
        return static_cast<int32_t>(I);
    Ch.Consts.push_back(std::move(V));
    return static_cast<int32_t>(Ch.Consts.size() - 1);
  }

  int32_t nameIdx(const std::string &N) {
    for (size_t I = 0; I < Ch.Names.size(); ++I)
      if (Ch.Names[I] == N)
        return static_cast<int32_t>(I);
    Ch.Names.push_back(N);
    return static_cast<int32_t>(Ch.Names.size() - 1);
  }

  int32_t typeIdx(const ObjectTypeInfo *T) {
    for (size_t I = 0; I < Ch.Types.size(); ++I)
      if (Ch.Types[I] == T)
        return static_cast<int32_t>(I);
    Ch.Types.push_back(T);
    return static_cast<int32_t>(Ch.Types.size() - 1);
  }

  int32_t procIdx(const ProcDecl *Callee) {
    for (size_t I = 0; I < Ch.Procs.size(); ++I)
      if (Ch.Procs[I].P == Callee)
        return static_cast<int32_t>(I);
    // Resolve the callee's static-instance slot at compile time; -1 keeps
    // the site on the dynamic find-or-emplace path.
    Ch.Procs.push_back({Callee, Plan ? Plan->slotOf(Callee) : -1});
    return static_cast<int32_t>(Ch.Procs.size() - 1);
  }

  int32_t methodIdx(int Slot, const std::string &Name) {
    for (size_t I = 0; I < Ch.Methods.size(); ++I)
      if (Ch.Methods[I].Slot == Slot && Ch.Methods[I].Name == Name)
        return static_cast<int32_t>(I);
    Ch.Methods.push_back({Slot, Name});
    return static_cast<int32_t>(Ch.Methods.size() - 1);
  }

  //===--- Statements -----------------------------------------------------===//

  void stmts(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      stmt(S.get());
  }

  void stmt(const Stmt *S) {
    int M = mark();
    switch (S->Kind) {
    case StmtKind::Assign:
      assign(static_cast<const AssignStmt *>(S));
      break;
    case StmtKind::If:
      ifStmt(static_cast<const IfStmt *>(S));
      break;
    case StmtKind::While:
      whileStmt(static_cast<const WhileStmt *>(S));
      break;
    case StmtKind::For:
      forStmt(static_cast<const ForStmt *>(S));
      break;
    case StmtKind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      if (R->Value) {
        int V = expr(R->Value.get());
        emit(OpCode::Ret, S->Loc, V);
      } else {
        emit(OpCode::RetNil, S->Loc);
      }
      break;
    }
    case StmtKind::Expr:
      expr(static_cast<const ExprStmt *>(S)->E.get());
      break;
    }
    release(M);
  }

  void assign(const AssignStmt *A) {
    uint8_t Fl = A->TrackedModify ? FlagTracked : 0;
    if (A->Target->Kind == ExprKind::NameRef) {
      const auto *N = static_cast<const NameRefExpr *>(A->Target.get());
      if (N->Binding == NameBinding::Global) {
        int V = expr(A->Value.get());
        emit(OpCode::StoreGlobal, A->Loc, N->Index, V, 0, 0, Fl);
      } else {
        exprInto(N->Index, A->Value.get());
      }
      return;
    }
    // Field write: value first, then base, then the NIL check — the
    // tree-walker's order, observable when both sides throw.
    const auto *FA = static_cast<const FieldAccessExpr *>(A->Target.get());
    int V = expr(A->Value.get());
    int B = expr(FA->Base.get());
    emit(OpCode::StoreField, FA->Loc, B, V, FA->FieldIndex,
         nameIdx(FA->Field), Fl);
  }

  void ifStmt(const IfStmt *I) {
    std::vector<size_t> Ends;
    for (const IfStmt::Arm &Arm : I->Arms) {
      int M = mark();
      int C = expr(Arm.Cond.get());
      size_t J = emit(OpCode::JumpIfFalse, Arm.Cond->Loc, C);
      release(M);
      stmts(Arm.Body);
      Ends.push_back(emit(OpCode::Jump, I->Loc));
      patch(J);
    }
    stmts(I->ElseBody);
    for (size_t J : Ends)
      patch(J);
  }

  void whileStmt(const WhileStmt *W) {
    size_t Start = Ch.Code.size();
    int M = mark();
    int C = expr(W->Cond.get());
    size_t J = emit(OpCode::JumpIfFalse, W->Cond->Loc, C);
    release(M);
    stmts(W->Body);
    emit(OpCode::Jump, W->Loc, 0, 0, 0, static_cast<int32_t>(Start));
    patch(J);
  }

  void forStmt(const ForStmt *F) {
    // A private counter/limit pair, evaluated once — body writes to the
    // index variable do not perturb the iteration (tree-walker parity).
    int Cnt = temp();
    int Lim = temp();
    exprInto(Cnt, F->From.get());
    exprInto(Lim, F->To.get());
    emit(OpCode::ForPrep, F->Loc, Cnt, Lim);
    size_t Test = Ch.Code.size();
    size_t J = emit(OpCode::ForTest, F->Loc, Cnt, Lim);
    emit(OpCode::Move, F->Loc, F->VarIndex, Cnt);
    stmts(F->Body);
    emit(OpCode::ForStep, F->Loc, Cnt, 0, 0, static_cast<int32_t>(Test));
    patch(J);
  }

  //===--- Expressions ----------------------------------------------------===//

  /// Compiles \p E and leaves the result in \p Dst, reclaiming every
  /// temporary the subexpression used.
  void exprInto(int Dst, const Expr *E) {
    int M = mark();
    int R = expr(E);
    if (R != Dst)
      emit(OpCode::Move, E->Loc, Dst, R);
    release(M);
  }

  /// Compiles \p E; \returns the register holding the result. Local and
  /// parameter references return their frame slot directly (expressions
  /// never write through another expression's register).
  int expr(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit: {
      long V = static_cast<const IntLitExpr *>(E)->Value;
      int R = temp();
      if (V >= INT32_MIN && V <= INT32_MAX)
        emit(OpCode::LoadInt, E->Loc, R, 0, 0, static_cast<int32_t>(V));
      else
        emit(OpCode::LoadConst, E->Loc, R, 0, 0,
             constIdx(Value::integer(V)));
      return R;
    }
    case ExprKind::BoolLit: {
      int R = temp();
      emit(OpCode::LoadBool, E->Loc, R,
           static_cast<const BoolLitExpr *>(E)->Value ? 1 : 0);
      return R;
    }
    case ExprKind::TextLit: {
      int R = temp();
      emit(OpCode::LoadConst, E->Loc, R, 0, 0,
           constIdx(Value::text(static_cast<const TextLitExpr *>(E)->Value)));
      return R;
    }
    case ExprKind::NilLit: {
      int R = temp();
      emit(OpCode::LoadNil, E->Loc, R);
      return R;
    }
    case ExprKind::NameRef: {
      const auto *N = static_cast<const NameRefExpr *>(E);
      if (N->Binding == NameBinding::Global) {
        int R = temp();
        emit(OpCode::LoadGlobal, E->Loc, R, N->Index, 0, 0,
             N->TrackedAccess ? FlagTracked : 0);
        return R;
      }
      if (N->Index < 0) {
        Failed = true;
        return 0;
      }
      return N->Index;
    }
    case ExprKind::FieldAccess: {
      const auto *FA = static_cast<const FieldAccessExpr *>(E);
      int B = expr(FA->Base.get());
      int R = temp();
      emit(OpCode::LoadField, FA->Loc, R, B, FA->FieldIndex,
           nameIdx(FA->Field), FA->TrackedAccess ? FlagTracked : 0);
      return R;
    }
    case ExprKind::Call:
      return call(static_cast<const CallExpr *>(E));
    case ExprKind::MethodCall:
      return methodCall(static_cast<const MethodCallExpr *>(E));
    case ExprKind::New: {
      const auto *N = static_cast<const NewExpr *>(E);
      if (!N->Resolved) {
        Failed = true;
        return 0;
      }
      int R = temp();
      emit(OpCode::NewObj, E->Loc, R, 0, 0, typeIdx(N->Resolved));
      return R;
    }
    case ExprKind::Binary:
      return binary(static_cast<const BinaryExpr *>(E));
    case ExprKind::Unary: {
      const auto *U = static_cast<const UnaryExpr *>(E);
      int S = expr(U->Sub.get());
      int R = temp();
      emit(U->Op == UnaryOp::Neg ? OpCode::Neg : OpCode::Not, E->Loc, R, S);
      return R;
    }
    case ExprKind::Unchecked: {
      const auto *U = static_cast<const UncheckedExpr *>(E);
      emit(OpCode::EnterUnchecked, E->Loc);
      int R = expr(U->Sub.get());
      emit(OpCode::LeaveUnchecked, E->Loc);
      return R;
    }
    }
    Failed = true;
    return 0;
  }

  /// Arguments are staged in a contiguous register window so the call op
  /// can slice them without gathering.
  int call(const CallExpr *C) {
    int NArgs = static_cast<int>(C->Args.size());
    int ArgBase = Next;
    for (int I = 0; I < NArgs; ++I)
      temp();
    for (int I = 0; I < NArgs; ++I)
      exprInto(ArgBase + I, C->Args[I].get());
    int R = temp();
    if (C->BuiltinIndex >= 0) {
      emit(OpCode::CallBuiltin, C->Loc, R, ArgBase, NArgs, C->BuiltinIndex);
      return R;
    }
    if (!C->Resolved) {
      Failed = true;
      return R;
    }
    emit(OpCode::CallProc, C->Loc, R, ArgBase, NArgs, procIdx(C->Resolved),
         C->CheckedCall ? FlagTracked : 0);
    return R;
  }

  int methodCall(const MethodCallExpr *C) {
    int NArgs = static_cast<int>(C->Args.size());
    int ArgBase = Next;
    for (int I = 0; I < NArgs + 1; ++I)
      temp();
    exprInto(ArgBase, C->Base.get());
    // The receiver NIL check sits between receiver and argument
    // evaluation, exactly where the tree-walker raises it.
    emit(OpCode::CheckRecv, C->Loc, ArgBase, 0, 0, nameIdx(C->Method));
    for (int I = 0; I < NArgs; ++I)
      exprInto(ArgBase + 1 + I, C->Args[I].get());
    int R = temp();
    if (C->MethodSlot < 0) {
      Failed = true;
      return R;
    }
    emit(OpCode::CallMethod, C->Loc, R, ArgBase, NArgs + 1,
         methodIdx(C->MethodSlot, C->Method),
         C->CheckedCall ? FlagTracked : 0);
    return R;
  }

  int binary(const BinaryExpr *B) {
    if (B->Op == BinaryOp::And || B->Op == BinaryOp::Or) {
      // Short-circuit with the tree-walker's boolean coercion on both
      // sides: AND yields boolean(L.Bool) when false, boolean(R.Bool)
      // otherwise; OR dually.
      int Dst = temp();
      int M = mark();
      int L = expr(B->Lhs.get());
      emit(OpCode::CastBool, B->Lhs->Loc, Dst, L);
      release(M);
      size_t J = emit(B->Op == BinaryOp::And ? OpCode::JumpIfFalse
                                             : OpCode::JumpIfTrue,
                      B->Loc, Dst);
      M = mark();
      int R = expr(B->Rhs.get());
      emit(OpCode::CastBool, B->Rhs->Loc, Dst, R);
      release(M);
      patch(J);
      return Dst;
    }
    int L = expr(B->Lhs.get());
    int R = expr(B->Rhs.get());
    int Dst = temp();
    OpCode Op;
    switch (B->Op) {
    case BinaryOp::Add:
      Op = OpCode::Add;
      break;
    case BinaryOp::Sub:
      Op = OpCode::Sub;
      break;
    case BinaryOp::Mul:
      Op = OpCode::Mul;
      break;
    case BinaryOp::Div:
      Op = OpCode::Div;
      break;
    case BinaryOp::Mod:
      Op = OpCode::Mod;
      break;
    case BinaryOp::Concat:
      Op = OpCode::Concat;
      break;
    case BinaryOp::Eq:
      Op = OpCode::CmpEq;
      break;
    case BinaryOp::Ne:
      Op = OpCode::CmpNe;
      break;
    case BinaryOp::Lt:
      Op = OpCode::CmpLt;
      break;
    case BinaryOp::Le:
      Op = OpCode::CmpLe;
      break;
    case BinaryOp::Gt:
      Op = OpCode::CmpGt;
      break;
    case BinaryOp::Ge:
      Op = OpCode::CmpGe;
      break;
    default:
      Failed = true;
      return Dst;
    }
    emit(Op, B->Loc, Dst, L, R);
    return Dst;
  }

  const ProcDecl &P;
  const ProcInfo &PI;
  Chunk &Ch;
  const transform::GraphPlan *Plan;
  int Next; ///< Next free register.
  int High; ///< High-water mark (becomes Chunk::NumRegs).
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Effect analysis
//===----------------------------------------------------------------------===//

struct DirectInfo {
  uint8_t Effects = 0;
  std::vector<const ProcDecl *> Callees;
};

void scanExpr(const Expr *E, const SemaInfo &Info, DirectInfo &D);

void scanStmt(const Stmt *S, const SemaInfo &Info, DirectInfo &D) {
  switch (S->Kind) {
  case StmtKind::Assign: {
    const auto *A = static_cast<const AssignStmt *>(S);
    scanExpr(A->Value.get(), Info, D);
    if (A->Target->Kind == ExprKind::NameRef) {
      const auto *N = static_cast<const NameRefExpr *>(A->Target.get());
      if (N->Binding == NameBinding::Global)
        D.Effects |= EffGlobalWrite;
    } else {
      const auto *FA = static_cast<const FieldAccessExpr *>(A->Target.get());
      scanExpr(FA->Base.get(), Info, D);
      D.Effects |= EffFieldWrite;
    }
    return;
  }
  case StmtKind::If: {
    const auto *I = static_cast<const IfStmt *>(S);
    for (const IfStmt::Arm &Arm : I->Arms) {
      scanExpr(Arm.Cond.get(), Info, D);
      for (const StmtPtr &B : Arm.Body)
        scanStmt(B.get(), Info, D);
    }
    for (const StmtPtr &B : I->ElseBody)
      scanStmt(B.get(), Info, D);
    return;
  }
  case StmtKind::While: {
    const auto *W = static_cast<const WhileStmt *>(S);
    scanExpr(W->Cond.get(), Info, D);
    for (const StmtPtr &B : W->Body)
      scanStmt(B.get(), Info, D);
    return;
  }
  case StmtKind::For: {
    const auto *F = static_cast<const ForStmt *>(S);
    scanExpr(F->From.get(), Info, D);
    scanExpr(F->To.get(), Info, D);
    for (const StmtPtr &B : F->Body)
      scanStmt(B.get(), Info, D);
    return;
  }
  case StmtKind::Return: {
    const auto *R = static_cast<const ReturnStmt *>(S);
    if (R->Value)
      scanExpr(R->Value.get(), Info, D);
    return;
  }
  case StmtKind::Expr:
    scanExpr(static_cast<const ExprStmt *>(S)->E.get(), Info, D);
    return;
  }
}

void scanExpr(const Expr *E, const SemaInfo &Info, DirectInfo &D) {
  switch (E->Kind) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::TextLit:
  case ExprKind::NilLit:
  case ExprKind::NameRef:
    return;
  case ExprKind::FieldAccess:
    scanExpr(static_cast<const FieldAccessExpr *>(E)->Base.get(), Info, D);
    return;
  case ExprKind::Call: {
    const auto *C = static_cast<const CallExpr *>(E);
    for (const ExprPtr &A : C->Args)
      scanExpr(A.get(), Info, D);
    // print is the only effectful builtin (pause sleeps but touches no
    // shared state; fmt/max/min/abs are pure).
    if (C->BuiltinIndex == static_cast<int>(Builtin::Print))
      D.Effects |= EffPrint;
    else if (C->Resolved)
      D.Callees.push_back(C->Resolved);
    return;
  }
  case ExprKind::MethodCall: {
    const auto *C = static_cast<const MethodCallExpr *>(E);
    scanExpr(C->Base.get(), Info, D);
    for (const ExprPtr &A : C->Args)
      scanExpr(A.get(), Info, D);
    // Dynamic dispatch: any implementation bound to this method name
    // anywhere in the module could be the callee.
    for (const auto &Ty : Info.Types)
      for (const MethodImpl &MI : Ty->VTable)
        if (MI.Impl && MI.Sig && MI.Sig->Name == C->Method)
          D.Callees.push_back(MI.Impl);
    return;
  }
  case ExprKind::New:
    D.Effects |= EffAlloc;
    return;
  case ExprKind::Binary: {
    const auto *B = static_cast<const BinaryExpr *>(E);
    scanExpr(B->Lhs.get(), Info, D);
    scanExpr(B->Rhs.get(), Info, D);
    return;
  }
  case ExprKind::Unary:
    scanExpr(static_cast<const UnaryExpr *>(E)->Sub.get(), Info, D);
    return;
  case ExprKind::Unchecked:
    scanExpr(static_cast<const UncheckedExpr *>(E)->Sub.get(), Info, D);
    return;
  }
}

void scanProc(const ProcDecl &P, const SemaInfo &Info, DirectInfo &D) {
  for (const LocalDecl &L : P.Locals)
    if (L.Init)
      scanExpr(L.Init.get(), Info, D);
  for (const StmtPtr &S : P.Body)
    scanStmt(S.get(), Info, D);
}

} // namespace

std::unique_ptr<BytecodeModule>
compileModule(const Module &M, const SemaInfo &Info,
              const transform::GraphPlan *Plan) {
  auto Mod = std::make_unique<BytecodeModule>();
  std::unordered_map<const ProcDecl *, DirectInfo> Direct;

  for (const auto &P : M.Procs) {
    DirectInfo D;
    scanProc(*P, Info, D);
    const ProcInfo *PI = Info.procInfo(P.get());
    bool Compiled = false;
    if (PI && PI->FrameSize <= MaxRegs) {
      Chunk Ch;
      Ch.Name = P->Name;
      Ch.FaultSite = "vm." + P->Name;
      Ch.Loc = P->Loc;
      Ch.NumParams = static_cast<uint16_t>(PI->ParamTypes.size());
      Ch.FrameSize = static_cast<uint16_t>(PI->FrameSize);
      Ch.SlotDefaults.assign(static_cast<size_t>(PI->FrameSize), Value());
      for (size_t I = 0; I < PI->LocalTypes.size(); ++I)
        Ch.SlotDefaults[PI->ParamTypes.size() + I] =
            defaultValueFor(PI->LocalTypes[I]);
      Ch.RetDefault = defaultValueFor(PI->RetType);
      ProcCompiler PC(*P, *PI, Ch, Plan);
      if (PC.run()) {
        Mod->Chunks.emplace(P.get(), std::move(Ch));
        Compiled = true;
      }
    }
    // A procedure the compiler could not lower falls back to the shared
    // tree-walker, whose frame and depth counter are not thread-safe — it
    // (and transitively its callers) must keep the serial pin.
    Mod->Effects[P.get()] = Compiled ? D.Effects : EffAll;
    Direct.emplace(P.get(), std::move(D));
  }

  // Transitive closure over the call graph, to a fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &P : M.Procs) {
      uint8_t &E = Mod->Effects[P.get()];
      for (const ProcDecl *Q : Direct[P.get()].Callees) {
        auto It = Mod->Effects.find(Q);
        uint8_t QE = It == Mod->Effects.end() ? EffAll : It->second;
        if ((E | QE) != E) {
          E |= QE;
          Changed = true;
        }
      }
    }
  }
  return Mod;
}

} // namespace alphonse::interp::bytecode
