//===- Bytecode.h - Alphonse-L register bytecode ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form of an Alphonse-L procedure body: a register bytecode
/// Chunk (instruction stream + constant pool + pre-resolved slot, global,
/// field, type, procedure, and method descriptors) executed by the
/// reentrant VM in VM.h. Chunks are *derived state*: compiled once per
/// (module, SemaInfo) at interpreter construction, never serialized — a
/// checkpoint restore revalidates the module fingerprint and reuses the
/// chunks compiled for that module.
///
/// Everything name-shaped is resolved at compile time (frame slot indices,
/// global indices, field indices, vtable slots, callee ProcDecls), so the
/// VM's hot loop does no map lookups and no AST walks; the only runtime
/// resolution left is dynamic method dispatch through the receiver's
/// vtable, which the language requires.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_INTERP_BYTECODE_BYTECODE_H
#define ALPHONSE_INTERP_BYTECODE_BYTECODE_H

#include "interp/Value.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace alphonse::lang {
struct ProcDecl;
class ObjectTypeInfo;
} // namespace alphonse::lang

namespace alphonse::interp::bytecode {

/// Opcodes, with their operand conventions. R[x] is the current frame's
/// register x; registers 0..FrameSize-1 are the procedure's parameters,
/// locals, and FOR variables (same indices Sema assigned), the rest are
/// compiler temporaries.
#define ALPHONSE_BYTECODE_OPCODES(X)                                           \
  X(LoadConst)   /* R[A] <- Consts[Imm] */                                     \
  X(LoadInt)     /* R[A] <- integer(Imm) */                                    \
  X(LoadNil)     /* R[A] <- NIL */                                             \
  X(LoadBool)    /* R[A] <- boolean(B != 0) */                                 \
  X(Move)        /* R[A] <- R[B] */                                            \
  X(CastBool)    /* R[A] <- boolean(R[B].Bool) */                              \
  X(LoadGlobal)  /* R[A] <- globals[B]; FlagTracked records the access */      \
  X(StoreGlobal) /* globals[A] <- R[B]; FlagTracked goes through modify */     \
  X(LoadField)   /* R[A] <- R[B].fields[C]; Imm names the field (errors) */    \
  X(StoreField)  /* R[A].fields[C] <- R[B]; Imm names the field */             \
  X(NewObj)      /* R[A] <- NEW Types[Imm] */                                  \
  X(CheckRecv)   /* fail unless R[A] is an object (Imm: method name) */        \
  X(CallProc)    /* R[A] <- Procs[Imm](R[B..B+C)); FlagChecked */              \
  X(CallMethod)  /* R[A] <- R[B].m(R[B+1..B+C)); Imm: Methods idx */           \
  X(CallBuiltin) /* R[A] <- builtin Imm applied to R[B..B+C) */                \
  X(Add)         /* R[A] <- R[B] + R[C] (integers) */                          \
  X(Sub)                                                                       \
  X(Mul)                                                                       \
  X(Div)         /* fails on zero divisor */                                   \
  X(Mod)         /* fails on zero divisor */                                   \
  X(Concat)      /* R[A] <- R[B] & R[C] (texts) */                             \
  X(CmpEq)       /* R[A] <- boolean(R[B] == R[C]) (structural) */              \
  X(CmpNe)                                                                     \
  X(CmpLt)       /* integer comparisons */                                     \
  X(CmpLe)                                                                     \
  X(CmpGt)                                                                     \
  X(CmpGe)                                                                     \
  X(Neg)         /* R[A] <- -R[B] */                                           \
  X(Not)         /* R[A] <- boolean(!R[B].Bool) */                             \
  X(Jump)        /* pc <- Imm */                                               \
  X(JumpIfFalse) /* if !R[A].Bool then pc <- Imm */                            \
  X(JumpIfTrue)  /* if R[A].Bool then pc <- Imm */                             \
  X(ForPrep)     /* R[A] <- integer(R[A].Int); R[B] <- integer(R[B].Int) */    \
  X(ForTest)     /* if R[A].Int > R[B].Int then pc <- Imm */                   \
  X(ForStep)     /* R[A] <- integer(R[A].Int + 1); pc <- Imm */                \
  X(EnterUnchecked) /* push a null dependency-recording frame */               \
  X(LeaveUnchecked) /* pop it */                                               \
  X(Ret)         /* return R[A] */                                             \
  X(RetNil)      /* return NIL (a bare RETURN) */                              \
  X(RetDefault)  /* fell off the end: return the declared type's default */

enum class OpCode : uint8_t {
#define ALPHONSE_BYTECODE_OP(Name) Name,
  ALPHONSE_BYTECODE_OPCODES(ALPHONSE_BYTECODE_OP)
#undef ALPHONSE_BYTECODE_OP
};

/// Printable opcode name.
const char *opcodeName(OpCode Op);

/// Flag bits (Instr::Flags).
enum : uint8_t {
  /// Loads/stores: the site was flagged by the Section 5 transformer
  /// (access/modify protocol applies). Calls: the site is checked (not
  /// inside (*UNCHECKED*) at transform time).
  FlagTracked = 1 << 0,
};

/// One fixed-width instruction. A/B/C are register (or global) indices;
/// Imm is a jump target, pool index, or immediate integer.
struct Instr {
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  OpCode Op;
  uint8_t Flags = 0;
  int32_t Imm = 0;
};
static_assert(sizeof(Instr) == 12, "Instr must stay three packed words");

/// A pre-resolved callee: the declaration (its Pragma drives the
/// incremental call protocol at the site).
struct ProcRef {
  const lang::ProcDecl *P = nullptr;
  /// Compile-time-resolved static-instance slot (GraphPlan, DESIGN.md
  /// §14), or -1 when the callee stays on the dynamic find-or-emplace
  /// path. Baked into the pool so the VM's CallProc resolves the callee's
  /// pre-built graph node with one indexed load.
  int32_t StaticSlot = -1;
};

/// A pre-resolved method site: the vtable slot plus the source name for
/// error messages.
struct MethodRef {
  int Slot = -1;
  std::string Name;
};

/// The compiled form of one procedure body.
struct Chunk {
  std::string Name;      ///< Procedure name (diagnostics, disassembly).
  std::string FaultSite; ///< "vm.<Name>": hit once per VM execution.
  SourceLocation Loc;    ///< Declaration site (depth-limit errors).

  std::vector<Instr> Code;
  /// Source location per instruction (runtime error attribution parity
  /// with the tree-walker).
  std::vector<SourceLocation> Locs;

  std::vector<Value> Consts;
  std::vector<std::string> Names; ///< Field/method names for errors.
  std::vector<const lang::ObjectTypeInfo *> Types;
  std::vector<ProcRef> Procs;
  std::vector<MethodRef> Methods;

  /// Initial values for frame registers [NumParams, FrameSize): locals
  /// default-initialized by declared type, FOR variables NIL — exactly
  /// the tree-walker's frame setup. Indexed from register 0 (the
  /// parameter prefix is unused; arguments overwrite it).
  std::vector<Value> SlotDefaults;
  /// Value of a fall-off-the-end return (defaultValue of the declared
  /// return type).
  Value RetDefault;

  uint16_t NumParams = 0;
  uint16_t FrameSize = 0; ///< Sema slots (params + locals + FOR vars).
  uint16_t NumRegs = 0;   ///< FrameSize + compiler temporaries.
};

/// Effect bits of a procedure body, unioned transitively over everything
/// it can call (Compiler.cpp). A body with no bits set touches only its
/// frame, tracked storage (reads), and other effect-free procedures — its
/// instances are safe to re-execute on parallel wave workers.
enum ProcEffect : uint8_t {
  EffNone = 0,
  EffPrint = 1 << 0,       ///< Appends to the shared output stream.
  EffAlloc = 1 << 1,       ///< NEW: grows the shared heap.
  EffGlobalWrite = 1 << 2, ///< Writes a top-level variable.
  EffFieldWrite = 1 << 3,  ///< Writes an object field.
};

/// Renders the effect mask as a short string ("print|alloc", "pure").
std::string effectsString(uint8_t Effects);

/// Human-readable disassembly of one chunk (alphonsec --dump-bytecode).
std::string disassemble(const Chunk &C);

} // namespace alphonse::interp::bytecode

#endif // ALPHONSE_INTERP_BYTECODE_BYTECODE_H
