//===- VM.cpp - the Alphonse-L bytecode interpreter loop ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Interp::runChunk — the execution engine for compiled procedure bodies.
// Threaded dispatch (computed goto) under GCC/Clang, a switch loop
// elsewhere. The frame is a window [Base, Base + NumRegs) of the calling
// thread's ExecState register stack; nested calls push their window above
// and the guard restores Top/Depth on every exit path, including
// exception unwind.
//
// Semantics are the tree-walker's, instruction by instruction: the same
// evaluation order, the same error messages at the same source locations,
// the same boolean coercions. Global and heap accesses go through the
// existing trackedRead/trackedWrite protocol, so dependency recording,
// write journaling, and the quiescence cutoff are shared with (and
// therefore identical to) the walking engine.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "interp/bytecode/Bytecode.h"
#include "interp/bytecode/VM.h"

#include "lang/AST.h"
#include "lang/Types.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

using namespace alphonse::lang;

namespace alphonse::interp {

using namespace bytecode;

Value Interp::runChunk(const Chunk &Ch, const std::vector<Value> &Args) {
  ExecState &ES = BCState->current();
  if (ES.Depth >= MaxCallDepth)
    fail(Ch.Loc,
         "call depth exceeded in '" + Ch.Name + "' (runaway recursion?)");
  // One injection site per VM execution ("vm.<proc>"). Throw/Kill act
  // here; Diverge belongs to instance-node sites (executeInstance) and is
  // a no-op at the chunk level.
  (void)faultInjectionPoint(Ch.FaultSite);

  const size_t Base = ES.Top;
  if (ES.Regs.size() < Base + Ch.NumRegs)
    ES.Regs.resize(Base + Ch.NumRegs);

  // Restores the frame window and depth on every exit, exceptional or not.
  struct FrameGuard {
    ExecState &ES;
    size_t OldTop;
    FrameGuard(ExecState &ES, size_t NewTop) : ES(ES), OldTop(ES.Top) {
      ES.Top = NewTop;
      ++ES.Depth;
    }
    ~FrameGuard() {
      ES.Top = OldTop;
      --ES.Depth;
    }
  } Guard(ES, Base + Ch.NumRegs);

  assert(Args.size() == Ch.NumParams && "arity mismatch");
  for (size_t I = 0; I < Args.size(); ++I)
    ES.Regs[Base + I] = Args[I];
  for (size_t I = Args.size(); I < Ch.FrameSize; ++I)
    ES.Regs[Base + I] = Ch.SlotDefaults[I];
  // Temporaries [FrameSize, NumRegs) are written before read by
  // construction; whatever a previous frame left there is never observed.

  const Instr *CodeBase = Ch.Code.data();
  const Instr *IP = nullptr;
  size_t PC = 0;
  int Unchecked = 0; // Open EnterUnchecked frames, popped on unwind.

  // Registers are indexed through the vector every time: nested calls
  // (CallProc/CallMethod) may grow Regs and move its storage, so a cached
  // data pointer would dangle across any instruction that can re-enter.
  auto Loc = [&]() { return Ch.Locs[static_cast<size_t>(IP - CodeBase)]; };
#define VM_R(i) ES.Regs[Base + static_cast<size_t>(i)]

  try {
#if defined(__GNUC__) || defined(__clang__)
    static const void *const JumpTable[] = {
#define ALPHONSE_BYTECODE_OP(Name) &&L_##Name,
        ALPHONSE_BYTECODE_OPCODES(ALPHONSE_BYTECODE_OP)
#undef ALPHONSE_BYTECODE_OP
    };
#define VM_CASE(Name) L_##Name
#define VM_NEXT()                                                              \
  do {                                                                         \
    IP = CodeBase + PC++;                                                      \
    goto *JumpTable[static_cast<size_t>(IP->Op)];                              \
  } while (0)
    VM_NEXT();
#else
#define VM_CASE(Name) case OpCode::Name
#define VM_NEXT() goto vm_dispatch
  vm_dispatch:
    IP = CodeBase + PC++;
    switch (IP->Op) {
#endif

    VM_CASE(LoadConst) : {
      VM_R(IP->A) = Ch.Consts[static_cast<size_t>(IP->Imm)];
      VM_NEXT();
    }
    VM_CASE(LoadInt) : {
      VM_R(IP->A) = Value::integer(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(LoadNil) : {
      VM_R(IP->A) = Value::nil();
      VM_NEXT();
    }
    VM_CASE(LoadBool) : {
      VM_R(IP->A) = Value::boolean(IP->B != 0);
      VM_NEXT();
    }
    VM_CASE(Move) : {
      VM_R(IP->A) = VM_R(IP->B);
      VM_NEXT();
    }
    VM_CASE(CastBool) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B).Bool);
      VM_NEXT();
    }
    VM_CASE(LoadGlobal) : {
      VM_R(IP->A) =
          trackedRead(*Globals[IP->B], (IP->Flags & FlagTracked) != 0);
      VM_NEXT();
    }
    VM_CASE(StoreGlobal) : {
      trackedWrite(*Globals[IP->A], VM_R(IP->B),
                   (IP->Flags & FlagTracked) != 0);
      VM_NEXT();
    }
    VM_CASE(LoadField) : {
      Value &B = VM_R(IP->B);
      if (B.K != Value::Kind::Object)
        fail(Loc(), "NIL dereference reading field '" +
                        Ch.Names[static_cast<size_t>(IP->Imm)] + "'");
      VM_R(IP->A) = trackedRead(B.Obj->slot(IP->C),
                                (IP->Flags & FlagTracked) != 0);
      VM_NEXT();
    }
    VM_CASE(StoreField) : {
      Value &B = VM_R(IP->A);
      if (B.K != Value::Kind::Object)
        fail(Loc(), "NIL dereference writing field '" +
                        Ch.Names[static_cast<size_t>(IP->Imm)] + "'");
      trackedWrite(B.Obj->slot(IP->C), VM_R(IP->B),
                   (IP->Flags & FlagTracked) != 0);
      VM_NEXT();
    }
    VM_CASE(NewObj) : {
      VM_R(IP->A) =
          Value::object(allocate(Ch.Types[static_cast<size_t>(IP->Imm)]));
      VM_NEXT();
    }
    VM_CASE(CheckRecv) : {
      if (VM_R(IP->A).K != Value::Kind::Object)
        fail(Loc(), "NIL dereference calling method '" +
                        Ch.Names[static_cast<size_t>(IP->Imm)] + "'");
      VM_NEXT();
    }
    VM_CASE(CallProc) : {
      const bytecode::ProcRef &PR = Ch.Procs[static_cast<size_t>(IP->Imm)];
      std::vector<Value> CallArgs(
          ES.Regs.begin() + static_cast<long>(Base + IP->B),
          ES.Regs.begin() + static_cast<long>(Base + IP->B + IP->C));
      // PR.StaticSlot was resolved at compile time; a planned callee's
      // instance node is then an indexed load inside incrementalCall.
      Value Ret = dispatch(PR.P, PR.P->Pragma,
                           (IP->Flags & FlagTracked) != 0,
                           std::move(CallArgs), PR.StaticSlot);
      VM_R(IP->A) = std::move(Ret);
      VM_NEXT();
    }
    VM_CASE(CallMethod) : {
      const MethodRef &MR = Ch.Methods[static_cast<size_t>(IP->Imm)];
      const auto &VTable = VM_R(IP->B).Obj->type()->VTable;
      assert(MR.Slot >= 0 &&
             static_cast<size_t>(MR.Slot) < VTable.size() &&
             "bad method slot");
      const MethodImpl &MI = VTable[static_cast<size_t>(MR.Slot)];
      if (!MI.Impl)
        fail(Loc(), "method '" + MR.Name + "' has no implementation");
      std::vector<Value> CallArgs(
          ES.Regs.begin() + static_cast<long>(Base + IP->B),
          ES.Regs.begin() + static_cast<long>(Base + IP->B + IP->C));
      Value Ret = dispatch(MI.Impl, MI.Pragma,
                           (IP->Flags & FlagTracked) != 0,
                           std::move(CallArgs));
      VM_R(IP->A) = std::move(Ret);
      VM_NEXT();
    }
    VM_CASE(CallBuiltin) : {
      switch (static_cast<Builtin>(IP->Imm)) {
      case Builtin::Print:
        Output += renderForPrint(VM_R(IP->B)) + "\n";
        VM_R(IP->A) = Value();
        break;
      case Builtin::Fmt:
        VM_R(IP->A) = Value::text(renderForPrint(VM_R(IP->B)));
        break;
      case Builtin::Max:
      case Builtin::Min: {
        long X = VM_R(IP->B).Int;
        long Y = VM_R(IP->B + 1).Int;
        bool IsMax = IP->Imm == static_cast<int32_t>(Builtin::Max);
        VM_R(IP->A) = Value::integer(IsMax ? std::max(X, Y) : std::min(X, Y));
        break;
      }
      case Builtin::Abs: {
        long X = VM_R(IP->B).Int;
        VM_R(IP->A) = Value::integer(X < 0 ? -X : X);
        break;
      }
      case Builtin::Pause: {
        long Us = VM_R(IP->B).Int;
        if (Us > 0)
          std::this_thread::sleep_for(std::chrono::microseconds(Us));
        VM_R(IP->A) = Value();
        break;
      }
      case Builtin::NumBuiltins:
        fail(Loc(), "bad builtin index");
      }
      VM_NEXT();
    }
    VM_CASE(Add) : {
      VM_R(IP->A) = Value::integer(VM_R(IP->B).Int + VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(Sub) : {
      VM_R(IP->A) = Value::integer(VM_R(IP->B).Int - VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(Mul) : {
      VM_R(IP->A) = Value::integer(VM_R(IP->B).Int * VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(Div) : {
      long D = VM_R(IP->C).Int;
      if (D == 0)
        fail(Loc(), "division by zero");
      VM_R(IP->A) = Value::integer(VM_R(IP->B).Int / D);
      VM_NEXT();
    }
    VM_CASE(Mod) : {
      long D = VM_R(IP->C).Int;
      if (D == 0)
        fail(Loc(), "modulo by zero");
      VM_R(IP->A) = Value::integer(VM_R(IP->B).Int % D);
      VM_NEXT();
    }
    VM_CASE(Concat) : {
      VM_R(IP->A) = Value::text(VM_R(IP->B).Text + VM_R(IP->C).Text);
      VM_NEXT();
    }
    VM_CASE(CmpEq) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B) == VM_R(IP->C));
      VM_NEXT();
    }
    VM_CASE(CmpNe) : {
      VM_R(IP->A) = Value::boolean(!(VM_R(IP->B) == VM_R(IP->C)));
      VM_NEXT();
    }
    VM_CASE(CmpLt) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B).Int < VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(CmpLe) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B).Int <= VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(CmpGt) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B).Int > VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(CmpGe) : {
      VM_R(IP->A) = Value::boolean(VM_R(IP->B).Int >= VM_R(IP->C).Int);
      VM_NEXT();
    }
    VM_CASE(Neg) : {
      VM_R(IP->A) = Value::integer(-VM_R(IP->B).Int);
      VM_NEXT();
    }
    VM_CASE(Not) : {
      VM_R(IP->A) = Value::boolean(!VM_R(IP->B).Bool);
      VM_NEXT();
    }
    VM_CASE(Jump) : {
      PC = static_cast<size_t>(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(JumpIfFalse) : {
      if (!VM_R(IP->A).Bool)
        PC = static_cast<size_t>(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(JumpIfTrue) : {
      if (VM_R(IP->A).Bool)
        PC = static_cast<size_t>(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(ForPrep) : {
      VM_R(IP->A) = Value::integer(VM_R(IP->A).Int);
      VM_R(IP->B) = Value::integer(VM_R(IP->B).Int);
      VM_NEXT();
    }
    VM_CASE(ForTest) : {
      if (VM_R(IP->A).Int > VM_R(IP->B).Int)
        PC = static_cast<size_t>(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(ForStep) : {
      VM_R(IP->A) = Value::integer(VM_R(IP->A).Int + 1);
      PC = static_cast<size_t>(IP->Imm);
      VM_NEXT();
    }
    VM_CASE(EnterUnchecked) : {
      if (Mode == ExecMode::Alphonse) {
        RT.pushCall(nullptr);
        ++Unchecked;
      }
      VM_NEXT();
    }
    VM_CASE(LeaveUnchecked) : {
      if (Mode == ExecMode::Alphonse) {
        RT.popCall();
        --Unchecked;
      }
      VM_NEXT();
    }
    VM_CASE(Ret) : { return VM_R(IP->A); }
    VM_CASE(RetNil) : { return Value(); }
    VM_CASE(RetDefault) : { return Ch.RetDefault; }

#if !defined(__GNUC__) && !defined(__clang__)
    }
    fail(Ch.Loc, "corrupt bytecode"); // Every opcode jumps or returns.
#endif
#undef VM_CASE
#undef VM_NEXT
#undef VM_R
  } catch (...) {
    // An Alphonse-L error (or injected fault) thrown inside an
    // (*UNCHECKED*) region unwinds past its LeaveUnchecked; rebalance the
    // thread's incremental call stack before propagating.
    for (; Unchecked > 0; --Unchecked)
      RT.popCall();
    throw;
  }
}

} // namespace alphonse::interp
