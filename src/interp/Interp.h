//===- Interp.h - Alphonse-L interpreter ------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for (transformed) Alphonse-L modules, with
/// two execution modes:
///
///  - Conventional: pragmas and transformation flags are ignored; this is
///    the paper's "conventional execution of P".
///  - Alphonse: the access/modify/call sites flagged by the Section 5
///    transformer drive the same dependency graph and evaluator the C++
///    embedding uses (src/graph, src/core). Maintained methods and cached
///    procedures get argument tables keyed by Value vectors; object fields
///    and top-level variables get storage nodes created lazily on first
///    tracked access.
///
/// Theorem 5.1 (Alphonse execution produces the same output as
/// conventional execution) is directly checkable by running one module
/// through both modes; the interpreter tests do exactly that.
///
/// Divergences from the paper, documented: no garbage collector (objects
/// live as long as the interpreter), no VAR parameters, and runtime errors
/// (NIL dereference, division by zero, stack overflow) abort execution
/// with a message instead of being language-defined.
///
/// Runtime errors propagate internally as RuntimeError exceptions so they
/// unwind cleanly through the incremental call protocol (the faulting
/// instance is quarantined in its dependency graph); the public driver API
/// catches them and presents the flag-based failed()/errorMessage()
/// interface. clearError() (plus resetting quarantined nodes) resumes
/// execution.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_INTERP_INTERP_H
#define ALPHONSE_INTERP_INTERP_H

#include "core/Runtime.h"
#include "interp/Value.h"
#include "lang/Sema.h"
#include "transform/GraphPlan.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace alphonse::interp {

namespace bytecode {
struct Chunk;
class BytecodeModule;
class ExecArena;
} // namespace bytecode

/// How the interpreter treats the incremental annotations.
enum class ExecMode : uint8_t {
  Conventional,
  Alphonse,
};

/// An Alphonse-L runtime error (NIL dereference, division by zero, call
/// depth exceeded, ...). Thrown by the execution engine, caught at the
/// public driver API, which records it behind failed()/errorMessage().
class RuntimeError : public IncrementalFault {
public:
  RuntimeError(SourceLocation Loc, const std::string &Message)
      : IncrementalFault(Loc.str() + ": " + Message), Loc(Loc) {}

  SourceLocation location() const { return Loc; }

private:
  SourceLocation Loc;
};

/// One tracked storage location: the live value plus its lazily created
/// dependency-graph node holding the snapshot dependents last saw.
class StorageSlot;

/// A heap object: its dynamic type plus one slot per field.
class HeapObject {
public:
  HeapObject(const lang::ObjectTypeInfo *Ty, size_t NumFields);
  ~HeapObject();

  const lang::ObjectTypeInfo *type() const { return Ty; }
  StorageSlot &slot(size_t I);

private:
  const lang::ObjectTypeInfo *Ty;
  std::vector<std::unique_ptr<StorageSlot>> Slots;
};

/// Interprets one analyzed (and usually transformed) module.
class Interp {
public:
  /// \p M and \p Info must outlive the interpreter. Pass the graph config
  /// to ablate partitioning / cutoffs in benchmarks. \p EnableBytecode
  /// compiles procedure bodies to register bytecode at construction
  /// (derived state, never checkpointed); pass false — or set
  /// ALPHONSE_NO_BYTECODE=1, which wins — to force the tree-walker, in
  /// which case every language node keeps its serial pin.
  /// \p EnableStaticGraph pre-instantiates the module's static graph
  /// shape (paper §6.2, DESIGN.md §14): globals' storage nodes and the
  /// single instance of every nullary bounded-R(p) cached procedure are
  /// built in bulk into pre-reserved slabs at construction, so those
  /// calls skip the StateGuard find-or-emplace and steady-state churn
  /// allocates nothing. Pass false — or set ALPHONSE_NO_STATIC_GRAPH=1,
  /// which wins — to keep every node on the dynamic lazy path.
  Interp(const lang::Module &M, const lang::SemaInfo &Info, ExecMode Mode,
         DepGraph::Config Cfg = DepGraph::Config(),
         bool EnableBytecode = true, bool EnableStaticGraph = true);
  ~Interp();

  /// Calls a top-level procedure by name (the mutator's entry point).
  /// Incremental procedures go through the full call protocol.
  Value call(const std::string &ProcName, std::vector<Value> Args = {});

  /// Calls a method on an object with dynamic dispatch.
  Value callMethod(Value Receiver, const std::string &Method,
                   std::vector<Value> Args = {});

  /// Allocates an object of the named type (NEW from the driver side).
  Value makeObject(const std::string &TypeName);

  /// Reads / writes a top-level variable from the driver (writes go
  /// through the modify protocol in Alphonse mode).
  Value global(const std::string &Name);
  void setGlobal(const std::string &Name, Value V);

  /// Reads / writes an object field from the driver.
  Value field(Value Receiver, const std::string &Field);
  void setField(Value Receiver, const std::string &Field, Value V);

  /// Everything print() emitted so far.
  const std::string &output() const { return Output; }
  void clearOutput() { Output.clear(); }

  /// Set after a runtime error; call()/callMethod() become no-ops until
  /// the error is cleared.
  bool failed() const { return Failed; }
  const std::string &errorMessage() const { return ErrorMessage; }

  /// Clears a recorded runtime error so execution can resume. Instances
  /// quarantined by the failure stay quarantined until
  /// runtime().graph().resetQuarantined()/resetAllQuarantined().
  void clearError() {
    Failed = false;
    ErrorMessage.clear();
  }

  /// Runs the eager evaluator ("cycles available").
  void pump() { RT.pump(); }

  //===------------------------------------------------------------------===//
  // Durable checkpoints (DESIGN.md Section 10)
  //===------------------------------------------------------------------===//

  /// Writes a full snapshot of the interpreter — graph, globals, heap,
  /// argument tables, output stream — to \p Path, crash-atomically. The
  /// graph must be quiescent (saveCheckpoint pumps first; an open batch
  /// throws CheckpointError(Busy)). Resets the sidecar delta log.
  void saveCheckpoint(const std::string &Path);

  /// Appends one delta record (current storage values) to \p Path's
  /// sidecar log. Much cheaper than a full snapshot; restore replays the
  /// surviving prefix and recomputes derived values by propagation.
  void appendDelta(const std::string &Path);

  /// Rebuilds this interpreter from \p Path plus any surviving delta
  /// records. Requires a freshly constructed interpreter over the same
  /// module and mode; throws CheckpointError on any validation failure
  /// and leaves no partial state accepted (the caller should discard the
  /// interpreter on failure). restoreNote() describes discarded
  /// delta-log tails, if any.
  void restoreCheckpoint(const std::string &Path);

  /// Diagnostic from the last restore ("" if the delta log was clean).
  const std::string &restoreNote() const { return RestoreNote; }

  Runtime &runtime() { return RT; }
  ExecMode mode() const { return Mode; }

  /// The compiled module, or nullptr when the bytecode tier is disabled
  /// (--no-bytecode / ALPHONSE_NO_BYTECODE). Tooling: alphonsec
  /// --dump-bytecode disassembles it; tests assert on effect masks.
  const bytecode::BytecodeModule *bytecodeModule() const { return BC.get(); }

  /// The static shape table, or nullptr when static graph construction is
  /// disabled (--no-static-graph / ALPHONSE_NO_STATIC_GRAPH) or the mode
  /// is conventional. Derived state, like the bytecode module.
  const transform::GraphPlan *graphPlan() const { return Plan.get(); }

private:
  friend class InterpProcNode;
  struct Frame;

  // Execution engine. runBody dispatches compiled bodies to the bytecode
  // VM (runChunk, defined in bytecode/VM.cpp) and walks the tree
  // otherwise.
  Value runBody(const lang::ProcDecl *P, const std::vector<Value> &Args);
  Value runChunk(const bytecode::Chunk &Ch, const std::vector<Value> &Args);
  void execStmts(const std::vector<lang::StmtPtr> &Stmts, Frame &F);
  void execStmt(const lang::Stmt *S, Frame &F);
  Value evalExpr(const lang::Expr *E, Frame &F);
  Value evalCall(const lang::CallExpr *C, Frame &F);
  Value evalMethodCall(const lang::MethodCallExpr *C, Frame &F);
  Value evalBinary(const lang::BinaryExpr *B, Frame &F);
  /// \p StaticSlot is the callee's pre-resolved static-instance slot
  /// (ProcRef::StaticSlot, from the bytecode pool) or -1; sites without a
  /// compile-time resolution still reach the static table through the
  /// plan's slot index inside incrementalCall.
  Value dispatch(const lang::ProcDecl *P, const lang::PragmaInfo &Pragma,
                 bool Checked, std::vector<Value> Args, int StaticSlot = -1);
  Value incrementalCall(const lang::ProcDecl *P,
                        const lang::PragmaInfo &Pragma,
                        std::vector<Value> Args, int StaticSlot);
  Value executeInstance(class InterpProcNode &N);
  bool reexecuteInstance(class InterpProcNode &N);

  // Storage protocol (Algorithms 3 and 4).
  Value trackedRead(StorageSlot &S, bool Tracked);
  void trackedWrite(StorageSlot &S, Value V, bool Tracked);

  Value defaultValue(const lang::Type &Ty) const;
  HeapObject *allocate(const lang::ObjectTypeInfo *Ty);
  /// FNV-1a over the module's global, procedure, and type names plus the
  /// execution mode; a checkpoint only restores into a matching module.
  uint64_t moduleFingerprint() const;
  [[noreturn]] void fail(SourceLocation Loc, const std::string &Message);
  /// Records the in-flight exception behind failed()/errorMessage() (the
  /// first failure wins). Must be called from inside a catch block.
  void noteFailure();
  /// Runs \p Body, converting any escaping exception into the flag-based
  /// error state. The boundary between throwing internals and the
  /// non-throwing public driver API.
  template <typename Fn> Value guarded(Fn &&Body) {
    try {
      return Body();
    } catch (...) {
      noteFailure();
      return Value();
    }
  }
  std::string renderForPrint(const Value &V) const;

  const lang::Module &M;
  const lang::SemaInfo &Info;
  ExecMode Mode;

  /// Compiled form of the module (derived state, rebuilt per
  /// construction) and the per-thread VM execution arena. Both null when
  /// the bytecode tier is disabled.
  std::unique_ptr<bytecode::BytecodeModule> BC;
  std::unique_ptr<bytecode::ExecArena> BCState;

  /// The static shape table (derived state, null when disabled) and the
  /// slot-indexed table of pre-built instances it resolved to. The
  /// pointers alias Tables entries (unordered_map nodes are reference-
  /// stable), so the hot path reads them with no guard and no hashing.
  std::unique_ptr<transform::GraphPlan> Plan;
  std::vector<class InterpProcNode *> StaticInstances;

  /// Instantiates the plan: reserves slab capacity for any deficit, then
  /// find-or-creates the globals' storage nodes and every planned
  /// instance. Runs after the global initializers (a SlotNode snapshots
  /// the live value at construction — building it earlier would corrupt
  /// the variable cutoff) and again after a checkpoint restore rebuilds
  /// the tables.
  void instantiateStaticShape();
  /// Tears the shape back down if — and only if — every shape-built node
  /// is still pristine (no edges, no cached value, snapshot == live), so
  /// a freshly constructed static-graph interpreter passes restore's
  /// "fresh interpreter" gate; a used interpreter is left untouched and
  /// fails that gate exactly like the dynamic path.
  void demolishStaticShape();

  Runtime RT;
  std::vector<std::unique_ptr<StorageSlot>> Globals;
  std::unordered_map<std::string, int> GlobalIndex;
  std::vector<std::unique_ptr<HeapObject>> Heap;

  /// Argument tables (Section 4.2), one per incremental procedure.
  using ArgTable =
      std::unordered_map<std::vector<Value>,
                         std::unique_ptr<class InterpProcNode>, ValueVecHash>;
  std::unordered_map<const lang::ProcDecl *, ArgTable> Tables;

  std::string Output;
  bool Failed = false;
  std::string ErrorMessage;
  std::string RestoreNote;
  int CallDepth = 0;
  // Each interpreter call level costs several C++ frames; under ASan the
  // redzones inflate them past the 8 MiB default stack well before 2000
  // levels, so the guard must trip earlier there to fail cleanly instead
  // of overflowing.
#if defined(__SANITIZE_ADDRESS__)
#define ALPHONSE_INTERP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ALPHONSE_INTERP_ASAN 1
#endif
#endif
#ifdef ALPHONSE_INTERP_ASAN
  static constexpr int MaxCallDepth = 500;
#else
  static constexpr int MaxCallDepth = 2000;
#endif
};

} // namespace alphonse::interp

#endif // ALPHONSE_INTERP_INTERP_H
