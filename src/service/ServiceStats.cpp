//===- ServiceStats.cpp - Session-service counters ------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/ServiceStats.h"

namespace alphonse {

std::ostream &operator<<(std::ostream &OS, const ServiceStats &S) {
  OS << "svc.sessions_opened  " << S.SessionsOpened.total() << '\n'
     << "svc.sessions_closed  " << S.SessionsClosed.total() << '\n'
     << "svc.sessions_open    " << S.openSessions() << '\n'
     << "svc.mutations        " << S.Mutations.total() << '\n'
     << "svc.drain_cycles     " << S.DrainCycles.total() << '\n'
     << "svc.waves_admitted   " << S.WavesAdmitted.total() << '\n'
     << "svc.waves_degraded   " << S.WavesDegraded.total() << '\n'
     << "svc.waves_deferred   " << S.WavesDeferred.total() << '\n'
     << "svc.waves_shed       " << S.WavesShed.total() << '\n'
     << "svc.waves_faulted    " << S.WavesFaulted.total() << '\n'
     << "svc.queue_peak       " << S.QueuePeak.total() << '\n'
     << "svc.wave_p50_us      " << S.WaveLatency.quantileUs(0.50) << '\n'
     << "svc.wave_p99_us      " << S.WaveLatency.quantileUs(0.99) << '\n'
     << "svc.wave_p999_us     " << S.WaveLatency.quantileUs(0.999) << '\n'
     << "svc.wave_max_us      " << S.WaveLatency.maxUs() << '\n';
  return OS;
}

} // namespace alphonse
