//===- LatencyHistogram.h - Log-linear latency histogram --------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small HDR-style log-linear histogram for per-wave service latencies
/// (DESIGN.md "Session service"). Values are microseconds; buckets are 16
/// linear sub-buckets per power-of-two octave, so relative error is
/// bounded at ~6% across the full range with a fixed 5 KB footprint — the
/// tail quantiles (p99/p999) the bench harness reports stay meaningful
/// without storing every sample.
///
/// Single-writer: the session manager records from its driver thread only
/// (drain tasks hand their timings back through the session record), so
/// the counters are plain integers, not atomics.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SERVICE_LATENCYHISTOGRAM_H
#define ALPHONSE_SERVICE_LATENCYHISTOGRAM_H

#include <cstdint>
#include <cstring>

namespace alphonse {

/// Fixed-size log-linear histogram of microsecond latencies.
class LatencyHistogram {
public:
  /// Linear sub-buckets per octave: 1 << SubBits.
  static constexpr unsigned SubBits = 4;
  static constexpr unsigned Subs = 1u << SubBits;
  /// Octaves above the linear range; covers values up to ~2^40 us (~13
  /// days), far beyond any wave latency. Larger values clamp to the top
  /// bucket.
  static constexpr unsigned Octaves = 36;
  static constexpr unsigned NumBuckets = Subs + Octaves * Subs;

  void record(uint64_t Us) {
    ++Counts[bucketOf(Us)];
    ++Total;
    if (Us > MaxUs)
      MaxUs = Us;
  }

  uint64_t count() const { return Total; }
  uint64_t maxUs() const { return MaxUs; }

  /// Upper bound of the bucket containing the \p Q quantile (0 < Q <= 1)
  /// by cumulative rank; 0 when empty. quantileUs(0.5) is the p50,
  /// quantileUs(0.999) the p999.
  uint64_t quantileUs(double Q) const {
    if (Total == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
    if (Rank >= Total)
      Rank = Total - 1;
    uint64_t Seen = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      Seen += Counts[B];
      if (Seen > Rank)
        return bucketHighUs(B);
    }
    return MaxUs;
  }

  void reset() {
    std::memset(Counts, 0, sizeof(Counts));
    Total = 0;
    MaxUs = 0;
  }

private:
  /// Values < Subs get exact unit buckets; above that, the top SubBits
  /// bits below the leading bit select a linear sub-bucket within the
  /// value's octave (the classic HDR mapping).
  static unsigned bucketOf(uint64_t V) {
    if (V < Subs)
      return static_cast<unsigned>(V);
    unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(V));
    unsigned Octave = Msb - SubBits + 1; // 1-based above the linear range.
    if (Octave > Octaves)
      return NumBuckets - 1;
    unsigned Sub = static_cast<unsigned>((V >> (Msb - SubBits)) & (Subs - 1));
    return Octave * Subs + Sub;
  }

  /// Largest value mapping into bucket \p B (the reported quantile is a
  /// bucket upper bound, never an underestimate).
  static uint64_t bucketHighUs(unsigned B) {
    if (B < Subs)
      return B;
    unsigned Octave = B / Subs;
    unsigned Sub = B % Subs;
    unsigned Shift = Octave - 1;
    uint64_t Base = static_cast<uint64_t>(Subs) << Shift;
    uint64_t Width = static_cast<uint64_t>(1) << Shift;
    return Base + Width * (Sub + 1) - 1;
  }

  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  uint64_t MaxUs = 0;
};

} // namespace alphonse

#endif // ALPHONSE_SERVICE_LATENCYHISTOGRAM_H
