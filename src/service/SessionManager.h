//===- SessionManager.h - Multi-session incremental service -----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The session service (DESIGN.md "Session service"): a SessionManager
/// multiplexes many isolated per-client runtimes over one shared worker
/// pool. Mutations mark their session dirty and enqueue it; a drain cycle
/// batches the dirty backlog, dispatches one serial drain task per
/// session onto the pool (cross-session concurrency, intra-session
/// serialism), and applies admission control per session by pumping under
/// ServiceConfig::SessionBudget — the session's own governor then
/// completes, degrades, defers, or sheds the wave exactly as a
/// single-tenant runtime would.
///
/// Threading model: one driver thread owns the manager (open/close/
/// mutate/drainCycle); pool workers own individual sessions only for the
/// duration of their drain task inside a cycle, with the cycle's
/// dispatch/wait pair ordering the handoff both ways. Nothing else is
/// shared, so the service needs no per-session locks.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SERVICE_SESSIONMANAGER_H
#define ALPHONSE_SERVICE_SESSIONMANAGER_H

#include "service/ServiceStats.h"
#include "service/Session.h"
#include "support/ThreadPool.h"

#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace alphonse {

/// Tunables for one SessionManager.
struct ServiceConfig {
  /// Shared pool width: sessions drained concurrently per cycle. 0 drains
  /// inline on the driver thread (serial service, useful for tests and
  /// for the serial-vs-parallel equivalence sweep).
  unsigned Workers = 4;
  /// Per-session graph configuration. Workers/Pool are overridden to 0 /
  /// nullptr: session runtimes are strictly serial (see Session.h).
  DepGraph::Config Graph;
  /// Per-session budget each drain-cycle wave runs under. The default is
  /// unlimited (every admitted session reaches quiescence each cycle);
  /// give it a deadline/step bound plus OverloadPolicy::Defer or Shed to
  /// get graceful degradation per session under overload.
  WaveBudget SessionBudget;
  /// Dirty-queue depth beyond which new enqueues are shed (the session
  /// stays dirty but is not queued; svc.waves_shed counts the refusal).
  /// 0 = unlimited. drainAll() ignores the cap when catching up.
  size_t MaxQueueDepth = 0;
};

/// Multiplexes isolated sessions over one shared worker pool.
class SessionManager {
public:
  explicit SessionManager(ServiceConfig Cfg = ServiceConfig());

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  /// Opens a new session and returns it (owned by the manager).
  Session &open();

  /// Closes \p Id; \returns false when no such session exists. A dirty
  /// session is simply discarded — its pending work dies with it.
  bool close(Session::Id Id);

  /// Looks up an open session, or nullptr.
  Session *find(Session::Id Id);

  size_t openSessions() const { return Sessions.size(); }
  size_t queueDepth() const { return DirtyQ.size(); }

  /// Applies \p F to session \p Id on the calling (driver) thread and
  /// marks it dirty; \returns false when the session does not exist.
  /// \p F receives the Session and performs the embedding-level edits
  /// (set a cell, write a variable) without pumping — propagation belongs
  /// to the next drain cycle.
  template <typename Fn> bool mutate(Session::Id Id, Fn &&F) {
    Session *S = find(Id);
    if (!S)
      return false;
    std::forward<Fn>(F)(*S);
    markDirty(*S);
    return true;
  }

  /// Marks \p S dirty and enqueues it for the next drain cycle (subject
  /// to MaxQueueDepth shedding). Call after mutating a session's runtime
  /// directly, skipping mutate().
  void markDirty(Session &S);

  /// Runs one batched drain cycle: takes the current dirty queue,
  /// dispatches one per-session drain task onto the pool (each pumping
  /// under SessionBudget), waits for the batch, then re-queues sessions
  /// whose wave was cancelled mid-drain (degraded — they still hold
  /// parked work). Deferred/shed sessions stay dirty but are not
  /// re-queued: re-running them next cycle would spin without an
  /// unbounded catch-up, which is drainAll()'s job. \returns the number
  /// of sessions that reached quiescence this cycle.
  size_t drainCycle();

  /// Catch-up: sweeps every dirty session (queued or not, ignoring
  /// MaxQueueDepth) and drains in unbounded cycles until none is dirty.
  /// \p MaxCycles bounds the loop (0 = until clean). \returns sessions
  /// drained to quiescence.
  size_t drainAll(size_t MaxCycles = 0);

  ServiceStats &stats() { return Stats; }
  const ServiceStats &stats() const { return Stats; }

  /// The shared worker pool (exposed for embeddings that want to attach
  /// a PropagationScheduler of a big standalone graph to it).
  ThreadPool &pool() { return Pool; }

private:
  /// One drain wave for \p S under \p B. Runs on a pool worker (or
  /// inline); pins statistics to shard 0 for the duration.
  void drainOne(Session &S, const WaveBudget &B);

  /// Drain cycle over whatever is queued, pumping under \p B.
  size_t drainCycleUnder(const WaveBudget &B);

  void enqueue(Session &S);

  ServiceConfig Cfg;
  ThreadPool Pool;
  std::unordered_map<Session::Id, std::unique_ptr<Session>> Sessions;
  std::deque<Session *> DirtyQ;
  ServiceStats Stats;
  Session::Id NextId = 1;
};

} // namespace alphonse

#endif // ALPHONSE_SERVICE_SESSIONMANAGER_H
