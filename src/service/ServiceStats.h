//===- ServiceStats.h - Session-service counters ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Service-level counters for the session manager (DESIGN.md "Session
/// service"), the svc.* companion to the per-runtime Statistics block each
/// session already carries. Counters are StatCounters updated from the
/// manager's driver thread (shard 0, fetch_add — safe even if an
/// embedding drives several managers from different threads against
/// different blocks); the latency histogram is single-writer by design
/// and is only touched from the driver thread.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SERVICE_SERVICESTATS_H
#define ALPHONSE_SERVICE_SERVICESTATS_H

#include "service/LatencyHistogram.h"
#include "support/Statistics.h"

#include <ostream>

namespace alphonse {

/// Aggregate counters for one SessionManager.
struct ServiceStats {
  /// Sessions ever opened.
  StatCounter SessionsOpened;
  /// Sessions closed.
  StatCounter SessionsClosed;
  /// Mutations applied through mutate()/markDirty().
  StatCounter Mutations;
  /// Batched drain cycles run (each amortizes many sessions' edits).
  StatCounter DrainCycles;
  /// Per-session waves admitted and dispatched by drain cycles.
  StatCounter WavesAdmitted;
  /// Waves that ran but were cancelled by the per-session budget (the
  /// session re-queues and catches up in a later cycle).
  StatCounter WavesDegraded;
  /// Waves the per-session governor skipped (OverloadPolicy::Defer over a
  /// parked backlog).
  StatCounter WavesDeferred;
  /// Waves refused outright: by the per-session governor under
  /// OverloadPolicy::Shed, or by the manager when the dirty queue was
  /// over ServiceConfig::MaxQueueDepth.
  StatCounter WavesShed;
  /// Waves that ended in a fault (the session's graph quarantined work or
  /// the drain threw); the session is re-queued.
  StatCounter WavesFaulted;
  /// High-water mark of the dirty-queue depth (gauge).
  StatCounter QueuePeak;

  /// Dirty-enqueue-to-wave-completion latency of admitted waves.
  LatencyHistogram WaveLatency;

  /// Sessions currently open.
  uint64_t openSessions() const { return SessionsOpened - SessionsClosed; }

  void reset() { *this = ServiceStats(); }
};

/// Prints all svc.* counters plus the latency quantiles, one per line.
std::ostream &operator<<(std::ostream &OS, const ServiceStats &S);

} // namespace alphonse

#endif // ALPHONSE_SERVICE_SERVICESTATS_H
