//===- SessionManager.cpp - Multi-session incremental service -------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/SessionManager.h"

#include "support/Budget.h"

namespace alphonse {

SessionManager::SessionManager(ServiceConfig C)
    : Cfg(std::move(C)), Pool(Cfg.Workers) {
  // Session runtimes are strictly serial; concurrency is one drain task
  // per session on the shared pool (Session.h).
  Cfg.Graph.Workers = 0;
  Cfg.Graph.Pool = nullptr;
}

Session &SessionManager::open() {
  Session::Id Id = NextId++;
  std::unique_ptr<Session> S(new Session(Id, Cfg.Graph));
  Session &Ref = *S;
  Sessions.emplace(Id, std::move(S));
  ++Stats.SessionsOpened;
  return Ref;
}

bool SessionManager::close(Session::Id Id) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  if (It->second->InQueue)
    for (auto Q = DirtyQ.begin(); Q != DirtyQ.end(); ++Q)
      if (*Q == It->second.get()) {
        DirtyQ.erase(Q);
        break;
      }
  Sessions.erase(It);
  ++Stats.SessionsClosed;
  return true;
}

Session *SessionManager::find(Session::Id Id) {
  auto It = Sessions.find(Id);
  return It == Sessions.end() ? nullptr : It->second.get();
}

void SessionManager::markDirty(Session &S) {
  ++Stats.Mutations;
  S.Dirty = true;
  if (S.InQueue)
    return;
  if (Cfg.MaxQueueDepth != 0 && DirtyQ.size() >= Cfg.MaxQueueDepth) {
    // Admission control at the service edge: over the depth cap the
    // enqueue itself is refused. The session stays dirty (its edits are
    // applied, its values just go stale) until a later markDirty finds
    // room or drainAll() catches up.
    ++Stats.WavesShed;
    return;
  }
  enqueue(S);
}

void SessionManager::enqueue(Session &S) {
  S.InQueue = true;
  S.EnqueuedAtUs = GovClock::nowUs();
  DirtyQ.push_back(&S);
  if (DirtyQ.size() > Stats.QueuePeak.total())
    Stats.QueuePeak = DirtyQ.size();
}

size_t SessionManager::drainCycle() { return drainCycleUnder(Cfg.SessionBudget); }

size_t SessionManager::drainCycleUnder(const WaveBudget &B) {
  if (DirtyQ.empty())
    return 0;
  ++Stats.DrainCycles;

  // Take the whole backlog as one batch: small edits from many sessions
  // amortize into one dispatch/wait round trip on the shared pool.
  std::vector<Session *> Batch(DirtyQ.begin(), DirtyQ.end());
  DirtyQ.clear();

  for (Session *S : Batch) {
    ++Stats.WavesAdmitted;
    Pool.run([this, S, &B] { drainOne(*S, B); });
  }
  Pool.wait();

  // Post-wave accounting on the driver thread (the histogram and the
  // re-queue decisions are single-writer by design).
  size_t Quiescent = 0;
  for (Session *S : Batch) {
    S->InQueue = false;
    if (S->Faulted) {
      ++Stats.WavesFaulted;
      continue; // Stays dirty; drainAll() or the next mutation retries.
    }
    switch (S->LastOutcome) {
    case WaveOutcome::Completed:
      S->Dirty = false;
      Stats.WaveLatency.record(S->LastUs);
      ++Quiescent;
      break;
    case WaveOutcome::DegradedDeadline:
    case WaveOutcome::DegradedSteps:
    case WaveOutcome::DegradedMemory:
      // The wave ran and was cancelled by its budget: parked residue
      // remains, so the session goes straight back in the queue — each
      // successive wave makes budgeted progress.
      ++Stats.WavesDegraded;
      Stats.WaveLatency.record(S->LastUs);
      enqueue(*S);
      break;
    case WaveOutcome::Deferred:
      // The governor skipped the wave over the parked backlog. Under a
      // Defer/Shed policy a budgeted cycle will never clear that
      // backlog, so re-queueing would spin; the session stays dirty for
      // drainAll()'s unbounded catch-up.
      ++Stats.WavesDeferred;
      break;
    case WaveOutcome::Shed:
      ++Stats.WavesShed;
      break;
    }
  }
  return Quiescent;
}

size_t SessionManager::drainAll(size_t MaxCycles) {
  size_t Drained = 0;
  for (size_t Cycle = 0; MaxCycles == 0 || Cycle < MaxCycles; ++Cycle) {
    // Sweep in dirty-but-unqueued sessions (deferred, shed, or faulted
    // leftovers), ignoring the depth cap: this is the catch-up path.
    for (auto &Entry : Sessions) {
      Session &S = *Entry.second;
      if (S.Dirty && !S.InQueue) {
        S.Faulted = false; // One retry per catch-up cycle.
        enqueue(S);
      }
    }
    if (DirtyQ.empty())
      break;
    // Unbounded accept-policy waves: every admitted session reaches
    // quiescence unless it faults again.
    size_t Got = drainCycleUnder(WaveBudget());
    Drained += Got;
    if (Got == 0)
      break; // Only faulting sessions remain; give up rather than spin.
  }
  return Drained;
}

void SessionManager::drainOne(Session &S, const WaveBudget &B) {
  // A session drain is a serial foreign task on this pool: pin statistics
  // to slot 0 so the session's counters take the multi-writer-safe
  // fetch_add path instead of lazily allocating worker-shard blocks in
  // every session's Statistics (Statistics.h), and so the session
  // runtime's call stack stays the slot-0 one no matter which worker
  // drains it.
  StatShardScope Pin(0);
  S.Faulted = false;
  try {
    S.LastOutcome = S.RT.pump(B);
  } catch (...) {
    S.Faulted = true;
  }
  ++S.Waves;
  uint64_t Now = GovClock::nowUs();
  S.LastUs = Now > S.EnqueuedAtUs ? Now - S.EnqueuedAtUs : 0;
}

} // namespace alphonse
