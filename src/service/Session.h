//===- Session.h - One isolated incremental session -------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One client session of the session service (DESIGN.md "Session
/// service"): a private Runtime — its own dependency graph, governor, and
/// statistics — plus an optional embedded program (a Spreadsheet, an
/// interpreted Alphonse-L module, any object built over the session's
/// Runtime). Sessions share nothing: isolation between clients is by
/// construction, not by locking, and the only shared resource is the
/// manager's worker pool that drains them.
///
/// A session's runtime is strictly serial (Workers = 0, no scheduler):
/// concurrency in the service comes from draining many sessions at once,
/// one pool task each, never from parallelism inside one session's small
/// graph. Runtime's environment overrides are bypassed (ExactConfig) so a
/// debugging ALPHONSE_JOBS cannot hand every one of ten thousand sessions
/// its own worker pool.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_SERVICE_SESSION_H
#define ALPHONSE_SERVICE_SESSION_H

#include "core/Runtime.h"
#include "support/Budget.h"

#include <cstdint>
#include <memory>
#include <utility>

namespace alphonse {

class SessionManager;

/// One isolated client runtime multiplexed by a SessionManager.
class Session {
public:
  using Id = uint64_t;

  Id id() const { return Sid; }

  /// The session's private runtime. Mutations must go through
  /// SessionManager::mutate() (or be followed by markDirty()) so the
  /// manager knows to schedule a drain.
  Runtime &runtime() { return RT; }
  const Runtime &runtime() const { return RT; }

  /// Constructs the session's program object in place (e.g. a
  /// Spreadsheet bound to runtime()), replacing any previous one. The
  /// session owns it; it dies with the session, before the runtime.
  template <typename T, typename... Args> T &emplaceProgram(Args &&...A) {
    std::shared_ptr<T> P = std::make_shared<T>(std::forward<Args>(A)...);
    T &Ref = *P;
    Program = std::move(P);
    return Ref;
  }

  /// The embedded program, or nullptr when none was emplaced. The caller
  /// asserts the type: the manager is program-agnostic.
  template <typename T> T *program() {
    return static_cast<T *>(Program.get());
  }

  /// True when the session has un-drained mutations.
  bool dirty() const { return Dirty; }

  /// How the session's most recent drain wave ended.
  WaveOutcome lastOutcome() const { return LastOutcome; }

  /// Drain waves run for this session (admitted ones, including degraded).
  uint64_t waves() const { return Waves; }

  /// Enqueue-to-completion latency of the last admitted wave, in
  /// microseconds.
  uint64_t lastWaveUs() const { return LastUs; }

private:
  friend class SessionManager;

  Session(Id Sid, const DepGraph::Config &Cfg)
      : Sid(Sid), RT(Cfg, Runtime::ExactConfig()) {}

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  Id Sid;
  /// Declared before Program: the program references the runtime and must
  /// be destroyed first.
  Runtime RT;
  std::shared_ptr<void> Program;

  // Manager bookkeeping (all driver-thread-owned except during a drain
  // task, which owns the session exclusively for its duration).
  bool Dirty = false;
  bool InQueue = false;
  /// The last drain wave threw out of the pump (rare: graph faults are
  /// normally quarantined, not thrown).
  bool Faulted = false;
  uint64_t EnqueuedAtUs = 0;
  WaveOutcome LastOutcome = WaveOutcome::Completed;
  uint64_t Waves = 0;
  uint64_t LastUs = 0;
};

} // namespace alphonse

#endif // ALPHONSE_SERVICE_SESSION_H
