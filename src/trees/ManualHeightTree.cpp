//===- ManualHeightTree.cpp - Hand-coded height maintenance ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trees/ManualHeightTree.h"

#include <algorithm>

namespace alphonse::trees {

ManualHeightTree::Node *ManualHeightTree::makeNode() {
  Pool.push_back(std::make_unique<Node>());
  return Pool.back().get();
}

void ManualHeightTree::setLeft(Node *N, Node *Child) {
  if (N->Left)
    N->Left->Parent = nullptr;
  N->Left = Child;
  if (Child)
    Child->Parent = N;
  repairUpward(N);
}

void ManualHeightTree::setRight(Node *N, Node *Child) {
  if (N->Right)
    N->Right->Parent = nullptr;
  N->Right = Child;
  if (Child)
    Child->Parent = N;
  repairUpward(N);
}

void ManualHeightTree::repairUpward(Node *N) {
  while (N) {
    ++Updates;
    int NewHeight =
        std::max(height(N->Left), height(N->Right)) + 1;
    if (NewHeight == N->Height)
      return; // Height unchanged: ancestors are already correct.
    N->Height = NewHeight;
    N = N->Parent;
  }
}

} // namespace alphonse::trees
