//===- AvlTree.cpp - Self-balancing tree via maintained methods -----------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Algorithm 11 of the paper. Balance is written exactly as the
/// exhaustive specification: rebalance both children, then fix this node
/// with (possibly double) rotations and re-balance the rotated subtree.
/// The incremental runtime caches per-subtree results, so after k
/// insertions only the affected paths re-run.
///
//===----------------------------------------------------------------------===//

#include "trees/AvlTree.h"

#include <algorithm>

namespace alphonse::trees {

AvlTree::AvlTree(Runtime &RT, bool UncheckedLookups)
    : RT(RT), UncheckedLookups(UncheckedLookups),
      Height(
          RT, [this](Node *N) { return computeHeight(N); },
          EvalStrategy::Demand, "Avl.height"),
      Balance(
          RT, [this](Node *N) { return computeBalance(N); },
          EvalStrategy::Demand, "Avl.balance"),
      Lookup(
          RT, [this](int Key) { return computeLookup(Key); },
          EvalStrategy::Demand, "Avl.lookup"),
      Nil(std::make_unique<Node>(RT, 0)), Root(RT, Nil.get(), "avl.root") {
  Nil->Left.set(Nil.get());
  Nil->Right.set(Nil.get());
}

AvlTree::~AvlTree() = default;

//===----------------------------------------------------------------------===//
// Maintained methods (the exhaustive specifications)
//===----------------------------------------------------------------------===//

int AvlTree::computeHeight(Node *N) {
  // HeightNil: the shared leaf sentinel has height 0.
  if (N == Nil.get())
    return 0;
  return std::max(Height(N->Left.get()), Height(N->Right.get())) + 1;
}

int AvlTree::diff(Node *N) {
  // PROCEDURE Diff(t) = t.left.height() - t.right.height().
  return Height(N->Left.get()) - Height(N->Right.get());
}

AvlTree::Node *AvlTree::rotateRight(Node *T) {
  Node *S = T->Left.get();
  Node *B = S->Right.get();
  S->Right.set(T);
  T->Left.set(B);
  return S;
}

AvlTree::Node *AvlTree::rotateLeft(Node *T) {
  Node *S = T->Right.get();
  Node *B = S->Left.get();
  S->Left.set(T);
  T->Right.set(B);
  return S;
}

AvlTree::Node *AvlTree::computeBalance(Node *T) {
  // BalanceNil: nothing to do at the sentinel.
  if (T == Nil.get())
    return T;
  T->Left.set(Balance(T->Left.get()));
  T->Right.set(Balance(T->Right.get()));
  if (diff(T) > 1) {
    if (diff(T->Left.get()) < 0)
      T->Left.set(rotateLeft(T->Left.get()));
    return Balance(rotateRight(T));
  }
  if (diff(T) < -1) {
    if (diff(T->Right.get()) > 0)
      T->Right.set(rotateRight(T->Right.get()));
    return Balance(rotateLeft(T));
  }
  return T;
}

bool AvlTree::computeLookup(int Key) {
  if (UncheckedLookups) {
    // Section 6.4: the programmer asserts the lookup result depends on the
    // found item, not on the O(log n) pointers traversed to locate it.
    Node *Found;
    {
      UncheckedScope Scope(RT);
      Found = find(Root.get(), Key);
    }
    if (Found != Nil.get())
      return Found->Key.get() == Key; // Tracked read of the found item.
    // Absence cannot be attributed to a single item: fall back to a
    // tracked walk so a future insert of this key invalidates us.
    Found = find(Root.get(), Key);
    return Found != Nil.get();
  }
  Node *Found = find(Root.get(), Key);
  if (Found == Nil.get())
    return false;
  return Found->Key.get() == Key;
}

AvlTree::Node *AvlTree::find(Node *N, int Key) const {
  while (N != Nil.get()) {
    int K = N->Key.get();
    if (Key == K)
      return N;
    N = (Key < K) ? N->Left.get() : N->Right.get();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Mutator operations (plain unbalanced-BST code)
//===----------------------------------------------------------------------===//

AvlTree::Node *AvlTree::makeNode(int Key) {
  auto Owned = std::make_unique<Node>(RT, Key);
  Node *N = Owned.get();
  N->Left.set(Nil.get());
  N->Right.set(Nil.get());
  Pool.push_back(std::move(Owned));
  return N;
}

void AvlTree::discard(Node *N) {
  assert(N != Nil.get() && "cannot discard the sentinel");
  // Drop the incremental instances keyed by the dying node first; their
  // destruction invalidates any dependents.
  Height.erase(N);
  Balance.erase(N);
  auto It = std::find_if(Pool.begin(), Pool.end(),
                         [N](const auto &P) { return P.get() == N; });
  assert(It != Pool.end() && "discarding a node this tree does not own");
  *It = std::move(Pool.back());
  Pool.pop_back();
}

void AvlTree::insert(int Key) {
  Node *Fresh = makeNode(Key);
  Node *Cur = Root.get();
  if (Cur == Nil.get()) {
    Root.set(Fresh);
    return;
  }
  while (true) {
    int K = Cur->Key.get();
    if (Key == K) {
      discard(Fresh); // Duplicate: ignore.
      return;
    }
    Cell<Node *> &Child = (Key < K) ? Cur->Left : Cur->Right;
    if (Child.get() == Nil.get()) {
      Child.set(Fresh);
      return;
    }
    Cur = Child.get();
  }
}

bool AvlTree::erase(int Key) {
  bool Removed = false;
  Root.set(removeKey(Root.get(), Key, Removed));
  return Removed;
}

AvlTree::Node *AvlTree::removeKey(Node *N, int Key, bool &Removed) {
  if (N == Nil.get())
    return N;
  int K = N->Key.get();
  if (Key < K) {
    N->Left.set(removeKey(N->Left.get(), Key, Removed));
    return N;
  }
  if (Key > K) {
    N->Right.set(removeKey(N->Right.get(), Key, Removed));
    return N;
  }
  Removed = true;
  if (N->Left.get() == Nil.get()) {
    Node *Rest = N->Right.get();
    discard(N);
    return Rest;
  }
  if (N->Right.get() == Nil.get()) {
    Node *Rest = N->Left.get();
    discard(N);
    return Rest;
  }
  // Two children: adopt the in-order successor's key, then delete it from
  // the right subtree.
  Node *Succ = N->Right.get();
  while (Succ->Left.get() != Nil.get())
    Succ = Succ->Left.get();
  N->Key.set(Succ->Key.get());
  bool Inner = false;
  N->Right.set(removeKey(N->Right.get(), N->Key.get(), Inner));
  assert(Inner && "successor key vanished during delete");
  return N;
}

void AvlTree::rebalance() { Root.set(Balance(Root.get())); }

bool AvlTree::contains(int Key) {
  rebalance();
  return find(Root.get(), Key) != Nil.get();
}

bool AvlTree::lookup(int Key) {
  rebalance();
  return Lookup(Key);
}

int AvlTree::height() {
  rebalance();
  return Height(Root.get());
}

//===----------------------------------------------------------------------===//
// Oracles and introspection (untracked)
//===----------------------------------------------------------------------===//

bool AvlTree::checkAvl(const Node *N, int *HeightOut) const {
  if (N == Nil.get()) {
    *HeightOut = 0;
    return true;
  }
  int HL = 0, HR = 0;
  if (!checkAvl(N->Left.peek(), &HL) || !checkAvl(N->Right.peek(), &HR))
    return false;
  *HeightOut = std::max(HL, HR) + 1;
  return std::abs(HL - HR) <= 1;
}

bool AvlTree::checkBst(const Node *N, const int *Lo, const int *Hi) const {
  if (N == Nil.get())
    return true;
  int K = N->Key.peek();
  if (Lo && K <= *Lo)
    return false;
  if (Hi && K >= *Hi)
    return false;
  return checkBst(N->Left.peek(), Lo, &K) && checkBst(N->Right.peek(), &K, Hi);
}

size_t AvlTree::countReachable(const Node *N) const {
  if (N == Nil.get())
    return 0;
  return 1 + countReachable(N->Left.peek()) + countReachable(N->Right.peek());
}

bool AvlTree::isAvlBalanced() const {
  int H = 0;
  return checkAvl(Root.peek(), &H);
}

bool AvlTree::isBst() const { return checkBst(Root.peek(), nullptr, nullptr); }

size_t AvlTree::reachableSize() const { return countReachable(Root.peek()); }

size_t AvlTree::lookupDependencyCount(int Key) const {
  const DepNode *N = Lookup.instanceNode(Key);
  return N ? N->numPredecessors() : 0;
}

} // namespace alphonse::trees
