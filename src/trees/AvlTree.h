//===- AvlTree.h - Self-balancing tree via maintained methods ---*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.3 of the paper: AVL search trees written as an Alphonse
/// program (Algorithm 11). `height` and `balance` are maintained methods;
/// insert/erase/contains are the *unbalanced* BST routines, because the
/// structure is self-balancing — the mutator merely calls balance on the
/// root before searching. Arbitrary batches of mutations between
/// rebalances are supported, exactly as the paper highlights ("the
/// algorithm is both an off-line as well as on-line algorithm").
///
/// The paper's Theorem 7.1 argues DET/TOP/OBS hold for this program: the
/// only side effects are rotations, which preserve tree order.
///
/// The optional unchecked-lookup mode demonstrates the (*UNCHECKED*)
/// pragma of Section 6.4: a maintained lookup whose descent path records
/// no dependencies, leaving it dependent on the found item only
/// (experiment E10).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TREES_AVLTREE_H
#define ALPHONSE_TREES_AVLTREE_H

#include "core/Alphonse.h"

#include <memory>
#include <vector>

namespace alphonse::trees {

/// An AVL tree whose balancing is an incrementally maintained property.
class AvlTree {
public:
  /// \p UncheckedLookups selects the Section 6.4 variant of lookup().
  explicit AvlTree(Runtime &RT, bool UncheckedLookups = false);
  ~AvlTree();

  /// Unbalanced BST insert (mutator code). Duplicate keys are ignored.
  void insert(int Key);

  /// Unbalanced BST delete (mutator code). \returns true if the key was
  /// present.
  bool erase(int Key);

  /// Rebalances from the root: Root := Root.balance(). Called implicitly
  /// by contains()/lookup(), and callable explicitly after a batch of
  /// mutations.
  void rebalance();

  /// Mutator-side search: rebalances, then walks the tree directly.
  bool contains(int Key);

  /// Maintained search: an incremental procedure keyed by the probe key,
  /// so repeated lookups of one key are O(1) until relevant data changes.
  bool lookup(int Key);

  /// Maintained height of the root subtree.
  int height();

  size_t size() const { return Pool.size(); }
  Runtime &runtime() { return RT; }

  /// Test oracle: AVL invariant over the live structure (untracked reads).
  bool isAvlBalanced() const;
  /// Test oracle: strict BST key ordering (untracked reads).
  bool isBst() const;
  /// Test oracle: number of reachable interior nodes.
  size_t reachableSize() const;

  /// Number of dependency-graph predecessors of the lookup instance for
  /// \p Key (0 if never looked up). Experiment E10 compares this between
  /// tracked and unchecked modes.
  size_t lookupDependencyCount(int Key) const;

private:
  class Node {
  public:
    Node(Runtime &RT, int Key)
        : Left(RT, nullptr, "avl.left"), Right(RT, nullptr, "avl.right"),
          Key(RT, Key, "avl.key") {}

    Cell<Node *> Left;
    Cell<Node *> Right;
    Cell<int> Key;
  };

  Node *makeNode(int Key);
  void discard(Node *N);
  Node *removeKey(Node *N, int Key, bool &Removed);

  // The exhaustive specifications (Algorithm 11's procedures).
  int computeHeight(Node *N);
  Node *computeBalance(Node *N);
  bool computeLookup(int Key);

  int diff(Node *N);
  Node *rotateRight(Node *N);
  Node *rotateLeft(Node *N);
  Node *find(Node *N, int Key) const;

  bool checkAvl(const Node *N, int *HeightOut) const;
  bool checkBst(const Node *N, const int *Lo, const int *Hi) const;
  size_t countReachable(const Node *N) const;

  Runtime &RT;
  bool UncheckedLookups;
  Maintained<int(Node *)> Height;
  Maintained<Node *(Node *)> Balance;
  Maintained<bool(int)> Lookup;
  std::unique_ptr<Node> Nil;
  Cell<Node *> Root;
  std::vector<std::unique_ptr<Node>> Pool;
};

} // namespace alphonse::trees

#endif // ALPHONSE_TREES_AVLTREE_H
