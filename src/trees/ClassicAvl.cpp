//===- ClassicAvl.cpp - Hand-written AVL baseline -------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trees/ClassicAvl.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace alphonse::trees {

void ClassicAvl::update(Node *N) {
  N->Height = std::max(nodeHeight(N->Left.get()), nodeHeight(N->Right.get())) +
              1;
}

int ClassicAvl::balanceFactor(const Node *N) {
  return nodeHeight(N->Left.get()) - nodeHeight(N->Right.get());
}

std::unique_ptr<ClassicAvl::Node>
ClassicAvl::rotateRight(std::unique_ptr<Node> N) {
  std::unique_ptr<Node> S = std::move(N->Left);
  N->Left = std::move(S->Right);
  update(N.get());
  S->Right = std::move(N);
  update(S.get());
  return S;
}

std::unique_ptr<ClassicAvl::Node>
ClassicAvl::rotateLeft(std::unique_ptr<Node> N) {
  std::unique_ptr<Node> S = std::move(N->Right);
  N->Right = std::move(S->Left);
  update(N.get());
  S->Left = std::move(N);
  update(S.get());
  return S;
}

std::unique_ptr<ClassicAvl::Node>
ClassicAvl::rebalance(std::unique_ptr<Node> N) {
  update(N.get());
  int BF = balanceFactor(N.get());
  if (BF > 1) {
    if (balanceFactor(N->Left.get()) < 0)
      N->Left = rotateLeft(std::move(N->Left));
    return rotateRight(std::move(N));
  }
  if (BF < -1) {
    if (balanceFactor(N->Right.get()) > 0)
      N->Right = rotateRight(std::move(N->Right));
    return rotateLeft(std::move(N));
  }
  return N;
}

std::unique_ptr<ClassicAvl::Node>
ClassicAvl::insertInto(std::unique_ptr<Node> N, int Key) {
  if (!N) {
    ++Count;
    return std::make_unique<Node>(Key);
  }
  if (Key < N->Key)
    N->Left = insertInto(std::move(N->Left), Key);
  else if (Key > N->Key)
    N->Right = insertInto(std::move(N->Right), Key);
  else
    return N; // Duplicate.
  return rebalance(std::move(N));
}

std::unique_ptr<ClassicAvl::Node>
ClassicAvl::removeFrom(std::unique_ptr<Node> N, int Key, bool &Removed) {
  if (!N)
    return N;
  if (Key < N->Key) {
    N->Left = removeFrom(std::move(N->Left), Key, Removed);
  } else if (Key > N->Key) {
    N->Right = removeFrom(std::move(N->Right), Key, Removed);
  } else {
    Removed = true;
    --Count;
    if (!N->Left)
      return std::move(N->Right);
    if (!N->Right)
      return std::move(N->Left);
    Node *Succ = N->Right.get();
    while (Succ->Left)
      Succ = Succ->Left.get();
    N->Key = Succ->Key;
    bool Inner = false;
    N->Right = removeFrom(std::move(N->Right), N->Key, Inner);
    assert(Inner && "successor key vanished during delete");
    ++Count; // The inner removal decremented for the moved key.
  }
  return rebalance(std::move(N));
}

void ClassicAvl::insert(int Key) { RootNode = insertInto(std::move(RootNode), Key); }

bool ClassicAvl::erase(int Key) {
  bool Removed = false;
  RootNode = removeFrom(std::move(RootNode), Key, Removed);
  return Removed;
}

bool ClassicAvl::contains(int Key) const {
  const Node *N = RootNode.get();
  while (N) {
    if (Key == N->Key)
      return true;
    N = (Key < N->Key) ? N->Left.get() : N->Right.get();
  }
  return false;
}

bool ClassicAvl::checkAvl(const Node *N, int *HeightOut) {
  if (!N) {
    *HeightOut = 0;
    return true;
  }
  int HL = 0, HR = 0;
  if (!checkAvl(N->Left.get(), &HL) || !checkAvl(N->Right.get(), &HR))
    return false;
  *HeightOut = std::max(HL, HR) + 1;
  return std::abs(HL - HR) <= 1 && N->Height == *HeightOut;
}

bool ClassicAvl::checkBst(const Node *N, const int *Lo, const int *Hi) {
  if (!N)
    return true;
  if (Lo && N->Key <= *Lo)
    return false;
  if (Hi && N->Key >= *Hi)
    return false;
  return checkBst(N->Left.get(), Lo, &N->Key) &&
         checkBst(N->Right.get(), &N->Key, Hi);
}

bool ClassicAvl::isAvlBalanced() const {
  int H = 0;
  return checkAvl(RootNode.get(), &H);
}

bool ClassicAvl::isBst() const {
  return checkBst(RootNode.get(), nullptr, nullptr);
}

} // namespace alphonse::trees
