//===- HeightTree.h - Maintained-height binary tree -------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Algorithm 1): a binary tree whose `height`
/// method is (*MAINTAINED*). The exhaustive specification is the obvious
/// bottom-up recursion; the incremental runtime turns it into cached
/// per-node heights that update along the root path after a pointer change,
/// with batching across multiple changes (Section 3.4's cost claims are
/// experiments E1–E3).
///
/// The paper's TreeNil object — one shared node standing in for missing
/// children, with `height` overridden to return 0 — is reproduced with a
/// virtual `computeHeight`.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TREES_HEIGHTTREE_H
#define ALPHONSE_TREES_HEIGHTTREE_H

#include "core/Alphonse.h"

#include <memory>
#include <vector>

namespace alphonse::trees {

/// A binary tree with an incrementally maintained height method.
///
/// Nodes are owned by the tree. `height(n)` is the Alphonse procedure; the
/// mutator changes the shape with setLeft()/setRight() and re-demands
/// heights at any time.
class HeightTree {
public:
  class Node {
  public:
    explicit Node(Runtime &RT);
    virtual ~Node();

    /// Child pointers are tracked storage: the height computation reads
    /// them, so the mutator's pointer assignments propagate.
    Cell<Node *> Left;
    Cell<Node *> Right;

  protected:
    friend class HeightTree;
    /// The exhaustive specification (procedure Height of Algorithm 1).
    virtual int computeHeight(HeightTree &Tree);
  };

  explicit HeightTree(Runtime &RT);
  ~HeightTree();

  /// The shared TreeNil object (height 0, no children).
  Node *nil() { return &NilNode; }

  /// Allocates a fresh interior node with nil children.
  Node *makeNode();

  /// The maintained height method: O(|subtree|) on first demand, O(1) when
  /// cached, O(path) after a change.
  int height(Node *N) { return Height(N); }

  /// Mutator operations (tracked writes).
  void setLeft(Node *N, Node *Child) { N->Left.set(Child); }
  void setRight(Node *N, Node *Child) { N->Right.set(Child); }

  /// Destroys \p N and drops its cached height. The caller must first
  /// unlink it from any parent.
  void discard(Node *N);

  /// Number of live interior nodes.
  size_t size() const { return Pool.size(); }

  Runtime &runtime() { return RT; }

  /// Reference oracle for tests: recomputes the height exhaustively with no
  /// incremental machinery.
  static int exhaustiveHeight(const Node *N, const Node *Nil);

private:
  /// The TreeNil subtype with the overridden method.
  class Sentinel final : public Node {
  public:
    explicit Sentinel(Runtime &RT) : Node(RT) {}

  protected:
    int computeHeight(HeightTree &) override { return 0; }
  };

  Runtime &RT;
  /// Declared before Pool/NilNode users so it is destroyed after them...
  /// destruction runs in reverse: Pool first (storage nodes unregister and
  /// invalidate instances), then Height's instance table.
  Maintained<int(Node *)> Height;
  Sentinel NilNode;
  std::vector<std::unique_ptr<Node>> Pool;
};

} // namespace alphonse::trees

#endif // ALPHONSE_TREES_HEIGHTTREE_H
