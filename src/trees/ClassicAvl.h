//===- ClassicAvl.h - Hand-written AVL baseline -----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook AVL tree with stored heights and eager per-insert
/// rebalancing — the "complex algorithm typically used" that Section 1 of
/// the paper contrasts with Alphonse's exhaustive specification, and the
/// comparator for experiment E6. No incremental runtime involved.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TREES_CLASSICAVL_H
#define ALPHONSE_TREES_CLASSICAVL_H

#include <cstddef>
#include <memory>

namespace alphonse::trees {

/// Conventional AVL search tree (insert/erase/contains in O(log n)).
class ClassicAvl {
public:
  ClassicAvl() = default;

  /// Inserts \p Key; duplicates are ignored.
  void insert(int Key);
  /// Removes \p Key. \returns true if it was present.
  bool erase(int Key);
  /// Membership test.
  bool contains(int Key) const;
  /// Height of the tree (0 when empty).
  int height() const { return nodeHeight(RootNode.get()); }
  size_t size() const { return Count; }
  /// Test oracle: the AVL balance invariant.
  bool isAvlBalanced() const;
  /// Test oracle: strict BST ordering.
  bool isBst() const;

private:
  struct Node {
    explicit Node(int Key) : Key(Key) {}
    int Key;
    int Height = 1;
    std::unique_ptr<Node> Left;
    std::unique_ptr<Node> Right;
  };

  static int nodeHeight(const Node *N) { return N ? N->Height : 0; }
  static void update(Node *N);
  static int balanceFactor(const Node *N);
  static std::unique_ptr<Node> rotateRight(std::unique_ptr<Node> N);
  static std::unique_ptr<Node> rotateLeft(std::unique_ptr<Node> N);
  static std::unique_ptr<Node> rebalance(std::unique_ptr<Node> N);
  std::unique_ptr<Node> insertInto(std::unique_ptr<Node> N, int Key);
  std::unique_ptr<Node> removeFrom(std::unique_ptr<Node> N, int Key,
                                   bool &Removed);
  static bool checkAvl(const Node *N, int *HeightOut);
  static bool checkBst(const Node *N, const int *Lo, const int *Hi);

  std::unique_ptr<Node> RootNode;
  size_t Count = 0;
};

} // namespace alphonse::trees

#endif // ALPHONSE_TREES_CLASSICAVL_H
