//===- ManualHeightTree.h - Hand-coded height maintenance ------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 9's "ambitious programmer": a binary tree that keeps a height
/// field in every node and, on each pointer change, walks parent pointers
/// to the root updating heights. This is the hand-coded competitor for the
/// maintained-height tree of Algorithm 1 (experiments E1/E2/E3 baselines).
/// Unlike the Alphonse version it cannot batch updates: ancestors shared
/// by several changes are updated once per change.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TREES_MANUALHEIGHTTREE_H
#define ALPHONSE_TREES_MANUALHEIGHTTREE_H

#include <cstddef>
#include <memory>
#include <vector>

namespace alphonse::trees {

/// Binary tree with eagerly maintained per-node heights and parent links.
class ManualHeightTree {
public:
  struct Node {
    Node *Left = nullptr;
    Node *Right = nullptr;
    Node *Parent = nullptr;
    int Height = 1;
  };

  /// Allocates a fresh leaf node.
  Node *makeNode();

  /// Links \p Child (may be null) as the left child of \p N and repairs
  /// heights up the root path.
  void setLeft(Node *N, Node *Child);
  /// Links \p Child (may be null) as the right child of \p N and repairs
  /// heights up the root path.
  void setRight(Node *N, Node *Child);

  /// Height of the subtree rooted at \p N (0 for null). O(1): the field is
  /// maintained eagerly.
  static int height(const Node *N) { return N ? N->Height : 0; }

  size_t size() const { return Pool.size(); }

  /// Number of per-node height updates performed so far (for the E3
  /// batching comparison: this counts duplicate ancestor work).
  uint64_t updateCount() const { return Updates; }

private:
  void repairUpward(Node *N);

  std::vector<std::unique_ptr<Node>> Pool;
  uint64_t Updates = 0;
};

} // namespace alphonse::trees

#endif // ALPHONSE_TREES_MANUALHEIGHTTREE_H
