//===- HeightTree.cpp - Maintained-height binary tree ---------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trees/HeightTree.h"

#include <algorithm>

namespace alphonse::trees {

HeightTree::Node::Node(Runtime &RT)
    : Left(RT, nullptr, "tree.left"), Right(RT, nullptr, "tree.right") {}

HeightTree::Node::~Node() = default;

int HeightTree::Node::computeHeight(HeightTree &Tree) {
  // PROCEDURE Height(t): RETURN max(t.left.height(), t.right.height()) + 1.
  int LeftHeight = Tree.height(Left.get());
  int RightHeight = Tree.height(Right.get());
  return std::max(LeftHeight, RightHeight) + 1;
}

HeightTree::HeightTree(Runtime &RT)
    : RT(RT),
      Height(
          RT, [this](Node *N) { return N->computeHeight(*this); },
          EvalStrategy::Demand, "Tree.height"),
      NilNode(RT) {}

HeightTree::~HeightTree() = default;

HeightTree::Node *HeightTree::makeNode() {
  auto Owned = std::make_unique<Node>(RT);
  Node *N = Owned.get();
  N->Left.set(&NilNode);
  N->Right.set(&NilNode);
  Pool.push_back(std::move(Owned));
  return N;
}

void HeightTree::discard(Node *N) {
  assert(N != &NilNode && "cannot discard the shared nil node");
  Height.erase(N);
  auto It = std::find_if(Pool.begin(), Pool.end(),
                         [N](const auto &P) { return P.get() == N; });
  assert(It != Pool.end() && "discarding a node this tree does not own");
  *It = std::move(Pool.back());
  Pool.pop_back();
}

int HeightTree::exhaustiveHeight(const Node *N, const Node *Nil) {
  if (N == Nil)
    return 0;
  return std::max(exhaustiveHeight(N->Left.peek(), Nil),
                  exhaustiveHeight(N->Right.peek(), Nil)) +
         1;
}

} // namespace alphonse::trees
