//===- Parser.cpp - Alphonse-L parser --------------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <sstream>

namespace alphonse::lang {

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::End) &&
         "token stream must be End-terminated");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The End token.
  return Tokens[I];
}

Token Parser::advance() {
  Token T = current();
  if (!current().is(TokenKind::End))
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  std::ostringstream OS;
  OS << "expected " << tokenKindName(Kind) << " " << Context << ", found "
     << tokenKindName(current().Kind);
  Diags.error(current().Loc, OS.str());
  return false;
}

std::string Parser::expectIdentifier(const char *Context) {
  if (check(TokenKind::Identifier))
    return advance().Text;
  std::ostringstream OS;
  OS << "expected identifier " << Context << ", found "
     << tokenKindName(current().Kind);
  Diags.error(current().Loc, OS.str());
  return "";
}

/// Skips forward to the next plausible top-level declaration after a parse
/// error, so one mistake yields one diagnostic.
void Parser::syncToTopLevel() {
  while (!current().is(TokenKind::End)) {
    if (check(TokenKind::KwType) || check(TokenKind::KwVar) ||
        check(TokenKind::KwProcedure) || check(TokenKind::Pragma))
      return;
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Pragmas
//===----------------------------------------------------------------------===//

PragmaInfo Parser::parsePragmaText(const Token &PragmaTok) {
  PragmaInfo Info;
  std::istringstream Words(PragmaTok.Text);
  std::string Word;
  Words >> Word;
  if (Word == "MAINTAINED") {
    Info.Kind = ProcPragma::Maintained;
  } else if (Word == "CACHED") {
    Info.Kind = ProcPragma::Cached;
  } else {
    Diags.error(PragmaTok.Loc, "unknown pragma '" + Word + "'");
    return Info;
  }
  if (Words >> Word) {
    if (Word == "EAGER") {
      Info.Strategy = EvalStrategy::Eager;
    } else if (Word == "DEMAND") {
      Info.Strategy = EvalStrategy::Demand;
    } else {
      Diags.error(PragmaTok.Loc,
                  "unknown evaluation strategy '" + Word +
                      "'; expected DEMAND or EAGER");
    }
  }
  return Info;
}

std::optional<PragmaInfo> Parser::acceptProcPragma() {
  if (!check(TokenKind::Pragma))
    return std::nullopt;
  if (current().Text.rfind("UNCHECKED", 0) == 0)
    return std::nullopt; // Expression pragma; not valid here.
  return parsePragmaText(advance());
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Module Parser::run() {
  Module M;
  while (!current().is(TokenKind::End)) {
    if (accept(TokenKind::KwType)) {
      parseTypeDecl(M);
      continue;
    }
    if (accept(TokenKind::KwVar)) {
      parseGlobalDecls(M);
      continue;
    }
    std::optional<PragmaInfo> Pragma = acceptProcPragma();
    if (accept(TokenKind::KwProcedure)) {
      parseProcDecl(M, Pragma.value_or(PragmaInfo()));
      continue;
    }
    if (Pragma) {
      Diags.error(current().Loc, "expected PROCEDURE after pragma");
      syncToTopLevel();
      continue;
    }
    Diags.error(current().Loc,
                std::string("expected a declaration, found ") +
                    tokenKindName(current().Kind));
    advance();
    syncToTopLevel();
  }
  return M;
}

TypeRef Parser::parseTypeRef() {
  TypeRef T;
  T.Loc = current().Loc;
  if (check(TokenKind::Identifier)) {
    T.Name = advance().Text;
    return T;
  }
  Diags.error(current().Loc, std::string("expected a type name, found ") +
                                 tokenKindName(current().Kind));
  return T;
}

void Parser::parseTypeDecl(Module &M) {
  TypeDecl D;
  D.Loc = current().Loc;
  D.Name = expectIdentifier("for the type name");
  expect(TokenKind::Equal, "after the type name");
  if (check(TokenKind::Identifier))
    D.SuperName = advance().Text;
  expect(TokenKind::KwObject, "in object type declaration");

  // Fields: identList ':' type ';' until METHODS/OVERRIDES/END.
  while (check(TokenKind::Identifier)) {
    std::vector<std::string> Names;
    SourceLocation Loc = current().Loc;
    Names.push_back(advance().Text);
    while (accept(TokenKind::Comma))
      Names.push_back(expectIdentifier("in field list"));
    expect(TokenKind::Colon, "after field names");
    TypeRef T = parseTypeRef();
    expect(TokenKind::Semicolon, "after field declaration");
    for (std::string &N : Names)
      D.Fields.push_back(FieldDecl{std::move(N), T, Loc});
  }

  if (accept(TokenKind::KwMethods)) {
    while (check(TokenKind::Identifier) || check(TokenKind::Pragma)) {
      MethodDecl MD;
      if (auto P = acceptProcPragma())
        MD.Pragma = *P;
      MD.Loc = current().Loc;
      MD.Name = expectIdentifier("for the method name");
      expect(TokenKind::LParen, "after the method name");
      if (!check(TokenKind::RParen))
        MD.Params = parseParams();
      expect(TokenKind::RParen, "after method parameters");
      if (accept(TokenKind::Colon))
        MD.RetType = parseTypeRef();
      expect(TokenKind::Assign, "before the method implementation");
      MD.ImplName = expectIdentifier("for the implementing procedure");
      expect(TokenKind::Semicolon, "after the method declaration");
      D.Methods.push_back(std::move(MD));
    }
  }

  if (accept(TokenKind::KwOverrides)) {
    while (check(TokenKind::Identifier) || check(TokenKind::Pragma)) {
      OverrideDecl OD;
      if (auto P = acceptProcPragma())
        OD.Pragma = *P;
      OD.Loc = current().Loc;
      OD.Name = expectIdentifier("for the overridden method");
      expect(TokenKind::Assign, "in override");
      OD.ImplName = expectIdentifier("for the overriding procedure");
      expect(TokenKind::Semicolon, "after the override");
      D.Overrides.push_back(std::move(OD));
    }
  }

  expect(TokenKind::KwEnd, "to close the object type");
  expect(TokenKind::Semicolon, "after the type declaration");
  M.Types.push_back(std::move(D));
}

void Parser::parseGlobalDecls(Module &M) {
  // VAR a, b : T [:= init]; c : U; ...  — runs until the next section.
  while (check(TokenKind::Identifier)) {
    std::vector<std::string> Names;
    SourceLocation Loc = current().Loc;
    Names.push_back(advance().Text);
    while (accept(TokenKind::Comma))
      Names.push_back(expectIdentifier("in variable list"));
    expect(TokenKind::Colon, "after variable names");
    TypeRef T = parseTypeRef();
    ExprPtr Init;
    if (accept(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semicolon, "after the variable declaration");
    for (size_t I = 0; I < Names.size(); ++I) {
      GlobalDecl G;
      G.Name = Names[I];
      G.Type = T;
      G.Loc = Loc;
      if (Init && I + 1 == Names.size())
        G.Init = std::move(Init); // The initializer applies once.
      M.Globals.push_back(std::move(G));
    }
  }
}

std::vector<ParamDecl> Parser::parseParams() {
  std::vector<ParamDecl> Params;
  while (true) {
    std::vector<std::string> Names;
    SourceLocation Loc = current().Loc;
    Names.push_back(expectIdentifier("for a parameter name"));
    while (accept(TokenKind::Comma))
      Names.push_back(expectIdentifier("in parameter list"));
    expect(TokenKind::Colon, "after parameter names");
    TypeRef T = parseTypeRef();
    for (std::string &N : Names)
      Params.push_back(ParamDecl{std::move(N), T, Loc});
    if (!accept(TokenKind::Semicolon))
      return Params;
  }
}

void Parser::parseProcDecl(Module &M, PragmaInfo Pragma) {
  auto P = std::make_unique<ProcDecl>();
  P->Pragma = Pragma;
  P->Loc = current().Loc;
  P->Name = expectIdentifier("for the procedure name");
  expect(TokenKind::LParen, "after the procedure name");
  if (!check(TokenKind::RParen))
    P->Params = parseParams();
  expect(TokenKind::RParen, "after procedure parameters");
  if (accept(TokenKind::Colon))
    P->RetType = parseTypeRef();
  expect(TokenKind::Equal, "before the procedure body");

  if (accept(TokenKind::KwVar)) {
    while (check(TokenKind::Identifier)) {
      std::vector<std::string> Names;
      SourceLocation Loc = current().Loc;
      Names.push_back(advance().Text);
      while (accept(TokenKind::Comma))
        Names.push_back(expectIdentifier("in local variable list"));
      expect(TokenKind::Colon, "after local variable names");
      TypeRef T = parseTypeRef();
      ExprPtr Init;
      if (accept(TokenKind::Assign))
        Init = parseExpr();
      expect(TokenKind::Semicolon, "after the local declaration");
      for (size_t I = 0; I < Names.size(); ++I) {
        LocalDecl L;
        L.Name = Names[I];
        L.Type = T;
        L.Loc = Loc;
        if (Init && I + 1 == Names.size())
          L.Init = std::move(Init);
        P->Locals.push_back(std::move(L));
      }
    }
  }

  expect(TokenKind::KwBegin, "to open the procedure body");
  P->Body = parseStmtsUntil({TokenKind::KwEnd});
  expect(TokenKind::KwEnd, "to close the procedure body");
  // Modula-3 repeats the procedure name after END; accept and check it.
  if (check(TokenKind::Identifier)) {
    std::string Trailing = advance().Text;
    if (Trailing != P->Name)
      Diags.warning(current().Loc, "procedure closed with 'END " + Trailing +
                                       "' but is named '" + P->Name + "'");
  }
  expect(TokenKind::Semicolon, "after the procedure");
  M.Procs.push_back(std::move(P));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

std::vector<StmtPtr>
Parser::parseStmtsUntil(std::initializer_list<TokenKind> Stops) {
  std::vector<StmtPtr> Stmts;
  auto AtStop = [&] {
    if (current().is(TokenKind::End))
      return true;
    for (TokenKind K : Stops)
      if (check(K))
        return true;
    return false;
  };
  while (!AtStop()) {
    StmtPtr S = parseStmt();
    if (!S) {
      // Error recovery: skip to the next ';' or stop token.
      while (!AtStop() && !check(TokenKind::Semicolon))
        advance();
      accept(TokenKind::Semicolon);
      continue;
    }
    Stmts.push_back(std::move(S));
  }
  return Stmts;
}

StmtPtr Parser::parseStmt() {
  if (check(TokenKind::KwReturn))
    return parseReturn();
  if (check(TokenKind::KwIf))
    return parseIf();
  if (check(TokenKind::KwWhile))
    return parseWhile();
  if (check(TokenKind::KwFor))
    return parseFor();

  SourceLocation Loc = current().Loc;
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (accept(TokenKind::Assign)) {
    if (E->Kind != ExprKind::NameRef && E->Kind != ExprKind::FieldAccess) {
      Diags.error(Loc, "assignment target must be a variable or field");
      return nullptr;
    }
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    expect(TokenKind::Semicolon, "after the assignment");
    return std::make_unique<AssignStmt>(Loc, std::move(E), std::move(Value));
  }
  if (E->Kind != ExprKind::Call && E->Kind != ExprKind::MethodCall &&
      E->Kind != ExprKind::New)
    Diags.warning(Loc, "expression statement has no effect");
  expect(TokenKind::Semicolon, "after the statement");
  return std::make_unique<ExprStmt>(Loc, std::move(E));
}

StmtPtr Parser::parseReturn() {
  SourceLocation Loc = advance().Loc; // RETURN
  ExprPtr Value;
  if (!check(TokenKind::Semicolon))
    Value = parseExpr();
  expect(TokenKind::Semicolon, "after RETURN");
  return std::make_unique<ReturnStmt>(Loc, std::move(Value));
}

StmtPtr Parser::parseIf() {
  SourceLocation Loc = advance().Loc; // IF
  auto S = std::make_unique<IfStmt>(Loc);
  while (true) {
    IfStmt::Arm Arm;
    Arm.Cond = parseExpr();
    expect(TokenKind::KwThen, "after the condition");
    Arm.Body = parseStmtsUntil(
        {TokenKind::KwElsif, TokenKind::KwElse, TokenKind::KwEnd});
    S->Arms.push_back(std::move(Arm));
    if (!accept(TokenKind::KwElsif))
      break;
  }
  if (accept(TokenKind::KwElse))
    S->ElseBody = parseStmtsUntil({TokenKind::KwEnd});
  expect(TokenKind::KwEnd, "to close IF");
  expect(TokenKind::Semicolon, "after END");
  return S;
}

StmtPtr Parser::parseWhile() {
  SourceLocation Loc = advance().Loc; // WHILE
  ExprPtr Cond = parseExpr();
  auto S = std::make_unique<WhileStmt>(Loc, std::move(Cond));
  expect(TokenKind::KwDo, "after the loop condition");
  S->Body = parseStmtsUntil({TokenKind::KwEnd});
  expect(TokenKind::KwEnd, "to close WHILE");
  expect(TokenKind::Semicolon, "after END");
  return S;
}

StmtPtr Parser::parseFor() {
  SourceLocation Loc = advance().Loc; // FOR
  std::string Var = expectIdentifier("for the loop variable");
  auto S = std::make_unique<ForStmt>(Loc, std::move(Var));
  expect(TokenKind::Assign, "after the loop variable");
  S->From = parseExpr();
  expect(TokenKind::KwTo, "in FOR bounds");
  S->To = parseExpr();
  expect(TokenKind::KwDo, "after FOR bounds");
  S->Body = parseStmtsUntil({TokenKind::KwEnd});
  expect(TokenKind::KwEnd, "to close FOR");
  expect(TokenKind::Semicolon, "after END");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (L && check(TokenKind::KwOr)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr R = parseAnd();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, BinaryOp::Or, std::move(L),
                                     std::move(R));
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseRelational();
  while (L && check(TokenKind::KwAnd)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr R = parseRelational();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, BinaryOp::And, std::move(L),
                                     std::move(R));
  }
  return L;
}

ExprPtr Parser::parseRelational() {
  ExprPtr L = parseAdditive();
  if (!L)
    return nullptr;
  BinaryOp Op;
  switch (current().Kind) {
  case TokenKind::Equal:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEqual:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEq:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEq:
    Op = BinaryOp::Ge;
    break;
  default:
    return L;
  }
  SourceLocation Loc = advance().Loc;
  ExprPtr R = parseAdditive();
  if (!R)
    return nullptr;
  return std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  while (L && (check(TokenKind::Plus) || check(TokenKind::Minus) ||
               check(TokenKind::Ampersand))) {
    BinaryOp Op = check(TokenKind::Plus)    ? BinaryOp::Add
                  : check(TokenKind::Minus) ? BinaryOp::Sub
                                            : BinaryOp::Concat;
    SourceLocation Loc = advance().Loc;
    ExprPtr R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  while (L && (check(TokenKind::Star) || check(TokenKind::KwDiv) ||
               check(TokenKind::KwMod))) {
    BinaryOp Op = check(TokenKind::Star)    ? BinaryOp::Mul
                  : check(TokenKind::KwDiv) ? BinaryOp::Div
                                            : BinaryOp::Mod;
    SourceLocation Loc = advance().Loc;
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Loc, Op, std::move(L), std::move(R));
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Sub));
  }
  if (check(TokenKind::KwNot)) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(Loc, UnaryOp::Not, std::move(Sub));
  }
  if (check(TokenKind::Pragma) &&
      current().Text.rfind("UNCHECKED", 0) == 0) {
    SourceLocation Loc = advance().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UncheckedExpr>(Loc, std::move(Sub));
  }
  return parsePostfix();
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  if (accept(TokenKind::RParen))
    return Args;
  while (true) {
    ExprPtr A = parseExpr();
    if (!A)
      return Args;
    Args.push_back(std::move(A));
    if (accept(TokenKind::RParen))
      return Args;
    if (!expect(TokenKind::Comma, "between call arguments"))
      return Args;
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E && accept(TokenKind::Dot)) {
    SourceLocation Loc = current().Loc;
    std::string Member = expectIdentifier("after '.'");
    if (accept(TokenKind::LParen)) {
      auto Call = std::make_unique<MethodCallExpr>(Loc, std::move(E),
                                                   std::move(Member));
      Call->Args = parseArgs();
      E = std::move(Call);
    } else {
      E = std::make_unique<FieldAccessExpr>(Loc, std::move(E),
                                            std::move(Member));
    }
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    long V = advance().IntValue;
    return std::make_unique<IntLitExpr>(Loc, V);
  }
  case TokenKind::TextLiteral: {
    std::string V = advance().Text;
    return std::make_unique<TextLitExpr>(Loc, std::move(V));
  }
  case TokenKind::KwTrue:
    advance();
    return std::make_unique<BoolLitExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return std::make_unique<BoolLitExpr>(Loc, false);
  case TokenKind::KwNil:
    advance();
    return std::make_unique<NilLitExpr>(Loc);
  case TokenKind::KwNew: {
    advance();
    expect(TokenKind::LParen, "after NEW");
    std::string TypeName = expectIdentifier("for the allocated type");
    expect(TokenKind::RParen, "after NEW(T)");
    return std::make_unique<NewExpr>(Loc, std::move(TypeName));
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close the parenthesized expression");
    return E;
  }
  case TokenKind::Identifier: {
    std::string Name = advance().Text;
    if (accept(TokenKind::LParen)) {
      auto Call = std::make_unique<CallExpr>(Loc, std::move(Name));
      Call->Args = parseArgs();
      return Call;
    }
    return std::make_unique<NameRefExpr>(Loc, std::move(Name));
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(current().Kind));
    return nullptr;
  }
}

Module parseModule(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.run(), Diags);
  return P.run();
}

} // namespace alphonse::lang
