//===- Lexer.h - Alphonse-L lexer -------------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for Alphonse-L. Nested (* ... *) comments are
/// skipped (Modula-3 comments nest); comments whose first word is an
/// upper-case pragma keyword (MAINTAINED, CACHED, UNCHECKED) are emitted
/// as Pragma tokens instead.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_LEXER_H
#define ALPHONSE_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace alphonse::lang {

/// Lexes one source buffer into a token stream.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer; the final token is TokenKind::End.
  std::vector<Token> run();

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation here() const { return SourceLocation(Line, Column); }

  void skipWhitespace();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexText();
  /// Lexes a (*...*) comment; returns true (and fills \p Out) when it is a
  /// pragma.
  bool lexCommentOrPragma(Token &Out);
  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Text = "");

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_LEXER_H
