//===- Parser.h - Alphonse-L parser -----------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a lang::Module from Alphonse-L
/// source. The grammar follows the paper's Modula-3 notation (Section 3.2):
/// TYPE ... OBJECT declarations with METHODS/OVERRIDES sections, top-level
/// VARs, PROCEDUREs, and the (*MAINTAINED*) / (*CACHED*) / (*UNCHECKED*)
/// pragmas with optional DEMAND/EAGER arguments.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_PARSER_H
#define ALPHONSE_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace alphonse::lang {

/// Parses \p Tokens into a module. On error, diagnostics are recorded and
/// the returned module may be partial; callers must check
/// Diags.hasErrors().
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  Module run();

private:
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  std::string expectIdentifier(const char *Context);
  void syncToTopLevel();

  PragmaInfo parsePragmaText(const Token &PragmaTok);
  std::optional<PragmaInfo> acceptProcPragma();

  void parseTypeDecl(Module &M);
  void parseGlobalDecls(Module &M);
  void parseProcDecl(Module &M, PragmaInfo Pragma);
  std::vector<ParamDecl> parseParams();
  TypeRef parseTypeRef();

  std::vector<StmtPtr> parseStmtsUntil(std::initializer_list<TokenKind> Stops);
  StmtPtr parseStmt();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();

  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lex + parse in one step.
Module parseModule(const std::string &Source, DiagnosticEngine &Diags);

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_PARSER_H
