//===- AST.h - Alphonse-L abstract syntax -----------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of Alphonse-L: the base language of Section 3.1 of the
/// paper (records with data/pointer/procedure-valued fields, inheritance
/// and overrides, dynamic allocation, pragmas) in Modula-3 notation
/// (Section 3.2).
///
/// Nodes carry two kinds of annotation filled in by later phases:
///  - resolution data from Sema (binding kinds, slot indices, type links);
///  - transformation flags from the Section 5 transformer (TrackedAccess,
///    TrackedModify, CheckedCall) marking where the access/modify/call
///    operations were inserted. The unparser renders flagged nodes as
///    access(...) / modify(...) / call(...) exactly like Algorithm 2.
///
/// LLVM-style kind tags + static casts are used instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_AST_H
#define ALPHONSE_LANG_AST_H

#include "graph/DepNode.h" // EvalStrategy
#include "support/SourceLocation.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace alphonse::lang {

class ObjectTypeInfo;
struct ProcDecl;

//===----------------------------------------------------------------------===//
// Pragmas
//===----------------------------------------------------------------------===//

/// Which incremental pragma a procedure or method binding carries.
enum class ProcPragma : uint8_t {
  None,       ///< Conventional procedure.
  Maintained, ///< (*MAINTAINED*): incremental method (Section 3.3).
  Cached,     ///< (*CACHED*): memoized procedure (Section 3.3).
};

/// Parsed pragma: kind plus the optional DEMAND/EAGER strategy argument.
struct PragmaInfo {
  ProcPragma Kind = ProcPragma::None;
  EvalStrategy Strategy = EvalStrategy::Demand;

  bool isIncremental() const { return Kind != ProcPragma::None; }
};

//===----------------------------------------------------------------------===//
// Type references (syntactic)
//===----------------------------------------------------------------------===//

/// A type name as written: INTEGER, BOOLEAN, TEXT, or an object type.
struct TypeRef {
  std::string Name;
  SourceLocation Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  TextLit,
  NilLit,
  NameRef,
  FieldAccess,
  Call,
  MethodCall,
  New,
  Binary,
  Unary,
  Unchecked,
};

/// Base class of all expressions.
struct Expr {
  ExprKind Kind;
  SourceLocation Loc;
  /// Set by the transformer on storage reads rewritten to access(v)
  /// (Algorithm 3).
  bool TrackedAccess = false;

  virtual ~Expr();

protected:
  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
  IntLitExpr(SourceLocation Loc, long Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  long Value;
};

struct BoolLitExpr final : Expr {
  BoolLitExpr(SourceLocation Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  bool Value;
};

struct TextLitExpr final : Expr {
  TextLitExpr(SourceLocation Loc, std::string Value)
      : Expr(ExprKind::TextLit, Loc), Value(std::move(Value)) {}
  std::string Value;
};

struct NilLitExpr final : Expr {
  explicit NilLitExpr(SourceLocation Loc) : Expr(ExprKind::NilLit, Loc) {}
};

/// How a NameRef resolved (filled by Sema).
enum class NameBinding : uint8_t { Unresolved, Local, Param, Global };

/// A bare identifier: local, parameter, or top-level variable.
struct NameRefExpr final : Expr {
  NameRefExpr(SourceLocation Loc, std::string Name)
      : Expr(ExprKind::NameRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  NameBinding Binding = NameBinding::Unresolved;
  /// Frame slot (Local/Param) or global index.
  int Index = -1;
};

/// o.f where f is a data or pointer field.
struct FieldAccessExpr final : Expr {
  FieldAccessExpr(SourceLocation Loc, ExprPtr Base, std::string Field)
      : Expr(ExprKind::FieldAccess, Loc), Base(std::move(Base)),
        Field(std::move(Field)) {}
  ExprPtr Base;
  std::string Field;
  /// Field slot in the object layout (Sema).
  int FieldIndex = -1;
};

/// p(a1, ..., ak) — top-level procedure or builtin call.
struct CallExpr final : Expr {
  CallExpr(SourceLocation Loc, std::string Callee)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Resolved user procedure (Sema), or nullptr for builtins.
  const ProcDecl *Resolved = nullptr;
  /// Builtin index (Sema), -1 if a user procedure.
  int BuiltinIndex = -1;
  /// Set by the transformer: rewritten to call(p, ...) (Algorithm 5).
  bool CheckedCall = false;
};

/// o.m(a1, ..., ak) — dynamically dispatched method call.
struct MethodCallExpr final : Expr {
  MethodCallExpr(SourceLocation Loc, ExprPtr Base, std::string Method)
      : Expr(ExprKind::MethodCall, Loc), Base(std::move(Base)),
        Method(std::move(Method)) {}
  ExprPtr Base;
  std::string Method;
  std::vector<ExprPtr> Args;
  /// VTable slot (Sema).
  int MethodSlot = -1;
  /// Set by the transformer: rewritten to call(o.m, ...) (Algorithm 5).
  bool CheckedCall = false;
};

/// NEW(T) — dynamic allocation (Section 3.1 requires it).
struct NewExpr final : Expr {
  NewExpr(SourceLocation Loc, std::string TypeName)
      : Expr(ExprKind::New, Loc), TypeName(std::move(TypeName)) {}
  std::string TypeName;
  const ObjectTypeInfo *Resolved = nullptr;
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Concat,
};

struct BinaryExpr final : Expr {
  BinaryExpr(SourceLocation Loc, BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

enum class UnaryOp : uint8_t { Neg, Not };

struct UnaryExpr final : Expr {
  UnaryExpr(SourceLocation Loc, UnaryOp Op, ExprPtr Sub)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}
  UnaryOp Op;
  ExprPtr Sub;
};

/// (*UNCHECKED*) e — the Section 6.4 pragma: dependencies arising inside
/// e are not recorded for the enclosing incremental procedure.
struct UncheckedExpr final : Expr {
  UncheckedExpr(SourceLocation Loc, ExprPtr Sub)
      : Expr(ExprKind::Unchecked, Loc), Sub(std::move(Sub)) {}
  ExprPtr Sub;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t { Assign, If, While, For, Return, Expr };

struct Stmt {
  StmtKind Kind;
  SourceLocation Loc;

  virtual ~Stmt();

protected:
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
};

using StmtPtr = std::unique_ptr<Stmt>;

/// lvalue := expr.
struct AssignStmt final : Stmt {
  AssignStmt(SourceLocation Loc, ExprPtr Target, ExprPtr Value)
      : Stmt(StmtKind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}
  ExprPtr Target; ///< NameRef or FieldAccess.
  ExprPtr Value;
  /// Set by the transformer: rewritten to modify(l, v) (Algorithm 4).
  bool TrackedModify = false;
};

/// IF c THEN ... ELSIF c THEN ... ELSE ... END.
struct IfStmt final : Stmt {
  struct Arm {
    ExprPtr Cond;
    std::vector<StmtPtr> Body;
  };
  explicit IfStmt(SourceLocation Loc) : Stmt(StmtKind::If, Loc) {}
  std::vector<Arm> Arms;
  std::vector<StmtPtr> ElseBody;
};

/// WHILE c DO ... END.
struct WhileStmt final : Stmt {
  WhileStmt(SourceLocation Loc, ExprPtr Cond)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)) {}
  ExprPtr Cond;
  std::vector<StmtPtr> Body;
};

/// FOR i := a TO b DO ... END. The index variable is a fresh local.
struct ForStmt final : Stmt {
  ForStmt(SourceLocation Loc, std::string Var)
      : Stmt(StmtKind::For, Loc), Var(std::move(Var)) {}
  std::string Var;
  /// Local slot of the index variable (Sema).
  int VarIndex = -1;
  ExprPtr From;
  ExprPtr To;
  std::vector<StmtPtr> Body;
};

/// RETURN [expr].
struct ReturnStmt final : Stmt {
  ReturnStmt(SourceLocation Loc, ExprPtr Value)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; ///< May be null.
};

/// An expression evaluated for effect (a call).
struct ExprStmt final : Stmt {
  ExprStmt(SourceLocation Loc, ExprPtr E)
      : Stmt(StmtKind::Expr, Loc), E(std::move(E)) {}
  ExprPtr E;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  TypeRef Type;
  SourceLocation Loc;
};

struct LocalDecl {
  std::string Name;
  TypeRef Type;
  ExprPtr Init; ///< May be null (default-initialized).
  SourceLocation Loc;
};

/// PROCEDURE Name(params) : Ret = VAR locals BEGIN body END Name;
struct ProcDecl {
  std::string Name;
  SourceLocation Loc;
  std::vector<ParamDecl> Params;
  std::optional<TypeRef> RetType;
  std::vector<LocalDecl> Locals;
  std::vector<StmtPtr> Body;
  /// (*CACHED*) on the declaration; MAINTAINED arrives via method
  /// bindings instead (Section 3.3).
  PragmaInfo Pragma;
  /// True once any type binds this procedure as a MAINTAINED method
  /// (Sema). Affects the runtime call protocol for method dispatch.
  bool BoundAsMaintained = false;
};

struct FieldDecl {
  std::string Name;
  TypeRef Type;
  SourceLocation Loc;
};

/// METHODS m(args) : T := Impl; possibly with (*MAINTAINED*).
struct MethodDecl {
  PragmaInfo Pragma;
  std::string Name;
  std::vector<ParamDecl> Params; ///< Excludes the receiver.
  std::optional<TypeRef> RetType;
  std::string ImplName;
  SourceLocation Loc;
};

/// OVERRIDES m := Impl; possibly with (*MAINTAINED*).
struct OverrideDecl {
  PragmaInfo Pragma;
  std::string Name;
  std::string ImplName;
  SourceLocation Loc;
};

/// TYPE Name = Super OBJECT fields METHODS ... OVERRIDES ... END;
struct TypeDecl {
  std::string Name;
  std::string SuperName; ///< Empty for a root object type.
  std::vector<FieldDecl> Fields;
  std::vector<MethodDecl> Methods;
  std::vector<OverrideDecl> Overrides;
  SourceLocation Loc;
};

/// VAR name : T [:= init]; at top level.
struct GlobalDecl {
  std::string Name;
  TypeRef Type;
  ExprPtr Init; ///< May be null.
  SourceLocation Loc;
  int Index = -1; ///< Global slot (Sema).
};

/// One Alphonse-L compilation unit.
struct Module {
  std::vector<TypeDecl> Types;
  std::vector<GlobalDecl> Globals;
  std::vector<std::unique_ptr<ProcDecl>> Procs;

  /// Finds a procedure by name, or nullptr.
  ProcDecl *findProc(const std::string &Name) {
    for (auto &P : Procs)
      if (P->Name == Name)
        return P.get();
    return nullptr;
  }
  const ProcDecl *findProc(const std::string &Name) const {
    return const_cast<Module *>(this)->findProc(Name);
  }
};

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_AST_H
