//===- Types.h - Alphonse-L semantic types ----------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resolved types for Alphonse-L: the scalar types INTEGER / BOOLEAN /
/// TEXT plus object (record) types with single inheritance, field layout,
/// and a vtable of method implementations (Section 3.1's record types
/// with data fields, well-behaved pointer fields, and procedure-valued
/// fields applied to the containing object).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_TYPES_H
#define ALPHONSE_LANG_TYPES_H

#include "lang/AST.h"

#include <memory>
#include <string>
#include <vector>

namespace alphonse::lang {

class ObjectTypeInfo;

enum class TypeKind : uint8_t {
  Void,    ///< No value (procedures without a return type).
  Integer,
  Boolean,
  Text,
  Object,  ///< Reference to an object of a specific type.
  Nil,     ///< The type of NIL (assignable to any object type).
};

/// A resolved type: a kind tag plus the object type when Kind == Object.
struct Type {
  TypeKind Kind = TypeKind::Void;
  const ObjectTypeInfo *Obj = nullptr;

  static Type voidType() { return {TypeKind::Void, nullptr}; }
  static Type integer() { return {TypeKind::Integer, nullptr}; }
  static Type boolean() { return {TypeKind::Boolean, nullptr}; }
  static Type text() { return {TypeKind::Text, nullptr}; }
  static Type nil() { return {TypeKind::Nil, nullptr}; }
  static Type object(const ObjectTypeInfo *O) { return {TypeKind::Object, O}; }

  bool isObject() const { return Kind == TypeKind::Object; }
  bool isNilOrObject() const {
    return Kind == TypeKind::Object || Kind == TypeKind::Nil;
  }

  bool operator==(const Type &RHS) const = default;

  /// Human-readable name for diagnostics.
  std::string str() const;
};

/// One field in an object layout (inherited fields included, by index).
struct FieldInfo {
  std::string Name;
  Type Ty;
  int Index = -1;
};

/// A method signature as introduced by some type; the receiver is
/// implicit.
struct MethodSig {
  std::string Name;
  std::vector<Type> ParamTypes;
  Type RetType;
  int Slot = -1;
  const ObjectTypeInfo *Introducer = nullptr;
};

/// A vtable entry: the signature, the implementing procedure, and the
/// incremental pragma attached at the binding or override site.
struct MethodImpl {
  const MethodSig *Sig = nullptr;
  const ProcDecl *Impl = nullptr;
  PragmaInfo Pragma;
};

/// A resolved object type.
class ObjectTypeInfo {
public:
  std::string Name;
  const ObjectTypeInfo *Super = nullptr;
  /// Dense id, used by the static partition analysis (Section 6.3).
  int Id = -1;
  /// Complete field layout: inherited first, then own.
  std::vector<FieldInfo> Fields;
  /// Complete vtable: inherited slots (with overrides applied) then own.
  std::vector<MethodImpl> VTable;
  /// Signatures introduced by this type (owned here; vtable entries of
  /// this and derived types point at them).
  std::vector<std::unique_ptr<MethodSig>> OwnSigs;

  /// True if this type is \p T or inherits from it.
  bool derivesFrom(const ObjectTypeInfo *T) const {
    for (const ObjectTypeInfo *C = this; C; C = C->Super)
      if (C == T)
        return true;
    return false;
  }

  const FieldInfo *findField(const std::string &Name) const {
    for (const FieldInfo &F : Fields)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  const MethodSig *findMethod(const std::string &Name) const {
    for (const MethodImpl &M : VTable)
      if (M.Sig->Name == Name)
        return M.Sig;
    return nullptr;
  }
};

/// Assignment compatibility: equal types, NIL into any object type, or a
/// subtype into a supertype slot.
inline bool isAssignable(const Type &To, const Type &From) {
  if (To == From)
    return true;
  if (To.isObject() && From.Kind == TypeKind::Nil)
    return true;
  if (To.isObject() && From.isObject())
    return From.Obj->derivesFrom(To.Obj);
  return false;
}

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_TYPES_H
