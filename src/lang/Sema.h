//===- Sema.h - Alphonse-L semantic analysis --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for Alphonse-L: builds object type layouts and
/// vtables, resolves names to frame slots / globals, type-checks every
/// statement and expression, and validates the incremental pragmas
/// (procedures marked (*CACHED*) and methods marked (*MAINTAINED*) must
/// return a value; the DET/TOP/OBS restrictions of Section 3.5 remain
/// programmer obligations, as in the paper: "the above restrictions are
/// not automatically enforced by the Alphonse compiler").
///
/// Sema annotates the AST in place (binding kinds, slot indices, resolved
/// links) and returns side tables in a SemaInfo.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_SEMA_H
#define ALPHONSE_LANG_SEMA_H

#include "lang/Types.h"
#include "support/Diagnostics.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace alphonse::lang {

/// The builtin procedures available to every module.
enum class Builtin : int {
  Print = 0, ///< print(x): append the rendered value to the output stream.
  Max,       ///< max(a, b: INTEGER): INTEGER.
  Min,       ///< min(a, b: INTEGER): INTEGER.
  Abs,       ///< abs(a: INTEGER): INTEGER.
  Fmt,       ///< fmt(x): TEXT — render any value.
  Pause,     ///< pause(us: INTEGER): block the calling thread for us µs.
  NumBuiltins,
};

/// Per-procedure resolution results.
struct ProcInfo {
  std::vector<Type> ParamTypes;
  /// Types of the declared locals, in declaration order (frame slots
  /// ParamTypes.size() ... ParamTypes.size() + LocalTypes.size()).
  std::vector<Type> LocalTypes;
  Type RetType = Type::voidType();
  /// Position of the declaration in Module::Procs. Gives downstream
  /// passes (graph-plan slot assignment, bytecode pools) a stable
  /// module-order index independent of hash-map iteration order.
  int DeclIndex = -1;
  /// Frame slots: parameters first, then locals, then FOR variables.
  int FrameSize = 0;
};

/// Side tables produced by Sema and consumed by the transformer,
/// interpreter, and static partitioner.
struct SemaInfo {
  std::vector<std::unique_ptr<ObjectTypeInfo>> Types;
  std::unordered_map<std::string, ObjectTypeInfo *> TypeByName;
  std::unordered_map<const ProcDecl *, ProcInfo> Procs;
  /// Global variable types, indexed by GlobalDecl::Index.
  std::vector<Type> GlobalTypes;

  const ObjectTypeInfo *lookupType(const std::string &Name) const {
    auto It = TypeByName.find(Name);
    return It == TypeByName.end() ? nullptr : It->second;
  }
  const ProcInfo *procInfo(const ProcDecl *P) const {
    auto It = Procs.find(P);
    return It == Procs.end() ? nullptr : &It->second;
  }
};

/// Runs semantic analysis over \p M. \returns the side tables; check
/// \p Diags for errors before using them.
SemaInfo analyze(Module &M, DiagnosticEngine &Diags);

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_SEMA_H
