//===- AST.cpp - Alphonse-L abstract syntax -------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line virtual destructors anchor the vtables (LLVM coding
/// standard: provide a virtual method anchor for classes in headers).
///
//===----------------------------------------------------------------------===//

#include "lang/AST.h"

namespace alphonse::lang {

Expr::~Expr() = default;
Stmt::~Stmt() = default;

} // namespace alphonse::lang
