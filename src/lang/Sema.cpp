//===- Sema.cpp - Alphonse-L semantic analysis ------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <unordered_map>
#include <unordered_set>

namespace alphonse::lang {

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "<void>";
  case TypeKind::Integer:
    return "INTEGER";
  case TypeKind::Boolean:
    return "BOOLEAN";
  case TypeKind::Text:
    return "TEXT";
  case TypeKind::Object:
    return Obj ? Obj->Name : "<object>";
  case TypeKind::Nil:
    return "NIL";
  }
  return "<unknown>";
}

namespace {

/// One entry in a lexical scope.
struct VarInfo {
  NameBinding Binding = NameBinding::Unresolved;
  int Index = -1;
  Type Ty;
};

class SemaContext {
public:
  SemaContext(Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {}

  SemaInfo run() {
    buildTypes();
    buildGlobals();
    checkGlobalInits();
    checkProcs();
    return std::move(Info);
  }

private:
  //===--------------------------------------------------------------------===//
  // Phase 1: object types
  //===--------------------------------------------------------------------===//

  void buildTypes() {
    // Create shells.
    for (TypeDecl &TD : M.Types) {
      if (Info.TypeByName.count(TD.Name)) {
        Diags.error(TD.Loc, "duplicate type name '" + TD.Name + "'");
        continue;
      }
      auto Owned = std::make_unique<ObjectTypeInfo>();
      Owned->Name = TD.Name;
      Owned->Id = static_cast<int>(Info.Types.size());
      Info.TypeByName[TD.Name] = Owned.get();
      Info.Types.push_back(std::move(Owned));
      DeclByName[TD.Name] = &TD;
    }
    for (auto &Owned : Info.Types)
      finalizeType(Owned.get());
  }

  void finalizeType(ObjectTypeInfo *T) {
    if (Finalized.count(T))
      return;
    if (!InProgress.insert(T).second) {
      Diags.error(DeclByName[T->Name]->Loc,
                  "inheritance cycle involving type '" + T->Name + "'");
      Finalized.insert(T);
      return;
    }
    TypeDecl *TD = DeclByName[T->Name];
    if (!TD->SuperName.empty()) {
      auto It = Info.TypeByName.find(TD->SuperName);
      if (It == Info.TypeByName.end()) {
        Diags.error(TD->Loc, "unknown supertype '" + TD->SuperName + "'");
      } else {
        finalizeType(It->second);
        T->Super = It->second;
        T->Fields = It->second->Fields;
        T->VTable = It->second->VTable;
      }
    }
    // Own fields.
    for (const FieldDecl &FD : TD->Fields) {
      if (T->findField(FD.Name)) {
        Diags.error(FD.Loc, "duplicate field '" + FD.Name + "' in type '" +
                                T->Name + "'");
        continue;
      }
      FieldInfo FI;
      FI.Name = FD.Name;
      FI.Ty = resolveTypeRef(FD.Type);
      FI.Index = static_cast<int>(T->Fields.size());
      T->Fields.push_back(std::move(FI));
    }
    // New methods.
    for (const MethodDecl &MD : TD->Methods) {
      if (T->findMethod(MD.Name)) {
        Diags.error(MD.Loc, "method '" + MD.Name +
                                "' already exists; use OVERRIDES");
        continue;
      }
      auto Sig = std::make_unique<MethodSig>();
      Sig->Name = MD.Name;
      for (const ParamDecl &PD : MD.Params)
        Sig->ParamTypes.push_back(resolveTypeRef(PD.Type));
      Sig->RetType = MD.RetType ? resolveTypeRef(*MD.RetType)
                                : Type::voidType();
      Sig->Slot = static_cast<int>(T->VTable.size());
      Sig->Introducer = T;
      MethodImpl Impl;
      Impl.Sig = Sig.get();
      Impl.Pragma = MD.Pragma;
      Impl.Impl = resolveMethodImpl(T, *Sig, MD.ImplName, MD.Pragma, MD.Loc);
      T->OwnSigs.push_back(std::move(Sig));
      T->VTable.push_back(Impl);
    }
    // Overrides.
    for (const OverrideDecl &OD : TD->Overrides) {
      const MethodSig *Sig = T->findMethod(OD.Name);
      if (!Sig) {
        Diags.error(OD.Loc, "override of unknown method '" + OD.Name + "'");
        continue;
      }
      MethodImpl &Entry = T->VTable[Sig->Slot];
      Entry.Pragma = OD.Pragma;
      Entry.Impl = resolveMethodImpl(T, *Sig, OD.ImplName, OD.Pragma, OD.Loc);
    }
    InProgress.erase(T);
    Finalized.insert(T);
  }

  /// Checks that \p ImplName names a procedure whose signature matches the
  /// method: a receiver parameter (an ancestor-or-self of \p T) followed by
  /// the method's parameters.
  const ProcDecl *resolveMethodImpl(ObjectTypeInfo *T, const MethodSig &Sig,
                                    const std::string &ImplName,
                                    const PragmaInfo &Pragma,
                                    SourceLocation Loc) {
    ProcDecl *Impl = M.findProc(ImplName);
    if (!Impl) {
      Diags.error(Loc, "unknown procedure '" + ImplName +
                           "' implementing method '" + Sig.Name + "'");
      return nullptr;
    }
    if (Impl->Params.size() != Sig.ParamTypes.size() + 1) {
      Diags.error(Loc, "procedure '" + ImplName + "' takes " +
                           std::to_string(Impl->Params.size()) +
                           " parameters but method '" + Sig.Name +
                           "' needs a receiver plus " +
                           std::to_string(Sig.ParamTypes.size()));
      return Impl;
    }
    Type Recv = resolveTypeRef(Impl->Params[0].Type);
    if (!Recv.isObject() || !T->derivesFrom(Recv.Obj))
      Diags.error(Loc, "receiver parameter of '" + ImplName +
                           "' must be a supertype of '" + T->Name + "'");
    for (size_t I = 0; I < Sig.ParamTypes.size(); ++I) {
      Type Got = resolveTypeRef(Impl->Params[I + 1].Type);
      if (!(Got == Sig.ParamTypes[I]))
        Diags.error(Loc, "parameter " + std::to_string(I + 1) + " of '" +
                             ImplName + "' has type " + Got.str() +
                             " but the method declares " +
                             Sig.ParamTypes[I].str());
    }
    Type GotRet =
        Impl->RetType ? resolveTypeRef(*Impl->RetType) : Type::voidType();
    if (!(GotRet == Sig.RetType))
      Diags.error(Loc, "return type of '" + ImplName + "' is " +
                           GotRet.str() + " but the method declares " +
                           Sig.RetType.str());
    if (Pragma.Kind == ProcPragma::Maintained) {
      if (Sig.RetType == Type::voidType())
        Diags.error(Loc, "maintained method '" + Sig.Name +
                             "' must return a value");
      Impl->BoundAsMaintained = true;
    }
    if (Pragma.Kind == ProcPragma::Cached)
      Diags.error(Loc, "methods use (*MAINTAINED*), not (*CACHED*)");
    return Impl;
  }

  //===--------------------------------------------------------------------===//
  // Phase 2: globals
  //===--------------------------------------------------------------------===//

  void buildGlobals() {
    for (GlobalDecl &G : M.Globals) {
      if (GlobalScope.count(G.Name)) {
        Diags.error(G.Loc, "duplicate top-level variable '" + G.Name + "'");
        continue;
      }
      G.Index = static_cast<int>(Info.GlobalTypes.size());
      Type Ty = resolveTypeRef(G.Type);
      Info.GlobalTypes.push_back(Ty);
      GlobalScope[G.Name] = VarInfo{NameBinding::Global, G.Index, Ty};
    }
  }

  void checkGlobalInits() {
    for (GlobalDecl &G : M.Globals) {
      if (!G.Init || G.Index < 0)
        continue;
      Type Got = checkExpr(G.Init.get());
      if (!isAssignable(Info.GlobalTypes[G.Index], Got))
        Diags.error(G.Loc, "cannot initialize " +
                               Info.GlobalTypes[G.Index].str() +
                               " variable '" + G.Name + "' with " +
                               Got.str());
    }
  }

  //===--------------------------------------------------------------------===//
  // Phase 3: procedures
  //===--------------------------------------------------------------------===//

  void checkProcs() {
    // Register signatures first so procedures can call each other.
    for (auto &P : M.Procs) {
      if (Info.Procs.count(P.get())) {
        Diags.error(P->Loc, "duplicate procedure '" + P->Name + "'");
        continue;
      }
      ProcInfo PI;
      PI.DeclIndex = static_cast<int>(&P - M.Procs.data());
      for (const ParamDecl &PD : P->Params)
        PI.ParamTypes.push_back(resolveTypeRef(PD.Type));
      PI.RetType =
          P->RetType ? resolveTypeRef(*P->RetType) : Type::voidType();
      PI.FrameSize =
          static_cast<int>(P->Params.size() + P->Locals.size());
      Info.Procs[P.get()] = std::move(PI);
      if (P->Pragma.Kind == ProcPragma::Cached && !P->RetType)
        Diags.error(P->Loc,
                    "cached procedure '" + P->Name + "' must return a value");
      if (P->Pragma.Kind == ProcPragma::Maintained)
        Diags.error(P->Loc, "(*MAINTAINED*) belongs on method bindings; use "
                            "(*CACHED*) for procedures");
    }
    for (auto &P : M.Procs)
      checkProcBody(P.get());
  }

  void checkProcBody(ProcDecl *P) {
    CurrentProc = P;
    CurrentInfo = &Info.Procs[P];
    Scopes.clear();
    Scopes.emplace_back();
    int Slot = 0;
    for (size_t I = 0; I < P->Params.size(); ++I) {
      declare(P->Params[I].Name, P->Params[I].Loc,
              VarInfo{NameBinding::Param, Slot++,
                      CurrentInfo->ParamTypes[I]});
    }
    for (LocalDecl &L : P->Locals) {
      Type Ty = resolveTypeRef(L.Type);
      CurrentInfo->LocalTypes.push_back(Ty);
      if (L.Init) {
        Type Got = checkExpr(L.Init.get());
        if (!isAssignable(Ty, Got))
          Diags.error(L.Loc, "cannot initialize " + Ty.str() + " local '" +
                                 L.Name + "' with " + Got.str());
      }
      declare(L.Name, L.Loc, VarInfo{NameBinding::Local, Slot++, Ty});
    }
    checkStmts(P->Body);
    Scopes.clear();
    CurrentProc = nullptr;
    CurrentInfo = nullptr;
  }

  void declare(const std::string &Name, SourceLocation Loc, VarInfo V) {
    auto &Scope = Scopes.back();
    if (Scope.count(Name)) {
      Diags.error(Loc, "redeclaration of '" + Name + "'");
      return;
    }
    Scope[Name] = V;
  }

  const VarInfo *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    auto Found = GlobalScope.find(Name);
    return Found == GlobalScope.end() ? nullptr : &Found->second;
  }

  void checkStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      checkStmt(S.get());
  }

  void checkStmt(Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Assign: {
      auto *A = static_cast<AssignStmt *>(S);
      Type TargetTy = checkExpr(A->Target.get());
      if (A->Target->Kind != ExprKind::NameRef &&
          A->Target->Kind != ExprKind::FieldAccess)
        Diags.error(A->Loc, "assignment target must be a variable or field");
      Type Got = checkExpr(A->Value.get());
      if (!isAssignable(TargetTy, Got))
        Diags.error(A->Loc, "cannot assign " + Got.str() + " to " +
                                TargetTy.str());
      return;
    }
    case StmtKind::If: {
      auto *I = static_cast<IfStmt *>(S);
      for (IfStmt::Arm &Arm : I->Arms) {
        requireType(Arm.Cond.get(), Type::boolean(), "IF condition");
        checkStmts(Arm.Body);
      }
      checkStmts(I->ElseBody);
      return;
    }
    case StmtKind::While: {
      auto *W = static_cast<WhileStmt *>(S);
      requireType(W->Cond.get(), Type::boolean(), "WHILE condition");
      checkStmts(W->Body);
      return;
    }
    case StmtKind::For: {
      auto *F = static_cast<ForStmt *>(S);
      requireType(F->From.get(), Type::integer(), "FOR lower bound");
      requireType(F->To.get(), Type::integer(), "FOR upper bound");
      F->VarIndex = CurrentInfo->FrameSize++;
      Scopes.emplace_back();
      declare(F->Var, F->Loc,
              VarInfo{NameBinding::Local, F->VarIndex, Type::integer()});
      checkStmts(F->Body);
      Scopes.pop_back();
      return;
    }
    case StmtKind::Return: {
      auto *R = static_cast<ReturnStmt *>(S);
      Type Want = CurrentInfo->RetType;
      if (!R->Value) {
        if (!(Want == Type::voidType()))
          Diags.error(R->Loc, "RETURN needs a value of type " + Want.str());
        return;
      }
      Type Got = checkExpr(R->Value.get());
      if (Want == Type::voidType())
        Diags.error(R->Loc, "procedure '" + CurrentProc->Name +
                                "' does not return a value");
      else if (!isAssignable(Want, Got))
        Diags.error(R->Loc,
                    "cannot return " + Got.str() + " from a procedure of "
                    "type " + Want.str());
      return;
    }
    case StmtKind::Expr: {
      auto *E = static_cast<ExprStmt *>(S);
      checkExpr(E->E.get());
      return;
    }
    }
  }

  void requireType(Expr *E, Type Want, const char *What) {
    Type Got = checkExpr(E);
    if (!(Got == Want))
      Diags.error(E->Loc, std::string(What) + " must be " + Want.str() +
                              ", found " + Got.str());
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Type checkExpr(Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit:
      return Type::integer();
    case ExprKind::BoolLit:
      return Type::boolean();
    case ExprKind::TextLit:
      return Type::text();
    case ExprKind::NilLit:
      return Type::nil();
    case ExprKind::NameRef: {
      auto *N = static_cast<NameRefExpr *>(E);
      const VarInfo *V = lookup(N->Name);
      if (!V) {
        Diags.error(N->Loc, "unknown variable '" + N->Name + "'");
        return Type::integer();
      }
      N->Binding = V->Binding;
      N->Index = V->Index;
      return V->Ty;
    }
    case ExprKind::FieldAccess: {
      auto *F = static_cast<FieldAccessExpr *>(E);
      Type Base = checkExpr(F->Base.get());
      if (!Base.isObject()) {
        Diags.error(F->Loc, "field access on non-object type " + Base.str());
        return Type::integer();
      }
      const FieldInfo *FI = Base.Obj->findField(F->Field);
      if (!FI) {
        Diags.error(F->Loc, "type '" + Base.Obj->Name + "' has no field '" +
                                F->Field + "'");
        return Type::integer();
      }
      F->FieldIndex = FI->Index;
      return FI->Ty;
    }
    case ExprKind::Call:
      return checkCall(static_cast<CallExpr *>(E));
    case ExprKind::MethodCall:
      return checkMethodCall(static_cast<MethodCallExpr *>(E));
    case ExprKind::New: {
      auto *N = static_cast<NewExpr *>(E);
      const ObjectTypeInfo *T = Info.lookupType(N->TypeName);
      if (!T) {
        Diags.error(N->Loc, "NEW of unknown type '" + N->TypeName + "'");
        return Type::integer();
      }
      N->Resolved = T;
      return Type::object(T);
    }
    case ExprKind::Binary:
      return checkBinary(static_cast<BinaryExpr *>(E));
    case ExprKind::Unary: {
      auto *U = static_cast<UnaryExpr *>(E);
      if (U->Op == UnaryOp::Neg) {
        requireType(U->Sub.get(), Type::integer(), "operand of unary '-'");
        return Type::integer();
      }
      requireType(U->Sub.get(), Type::boolean(), "operand of NOT");
      return Type::boolean();
    }
    case ExprKind::Unchecked: {
      auto *U = static_cast<UncheckedExpr *>(E);
      return checkExpr(U->Sub.get());
    }
    }
    return Type::voidType();
  }

  Type checkCall(CallExpr *C) {
    // Builtins first.
    if (C->Callee == "print" || C->Callee == "fmt") {
      if (C->Args.size() != 1) {
        Diags.error(C->Loc, "'" + C->Callee + "' takes one argument");
        return C->Callee == "fmt" ? Type::text() : Type::voidType();
      }
      Type Got = checkExpr(C->Args[0].get());
      if (Got == Type::voidType())
        Diags.error(C->Loc, "cannot pass a void value");
      C->BuiltinIndex = static_cast<int>(
          C->Callee == "print" ? Builtin::Print : Builtin::Fmt);
      return C->Callee == "fmt" ? Type::text() : Type::voidType();
    }
    if (C->Callee == "max" || C->Callee == "min") {
      if (C->Args.size() != 2) {
        Diags.error(C->Loc, "'" + C->Callee + "' takes two arguments");
        return Type::integer();
      }
      requireType(C->Args[0].get(), Type::integer(), "argument");
      requireType(C->Args[1].get(), Type::integer(), "argument");
      C->BuiltinIndex = static_cast<int>(
          C->Callee == "max" ? Builtin::Max : Builtin::Min);
      return Type::integer();
    }
    if (C->Callee == "abs") {
      if (C->Args.size() != 1) {
        Diags.error(C->Loc, "'abs' takes one argument");
        return Type::integer();
      }
      requireType(C->Args[0].get(), Type::integer(), "argument");
      C->BuiltinIndex = static_cast<int>(Builtin::Abs);
      return Type::integer();
    }
    if (C->Callee == "pause") {
      // A stand-in for blocking external work (a backend fetch, an RPC):
      // sleeps the calling thread, touches no program state, so bodies
      // using it stay side-effect-free for the bytecode parallel analysis.
      if (C->Args.size() != 1) {
        Diags.error(C->Loc, "'pause' takes one argument");
        return Type::voidType();
      }
      requireType(C->Args[0].get(), Type::integer(), "argument");
      C->BuiltinIndex = static_cast<int>(Builtin::Pause);
      return Type::voidType();
    }
    ProcDecl *Callee = M.findProc(C->Callee);
    if (!Callee) {
      Diags.error(C->Loc, "unknown procedure '" + C->Callee + "'");
      for (ExprPtr &A : C->Args)
        checkExpr(A.get());
      return Type::integer();
    }
    C->Resolved = Callee;
    const ProcInfo &PI = Info.Procs[Callee];
    if (C->Args.size() != PI.ParamTypes.size()) {
      Diags.error(C->Loc, "'" + C->Callee + "' takes " +
                              std::to_string(PI.ParamTypes.size()) +
                              " arguments, got " +
                              std::to_string(C->Args.size()));
    }
    for (size_t I = 0; I < C->Args.size(); ++I) {
      Type Got = checkExpr(C->Args[I].get());
      if (I < PI.ParamTypes.size() && !isAssignable(PI.ParamTypes[I], Got))
        Diags.error(C->Args[I]->Loc,
                    "argument " + std::to_string(I + 1) + " of '" +
                        C->Callee + "' has type " + Got.str() +
                        " but the parameter is " + PI.ParamTypes[I].str());
    }
    return PI.RetType;
  }

  Type checkMethodCall(MethodCallExpr *C) {
    Type Base = checkExpr(C->Base.get());
    if (!Base.isObject()) {
      Diags.error(C->Loc, "method call on non-object type " + Base.str());
      for (ExprPtr &A : C->Args)
        checkExpr(A.get());
      return Type::integer();
    }
    const MethodSig *Sig = Base.Obj->findMethod(C->Method);
    if (!Sig) {
      Diags.error(C->Loc, "type '" + Base.Obj->Name + "' has no method '" +
                              C->Method + "'");
      for (ExprPtr &A : C->Args)
        checkExpr(A.get());
      return Type::integer();
    }
    C->MethodSlot = Sig->Slot;
    if (C->Args.size() != Sig->ParamTypes.size())
      Diags.error(C->Loc, "method '" + C->Method + "' takes " +
                              std::to_string(Sig->ParamTypes.size()) +
                              " arguments, got " +
                              std::to_string(C->Args.size()));
    for (size_t I = 0; I < C->Args.size(); ++I) {
      Type Got = checkExpr(C->Args[I].get());
      if (I < Sig->ParamTypes.size() &&
          !isAssignable(Sig->ParamTypes[I], Got))
        Diags.error(C->Args[I]->Loc,
                    "argument " + std::to_string(I + 1) + " of method '" +
                        C->Method + "' has type " + Got.str() +
                        " but the parameter is " + Sig->ParamTypes[I].str());
    }
    return Sig->RetType;
  }

  Type checkBinary(BinaryExpr *B) {
    switch (B->Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      requireType(B->Lhs.get(), Type::integer(), "arithmetic operand");
      requireType(B->Rhs.get(), Type::integer(), "arithmetic operand");
      return Type::integer();
    case BinaryOp::Concat:
      requireType(B->Lhs.get(), Type::text(), "'&' operand");
      requireType(B->Rhs.get(), Type::text(), "'&' operand");
      return Type::text();
    case BinaryOp::And:
    case BinaryOp::Or:
      requireType(B->Lhs.get(), Type::boolean(), "boolean operand");
      requireType(B->Rhs.get(), Type::boolean(), "boolean operand");
      return Type::boolean();
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      requireType(B->Lhs.get(), Type::integer(), "comparison operand");
      requireType(B->Rhs.get(), Type::integer(), "comparison operand");
      return Type::boolean();
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      Type L = checkExpr(B->Lhs.get());
      Type R = checkExpr(B->Rhs.get());
      bool Ok = (L == R && !(L == Type::voidType())) ||
                (L.isNilOrObject() && R.isNilOrObject());
      if (!Ok)
        Diags.error(B->Loc, "cannot compare " + L.str() + " with " +
                                R.str());
      return Type::boolean();
    }
    }
    return Type::voidType();
  }

  //===--------------------------------------------------------------------===//
  // Helpers
  //===--------------------------------------------------------------------===//

  Type resolveTypeRef(const TypeRef &T) {
    if (T.Name == "INTEGER")
      return Type::integer();
    if (T.Name == "BOOLEAN")
      return Type::boolean();
    if (T.Name == "TEXT")
      return Type::text();
    if (const ObjectTypeInfo *O = Info.lookupType(T.Name))
      return Type::object(O);
    Diags.error(T.Loc, "unknown type '" + T.Name + "'");
    return Type::integer();
  }

  Module &M;
  DiagnosticEngine &Diags;
  SemaInfo Info;

  std::unordered_map<std::string, TypeDecl *> DeclByName;
  std::unordered_set<const ObjectTypeInfo *> Finalized;
  std::unordered_set<const ObjectTypeInfo *> InProgress;

  std::unordered_map<std::string, VarInfo> GlobalScope;
  std::vector<std::unordered_map<std::string, VarInfo>> Scopes;
  ProcDecl *CurrentProc = nullptr;
  ProcInfo *CurrentInfo = nullptr;
};

} // namespace

SemaInfo analyze(Module &M, DiagnosticEngine &Diags) {
  SemaContext Ctx(M, Diags);
  return Ctx.run();
}

} // namespace alphonse::lang
