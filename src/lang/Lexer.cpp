//===- Lexer.cpp - Alphonse-L lexer ----------------------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

namespace alphonse::lang {

const char *tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::End:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::TextLiteral:
    return "text literal";
  case TokenKind::Pragma:
    return "pragma";
  case TokenKind::KwType:
    return "'TYPE'";
  case TokenKind::KwObject:
    return "'OBJECT'";
  case TokenKind::KwMethods:
    return "'METHODS'";
  case TokenKind::KwOverrides:
    return "'OVERRIDES'";
  case TokenKind::KwEnd:
    return "'END'";
  case TokenKind::KwVar:
    return "'VAR'";
  case TokenKind::KwProcedure:
    return "'PROCEDURE'";
  case TokenKind::KwBegin:
    return "'BEGIN'";
  case TokenKind::KwReturn:
    return "'RETURN'";
  case TokenKind::KwIf:
    return "'IF'";
  case TokenKind::KwThen:
    return "'THEN'";
  case TokenKind::KwElsif:
    return "'ELSIF'";
  case TokenKind::KwElse:
    return "'ELSE'";
  case TokenKind::KwWhile:
    return "'WHILE'";
  case TokenKind::KwDo:
    return "'DO'";
  case TokenKind::KwFor:
    return "'FOR'";
  case TokenKind::KwTo:
    return "'TO'";
  case TokenKind::KwNew:
    return "'NEW'";
  case TokenKind::KwNil:
    return "'NIL'";
  case TokenKind::KwTrue:
    return "'TRUE'";
  case TokenKind::KwFalse:
    return "'FALSE'";
  case TokenKind::KwAnd:
    return "'AND'";
  case TokenKind::KwOr:
    return "'OR'";
  case TokenKind::KwNot:
    return "'NOT'";
  case TokenKind::KwDiv:
    return "'DIV'";
  case TokenKind::KwMod:
    return "'MOD'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::NotEqual:
    return "'#'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Ampersand:
    return "'&'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  }
  return "unknown token";
}

static const std::unordered_map<std::string, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string, TokenKind> Table = {
      {"TYPE", TokenKind::KwType},           {"OBJECT", TokenKind::KwObject},
      {"METHODS", TokenKind::KwMethods},     {"OVERRIDES", TokenKind::KwOverrides},
      {"END", TokenKind::KwEnd},             {"VAR", TokenKind::KwVar},
      {"PROCEDURE", TokenKind::KwProcedure}, {"BEGIN", TokenKind::KwBegin},
      {"RETURN", TokenKind::KwReturn},       {"IF", TokenKind::KwIf},
      {"THEN", TokenKind::KwThen},           {"ELSIF", TokenKind::KwElsif},
      {"ELSE", TokenKind::KwElse},           {"WHILE", TokenKind::KwWhile},
      {"DO", TokenKind::KwDo},               {"FOR", TokenKind::KwFor},
      {"TO", TokenKind::KwTo},               {"NEW", TokenKind::KwNew},
      {"NIL", TokenKind::KwNil},             {"TRUE", TokenKind::KwTrue},
      {"FALSE", TokenKind::KwFalse},         {"AND", TokenKind::KwAnd},
      {"OR", TokenKind::KwOr},               {"NOT", TokenKind::KwNot},
      {"DIV", TokenKind::KwDiv},             {"MOD", TokenKind::KwMod},
  };
  return Table;
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespace() {
  while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
    advance();
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  SourceLocation Loc = here();
  std::string Word;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    Word.push_back(advance());
  auto It = keywordTable().find(Word);
  if (It != keywordTable().end())
    return makeToken(It->second, Loc, Word);
  return makeToken(TokenKind::Identifier, Loc, Word);
}

Token Lexer::lexNumber() {
  SourceLocation Loc = here();
  std::string Digits;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Digits.push_back(advance());
  Token T = makeToken(TokenKind::IntLiteral, Loc, Digits);
  T.IntValue = std::stol(Digits);
  return T;
}

Token Lexer::lexText() {
  SourceLocation Loc = here();
  advance(); // Opening quote.
  std::string Body;
  while (!atEnd() && peek() != '"') {
    if (peek() == '\n') {
      Diags.error(Loc, "unterminated text literal");
      return makeToken(TokenKind::Error, Loc);
    }
    Body.push_back(advance());
  }
  if (atEnd()) {
    Diags.error(Loc, "unterminated text literal");
    return makeToken(TokenKind::Error, Loc);
  }
  advance(); // Closing quote.
  return makeToken(TokenKind::TextLiteral, Loc, Body);
}

bool Lexer::lexCommentOrPragma(Token &Out) {
  SourceLocation Loc = here();
  advance(); // '('
  advance(); // '*'
  std::string Body;
  int Depth = 1;
  while (!atEnd() && Depth > 0) {
    if (peek() == '(' && peek(1) == '*') {
      ++Depth;
      Body.push_back(advance());
      Body.push_back(advance());
      continue;
    }
    if (peek() == '*' && peek(1) == ')') {
      --Depth;
      advance();
      advance();
      if (Depth > 0) {
        Body += "*)";
      }
      continue;
    }
    Body.push_back(advance());
  }
  if (Depth > 0) {
    Diags.error(Loc, "unterminated comment");
    Out = makeToken(TokenKind::Error, Loc);
    return true;
  }
  // Trim and decide: pragma keywords start the body.
  size_t Begin = Body.find_first_not_of(" \t\r\n");
  if (Begin == std::string::npos)
    return false; // Pure comment.
  size_t Finish = Body.find_last_not_of(" \t\r\n");
  std::string Trimmed = Body.substr(Begin, Finish - Begin + 1);
  std::string FirstWord = Trimmed.substr(0, Trimmed.find_first_of(" \t"));
  if (FirstWord == "MAINTAINED" || FirstWord == "CACHED" ||
      FirstWord == "UNCHECKED") {
    Out = makeToken(TokenKind::Pragma, Loc, Trimmed);
    return true;
  }
  return false; // Ordinary comment: skip.
}

std::vector<Token> Lexer::run() {
  std::vector<Token> Tokens;
  while (true) {
    skipWhitespace();
    if (atEnd()) {
      Tokens.push_back(makeToken(TokenKind::End, here()));
      return Tokens;
    }
    SourceLocation Loc = here();
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Tokens.push_back(lexIdentifierOrKeyword());
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Tokens.push_back(lexNumber());
      continue;
    }
    if (C == '"') {
      Tokens.push_back(lexText());
      continue;
    }
    if (C == '(' && peek(1) == '*') {
      Token Pragma;
      if (lexCommentOrPragma(Pragma))
        Tokens.push_back(Pragma);
      continue;
    }
    advance();
    switch (C) {
    case ':':
      if (peek() == '=') {
        advance();
        Tokens.push_back(makeToken(TokenKind::Assign, Loc, ":="));
      } else {
        Tokens.push_back(makeToken(TokenKind::Colon, Loc, ":"));
      }
      break;
    case '<':
      if (peek() == '=') {
        advance();
        Tokens.push_back(makeToken(TokenKind::LessEq, Loc, "<="));
      } else {
        Tokens.push_back(makeToken(TokenKind::Less, Loc, "<"));
      }
      break;
    case '>':
      if (peek() == '=') {
        advance();
        Tokens.push_back(makeToken(TokenKind::GreaterEq, Loc, ">="));
      } else {
        Tokens.push_back(makeToken(TokenKind::Greater, Loc, ">"));
      }
      break;
    case '=':
      Tokens.push_back(makeToken(TokenKind::Equal, Loc, "="));
      break;
    case '#':
      Tokens.push_back(makeToken(TokenKind::NotEqual, Loc, "#"));
      break;
    case '+':
      Tokens.push_back(makeToken(TokenKind::Plus, Loc, "+"));
      break;
    case '-':
      Tokens.push_back(makeToken(TokenKind::Minus, Loc, "-"));
      break;
    case '*':
      Tokens.push_back(makeToken(TokenKind::Star, Loc, "*"));
      break;
    case '&':
      Tokens.push_back(makeToken(TokenKind::Ampersand, Loc, "&"));
      break;
    case '(':
      Tokens.push_back(makeToken(TokenKind::LParen, Loc, "("));
      break;
    case ')':
      Tokens.push_back(makeToken(TokenKind::RParen, Loc, ")"));
      break;
    case ';':
      Tokens.push_back(makeToken(TokenKind::Semicolon, Loc, ";"));
      break;
    case ',':
      Tokens.push_back(makeToken(TokenKind::Comma, Loc, ","));
      break;
    case '.':
      Tokens.push_back(makeToken(TokenKind::Dot, Loc, "."));
      break;
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      Tokens.push_back(makeToken(TokenKind::Error, Loc));
      break;
    }
  }
}

} // namespace alphonse::lang
