//===- Token.h - Alphonse-L tokens ------------------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of Alphonse-L, the Modula-3-like base language of the paper
/// (Section 3; "This is Modula-3 [Nel91]"). Pragmas arrive as tokens of
/// their own: the paper denotes them (*PRAGMA NAME AND ARGUMENTS*), while
/// ordinary (* ... *) comments are skipped by the lexer.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_LANG_TOKEN_H
#define ALPHONSE_LANG_TOKEN_H

#include "support/SourceLocation.h"

#include <cstdint>
#include <string>

namespace alphonse::lang {

/// Token kinds. Keywords follow Modula-3 spelling (upper case).
enum class TokenKind : uint8_t {
  End, // End of input.
  Error,

  Identifier,
  IntLiteral,
  TextLiteral,
  Pragma, // (*MAINTAINED*), (*CACHED EAGER*), (*UNCHECKED*), ...

  // Keywords.
  KwType,
  KwObject,
  KwMethods,
  KwOverrides,
  KwEnd,
  KwVar,
  KwProcedure,
  KwBegin,
  KwReturn,
  KwIf,
  KwThen,
  KwElsif,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwTo,
  KwNew,
  KwNil,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  KwDiv,
  KwMod,

  // Punctuation and operators.
  Assign,    // :=
  Equal,     // =
  NotEqual,  // #
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  Plus,      // +
  Minus,     // -
  Star,      // *
  Ampersand, // & (TEXT concatenation)
  LParen,    // (
  RParen,    // )
  Semicolon, // ;
  Colon,     // :
  Comma,     // ,
  Dot,       // .
};

/// Returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text holds the identifier spelling, literal value, or
/// pragma body (trimmed, without the (* *) brackets).
struct Token {
  TokenKind Kind = TokenKind::End;
  SourceLocation Loc;
  std::string Text;
  long IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace alphonse::lang

#endif // ALPHONSE_LANG_TOKEN_H
