//===- StaticRefSets.cpp - Static referenced-argument analysis ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/StaticRefSets.h"

#include <unordered_set>

using namespace alphonse::lang;

namespace alphonse::transform {

namespace {

/// The "unbounded" sentinel for bounds arithmetic.
constexpr int Unbounded = -1;

int addBounds(int A, int B) {
  if (A == Unbounded || B == Unbounded)
    return Unbounded;
  return A + B;
}

class Analyzer {
public:
  Analyzer(const Module &M, const SemaInfo &Info) : M(M), Info(Info) {
    // Whole-program view of method bindings by name, for dispatch sites.
    for (const auto &T : Info.Types)
      for (const MethodImpl &MI : T->VTable)
        if (MI.Impl)
          MethodBindings[MI.Sig->Name].push_back(&MI);
  }

  StaticRefSetResult run() {
    StaticRefSetResult R;
    for (const auto &P : M.Procs) {
      int Bound = boundOf(P.get());
      RefSetInfo RI;
      RI.IsStatic = Bound != Unbounded;
      RI.Bound = RI.IsStatic ? Bound : 0;
      R.Procs[P.get()] = RI;
    }
    return R;
  }

private:
  /// Memoized per-procedure bound, with an in-progress marker so direct
  /// or mutual recursion resolves to Unbounded.
  int boundOf(const ProcDecl *P) {
    auto It = Memo.find(P);
    if (It != Memo.end())
      return It->second;
    if (!InProgress.insert(P).second)
      return Unbounded; // Recursion: the set can grow with the data.
    int Bound = 0;
    for (const LocalDecl &L : P->Locals)
      if (L.Init)
        Bound = addBounds(Bound, exprBound(L.Init.get()));
    for (const StmtPtr &S : P->Body) {
      Bound = addBounds(Bound, stmtBound(S.get()));
      if (Bound == Unbounded)
        break;
    }
    InProgress.erase(P);
    Memo[P] = Bound;
    return Bound;
  }

  int stmtBound(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Assign: {
      const auto *A = static_cast<const AssignStmt *>(S);
      int Bound = exprBound(A->Value.get());
      // A tracked write contributes the location itself (modify begins
      // with access), plus the base read for field targets.
      if (A->Target->Kind == ExprKind::FieldAccess) {
        const auto *F = static_cast<const FieldAccessExpr *>(A->Target.get());
        Bound = addBounds(Bound, addBounds(exprBound(F->Base.get()), 1));
      } else {
        const auto *N = static_cast<const NameRefExpr *>(A->Target.get());
        if (N->Binding == NameBinding::Global)
          Bound = addBounds(Bound, 1);
      }
      return Bound;
    }
    case StmtKind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      // Branches may both run across re-executions; sum is a safe bound.
      int Bound = 0;
      for (const IfStmt::Arm &Arm : I->Arms) {
        Bound = addBounds(Bound, exprBound(Arm.Cond.get()));
        for (const StmtPtr &B : Arm.Body)
          Bound = addBounds(Bound, stmtBound(B.get()));
      }
      for (const StmtPtr &B : I->ElseBody)
        Bound = addBounds(Bound, stmtBound(B.get()));
      return Bound;
    }
    case StmtKind::While:
    case StmtKind::For:
      return Unbounded; // Data-dependent iteration count.
    case StmtKind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      return R->Value ? exprBound(R->Value.get()) : 0;
    }
    case StmtKind::Expr:
      return exprBound(static_cast<const ExprStmt *>(S)->E.get());
    }
    return Unbounded;
  }

  int exprBound(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::TextLit:
    case ExprKind::NilLit:
    case ExprKind::New:
      return 0;
    case ExprKind::NameRef: {
      const auto *N = static_cast<const NameRefExpr *>(E);
      return N->Binding == NameBinding::Global ? 1 : 0;
    }
    case ExprKind::FieldAccess: {
      const auto *F = static_cast<const FieldAccessExpr *>(E);
      return addBounds(exprBound(F->Base.get()), 1);
    }
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      int Bound = 0;
      for (const ExprPtr &A : C->Args)
        Bound = addBounds(Bound, exprBound(A.get()));
      if (C->BuiltinIndex >= 0)
        return Bound; // Builtins reference nothing.
      if (!C->Resolved)
        return Unbounded;
      if (C->Resolved->Pragma.Kind == ProcPragma::Cached)
        return addBounds(Bound, 1); // One edge to the cached instance.
      return addBounds(Bound, boundOf(C->Resolved)); // Inlined refs.
    }
    case ExprKind::MethodCall: {
      const auto *C = static_cast<const MethodCallExpr *>(E);
      int Bound = exprBound(C->Base.get());
      for (const ExprPtr &A : C->Args)
        Bound = addBounds(Bound, exprBound(A.get()));
      // Dynamic dispatch: consider every whole-program binding of this
      // method name. Incremental bindings cost one edge; conventional
      // bindings inline.
      auto It = MethodBindings.find(C->Method);
      if (It == MethodBindings.end())
        return Unbounded;
      int Worst = 0;
      for (const MethodImpl *MI : It->second) {
        int One = (MI->Pragma.Kind == ProcPragma::Maintained)
                      ? 1
                      : boundOf(MI->Impl);
        if (One == Unbounded)
          return Unbounded;
        Worst = std::max(Worst, One);
      }
      return addBounds(Bound, Worst);
    }
    case ExprKind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      return addBounds(exprBound(B->Lhs.get()), exprBound(B->Rhs.get()));
    }
    case ExprKind::Unary:
      return exprBound(static_cast<const UnaryExpr *>(E)->Sub.get());
    case ExprKind::Unchecked:
      return 0; // Section 6.4: these references are never recorded.
    }
    return Unbounded;
  }

  const Module &M;
  const SemaInfo &Info;
  std::unordered_map<std::string, std::vector<const MethodImpl *>>
      MethodBindings;
  std::unordered_map<const ProcDecl *, int> Memo;
  std::unordered_set<const ProcDecl *> InProgress;
};

} // namespace

StaticRefSetResult analyzeStaticRefSets(const Module &M,
                                        const SemaInfo &Info) {
  Analyzer A(M, Info);
  return A.run();
}

} // namespace alphonse::transform
