//===- StaticRefSets.cpp - Static referenced-argument analysis ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/StaticRefSets.h"

#include <unordered_set>

using namespace alphonse::lang;

namespace alphonse::transform {

namespace {

/// The "unbounded" sentinel for bounds arithmetic.
constexpr int Unbounded = -1;

int addBounds(int A, int B) {
  if (A == Unbounded || B == Unbounded)
    return Unbounded;
  return A + B;
}

class Analyzer {
public:
  Analyzer(const Module &M, const SemaInfo &Info) : M(M), Info(Info) {
    // Whole-program view of method bindings by name, for dispatch sites.
    for (const auto &T : Info.Types)
      for (const MethodImpl &MI : T->VTable)
        if (MI.Impl)
          MethodBindings[MI.Sig->Name].push_back(&MI);
  }

  StaticRefSetResult run() {
    StaticRefSetResult R;
    for (const auto &P : M.Procs) {
      int Bound = boundOf(P.get());
      RefSetInfo RI;
      RI.IsStatic = Bound != Unbounded;
      RI.Bound = RI.IsStatic ? Bound : 0;
      RI.Widened = RI.IsStatic ? WidenReason::None : Reasons[P.get()];
      R.Procs[P.get()] = RI;
    }
    return R;
  }

private:
  /// Memoized per-procedure bound, with an in-progress marker so direct
  /// or mutual recursion widens to Unbounded. Each in-flight procedure
  /// keeps a frame recording the first cause of widening; the cause is
  /// stored alongside the memoized bound so callers can surface *why* a
  /// procedure fell back to the dynamic path.
  int boundOf(const ProcDecl *P) {
    auto It = Memo.find(P);
    if (It != Memo.end()) {
      if (It->second == Unbounded)
        widen(Reasons[P]); // Propagate the callee's cause into the caller.
      return It->second;
    }
    if (!InProgress.insert(P).second)
      return widen(WidenReason::Recursion); // Cycle through the call graph.
    WidenReason Cause = WidenReason::None;
    Frames.push_back(&Cause);
    int Bound = 0;
    for (const LocalDecl &L : P->Locals)
      if (L.Init)
        Bound = addBounds(Bound, exprBound(L.Init.get()));
    for (const StmtPtr &S : P->Body) {
      Bound = addBounds(Bound, stmtBound(S.get()));
      if (Bound == Unbounded)
        break;
    }
    Frames.pop_back();
    InProgress.erase(P);
    Memo[P] = Bound;
    if (Bound == Unbounded) {
      Reasons[P] = Cause;
      widen(Cause); // A widened inlinee widens its caller too.
    }
    return Bound;
  }

  /// Records \p R as the current procedure's widening cause (first cause
  /// wins) and returns the Unbounded sentinel.
  int widen(WidenReason R) {
    if (!Frames.empty() && *Frames.back() == WidenReason::None)
      *Frames.back() = R;
    return Unbounded;
  }

  int stmtBound(const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Assign: {
      const auto *A = static_cast<const AssignStmt *>(S);
      int Bound = exprBound(A->Value.get());
      // A tracked write contributes the location itself (modify begins
      // with access), plus the base read for field targets.
      if (A->Target->Kind == ExprKind::FieldAccess) {
        const auto *F = static_cast<const FieldAccessExpr *>(A->Target.get());
        Bound = addBounds(Bound, addBounds(exprBound(F->Base.get()), 1));
      } else {
        const auto *N = static_cast<const NameRefExpr *>(A->Target.get());
        if (N->Binding == NameBinding::Global)
          Bound = addBounds(Bound, 1);
      }
      return Bound;
    }
    case StmtKind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      // Branches may both run across re-executions; sum is a safe bound.
      int Bound = 0;
      for (const IfStmt::Arm &Arm : I->Arms) {
        Bound = addBounds(Bound, exprBound(Arm.Cond.get()));
        for (const StmtPtr &B : Arm.Body)
          Bound = addBounds(Bound, stmtBound(B.get()));
      }
      for (const StmtPtr &B : I->ElseBody)
        Bound = addBounds(Bound, stmtBound(B.get()));
      return Bound;
    }
    case StmtKind::While:
    case StmtKind::For:
      return widen(WidenReason::Loop); // Data-dependent iteration count.
    case StmtKind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      return R->Value ? exprBound(R->Value.get()) : 0;
    }
    case StmtKind::Expr:
      return exprBound(static_cast<const ExprStmt *>(S)->E.get());
    }
    return widen(WidenReason::UnresolvedCall);
  }

  int exprBound(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::TextLit:
    case ExprKind::NilLit:
    case ExprKind::New:
      return 0;
    case ExprKind::NameRef: {
      const auto *N = static_cast<const NameRefExpr *>(E);
      return N->Binding == NameBinding::Global ? 1 : 0;
    }
    case ExprKind::FieldAccess: {
      const auto *F = static_cast<const FieldAccessExpr *>(E);
      return addBounds(exprBound(F->Base.get()), 1);
    }
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      int Bound = 0;
      for (const ExprPtr &A : C->Args)
        Bound = addBounds(Bound, exprBound(A.get()));
      if (C->BuiltinIndex >= 0)
        return Bound; // Builtins reference nothing.
      if (!C->Resolved)
        return widen(WidenReason::UnresolvedCall);
      if (C->Resolved->Pragma.Kind == ProcPragma::Cached)
        return addBounds(Bound, 1); // One edge to the cached instance.
      return addBounds(Bound, boundOf(C->Resolved)); // Inlined refs.
    }
    case ExprKind::MethodCall: {
      const auto *C = static_cast<const MethodCallExpr *>(E);
      int Bound = exprBound(C->Base.get());
      for (const ExprPtr &A : C->Args)
        Bound = addBounds(Bound, exprBound(A.get()));
      // Dynamic dispatch: consider every whole-program binding of this
      // method name. Incremental bindings cost one edge; conventional
      // bindings inline.
      auto It = MethodBindings.find(C->Method);
      if (It == MethodBindings.end())
        return widen(WidenReason::OpenDispatch); // No binding to bound over.
      int Worst = 0;
      for (const MethodImpl *MI : It->second) {
        int One = (MI->Pragma.Kind == ProcPragma::Maintained)
                      ? 1
                      : boundOf(MI->Impl);
        if (One == Unbounded)
          return Unbounded;
        Worst = std::max(Worst, One);
      }
      return addBounds(Bound, Worst);
    }
    case ExprKind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      return addBounds(exprBound(B->Lhs.get()), exprBound(B->Rhs.get()));
    }
    case ExprKind::Unary:
      return exprBound(static_cast<const UnaryExpr *>(E)->Sub.get());
    case ExprKind::Unchecked:
      return 0; // Section 6.4: these references are never recorded.
    }
    return widen(WidenReason::UnresolvedCall);
  }

  const Module &M;
  const SemaInfo &Info;
  std::unordered_map<std::string, std::vector<const MethodImpl *>>
      MethodBindings;
  std::unordered_map<const ProcDecl *, int> Memo;
  std::unordered_map<const ProcDecl *, WidenReason> Reasons;
  std::unordered_set<const ProcDecl *> InProgress;
  /// Widening-cause frame of each procedure currently being analyzed.
  std::vector<WidenReason *> Frames;
};

} // namespace

const char *widenReasonName(WidenReason R) {
  switch (R) {
  case WidenReason::None:
    return "none";
  case WidenReason::Recursion:
    return "recursion";
  case WidenReason::Loop:
    return "loop";
  case WidenReason::OpenDispatch:
    return "open-dispatch";
  case WidenReason::UnresolvedCall:
    return "unresolved-call";
  }
  return "unknown";
}

StaticRefSetResult analyzeStaticRefSets(const Module &M,
                                        const SemaInfo &Info) {
  Analyzer A(M, Info);
  return A.run();
}

} // namespace alphonse::transform
