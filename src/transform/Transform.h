//===- Transform.h - The Section 5 program transformation -------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Alphonse program transformation (Section 5): rewrites every storage
/// read into access(v), every storage write into modify(l, v), and every
/// procedure/method call into call(p, a1..ak), by setting the
/// corresponding AST flags the interpreter and unparser consume.
///
/// The static optimization of Section 6.1 ("we use dataflow analysis to
/// identify the many variables and procedures where the results of these
/// tests are statically known") is implemented by the default options:
/// locals and parameters are provably non-top-level in Alphonse-L (there
/// are no VAR parameters or pointers to locals), so their accesses are not
/// wrapped, and calls to procedures that can never be incremental are not
/// checked. Turning the options off models the naive transformer, for the
/// E12 ablation.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TRANSFORM_TRANSFORM_H
#define ALPHONSE_TRANSFORM_TRANSFORM_H

#include "lang/Sema.h"

#include <cstdint>

namespace alphonse::transform {

/// Counters describing how much instrumentation the transformation
/// inserted (experiment E12 reports wrapped/total ratios).
struct TransformStats {
  uint64_t ReadsTotal = 0;
  uint64_t ReadsWrapped = 0;
  uint64_t WritesTotal = 0;
  uint64_t WritesWrapped = 0;
  uint64_t CallsTotal = 0;
  uint64_t CallsChecked = 0;
};

struct TransformOptions {
  /// Section 6.1: skip access() on storage statically known to be local.
  bool OptimizeLocalAccesses = true;
  /// Section 6.1: skip call() checks on calls that can never reach an
  /// incremental procedure.
  bool OptimizeCallChecks = true;
};

/// Applies the transformation in place over every procedure body and
/// global initializer of \p M. Idempotent.
TransformStats transform(lang::Module &M, const lang::SemaInfo &Info,
                         TransformOptions Opts = TransformOptions());

} // namespace alphonse::transform

#endif // ALPHONSE_TRANSFORM_TRANSFORM_H
