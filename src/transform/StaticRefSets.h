//===- StaticRefSets.h - Static referenced-argument analysis ----*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.2 of the paper: "As the referenced argument set for many
/// Alphonse procedures is static, the compiler could generate a similar
/// subgraph" — i.e. for procedures whose R(p) has a statically bounded
/// shape, the dependency subgraph could be emitted at compile time like a
/// grammar production's, skipping the dynamic recording overhead.
///
/// This analysis identifies those procedures and computes an upper bound
/// on |R(p)|. The rules mirror the paper's example (R(t.height()) =
/// {t.left, t.left.height(), t.right, t.right.height()} is static even
/// though the *transitive* data is a whole subtree, because calls to
/// incremental procedures terminate the set):
///
///  - reads of locals/parameters contribute nothing;
///  - reads of top-level variables and object fields contribute one
///    element each;
///  - calls to incremental procedures/methods contribute one element;
///  - calls to conventional procedures inline that procedure's own
///    bound (recursion makes the set unbounded);
///  - loops (WHILE/FOR) make the set unbounded.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TRANSFORM_STATICREFSETS_H
#define ALPHONSE_TRANSFORM_STATICREFSETS_H

#include "lang/Sema.h"

#include <unordered_map>

namespace alphonse::transform {

/// Why a procedure's R(p) was widened to unbounded. The analysis must
/// degrade to the dynamic path for these shapes (fixpoint widening, not a
/// silent default): recursion and loops grow the set with the data, and an
/// open method name has no whole-program vtable to bound dispatch over.
enum class WidenReason : uint8_t {
  None,           ///< Not widened: the bound is static.
  Recursion,      ///< Direct or mutual recursion through the call graph.
  Loop,           ///< WHILE/FOR: data-dependent iteration count.
  OpenDispatch,   ///< Method name with no known whole-program binding.
  UnresolvedCall, ///< Call target unknown at analysis time.
};

const char *widenReasonName(WidenReason R);

/// Classification of one procedure's referenced-argument set.
struct RefSetInfo {
  /// True when |R(p)| is bounded by a compile-time constant.
  bool IsStatic = false;
  /// The bound, valid when IsStatic (0 for pure combinators).
  int Bound = 0;
  /// First cause of widening when !IsStatic (None when IsStatic).
  WidenReason Widened = WidenReason::None;
};

/// Per-procedure results; every procedure in the module is classified
/// (incremental or not — conventional procedures matter because their
/// refs inline into incremental callers).
struct StaticRefSetResult {
  std::unordered_map<const lang::ProcDecl *, RefSetInfo> Procs;

  const RefSetInfo *info(const lang::ProcDecl *P) const {
    auto It = Procs.find(P);
    return It == Procs.end() ? nullptr : &It->second;
  }
};

/// Runs the analysis over the whole module.
StaticRefSetResult analyzeStaticRefSets(const lang::Module &M,
                                        const lang::SemaInfo &Info);

} // namespace alphonse::transform

#endif // ALPHONSE_TRANSFORM_STATICREFSETS_H
