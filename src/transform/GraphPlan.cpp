//===- GraphPlan.cpp - Static graph shape emission ------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/GraphPlan.h"

#include <algorithm>

using namespace alphonse::lang;

namespace alphonse::transform {

GraphPlan buildGraphPlan(const Module &M, const SemaInfo &Info) {
  GraphPlan Plan;
  Plan.RefSets = analyzeStaticRefSets(M, Info);
  Plan.GlobalSlots = M.Globals.size();

  // Collect eligible procedures, then assign slots in module declaration
  // order (ProcInfo::DeclIndex) so the plan — and therefore every node id
  // the compiler bakes into bytecode — is deterministic across runs.
  std::vector<const ProcDecl *> Eligible;
  for (const auto &P : M.Procs) {
    if (P->Pragma.Kind != ProcPragma::Cached)
      continue; // Only cached procedures own graph instances.
    if (!P->Params.empty())
      continue; // Parameterized: one instance per argument vector.
    const RefSetInfo *RI = Plan.RefSets.info(P.get());
    if (!RI || !RI->IsStatic)
      continue; // Unbounded R(p): dynamic path.
    Eligible.push_back(P.get());
  }
  std::sort(Eligible.begin(), Eligible.end(),
            [&](const ProcDecl *A, const ProcDecl *B) {
              const ProcInfo *IA = Info.procInfo(A);
              const ProcInfo *IB = Info.procInfo(B);
              return (IA ? IA->DeclIndex : -1) < (IB ? IB->DeclIndex : -1);
            });

  for (const ProcDecl *P : Eligible) {
    PlanInstance PI;
    PI.Proc = P;
    PI.Slot = static_cast<int>(Plan.Instances.size());
    PI.EdgeBound = Plan.RefSets.info(P)->Bound;
    Plan.SlotIndex[P] = PI.Slot;
    Plan.Instances.push_back(PI);
  }
  return Plan;
}

} // namespace alphonse::transform
