//===- Unparser.h - Alphonse-L pretty printer -------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a module back to Alphonse-L source. The paper's implementation
/// works by source-to-source translation (Section 8: "Unparsing the syntax
/// tree will then yield a pure Modula-3 program containing the code
/// fragments of Section 5"); this unparser shows transformed nodes as the
/// inserted operations, exactly like Algorithm 2's example:
///
///   modify(access(p), call(p2, a + access(b) + c, access(access(y))))
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TRANSFORM_UNPARSER_H
#define ALPHONSE_TRANSFORM_UNPARSER_H

#include "lang/AST.h"

#include <string>

namespace alphonse::transform {

/// Renders the whole module (declarations, procedures, bodies).
std::string unparse(const lang::Module &M);

/// Renders one expression (test convenience).
std::string unparseExpr(const lang::Expr &E);

/// Renders one statement at the given indent depth.
std::string unparseStmt(const lang::Stmt &S, int Indent = 0);

} // namespace alphonse::transform

#endif // ALPHONSE_TRANSFORM_UNPARSER_H
