//===- StaticPartition.h - Type-connectivity analysis -----------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static half of the Section 6.3 graph partitioning: "we construct a
/// connectivity graph of types declared by the program ... directed edges
/// are added from C(t1) to C(t2) if t1 has a pointer field that can point
/// to an object of type t2 ... we augment this graph [with] each procedure
/// call site that could be an incremental procedure instance ... The
/// resulting connectivity graph is separated into disconnected
/// components." Dependency-graph nodes are then born into the component of
/// their representative, and the dynamic union-find refinement (already in
/// graph/DepGraph) subdivides further.
///
/// Connectivity here is conservative: field reachability, inheritance
/// (a supertype pointer can reach any subtype), procedure parameter /
/// return / NEW types, and references to top-level variables.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TRANSFORM_STATICPARTITION_H
#define ALPHONSE_TRANSFORM_STATICPARTITION_H

#include "lang/Sema.h"

#include <unordered_map>

namespace alphonse::transform {

/// Component assignment for every type, procedure, and global.
struct StaticPartitionResult {
  int NumComponents = 0;
  std::unordered_map<const lang::ObjectTypeInfo *, int> TypeComponent;
  std::unordered_map<const lang::ProcDecl *, int> ProcComponent;
  /// Keyed by GlobalDecl::Index.
  std::unordered_map<int, int> GlobalComponent;

  /// True when the two procedures land in one component (and hence share
  /// an instance of quiescence propagation).
  bool sameComponent(const lang::ProcDecl *A, const lang::ProcDecl *B) const {
    auto IA = ProcComponent.find(A);
    auto IB = ProcComponent.find(B);
    return IA != ProcComponent.end() && IB != ProcComponent.end() &&
           IA->second == IB->second;
  }
};

/// Computes the static connectivity components of \p M.
StaticPartitionResult computeStaticPartitions(const lang::Module &M,
                                              const lang::SemaInfo &Info);

} // namespace alphonse::transform

#endif // ALPHONSE_TRANSFORM_STATICPARTITION_H
