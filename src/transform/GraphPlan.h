//===- GraphPlan.h - Static graph shape emission ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6.2's static graph construction (DESIGN.md §14): "As the
/// referenced argument set for many Alphonse procedures is static, the
/// compiler could generate a similar subgraph." This pass turns the
/// StaticRefSets classification into a concrete shape table — node
/// templates, argument-table slots, and per-instance edge-adjacency
/// capacity — that the runtime instantiates in bulk into pre-reserved
/// slabs (GraphStore::reserveShape) instead of creating nodes lazily via
/// find-or-emplace on the first call.
///
/// What the plan covers:
///
///  - every top-level variable gets a storage-node template (the global's
///    SlotNode exists before the first tracked read, so trackedRead's
///    lazy-creation branch never fires);
///  - every nullary (*CACHED*) procedure with a bounded R(p) gets exactly
///    one instance template with a compile-time slot id — its single
///    argument-table entry is known at transform time, so the hot-path
///    call resolves to an indexed load with no StateGuard find-or-emplace.
///
/// Parameterized and unbounded-R(p) procedures keep the dynamic path: a
/// parameterized cached procedure's instance set is data-dependent (one
/// node per distinct argument vector), which is exactly the shape the
/// analysis cannot bound.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_TRANSFORM_GRAPHPLAN_H
#define ALPHONSE_TRANSFORM_GRAPHPLAN_H

#include "transform/StaticRefSets.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace alphonse::transform {

/// One statically planned procedure instance (a nullary bounded-R(p)
/// cached procedure has exactly one).
struct PlanInstance {
  const lang::ProcDecl *Proc = nullptr;
  /// Dense compile-time slot id; the runtime's static-instance table is
  /// indexed by this, and the bytecode compiler bakes it into the Chunk
  /// procedure pool (ProcRef::StaticSlot).
  int Slot = -1;
  /// Upper bound on |R(p)|: the edge-adjacency capacity reserved for
  /// this instance's predecessor row.
  int EdgeBound = 0;
};

/// The static shape table for one module: what to instantiate, and how
/// much slab capacity instantiation plus steady-state churn needs. Built
/// once per compile; purely derived state — never persisted (checkpoint
/// restore demolishes and re-instantiates it from the module).
struct GraphPlan {
  /// Global storage-slot templates, by GlobalDecl::Index order. (The
  /// count is all the runtime needs; globals are templated wholesale.)
  size_t GlobalSlots = 0;
  /// Statically planned instances, dense in Slot order (slots follow
  /// ProcInfo::DeclIndex module order, so plans are deterministic).
  std::vector<PlanInstance> Instances;
  /// The full R(p) classification the plan was derived from (kept for
  /// diagnostics and for callers that route unbounded procedures).
  StaticRefSetResult RefSets;

  /// Slot id for \p P, or -1 when it stays on the dynamic path.
  int slotOf(const lang::ProcDecl *P) const {
    auto It = SlotIndex.find(P);
    return It == SlotIndex.end() ? -1 : It->second;
  }

  /// Node slots the instantiation consumes: one per global storage slot
  /// plus one per planned instance.
  size_t nodeCount() const { return GlobalSlots + Instances.size(); }

  /// Edge slots steady-state execution of the planned instances needs:
  /// the sum of the per-instance R(p) bounds.
  size_t edgeCount() const {
    size_t Total = 0;
    for (const PlanInstance &PI : Instances)
      Total += static_cast<size_t>(PI.EdgeBound);
    return Total;
  }

  std::unordered_map<const lang::ProcDecl *, int> SlotIndex;
};

/// Builds the module's static shape table (runs analyzeStaticRefSets
/// internally).
GraphPlan buildGraphPlan(const lang::Module &M, const lang::SemaInfo &Info);

} // namespace alphonse::transform

#endif // ALPHONSE_TRANSFORM_GRAPHPLAN_H
