//===- Unparser.cpp - Alphonse-L pretty printer ---------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/Unparser.h"

#include <cassert>
#include <sstream>

using namespace alphonse::lang;

namespace alphonse::transform {

namespace {

class Printer {
public:
  std::string module(const Module &M) {
    for (const TypeDecl &T : M.Types)
      typeDecl(T);
    if (!M.Globals.empty()) {
      OS << "VAR\n";
      for (const GlobalDecl &G : M.Globals) {
        OS << "  " << G.Name << " : " << G.Type.Name;
        if (G.Init)
          OS << " := " << exprStr(*G.Init);
        OS << ";\n";
      }
      OS << "\n";
    }
    for (const auto &P : M.Procs)
      procDecl(*P);
    return OS.str();
  }

  std::string exprStr(const Expr &E) {
    std::ostringstream Sub;
    printExpr(Sub, E);
    return Sub.str();
  }

  std::string stmtStr(const Stmt &S, int Indent) {
    std::ostringstream Sub;
    printStmt(Sub, S, Indent);
    return Sub.str();
  }

private:
  static const char *pragmaStr(const PragmaInfo &P) {
    if (P.Kind == ProcPragma::Maintained)
      return P.Strategy == EvalStrategy::Eager ? "(*MAINTAINED EAGER*) "
                                               : "(*MAINTAINED*) ";
    if (P.Kind == ProcPragma::Cached)
      return P.Strategy == EvalStrategy::Eager ? "(*CACHED EAGER*) "
                                               : "(*CACHED*) ";
    return "";
  }

  void typeDecl(const TypeDecl &T) {
    OS << "TYPE " << T.Name << " = ";
    if (!T.SuperName.empty())
      OS << T.SuperName << " ";
    OS << "OBJECT\n";
    for (const FieldDecl &F : T.Fields)
      OS << "  " << F.Name << " : " << F.Type.Name << ";\n";
    if (!T.Methods.empty()) {
      OS << "METHODS\n";
      for (const MethodDecl &MD : T.Methods) {
        OS << "  " << pragmaStr(MD.Pragma) << MD.Name << "(";
        for (size_t I = 0; I < MD.Params.size(); ++I) {
          if (I)
            OS << "; ";
          OS << MD.Params[I].Name << " : " << MD.Params[I].Type.Name;
        }
        OS << ")";
        if (MD.RetType)
          OS << " : " << MD.RetType->Name;
        OS << " := " << MD.ImplName << ";\n";
      }
    }
    if (!T.Overrides.empty()) {
      OS << "OVERRIDES\n";
      for (const OverrideDecl &OD : T.Overrides)
        OS << "  " << pragmaStr(OD.Pragma) << OD.Name << " := "
           << OD.ImplName << ";\n";
    }
    OS << "END;\n\n";
  }

  void procDecl(const ProcDecl &P) {
    OS << pragmaStr(P.Pragma) << "PROCEDURE " << P.Name << "(";
    for (size_t I = 0; I < P.Params.size(); ++I) {
      if (I)
        OS << "; ";
      OS << P.Params[I].Name << " : " << P.Params[I].Type.Name;
    }
    OS << ")";
    if (P.RetType)
      OS << " : " << P.RetType->Name;
    OS << " =\n";
    if (!P.Locals.empty()) {
      OS << "VAR\n";
      for (const LocalDecl &L : P.Locals) {
        OS << "  " << L.Name << " : " << L.Type.Name;
        if (L.Init)
          OS << " := " << exprStr(*L.Init);
        OS << ";\n";
      }
    }
    OS << "BEGIN\n";
    for (const StmtPtr &S : P.Body)
      printStmt(OS, *S, 1);
    OS << "END " << P.Name << ";\n\n";
  }

  static void indentTo(std::ostream &Out, int Indent) {
    for (int I = 0; I < Indent; ++I)
      Out << "  ";
  }

  void printStmts(std::ostream &Out, const std::vector<StmtPtr> &Stmts,
                  int Indent) {
    for (const StmtPtr &S : Stmts)
      printStmt(Out, *S, Indent);
  }

  void printStmt(std::ostream &Out, const Stmt &S, int Indent) {
    indentTo(Out, Indent);
    switch (S.Kind) {
    case StmtKind::Assign: {
      const auto &A = static_cast<const AssignStmt &>(S);
      if (A.TrackedModify) {
        Out << "modify(";
        printExpr(Out, *A.Target);
        Out << ", ";
        printExpr(Out, *A.Value);
        Out << ");\n";
      } else {
        printExpr(Out, *A.Target);
        Out << " := ";
        printExpr(Out, *A.Value);
        Out << ";\n";
      }
      return;
    }
    case StmtKind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      for (size_t A = 0; A < I.Arms.size(); ++A) {
        if (A != 0)
          indentTo(Out, Indent);
        Out << (A == 0 ? "IF " : "ELSIF ");
        printExpr(Out, *I.Arms[A].Cond);
        Out << " THEN\n";
        printStmts(Out, I.Arms[A].Body, Indent + 1);
      }
      if (!I.ElseBody.empty()) {
        indentTo(Out, Indent);
        Out << "ELSE\n";
        printStmts(Out, I.ElseBody, Indent + 1);
      }
      indentTo(Out, Indent);
      Out << "END;\n";
      return;
    }
    case StmtKind::While: {
      const auto &W = static_cast<const WhileStmt &>(S);
      Out << "WHILE ";
      printExpr(Out, *W.Cond);
      Out << " DO\n";
      printStmts(Out, W.Body, Indent + 1);
      indentTo(Out, Indent);
      Out << "END;\n";
      return;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      Out << "FOR " << F.Var << " := ";
      printExpr(Out, *F.From);
      Out << " TO ";
      printExpr(Out, *F.To);
      Out << " DO\n";
      printStmts(Out, F.Body, Indent + 1);
      indentTo(Out, Indent);
      Out << "END;\n";
      return;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      Out << "RETURN";
      if (R.Value) {
        Out << " ";
        printExpr(Out, *R.Value);
      }
      Out << ";\n";
      return;
    }
    case StmtKind::Expr: {
      printExpr(Out, *static_cast<const ExprStmt &>(S).E);
      Out << ";\n";
      return;
    }
    }
  }

  static const char *binOpStr(BinaryOp Op) {
    switch (Op) {
    case BinaryOp::Add:
      return " + ";
    case BinaryOp::Sub:
      return " - ";
    case BinaryOp::Mul:
      return " * ";
    case BinaryOp::Div:
      return " DIV ";
    case BinaryOp::Mod:
      return " MOD ";
    case BinaryOp::Eq:
      return " = ";
    case BinaryOp::Ne:
      return " # ";
    case BinaryOp::Lt:
      return " < ";
    case BinaryOp::Le:
      return " <= ";
    case BinaryOp::Gt:
      return " > ";
    case BinaryOp::Ge:
      return " >= ";
    case BinaryOp::And:
      return " AND ";
    case BinaryOp::Or:
      return " OR ";
    case BinaryOp::Concat:
      return " & ";
    }
    return " ? ";
  }

  void printExpr(std::ostream &Out, const Expr &E) {
    // access(...) wrapping shows where the Algorithm 3 operation landed.
    if (E.TrackedAccess)
      Out << "access(";
    printExprBare(Out, E);
    if (E.TrackedAccess)
      Out << ")";
  }

  void printExprBare(std::ostream &Out, const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      Out << static_cast<const IntLitExpr &>(E).Value;
      return;
    case ExprKind::BoolLit:
      Out << (static_cast<const BoolLitExpr &>(E).Value ? "TRUE" : "FALSE");
      return;
    case ExprKind::TextLit:
      Out << '"' << static_cast<const TextLitExpr &>(E).Value << '"';
      return;
    case ExprKind::NilLit:
      Out << "NIL";
      return;
    case ExprKind::NameRef:
      Out << static_cast<const NameRefExpr &>(E).Name;
      return;
    case ExprKind::FieldAccess: {
      const auto &F = static_cast<const FieldAccessExpr &>(E);
      printExpr(Out, *F.Base);
      Out << "." << F.Field;
      return;
    }
    case ExprKind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      if (C.CheckedCall)
        Out << "call(" << C.Callee << (C.Args.empty() ? "" : ", ");
      else
        Out << C.Callee << "(";
      for (size_t I = 0; I < C.Args.size(); ++I) {
        if (I)
          Out << ", ";
        printExpr(Out, *C.Args[I]);
      }
      Out << ")";
      return;
    }
    case ExprKind::MethodCall: {
      const auto &C = static_cast<const MethodCallExpr &>(E);
      if (C.CheckedCall) {
        Out << "call(";
        printExpr(Out, *C.Base);
        Out << "." << C.Method << (C.Args.empty() ? "" : ", ");
      } else {
        printExpr(Out, *C.Base);
        Out << "." << C.Method << "(";
      }
      for (size_t I = 0; I < C.Args.size(); ++I) {
        if (I)
          Out << ", ";
        printExpr(Out, *C.Args[I]);
      }
      Out << ")";
      return;
    }
    case ExprKind::New:
      Out << "NEW(" << static_cast<const NewExpr &>(E).TypeName << ")";
      return;
    case ExprKind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      Out << "(";
      printExpr(Out, *B.Lhs);
      Out << binOpStr(B.Op);
      printExpr(Out, *B.Rhs);
      Out << ")";
      return;
    }
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      Out << (U.Op == UnaryOp::Neg ? "-" : "NOT ");
      printExpr(Out, *U.Sub);
      return;
    }
    case ExprKind::Unchecked: {
      Out << "(*UNCHECKED*) ";
      printExpr(Out, *static_cast<const UncheckedExpr &>(E).Sub);
      return;
    }
    }
  }

  std::ostringstream OS;
};

} // namespace

std::string unparse(const Module &M) {
  Printer P;
  return P.module(M);
}

std::string unparseExpr(const Expr &E) {
  Printer P;
  return P.exprStr(E);
}

std::string unparseStmt(const Stmt &S, int Indent) {
  Printer P;
  return P.stmtStr(S, Indent);
}

} // namespace alphonse::transform
