//===- StaticPartition.cpp - Type-connectivity analysis -------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/StaticPartition.h"

#include "support/UnionFind.h"

using namespace alphonse::lang;

namespace alphonse::transform {

namespace {

/// Assigns union-find elements to types, procedures, and globals, then
/// unites along every conservative reachability edge.
class PartitionBuilder {
public:
  PartitionBuilder(const Module &M, const SemaInfo &Info) : M(M), Info(Info) {}

  StaticPartitionResult run() {
    // Element creation.
    for (const auto &T : Info.Types)
      TypeElem[T.get()] = UF.makeSet();
    for (const auto &P : M.Procs)
      ProcElem[P.get()] = UF.makeSet();
    for (const GlobalDecl &G : M.Globals)
      if (G.Index >= 0)
        GlobalElem[G.Index] = UF.makeSet();

    // Type-to-type edges: pointer fields and inheritance.
    for (const auto &T : Info.Types) {
      if (T->Super)
        UF.unite(TypeElem[T.get()], TypeElem[T->Super]);
      for (const FieldInfo &F : T->Fields)
        if (F.Ty.isObject())
          UF.unite(TypeElem[T.get()], TypeElem[F.Ty.Obj]);
      // Method implementations touch objects of the binding type.
      for (const MethodImpl &MI : T->VTable)
        if (MI.Impl)
          UF.unite(TypeElem[T.get()], ProcElem[MI.Impl]);
    }

    // Procedure edges: parameter/return object types, NEW sites, global
    // references, and direct calls.
    for (const auto &P : M.Procs) {
      const ProcInfo *PI = Info.procInfo(P.get());
      if (PI) {
        for (const Type &Ty : PI->ParamTypes)
          if (Ty.isObject())
            UF.unite(ProcElem[P.get()], TypeElem[Ty.Obj]);
        if (PI->RetType.isObject())
          UF.unite(ProcElem[P.get()], TypeElem[PI->RetType.Obj]);
      }
      for (const StmtPtr &S : P->Body)
        walkStmt(P.get(), S.get());
      for (const LocalDecl &L : P->Locals)
        if (L.Init)
          walkExpr(P.get(), L.Init.get());
    }
    for (const GlobalDecl &G : M.Globals) {
      if (G.Index < 0)
        continue;
      const Type &Ty = Info.GlobalTypes[G.Index];
      if (Ty.isObject())
        UF.unite(GlobalElem[G.Index], TypeElem[Ty.Obj]);
    }

    // Densify component ids.
    StaticPartitionResult R;
    std::unordered_map<UnionFind::Id, int> Dense;
    auto ComponentOf = [&](UnionFind::Id E) {
      UnionFind::Id Root = UF.find(E);
      auto It = Dense.find(Root);
      if (It != Dense.end())
        return It->second;
      int Id = R.NumComponents++;
      Dense[Root] = Id;
      return Id;
    };
    for (auto &[T, E] : TypeElem)
      R.TypeComponent[T] = ComponentOf(E);
    for (auto &[P, E] : ProcElem)
      R.ProcComponent[P] = ComponentOf(E);
    for (auto &[G, E] : GlobalElem)
      R.GlobalComponent[G] = ComponentOf(E);
    return R;
  }

private:
  void walkStmts(const ProcDecl *P, const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      walkStmt(P, S.get());
  }

  void walkStmt(const ProcDecl *P, const Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Assign: {
      const auto *A = static_cast<const AssignStmt *>(S);
      walkExpr(P, A->Target.get());
      walkExpr(P, A->Value.get());
      return;
    }
    case StmtKind::If: {
      const auto *I = static_cast<const IfStmt *>(S);
      for (const IfStmt::Arm &Arm : I->Arms) {
        walkExpr(P, Arm.Cond.get());
        walkStmts(P, Arm.Body);
      }
      walkStmts(P, I->ElseBody);
      return;
    }
    case StmtKind::While: {
      const auto *W = static_cast<const WhileStmt *>(S);
      walkExpr(P, W->Cond.get());
      walkStmts(P, W->Body);
      return;
    }
    case StmtKind::For: {
      const auto *F = static_cast<const ForStmt *>(S);
      walkExpr(P, F->From.get());
      walkExpr(P, F->To.get());
      walkStmts(P, F->Body);
      return;
    }
    case StmtKind::Return: {
      const auto *R = static_cast<const ReturnStmt *>(S);
      if (R->Value)
        walkExpr(P, R->Value.get());
      return;
    }
    case StmtKind::Expr:
      walkExpr(P, static_cast<const ExprStmt *>(S)->E.get());
      return;
    }
  }

  void walkExpr(const ProcDecl *P, const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::TextLit:
    case ExprKind::NilLit:
      return;
    case ExprKind::NameRef: {
      const auto *N = static_cast<const NameRefExpr *>(E);
      if (N->Binding == NameBinding::Global && N->Index >= 0)
        UF.unite(ProcElem[P], GlobalElem[N->Index]);
      return;
    }
    case ExprKind::FieldAccess:
      walkExpr(P, static_cast<const FieldAccessExpr *>(E)->Base.get());
      return;
    case ExprKind::Call: {
      const auto *C = static_cast<const CallExpr *>(E);
      if (C->Resolved)
        UF.unite(ProcElem[P], ProcElem[C->Resolved]);
      for (const ExprPtr &A : C->Args)
        walkExpr(P, A.get());
      return;
    }
    case ExprKind::MethodCall: {
      const auto *C = static_cast<const MethodCallExpr *>(E);
      walkExpr(P, C->Base.get());
      for (const ExprPtr &A : C->Args)
        walkExpr(P, A.get());
      return;
    }
    case ExprKind::New: {
      const auto *N = static_cast<const NewExpr *>(E);
      if (N->Resolved)
        UF.unite(ProcElem[P], TypeElem.at(N->Resolved));
      return;
    }
    case ExprKind::Binary: {
      const auto *B = static_cast<const BinaryExpr *>(E);
      walkExpr(P, B->Lhs.get());
      walkExpr(P, B->Rhs.get());
      return;
    }
    case ExprKind::Unary:
      walkExpr(P, static_cast<const UnaryExpr *>(E)->Sub.get());
      return;
    case ExprKind::Unchecked:
      walkExpr(P, static_cast<const UncheckedExpr *>(E)->Sub.get());
      return;
    }
  }

  const Module &M;
  const SemaInfo &Info;
  UnionFind UF;
  std::unordered_map<const ObjectTypeInfo *, UnionFind::Id> TypeElem;
  std::unordered_map<const ProcDecl *, UnionFind::Id> ProcElem;
  std::unordered_map<int, UnionFind::Id> GlobalElem;
};

} // namespace

StaticPartitionResult computeStaticPartitions(const Module &M,
                                              const SemaInfo &Info) {
  PartitionBuilder B(M, Info);
  return B.run();
}

} // namespace alphonse::transform
