//===- Transform.cpp - The Section 5 program transformation ---------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

using namespace alphonse::lang;

namespace alphonse::transform {

namespace {

class Transformer {
public:
  Transformer(Module &M, const SemaInfo &Info, TransformOptions Opts)
      : M(M), Info(Info), Opts(Opts) {}

  TransformStats run() {
    // Precompute: can any method dispatch reach a maintained impl? With a
    // closed program we can answer per-slot conservatively; we keep the
    // simpler whole-program answer (any maintained binding at all).
    for (const auto &T : Info.Types)
      for (const MethodImpl &MI : T->VTable)
        if (MI.Pragma.Kind == ProcPragma::Maintained)
          AnyMaintainedMethod = true;

    for (GlobalDecl &G : M.Globals)
      if (G.Init)
        walkExpr(G.Init.get(), /*IsRead=*/true);
    for (auto &P : M.Procs)
      walkStmts(P->Body);
    return Stats;
  }

private:
  void walkStmts(std::vector<StmtPtr> &Stmts) {
    for (StmtPtr &S : Stmts)
      walkStmt(S.get());
  }

  void walkStmt(Stmt *S) {
    switch (S->Kind) {
    case StmtKind::Assign: {
      auto *A = static_cast<AssignStmt *>(S);
      walkExpr(A->Value.get(), /*IsRead=*/true);
      // The target is written, not read — but a field target's *base* is
      // read to locate the object, and the modify(l, v) operation itself
      // starts with access(l) at run time (Algorithm 4).
      ++Stats.WritesTotal;
      if (A->Target->Kind == ExprKind::FieldAccess) {
        auto *F = static_cast<FieldAccessExpr *>(A->Target.get());
        walkExpr(F->Base.get(), /*IsRead=*/true);
        A->TrackedModify = true; // Heap storage is always top-level.
        ++Stats.WritesWrapped;
      } else {
        auto *N = static_cast<NameRefExpr *>(A->Target.get());
        bool Wrap = N->Binding == NameBinding::Global ||
                    !Opts.OptimizeLocalAccesses;
        A->TrackedModify = Wrap;
        if (Wrap)
          ++Stats.WritesWrapped;
      }
      return;
    }
    case StmtKind::If: {
      auto *I = static_cast<IfStmt *>(S);
      for (IfStmt::Arm &Arm : I->Arms) {
        walkExpr(Arm.Cond.get(), true);
        walkStmts(Arm.Body);
      }
      walkStmts(I->ElseBody);
      return;
    }
    case StmtKind::While: {
      auto *W = static_cast<WhileStmt *>(S);
      walkExpr(W->Cond.get(), true);
      walkStmts(W->Body);
      return;
    }
    case StmtKind::For: {
      auto *F = static_cast<ForStmt *>(S);
      walkExpr(F->From.get(), true);
      walkExpr(F->To.get(), true);
      walkStmts(F->Body);
      return;
    }
    case StmtKind::Return: {
      auto *R = static_cast<ReturnStmt *>(S);
      if (R->Value)
        walkExpr(R->Value.get(), true);
      return;
    }
    case StmtKind::Expr:
      walkExpr(static_cast<ExprStmt *>(S)->E.get(), true);
      return;
    }
  }

  void walkExpr(Expr *E, bool IsRead) {
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::TextLit:
    case ExprKind::NilLit:
      return;
    case ExprKind::NameRef: {
      auto *N = static_cast<NameRefExpr *>(E);
      if (!IsRead)
        return;
      ++Stats.ReadsTotal;
      bool Wrap = N->Binding == NameBinding::Global ||
                  !Opts.OptimizeLocalAccesses;
      N->TrackedAccess = Wrap;
      if (Wrap)
        ++Stats.ReadsWrapped;
      return;
    }
    case ExprKind::FieldAccess: {
      auto *F = static_cast<FieldAccessExpr *>(E);
      // "Pointers must be accessed twice, once for the pointer, once for
      // the location it points to" — the base is itself a read.
      walkExpr(F->Base.get(), true);
      if (!IsRead)
        return;
      ++Stats.ReadsTotal;
      F->TrackedAccess = true; // Heap fields are always top-level storage.
      ++Stats.ReadsWrapped;
      return;
    }
    case ExprKind::Call: {
      auto *C = static_cast<CallExpr *>(E);
      for (ExprPtr &A : C->Args)
        walkExpr(A.get(), true);
      if (C->BuiltinIndex >= 0)
        return; // Builtins are pure runtime services, never incremental.
      ++Stats.CallsTotal;
      bool Check = !Opts.OptimizeCallChecks ||
                   (C->Resolved &&
                    C->Resolved->Pragma.Kind == ProcPragma::Cached);
      C->CheckedCall = Check;
      if (Check)
        ++Stats.CallsChecked;
      return;
    }
    case ExprKind::MethodCall: {
      auto *C = static_cast<MethodCallExpr *>(E);
      walkExpr(C->Base.get(), true);
      for (ExprPtr &A : C->Args)
        walkExpr(A.get(), true);
      ++Stats.CallsTotal;
      // Dynamic dispatch: checked unless no maintained method exists
      // anywhere in the program.
      bool Check = !Opts.OptimizeCallChecks || AnyMaintainedMethod;
      C->CheckedCall = Check;
      if (Check)
        ++Stats.CallsChecked;
      return;
    }
    case ExprKind::New:
      return;
    case ExprKind::Binary: {
      auto *B = static_cast<BinaryExpr *>(E);
      walkExpr(B->Lhs.get(), true);
      walkExpr(B->Rhs.get(), true);
      return;
    }
    case ExprKind::Unary:
      walkExpr(static_cast<UnaryExpr *>(E)->Sub.get(), true);
      return;
    case ExprKind::Unchecked:
      // Contents transform normally; the null call-stack frame at run time
      // makes the recorded accesses inert (Section 6.4).
      walkExpr(static_cast<UncheckedExpr *>(E)->Sub.get(), IsRead);
      return;
    }
  }

  Module &M;
  const SemaInfo &Info;
  TransformOptions Opts;
  TransformStats Stats;
  bool AnyMaintainedMethod = false;
};

} // namespace

TransformStats transform(Module &M, const SemaInfo &Info,
                         TransformOptions Opts) {
  Transformer T(M, Info, Opts);
  return T.run();
}

} // namespace alphonse::transform
