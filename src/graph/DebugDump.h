//===- DebugDump.h - Dependency provenance dumps ----------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 10 of the paper: "the dynamic dependence information gathered
/// by Alphonse can also be used for additional advantage, such as in
/// debugging". This module renders the recorded dependency graph as a
/// provenance tree: *why* does a cached value hold — which storage and
/// which other incremental instances fed its last execution.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_DEBUGDUMP_H
#define ALPHONSE_GRAPH_DEBUGDUMP_H

#include "graph/DepNode.h"

#include <ostream>
#include <string>

namespace alphonse {

/// Options for dependency dumps.
struct DumpOptions {
  /// Maximum recursion depth into the predecessor (input) tree.
  int MaxDepth = 4;
  /// Maximum children rendered per node before eliding with "...".
  int MaxFanIn = 16;
};

/// Writes the provenance tree of \p Root to \p OS: the node itself, then
/// (indented) every dependency recorded by its most recent execution,
/// recursively. Shared nodes encountered twice are rendered once and then
/// referenced; cycles are cut. Each line shows the node's debug name,
/// kind, strategy, consistency, and level, e.g.:
///
///   Avl.balance [proc demand consistent L7]
///     avl.left [storage L0]
///     Avl.height [proc demand consistent L3]
///       ...
void dumpDependencies(std::ostream &OS, const DepNode &Root,
                      DumpOptions Options = DumpOptions());

/// One-line description of a node (used by dumpDependencies and handy in
/// test failure messages).
std::string describeNode(const DepNode &N);

} // namespace alphonse

#endif // ALPHONSE_GRAPH_DEBUGDUMP_H
