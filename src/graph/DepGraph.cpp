//===- DepGraph.cpp - Dynamic dependency graph ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the propagation layer: dependency recording (Section 4.3),
/// the evaluation routine (Section 4.5), the execution protocol, the
/// transaction drivers, and the invariant audit. Partition / pending-set /
/// quarantine / journal policy lives in GraphPolicy.cpp; slab storage
/// mechanics live in GraphStore.cpp.
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"

#include "graph/Scheduler.h"
#include "support/FaultInjector.h"

#include <algorithm>

namespace alphonse {

//===----------------------------------------------------------------------===//
// DepNode
//===----------------------------------------------------------------------===//

DepNode::DepNode(DepGraph &Graph, NodeKind Kind, EvalStrategy Strategy)
    : Kind(Kind), Strategy(Strategy), Graph(&Graph) {
  // Storage nodes are created at the first tracked access, when the cached
  // snapshot equals the live value; procedure nodes are created at the first
  // call, before the procedure has ever run (Algorithm 5 marks them
  // inconsistent).
  Consistent = (Kind == NodeKind::Storage);
  Graph.registerNode(*this);
}

DepNode::~DepNode() {
  if (Graph)
    Graph->unregisterNode(*this);
}

size_t DepNode::numPredecessors() const {
  assert(Graph && "node not attached to a graph");
  return Graph->numPredecessors(*this);
}

size_t DepNode::numSuccessors() const {
  assert(Graph && "node not attached to a graph");
  return Graph->numSuccessors(*this);
}

void DepNode::requireSerialEval() {
  assert(Graph && "node not attached to a graph");
  if (SerialPinned)
    return; // One pin per node; the partition count stays balanced.
  SerialPinned = true;
  Graph->tagSerialPartition(*this);
}

//===----------------------------------------------------------------------===//
// DepGraph: construction and node registry
//===----------------------------------------------------------------------===//

DepGraph::DepGraph(Statistics &Stats) : GraphPolicy(Stats), Gov(Stats) {}

DepGraph::DepGraph(Statistics &Stats, Config Cfg)
    : GraphPolicy(Stats, Cfg), Gov(Stats) {}

DepGraph::~DepGraph() {
  assert(NumLiveNodes == 0 &&
         "dependency-graph nodes must be destroyed before their graph; "
         "declare the Runtime before any Cell or Maintained");
}

void DepGraph::registerNode(DepNode &N) {
  StateGuard Guard(*this);
  N.Id = allocNodeSlot(N);
  N.Partition = Partitions.makeSet();
  if (SerialTag.size() <= N.Partition)
    SerialTag.resize(N.Partition + 1, 0);
  ++NumLiveNodes;
  ++Stats.NodesCreated;
}

void DepGraph::unregisterNode(DepNode &N) {
  StateGuard Guard(*this);
  // Release the node's serial pin: when the last pinned node of a
  // partition dies, the partition reverts to parallel eligibility
  // instead of staying serial-affine forever.
  if (N.SerialPinned) {
    untagSerialPartition(N);
    N.SerialPinned = false;
  }
  // Drop any pending entry for the dying node.
  eraseFromPendingSets(N);
  if (size_t I = findFault(N.Id); I != SIZE_MAX) {
    Quarantine[I] = std::move(Quarantine.back());
    Quarantine.pop_back();
  }

  removePredEdges(N);

  // Anything that depended on this node just lost a dependency; that is a
  // change and must propagate (the paper relies on garbage collection here;
  // see the substitution table in DESIGN.md).
  EdgeId E = N.FirstSucc;
  while (E) {
    Edge &Ed = edge(E);
    EdgeId Next = Ed.NextSucc;
    DepNode &Sink = node(Ed.Sink);
    unlinkEdge(E);
    freeEdgeSlot(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    markInconsistent(Sink);
    E = Next;
  }

  // A node destroyed mid-batch by the mutator invalidates every journal
  // entry pointing at it; drop them so a later rollback never touches the
  // dead node. (Rollback itself destroys batch-created nodes through
  // typed-layer closures; those run with TxnRollingBack set.)
  if (journaling())
    Journal.scrub(N.Id);

  // Recycle the table slot last: the generation bump makes every handle
  // still naming this node stale from here on.
  freeNodeSlot(N.Id);
  N.Id = NodeId();
  --NumLiveNodes;
  ++Stats.NodesDestroyed;
  N.Graph = nullptr;
}

//===----------------------------------------------------------------------===//
// Edges
//===----------------------------------------------------------------------===//

void DepGraph::addDependency(DepNode &Sink, DepNode &Source) {
  assert(Sink.Graph == this && Source.Graph == this &&
         "edge endpoints belong to another graph");
  assert(Sink.isProcedure() && "only procedure instances have dependencies");
  StateGuard Guard(*this);

  // Level update happens even for deduplicated edges (it is idempotent).
  if (Sink.Level <= Source.Level)
    Sink.Level = Source.Level + 1;
  // A source read mid-execution hands the sink its transient (partially
  // rebuilt) level; remember that so the verify() level audit knows this
  // source's successor edges may legitimately invert.
  if (Source.Executing)
    Source.ReadMidExecution = true;

  if (Cfg.DedupEdges && Sink.ExecStamp != 0 && Source.DedupSink == Sink.Id &&
      Source.DedupStamp == Sink.ExecStamp) {
    ++Stats.EdgesDeduped;
    return;
  }
  Source.DedupSink = Sink.Id;
  Source.DedupStamp = Sink.ExecStamp;

  EdgeId E = allocEdge();
  linkEdge(E, Source, Sink);

  ++Stats.EdgesCreated;
  ++NumLiveEdges;

  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::EdgeAdded;
    U.Sink = Sink.Id;
    U.Source = Source.Id;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }

  if (!Cfg.Partitioning)
    return;

  // Dynamic partition refinement (Section 6.3): connected nodes share one
  // instance of quiescence propagation. Note the edge above is already in
  // place when uniteRoots throws RetryConflict — an extra recorded
  // dependency is always sound (it can only cause extra recomputation).
  UnionFind::Id RootA = Partitions.find(Sink.Partition);
  UnionFind::Id RootB = Partitions.find(Source.Partition);
  if (RootA == RootB)
    return;
  uniteRoots(RootA, RootB);
}

void DepGraph::removePredEdges(DepNode &Sink) {
  StateGuard Guard(*this);
  bool Log = journaling() && static_cast<bool>(Sink.FirstPred);
  UndoEntry U;
  uint64_t Count = 0;
  EdgeId E = Sink.FirstPred;
  while (E) {
    Edge &Ed = edge(E);
    EdgeId Next = Ed.NextPred;
    if (Log)
      U.Sources.push_back(Ed.Source);
    // Every predecessor edge dies with this retraction, so only the
    // source-side successor lists need repairing; the pred-list links
    // between dying edges are never read again (the generic unlinkEdge
    // would maintain them, half of it wasted work on this hot path).
    if (Ed.PrevSucc)
      edge(Ed.PrevSucc).NextSucc = Ed.NextSucc;
    else
      node(Ed.Source).FirstSucc = Ed.NextSucc;
    if (Ed.NextSucc)
      edge(Ed.NextSucc).PrevSucc = Ed.PrevSucc;
    freeEdgeSlot(E);
    ++Count;
    E = Next;
  }
  if (Count) {
    Sink.FirstPred = EdgeId();
    Stats.EdgesRemoved += Count;
    NumLiveEdges -= Count;
  }
  if (Log) {
    U.K = UndoEntry::Kind::PredsRemoved;
    U.Sink = Sink.Id;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
}

//===----------------------------------------------------------------------===//
// Execution protocol hooks
//===----------------------------------------------------------------------===//

void DepGraph::beginExecution(DepNode &Proc) {
  assert(Proc.isProcedure() && "only procedures execute");
  assert(!Proc.Executing && "recursive execution of one procedure instance; "
                            "a DET incremental procedure cannot call itself "
                            "with identical arguments");
  StateGuard Guard(*this);
  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::ExecSnapshot;
    U.Sink = Proc.Id;
    U.WasConsistent = Proc.Consistent;
    U.OldLevel = Proc.Level;
    U.OldStamp = Proc.ExecStamp;
    U.OldVersion = Proc.Version;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  // An execution re-establishes the node's value from live inputs, so any
  // stale mark left by a cancelled wave is repaired here.
  if (Proc.StaleSince != 0) {
    Proc.StaleSince = 0;
    Gov.StaleCount.fetch_sub(1, std::memory_order_relaxed);
  }
  // Algorithm 5 sets consistent(n) := TRUE before running the body so that
  // invalidation during the run (e.g. a self-write) is observable afterward.
  Proc.Consistent = true;
  Proc.Executing = true;
  Proc.ReadMidExecution = false;
  Proc.Level = 0;
  Proc.ExecStamp = ++StampCounter;
  // Conservative: every execution may change the cached value.
  Proc.Version = ++VersionCounter;
  ++Stats.ProcExecutions;
}

void DepGraph::endExecution(DepNode &Proc) {
  assert(Proc.Executing && "endExecution without beginExecution");
  StateGuard Guard(*this);
  Proc.Executing = false;
  // Invalidated mid-run: demand nodes recompute at their next call; eager
  // nodes must be queued again so the pump re-runs them.
  if (!Proc.Consistent && Proc.Strategy == EvalStrategy::Eager)
    markInconsistent(Proc);
}

//===----------------------------------------------------------------------===//
// Evaluation (Section 4.5)
//===----------------------------------------------------------------------===//

bool DepGraph::tripsReexecutionLimit(DepNode &N) {
  if (Cfg.MaxReexecutions == 0)
    return false;
  if (N.ReexecEpoch != EvalEpoch) {
    N.ReexecEpoch = EvalEpoch;
    N.ReexecCount = 0;
  }
  return ++N.ReexecCount > Cfg.MaxReexecutions;
}

/// Nested-evaluation time (microseconds) accumulated by processNode frames
/// below the current one on this thread, for the watchdog's self-time
/// attribution (see the Watch block in processNode). Stack-disciplined:
/// each watched frame zeroes it on entry and restores parent+wall on exit.
static thread_local uint64_t WatchNestedUs = 0;

void DepGraph::processNode(DepNode &N) {
  ++Stats.EvalSteps;
  uint64_t Steps = ++EvalSteps;
  if (Cfg.EvalStepLimit != 0 && Steps > Cfg.EvalStepLimit) {
    // Global backstop: propagation did not converge. Quarantine the node
    // in hand (so the next pump makes progress past it) and unwind the
    // drain, leaving the remaining pending work queued.
    ++Stats.StepLimitTrips;
    DrainAborted = true;
    quarantine(N, {FaultKind::StepLimit, N.name(),
                   "propagation exceeded EvalStepLimit (" +
                       std::to_string(Cfg.EvalStepLimit) +
                       " steps) without converging; an incremental "
                       "procedure likely violates the DET restriction "
                       "(Section 3.5)",
                   nullptr});
    return;
  }

  // Processing repairs the node (or, for demand nodes, hands repair to the
  // next call), so a stale mark left by a cancelled wave is lifted here.
  if (N.StaleSince != 0) {
    N.StaleSince = 0;
    Gov.StaleCount.fetch_sub(1, std::memory_order_relaxed);
  }

  if (N.isStorage()) {
    bool Changed = true;
    try {
      Changed = N.refreshStorage();
    } catch (...) {
      quarantine(N, captureCurrentFault(N.name()));
      return;
    }
    if (!Cfg.VariableCutoff)
      Changed = true;
    if (Changed) {
      if (journaling()) {
        UndoEntry U;
        U.K = UndoEntry::Kind::VersionStamp;
        U.Sink = N.Id;
        U.OldVersion = N.Version;
        Journal.push(std::move(U));
        ++Stats.TxnUndoEntries;
      }
      N.Version = ++VersionCounter;
      enqueueSuccessors(N);
    } else {
      ++Stats.QuiescenceCutoffs;
    }
    return;
  }

  // Procedures currently on the call stack are only flag-invalidated here;
  // eager ones re-queue themselves at endExecution.
  if (N.Strategy == EvalStrategy::Demand || N.Executing) {
    if (N.Consistent) {
      if (journaling()) {
        // Reuse ExecSnapshot: it captures the current Level / ExecStamp /
        // Version (unchanged here, so restoring them is a no-op) along
        // with the Consistent bit being cleared.
        UndoEntry U;
        U.K = UndoEntry::Kind::ExecSnapshot;
        U.Sink = N.Id;
        U.WasConsistent = true;
        U.OldLevel = N.Level;
        U.OldStamp = N.ExecStamp;
        U.OldVersion = N.Version;
        Journal.push(std::move(U));
        ++Stats.TxnUndoEntries;
      }
      N.Consistent = false;
      enqueueSuccessors(N);
    }
    return;
  }

  // Divergence guard: a node that keeps re-entering the pending set within
  // one propagation is invalidating itself (a DET violation) and would
  // re-execute forever.
  if (tripsReexecutionLimit(N)) {
    ++Stats.DivergenceTrips;
    quarantine(N, {FaultKind::Divergence, N.name(),
                   "re-executed more than MaxReexecutions (" +
                       std::to_string(Cfg.MaxReexecutions) +
                       ") times in one propagation; the procedure keeps "
                       "invalidating itself and violates the DET "
                       "restriction (Section 3.5)",
                   nullptr});
    return;
  }

  // Idle eager procedure: re-execute through the call protocol; propagate
  // only if the cached value changed (quiescence propagation, Section 2).
  // A throwing body quarantines the node; the drain continues with the
  // partition's remaining work.
  bool Changed;
  // Watchdog (DESIGN.md Section 11): while a deadline-budgeted wave runs,
  // time each single evaluation. A node whose own body repeatedly
  // consumes the whole deadline would make every governed wave degrade
  // without progress; after Config::WatchdogTrips *consecutive* strikes
  // it is quarantined with a Deadline fault. Only self time counts: a
  // body whose demand read triggers a nested drain (ensureEvaluatedFor)
  // spends other nodes' evaluation time inside its own wall-clock window,
  // and billing that to the enclosing node would quarantine innocent
  // nodes whose dependencies merely had a deep backlog. WatchSelf is
  // stack-disciplined (thread-local): each frame zeroes the accumulator,
  // measures its wall time, subtracts what nested frames reported, and
  // adds its full wall time to the parent's share of nested work.
  const bool Watch = Gov.deadlineActive() && Cfg.WatchdogTrips != 0;
  uint64_t SavedNestedUs = 0;
  uint64_t EvalStartUs = 0;
  if (Watch) {
    SavedNestedUs = WatchNestedUs;
    WatchNestedUs = 0;
    EvalStartUs = GovClock::nowUs();
  }
  auto BillWatch = [&]() -> uint64_t {
    const uint64_t WallUs = GovClock::nowUs() - EvalStartUs;
    const uint64_t SelfUs = WallUs > WatchNestedUs ? WallUs - WatchNestedUs : 0;
    WatchNestedUs = SavedNestedUs + WallUs;
    return SelfUs;
  };
  try {
    Changed = N.reexecute();
  } catch (const RetryConflict &) {
    // A wave conflict is a scheduling event, not a fault: the node was
    // left inconsistent (and re-queued) by the abandoned execution, and
    // ownership of the merged partition has already moved. Unwind the
    // calling drain task.
    if (Watch)
      BillWatch();
    throw;
  } catch (...) {
    // The typed layer usually quarantines the node itself (with the most
    // precise fault kind) before rethrowing; this is the backstop for
    // hooks without that wrapping. quarantine() keeps the first fault.
    if (Watch)
      BillWatch();
    quarantine(N, captureCurrentFault(N.name()));
    return;
  }
  if (Watch) {
    if (BillWatch() >= Gov.currentDeadlineUs()) {
      ++Stats.GovDeadlineBlows;
      if (++N.DeadlineBlows >= Cfg.WatchdogTrips) {
        ++Stats.GovWatchdogQuarantines;
        quarantine(N, {FaultKind::Deadline, N.name(),
                       "single evaluation consumed an entire wave deadline " +
                           std::to_string(N.DeadlineBlows) +
                           " consecutive times (WatchdogTrips); the node "
                           "would starve every governed wave",
                       nullptr});
        return;
      }
    } else {
      N.DeadlineBlows = 0; // A clean evaluation breaks the streak.
    }
  }
  if (Changed) {
    enqueueSuccessors(N);
  } else {
    ++Stats.QuiescenceCutoffs;
  }
}

void DepGraph::evaluateFor(DepNode &N) {
  if (!Cfg.Partitioning) {
    evaluateAll();
    return;
  }
  ++Stats.PartitionScopedEvals;
  bool OwnWave = false;
  {
    StateGuard Guard(*this);
    ++EvalDepth;
    if (EvalDepth == 1) {
      EvalSteps = 0;
      ++EvalEpoch;
      DrainAborted = false;
      // A top-level partition-scoped pump is a wave of its own when a
      // default budget is configured (nested drains inherit the enclosing
      // wave's budget through governorStop()).
      if (!Gov.waveActive() && !TxnActive && !Gov.defaultBudget().unlimited()) {
        Gov.openWave(Gov.defaultBudget());
        OwnWave = true;
      }
    }
  }
  // Restores the depth even when a wave conflict (RetryConflict) unwinds
  // a nested drain on a worker thread, and closes a wave this entry
  // opened so the governor never leaks an open wave past an unwind.
  struct DepthScope {
    DepGraph &G;
    bool OwnWave;
    ~DepthScope() {
      StateGuard Guard(G);
      --G.EvalDepth;
      if (OwnWave && G.Gov.waveActive())
        G.Gov.closeWave(G.TotalPending);
    }
  } Depth{*this, OwnWave};
  // Re-resolve the set each round: processing can merge partitions.
  while (!DrainAborted.load(std::memory_order_relaxed)) {
    if (governorStop())
      break;
    DepNode *U = nullptr;
    {
      StateGuard Guard(*this);
      InconsistentSet *S = findSet(Partitions.find(N.Partition));
      if (!S || S->empty())
        break;
      U = &S->pop(*this);
      --TotalPending;
    }
    processNode(*U);
  }
  StateGuard Guard(*this);
  if (OwnWave) {
    Depth.OwnWave = false; // Closed here; the scope need not repeat it.
    WaveOutcome O = Gov.closeWave(TotalPending);
    if (waveDegraded(O))
      stampStaleResidue();
    else if (TotalPending == 0)
      clearStaleMarks();
    Stats.GovStaleNodes = Gov.staleCount();
  }
  if (EvalDepth == 1 && Cfg.AuditAfterEvaluate)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "audit: " + V);
}

WaveOutcome DepGraph::evaluateAll(const WaveBudget &B) {
  // Re-entered from inside an execution: the enclosing wave (if any)
  // governs through governorStop(); just drain serially.
  if (EvalDepth != 0) {
    evaluateAllSerial();
    return WaveOutcome::Completed;
  }

  // Overload admission (skipped under a batch: commitBatch must always
  // attempt the propagation so the abort/rollback logic decides).
  if (!TxnActive && !Gov.admitWave(B))
    return Gov.lastOutcome();

  Gov.openWave(B);
  try {
    // Top-level propagation goes parallel only when it is safe to: workers
    // configured, partitioning on (partitions are the unit of concurrency),
    // and no transactional batch open (the journal is strictly serial).
    bool Parallel = false;
    if (Cfg.Workers > 0 && Cfg.Partitioning && !TxnActive) {
      if (!Scheduler)
        Scheduler = std::make_unique<PropagationScheduler>(*this, Cfg.Workers,
                                                           Cfg.Pool);
      // Zero-width pool (shard budget exhausted at creation, or an
      // attached external pool with no workers): fall back to serial.
      Parallel = Scheduler->workers() > 0;
    }
    if (Parallel)
      Scheduler->run();
    else
      evaluateAllSerial();
  } catch (...) {
    Gov.closeWave(TotalPending);
    throw;
  }

  WaveOutcome O = Gov.closeWave(TotalPending);
  if (!TxnActive) {
    // Degradation bookkeeping (under a batch the commit path rolls the
    // whole state back instead; no stale values ever escape it).
    if (waveDegraded(O))
      stampStaleResidue();
    else if (TotalPending == 0)
      clearStaleMarks();
    Stats.GovStaleNodes = Gov.staleCount();
  }
  return O;
}

void DepGraph::evaluateAllSerial() {
  ++EvalDepth;
  if (EvalDepth == 1) {
    EvalSteps = 0;
    ++EvalEpoch;
    DrainAborted = false;
  }
  if (!Cfg.Partitioning) {
    while (!GlobalSet.empty() && !DrainAborted) {
      if (governorStop())
        break;
      DepNode &U = GlobalSet.pop(*this);
      --TotalPending;
      processNode(U);
    }
  } else {
    while (TotalPending > 0 && !DrainAborted) {
      if (governorStop())
        break;
      if (DirtyRoots.empty()) {
        // Rebuild from the live sets (roots can go stale across merges).
        for (UnionFind::Id Root = 0; Root < SetVec.size(); ++Root)
          if (!SetVec[Root].empty())
            DirtyRoots.push_back(Root);
        assert(!DirtyRoots.empty() && "pending count desynchronized");
      }
      UnionFind::Id Raw = DirtyRoots.back();
      DirtyRoots.pop_back();
      InconsistentSet *S = findSet(Partitions.find(Raw));
      if (!S || S->empty())
        continue;
      DepNode &U = S->pop(*this);
      --TotalPending;
      processNode(U);
      DirtyRoots.push_back(Partitions.find(Raw));
    }
  }
  --EvalDepth;
  if (EvalDepth == 0 && Cfg.AuditAfterEvaluate)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "audit: " + V);
}

//===----------------------------------------------------------------------===//
// Cycles and fault-injection hooks
//===----------------------------------------------------------------------===//

void DepGraph::beginReentrant(DepNode &N) {
  assert(N.Executing && "re-entrant run of an idle instance");
  if (Cfg.MaxReentrantDepth != 0 && N.ReentrantDepth >= Cfg.MaxReentrantDepth) {
    ++Stats.CycleFaults;
    throw CycleError("re-entrant call depth limit (" +
                     std::to_string(Cfg.MaxReentrantDepth) + ") reached on '" +
                     (N.name().empty() ? std::string("<anon>") : N.name()) +
                     "': the value depends on its own in-flight computation "
                     "(dependency cycle)");
  }
  ++N.ReentrantDepth;
}

void DepGraph::endReentrant(DepNode &N) {
  assert(N.ReentrantDepth > 0 && "endReentrant without beginReentrant");
  --N.ReentrantDepth;
}

void DepGraph::selfInvalidate(DepNode &Proc) {
  assert(Proc.Executing && "selfInvalidate outside an execution");
  Proc.Consistent = false;
}

bool DepGraph::settleUnobservedWrite(DepNode &N) {
  StateGuard Guard(*this);
  if (!N.isStorage() || N.Quarantined || N.FirstSucc)
    return false;
  // Same bookkeeping as processNode's storage branch: refresh the
  // snapshot, and on a real change stamp a fresh version (journaled so a
  // rollback restores the old stamp). enqueueSuccessors is vacuous here.
  if (N.refreshStorage()) {
    if (journaling()) {
      UndoEntry U;
      U.K = UndoEntry::Kind::VersionStamp;
      U.Sink = N.Id;
      U.OldVersion = N.Version;
      Journal.push(std::move(U));
      ++Stats.TxnUndoEntries;
    }
    N.Version = ++VersionCounter;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Transactional mutation batches (see DESIGN.md "Transactions and recovery")
//===----------------------------------------------------------------------===//

void DepGraph::beginBatch() {
  assert(!TxnActive && "transactional batches do not nest");
  assert(!isEvaluating() && "beginBatch() inside the evaluator");
  faultInjectionPoint("txn.begin");
  if (TotalPending != 0)
    Diags.warning(SourceLocation(),
                  "txn: beginBatch() on a non-quiescent graph (" +
                      std::to_string(TotalPending) +
                      " pending); rollback restores this non-quiescent "
                      "storage state but drops the pending queue");
  TxnActive = true;
  TxnNewFaults = 0;
  AbortFault.reset();
  ++Stats.TxnBegun;
}

bool DepGraph::commitBatch() {
  assert(TxnActive && "commitBatch() without beginBatch()");
  assert(!isEvaluating() && "commitBatch() inside the evaluator");
  WaveOutcome O = WaveOutcome::Completed;
  try {
    faultInjectionPoint("txn.commit");
    // Quiescence propagation for the whole batch (the paper's Section 4.5
    // loop; Section 3.4 observes updates batch naturally). Faults inside
    // do not throw — they quarantine and bump TxnNewFaults.
    O = evaluateAll(Gov.defaultBudget());
  } catch (...) {
    ++TxnNewFaults;
    if (!AbortFault)
      AbortFault = captureCurrentFault("txn.commit");
  }
  if (waveDegraded(O) && !AbortFault) {
    // A budget exhausted mid-commit aborts the batch: a transaction must
    // be all-or-nothing, so degraded (partially propagated) state is
    // rolled back rather than served stale.
    AbortFault = FaultInfo{FaultKind::Deadline, std::string(),
                           std::string("commit propagation ended ") +
                               waveOutcomeName(O) +
                               ": wave budget exhausted mid-batch",
                           nullptr};
  }
  if (TxnNewFaults != 0 || DrainAborted || waveDegraded(O)) {
    const FaultInfo *FI = abortFault();
    Diags.note(SourceLocation(),
               "txn: commit aborted (" +
                   std::string(FI ? faultKindName(FI->Kind) : "unknown") +
                   (FI && !FI->NodeName.empty() ? " at '" + FI->NodeName + "'"
                                                : std::string()) +
                   "); batch rolled back");
    rollbackBatch();
    return false;
  }
  Journal.clear();
  TxnActive = false;
  ++Epoch;
  ++Stats.TxnCommitted;
  return true;
}

void DepGraph::rollbackBatch() {
  assert(TxnActive && "rollbackBatch() without beginBatch()");
  assert(!isEvaluating() && "rollbackBatch() inside the evaluator");
  TxnRollingBack = true;
  Journal.replayReverse([&](UndoEntry &E) { applyUndo(E); });
  // The pre-batch state was quiescent (or its queue is unrecoverable, see
  // the beginBatch warning); nothing journaled during the batch may stay
  // pending.
  clearAllPending();
  Journal.clear();
  TxnRollingBack = false;
  TxnActive = false;
  // The restored state is the pre-batch quiescent one: nothing is parked.
  Gov.ParkedResidue = 0;
  Stats.GovParkedNodes = 0;
  ++Epoch;
  ++Stats.TxnRolledBack;
  // Undo replay freed nodes and edges wholesale without touching the
  // growth-triggered gauge hooks; re-publish so graph.node_bytes /
  // graph.edge_bytes / pool.high_water reflect the restored state.
  republishMemoryGauges();
  if (Cfg.VerifyOnRollback)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "rollback audit: " + V);
}

void DepGraph::applyUndo(UndoEntry &E) {
  switch (E.K) {
  case UndoEntry::Kind::Action:
    E.Undo();
    break;
  case UndoEntry::Kind::EdgeAdded:
    unlinkOneEdge(node(E.Source), node(E.Sink));
    break;
  case UndoEntry::Kind::PredsRemoved:
    // Relink in reverse so the sink's predecessor list (a push-front
    // stack) recovers its original order.
    for (auto It = E.Sources.rbegin(); It != E.Sources.rend(); ++It)
      relinkEdge(node(*It), node(E.Sink));
    break;
  case UndoEntry::Kind::ExecSnapshot: {
    DepNode &N = node(E.Sink);
    N.Consistent = E.WasConsistent;
    N.Level = E.OldLevel;
    N.ExecStamp = E.OldStamp;
    N.Version = E.OldVersion;
    break;
  }
  case UndoEntry::Kind::VersionStamp:
    node(E.Sink).Version = E.OldVersion;
    break;
  case UndoEntry::Kind::Quarantined: {
    DepNode &N = node(E.Sink);
    if (size_t I = findFault(E.Sink); I != SIZE_MAX) {
      Quarantine[I] = std::move(Quarantine.back());
      Quarantine.pop_back();
    }
    N.Quarantined = false;
    N.Consistent = E.WasConsistent;
    break;
  }
  case UndoEntry::Kind::QuarantineCleared: {
    DepNode &N = node(E.Sink);
    if (!N.Quarantined) {
      eraseFromPendingSets(N);
      N.Quarantined = true;
      N.Consistent = false;
      Quarantine.emplace_back(E.Sink, std::move(E.Saved));
    }
    break;
  }
  }
}

void DepGraph::unlinkOneEdge(DepNode &Source, DepNode &Sink) {
  for (EdgeId E = Sink.FirstPred; E; E = edge(E).NextPred) {
    if (edge(E).Source != Source.Id)
      continue;
    unlinkEdge(E);
    freeEdgeSlot(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    return;
  }
  // No matching edge left; nothing to undo. (Later batch work that
  // detached it was journaled and replayed before this entry, so this is
  // only reachable through scrubbed teardown paths.)
}

void DepGraph::relinkEdge(DepNode &Source, DepNode &Sink) {
  EdgeId E = allocEdge();
  linkEdge(E, Source, Sink);
  ++Stats.EdgesCreated;
  ++NumLiveEdges;
}

void DepGraph::relinkPredecessors(DepNode &Sink,
                                  const std::vector<DepNode *> &Sources) {
  StateGuard Guard(*this);
  for (auto It = Sources.rbegin(); It != Sources.rend(); ++It)
    relinkEdge(**It, Sink);
}

//===----------------------------------------------------------------------===//
// Graceful degradation: staleness stamping (DESIGN.md Section 11)
//===----------------------------------------------------------------------===//

void DepGraph::stampStaleResidue() {
  StateGuard Guard(*this);
  const uint64_t Mark = Gov.waveSeq();

  // Seed with everything still pending (the parked residue), then stamp
  // the transitive successor cone: any value downstream of unrepaired
  // work may reflect inputs the cancelled wave never propagated.
  std::vector<NodeId> Stack;
  auto Collect = [&](const InconsistentSet &S) {
    S.forEach(*this, [&](const DepNode &N) { Stack.push_back(N.Id); });
  };
  Collect(GlobalSet);
  for (const InconsistentSet &S : SetVec)
    Collect(S);

  while (!Stack.empty()) {
    NodeId Id = Stack.back();
    Stack.pop_back();
    if (!isLiveNode(Id))
      continue;
    DepNode &N = node(Id);
    if (N.StaleSince == Mark)
      continue;
    if (N.StaleSince == 0) {
      Gov.StaleList.push_back(Id);
      Gov.StaleCount.fetch_add(1, std::memory_order_relaxed);
    }
    N.StaleSince = Mark;
    ++Stats.GovNodesStamped;
    N.forEachSuccessor([&](DepNode &Succ) { Stack.push_back(Succ.Id); });
  }
}

void DepGraph::clearStaleMarks() {
  if (Gov.StaleList.empty())
    return;
  StateGuard Guard(*this);
  for (NodeId Id : Gov.StaleList)
    if (isLiveNode(Id))
      node(Id).StaleSince = 0;
  Gov.StaleList.clear();
  Gov.StaleCount.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Invariant audit
//===----------------------------------------------------------------------===//

std::vector<std::string> DepGraph::verify() const {
  std::vector<std::string> Bad;
  auto Name = [](const DepNode &N) {
    return N.name().empty() ? std::string("<anon>") : N.name();
  };

  // Nodes: table occupancy, per-node flag sanity, edge linkage and levels.
  size_t Nodes = 0, SuccEdges = 0, PredEdges = 0, Queued = 0, Marked = 0;
  for (uint32_t Slot = 0; Slot < NodeTab.span(); ++Slot) {
    const DepNode *N = NodeTab.at(Slot);
    if (!N)
      continue;
    ++Nodes;
    if (N->Graph != this)
      Bad.push_back("node '" + Name(*N) + "' registered here but points at "
                    "another graph");
    if (!isLiveNode(N->Id) || N->Id.index() != Slot)
      Bad.push_back("node '" + Name(*N) +
                    "' occupies a table slot its handle does not resolve to");
    if (N->InQueue)
      ++Queued;
    if (N->Quarantined) {
      ++Marked;
      if (findFault(N->Id) == SIZE_MAX)
        Bad.push_back("node '" + Name(*N) +
                      "' flagged quarantined but has no recorded fault");
      if (N->InQueue)
        Bad.push_back("quarantined node '" + Name(*N) +
                      "' still sits in a pending set");
      if (N->Executing)
        Bad.push_back("quarantined node '" + Name(*N) + "' marked executing");
      if (N->Consistent)
        Bad.push_back("quarantined node '" + Name(*N) + "' marked consistent");
    }
    for (EdgeId EId = N->FirstSucc; EId;) {
      if (!isLiveEdge(EId)) {
        Bad.push_back("successor list of '" + Name(*N) +
                      "' holds a stale edge handle");
        break;
      }
      const Edge &E = edge(EId);
      ++SuccEdges;
      if (E.Source != N->Id)
        Bad.push_back("successor edge of '" + Name(*N) +
                      "' has a different source");
      if (!isLiveNode(E.Sink) || !node(E.Sink).isProcedure())
        Bad.push_back("edge from '" + Name(*N) +
                      "' sinks into a non-procedure node");
      if (E.NextSucc && edge(E.NextSucc).PrevSucc != EId)
        Bad.push_back("successor list of '" + Name(*N) +
                      "' has a broken back link");
      // Level monotonicity: an edge records sink-depends-on-source during
      // the sink's execution, which raises the sink's level above the
      // source's. The source's level can only move by a later execution of
      // the source (which advances its stamp past the sink's), so for
      // edges whose source has not re-executed since, sink > source holds.
      // Two exemptions, both from re-entrant reads of an in-flight
      // source (which hand the sink the source's *transient* level): a
      // sink parked in an inconsistent set will re-execute and rebuild
      // its level, and a source flagged ReadMidExecution may keep
      // inverted successor edges even at quiescence when its value did
      // not change (so the readers were never re-queued).
      if (isLiveNode(E.Sink) && !N->ReadMidExecution) {
        const DepNode &Sink = node(E.Sink);
        if (!Sink.InQueue && N->ExecStamp < Sink.ExecStamp &&
            Sink.Level <= N->Level)
          Bad.push_back("level inversion on up-to-date edge '" + Name(*N) +
                        "' -> '" + Name(Sink) + "' (" +
                        std::to_string(N->Level) + " >= " +
                        std::to_string(Sink.Level) + ")");
      }
      EId = E.NextSucc;
    }
    for (EdgeId EId = N->FirstPred; EId;) {
      if (!isLiveEdge(EId)) {
        Bad.push_back("predecessor list of '" + Name(*N) +
                      "' holds a stale edge handle");
        break;
      }
      const Edge &E = edge(EId);
      ++PredEdges;
      if (E.Sink != N->Id)
        Bad.push_back("predecessor edge of '" + Name(*N) +
                      "' has a different sink");
      if (E.NextPred && edge(E.NextPred).PrevPred != EId)
        Bad.push_back("predecessor list of '" + Name(*N) +
                      "' has a broken back link");
      EId = E.NextPred;
    }
  }
  if (Nodes != NumLiveNodes)
    Bad.push_back("live node count " + std::to_string(NumLiveNodes) +
                  " != " + std::to_string(Nodes) + " registered nodes");
  if (SuccEdges != NumLiveEdges)
    Bad.push_back("live edge count " + std::to_string(NumLiveEdges) +
                  " != " + std::to_string(SuccEdges) + " successor edges");
  if (PredEdges != NumLiveEdges)
    Bad.push_back("live edge count " + std::to_string(NumLiveEdges) +
                  " != " + std::to_string(PredEdges) + " predecessor edges");

  // Pending sets: entry flags, set sizes, and the global count agree.
  size_t SetEntries = GlobalSet.size();
  auto CheckSet = [&](const InconsistentSet &S) {
    S.forEach(*this, [&](const DepNode &N) {
      if (!N.InQueue)
        Bad.push_back("pending-set entry '" + Name(N) +
                      "' is not flagged InQueue");
      if (N.Graph != this)
        Bad.push_back("pending-set entry '" + Name(N) +
                      "' belongs to another graph");
    });
  };
  CheckSet(GlobalSet);
  for (const InconsistentSet &S : SetVec) {
    SetEntries += S.size();
    CheckSet(S);
  }
  if (Cfg.Partitioning && !GlobalSet.empty())
    Bad.push_back("global pending set in use while partitioning is enabled");
  if (SetEntries != TotalPending)
    Bad.push_back("pending count " + std::to_string(TotalPending) + " != " +
                  std::to_string(SetEntries) + " queued set entries");
  if (Queued != TotalPending)
    Bad.push_back("pending count " + std::to_string(TotalPending) + " != " +
                  std::to_string(Queued) + " nodes flagged InQueue");

  // Quarantine set: disjoint from pending work, flags agree both ways.
  if (Marked != Quarantine.size())
    Bad.push_back("quarantine set holds " + std::to_string(Quarantine.size()) +
                  " faults but " + std::to_string(Marked) +
                  " nodes are flagged quarantined");
  for (const auto &Entry : Quarantine) {
    if (!isLiveNode(Entry.first)) {
      Bad.push_back("quarantine set holds a stale node handle");
      continue;
    }
    if (!node(Entry.first).Quarantined)
      Bad.push_back("fault recorded for node '" + Name(node(Entry.first)) +
                    "' that is not flagged quarantined");
  }
  return Bad;
}

} // namespace alphonse
