//===- DepGraph.cpp - Dynamic dependency graph ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements dependency recording (Section 4.3), change tracking
/// (Section 4.4), the evaluation routine (Section 4.5), and dynamic graph
/// partitioning (Section 6.3).
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"

#include <algorithm>

namespace alphonse {

//===----------------------------------------------------------------------===//
// DepNode
//===----------------------------------------------------------------------===//

DepNode::DepNode(DepGraph &Graph, NodeKind Kind, EvalStrategy Strategy)
    : Kind(Kind), Strategy(Strategy), Graph(&Graph) {
  // Storage nodes are created at the first tracked access, when the cached
  // snapshot equals the live value; procedure nodes are created at the first
  // call, before the procedure has ever run (Algorithm 5 marks them
  // inconsistent).
  Consistent = (Kind == NodeKind::Storage);
  Graph.registerNode(*this);
}

DepNode::~DepNode() {
  if (Graph)
    Graph->unregisterNode(*this);
}

size_t DepNode::numPredecessors() const {
  size_t N = 0;
  for (Edge *E = FirstPred; E; E = E->NextPred)
    ++N;
  return N;
}

size_t DepNode::numSuccessors() const {
  size_t N = 0;
  for (Edge *E = FirstSucc; E; E = E->NextSucc)
    ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// DepGraph: construction and node registry
//===----------------------------------------------------------------------===//

DepGraph::DepGraph(Statistics &Stats) : Stats(Stats) {}

DepGraph::DepGraph(Statistics &Stats, Config Cfg) : Stats(Stats), Cfg(Cfg) {}

DepGraph::~DepGraph() {
  assert(NumLiveNodes == 0 &&
         "dependency-graph nodes must be destroyed before their graph; "
         "declare the Runtime before any Cell or Maintained");
}

void DepGraph::registerNode(DepNode &N) {
  N.Partition = Partitions.makeSet();
  ++NumLiveNodes;
  ++Stats.NodesCreated;
}

void DepGraph::unregisterNode(DepNode &N) {
  // Drop any pending entry for the dying node.
  if (N.InQueue) {
    setFor(N).erase(&N);
    if (!N.InQueue) {
      --TotalPending;
    } else {
      // The entry can sit in a stale set if partitions merged after it was
      // queued; fall back to scanning every set.
      for (auto &KV : SetMap) {
        KV.second.erase(&N);
        if (!N.InQueue)
          break;
      }
      if (!N.InQueue)
        --TotalPending;
      GlobalSet.erase(&N);
      assert(!N.InQueue && "queued node not found in any inconsistent set");
    }
  }

  removePredEdges(N);

  // Anything that depended on this node just lost a dependency; that is a
  // change and must propagate (the paper relies on garbage collection here;
  // see the substitution table in DESIGN.md).
  Edge *E = N.FirstSucc;
  while (E) {
    Edge *Next = E->NextSucc;
    DepNode *Sink = E->Sink;
    unlinkEdge(E);
    freeEdge(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    markInconsistent(*Sink);
    E = Next;
  }

  --NumLiveNodes;
  ++Stats.NodesDestroyed;
  N.Graph = nullptr;
}

//===----------------------------------------------------------------------===//
// Edges
//===----------------------------------------------------------------------===//

Edge *DepGraph::allocateEdge() {
  if (Edge *E = FreeEdges) {
    FreeEdges = E->NextSucc;
    *E = Edge();
    return E;
  }
  EdgePool.emplace_back();
  return &EdgePool.back();
}

void DepGraph::freeEdge(Edge *E) {
  E->NextSucc = FreeEdges;
  FreeEdges = E;
}

void DepGraph::unlinkEdge(Edge *E) {
  // Successor list of the source.
  if (E->PrevSucc)
    E->PrevSucc->NextSucc = E->NextSucc;
  else
    E->Source->FirstSucc = E->NextSucc;
  if (E->NextSucc)
    E->NextSucc->PrevSucc = E->PrevSucc;
  // Predecessor list of the sink.
  if (E->PrevPred)
    E->PrevPred->NextPred = E->NextPred;
  else
    E->Sink->FirstPred = E->NextPred;
  if (E->NextPred)
    E->NextPred->PrevPred = E->PrevPred;
}

void DepGraph::addDependency(DepNode &Sink, DepNode &Source) {
  assert(Sink.Graph == this && Source.Graph == this &&
         "edge endpoints belong to another graph");
  assert(Sink.isProcedure() && "only procedure instances have dependencies");

  // Level update happens even for deduplicated edges (it is idempotent).
  if (Sink.Level <= Source.Level)
    Sink.Level = Source.Level + 1;

  if (Cfg.DedupEdges && Sink.ExecStamp != 0 && Source.DedupSink == &Sink &&
      Source.DedupStamp == Sink.ExecStamp) {
    ++Stats.EdgesDeduped;
    return;
  }
  Source.DedupSink = &Sink;
  Source.DedupStamp = Sink.ExecStamp;

  Edge *E = allocateEdge();
  E->Source = &Source;
  E->Sink = &Sink;
  // Push onto the source's successor list.
  E->NextSucc = Source.FirstSucc;
  if (Source.FirstSucc)
    Source.FirstSucc->PrevSucc = E;
  Source.FirstSucc = E;
  // Push onto the sink's predecessor list.
  E->NextPred = Sink.FirstPred;
  if (Sink.FirstPred)
    Sink.FirstPred->PrevPred = E;
  Sink.FirstPred = E;

  ++Stats.EdgesCreated;
  ++NumLiveEdges;

  if (!Cfg.Partitioning)
    return;

  // Dynamic partition refinement (Section 6.3): connected nodes share one
  // instance of quiescence propagation.
  UnionFind::Id RootA = Partitions.find(Sink.Partition);
  UnionFind::Id RootB = Partitions.find(Source.Partition);
  if (RootA == RootB)
    return;
  UnionFind::Id Root = Partitions.unite(RootA, RootB);
  ++Stats.PartitionUnions;
  UnionFind::Id Other = (Root == RootA) ? RootB : RootA;
  auto It = SetMap.find(Other);
  if (It == SetMap.end())
    return;
  InconsistentSet Orphan = std::move(It->second);
  SetMap.erase(It);
  if (!Orphan.empty()) {
    SetMap[Root].mergeFrom(Orphan);
    DirtyRoots.push_back(Root);
  }
}

void DepGraph::removePredEdges(DepNode &Sink) {
  Edge *E = Sink.FirstPred;
  while (E) {
    Edge *Next = E->NextPred;
    unlinkEdge(E);
    freeEdge(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    E = Next;
  }
  assert(!Sink.FirstPred && "predecessor list not emptied");
}

//===----------------------------------------------------------------------===//
// Execution protocol hooks
//===----------------------------------------------------------------------===//

void DepGraph::beginExecution(DepNode &Proc) {
  assert(Proc.isProcedure() && "only procedures execute");
  assert(!Proc.Executing && "recursive execution of one procedure instance; "
                            "a DET incremental procedure cannot call itself "
                            "with identical arguments");
  // Algorithm 5 sets consistent(n) := TRUE before running the body so that
  // invalidation during the run (e.g. a self-write) is observable afterward.
  Proc.Consistent = true;
  Proc.Executing = true;
  Proc.Level = 0;
  Proc.ExecStamp = ++StampCounter;
  ++Stats.ProcExecutions;
}

void DepGraph::endExecution(DepNode &Proc) {
  assert(Proc.Executing && "endExecution without beginExecution");
  Proc.Executing = false;
  // Invalidated mid-run: demand nodes recompute at their next call; eager
  // nodes must be queued again so the pump re-runs them.
  if (!Proc.Consistent && Proc.Strategy == EvalStrategy::Eager)
    markInconsistent(Proc);
}

//===----------------------------------------------------------------------===//
// Change tracking and evaluation (Sections 4.4, 4.5)
//===----------------------------------------------------------------------===//

InconsistentSet &DepGraph::setFor(DepNode &N) {
  if (!Cfg.Partitioning)
    return GlobalSet;
  return SetMap[Partitions.find(N.Partition)];
}

void DepGraph::markInconsistent(DepNode &N) {
  // A demand procedure that is already inconsistent has already notified its
  // dependents; queueing it again would be a no-op at processing time.
  if (N.isProcedure() && N.Strategy == EvalStrategy::Demand && !N.Consistent &&
      !N.Executing)
    return;
  if (!setFor(N).push(&N))
    return;
  ++TotalPending;
  if (Cfg.Partitioning)
    DirtyRoots.push_back(Partitions.find(N.Partition));
}

bool DepGraph::hasPendingFor(DepNode &N) {
  if (!Cfg.Partitioning)
    return TotalPending != 0;
  auto It = SetMap.find(Partitions.find(N.Partition));
  return It != SetMap.end() && !It->second.empty();
}

bool DepGraph::samePartition(DepNode &A, DepNode &B) {
  return Partitions.find(A.Partition) == Partitions.find(B.Partition);
}

void DepGraph::enqueueSuccessors(DepNode &N) {
  for (Edge *E = N.FirstSucc; E; E = E->NextSucc)
    markInconsistent(*E->Sink);
}

void DepGraph::processNode(DepNode &N) {
  ++Stats.EvalSteps;
  ++EvalSteps;
  assert((Cfg.EvalStepLimit == 0 || EvalSteps <= Cfg.EvalStepLimit) &&
         "change propagation did not converge; an incremental procedure "
         "likely violates the DET restriction (Section 3.5)");

  if (N.isStorage()) {
    bool Changed = N.refreshStorage();
    if (!Cfg.VariableCutoff)
      Changed = true;
    if (Changed) {
      enqueueSuccessors(N);
    } else {
      ++Stats.QuiescenceCutoffs;
    }
    return;
  }

  // Procedures currently on the call stack are only flag-invalidated here;
  // eager ones re-queue themselves at endExecution.
  if (N.Strategy == EvalStrategy::Demand || N.Executing) {
    if (N.Consistent) {
      N.Consistent = false;
      enqueueSuccessors(N);
    }
    return;
  }

  // Idle eager procedure: re-execute through the call protocol; propagate
  // only if the cached value changed (quiescence propagation, Section 2).
  if (N.reexecute()) {
    enqueueSuccessors(N);
  } else {
    ++Stats.QuiescenceCutoffs;
  }
}

void DepGraph::evaluateFor(DepNode &N) {
  if (!Cfg.Partitioning) {
    evaluateAll();
    return;
  }
  ++Stats.PartitionScopedEvals;
  ++EvalDepth;
  if (EvalDepth == 1)
    EvalSteps = 0;
  // Re-resolve the set each round: processing can merge partitions.
  while (true) {
    auto It = SetMap.find(Partitions.find(N.Partition));
    if (It == SetMap.end() || It->second.empty())
      break;
    DepNode *U = It->second.pop();
    --TotalPending;
    processNode(*U);
  }
  --EvalDepth;
}

void DepGraph::evaluateAll() {
  ++EvalDepth;
  if (EvalDepth == 1)
    EvalSteps = 0;
  if (!Cfg.Partitioning) {
    while (!GlobalSet.empty()) {
      DepNode *U = GlobalSet.pop();
      --TotalPending;
      processNode(*U);
    }
    --EvalDepth;
    return;
  }
  while (TotalPending > 0) {
    if (DirtyRoots.empty()) {
      // Rebuild from the live sets (roots can go stale across merges).
      for (auto &KV : SetMap)
        if (!KV.second.empty())
          DirtyRoots.push_back(KV.first);
      assert(!DirtyRoots.empty() && "pending count desynchronized");
    }
    UnionFind::Id Raw = DirtyRoots.back();
    DirtyRoots.pop_back();
    auto It = SetMap.find(Partitions.find(Raw));
    if (It == SetMap.end() || It->second.empty())
      continue;
    DepNode *U = It->second.pop();
    --TotalPending;
    processNode(*U);
    DirtyRoots.push_back(It->first);
  }
  --EvalDepth;
}

} // namespace alphonse
