//===- DepGraph.cpp - Dynamic dependency graph ----------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements dependency recording (Section 4.3), change tracking
/// (Section 4.4), the evaluation routine (Section 4.5), and dynamic graph
/// partitioning (Section 6.3).
///
//===----------------------------------------------------------------------===//

#include "graph/DepGraph.h"

#include "graph/Scheduler.h"
#include "support/FaultInjector.h"

#include <algorithm>

namespace alphonse {

namespace detail {
uint32_t &currentDrainTask() {
  static thread_local uint32_t Task = 0;
  return Task;
}
} // namespace detail

//===----------------------------------------------------------------------===//
// DepNode
//===----------------------------------------------------------------------===//

DepNode::DepNode(DepGraph &Graph, NodeKind Kind, EvalStrategy Strategy)
    : Kind(Kind), Strategy(Strategy), Graph(&Graph) {
  // Storage nodes are created at the first tracked access, when the cached
  // snapshot equals the live value; procedure nodes are created at the first
  // call, before the procedure has ever run (Algorithm 5 marks them
  // inconsistent).
  Consistent = (Kind == NodeKind::Storage);
  Graph.registerNode(*this);
}

DepNode::~DepNode() {
  if (Graph)
    Graph->unregisterNode(*this);
}

size_t DepNode::numPredecessors() const {
  size_t N = 0;
  for (Edge *E = FirstPred; E; E = E->NextPred)
    ++N;
  return N;
}

size_t DepNode::numSuccessors() const {
  size_t N = 0;
  for (Edge *E = FirstSucc; E; E = E->NextSucc)
    ++N;
  return N;
}

void DepNode::requireSerialEval() {
  assert(Graph && "node not attached to a graph");
  Graph->tagSerialPartition(*this);
}

//===----------------------------------------------------------------------===//
// DepGraph: construction and node registry
//===----------------------------------------------------------------------===//

DepGraph::DepGraph(Statistics &Stats) : Stats(Stats) {}

DepGraph::DepGraph(Statistics &Stats, Config Cfg) : Stats(Stats), Cfg(Cfg) {
  // Report the configured pool size even before (or without) a parallel
  // wave; the scheduler refines this to the actual pool size it got.
  Stats.PropWorkers = Cfg.Workers;
}

DepGraph::~DepGraph() {
  assert(NumLiveNodes == 0 &&
         "dependency-graph nodes must be destroyed before their graph; "
         "declare the Runtime before any Cell or Maintained");
}

void DepGraph::registerNode(DepNode &N) {
  StateGuard Guard(*this);
  N.Partition = Partitions.makeSet();
  if (SerialTag.size() <= N.Partition)
    SerialTag.resize(N.Partition + 1, 0);
  // Link into the all-nodes registry (verify() iterates it).
  N.NextAll = AllNodes;
  if (AllNodes)
    AllNodes->PrevAll = &N;
  AllNodes = &N;
  ++NumLiveNodes;
  ++Stats.NodesCreated;
}

void DepGraph::eraseFromPendingSets(DepNode &N) {
  if (!N.InQueue)
    return;
  setFor(N).erase(&N);
  if (!N.InQueue) {
    --TotalPending;
    return;
  }
  // The entry can sit in a stale set if partitions merged after it was
  // queued; fall back to scanning every set.
  for (auto &KV : SetMap) {
    KV.second.erase(&N);
    if (!N.InQueue)
      break;
  }
  if (!N.InQueue)
    --TotalPending;
  GlobalSet.erase(&N);
  assert(!N.InQueue && "queued node not found in any inconsistent set");
}

void DepGraph::unregisterNode(DepNode &N) {
  StateGuard Guard(*this);
  // Drop any pending entry for the dying node.
  eraseFromPendingSets(N);
  Quarantine.erase(&N);

  // Unlink from the all-nodes registry.
  if (N.PrevAll)
    N.PrevAll->NextAll = N.NextAll;
  else
    AllNodes = N.NextAll;
  if (N.NextAll)
    N.NextAll->PrevAll = N.PrevAll;
  N.PrevAll = N.NextAll = nullptr;

  removePredEdges(N);

  // Anything that depended on this node just lost a dependency; that is a
  // change and must propagate (the paper relies on garbage collection here;
  // see the substitution table in DESIGN.md).
  Edge *E = N.FirstSucc;
  while (E) {
    Edge *Next = E->NextSucc;
    DepNode *Sink = E->Sink;
    unlinkEdge(E);
    freeEdge(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    markInconsistent(*Sink);
    E = Next;
  }

  --NumLiveNodes;
  ++Stats.NodesDestroyed;
  N.Graph = nullptr;

  // A node destroyed mid-batch by the mutator invalidates every journal
  // entry pointing at it; drop them so a later rollback never touches the
  // dead node. (Rollback itself destroys batch-created nodes through
  // typed-layer closures; those run with TxnRollingBack set.)
  if (journaling())
    Journal.scrub(N);
}

//===----------------------------------------------------------------------===//
// Edges
//===----------------------------------------------------------------------===//

Edge *DepGraph::allocateEdge() {
  bool FromFree = Edges.hasFree();
  Edge *E = Edges.create();
  if (FromFree)
    ++Stats.EdgeReuse;
  return E;
}

void DepGraph::freeEdge(Edge *E) { Edges.destroy(E); }

void DepGraph::unlinkEdge(Edge *E) {
  // Successor list of the source.
  if (E->PrevSucc)
    E->PrevSucc->NextSucc = E->NextSucc;
  else
    E->Source->FirstSucc = E->NextSucc;
  if (E->NextSucc)
    E->NextSucc->PrevSucc = E->PrevSucc;
  // Predecessor list of the sink.
  if (E->PrevPred)
    E->PrevPred->NextPred = E->NextPred;
  else
    E->Sink->FirstPred = E->NextPred;
  if (E->NextPred)
    E->NextPred->PrevPred = E->PrevPred;
}

void DepGraph::addDependency(DepNode &Sink, DepNode &Source) {
  assert(Sink.Graph == this && Source.Graph == this &&
         "edge endpoints belong to another graph");
  assert(Sink.isProcedure() && "only procedure instances have dependencies");
  StateGuard Guard(*this);

  // Level update happens even for deduplicated edges (it is idempotent).
  if (Sink.Level <= Source.Level)
    Sink.Level = Source.Level + 1;

  if (Cfg.DedupEdges && Sink.ExecStamp != 0 && Source.DedupSink == &Sink &&
      Source.DedupStamp == Sink.ExecStamp) {
    ++Stats.EdgesDeduped;
    return;
  }
  Source.DedupSink = &Sink;
  Source.DedupStamp = Sink.ExecStamp;

  Edge *E = allocateEdge();
  E->Source = &Source;
  E->Sink = &Sink;
  // Push onto the source's successor list.
  E->NextSucc = Source.FirstSucc;
  if (Source.FirstSucc)
    Source.FirstSucc->PrevSucc = E;
  Source.FirstSucc = E;
  // Push onto the sink's predecessor list.
  E->NextPred = Sink.FirstPred;
  if (Sink.FirstPred)
    Sink.FirstPred->PrevPred = E;
  Sink.FirstPred = E;

  ++Stats.EdgesCreated;
  ++NumLiveEdges;

  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::EdgeAdded;
    U.Sink = &Sink;
    U.Source = &Source;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }

  if (!Cfg.Partitioning)
    return;

  // Dynamic partition refinement (Section 6.3): connected nodes share one
  // instance of quiescence propagation. Note the edge above is already in
  // place when uniteRoots throws RetryConflict — an extra recorded
  // dependency is always sound (it can only cause extra recomputation).
  UnionFind::Id RootA = Partitions.find(Sink.Partition);
  UnionFind::Id RootB = Partitions.find(Source.Partition);
  if (RootA == RootB)
    return;
  uniteRoots(RootA, RootB);
}

UnionFind::Id DepGraph::uniteRoots(UnionFind::Id RootA, UnionFind::Id RootB) {
  UnionFind::Id Root = Partitions.unite(RootA, RootB);
  ++Stats.PartitionUnions;

  // Serial affinity is sticky across merges.
  char Tag = 0;
  if (RootA < SerialTag.size())
    Tag |= SerialTag[RootA];
  if (RootB < SerialTag.size())
    Tag |= SerialTag[RootB];
  if (Root >= SerialTag.size())
    SerialTag.resize(Root + 1, 0);
  SerialTag[Root] = Tag;

  UnionFind::Id Other = (Root == RootA) ? RootB : RootA;
  auto It = SetMap.find(Other);
  if (It != SetMap.end()) {
    InconsistentSet Orphan = std::move(It->second);
    SetMap.erase(It);
    if (!Orphan.empty()) {
      SetMap[Root].mergeFrom(Orphan);
      DirtyRoots.push_back(Root);
    }
  }

  // Wave ownership handoff: the merged partition must end up with exactly
  // one drain task. If the merge joins a sibling task's in-flight
  // partition, that sibling inherits the whole thing and the calling
  // execution abandons (RetryConflict); the abandoned node stays
  // inconsistent and is re-drained by the new owner or the post-wave
  // serial mop-up.
  uint32_t Me = detail::currentDrainTask();
  if (ParallelOn.load(std::memory_order_relaxed) && Me != 0) {
    uint32_t OwnA = 0, OwnB = 0;
    if (auto IA = Owners.find(RootA); IA != Owners.end()) {
      OwnA = IA->second;
      Owners.erase(IA);
    }
    if (auto IB = Owners.find(RootB); IB != Owners.end()) {
      OwnB = IB->second;
      Owners.erase(IB);
    }
    uint32_t Foreign = 0;
    if (OwnA != 0 && OwnA != Me)
      Foreign = OwnA;
    if (OwnB != 0 && OwnB != Me)
      Foreign = OwnB;
    if (Foreign != 0) {
      Owners[Root] = Foreign;
      ++Stats.PropConflicts;
      throw RetryConflict{};
    }
    if (OwnA == Me || OwnB == Me)
      Owners[Root] = Me;
  }
  return Root;
}

void DepGraph::ensureWorkerAccess(DepNode &Target, DepNode *Accessor) {
  uint32_t Me = detail::currentDrainTask();
  if (Me == 0 || !ParallelOn.load(std::memory_order_acquire))
    return;
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(Target.Partition);
  auto It = Owners.find(Root);
  if (It == Owners.end()) {
    Owners[Root] = Me; // Unowned (not scheduled this wave): claim it.
    return;
  }
  if (It->second == Me)
    return;
  // Owned by a sibling task. With an accessor in hand the partitions are
  // united — contact between them is a dependency-to-be — and uniteRoots
  // hands ownership to the sibling and throws. Without one (no structural
  // link yet) just abandon; the mop-up will retry serially.
  if (Accessor) {
    UnionFind::Id MyRoot = Partitions.find(Accessor->Partition);
    if (MyRoot != Root) {
      uniteRoots(MyRoot, Root); // Throws RetryConflict (foreign owner).
      return;
    }
  }
  ++Stats.PropConflicts;
  throw RetryConflict{};
}

void DepGraph::tagSerialPartition(DepNode &N) {
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(N.Partition);
  if (Root >= SerialTag.size())
    SerialTag.resize(Root + 1, 0);
  SerialTag[Root] = 1;
}

void DepGraph::removePredEdges(DepNode &Sink) {
  StateGuard Guard(*this);
  bool Log = journaling() && Sink.FirstPred != nullptr;
  UndoEntry U;
  Edge *E = Sink.FirstPred;
  while (E) {
    Edge *Next = E->NextPred;
    if (Log)
      U.Sources.push_back(E->Source);
    unlinkEdge(E);
    freeEdge(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    E = Next;
  }
  assert(!Sink.FirstPred && "predecessor list not emptied");
  if (Log) {
    U.K = UndoEntry::Kind::PredsRemoved;
    U.Sink = &Sink;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
}

//===----------------------------------------------------------------------===//
// Execution protocol hooks
//===----------------------------------------------------------------------===//

void DepGraph::beginExecution(DepNode &Proc) {
  assert(Proc.isProcedure() && "only procedures execute");
  assert(!Proc.Executing && "recursive execution of one procedure instance; "
                            "a DET incremental procedure cannot call itself "
                            "with identical arguments");
  StateGuard Guard(*this);
  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::ExecSnapshot;
    U.Sink = &Proc;
    U.WasConsistent = Proc.Consistent;
    U.OldLevel = Proc.Level;
    U.OldStamp = Proc.ExecStamp;
    U.OldVersion = Proc.Version;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  // Algorithm 5 sets consistent(n) := TRUE before running the body so that
  // invalidation during the run (e.g. a self-write) is observable afterward.
  Proc.Consistent = true;
  Proc.Executing = true;
  Proc.Level = 0;
  Proc.ExecStamp = ++StampCounter;
  // Conservative: every execution may change the cached value.
  Proc.Version = ++VersionCounter;
  ++Stats.ProcExecutions;
}

void DepGraph::endExecution(DepNode &Proc) {
  assert(Proc.Executing && "endExecution without beginExecution");
  StateGuard Guard(*this);
  Proc.Executing = false;
  // Invalidated mid-run: demand nodes recompute at their next call; eager
  // nodes must be queued again so the pump re-runs them.
  if (!Proc.Consistent && Proc.Strategy == EvalStrategy::Eager)
    markInconsistent(Proc);
}

//===----------------------------------------------------------------------===//
// Change tracking and evaluation (Sections 4.4, 4.5)
//===----------------------------------------------------------------------===//

InconsistentSet &DepGraph::setFor(DepNode &N) {
  if (!Cfg.Partitioning)
    return GlobalSet;
  return SetMap[Partitions.find(N.Partition)];
}

void DepGraph::markInconsistent(DepNode &N) {
  StateGuard Guard(*this);
  // Quarantined nodes take no further part in propagation until reset.
  if (N.Quarantined)
    return;
  // A demand procedure that is already inconsistent has already notified its
  // dependents; queueing it again would be a no-op at processing time.
  if (N.isProcedure() && N.Strategy == EvalStrategy::Demand && !N.Consistent &&
      !N.Executing)
    return;
  if (!setFor(N).push(&N))
    return;
  ++TotalPending;
  if (Cfg.Partitioning)
    DirtyRoots.push_back(Partitions.find(N.Partition));
}

bool DepGraph::hasPendingFor(DepNode &N) {
  StateGuard Guard(*this);
  if (!Cfg.Partitioning)
    return TotalPending != 0;
  auto It = SetMap.find(Partitions.find(N.Partition));
  return It != SetMap.end() && !It->second.empty();
}

bool DepGraph::samePartition(DepNode &A, DepNode &B) {
  StateGuard Guard(*this);
  return Partitions.find(A.Partition) == Partitions.find(B.Partition);
}

void DepGraph::enqueueSuccessors(DepNode &N) {
  // Guarded: a sibling wave worker recording a new dependency on N pushes
  // onto N's successor list concurrently with this walk.
  StateGuard Guard(*this);
  for (Edge *E = N.FirstSucc; E; E = E->NextSucc)
    markInconsistent(*E->Sink);
}

bool DepGraph::tripsReexecutionLimit(DepNode &N) {
  if (Cfg.MaxReexecutions == 0)
    return false;
  if (N.ReexecEpoch != EvalEpoch) {
    N.ReexecEpoch = EvalEpoch;
    N.ReexecCount = 0;
  }
  return ++N.ReexecCount > Cfg.MaxReexecutions;
}

void DepGraph::processNode(DepNode &N) {
  ++Stats.EvalSteps;
  uint64_t Steps = ++EvalSteps;
  if (Cfg.EvalStepLimit != 0 && Steps > Cfg.EvalStepLimit) {
    // Global backstop: propagation did not converge. Quarantine the node
    // in hand (so the next pump makes progress past it) and unwind the
    // drain, leaving the remaining pending work queued.
    ++Stats.StepLimitTrips;
    DrainAborted = true;
    quarantine(N, {FaultKind::StepLimit, N.name(),
                   "propagation exceeded EvalStepLimit (" +
                       std::to_string(Cfg.EvalStepLimit) +
                       " steps) without converging; an incremental "
                       "procedure likely violates the DET restriction "
                       "(Section 3.5)",
                   nullptr});
    return;
  }

  if (N.isStorage()) {
    bool Changed = true;
    try {
      Changed = N.refreshStorage();
    } catch (...) {
      quarantine(N, captureCurrentFault(N.name()));
      return;
    }
    if (!Cfg.VariableCutoff)
      Changed = true;
    if (Changed) {
      if (journaling()) {
        UndoEntry U;
        U.K = UndoEntry::Kind::VersionStamp;
        U.Sink = &N;
        U.OldVersion = N.Version;
        Journal.push(std::move(U));
        ++Stats.TxnUndoEntries;
      }
      N.Version = ++VersionCounter;
      enqueueSuccessors(N);
    } else {
      ++Stats.QuiescenceCutoffs;
    }
    return;
  }

  // Procedures currently on the call stack are only flag-invalidated here;
  // eager ones re-queue themselves at endExecution.
  if (N.Strategy == EvalStrategy::Demand || N.Executing) {
    if (N.Consistent) {
      if (journaling()) {
        // Reuse ExecSnapshot: it captures the current Level / ExecStamp /
        // Version (unchanged here, so restoring them is a no-op) along
        // with the Consistent bit being cleared.
        UndoEntry U;
        U.K = UndoEntry::Kind::ExecSnapshot;
        U.Sink = &N;
        U.WasConsistent = true;
        U.OldLevel = N.Level;
        U.OldStamp = N.ExecStamp;
        U.OldVersion = N.Version;
        Journal.push(std::move(U));
        ++Stats.TxnUndoEntries;
      }
      N.Consistent = false;
      enqueueSuccessors(N);
    }
    return;
  }

  // Divergence guard: a node that keeps re-entering the pending set within
  // one propagation is invalidating itself (a DET violation) and would
  // re-execute forever.
  if (tripsReexecutionLimit(N)) {
    ++Stats.DivergenceTrips;
    quarantine(N, {FaultKind::Divergence, N.name(),
                   "re-executed more than MaxReexecutions (" +
                       std::to_string(Cfg.MaxReexecutions) +
                       ") times in one propagation; the procedure keeps "
                       "invalidating itself and violates the DET "
                       "restriction (Section 3.5)",
                   nullptr});
    return;
  }

  // Idle eager procedure: re-execute through the call protocol; propagate
  // only if the cached value changed (quiescence propagation, Section 2).
  // A throwing body quarantines the node; the drain continues with the
  // partition's remaining work.
  bool Changed;
  try {
    Changed = N.reexecute();
  } catch (const RetryConflict &) {
    // A wave conflict is a scheduling event, not a fault: the node was
    // left inconsistent (and re-queued) by the abandoned execution, and
    // ownership of the merged partition has already moved. Unwind the
    // calling drain task.
    throw;
  } catch (...) {
    // The typed layer usually quarantines the node itself (with the most
    // precise fault kind) before rethrowing; this is the backstop for
    // hooks without that wrapping. quarantine() keeps the first fault.
    quarantine(N, captureCurrentFault(N.name()));
    return;
  }
  if (Changed) {
    enqueueSuccessors(N);
  } else {
    ++Stats.QuiescenceCutoffs;
  }
}

void DepGraph::evaluateFor(DepNode &N) {
  if (!Cfg.Partitioning) {
    evaluateAll();
    return;
  }
  ++Stats.PartitionScopedEvals;
  {
    StateGuard Guard(*this);
    ++EvalDepth;
    if (EvalDepth == 1) {
      EvalSteps = 0;
      ++EvalEpoch;
      DrainAborted = false;
    }
  }
  // Restores the depth even when a wave conflict (RetryConflict) unwinds
  // a nested drain on a worker thread.
  struct DepthScope {
    DepGraph &G;
    ~DepthScope() {
      StateGuard Guard(G);
      --G.EvalDepth;
    }
  } Depth{*this};
  // Re-resolve the set each round: processing can merge partitions.
  while (!DrainAborted.load(std::memory_order_relaxed)) {
    DepNode *U = nullptr;
    {
      StateGuard Guard(*this);
      auto It = SetMap.find(Partitions.find(N.Partition));
      if (It == SetMap.end() || It->second.empty())
        break;
      U = It->second.pop();
      --TotalPending;
    }
    processNode(*U);
  }
  StateGuard Guard(*this);
  if (EvalDepth == 1 && Cfg.AuditAfterEvaluate)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "audit: " + V);
}

void DepGraph::evaluateAll() {
  // Top-level propagation goes parallel only when it is safe to: workers
  // configured, partitioning on (partitions are the unit of concurrency),
  // not re-entered from inside an execution, and no transactional batch
  // open (the journal is strictly serial).
  if (Cfg.Workers > 0 && Cfg.Partitioning && EvalDepth == 0 && !TxnActive) {
    if (!Scheduler)
      Scheduler = std::make_unique<PropagationScheduler>(*this, Cfg.Workers);
    if (Scheduler->workers() > 0) {
      Scheduler->run();
      return;
    }
    // Shard budget exhausted at pool creation: fall through to serial.
  }
  evaluateAllSerial();
}

void DepGraph::evaluateAllSerial() {
  ++EvalDepth;
  if (EvalDepth == 1) {
    EvalSteps = 0;
    ++EvalEpoch;
    DrainAborted = false;
  }
  if (!Cfg.Partitioning) {
    while (!GlobalSet.empty() && !DrainAborted) {
      DepNode *U = GlobalSet.pop();
      --TotalPending;
      processNode(*U);
    }
  } else {
    while (TotalPending > 0 && !DrainAborted) {
      if (DirtyRoots.empty()) {
        // Rebuild from the live sets (roots can go stale across merges).
        for (auto &KV : SetMap)
          if (!KV.second.empty())
            DirtyRoots.push_back(KV.first);
        assert(!DirtyRoots.empty() && "pending count desynchronized");
      }
      UnionFind::Id Raw = DirtyRoots.back();
      DirtyRoots.pop_back();
      auto It = SetMap.find(Partitions.find(Raw));
      if (It == SetMap.end() || It->second.empty())
        continue;
      DepNode *U = It->second.pop();
      --TotalPending;
      processNode(*U);
      DirtyRoots.push_back(It->first);
    }
  }
  --EvalDepth;
  if (EvalDepth == 0 && Cfg.AuditAfterEvaluate)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "audit: " + V);
}

//===----------------------------------------------------------------------===//
// Failure model: quarantine, divergence, cycles (see DESIGN.md)
//===----------------------------------------------------------------------===//

const FaultInfo *DepGraph::fault(const DepNode &N) const {
  auto It = Quarantine.find(const_cast<DepNode *>(&N));
  return It == Quarantine.end() ? nullptr : &It->second;
}

std::vector<std::pair<DepNode *, const FaultInfo *>>
DepGraph::quarantined() const {
  std::vector<std::pair<DepNode *, const FaultInfo *>> Out;
  Out.reserve(Quarantine.size());
  for (const auto &KV : Quarantine)
    Out.emplace_back(KV.first, &KV.second);
  return Out;
}

void DepGraph::quarantine(DepNode &N, FaultInfo FI) {
  StateGuard Guard(*this);
  if (N.Quarantined)
    return; // First fault wins.
  assert(N.Graph == this && "quarantining a node of another graph");
  if (TxnActive && !TxnRollingBack) {
    // A fault inside a batch poisons the whole batch: commitBatch() will
    // roll back instead of committing. Journal the quarantine so rollback
    // lifts it again (the pre-batch state had no such fault).
    ++TxnNewFaults;
    if (!AbortFault)
      AbortFault = FI;
    UndoEntry U;
    U.K = UndoEntry::Kind::Quarantined;
    U.Sink = &N;
    U.WasConsistent = N.Consistent;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  eraseFromPendingSets(N);
  N.Quarantined = true;
  N.Consistent = false;
  ++Stats.NodesQuarantined;
  Diags.error(SourceLocation(),
              "quarantined node '" +
                  (FI.NodeName.empty() ? std::string("<anon>") : FI.NodeName) +
                  "' [" + faultKindName(FI.Kind) + "]: " + FI.Message);
  // Dependents hold values computed from this node; queue them so they
  // discover the fault at their next recompute instead of silently
  // serving stale data (a recompute that calls a quarantined node throws
  // QuarantinedError and cascades).
  enqueueSuccessors(N);
  Quarantine.emplace(&N, std::move(FI));
}

bool DepGraph::resetQuarantined(DepNode &N) {
  auto It = Quarantine.find(&N);
  if (It == Quarantine.end())
    return false;
  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::QuarantineCleared;
    U.Sink = &N;
    U.Saved = It->second;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  Quarantine.erase(It);
  N.Quarantined = false;
  N.ReexecCount = 0;
  N.ReexecEpoch = 0;
  ++Stats.QuarantineResets;
  // Leave the node inconsistent; storage and eager nodes re-queue so the
  // next pump refreshes them, demand nodes recompute at their next call.
  if (N.isStorage() || N.Strategy == EvalStrategy::Eager)
    markInconsistent(N);
  return true;
}

size_t DepGraph::resetAllQuarantined() {
  size_t Count = 0;
  while (!Quarantine.empty()) {
    resetQuarantined(*Quarantine.begin()->first);
    ++Count;
  }
  return Count;
}

void DepGraph::beginReentrant(DepNode &N) {
  assert(N.Executing && "re-entrant run of an idle instance");
  if (Cfg.MaxReentrantDepth != 0 && N.ReentrantDepth >= Cfg.MaxReentrantDepth) {
    ++Stats.CycleFaults;
    throw CycleError("re-entrant call depth limit (" +
                     std::to_string(Cfg.MaxReentrantDepth) + ") reached on '" +
                     (N.name().empty() ? std::string("<anon>") : N.name()) +
                     "': the value depends on its own in-flight computation "
                     "(dependency cycle)");
  }
  ++N.ReentrantDepth;
}

void DepGraph::endReentrant(DepNode &N) {
  assert(N.ReentrantDepth > 0 && "endReentrant without beginReentrant");
  --N.ReentrantDepth;
}

void DepGraph::selfInvalidate(DepNode &Proc) {
  assert(Proc.Executing && "selfInvalidate outside an execution");
  Proc.Consistent = false;
}

//===----------------------------------------------------------------------===//
// Transactional mutation batches (see DESIGN.md "Transactions and recovery")
//===----------------------------------------------------------------------===//

void DepGraph::beginBatch() {
  assert(!TxnActive && "transactional batches do not nest");
  assert(!isEvaluating() && "beginBatch() inside the evaluator");
  faultInjectionPoint("txn.begin");
  if (TotalPending != 0)
    Diags.warning(SourceLocation(),
                  "txn: beginBatch() on a non-quiescent graph (" +
                      std::to_string(TotalPending) +
                      " pending); rollback restores this non-quiescent "
                      "storage state but drops the pending queue");
  TxnActive = true;
  TxnNewFaults = 0;
  AbortFault.reset();
  ++Stats.TxnBegun;
}

void DepGraph::logUndo(std::function<void()> Undo) {
  assert(TxnActive && "logUndo() outside a batch");
  if (TxnRollingBack)
    return;
  UndoEntry U;
  U.K = UndoEntry::Kind::Action;
  U.Undo = std::move(Undo);
  Journal.push(std::move(U));
  ++Stats.TxnUndoEntries;
}

bool DepGraph::commitBatch() {
  assert(TxnActive && "commitBatch() without beginBatch()");
  assert(!isEvaluating() && "commitBatch() inside the evaluator");
  try {
    faultInjectionPoint("txn.commit");
    // Quiescence propagation for the whole batch (the paper's Section 4.5
    // loop; Section 3.4 observes updates batch naturally). Faults inside
    // do not throw — they quarantine and bump TxnNewFaults.
    evaluateAll();
  } catch (...) {
    ++TxnNewFaults;
    if (!AbortFault)
      AbortFault = captureCurrentFault("txn.commit");
  }
  if (TxnNewFaults != 0 || DrainAborted) {
    const FaultInfo *FI = abortFault();
    Diags.note(SourceLocation(),
               "txn: commit aborted (" +
                   std::string(FI ? faultKindName(FI->Kind) : "unknown") +
                   (FI && !FI->NodeName.empty() ? " at '" + FI->NodeName + "'"
                                                : std::string()) +
                   "); batch rolled back");
    rollbackBatch();
    return false;
  }
  Journal.clear();
  TxnActive = false;
  ++Epoch;
  ++Stats.TxnCommitted;
  return true;
}

void DepGraph::rollbackBatch() {
  assert(TxnActive && "rollbackBatch() without beginBatch()");
  assert(!isEvaluating() && "rollbackBatch() inside the evaluator");
  TxnRollingBack = true;
  Journal.replayReverse([&](UndoEntry &E) { applyUndo(E); });
  // The pre-batch state was quiescent (or its queue is unrecoverable, see
  // the beginBatch warning); nothing journaled during the batch may stay
  // pending.
  clearAllPending();
  Journal.clear();
  TxnRollingBack = false;
  TxnActive = false;
  ++Epoch;
  ++Stats.TxnRolledBack;
  if (Cfg.VerifyOnRollback)
    for (const std::string &V : verify())
      Diags.error(SourceLocation(), "rollback audit: " + V);
}

void DepGraph::applyUndo(UndoEntry &E) {
  switch (E.K) {
  case UndoEntry::Kind::Action:
    E.Undo();
    break;
  case UndoEntry::Kind::EdgeAdded:
    unlinkOneEdge(*E.Source, *E.Sink);
    break;
  case UndoEntry::Kind::PredsRemoved:
    // Relink in reverse so the sink's predecessor list (a push-front
    // stack) recovers its original order.
    for (auto It = E.Sources.rbegin(); It != E.Sources.rend(); ++It)
      relinkEdge(**It, *E.Sink);
    break;
  case UndoEntry::Kind::ExecSnapshot:
    E.Sink->Consistent = E.WasConsistent;
    E.Sink->Level = E.OldLevel;
    E.Sink->ExecStamp = E.OldStamp;
    E.Sink->Version = E.OldVersion;
    break;
  case UndoEntry::Kind::VersionStamp:
    E.Sink->Version = E.OldVersion;
    break;
  case UndoEntry::Kind::Quarantined:
    Quarantine.erase(E.Sink);
    E.Sink->Quarantined = false;
    E.Sink->Consistent = E.WasConsistent;
    break;
  case UndoEntry::Kind::QuarantineCleared:
    if (!E.Sink->Quarantined) {
      eraseFromPendingSets(*E.Sink);
      E.Sink->Quarantined = true;
      E.Sink->Consistent = false;
      Quarantine.emplace(E.Sink, std::move(E.Saved));
    }
    break;
  }
}

void DepGraph::unlinkOneEdge(DepNode &Source, DepNode &Sink) {
  for (Edge *E = Sink.FirstPred; E; E = E->NextPred) {
    if (E->Source != &Source)
      continue;
    unlinkEdge(E);
    freeEdge(E);
    ++Stats.EdgesRemoved;
    --NumLiveEdges;
    return;
  }
  // No matching edge left; nothing to undo. (Later batch work that
  // detached it was journaled and replayed before this entry, so this is
  // only reachable through scrubbed teardown paths.)
}

void DepGraph::relinkEdge(DepNode &Source, DepNode &Sink) {
  Edge *E = allocateEdge();
  E->Source = &Source;
  E->Sink = &Sink;
  E->NextSucc = Source.FirstSucc;
  if (Source.FirstSucc)
    Source.FirstSucc->PrevSucc = E;
  Source.FirstSucc = E;
  E->NextPred = Sink.FirstPred;
  if (Sink.FirstPred)
    Sink.FirstPred->PrevPred = E;
  Sink.FirstPred = E;
  ++Stats.EdgesCreated;
  ++NumLiveEdges;
}

void DepGraph::clearAllPending() {
  while (!GlobalSet.empty())
    GlobalSet.pop();
  for (auto &KV : SetMap)
    while (!KV.second.empty())
      KV.second.pop();
  TotalPending = 0;
  DirtyRoots.clear();
}

//===----------------------------------------------------------------------===//
// Invariant audit
//===----------------------------------------------------------------------===//

std::vector<std::string> DepGraph::verify() const {
  std::vector<std::string> Bad;
  auto Name = [](const DepNode &N) {
    return N.name().empty() ? std::string("<anon>") : N.name();
  };

  // Nodes: registry count, per-node flag sanity, edge linkage and levels.
  size_t Nodes = 0, SuccEdges = 0, PredEdges = 0, Queued = 0, Marked = 0;
  for (const DepNode *N = AllNodes; N; N = N->NextAll) {
    ++Nodes;
    if (N->Graph != this)
      Bad.push_back("node '" + Name(*N) + "' registered here but points at "
                    "another graph");
    if (N->InQueue)
      ++Queued;
    if (N->Quarantined) {
      ++Marked;
      if (Quarantine.find(const_cast<DepNode *>(N)) == Quarantine.end())
        Bad.push_back("node '" + Name(*N) +
                      "' flagged quarantined but has no recorded fault");
      if (N->InQueue)
        Bad.push_back("quarantined node '" + Name(*N) +
                      "' still sits in a pending set");
      if (N->Executing)
        Bad.push_back("quarantined node '" + Name(*N) + "' marked executing");
      if (N->Consistent)
        Bad.push_back("quarantined node '" + Name(*N) + "' marked consistent");
    }
    for (const Edge *E = N->FirstSucc; E; E = E->NextSucc) {
      ++SuccEdges;
      if (E->Source != N)
        Bad.push_back("successor edge of '" + Name(*N) +
                      "' has a different source");
      if (!E->Sink || !E->Sink->isProcedure())
        Bad.push_back("edge from '" + Name(*N) +
                      "' sinks into a non-procedure node");
      if (E->NextSucc && E->NextSucc->PrevSucc != E)
        Bad.push_back("successor list of '" + Name(*N) +
                      "' has a broken back link");
      // Level monotonicity: an edge records sink-depends-on-source during
      // the sink's execution, which raises the sink's level above the
      // source's. The source's level can only move by a later execution of
      // the source (which advances its stamp past the sink's), so for
      // edges whose source has not re-executed since, sink > source holds.
      if (E->Sink && E->Source->ExecStamp < E->Sink->ExecStamp &&
          E->Sink->Level <= E->Source->Level)
        Bad.push_back("level inversion on up-to-date edge '" +
                      Name(*E->Source) + "' -> '" + Name(*E->Sink) + "' (" +
                      std::to_string(E->Source->Level) + " >= " +
                      std::to_string(E->Sink->Level) + ")");
    }
    for (const Edge *E = N->FirstPred; E; E = E->NextPred) {
      ++PredEdges;
      if (E->Sink != N)
        Bad.push_back("predecessor edge of '" + Name(*N) +
                      "' has a different sink");
      if (E->NextPred && E->NextPred->PrevPred != E)
        Bad.push_back("predecessor list of '" + Name(*N) +
                      "' has a broken back link");
    }
  }
  if (Nodes != NumLiveNodes)
    Bad.push_back("live node count " + std::to_string(NumLiveNodes) +
                  " != " + std::to_string(Nodes) + " registered nodes");
  if (SuccEdges != NumLiveEdges)
    Bad.push_back("live edge count " + std::to_string(NumLiveEdges) +
                  " != " + std::to_string(SuccEdges) + " successor edges");
  if (PredEdges != NumLiveEdges)
    Bad.push_back("live edge count " + std::to_string(NumLiveEdges) +
                  " != " + std::to_string(PredEdges) + " predecessor edges");

  // Pending sets: entry flags, set sizes, and the global count agree.
  size_t SetEntries = GlobalSet.size();
  auto CheckSet = [&](const InconsistentSet &S) {
    S.forEach([&](const DepNode &N) {
      if (!N.InQueue)
        Bad.push_back("pending-set entry '" + Name(N) +
                      "' is not flagged InQueue");
      if (N.Graph != this)
        Bad.push_back("pending-set entry '" + Name(N) +
                      "' belongs to another graph");
    });
  };
  CheckSet(GlobalSet);
  for (const auto &KV : SetMap) {
    SetEntries += KV.second.size();
    CheckSet(KV.second);
  }
  if (Cfg.Partitioning && !GlobalSet.empty())
    Bad.push_back("global pending set in use while partitioning is enabled");
  if (SetEntries != TotalPending)
    Bad.push_back("pending count " + std::to_string(TotalPending) + " != " +
                  std::to_string(SetEntries) + " queued set entries");
  if (Queued != TotalPending)
    Bad.push_back("pending count " + std::to_string(TotalPending) + " != " +
                  std::to_string(Queued) + " nodes flagged InQueue");

  // Quarantine set: disjoint from pending work, flags agree both ways.
  if (Marked != Quarantine.size())
    Bad.push_back("quarantine map holds " + std::to_string(Quarantine.size()) +
                  " faults but " + std::to_string(Marked) +
                  " nodes are flagged quarantined");
  for (const auto &KV : Quarantine)
    if (!KV.first->Quarantined)
      Bad.push_back("fault recorded for node '" + Name(*KV.first) +
                    "' that is not flagged quarantined");
  return Bad;
}

} // namespace alphonse
