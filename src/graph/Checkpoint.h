//===- Checkpoint.h - Durable graph snapshots -------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture and restore of the dependency graph's logical state (DESIGN.md
/// §10). A GraphSnapshot records everything the engine itself owns — node
/// metadata (kind, strategy, consistency, level, stamps, quarantine
/// faults), the edge lists, the partition structure, and the monotonic
/// counters — keyed by the capture-time NodeId bit patterns.
///
/// The graph does not own its nodes (the typed layers do: Cell,
/// Maintained, the interpreter's slots and instances), so restore is a
/// collaboration: the typed layer recreates its nodes against a fresh
/// Runtime and binds each one to the old id it was saved under
/// (GraphRestorer::bind); GraphRestorer::finish then re-applies the
/// engine-side state, relinks the edges, reunites the partitions, and
/// gates the result behind DepGraph::verify() — a restore that fails the
/// audit throws instead of handing back a half-built graph.
///
/// Both capture and restore require quiescence (no pending work, no open
/// batch, not mid-evaluation): a snapshot is always a consistent cut, so
/// deltas layered on top (CheckpointIO's log) can be replayed as plain
/// storage writes + propagation.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_CHECKPOINT_H
#define ALPHONSE_GRAPH_CHECKPOINT_H

#include "graph/DepGraph.h"
#include "support/CheckpointIO.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace alphonse {

/// Engine-side state of one node at capture time.
struct CkptNode {
  /// The node's NodeId bit pattern at capture. Restore never forges a
  /// handle from this — it is purely the key the typed layers use to say
  /// "this new node is that old node".
  uint32_t IdBits = 0;
  uint8_t Kind = 0;       ///< NodeKind
  uint8_t Strategy = 0;   ///< EvalStrategy
  uint8_t Consistent = 0; ///< consistent(u) bit
  uint8_t Serial = 0;     ///< node held a serial pin (requireSerialEval)
  uint32_t Level = 0;
  /// Capture-time union-find root of the node's partition. An opaque
  /// label: restore unites nodes that share it.
  uint32_t PartitionTag = 0;
  uint64_t Version = 0;
  uint64_t ExecStamp = 0;
  std::string Name;
};

/// Predecessor list of one sink, front-to-back (most recent source
/// first, matching the intrusive list order).
struct CkptPredList {
  uint32_t SinkBits = 0;
  std::vector<uint32_t> SourceBits;
};

/// One quarantined node and its captured fault (FaultInfo::Nested does
/// not survive serialization; kind, node name, and message do).
struct CkptFault {
  uint32_t IdBits = 0;
  uint8_t Kind = 0; ///< FaultKind
  std::string NodeName;
  std::string Message;
};

/// The graph's complete logical state at one quiescent cut.
struct GraphSnapshot {
  uint64_t VersionCounter = 0;
  uint64_t StampCounter = 0;
  uint64_t Epoch = 1;
  std::vector<CkptNode> Nodes;
  std::vector<CkptPredList> Preds;
  std::vector<CkptFault> Faults;

  void encode(ByteWriter &W) const;
  /// Decodes and structurally validates (unique ids, resolvable edge and
  /// fault references, in-range enums). Throws CheckpointError.
  static GraphSnapshot decode(ByteReader &R);
};

/// Captures the engine-side state of a quiescent graph.
class GraphCheckpoint {
public:
  /// Throws CheckpointError(Busy) unless the graph is quiescent: nothing
  /// pending, no open batch, not mid-evaluation. (Callers normally pump
  /// first.)
  static GraphSnapshot capture(DepGraph &G);
};

/// Rebuilds a captured graph state into a fresh graph. Usage:
///
///   GraphRestorer R(std::move(Snapshot));
///   ... typed layer recreates each node and calls R.bind(oldIdBits, N)
///   R.finish(Graph);   // metadata + edges + partitions + verify()
class GraphRestorer {
public:
  explicit GraphRestorer(GraphSnapshot S);

  const GraphSnapshot &snapshot() const { return Snap; }

  /// The captured record for \p OldIdBits, or nullptr.
  const CkptNode *findNode(uint32_t OldIdBits) const;

  /// Declares that the freshly created node \p N is the captured node
  /// \p OldIdBits. Throws CheckpointError(Malformed) on an unknown id, a
  /// double bind, or a kind/strategy mismatch with the record.
  void bind(uint32_t OldIdBits, DepNode &N);

  /// Re-applies the engine-side state to \p G: per-node metadata,
  /// quarantine entries, edges, partition unions, serial tags, and the
  /// monotonic counters — then audits with DepGraph::verify(). Throws
  /// CheckpointError(Malformed) if any captured node is unbound or the
  /// graph holds foreign nodes/edges, and CheckpointError(VerifyFailed)
  /// if the audit finds anything. Call exactly once.
  void finish(DepGraph &G);

private:
  GraphSnapshot Snap;
  std::unordered_map<uint32_t, const CkptNode *> Index;
  std::unordered_map<uint32_t, DepNode *> Bound;
  bool Finished = false;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_CHECKPOINT_H
