//===- GraphPolicy.cpp - Partition, quarantine, journal policy ------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements change tracking (Section 4.4), dynamic graph partitioning
/// (Section 6.3), the quarantine fault set, journal bookkeeping, and
/// parallel-wave partition ownership over the dense id-indexed structures
/// declared in GraphPolicy.h.
///
//===----------------------------------------------------------------------===//

#include "graph/GraphPolicy.h"

#include <cassert>

namespace alphonse {

namespace detail {
uint32_t &currentDrainTask() {
  static thread_local uint32_t Task = 0;
  return Task;
}
} // namespace detail

//===----------------------------------------------------------------------===//
// Pending sets and partitions
//===----------------------------------------------------------------------===//

InconsistentSet &GraphPolicy::setFor(DepNode &N) {
  if (!Cfg.Partitioning)
    return GlobalSet;
  UnionFind::Id Root = Partitions.find(N.Partition);
  if (SetVec.size() <= Root)
    SetVec.resize(Root + 1);
  return SetVec[Root];
}

bool GraphPolicy::samePartition(DepNode &A, DepNode &B) {
  StateGuard Guard(*this);
  return Partitions.find(A.Partition) == Partitions.find(B.Partition);
}

void GraphPolicy::eraseFromPendingSets(DepNode &N) {
  if (!N.InQueue)
    return;
  setFor(N).erase(*this, N);
  if (!N.InQueue) {
    --TotalPending;
    return;
  }
  // The entry can sit in a stale set if partitions merged after it was
  // queued; fall back to scanning every set.
  for (InconsistentSet &S : SetVec) {
    S.erase(*this, N);
    if (!N.InQueue)
      break;
  }
  if (!N.InQueue)
    --TotalPending;
  GlobalSet.erase(*this, N);
  assert(!N.InQueue && "queued node not found in any inconsistent set");
}

void GraphPolicy::clearAllPending() {
  while (!GlobalSet.empty())
    GlobalSet.pop(*this);
  for (InconsistentSet &S : SetVec)
    while (!S.empty())
      S.pop(*this);
  TotalPending = 0;
  DirtyRoots.clear();
}

UnionFind::Id GraphPolicy::uniteRoots(UnionFind::Id RootA,
                                      UnionFind::Id RootB) {
  UnionFind::Id Root = Partitions.unite(RootA, RootB);
  ++Stats.PartitionUnions;

  // The merged partition carries the sum of both pin counts, so it stays
  // serial exactly as long as at least one pinned node survives in it.
  // Stale (non-root) slots are zeroed: only root slots are ever read, and
  // a later merge must not double-count a pin.
  uint32_t Pins = 0;
  if (RootA < SerialTag.size()) {
    Pins += SerialTag[RootA];
    SerialTag[RootA] = 0;
  }
  if (RootB < SerialTag.size()) {
    Pins += SerialTag[RootB];
    SerialTag[RootB] = 0;
  }
  if (Root >= SerialTag.size())
    SerialTag.resize(Root + 1, 0);
  SerialTag[Root] = Pins;

  UnionFind::Id Other = (Root == RootA) ? RootB : RootA;
  if (Other < SetVec.size() && !SetVec[Other].empty()) {
    InconsistentSet Orphan = std::move(SetVec[Other]);
    SetVec[Other] = InconsistentSet();
    if (SetVec.size() <= Root)
      SetVec.resize(Root + 1);
    SetVec[Root].mergeFrom(*this, Orphan);
    DirtyRoots.push_back(Root);
  }

  // Wave ownership handoff: the merged partition must end up with exactly
  // one drain task. If the merge joins a sibling task's in-flight
  // partition, that sibling inherits the whole thing and the calling
  // execution abandons (RetryConflict); the abandoned node stays
  // inconsistent and is re-drained by the new owner or the post-wave
  // serial mop-up.
  uint32_t Me = detail::currentDrainTask();
  if (ParallelOn.load(std::memory_order_relaxed) && Me != 0) {
    uint32_t OwnA = owner(RootA);
    uint32_t OwnB = owner(RootB);
    releaseOwner(RootA);
    releaseOwner(RootB);
    uint32_t Foreign = 0;
    if (OwnA != 0 && OwnA != Me)
      Foreign = OwnA;
    if (OwnB != 0 && OwnB != Me)
      Foreign = OwnB;
    if (Foreign != 0) {
      setOwner(Root, Foreign);
      ++Stats.PropConflicts;
      throw RetryConflict{};
    }
    if (OwnA == Me || OwnB == Me)
      setOwner(Root, Me);
  }
  return Root;
}

void GraphPolicy::ensureWorkerAccess(DepNode &Target, DepNode *Accessor) {
  uint32_t Me = detail::currentDrainTask();
  if (Me == 0 || !ParallelOn.load(std::memory_order_acquire))
    return;
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(Target.Partition);
  uint32_t Own = owner(Root);
  if (Own == 0) {
    setOwner(Root, Me); // Unowned (not scheduled this wave): claim it.
    return;
  }
  if (Own == Me)
    return;
  // Owned by a sibling task. With an accessor in hand the partitions are
  // united — contact between them is a dependency-to-be — and uniteRoots
  // hands ownership to the sibling and throws. Without one (no structural
  // link yet) just abandon; the mop-up will retry serially.
  if (Accessor) {
    UnionFind::Id MyRoot = Partitions.find(Accessor->Partition);
    if (MyRoot != Root) {
      uniteRoots(MyRoot, Root); // Throws RetryConflict (foreign owner).
      return;
    }
  }
  ++Stats.PropConflicts;
  throw RetryConflict{};
}

void GraphPolicy::tagSerialPartition(DepNode &N) {
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(N.Partition);
  if (Root >= SerialTag.size())
    SerialTag.resize(Root + 1, 0);
  ++SerialTag[Root];
}

void GraphPolicy::untagSerialPartition(DepNode &N) {
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(N.Partition);
  assert(Root < SerialTag.size() && SerialTag[Root] > 0 &&
         "un-pinning a partition with no serial pins");
  if (Root < SerialTag.size() && SerialTag[Root] > 0)
    --SerialTag[Root];
}

bool GraphPolicy::serialEvalRequired(DepNode &N) {
  StateGuard Guard(*this);
  UnionFind::Id Root = Partitions.find(N.Partition);
  return Root < SerialTag.size() && SerialTag[Root] != 0;
}

//===----------------------------------------------------------------------===//
// Journal bookkeeping
//===----------------------------------------------------------------------===//

void GraphPolicy::logUndo(std::function<void()> Undo) {
  assert(TxnActive && "logUndo() outside a batch");
  if (TxnRollingBack)
    return;
  UndoEntry U;
  U.K = UndoEntry::Kind::Action;
  U.Undo = std::move(Undo);
  Journal.push(std::move(U));
  ++Stats.TxnUndoEntries;
}

//===----------------------------------------------------------------------===//
// Failure model: quarantine (see DESIGN.md)
//===----------------------------------------------------------------------===//

size_t GraphPolicy::findFault(NodeId Id) const {
  for (size_t I = 0; I < Quarantine.size(); ++I)
    if (Quarantine[I].first == Id)
      return I;
  return SIZE_MAX;
}

const FaultInfo *GraphPolicy::fault(const DepNode &N) const {
  size_t I = findFault(N.Id);
  return I == SIZE_MAX ? nullptr : &Quarantine[I].second;
}

std::vector<std::pair<DepNode *, const FaultInfo *>>
GraphPolicy::quarantined() const {
  std::vector<std::pair<DepNode *, const FaultInfo *>> Out;
  Out.reserve(Quarantine.size());
  for (const auto &Entry : Quarantine)
    Out.emplace_back(&node(Entry.first), &Entry.second);
  return Out;
}

void GraphPolicy::quarantine(DepNode &N, FaultInfo FI) {
  StateGuard Guard(*this);
  if (N.Quarantined)
    return; // First fault wins.
  assert(&node(N.Id) == &N && "quarantining a node of another graph");
  if (TxnActive && !TxnRollingBack) {
    // A fault inside a batch poisons the whole batch: commitBatch() will
    // roll back instead of committing. Journal the quarantine so rollback
    // lifts it again (the pre-batch state had no such fault).
    ++TxnNewFaults;
    if (!AbortFault)
      AbortFault = FI;
    UndoEntry U;
    U.K = UndoEntry::Kind::Quarantined;
    U.Sink = N.Id;
    U.WasConsistent = N.Consistent;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  eraseFromPendingSets(N);
  N.Quarantined = true;
  N.Consistent = false;
  ++Stats.NodesQuarantined;
  Diags.error(SourceLocation(),
              "quarantined node '" +
                  (FI.NodeName.empty() ? std::string("<anon>") : FI.NodeName) +
                  "' [" + faultKindName(FI.Kind) + "]: " + FI.Message);
  // Dependents hold values computed from this node; queue them so they
  // discover the fault at their next recompute instead of silently
  // serving stale data (a recompute that calls a quarantined node throws
  // QuarantinedError and cascades).
  enqueueSuccessors(N);
  Quarantine.emplace_back(N.Id, std::move(FI));
}

bool GraphPolicy::resetQuarantined(DepNode &N) {
  size_t I = findFault(N.Id);
  if (I == SIZE_MAX)
    return false;
  if (journaling()) {
    UndoEntry U;
    U.K = UndoEntry::Kind::QuarantineCleared;
    U.Sink = N.Id;
    U.Saved = Quarantine[I].second;
    Journal.push(std::move(U));
    ++Stats.TxnUndoEntries;
  }
  Quarantine[I] = std::move(Quarantine.back());
  Quarantine.pop_back();
  N.Quarantined = false;
  N.ReexecCount = 0;
  N.ReexecEpoch = 0;
  ++Stats.QuarantineResets;
  // Leave the node inconsistent; storage and eager nodes re-queue so the
  // next pump refreshes them, demand nodes recompute at their next call.
  if (N.isStorage() || N.Strategy == EvalStrategy::Eager)
    markInconsistent(N);
  return true;
}

size_t GraphPolicy::resetAllQuarantined() {
  size_t Count = 0;
  while (!Quarantine.empty()) {
    resetQuarantined(node(Quarantine.back().first));
    ++Count;
  }
  return Count;
}

} // namespace alphonse
