//===- Checkpoint.cpp - Durable graph snapshots ---------------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "graph/Checkpoint.h"

#include "support/FaultInfo.h"

#include <algorithm>
#include <unordered_set>

namespace alphonse {

namespace {

[[noreturn]] void malformed(const std::string &What) {
  throw CheckpointError(CkptError::Malformed, What);
}

} // namespace

//===----------------------------------------------------------------------===//
// GraphSnapshot wire format
//===----------------------------------------------------------------------===//

void GraphSnapshot::encode(ByteWriter &W) const {
  W.u64(VersionCounter);
  W.u64(StampCounter);
  W.u64(Epoch);
  W.u32(static_cast<uint32_t>(Nodes.size()));
  for (const CkptNode &N : Nodes) {
    W.u32(N.IdBits);
    W.u8(N.Kind);
    W.u8(N.Strategy);
    W.u8(N.Consistent);
    W.u8(N.Serial);
    W.u32(N.Level);
    W.u32(N.PartitionTag);
    W.u64(N.Version);
    W.u64(N.ExecStamp);
    W.str(N.Name);
  }
  W.u32(static_cast<uint32_t>(Preds.size()));
  for (const CkptPredList &P : Preds) {
    W.u32(P.SinkBits);
    W.u32(static_cast<uint32_t>(P.SourceBits.size()));
    for (uint32_t S : P.SourceBits)
      W.u32(S);
  }
  W.u32(static_cast<uint32_t>(Faults.size()));
  for (const CkptFault &F : Faults) {
    W.u32(F.IdBits);
    W.u8(F.Kind);
    W.str(F.NodeName);
    W.str(F.Message);
  }
}

GraphSnapshot GraphSnapshot::decode(ByteReader &R) {
  GraphSnapshot S;
  S.VersionCounter = R.u64();
  S.StampCounter = R.u64();
  S.Epoch = R.u64();

  // Counts are not trusted: each element read is bounds-checked by the
  // ByteReader, so an absurd count dies with Truncated before it can
  // allocate anything of that size.
  uint32_t NumNodes = R.u32();
  std::unordered_set<uint32_t> Ids;
  for (uint32_t I = 0; I < NumNodes; ++I) {
    CkptNode N;
    N.IdBits = R.u32();
    N.Kind = R.u8();
    N.Strategy = R.u8();
    N.Consistent = R.u8();
    N.Serial = R.u8();
    N.Level = R.u32();
    N.PartitionTag = R.u32();
    N.Version = R.u64();
    N.ExecStamp = R.u64();
    N.Name = R.str();
    if (N.IdBits == 0)
      malformed("snapshot node with a null id");
    if (N.Kind > static_cast<uint8_t>(NodeKind::Procedure))
      malformed("snapshot node with an unknown kind");
    if (N.Strategy > static_cast<uint8_t>(EvalStrategy::Eager))
      malformed("snapshot node with an unknown strategy");
    if (N.Consistent > 1 || N.Serial > 1)
      malformed("snapshot node with a non-boolean flag");
    if (!Ids.insert(N.IdBits).second)
      malformed("duplicate node id in snapshot");
    S.Nodes.push_back(std::move(N));
  }

  uint32_t NumPreds = R.u32();
  std::unordered_set<uint32_t> Sinks;
  for (uint32_t I = 0; I < NumPreds; ++I) {
    CkptPredList P;
    P.SinkBits = R.u32();
    if (!Ids.count(P.SinkBits))
      malformed("edge list for a node not in the snapshot");
    if (!Sinks.insert(P.SinkBits).second)
      malformed("duplicate edge list for one sink");
    uint32_t NumSources = R.u32();
    for (uint32_t J = 0; J < NumSources; ++J) {
      uint32_t Src = R.u32();
      if (!Ids.count(Src))
        malformed("edge source not in the snapshot");
      P.SourceBits.push_back(Src);
    }
    S.Preds.push_back(std::move(P));
  }

  uint32_t NumFaults = R.u32();
  std::unordered_set<uint32_t> Faulted;
  for (uint32_t I = 0; I < NumFaults; ++I) {
    CkptFault F;
    F.IdBits = R.u32();
    F.Kind = R.u8();
    F.NodeName = R.str();
    F.Message = R.str();
    if (!Ids.count(F.IdBits))
      malformed("quarantine entry for a node not in the snapshot");
    if (!Faulted.insert(F.IdBits).second)
      malformed("duplicate quarantine entry");
    if (F.Kind > static_cast<uint8_t>(FaultKind::Deadline))
      malformed("quarantine entry with an unknown fault kind");
    S.Faults.push_back(std::move(F));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

GraphSnapshot GraphCheckpoint::capture(DepGraph &G) {
  if (G.isEvaluating())
    throw CheckpointError(CkptError::Busy,
                          "cannot checkpoint mid-evaluation");
  if (G.inBatch())
    throw CheckpointError(CkptError::Busy,
                          "cannot checkpoint inside an open batch");
  if (G.numPending() != 0)
    throw CheckpointError(CkptError::Busy,
                          "cannot checkpoint with pending work (" +
                              std::to_string(G.numPending()) +
                              " node(s); pump first)");

  GraphSnapshot S;
  S.VersionCounter = G.VersionCounter.load(std::memory_order_relaxed);
  S.StampCounter = G.StampCounter.load(std::memory_order_relaxed);
  S.Epoch = G.Epoch;

  for (uint32_t I = 0, E = G.NodeTab.span(); I < E; ++I) {
    DepNode *N = G.NodeTab.at(I);
    if (!N)
      continue;
    if (N->Executing || N->InQueue)
      throw CheckpointError(CkptError::Busy,
                            "node '" + N->name() +
                                "' is executing or queued at capture");
    CkptNode R;
    R.IdBits = N->Id.bits();
    R.Kind = static_cast<uint8_t>(N->Kind);
    R.Strategy = static_cast<uint8_t>(N->Strategy);
    R.Consistent = N->Consistent ? 1 : 0;
    R.Level = N->Level;
    R.Version = N->Version;
    R.ExecStamp = N->ExecStamp;
    R.Name = N->DebugName;
    UnionFind::Id Root = G.Partitions.find(N->Partition);
    R.PartitionTag = Root;
    // Per-node pin, not the partition tag: restore re-pins exactly the
    // nodes that held pins, rebuilding the partition counts — a partition
    // serial only because of since-destroyed neighbors must not come back
    // serial.
    R.Serial = N->SerialPinned ? 1 : 0;

    if (N->FirstPred) {
      CkptPredList P;
      P.SinkBits = R.IdBits;
      for (EdgeId EId = N->FirstPred; EId;) {
        const Edge &Ed = G.edge(EId);
        P.SourceBits.push_back(Ed.Source.bits());
        EId = Ed.NextPred;
      }
      S.Preds.push_back(std::move(P));
    }
    S.Nodes.push_back(std::move(R));
  }

  for (const auto &Q : G.Quarantine) {
    CkptFault F;
    F.IdBits = Q.first.bits();
    F.Kind = static_cast<uint8_t>(Q.second.Kind);
    F.NodeName = Q.second.NodeName;
    F.Message = Q.second.Message;
    S.Faults.push_back(std::move(F));
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Restore
//===----------------------------------------------------------------------===//

GraphRestorer::GraphRestorer(GraphSnapshot S) : Snap(std::move(S)) {
  for (const CkptNode &N : Snap.Nodes)
    Index.emplace(N.IdBits, &N);
}

const CkptNode *GraphRestorer::findNode(uint32_t OldIdBits) const {
  auto It = Index.find(OldIdBits);
  return It == Index.end() ? nullptr : It->second;
}

void GraphRestorer::bind(uint32_t OldIdBits, DepNode &N) {
  const CkptNode *R = findNode(OldIdBits);
  if (!R)
    malformed("typed layer bound an id that is not in the snapshot");
  if (!Bound.emplace(OldIdBits, &N).second)
    malformed("typed layer bound one snapshot id twice");
  if (static_cast<uint8_t>(N.Kind) != R->Kind ||
      static_cast<uint8_t>(N.Strategy) != R->Strategy)
    malformed("typed layer rebuilt node '" + R->Name +
              "' with a different kind or strategy");
}

void GraphRestorer::finish(DepGraph &G) {
  if (Finished)
    malformed("GraphRestorer::finish called twice");
  Finished = true;

  if (Bound.size() != Snap.Nodes.size())
    malformed("restore bound " + std::to_string(Bound.size()) + " of " +
              std::to_string(Snap.Nodes.size()) + " snapshot nodes");
  if (G.numLiveNodes() != Snap.Nodes.size())
    malformed("restore target graph holds nodes outside the snapshot");
  if (G.numLiveEdges() != 0)
    malformed("restore target graph already has edges");
  if (G.inBatch() || G.isEvaluating() || G.numPending() != 0)
    throw CheckpointError(CkptError::Busy,
                          "restore target graph is not quiescent");

  // Per-node metadata. This is state restoration, not event replay: the
  // captured cut was quiescent, so nothing here queues work or notifies
  // dependents.
  for (const CkptNode &R : Snap.Nodes) {
    DepNode &N = *Bound.at(R.IdBits);
    N.Consistent = R.Consistent != 0;
    N.Level = R.Level;
    N.Version = R.Version;
    N.ExecStamp = R.ExecStamp;
    if (N.DebugName.empty() && !R.Name.empty())
      N.DebugName = R.Name;
  }

  // Quarantine membership (direct, not via quarantine(): that would
  // enqueue successors, and the captured cut had none pending).
  for (const CkptFault &F : Snap.Faults) {
    DepNode &N = *Bound.at(F.IdBits);
    N.Quarantined = true;
    N.Consistent = false;
    FaultInfo FI;
    FI.Kind = static_cast<FaultKind>(F.Kind);
    FI.NodeName = F.NodeName;
    FI.Message = F.Message;
    G.Quarantine.emplace_back(N.Id, std::move(FI));
  }

  // Edges: each snapshot adjacency row goes through the bulk-link API in
  // one call (it re-reverses internally so the push-front linkage
  // recovers the captured list order).
  {
    std::vector<DepNode *> Row;
    for (const CkptPredList &P : Snap.Preds) {
      DepNode &Sink = *Bound.at(P.SinkBits);
      Row.clear();
      Row.reserve(P.SourceBits.size());
      for (uint64_t Bits : P.SourceBits)
        Row.push_back(Bound.at(Bits));
      G.relinkPredecessors(Sink, Row);
    }
  }

  // Partitions: nodes that shared a capture-time root are reunited. This
  // covers edge-implied unions too (connected nodes always share a
  // capture root), plus history-only co-partitioning from edges that no
  // longer exist.
  std::unordered_map<uint32_t, UnionFind::Id> TagRep;
  for (const CkptNode &R : Snap.Nodes) {
    DepNode &N = *Bound.at(R.IdBits);
    UnionFind::Id Root = G.Partitions.find(N.Partition);
    auto [It, Fresh] = TagRep.try_emplace(R.PartitionTag, Root);
    if (!Fresh) {
      UnionFind::Id Rep = G.Partitions.find(It->second);
      if (Rep != Root)
        Rep = G.uniteRoots(Rep, Root); // Never conflicts outside a wave.
      It->second = Rep;
    }
  }

  // Serial pins, after the unions so the merged root carries the count.
  // requireSerialEval is idempotent per node, so nodes the typed layer
  // already pinned at re-creation are not double-counted.
  for (const CkptNode &R : Snap.Nodes)
    if (R.Serial)
      Bound.at(R.IdBits)->requireSerialEval();

  // Monotonic counters only ever move forward, even across a restore
  // into a runtime that already stamped something.
  auto RaiseTo = [](std::atomic<uint64_t> &C, uint64_t V) {
    if (C.load(std::memory_order_relaxed) < V)
      C.store(V, std::memory_order_relaxed);
  };
  RaiseTo(G.VersionCounter, Snap.VersionCounter);
  RaiseTo(G.StampCounter, Snap.StampCounter);
  G.Epoch = std::max(G.Epoch, Snap.Epoch);

  G.Stats.CkptRestoredNodes += Snap.Nodes.size();

  // Restore rebuilt the tables wholesale; the growth-triggered gauge
  // hooks may never have fired (e.g. when restoring into freshly
  // reserved slabs), so re-publish the memory gauges explicitly.
  G.republishMemoryGauges();

  // The gate: no restored graph is handed back without passing the same
  // structural audit ALPHONSE_AUDIT runs after every evaluation.
  std::vector<std::string> Problems = G.verify();
  if (!Problems.empty()) {
    std::string Msg = "restored graph failed verify(): " + Problems.front();
    if (Problems.size() > 1)
      Msg += " (+" + std::to_string(Problems.size() - 1) + " more)";
    throw CheckpointError(CkptError::VerifyFailed, Msg);
  }
}

} // namespace alphonse
