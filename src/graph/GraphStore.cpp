//===- GraphStore.cpp - Dense slab storage for the graph ------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage-layer mechanics off the hot path: node-slot allocation with
/// generation bookkeeping, edge-list measurement, and the memory-footprint
/// gauges (graph.node_bytes, graph.edge_bytes, pool.high_water) published
/// on table growth. The per-edge alloc/free/link/unlink operations are
/// inline in GraphStore.h so they fold into the propagation layer's
/// re-execution fast path.
///
//===----------------------------------------------------------------------===//

#include "graph/GraphStore.h"

namespace alphonse {

GraphStore::GraphStore(Statistics &Stats) : Stats(Stats) {}

GraphStore::GraphStore(Statistics &Stats, GraphConfig Cfg)
    : Stats(Stats), Cfg(Cfg) {
  // Report the configured pool size even before (or without) a parallel
  // wave; the scheduler refines this to the actual pool size it got.
  Stats.PropWorkers = Cfg.Workers;
}

size_t GraphStore::numPredecessors(const DepNode &N) const {
  size_t Count = 0;
  for (EdgeId E = N.FirstPred; E; E = EdgeTab.edge(E).NextPred)
    ++Count;
  return Count;
}

size_t GraphStore::numSuccessors(const DepNode &N) const {
  size_t Count = 0;
  for (EdgeId E = N.FirstSucc; E; E = EdgeTab.edge(E).NextSucc)
    ++Count;
  return Count;
}

void GraphStore::refreshMemoryGauges() {
  size_t NodeBytes = NodeTab.bytesReserved();
  size_t EdgeBytes = EdgeTab.bytesReserved();
  LastNodeBytes = NodeBytes;
  LastEdgeBytes = EdgeBytes;
  Stats.GraphNodeBytes = NodeBytes;
  Stats.GraphEdgeBytes = EdgeBytes;
  if (NodeBytes + EdgeBytes > HighWaterBytes) {
    HighWaterBytes = NodeBytes + EdgeBytes;
    Stats.PoolHighWater = HighWaterBytes;
  }
}

void GraphStore::reserveShape(size_t Nodes, size_t Edges) {
  StateGuard Guard(*this);
  NodeTab.reserve(Nodes);
  EdgeTab.reserve(Edges);
  Stats.ShapeNodesReserved += Nodes;
  Stats.ShapeEdgesReserved += Edges;
  refreshMemoryGauges();
}

void GraphStore::republishMemoryGauges() {
  StateGuard Guard(*this);
  size_t NodeBytes = NodeTab.bytesReserved();
  size_t EdgeBytes = EdgeTab.bytesReserved();
  LastNodeBytes = NodeBytes;
  LastEdgeBytes = EdgeBytes;
  Stats.GraphNodeBytes = NodeBytes;
  Stats.GraphEdgeBytes = EdgeBytes;
  // The high-water mark is monotone here (resetHighWater rebases it);
  // re-publish even when unchanged so a stats reset cannot leave the
  // published gauge behind the tracked peak.
  if (NodeBytes + EdgeBytes > HighWaterBytes)
    HighWaterBytes = NodeBytes + EdgeBytes;
  Stats.PoolHighWater = HighWaterBytes;
}

void GraphStore::resetHighWater() {
  StateGuard Guard(*this);
  HighWaterBytes = NodeTab.bytesReserved() + EdgeTab.bytesReserved();
  LastNodeBytes = NodeTab.bytesReserved();
  LastEdgeBytes = EdgeTab.bytesReserved();
  Stats.GraphNodeBytes = LastNodeBytes;
  Stats.GraphEdgeBytes = LastEdgeBytes;
  Stats.PoolHighWater = HighWaterBytes;
}

NodeId GraphStore::allocNodeSlot(DepNode &N) {
  NodeId Id = NodeTab.alloc(N);
  if (NodeTab.bytesReserved() != LastNodeBytes)
    refreshMemoryGauges();
  return Id;
}

void GraphStore::freeNodeSlot(NodeId Id) { NodeTab.free(Id); }

} // namespace alphonse
