//===- Governor.h - Wave resource governance --------------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor of the propagation stack (DESIGN.md Section 11
/// "Resource governance and graceful degradation"). One Governor per
/// DepGraph holds the default WaveBudget, the per-wave cancellation latch
/// that drain loops and wave workers poll at evaluation boundaries, the
/// overload-admission decision, and the bookkeeping behind graceful
/// degradation: the list of nodes currently stamped stale and the residue
/// parked by the last cancelled wave.
///
/// The governor never touches graph structure itself — DepGraph drives it
/// from the drain loops (the only places with the step counter and memory
/// gauges in hand) and does the stamping/parking; the scheduler polls
/// cancelled() from wave workers and paces conflicted retries through
/// backoffWait().
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_GOVERNOR_H
#define ALPHONSE_GRAPH_GOVERNOR_H

#include "graph/Handle.h"
#include "support/Budget.h"
#include "support/Statistics.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace alphonse {

/// Per-graph budget enforcement and degradation bookkeeping.
class Governor {
public:
  explicit Governor(Statistics &Stats) : Stats(Stats) {}

  Governor(const Governor &) = delete;
  Governor &operator=(const Governor &) = delete;

  /// The budget evaluateAll() applies when the caller passes none.
  /// Unlimited by default, which reproduces the classic run-to-quiescence
  /// engine exactly.
  void setDefaultBudget(const WaveBudget &B) { Default = B; }
  const WaveBudget &defaultBudget() const { return Default; }

  /// True between openWave() and closeWave().
  bool waveActive() const { return Active; }

  /// True when the current wave carries real bounds — the boundary-check
  /// hot path gates on this single bool, so unbudgeted waves pay nothing
  /// per step.
  bool checksOn() const { return ChecksNeeded; }

  /// Overload admission for a budgeted top-level wave: \returns false
  /// (recording a Deferred/Shed outcome) when the budget's policy skips
  /// the wave because a previous budgeted wave parked work it never
  /// finished. Unlimited budgets and Accept always run — an unbudgeted
  /// pump is how a parked backlog is guaranteed to drain.
  bool admitWave(const WaveBudget &B) {
    if (B.unlimited() || B.Policy == OverloadPolicy::Accept ||
        ParkedResidue == 0)
      return true;
    if (B.Policy == OverloadPolicy::Defer) {
      Last = WaveOutcome::Deferred;
      ++Stats.GovWavesDeferred;
    } else {
      Last = WaveOutcome::Shed;
      ++Stats.GovWavesShed;
    }
    return false;
  }

  /// Opens a wave under \p B. Called on the main thread before any worker
  /// dispatch, so the plain budget fields are safely published by the
  /// pool's queue mutex.
  void openWave(const WaveBudget &B) {
    Active = true;
    ChecksNeeded = !B.unlimited();
    Cur = B;
    StartUs = ChecksNeeded ? GovClock::nowUs() : 0;
    CancelFlag.store(false, std::memory_order_relaxed);
    CancelWhy.store(static_cast<uint8_t>(WaveOutcome::Completed),
                    std::memory_order_relaxed);
    ++WaveSeq;
    ++Stats.GovWaves;
  }

  /// Evaluation-boundary budget check, callable from any drain loop
  /// (serial or wave worker). \returns true — latching the shared cancel
  /// flag — when any bound of the current wave is exhausted. Hits the
  /// "gov.tick" fault site first so virtual-clock tests advance time at
  /// exact step boundaries.
  bool checkBoundary(uint64_t StepsDone, uint64_t SlabBytes);

  /// True once some boundary check cancelled the current wave. Workers
  /// poll this before popping their next node.
  bool cancelled() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  /// Closes the wave: computes the outcome from the cancel latch, records
  /// \p ParkedLeft as the parked residue (the resumable inconsistent
  /// sets), and updates the gov.* gauges. \returns the outcome.
  WaveOutcome closeWave(uint64_t ParkedLeft) {
    WaveOutcome O = WaveOutcome::Completed;
    if (CancelFlag.load(std::memory_order_relaxed))
      O = static_cast<WaveOutcome>(CancelWhy.load(std::memory_order_relaxed));
    if (waveDegraded(O))
      ++Stats.GovWavesDegraded;
    Active = false;
    ChecksNeeded = false;
    Last = O;
    ParkedResidue = ParkedLeft;
    Stats.GovParkedNodes = ParkedLeft;
    return O;
  }

  /// Outcome of the most recent wave (admission skips included).
  WaveOutcome lastOutcome() const { return Last; }

  /// Monotonic wave counter; doubles as the staleness stamp generation.
  uint64_t waveSeq() const { return WaveSeq; }

  /// True while the engine is serving degraded results: stale-stamped
  /// nodes exist or a cancelled wave's residue is still parked.
  bool degraded() const {
    return ParkedResidue != 0 || StaleCount.load(std::memory_order_relaxed) != 0;
  }

  /// Nodes currently stamped stale.
  uint64_t staleCount() const {
    return StaleCount.load(std::memory_order_relaxed);
  }

  /// Pending nodes parked by the last cancelled wave.
  uint64_t parkedResidue() const { return ParkedResidue; }

  /// True when the current wave has a wall-clock deadline (gates the
  /// watchdog's per-evaluation timing).
  bool deadlineActive() const {
    return ChecksNeeded && Cur.DeadlineUs != 0;
  }

  /// The current wave's deadline bound, in microseconds (0 = none).
  uint64_t currentDeadlineUs() const {
    return ChecksNeeded ? Cur.DeadlineUs : 0;
  }

  /// Microseconds left before the current wave's deadline (UINT64_MAX
  /// when no deadline is armed).
  uint64_t remainingDeadlineUs() const {
    if (!deadlineActive())
      return UINT64_MAX;
    uint64_t Elapsed = GovClock::nowUs() - StartUs;
    return Elapsed >= Cur.DeadlineUs ? 0 : Cur.DeadlineUs - Elapsed;
  }

  /// Sleeps \p Us microseconds (capped at the remaining deadline) between
  /// conflicted retry waves. On the virtual clock this advances time
  /// instead of sleeping, so backoff stays deterministic in tests.
  void backoffWait(uint64_t Us);

private:
  friend class DepGraph;

  /// Sets the shared cancel flag (first latch wins the reason) and always
  /// returns true so boundary checks can tail-call it.
  bool latchCancel(WaveOutcome Why);

  Statistics &Stats;
  WaveBudget Default;

  // Current-wave state. The plain fields are written by the main thread
  // in openWave() before any worker dispatch and read-only during the
  // wave; the atomics are the worker-shared cancel latch.
  bool Active = false;
  bool ChecksNeeded = false;
  WaveBudget Cur;
  uint64_t StartUs = 0;
  std::atomic<bool> CancelFlag{false};
  std::atomic<uint8_t> CancelWhy{0};

  WaveOutcome Last = WaveOutcome::Completed;
  uint64_t WaveSeq = 0;
  uint64_t ParkedResidue = 0;

  /// Nodes stamped stale by cancelled waves (DepGraph maintains both; the
  /// count is atomic because drain workers clear marks as they repair
  /// nodes mid-wave).
  std::vector<NodeId> StaleList;
  std::atomic<uint64_t> StaleCount{0};
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_GOVERNOR_H
