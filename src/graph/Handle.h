//===- Handle.h - Generation-checked graph handles --------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 32-bit generation-checked handles for the dependency graph's dense slab
/// storage (DESIGN.md "Engine layering and handle-based storage"). A handle
/// packs a 24-bit slot index with an 8-bit generation; the owning table
/// keeps the current generation of every slot and bumps it each time the
/// slot is freed, so a handle kept across a free/reuse cycle stops
/// resolving instead of silently aliasing the slot's new occupant. Debug
/// builds trap on such stale handles (GraphStore::node / edge assert);
/// release builds may use the non-asserting isLive()/tryNode() queries.
///
/// The generation field never takes the value 0 (it wraps 255 -> 1), so the
/// all-zero bit pattern is reserved for the null handle and zero-initialized
/// storage reads as "no handle". After 255 reuses of one slot the generation
/// wraps and detection becomes probabilistic; that is an accepted trade for
/// keeping handles at 32 bits (a six-handle Edge is exactly 24 bytes).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_HANDLE_H
#define ALPHONSE_GRAPH_HANDLE_H

#include <cstdint>
#include <functional>

namespace alphonse {

/// A 32-bit slot handle: low 24 bits index, high 8 bits generation.
/// \p Tag makes NodeId and EdgeId distinct, non-convertible types.
template <typename Tag> class Handle {
public:
  static constexpr uint32_t IndexBits = 24;
  static constexpr uint32_t GenBits = 8;
  static constexpr uint32_t MaxIndex = (1u << IndexBits) - 1;
  static constexpr uint32_t MaxGen = (1u << GenBits) - 1;
  /// Generations count 1..MaxGen; 0 is reserved so null stays unique.
  static constexpr uint32_t FirstGen = 1;

  /// The null handle (resolves to nothing; converts to false).
  constexpr Handle() = default;

  static constexpr Handle make(uint32_t Index, uint32_t Gen) {
    return Handle((Gen << IndexBits) | Index);
  }

  /// The successor generation of \p G, skipping the reserved 0.
  static constexpr uint32_t nextGen(uint32_t G) {
    return G >= MaxGen ? FirstGen : G + 1;
  }

  constexpr uint32_t index() const { return Bits & MaxIndex; }
  constexpr uint32_t gen() const { return Bits >> IndexBits; }
  constexpr uint32_t bits() const { return Bits; }
  constexpr explicit operator bool() const { return Bits != 0; }

  friend constexpr bool operator==(Handle A, Handle B) {
    return A.Bits == B.Bits;
  }
  friend constexpr bool operator!=(Handle A, Handle B) {
    return A.Bits != B.Bits;
  }

private:
  constexpr explicit Handle(uint32_t Bits) : Bits(Bits) {}
  uint32_t Bits = 0;
};

struct NodeIdTag;
struct EdgeIdTag;

/// Handle to a dependency-graph node slot (GraphStore's node table).
using NodeId = Handle<NodeIdTag>;
/// Handle to a dependency-edge slot (GraphStore's edge table).
using EdgeId = Handle<EdgeIdTag>;

} // namespace alphonse

namespace std {
template <typename Tag> struct hash<alphonse::Handle<Tag>> {
  size_t operator()(alphonse::Handle<Tag> H) const noexcept {
    return std::hash<uint32_t>()(H.bits());
  }
};
} // namespace std

#endif // ALPHONSE_GRAPH_HANDLE_H
