//===- InconsistentSet.cpp - Pending-change worklist ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line pieces of the pending-set heap. The per-node operations
/// (push/pop/erase and the sifts) are inline in InconsistentSet.h because
/// they sit inside the propagation loop; only the bulk partition merge —
/// rare and O(n) by nature — lives here.
///
//===----------------------------------------------------------------------===//

#include "graph/InconsistentSet.h"

namespace alphonse {

void InconsistentSet::mergeFrom(GraphStore &G, InconsistentSet &Other) {
  if (Other.Heap.empty())
    return;
  if (Heap.empty()) {
    Heap.swap(Other.Heap);
    for (size_t I = 0; I < Heap.size(); ++I)
      place(G, I);
    return;
  }
  size_t OldSize = Heap.size();
  // Reserve up front: insert() growing mid-copy would reallocate once per
  // doubling while the entries are being appended; partition merges under
  // the parallel scheduler hit this path hard.
  Heap.reserve(Heap.size() + Other.Heap.size());
  Heap.insert(Heap.end(), Other.Heap.begin(), Other.Heap.end());
  Other.Heap.clear();
  for (size_t I = OldSize; I < Heap.size(); ++I)
    place(G, I);
  // Floyd heapify.
  for (size_t I = Heap.size() / 2; I-- > 0;)
    siftDown(G, I);
}

} // namespace alphonse
