//===- InconsistentSet.cpp - Pending-change worklist ----------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-rolled binary min-heap that tracks each queued node's position
/// (DepNode::QueuePos), so erase() — needed when a pending node is
/// destroyed — is O(log n) instead of a linear scan. Bulk teardown of
/// demanded structures would otherwise be quadratic.
///
//===----------------------------------------------------------------------===//

#include "graph/InconsistentSet.h"

namespace alphonse {

void InconsistentSet::place(size_t Index) {
  Heap[Index].Node->QueuePos = static_cast<uint32_t>(Index);
}

void InconsistentSet::siftUp(size_t Index) {
  while (Index > 0) {
    size_t Parent = (Index - 1) / 2;
    if (Heap[Parent].Level <= Heap[Index].Level)
      break;
    std::swap(Heap[Parent], Heap[Index]);
    place(Parent);
    place(Index);
    Index = Parent;
  }
}

void InconsistentSet::siftDown(size_t Index) {
  size_t Size = Heap.size();
  while (true) {
    size_t Left = 2 * Index + 1;
    if (Left >= Size)
      return;
    size_t Smallest = Left;
    size_t Right = Left + 1;
    if (Right < Size && Heap[Right].Level < Heap[Left].Level)
      Smallest = Right;
    if (Heap[Index].Level <= Heap[Smallest].Level)
      return;
    std::swap(Heap[Index], Heap[Smallest]);
    place(Index);
    place(Smallest);
    Index = Smallest;
  }
}

bool InconsistentSet::push(DepNode *N) {
  assert(N && "pushing null node");
  if (N->InQueue)
    return false;
  N->InQueue = true;
  Heap.push_back({N, N->Level});
  place(Heap.size() - 1);
  siftUp(Heap.size() - 1);
  return true;
}

DepNode *InconsistentSet::pop() {
  assert(!Heap.empty() && "pop() from empty inconsistent set");
  DepNode *N = Heap.front().Node;
  assert(N->InQueue && "queued node lost its InQueue flag");
  removeAt(0);
  N->InQueue = false;
  return N;
}

void InconsistentSet::removeAt(size_t Index) {
  size_t Last = Heap.size() - 1;
  if (Index != Last) {
    Heap[Index] = Heap[Last];
    place(Index);
  }
  Heap.pop_back();
  if (Index < Heap.size()) {
    siftDown(Index);
    siftUp(Index);
  }
}

void InconsistentSet::erase(DepNode *N) {
  if (!N->InQueue)
    return;
  size_t Index = N->QueuePos;
  if (Index >= Heap.size() || Heap[Index].Node != N)
    return; // Queued in a sibling partition's set; caller tries each.
  removeAt(Index);
  N->InQueue = false;
}

void InconsistentSet::mergeFrom(InconsistentSet &Other) {
  if (Other.Heap.empty())
    return;
  if (Heap.empty()) {
    Heap.swap(Other.Heap);
    for (size_t I = 0; I < Heap.size(); ++I)
      place(I);
    return;
  }
  size_t OldSize = Heap.size();
  // Reserve up front: insert() growing mid-copy would reallocate once per
  // doubling while the entries are being appended; partition merges under
  // the parallel scheduler hit this path hard.
  Heap.reserve(Heap.size() + Other.Heap.size());
  Heap.insert(Heap.end(), Other.Heap.begin(), Other.Heap.end());
  Other.Heap.clear();
  for (size_t I = OldSize; I < Heap.size(); ++I)
    place(I);
  // Floyd heapify.
  for (size_t I = Heap.size() / 2; I-- > 0;)
    siftDown(I);
}

} // namespace alphonse
