//===- InconsistentSet.h - Pending-change worklist --------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "global inconsistent set" (Section 4.4), one instance per
/// dependency-graph partition (Section 6.3). Implemented as a binary
/// min-heap on node level, approximating the topological processing order
/// that minimizes recomputation (Section 2; the paper defers the exact
/// ordering algorithm to [Hud86, Hoo86, Hoo87, AHR+90] — see DESIGN.md for
/// the substitution note). Each queued node remembers its heap position,
/// so removal of a dying node is O(log n).
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_INCONSISTENTSET_H
#define ALPHONSE_GRAPH_INCONSISTENTSET_H

#include "graph/DepNode.h"

#include <vector>

namespace alphonse {

/// Min-heap of inconsistent nodes ordered by approximate topological level.
///
/// Membership is tracked with the node's InQueue flag, so a node appears at
/// most once across all sets. Levels are sampled at push time; later level
/// changes do not re-sort the heap (ordering is a heuristic only).
class InconsistentSet {
public:
  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Adds \p N unless it is already queued. \returns true if added.
  bool push(DepNode *N);

  /// Removes and returns the queued node with the smallest level.
  DepNode *pop();

  /// Removes \p N if present (used when a queued node is destroyed).
  void erase(DepNode *N);

  /// Moves every entry of \p Other into this set, leaving \p Other empty.
  void mergeFrom(InconsistentSet &Other);

  /// Invokes \p F on every queued node (heap order; for audits).
  template <typename Fn> void forEach(Fn F) const {
    for (const Entry &E : Heap)
      F(*E.Node);
  }

private:
  struct Entry {
    DepNode *Node;
    uint32_t Level;
  };

  void place(size_t Index);
  void siftUp(size_t Index);
  void siftDown(size_t Index);
  void removeAt(size_t Index);

  std::vector<Entry> Heap;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_INCONSISTENTSET_H
