//===- InconsistentSet.h - Pending-change worklist --------------*- C++ -*-===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "global inconsistent set" (Section 4.4), one instance per
/// dependency-graph partition (Section 6.3). Implemented as a binary
/// min-heap on node level, approximating the topological processing order
/// that minimizes recomputation (Section 2; the paper defers the exact
/// ordering algorithm to [Hud86, Hoo86, Hoo87, AHR+90] — see DESIGN.md for
/// the substitution note). Each queued node remembers its heap position,
/// so removal of a dying node is O(log n).
///
/// Heap entries are {NodeId, level} — 8 bytes, down from the 16-byte
/// pointer entries of the pre-handle engine — resolved through the
/// GraphStore node table, so a drain touches half the heap cache lines.
///
//===----------------------------------------------------------------------===//

#ifndef ALPHONSE_GRAPH_INCONSISTENTSET_H
#define ALPHONSE_GRAPH_INCONSISTENTSET_H

#include "graph/GraphStore.h"
#include "graph/Handle.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace alphonse {

/// Min-heap of inconsistent nodes ordered by approximate topological level.
///
/// Membership is tracked with the node's InQueue flag, so a node appears at
/// most once across all sets. Levels are sampled at push time; later level
/// changes do not re-sort the heap (ordering is a heuristic only). The set
/// stores handles, not pointers, so every operation takes the GraphStore
/// that resolves them.
/// Push/pop/erase are inline: they sit inside the propagation loop (one
/// push per queued dependent, one pop per evaluator step) and must fold
/// into markInconsistent and the drain loops across the layer split.
class InconsistentSet {
public:
  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Adds \p N unless it is already queued. \returns true if added.
  bool push(GraphStore &G, DepNode &N) {
    assert(N.Id && "pushing an unregistered node");
    if (N.InQueue)
      return false;
    N.InQueue = true;
    Heap.push_back({N.Id, N.Level});
    place(G, Heap.size() - 1);
    siftUp(G, Heap.size() - 1);
    return true;
  }

  /// Removes and returns the queued node with the smallest level.
  DepNode &pop(GraphStore &G) {
    assert(!Heap.empty() && "pop() from empty inconsistent set");
    DepNode &N = G.node(Heap.front().Id);
    assert(N.InQueue && "queued node lost its InQueue flag");
    removeAt(G, 0);
    N.InQueue = false;
    return N;
  }

  /// Removes \p N if present (used when a queued node is destroyed).
  void erase(GraphStore &G, DepNode &N) {
    if (!N.InQueue)
      return;
    size_t Index = N.QueuePos;
    if (Index >= Heap.size() || Heap[Index].Id != N.Id)
      return; // Queued in a sibling partition's set; caller tries each.
    removeAt(G, Index);
    N.InQueue = false;
  }

  /// Moves every entry of \p Other into this set, leaving \p Other empty.
  void mergeFrom(GraphStore &G, InconsistentSet &Other);

  /// Invokes \p F on every queued node (heap order; for audits).
  template <typename Fn> void forEach(const GraphStore &G, Fn F) const {
    for (const Entry &E : Heap)
      F(G.node(E.Id));
  }

private:
  struct Entry {
    NodeId Id;
    uint32_t Level;
  };
  static_assert(sizeof(Entry) == 8, "pending entries must stay 8 bytes");

  void place(GraphStore &G, size_t Index) {
    G.node(Heap[Index].Id).QueuePos = static_cast<uint32_t>(Index);
  }

  // Both sifts move a hole instead of swapping: each displaced entry is
  // copied and re-placed exactly once, and the moving entry is written
  // (and its node's QueuePos resolved through the table) only at its
  // final position — half the handle resolutions of a swap-based sift.

  void siftUp(GraphStore &G, size_t Index) {
    Entry Moving = Heap[Index];
    size_t Hole = Index;
    while (Hole > 0) {
      size_t Parent = (Hole - 1) / 2;
      if (Heap[Parent].Level <= Moving.Level)
        break;
      Heap[Hole] = Heap[Parent];
      place(G, Hole);
      Hole = Parent;
    }
    if (Hole != Index) {
      Heap[Hole] = Moving;
      place(G, Hole);
    }
  }

  void siftDown(GraphStore &G, size_t Index) {
    size_t Size = Heap.size();
    Entry Moving = Heap[Index];
    size_t Hole = Index;
    while (true) {
      size_t Left = 2 * Hole + 1;
      if (Left >= Size)
        break;
      size_t Smallest = Left;
      size_t Right = Left + 1;
      if (Right < Size && Heap[Right].Level < Heap[Left].Level)
        Smallest = Right;
      if (Moving.Level <= Heap[Smallest].Level)
        break;
      Heap[Hole] = Heap[Smallest];
      place(G, Hole);
      Hole = Smallest;
    }
    if (Hole != Index) {
      Heap[Hole] = Moving;
      place(G, Hole);
    }
  }

  void removeAt(GraphStore &G, size_t Index) {
    size_t Last = Heap.size() - 1;
    if (Index != Last) {
      Heap[Index] = Heap[Last];
      place(G, Index);
    }
    Heap.pop_back();
    if (Index < Heap.size()) {
      siftDown(G, Index);
      siftUp(G, Index);
    }
  }

  std::vector<Entry> Heap;
};

} // namespace alphonse

#endif // ALPHONSE_GRAPH_INCONSISTENTSET_H
