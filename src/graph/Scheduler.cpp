//===- Scheduler.cpp - Parallel quiescence propagation --------------------===//
//
// Part of the Alphonse reproduction (Hoover, PLDI 1992).
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "graph/Scheduler.h"

#include "graph/DepGraph.h"

#include <algorithm>

namespace alphonse {

PropagationScheduler::PropagationScheduler(DepGraph &G, unsigned Workers,
                                           ThreadPool *Shared)
    : G(G), Pool(Shared) {
  if (!Pool) {
    Owned = std::make_unique<ThreadPool>(Workers);
    Pool = Owned.get();
  }
}

void PropagationScheduler::run() {
  ++G.EvalDepth;
  G.EvalSteps = 0;
  ++G.EvalEpoch;
  G.DrainAborted = false;
  G.Stats.PropWorkers = Pool->size();

  uint64_t BackoffRound = 0;
  try {
    while (G.TotalPending != 0 &&
           !G.DrainAborted.load(std::memory_order_relaxed)) {
      // Budget boundary: a cancelled wave parks the remaining pending
      // work (resumable by any later pump) instead of starting another
      // round of drains.
      if (G.governorStop())
        break;
      const uint64_t ConflictsBefore = G.Stats.PropConflicts.total();
      // Snapshot the current roots with pending work by scanning the
      // dense set vector. find() is safe unlocked here: no wave is in
      // flight, so this thread is the only one touching the union-find.
      std::vector<UnionFind::Id> Par;
      bool SerialWork = false;
      for (UnionFind::Id Slot = 0; Slot < G.SetVec.size(); ++Slot) {
        if (G.SetVec[Slot].empty())
          continue;
        UnionFind::Id Root = G.Partitions.find(Slot);
        if (Root < G.SerialTag.size() && G.SerialTag[Root])
          SerialWork = true;
        else
          Par.push_back(Root);
      }
      std::sort(Par.begin(), Par.end());
      Par.erase(std::unique(Par.begin(), Par.end()), Par.end());

      bool RanParallel = false;
      if (Par.size() >= 2) {
        // Assign each partition to one drain task, then open the wave.
        // ParallelOn flips last (release): workers start with ownership
        // fully published.
        {
          std::lock_guard<std::recursive_mutex> L(G.StateMu);
          G.clearOwners();
          for (size_t I = 0; I < Par.size(); ++I)
            G.setOwner(Par[I], static_cast<uint32_t>(I + 1));
        }
        G.ParallelOn.store(true, std::memory_order_release);
        for (size_t I = 0; I < Par.size(); ++I) {
          UnionFind::Id Root = Par[I];
          uint32_t Me = static_cast<uint32_t>(I + 1);
          Pool->run([this, Root, Me] { drainRoot(Root, Me); });
        }
        try {
          Pool->wait();
        } catch (...) {
          G.ParallelOn.store(false, std::memory_order_release);
          G.clearOwners();
          throw;
        }
        G.ParallelOn.store(false, std::memory_order_release);
        G.clearOwners();
        RanParallel = true;
      }

      // Serial turn: serial-affine partitions, a lone pending partition,
      // and leftovers abandoned by wave conflicts all drain on this
      // thread, in the classic order. This is also the quiescence
      // guarantee — whatever the waves left behind, evaluateAllSerial
      // finishes it.
      if (SerialWork || !RanParallel)
        G.evaluateAllSerial();
      // When a wave ran and only conflict leftovers remain, loop: the
      // next wave (or, once partitions collapse below two, the serial
      // branch) picks them up. Conflicts strictly merge partitions, so
      // the wave count is bounded by the initial partition count.
      //
      // A conflicted wave retries under capped exponential backoff with
      // deterministic jitter: merges mean the partition structure is
      // churning, and immediately re-dispatching tends to re-collide on
      // the same boundary edges. The wait is capped by the remaining
      // wave deadline (Governor::backoffWait) and advances the virtual
      // clock instead of sleeping under GovClock::VirtualScope.
      if (G.Stats.PropConflicts.total() == ConflictsBefore) {
        BackoffRound = 0;
      } else if (RanParallel && G.TotalPending != 0 &&
                 !G.DrainAborted.load(std::memory_order_relaxed) &&
                 !G.Gov.cancelled() && G.Cfg.RetryBackoffBaseUs != 0) {
        ++BackoffRound;
        uint64_t Delay = G.Cfg.RetryBackoffBaseUs;
        for (uint64_t R = 1; R < BackoffRound && Delay < G.Cfg.RetryBackoffCapUs;
             ++R)
          Delay *= 2;
        if (Delay > G.Cfg.RetryBackoffCapUs)
          Delay = G.Cfg.RetryBackoffCapUs;
        JitterSeed =
            JitterSeed * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t Jitter = (JitterSeed >> 33) % (Delay / 2 + 1);
        G.Gov.backoffWait(Delay + Jitter);
      }
    }
  } catch (...) {
    --G.EvalDepth;
    throw;
  }

  --G.EvalDepth;
  if (G.EvalDepth == 0 && G.Cfg.AuditAfterEvaluate)
    for (const std::string &V : G.verify())
      G.Diags.error(SourceLocation(), "audit: " + V);
}

void PropagationScheduler::drainRoot(UnionFind::Id Anchor, uint32_t Me) {
  detail::currentDrainTask() = Me;
  for (;;) {
    DepNode *U = nullptr;
    {
      std::lock_guard<std::recursive_mutex> L(G.StateMu);
      if (G.DrainAborted.load(std::memory_order_relaxed))
        break;
      // Cooperative cancellation: poll the governor at every evaluation
      // boundary. A cancelled worker abandons its partition between
      // nodes — never mid-evaluation — so no torn state is possible; the
      // partition's remaining work stays parked in its inconsistent set.
      if (G.governorStop())
        break;
      UnionFind::Id Root = G.Partitions.find(Anchor);
      if (G.owner(Root) != Me)
        break; // Merged away: the surviving owner drains the rest.
      InconsistentSet *S = G.findSet(Root);
      if (!S || S->empty()) {
        // Quiescent. Release ownership so a sibling that later merges
        // with this partition can claim it without a conflict.
        G.releaseOwner(Root);
        ++G.Stats.PropPartitionsDrained;
        break;
      }
      U = &S->pop(G);
      --G.TotalPending;
    }
    try {
      G.processNode(*U);
    } catch (const RetryConflict &) {
      // This task's partition merged into a sibling's; the abandoned
      // node is already re-queued and owned elsewhere.
      break;
    }
  }
  detail::currentDrainTask() = 0;
}

} // namespace alphonse
